// Command benchdiff is the CI benchmark-regression gate: it compares the
// "BENCH {...}" JSON lines of a current benchmark run against a checked-in
// baseline and fails when throughput drops — or p95 latency rises — by more
// than the allowed fraction.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json [-max-regress 0.30]
//
// Both inputs may be raw mctbench output (BENCH lines mixed with the human
// report) and may contain several repetitions per benchmark; the best
// repetition per benchmark is compared (see internal/benchdiff). Exit
// status: 0 clean, 1 regression detected, 2 usage or input error.
package main

import (
	"flag"
	"fmt"
	"os"

	"colorfulxml/internal/benchdiff"
)

func main() {
	var (
		baseline   = flag.String("baseline", "", "baseline BENCH file (required)")
		current    = flag.String("current", "", "current BENCH file (required)")
		maxRegress = flag.Float64("max-regress", 0.30, "allowed fractional regression per metric")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if *baseline == "" || *current == "" {
		fail(fmt.Errorf("both -baseline and -current are required"))
	}
	base, err := parseFile(*baseline)
	if err != nil {
		fail(err)
	}
	cur, err := parseFile(*current)
	if err != nil {
		fail(err)
	}
	if len(base) == 0 {
		fail(fmt.Errorf("%s contains no BENCH lines", *baseline))
	}
	bestBase, bestCur := benchdiff.Best(base), benchdiff.Best(cur)
	regs, err := benchdiff.Compare(bestBase, bestCur, *maxRegress)
	if err != nil {
		fail(err)
	}
	benchdiff.Format(os.Stdout, bestBase, bestCur, regs)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d regression(s) beyond %.0f%%:\n", len(regs), *maxRegress*100)
		for _, g := range regs {
			fmt.Fprintln(os.Stderr, " ", g)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: all benchmarks within %.0f%% of baseline\n", *maxRegress*100)
}

func parseFile(path string) ([]benchdiff.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchdiff.Parse(f)
}
