// Command mctquery loads an MCT database from exchange XML and evaluates
// MCXQuery expressions (or update expressions with -update) against it.
//
// Usage:
//
//	mctquery -db FILE [-update] 'query text'
//	mctquery -db FILE            # reads the query from stdin
//	mctquery -db FILE -explain 'query text'   # print the compiled plan
//
// Constructor-free queries are compiled to physical plans over an indexed
// store snapshot (see internal/plan); -explain shows the instrumented plan
// tree with per-operator row counts and the peak number of intermediate rows
// buffered by pipeline breakers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"colorfulxml/colorful"
)

func main() {
	var (
		dbPath  = flag.String("db", "", "exchange-XML database file (from mctgen or MarshalXML)")
		isUpd   = flag.Bool("update", false, "treat the input as an update expression")
		explain = flag.Bool("explain", false, "compile the query and print the instrumented physical plan")
	)
	flag.Parse()
	if *dbPath == "" {
		fmt.Fprintln(os.Stderr, "mctquery: -db is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*dbPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctquery:", err)
		os.Exit(1)
	}
	db, err := colorful.UnmarshalXML(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctquery: parse database:", err)
		os.Exit(1)
	}

	var src string
	if flag.NArg() > 0 {
		src = strings.Join(flag.Args(), " ")
	} else {
		in, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mctquery:", err)
			os.Exit(1)
		}
		src = string(in)
	}

	if *isUpd {
		res, err := db.Update(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mctquery:", err)
			os.Exit(1)
		}
		fmt.Printf("updated %d node(s) across %d binding tuple(s)\n", res.NodesTouched, res.Tuples)
		return
	}
	if *explain {
		text, err := db.Explain(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mctquery:", err)
			os.Exit(1)
		}
		fmt.Print(text)
		return
	}
	out, err := db.Query(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctquery:", err)
		os.Exit(1)
	}
	for i, it := range out {
		if it.Node != nil {
			fmt.Printf("%3d. %s [%s] %q\n", i+1, it.Node.Name(), colorful.Label(it.Node), it.Value)
		} else {
			fmt.Printf("%3d. %q\n", i+1, it.Value)
		}
	}
	fmt.Printf("%d item(s)\n", len(out))
}
