// Command mctserialize runs the optSerialize algorithm (paper Section 5)
// over the built-in Figure 8 movie schema — or prints the optimal plan for
// a named built-in schema — showing, for every element type, the cost of
// each primary-color choice and the chosen optimum.
//
// Usage:
//
//	mctserialize [-schema figure8]
package main

import (
	"flag"
	"fmt"
	"os"

	"colorfulxml/internal/schema"
	"colorfulxml/internal/serialize"
)

func main() {
	name := flag.String("schema", "figure8", "built-in schema name (figure8)")
	flag.Parse()

	var s *schema.Schema
	switch *name {
	case "figure8":
		s = schema.Figure8()
	default:
		fmt.Fprintf(os.Stderr, "mctserialize: unknown schema %q\n", *name)
		os.Exit(2)
	}
	plan, err := serialize.OptSerialize(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctserialize:", err)
		os.Exit(1)
	}
	fmt.Printf("optSerialize plan for schema %q\n", *name)
	fmt.Printf("(per element type: chosen primary color, then each real color with its expected cost)\n\n")
	fmt.Print(plan.String())
}
