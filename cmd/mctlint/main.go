// Command mctlint runs the repo's static-analysis suite (internal/lint)
// over a package pattern and fails if any invariant is violated:
//
//	mctlint [-list] [packages]
//
// With no packages it analyzes ./.... Each diagnostic prints as
// file:line:col: message (analyzer); the exit status is 1 if anything was
// reported, 2 on a loading or internal error. -list prints the analyzers
// and what each one guards.
//
// The analyzers mechanize invariants that are otherwise enforced only by
// review: vfsonly (file I/O through internal/vfs), commitscope
// (beginCommit/commitChanges bracketing), ctxpoll (operator cancellation
// polls), errwrapsentinel (errors.Is/As and %w for sentinels), determinism
// (seeded randomness and sorted map iteration in crashtest/WAL/checkpoint
// code), atomicsnapshot (atomic access to the published snapshot),
// obsregister (obs instruments registered once, at package init, under
// snake_case literal names).
package main

import (
	"flag"
	"fmt"
	"os"

	"colorfulxml/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctlint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mctlint: %d diagnostic(s)\n", len(findings))
		os.Exit(1)
	}
}
