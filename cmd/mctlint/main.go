// Command mctlint runs the repo's static-analysis suite (internal/lint)
// over a package pattern and fails if any invariant is violated:
//
//	mctlint [-list] [-json] [-analyzer name,name] [packages]
//
// With no packages it analyzes ./.... Each diagnostic prints as
// file:line:col: message (analyzer); the exit status is 1 if anything was
// reported, 2 on a loading or internal error. -list prints the analyzers
// and what each one guards; -analyzer restricts the run to a
// comma-separated subset; -json emits the findings as a JSON document on
// stdout (the shape CI archives as an artifact) instead of text.
//
// The analyzers mechanize invariants that are otherwise enforced only by
// review: vfsonly (file I/O through internal/vfs), commitscope
// (beginCommit/commitChanges bracketing), ctxpoll (operator cancellation
// polls), errwrapsentinel (errors.Is/As and %w for sentinels), determinism
// (seeded randomness and sorted map iteration in crashtest/WAL/checkpoint
// code), atomicsnapshot (atomic access to the published snapshot),
// obsregister (obs instruments registered once, at package init, under
// snake_case literal names) — and the whole-program concurrency suite:
// lockorder (the mutex-acquisition graph is acyclic and matches the
// DESIGN.md lock-order table), goroutineleak (every go statement has a
// visible termination path), batchalias (no batch row view outlives its
// batch's recycling), healthtransition (serving-state writes only through
// transitionHealth, along legal state-machine edges).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"colorfulxml/internal/lint"
)

// jsonFinding is the externally-consumed report shape; internal/lint's
// Finding deliberately carries no JSON tags, so the driver owns the format.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON document on stdout")
	only := flag.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "mctlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
		if len(analyzers) == 0 {
			fmt.Fprintln(os.Stderr, "mctlint: -analyzer selected nothing")
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctlint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		report := jsonReport{Count: len(findings), Findings: []jsonFinding{}}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Position.Filename,
				Line:     f.Position.Line,
				Column:   f.Position.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "mctlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mctlint: %d diagnostic(s)\n", len(findings))
		os.Exit(1)
	}
}
