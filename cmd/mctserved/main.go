// Command mctserved serves one colorful database over the wire protocol.
//
// Store selection: -dir opens (or creates) a durable database; without it
// the server boots an in-memory catalog datagen store of -catalog-scale
// items — the same store the benchmarks and the e2e harness use.
//
// Orchestration: -addr 127.0.0.1:0 binds an ephemeral port and -addr-file
// writes the bound address once listening, so harnesses can start the
// server and connect without racing. SIGTERM/SIGINT trigger a graceful
// drain: stop accepting, finish every request already read, notify
// clients, then exit 0. -obs-dump writes the final instrument snapshot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"colorfulxml/colorful"
	"colorfulxml/internal/experiment"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7633", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		debugAddr    = flag.String("debug-addr", "", "optional second listener for the HTTP debug endpoint (metrics/slowlog/trace/plancache/health/pprof)")
		dir          = flag.String("dir", "", "serve a durable database in this directory (created if missing)")
		colors       = flag.String("colors", "red,green", "colors for a newly created durable database")
		catalogScale = flag.Int("catalog-scale", 1000, "items in the in-memory catalog store (ignored with -dir)")
		maxInflight  = flag.Int("maxinflight", 0, "admission control: max total weight of in-flight queries (0 = unlimited)")
		admTimeout   = flag.Duration("admission-timeout", 0, "admission queue timeout (0 = library default)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long a drain may wait for in-flight requests")
		obsDump      = flag.String("obs-dump", "", "write the final instrument snapshot to this file on exit")
		name         = flag.String("name", "mctserved", "server name announced in the handshake")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mctserved: ")

	db, err := openStore(*dir, *colors, *catalogScale)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	if *maxInflight > 0 {
		db.SetMaxInflight(*maxInflight)
	}
	if *admTimeout > 0 {
		db.SetAdmissionTimeout(*admTimeout)
	}

	if *debugAddr != "" {
		dbg, err := db.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatalf("debug endpoint: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug endpoint on http://%s/debug/metrics", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	if *addrFile != "" {
		// Write to a temp name and rename so watchers never read a partial
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("addr-file: %v", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Fatalf("addr-file: %v", err)
		}
	}

	srv := server.New(db, server.Options{
		Name:         *name,
		DrainTimeout: *drainTimeout,
		Logf:         log.Printf,
	})

	stopSig := make(chan os.Signal, 2)
	signal.Notify(stopSig, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-stopSig
		log.Printf("received %v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	// Serve blocks until the drain completes (every connection handler has
	// exited), so everything after it runs with the server quiesced.
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
	if err := db.Close(); err != nil {
		log.Printf("close store: %v", err)
	}
	if *obsDump != "" {
		if err := dumpObs(*obsDump); err != nil {
			log.Printf("obs-dump: %v", err)
		}
	}
	log.Printf("exit")
}

// openStore opens the durable store or builds the in-memory catalog.
func openStore(dir, colors string, catalogScale int) (*colorful.DB, error) {
	if dir == "" {
		return experiment.NewCatalogDB(catalogScale)
	}
	var cs []colorful.Color
	for _, c := range strings.Split(colors, ",") {
		if c = strings.TrimSpace(c); c != "" {
			cs = append(cs, colorful.Color(c))
		}
	}
	return colorful.Open(dir, cs...)
}

func dumpObs(path string) error {
	b, err := json.MarshalIndent(obs.Default.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
