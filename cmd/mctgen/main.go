// Command mctgen generates the experiment datasets as exchange XML files:
// the TPC-W or SIGMOD-Record entity pool in the MCT, shallow and deep
// representations.
//
// Usage:
//
//	mctgen -dataset tpcw|sigmod [-scale N] [-seed N] [-out DIR] [-variant mct|shallow|deep|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"colorfulxml/internal/core"
	"colorfulxml/internal/datagen"
	"colorfulxml/internal/serialize"
)

func main() {
	var (
		dataset = flag.String("dataset", "tpcw", "dataset: tpcw or sigmod")
		scale   = flag.Int("scale", 1, "scale factor")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", ".", "output directory")
		variant = flag.String("variant", "all", "mct, shallow, deep or all")
	)
	flag.Parse()

	var ds *datagen.Dataset
	var err error
	switch *dataset {
	case "tpcw":
		ds, err = datagen.TPCW(datagen.TPCWConfig{Scale: *scale, Seed: *seed})
	case "sigmod":
		ds, err = datagen.Sigmod(datagen.SigmodConfig{Scale: *scale, Seed: *seed})
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctgen:", err)
		os.Exit(1)
	}

	dbs := map[string]*core.Database{
		"mct": ds.MCT, "shallow": ds.Shallow, "deep": ds.Deep,
	}
	for name, db := range dbs {
		if *variant != "all" && *variant != name {
			continue
		}
		xml, err := serialize.SerializeString(db, nil, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mctgen:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s-%s.xml", *dataset, name))
		if err := os.WriteFile(path, []byte(xml), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mctgen:", err)
			os.Exit(1)
		}
		st := db.ComputeStats()
		fmt.Printf("wrote %s (%d elements, %d structural nodes)\n", path, st.Elements, st.StructuralNodes)
	}
}
