// Command mctbench regenerates the paper's evaluation artifacts: Table 1
// (storage requirements), Table 2 (query and update processing time) and
// Figures 11/12 (query specification complexity), over freshly generated
// TPC-W and SIGMOD-Record datasets in all three representations.
//
// Usage:
//
//	mctbench [-table1] [-table2] [-fig11] [-fig12] [-compiled] [-all]
//	         [-tpcw-scale N] [-sigmod-scale N] [-seed N] [-runs N]
//
// A separate concurrent-serving mode measures multi-client throughput
// against the colorful facade (snapshot readers plus one writer) and emits a
// machine-readable "BENCH {...}" JSON line:
//
//	mctbench -clients N [-client-ops N] [-concurrent-scale N]
//	         [-parallel] [-parallel-workers N]
//	         [-prepared | -nocache] [-maxinflight N]
//	         [-durable DIR] [-nosync] [-validate]
//
// Clients run as sessions over the shared compiled-plan cache; -prepared
// makes each client prepare its query mix once and execute statements,
// -nocache opts clients out of the plan cache (a fresh compile per query,
// the baseline for the cache's benefit), and -maxinflight N enables
// admission control with weight limit N. The BENCH line reports the cache
// hit rate and, with admission on, the rejection count and queue-wait p95.
//
// With -durable the concurrent benchmark runs against a database opened in
// DIR: every writer commit goes through the write-ahead log, and the BENCH
// line additionally reports checkpoint activity and the cost and statistics
// of recovering the directory after the run. With -validate the full core
// invariant audit runs after the load and after the recovery, and its wall
// time is reported as validate_millis.
//
// A resilience mode runs the runtime chaos harness (internal/chaostest)
// against a durable database in DIR — a seeded fault schedule under
// concurrent writers and readers, differentially verified — and reports the
// fault rate, mean time to recovery, and commits retried/rejected:
//
//	mctbench -chaos DIR [-chaos-events N] [-seed N]
//
// Any fault-tolerance contract violation (a lost acked commit, a visible
// rolled-back write, a database stuck degraded) exits nonzero.
//
// A network mode measures the same catalog workload across the wire
// protocol (cmd/mctserved, client pool, per-connection sessions):
//
//	mctbench -network [-connect ADDR | -connect-file FILE]
//	         [-clients N] [-client-ops N] [-concurrent-scale N]
//	         [-pool N] [-prepared] [-maxinflight N]
//
// Without -connect/-connect-file the server runs in-process on a loopback
// socket (still the full TCP + frame path); with them the benchmark drives
// a separately started mctserved, exercising true two-process serving. A
// companion -serve mode boots a catalog mctserved inline and blocks until
// SIGTERM, for harnesses that want both halves from one binary:
//
//	mctbench -serve ADDR [-addr-file FILE] [-concurrent-scale N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"colorfulxml/internal/experiment"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/server"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table 1 (storage requirements)")
		table2 = flag.Bool("table2", false, "print Table 2 (query processing time)")
		fig11  = flag.Bool("fig11", false, "print Figure 11 (number of path expressions)")
		fig12  = flag.Bool("fig12", false, "print Figure 12 (number of variable bindings)")
		comp   = flag.Bool("compiled", false, "print the plan-compiler vs hand-plan comparison")
		all    = flag.Bool("all", false, "print everything")
		tpcw   = flag.Int("tpcw-scale", experiment.DefaultConfig.TPCWScale, "TPC-W scale factor")
		sigmod = flag.Int("sigmod-scale", experiment.DefaultConfig.SigmodScale, "SIGMOD-Record scale factor")
		seed   = flag.Int64("seed", experiment.DefaultConfig.Seed, "generator seed")
		runs   = flag.Int("runs", 5, "timed runs per query (5 = paper's trimmed mean)")
		cold   = flag.Bool("cold", false, "flush the buffer pool before each run (cold cache)")

		t2serve   = flag.Bool("table2-serve", false, "run the Table 2 serving benchmark (compilable TPC-W MCT suite, -clients sessions; honors -prepared)")
		clients   = flag.Int("clients", 0, "run the concurrent-serving benchmark with N reader clients")
		clientOps = flag.Int("client-ops", experiment.DefaultConcurrent.Ops, "queries per client in concurrent mode")
		concScale = flag.Int("concurrent-scale", experiment.DefaultConcurrent.Scale, "catalog items in concurrent mode")
		parallel  = flag.Bool("parallel", false, "enable intra-query parallelism in concurrent mode")
		parWork   = flag.Int("parallel-workers", 0, "exchange fan-out with -parallel (0 = GOMAXPROCS)")
		prepared  = flag.Bool("prepared", false, "concurrent mode: clients use sessions with prepared statements (shared plan cache)")
		nocache   = flag.Bool("nocache", false, "concurrent mode: clients opt out of the plan cache (fresh compile per query)")
		maxInfl   = flag.Int("maxinflight", 0, "concurrent mode: admission-control weight limit (0 = disabled)")
		durable   = flag.String("durable", "", "durable concurrent mode: database directory (WAL + checkpoints)")
		nosync    = flag.Bool("nosync", false, "with -durable: skip the per-commit fsync")
		validate  = flag.Bool("validate", false, "run the core invariant audit after load and recovery, reporting its wall time")
		obsDump   = flag.String("obs-dump", "", "write the final observability registry snapshot to FILE as indented JSON")

		chaosDir    = flag.String("chaos", "", "run the runtime chaos harness against database directory DIR: seeded fault injection under concurrent load, differentially verified")
		chaosEvents = flag.Int("chaos-events", 0, "with -chaos: minimum injected fault events (0 = the acceptance default, 500)")

		network     = flag.Bool("network", false, "run the network serving benchmark (catalog workload over the wire protocol)")
		connect     = flag.String("connect", "", "network mode: benchmark a running mctserved at ADDR (default: in-process loopback server)")
		connectFile = flag.String("connect-file", "", "network mode: read the server address from FILE (as written by mctserved -addr-file)")
		pool        = flag.Int("pool", 0, "network mode: client connection-pool size (0 = one per client)")
		serveAddr   = flag.String("serve", "", "boot a catalog mctserved on ADDR and block until SIGTERM (server half of the two-process bench)")
		addrFile    = flag.String("addr-file", "", "with -serve: write the bound address to FILE once listening")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mctbench:", err)
		os.Exit(1)
	}
	// Dump the instrument registry after whichever mode ran, so a harness can
	// inspect engine/storage/WAL counters without parsing the BENCH line.
	defer func() {
		if *obsDump == "" {
			return
		}
		b, err := json.MarshalIndent(obs.Default.Snapshot(), "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*obsDump, append(b, '\n'), 0o644); err != nil {
			fail(err)
		}
	}()

	if *serveAddr != "" {
		if err := runServe(*serveAddr, *addrFile, *concScale, *maxInfl); err != nil {
			fail(err)
		}
		return
	}

	if *network {
		addr := *connect
		if *connectFile != "" {
			b, err := os.ReadFile(*connectFile)
			if err != nil {
				fail(err)
			}
			addr = strings.TrimSpace(string(b))
		}
		res, err := experiment.Network(experiment.NetworkConfig{
			Addr:        addr,
			Clients:     *clients,
			Ops:         *clientOps,
			Scale:       *concScale,
			PoolSize:    *pool,
			Prepared:    *prepared,
			MaxInflight: *maxInfl,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println("=== Network serving throughput ===")
		fmt.Print(experiment.FormatNetwork(res))
		fmt.Println(res.BenchJSON())
		return
	}

	if *chaosDir != "" {
		res, err := experiment.Chaos(experiment.ChaosConfig{
			Dir:    *chaosDir,
			Seed:   *seed,
			Events: *chaosEvents,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println("=== Runtime chaos harness ===")
		fmt.Print(experiment.FormatChaos(res))
		fmt.Println(res.BenchJSON())
		return
	}

	if *t2serve {
		cfg := experiment.DefaultServe
		if *clients > 0 {
			cfg.Clients = *clients
		}
		cfg.Ops = *clientOps
		cfg.Scale = *tpcw
		cfg.Seed = *seed
		cfg.Prepared = *prepared
		res, err := experiment.Table2Serve(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println("=== Table 2 serving throughput ===")
		fmt.Print(experiment.FormatServe(res))
		fmt.Println(res.BenchJSON())
		return
	}

	if *clients > 0 {
		res, err := experiment.Concurrent(experiment.ConcurrentConfig{
			Clients:     *clients,
			Ops:         *clientOps,
			Scale:       *concScale,
			Parallel:    *parallel,
			Workers:     *parWork,
			Dir:         *durable,
			NoSync:      *nosync,
			Validate:    *validate,
			Prepared:    *prepared,
			NoCache:     *nocache,
			MaxInflight: *maxInfl,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println("=== Concurrent serving throughput ===")
		fmt.Print(experiment.FormatConcurrent(res))
		fmt.Println(res.BenchJSON())
		return
	}

	if !*table1 && !*table2 && !*fig11 && !*fig12 && !*comp {
		*all = true
	}
	cfg := experiment.Config{TPCWScale: *tpcw, SigmodScale: *sigmod, Seed: *seed, Cold: *cold}

	if *all || *table1 {
		rows, err := experiment.Table1(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println("=== Table 1: Storage Requirement ===")
		fmt.Print(experiment.FormatTable1(rows))
		fmt.Println()
	}
	if *all || *table2 {
		res, err := experiment.Table2(cfg, *runs)
		if err != nil {
			fail(err)
		}
		cache := "warm cache"
		if *cold {
			cache = "cold cache"
		}
		fmt.Printf("=== Table 2: Query Processing Time (%s) ===\n", cache)
		fmt.Print(experiment.FormatTable2(res))
		fmt.Println()
	}
	if *all || *comp {
		rows, err := experiment.CompiledAgreement(cfg, *runs)
		if err != nil {
			fail(err)
		}
		fmt.Println("=== Plan compiler vs hand-specified plans ===")
		fmt.Print(experiment.FormatCompiled(rows))
		fmt.Println()
	}
	runFigures(*all, *fig11, *fig12, fail)
}

// runServe boots a catalog-store wire server and blocks until SIGTERM,
// draining gracefully — the server half of the two-process network bench.
func runServe(addr, addrFile string, scale, maxInflight int) error {
	db, err := experiment.NewCatalogDB(scale)
	if err != nil {
		return err
	}
	if maxInflight > 0 {
		db.SetMaxInflight(maxInflight)
	}
	srv := server.New(db, server.Options{Name: "mctbench-serve"})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "mctbench: serving catalog (scale %d) on %s\n", scale, ln.Addr())

	stopSig := make(chan os.Signal, 2)
	signal.Notify(stopSig, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-stopSig
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // drain outcome is reported by Serve returning
	}()
	if err := srv.Serve(ln); err != nil {
		return err
	}
	return db.Close()
}

func runFigures(all, fig11, fig12 bool, fail func(error)) {
	if all || fig11 || fig12 {
		rows, err := experiment.Figures()
		if err != nil {
			fail(err)
		}
		if all || fig11 {
			fmt.Println("=== Figure 11 ===")
			fmt.Print(experiment.FormatFigure(rows, true))
			fmt.Println()
		}
		if all || fig12 {
			fmt.Println("=== Figure 12 ===")
			fmt.Print(experiment.FormatFigure(rows, false))
			fmt.Println()
		}
	}
}
