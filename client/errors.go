// Package client is the Go client for mctserved: a connection pool over
// the internal/wire protocol with health-checked checkout, per-call
// deadlines, retry of retryable failures, and a DB facade mirroring
// colorful.DB's Query/Prepare API.
//
// Typed errors survive the network: a server-side admission rejection
// arrives as an error satisfying errors.Is(err, colorful.ErrOverloaded)
// (and therefore colorful.IsRetryable); a degraded server's write refusal
// satisfies errors.Is(err, colorful.ErrReadOnly).
package client

import (
	"errors"
	"fmt"

	"colorfulxml/colorful"
	"colorfulxml/internal/wire"
)

// ErrClosed is reported by every operation on a closed DB or pool.
var ErrClosed = errors.New("client: closed")

// ErrDraining is reported when the server announced shutdown on the
// connection that carried the call. The request was NOT processed; callers
// that must not lose work should re-submit elsewhere. It is deliberately
// not retryable: during a drain every pooled connection is about to die,
// and the dial for a fresh one would fail anyway.
var ErrDraining = errors.New("client: server is draining")

// errConnBroken marks a connection unusable after a transport fault; the
// pool destroys it instead of parking it.
var errConnBroken = errors.New("client: connection broken")

// ServerError is a typed failure the server sent back. Unwrap maps the
// wire code onto the matching colorful sentinel, so errors.Is and
// colorful.IsRetryable work across the network.
type ServerError struct {
	Code wire.ErrCode
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error (%s): %s", e.Code, e.Msg)
}

func (e *ServerError) Unwrap() error {
	switch e.Code {
	case wire.CodeOverloaded:
		return colorful.ErrOverloaded
	case wire.CodeReadOnly:
		return colorful.ErrReadOnly
	case wire.CodeFailed:
		return colorful.ErrFailed
	case wire.CodeSessionClosed:
		return colorful.ErrSessionClosed
	case wire.CodeShuttingDown:
		return ErrDraining
	}
	return nil
}
