package client

import (
	"context"
	"time"

	"colorfulxml/colorful"
)

// Options tunes a client DB. The zero value gets sensible defaults.
type Options struct {
	// PoolSize caps live connections. Default 4.
	PoolSize int
	// DialTimeout bounds connect + handshake (and checkout pings). Default 5s.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline applied when the caller's
	// context has none. 0 (the default) means no deadline.
	CallTimeout time.Duration
	// MaxRetries is how many times a retryable failure (per
	// colorful.IsRetryable: admission-gate overload) is retried on a fresh
	// checkout with exponential backoff. Default 3; negative disables.
	MaxRetries int
	// RetryBackoff is the initial backoff between retries, doubling each
	// attempt. Default 10ms.
	RetryBackoff time.Duration
	// IdlePingAfter makes checkout ping a connection that sat idle longer
	// than this before handing it out. Default 1s; negative disables.
	IdlePingAfter time.Duration
	// ClientName is reported to the server in the handshake. Default
	// "client".
	ClientName string
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.IdlePingAfter == 0 {
		o.IdlePingAfter = time.Second
	}
	if o.ClientName == "" {
		o.ClientName = "client"
	}
	return o
}

// DB is the pooled facade over one mctserved address, mirroring
// colorful.DB's Query/Prepare surface. Safe for concurrent use.
type DB struct {
	pool *Pool
	opt  Options
}

// Open connects to addr with default options and validates the address
// with one dial + ping. The DB must be Closed.
func Open(addr string) (*DB, error) { return OpenOptions(addr, Options{}) }

// OpenOptions is Open with explicit tuning.
func OpenOptions(addr string, opt Options) (*DB, error) {
	opt = opt.withDefaults()
	db := &DB{pool: newPool(addr, opt), opt: opt}
	ctx, cancel := context.WithTimeout(context.Background(), opt.DialTimeout)
	defer cancel()
	c, err := db.pool.Get(ctx)
	if err != nil {
		db.pool.Close()
		return nil, err
	}
	pingErr := c.Ping(ctx)
	c.Release()
	if pingErr != nil {
		db.pool.Close()
		return nil, pingErr
	}
	return db, nil
}

// Close shuts the pool down. In-flight calls fail or complete; their
// connections are destroyed on return.
func (db *DB) Close() error {
	db.pool.Close()
	return nil
}

// Pool exposes the underlying pool (for direct Get/Release control).
func (db *DB) Pool() *Pool { return db.pool }

// callCtx applies the default CallTimeout when the caller set no deadline.
func (db *DB) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok || db.opt.CallTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, db.opt.CallTimeout)
}

// do runs fn on a checked-out connection, retrying retryable failures
// (admission-gate overload) on a fresh checkout with exponential backoff.
// Overload rejections happen before any execution server-side, so the
// retry is safe for updates too.
func (db *DB) do(ctx context.Context, fn func(c *Conn) error) error {
	backoff := db.opt.RetryBackoff
	for attempt := 0; ; attempt++ {
		c, err := db.pool.Get(ctx)
		if err != nil {
			return err
		}
		err = fn(c)
		c.Release()
		if err == nil {
			return nil
		}
		if attempt >= db.opt.MaxRetries || !colorful.IsRetryable(err) {
			return err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff *= 2
	}
}

// Query runs a one-shot query with the default call timeout.
func (db *DB) Query(src string) ([]Item, error) {
	return db.QueryContext(context.Background(), src)
}

// QueryContext runs a one-shot query; the context deadline rides to the
// server as the request's execution budget.
func (db *DB) QueryContext(ctx context.Context, src string) ([]Item, error) {
	ctx, cancel := db.callCtx(ctx)
	defer cancel()
	var out []Item
	err := db.do(ctx, func(c *Conn) error {
		items, err := c.Query(ctx, src)
		if err != nil {
			return err
		}
		out = items
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Update applies a mutation batch.
func (db *DB) Update(src string) (UpdateResult, error) {
	return db.UpdateContext(context.Background(), src)
}

// UpdateContext applies a mutation batch with a deadline.
func (db *DB) UpdateContext(ctx context.Context, src string) (UpdateResult, error) {
	ctx, cancel := db.callCtx(ctx)
	defer cancel()
	var out UpdateResult
	err := db.do(ctx, func(c *Conn) error {
		res, err := c.Update(ctx, src)
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	return out, err
}

// Ping verifies the server answers.
func (db *DB) Ping(ctx context.Context) error {
	ctx, cancel := db.callCtx(ctx)
	defer cancel()
	return db.do(ctx, func(c *Conn) error { return c.Ping(ctx) })
}

// Health fetches the server database's health state.
func (db *DB) Health(ctx context.Context) (HealthInfo, error) {
	ctx, cancel := db.callCtx(ctx)
	defer cancel()
	var out HealthInfo
	err := db.do(ctx, func(c *Conn) error {
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		out = h
		return nil
	})
	return out, err
}

// ServerStats fetches the server's serving snapshot.
func (db *DB) ServerStats(ctx context.Context) (ServerStats, error) {
	ctx, cancel := db.callCtx(ctx)
	defer cancel()
	var out ServerStats
	err := db.do(ctx, func(c *Conn) error {
		s, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		out = s
		return nil
	})
	return out, err
}
