package client_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"colorfulxml/client"
	"colorfulxml/colorful"
	"colorfulxml/internal/wire"
)

// connHandler answers post-handshake frames for one fake connection.
type connHandler func(typ wire.Type, payload []byte, w *wire.Writer) error

// fakeServer is a minimal wire-speaking peer for exercising pool and retry
// behavior without a real database. Each accepted connection gets its own
// handler instance, so per-connection scripting (fail twice, then drain) is
// just closure state.
type fakeServer struct {
	ln      net.Listener
	stopCh  chan struct{}
	wg      sync.WaitGroup
	newConn func() connHandler

	conns atomic.Int64
	pings atomic.Int64
}

func startFake(t *testing.T, newConn func() connHandler) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, stopCh: make(chan struct{}), newConn: newConn}
	fs.wg.Add(1)
	go fs.acceptLoop()
	t.Cleanup(func() {
		close(fs.stopCh)
		fs.ln.Close()
		fs.wg.Wait()
	})
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) acceptLoop() {
	defer fs.wg.Done()
	for {
		select {
		case <-fs.stopCh:
			return
		default:
		}
		nc, err := fs.ln.Accept()
		if err != nil {
			return // listener closed by the cleanup
		}
		fs.conns.Add(1)
		fs.wg.Add(1)
		go fs.serveConn(nc)
	}
}

func (fs *fakeServer) serveConn(nc net.Conn) {
	defer fs.wg.Done()
	defer nc.Close()
	r, w := wire.NewReader(nc), wire.NewWriter(nc)

	typ, payload, err := r.ReadFrame()
	if err != nil || typ != wire.TypeHello {
		return
	}
	if _, err := wire.DecodeHello(payload); err != nil {
		return
	}
	if err := w.WriteFrame(wire.TypeWelcome, wire.Welcome{Proto: wire.ProtoVersion, Server: "fake"}.Encode()); err != nil {
		return
	}

	handle := fs.newConn()
	for {
		// A bounded read keeps this goroutine from outliving the test if a
		// client parks the connection; the stop channel owns real shutdown.
		select {
		case <-fs.stopCh:
			return
		default:
		}
		nc.SetReadDeadline(time.Now().Add(time.Second)) //nolint:errcheck // net.Conn deadlines do not fail
		typ, payload, err := r.ReadFrame()
		if err != nil {
			return
		}
		if typ == wire.TypePing {
			fs.pings.Add(1)
			if err := w.WriteFrame(wire.TypePong, nil); err != nil {
				return
			}
			continue
		}
		if err := handle(typ, payload, w); err != nil {
			return
		}
	}
}

// oneItem answers every Query with a single canned item.
func oneItem() connHandler {
	return func(typ wire.Type, payload []byte, w *wire.Writer) error {
		if typ != wire.TypeQuery {
			return w.WriteFrame(wire.TypeError, wire.ErrorMsg{Code: wire.CodeBadRequest, Msg: "fake server only answers Query"}.Encode())
		}
		items := wire.Items{Items: []wire.Item{{Node: 1, Color: "red", Value: "ok"}}}
		return w.WriteFrame(wire.TypeItems, items.Encode())
	}
}

func TestPoolReusesConnections(t *testing.T) {
	fs := startFake(t, oneItem)
	cdb, err := client.OpenOptions(fs.addr(), client.Options{PoolSize: 4, IdlePingAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	for i := 0; i < 10; i++ {
		items, err := cdb.Query("q")
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(items) != 1 || items[0].Value != "ok" {
			t.Fatalf("query %d returned %+v", i, items)
		}
	}
	// Sequential load keeps returning the same connection to the idle list:
	// one dial (made by OpenOptions' validation) serves everything.
	if n := fs.conns.Load(); n != 1 {
		t.Fatalf("sequential queries used %d connections, want 1", n)
	}
}

func TestPoolBlocksAtCapacity(t *testing.T) {
	fs := startFake(t, oneItem)
	cdb, err := client.OpenOptions(fs.addr(), client.Options{PoolSize: 1, IdlePingAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	pool := cdb.Pool()

	c1, err := pool.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The single slot is out: a bounded Get must time out, not dial.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := pool.Get(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get at capacity: err = %v, want DeadlineExceeded", err)
	}

	c1.Release()
	c2, err := pool.Get(context.Background())
	if err != nil {
		t.Fatalf("Get after release: %v", err)
	}
	if c2 != c1 {
		t.Fatal("released connection was not the one handed back out")
	}
	c2.Release()
	if n := fs.conns.Load(); n != 1 {
		t.Fatalf("capacity-1 pool dialed %d connections, want 1", n)
	}
}

func TestRetryRecoversFromOverload(t *testing.T) {
	var queries atomic.Int64
	fs := startFake(t, func() connHandler {
		base := oneItem()
		return func(typ wire.Type, payload []byte, w *wire.Writer) error {
			if typ == wire.TypeQuery && queries.Add(1) <= 2 {
				return w.WriteFrame(wire.TypeError, wire.ErrorMsg{Code: wire.CodeOverloaded, Msg: "busy"}.Encode())
			}
			return base(typ, payload, w)
		}
	})
	cdb, err := client.OpenOptions(fs.addr(), client.Options{
		PoolSize: 2, MaxRetries: 3, RetryBackoff: time.Millisecond, IdlePingAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	items, err := cdb.Query("q")
	if err != nil {
		t.Fatalf("query with retries: %v", err)
	}
	if len(items) != 1 {
		t.Fatalf("query returned %d items, want 1", len(items))
	}
	if n := queries.Load(); n != 3 {
		t.Fatalf("server saw %d query attempts, want 3 (2 rejections + 1 success)", n)
	}
}

func TestOverloadSurfacesTypedWhenRetriesDisabled(t *testing.T) {
	fs := startFake(t, func() connHandler {
		return func(typ wire.Type, payload []byte, w *wire.Writer) error {
			return w.WriteFrame(wire.TypeError, wire.ErrorMsg{Code: wire.CodeOverloaded, Msg: "busy"}.Encode())
		}
	})
	cdb, err := client.OpenOptions(fs.addr(), client.Options{MaxRetries: -1, IdlePingAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	_, err = cdb.Query("q")
	if !errors.Is(err, colorful.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !colorful.IsRetryable(err) {
		t.Fatal("overload must classify as retryable")
	}
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeOverloaded {
		t.Fatalf("err = %v, want ServerError{CodeOverloaded}", err)
	}
}

func TestReadOnlyIsNotRetried(t *testing.T) {
	var queries atomic.Int64
	fs := startFake(t, func() connHandler {
		return func(typ wire.Type, payload []byte, w *wire.Writer) error {
			queries.Add(1)
			return w.WriteFrame(wire.TypeError, wire.ErrorMsg{Code: wire.CodeReadOnly, Msg: "degraded"}.Encode())
		}
	})
	cdb, err := client.OpenOptions(fs.addr(), client.Options{
		MaxRetries: 5, RetryBackoff: time.Millisecond, IdlePingAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	_, err = cdb.Update("u")
	if !errors.Is(err, colorful.ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
	if colorful.IsRetryable(err) {
		t.Fatal("read-only rejection must not classify as retryable")
	}
	if n := queries.Load(); n != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retries of a non-retryable error)", n)
	}
}

func TestDrainNoticeBreaksConnection(t *testing.T) {
	fs := startFake(t, func() connHandler {
		served := 0
		base := oneItem()
		return func(typ wire.Type, payload []byte, w *wire.Writer) error {
			if typ == wire.TypeQuery && served == 0 {
				served++
				return base(typ, payload, w)
			}
			// Second request on this connection: refuse with a drain notice.
			w.WriteFrame(wire.TypeDrain, wire.Drain{Reason: "going away"}.Encode()) //nolint:errcheck // conn closes next
			return errors.New("draining")
		}
	})
	cdb, err := client.OpenOptions(fs.addr(), client.Options{MaxRetries: -1, IdlePingAfter: -1, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	// Pings are answered outside the handler, so the sequence on the single
	// pooled connection is deterministic: first query served, second refused
	// with a Drain notice.
	if _, err := cdb.Query("q"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	_, err = cdb.Query("q")
	if !errors.Is(err, client.ErrDraining) {
		t.Fatalf("second query: err = %v, want ErrDraining", err)
	}
	if colorful.IsRetryable(err) {
		t.Fatal("a drain notice must not be silently retryable")
	}
	// The drained connection must not be reused: the next call dials fresh
	// (a new handler instance) and succeeds.
	if _, err := cdb.Query("q"); err != nil {
		t.Fatalf("query after drain: %v", err)
	}
	if fs.conns.Load() != 2 {
		t.Fatalf("client made %d dials, want 2 (drained connection discarded)", fs.conns.Load())
	}
}

func TestIdleCheckoutPings(t *testing.T) {
	fs := startFake(t, oneItem)
	cdb, err := client.OpenOptions(fs.addr(), client.Options{PoolSize: 1, IdlePingAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	if _, err := cdb.Query("q"); err != nil {
		t.Fatal(err)
	}
	before := fs.pings.Load()
	time.Sleep(30 * time.Millisecond)
	if _, err := cdb.Query("q"); err != nil {
		t.Fatal(err)
	}
	if fs.pings.Load() <= before {
		t.Fatal("checkout after idle period skipped the health ping")
	}
}

func TestClosedClientRefusesCalls(t *testing.T) {
	fs := startFake(t, oneItem)
	cdb, err := client.OpenOptions(fs.addr(), client.Options{IdlePingAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cdb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cdb.Query("q"); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("query on closed client: err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := cdb.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsDeadAddress(t *testing.T) {
	// A listener that is closed immediately: Open's validation dial fails
	// instead of returning a half-dead client.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := client.OpenOptions(addr, client.Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("Open succeeded against a dead address")
	}
}
