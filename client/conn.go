package client

import (
	"context"
	"fmt"
	"net"
	"time"

	"colorfulxml/colorful"
	"colorfulxml/internal/wire"
)

// Item is one query result: the node's stable ID (0 for atomic values),
// the color it was selected under, and its text value.
type Item struct {
	Node  uint64
	Color string
	Value string
}

// UpdateResult mirrors colorful.UpdateResult.
type UpdateResult struct {
	Tuples       int
	NodesTouched int
}

// HealthInfo is the server database's health, fetched over the wire.
type HealthInfo struct {
	State    colorful.Health
	Cause    string
	Degrades uint64
	Heals    uint64
}

// ServerStats is the server's point-in-time snapshot.
type ServerStats struct {
	Connections uint64
	Open        uint64
	Requests    uint64
	Responses   uint64
	Errors      uint64
	StmtsOpen   uint64
	CursorsOpen uint64
	Draining    bool
}

// Conn is one protocol connection. A Conn is owned by a single goroutine
// between checkout and Release/Close; it is not safe for concurrent use.
type Conn struct {
	pool *Pool // nil when raw-dialed
	nc   net.Conn
	r    *wire.Reader
	w    *wire.Writer

	serverName string
	// handles caches server-side prepared-statement handles by query text;
	// they are connection-scoped and die with the connection.
	handles  map[string]uint64
	lastUsed time.Time
	broken   bool
}

// Dial opens a raw (unpooled) connection and performs the handshake. Most
// callers want Open instead; Dial is the escape hatch for single-connection
// tools. The caller must Close it.
func Dial(addr string, opt Options) (*Conn, error) {
	opt = opt.withDefaults()
	nc, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Conn{
		nc:      nc,
		r:       wire.NewReader(nc),
		w:       wire.NewWriter(nc),
		handles: map[string]uint64{},
	}
	nc.SetDeadline(time.Now().Add(opt.DialTimeout)) //nolint:errcheck // net.Conn deadlines do not fail
	if err := c.handshake(opt.ClientName); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{}) //nolint:errcheck // net.Conn deadlines do not fail
	c.lastUsed = time.Now()
	return c, nil
}

func (c *Conn) handshake(clientName string) error {
	hello := wire.Hello{Proto: wire.ProtoVersion, Client: clientName}
	if err := c.w.WriteFrame(wire.TypeHello, hello.Encode()); err != nil {
		return fmt.Errorf("client: handshake write: %w", err)
	}
	typ, payload, err := c.r.ReadFrame()
	if err != nil {
		return fmt.Errorf("client: handshake read: %w", err)
	}
	switch typ {
	case wire.TypeWelcome:
		welcome, err := wire.DecodeWelcome(payload)
		if err != nil {
			return err
		}
		if welcome.Proto != wire.ProtoVersion {
			return fmt.Errorf("client: server speaks protocol %d, want %d", welcome.Proto, wire.ProtoVersion)
		}
		c.serverName = welcome.Server
		return nil
	case wire.TypeError:
		return asServerError(payload)
	default:
		return fmt.Errorf("client: handshake: unexpected frame %v", typ)
	}
}

// ServerName reports the name the server announced in the handshake.
func (c *Conn) ServerName() string { return c.serverName }

// Release returns a pooled connection for reuse (or destroys it if it
// broke). For a raw-dialed connection it is equivalent to Close.
func (c *Conn) Release() {
	if c.pool == nil {
		c.nc.Close()
		return
	}
	c.pool.put(c)
}

// Close destroys the connection. For pooled connections this frees the
// pool slot; use Release to return a healthy connection instead.
func (c *Conn) Close() error {
	c.broken = true
	if c.pool == nil {
		return c.nc.Close()
	}
	c.pool.put(c)
	return nil
}

func asServerError(payload []byte) error {
	em, err := wire.DecodeError(payload)
	if err != nil {
		return err
	}
	return &ServerError{Code: em.Code, Msg: em.Msg}
}

// arm applies the context deadline (if any) to the socket for the next
// write+read pair.
func (c *Conn) arm(ctx context.Context) {
	if d, ok := ctx.Deadline(); ok {
		c.nc.SetDeadline(d) //nolint:errcheck // net.Conn deadlines do not fail
	} else {
		c.nc.SetDeadline(time.Time{}) //nolint:errcheck // net.Conn deadlines do not fail
	}
}

// deadlineMillis converts the context deadline into the request's
// remaining-budget field (0 = none).
func deadlineMillis(ctx context.Context) uint64 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return uint64(ms)
}

// roundTrip sends one request frame and reads one response frame. A
// transport fault or a Drain notice marks the connection broken.
func (c *Conn) roundTrip(ctx context.Context, typ wire.Type, payload []byte) (wire.Type, []byte, error) {
	if c.broken {
		return 0, nil, errConnBroken
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	c.arm(ctx)
	if err := c.w.WriteFrame(typ, payload); err != nil {
		c.broken = true
		return 0, nil, fmt.Errorf("client: write %v: %w", typ, err)
	}
	return c.readFrame()
}

// readFrame reads one response frame, turning Drain notices into
// ErrDraining.
func (c *Conn) readFrame() (wire.Type, []byte, error) {
	typ, payload, err := c.r.ReadFrame()
	if err != nil {
		c.broken = true
		return 0, nil, fmt.Errorf("client: read: %w", err)
	}
	if typ == wire.TypeDrain {
		c.broken = true
		d, derr := wire.DecodeDrain(payload)
		if derr != nil {
			return 0, nil, fmt.Errorf("client: %w", ErrDraining)
		}
		return 0, nil, fmt.Errorf("client: %w: %s", ErrDraining, d.Reason)
	}
	return typ, payload, nil
}

// expect narrows a response frame to the wanted type, decoding typed Error
// responses.
func expect(want, typ wire.Type, payload []byte) ([]byte, error) {
	if typ == wire.TypeError {
		return nil, asServerError(payload)
	}
	if typ != want {
		return nil, fmt.Errorf("client: unexpected response %v, want %v", typ, want)
	}
	return payload, nil
}

func fromWireItems(items []wire.Item) []Item {
	out := make([]Item, len(items))
	for i, it := range items {
		out[i] = Item{Node: it.Node, Color: it.Color, Value: it.Value}
	}
	return out
}

// Query runs a one-shot query and collects the streamed result.
func (c *Conn) Query(ctx context.Context, src string) ([]Item, error) {
	req := wire.Query{Src: src, DeadlineMillis: deadlineMillis(ctx)}
	typ, payload, err := c.roundTrip(ctx, wire.TypeQuery, req.Encode())
	if err != nil {
		return nil, err
	}
	var out []Item
	for {
		p, err := expect(wire.TypeItems, typ, payload)
		if err != nil {
			return nil, err
		}
		chunk, err := wire.DecodeItems(p)
		if err != nil {
			c.broken = true
			return nil, err
		}
		out = append(out, fromWireItems(chunk.Items)...)
		if !chunk.More {
			return out, nil
		}
		typ, payload, err = c.readFrame()
		if err != nil {
			return nil, err
		}
	}
}

// prepare returns the connection's server-side handle for src, preparing
// it on first use.
func (c *Conn) prepare(ctx context.Context, src string) (uint64, error) {
	if h, ok := c.handles[src]; ok {
		return h, nil
	}
	typ, payload, err := c.roundTrip(ctx, wire.TypePrepare, wire.Prepare{Src: src}.Encode())
	if err != nil {
		return 0, err
	}
	p, err := expect(wire.TypePrepared, typ, payload)
	if err != nil {
		return 0, err
	}
	prepared, err := wire.DecodePrepared(p)
	if err != nil {
		c.broken = true
		return 0, err
	}
	c.handles[src] = prepared.Stmt
	return prepared.Stmt, nil
}

// execStmt prepares (cached), executes, and drains the cursor.
func (c *Conn) execStmt(ctx context.Context, src string) ([]Item, error) {
	h, err := c.prepare(ctx, src)
	if err != nil {
		return nil, err
	}
	req := wire.Execute{Stmt: h, DeadlineMillis: deadlineMillis(ctx)}
	typ, payload, err := c.roundTrip(ctx, wire.TypeExecute, req.Encode())
	if err != nil {
		return nil, err
	}
	p, err := expect(wire.TypeExecuted, typ, payload)
	if err != nil {
		return nil, err
	}
	ex, err := wire.DecodeExecuted(p)
	if err != nil {
		c.broken = true
		return nil, err
	}
	if ex.Cursor == 0 {
		return []Item{}, nil
	}
	out := make([]Item, 0, ex.Rows)
	for {
		typ, payload, err := c.roundTrip(ctx, wire.TypeFetch, wire.Fetch{Cursor: ex.Cursor}.Encode())
		if err != nil {
			return nil, err
		}
		p, err := expect(wire.TypeItems, typ, payload)
		if err != nil {
			return nil, err
		}
		chunk, err := wire.DecodeItems(p)
		if err != nil {
			c.broken = true
			return nil, err
		}
		out = append(out, fromWireItems(chunk.Items)...)
		if !chunk.More {
			return out, nil
		}
	}
}

// Update applies a mutation batch.
func (c *Conn) Update(ctx context.Context, src string) (UpdateResult, error) {
	req := wire.Update{Src: src, DeadlineMillis: deadlineMillis(ctx)}
	typ, payload, err := c.roundTrip(ctx, wire.TypeUpdate, req.Encode())
	if err != nil {
		return UpdateResult{}, err
	}
	p, err := expect(wire.TypeUpdated, typ, payload)
	if err != nil {
		return UpdateResult{}, err
	}
	u, err := wire.DecodeUpdated(p)
	if err != nil {
		c.broken = true
		return UpdateResult{}, err
	}
	return UpdateResult{Tuples: int(u.Tuples), NodesTouched: int(u.NodesTouched)}, nil
}

// Ping round-trips a no-op frame.
func (c *Conn) Ping(ctx context.Context) error {
	typ, payload, err := c.roundTrip(ctx, wire.TypePing, nil)
	if err != nil {
		return err
	}
	_, err = expect(wire.TypePong, typ, payload)
	return err
}

// Health fetches the server database's health state.
func (c *Conn) Health(ctx context.Context) (HealthInfo, error) {
	typ, payload, err := c.roundTrip(ctx, wire.TypeHealth, nil)
	if err != nil {
		return HealthInfo{}, err
	}
	p, err := expect(wire.TypeHealthInfo, typ, payload)
	if err != nil {
		return HealthInfo{}, err
	}
	h, err := wire.DecodeHealthInfo(p)
	if err != nil {
		c.broken = true
		return HealthInfo{}, err
	}
	return HealthInfo{State: colorful.Health(h.State), Cause: h.Cause, Degrades: h.Degrades, Heals: h.Heals}, nil
}

// Stats fetches the server's serving snapshot.
func (c *Conn) Stats(ctx context.Context) (ServerStats, error) {
	typ, payload, err := c.roundTrip(ctx, wire.TypeStats, nil)
	if err != nil {
		return ServerStats{}, err
	}
	p, err := expect(wire.TypeStatsInfo, typ, payload)
	if err != nil {
		return ServerStats{}, err
	}
	s, err := wire.DecodeStatsInfo(p)
	if err != nil {
		c.broken = true
		return ServerStats{}, err
	}
	return ServerStats{
		Connections: s.Connections,
		Open:        s.Open,
		Requests:    s.Requests,
		Responses:   s.Responses,
		Errors:      s.Errors,
		StmtsOpen:   s.StmtsOpen,
		CursorsOpen: s.CursorsOpen,
		Draining:    s.Draining,
	}, nil
}
