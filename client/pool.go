package client

import (
	"context"
	"sync/atomic"
	"time"
)

// Pool is a fixed-capacity connection pool with health-checked checkout.
// Capacity is enforced by the slots channel (one token per live
// connection); idle connections park in the idle channel. There is no
// background goroutine: health is verified at checkout, and a connection
// that breaks mid-call is destroyed on return instead of parked.
type Pool struct {
	addr   string
	opt    Options
	idle   chan *Conn
	slots  chan struct{}
	closed atomic.Bool
}

func newPool(addr string, opt Options) *Pool {
	return &Pool{
		addr:  addr,
		opt:   opt,
		idle:  make(chan *Conn, opt.PoolSize),
		slots: make(chan struct{}, opt.PoolSize),
	}
}

// Get checks out a connection: an idle one that passes the health check,
// or a fresh dial when a capacity slot is free. It blocks until one of
// those or ctx expires. Every returned Conn must reach Release (healthy
// return) or Close (destroy).
func (p *Pool) Get(ctx context.Context) (*Conn, error) {
	for {
		if p.closed.Load() {
			return nil, ErrClosed
		}
		// Fast path: an idle connection is waiting.
		select {
		case c := <-p.idle:
			if p.healthy(ctx, c) {
				return c, nil
			}
			p.destroy(c)
			continue
		default:
		}
		select {
		case c := <-p.idle:
			if p.healthy(ctx, c) {
				return c, nil
			}
			p.destroy(c)
		case p.slots <- struct{}{}:
			c, err := Dial(p.addr, p.opt)
			if err != nil {
				<-p.slots
				return nil, err
			}
			c.pool = p
			return c, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// healthy vets an idle connection at checkout: broken ones fail outright,
// and one idle past IdlePingAfter must answer a bounded Ping (catching
// server restarts and half-open sockets before the caller's request rides
// on them).
func (p *Pool) healthy(ctx context.Context, c *Conn) bool {
	if c.broken {
		return false
	}
	if p.opt.IdlePingAfter <= 0 || time.Since(c.lastUsed) < p.opt.IdlePingAfter {
		return true
	}
	pingCtx, cancel := context.WithTimeout(ctx, p.opt.DialTimeout)
	defer cancel()
	return c.Ping(pingCtx) == nil
}

// put returns a checked-out connection: healthy ones park for reuse,
// broken ones are destroyed, and anything returned after Close is
// destroyed too.
func (p *Pool) put(c *Conn) {
	if c.broken || p.closed.Load() {
		p.destroy(c)
		return
	}
	c.lastUsed = time.Now()
	select {
	case p.idle <- c:
	default:
		p.destroy(c)
		return
	}
	// Close may have drained idle between our check and the park; re-check
	// so no connection outlives the pool.
	if p.closed.Load() {
		p.drainIdle()
	}
}

// destroy closes the socket and frees the capacity slot.
func (p *Pool) destroy(c *Conn) {
	c.broken = true
	c.nc.Close()
	select {
	case <-p.slots:
	default:
	}
}

func (p *Pool) drainIdle() {
	for {
		select {
		case c := <-p.idle:
			p.destroy(c)
		default:
			return
		}
	}
}

// Close marks the pool closed and destroys idle connections. Checked-out
// connections are destroyed as they come back.
func (p *Pool) Close() {
	p.closed.Store(true)
	p.drainIdle()
}
