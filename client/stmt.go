package client

import (
	"context"
	"sync/atomic"
)

// Stmt is a prepared statement over the pool. The statement text is
// prepared lazily on each connection that executes it (server-side handles
// are connection-scoped) and cached there, so repeated executions across
// the pool all hit the server's prepared path. Close after use.
type Stmt struct {
	db     *DB
	src    string
	closed atomic.Bool
}

// Prepare validates src by preparing it on one connection and returns a
// pool-wide statement.
func (db *DB) Prepare(src string) (*Stmt, error) {
	ctx, cancel := db.callCtx(context.Background())
	defer cancel()
	err := db.do(ctx, func(c *Conn) error {
		_, err := c.prepare(ctx, src)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, src: src}, nil
}

// Text returns the statement's source text.
func (st *Stmt) Text() string { return st.src }

// Query executes the statement with the default call timeout.
func (st *Stmt) Query() ([]Item, error) {
	return st.QueryContext(context.Background())
}

// QueryContext executes the statement and drains its cursor.
func (st *Stmt) QueryContext(ctx context.Context) ([]Item, error) {
	if st.closed.Load() {
		return nil, ErrClosed
	}
	ctx, cancel := st.db.callCtx(ctx)
	defer cancel()
	var out []Item
	err := st.db.do(ctx, func(c *Conn) error {
		items, err := c.execStmt(ctx, st.src)
		if err != nil {
			return err
		}
		out = items
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close retires the statement. Server-side handles are connection-scoped
// and are freed with their connections; Close only fences further use.
func (st *Stmt) Close() error {
	st.closed.Store(true)
	return nil
}
