// The moviedb example demonstrates the update language and the exchange
// serialization on the movie database: it fixes the paper's motivating
// update anomaly (adding a birthDate to an actor stored once, not per
// movie), adopts a late-nominated movie into the award hierarchy through an
// update, and round-trips the whole multi-colored database through plain
// XML.
package main

import (
	"fmt"
	"log"

	"colorfulxml/colorful"
)

func main() {
	db := build()

	// --- The update-anomaly fix (paper Section 1) -----------------------
	// In a deep single-hierarchy design, actor data is replicated per movie
	// and adding a birthDate means touching every copy. In MCT the actor is
	// stored once:
	res, err := db.Update(`
for $a in document("mdb")/{blue}descendant::actor[{blue}child::name = "Bette Davis"]
update $a { insert <birthDate>1908-04-05</birthDate> }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insert birthDate: touched %d node(s) (one actor, stored once)\n", res.NodesTouched)

	// --- Cross-hierarchy adoption through an update ----------------------
	// Duck Soup gets a retrospective nomination: insert the EXISTING red
	// movie node under the 1959 award year. Update operations implicitly
	// apply the next-color constructor.
	res, err = db.Update(`
for $y in document("mdb")/{green}descendant::year[{green}child::name = "1959"],
    $m in document("mdb")/{red}descendant::movie[{red}child::name = "Duck Soup"]
update $y { insert $m }`)
	if err != nil {
		log.Fatal(err)
	}
	duck := db.MustQuery(`document("mdb")/{green}descendant::movie[{red}child::name = "Duck Soup"]`)
	fmt.Printf("adopted Duck Soup into the award hierarchy: now %s (red+green)\n",
		colorful.Label(duck[0].Node))

	// --- Content update ---------------------------------------------------
	res, err = db.Update(`
for $m in document("mdb")/{green}descendant::movie,
    $v in $m/{green}child::votes
where $v < 12
update $m { replace $v with "12" }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vote correction: %d node(s) updated\n", res.NodesTouched)

	// --- Exchange round trip ----------------------------------------------
	xml, err := db.XMLString(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized database: %d bytes of plain XML; excerpt:\n", len(xml))
	excerpt := xml
	if len(excerpt) > 600 {
		excerpt = excerpt[:600] + "\n  ..."
	}
	fmt.Println(excerpt)

	back, err := colorful.UnmarshalXML(xml)
	if err != nil {
		log.Fatal(err)
	}
	if ok, why := colorful.Isomorphic(db, back); !ok {
		log.Fatalf("round trip lost information: %s", why)
	}
	fmt.Println("\nreconstructed database is isomorphic to the original — all hierarchies intact")

	// Prove it by querying the RECONSTRUCTED database across hierarchies.
	out, err := back.Query(`
for $a in document("mdb")/{green}descendant::movie[{green}child::votes >= 12]/
        {red}child::movie-role/{blue}parent::actor
return createColor(report, <actor> { createCopy($a/{blue}child::name) } </actor>)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("actors of well-voted movies (queried on the reconstruction):")
	for _, it := range out {
		fmt.Printf("  %s\n", it.Value)
	}
}

func build() *colorful.DB {
	db := colorful.New("red", "green", "blue")
	doc := db.Document()
	must := func(n *colorful.Node, err error) *colorful.Node {
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	genres := must(db.AddElement(doc, "movie-genres", "red"))
	comedy := must(db.AddElement(genres, "movie-genre", "red"))
	must(db.AddElementText(comedy, "name", "red", "Comedy"))
	awards := must(db.AddElement(doc, "movie-awards", "green"))
	oscar := must(db.AddElement(awards, "movie-award", "green"))
	must(db.AddElementText(oscar, "name", "green", "Oscar Best Movie"))
	y1950 := must(db.AddElement(oscar, "year", "green"))
	must(db.AddElementText(y1950, "name", "green", "1950"))
	y1959 := must(db.AddElement(oscar, "year", "green"))
	must(db.AddElementText(y1959, "name", "green", "1959"))
	actors := must(db.AddElement(doc, "actors", "blue"))
	bette := must(db.AddElement(actors, "actor", "blue"))
	must(db.AddElementText(bette, "name", "blue", "Bette Davis"))
	marilyn := must(db.AddElement(actors, "actor", "blue"))
	must(db.AddElementText(marilyn, "name", "blue", "Marilyn Monroe"))
	groucho := must(db.AddElement(actors, "actor", "blue"))
	must(db.AddElementText(groucho, "name", "blue", "Groucho Marx"))

	add := func(title string, year *colorful.Node, votes string, actor *colorful.Node, role string) {
		m := must(db.AddElement(comedy, "movie", "red"))
		must(db.AddElementText(m, "name", "red", title))
		if year != nil {
			check(db.Adopt(year, m, "green"))
			must(db.AddElementText(m, "votes", "green", votes))
		}
		r := must(db.AddElement(m, "movie-role", "red"))
		must(db.AddElementText(r, "name", "red", role))
		check(db.Adopt(actor, r, "blue"))
	}
	add("All About Eve", y1950, "14", bette, "Margo Channing")
	add("Some Like It Hot", y1959, "11", marilyn, "Sugar")
	add("Duck Soup", nil, "", groucho, "Rufus T. Firefly")
	if err := db.Validate(); err != nil {
		log.Fatal(err)
	}
	return db
}
