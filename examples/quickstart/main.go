// The quickstart example builds the paper's Figure 2 movie database through
// the public API and runs the five example queries of Figure 1 (Q1–Q5),
// printing their results. It is the "hello world" of multi-colored trees:
// one set of movie nodes, three hierarchies (genres, awards, actors).
package main

import (
	"fmt"
	"log"

	"colorfulxml/colorful"
)

func main() {
	db := buildMovieDB()

	run := func(label, desc, query string) {
		fmt.Printf("\n%s — %s\n", label, desc)
		out, err := db.Query(query)
		if err != nil {
			log.Fatalf("%s failed: %v", label, err)
		}
		for _, it := range out {
			if it.Node != nil {
				fmt.Printf("  %s [%s] = %q\n", it.Node.Name(), colorful.Label(it.Node), it.Value)
			} else {
				fmt.Printf("  %q\n", it.Value)
			}
		}
	}

	// Q1: Return names of comedy movies whose title contains the word Eve.
	run("Q1", "comedy movies titled *Eve*", `
for $m in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/
        {red}descendant::movie[contains({red}child::name, "Eve")]
return createColor(black, <m-name> { $m/{red}child::name } </m-name>)`)

	// Q2: ... that were nominated for an Oscar. Two hierarchies, joined on
	// node identity ($m = $n) rather than by values.
	run("Q2", "Oscar-nominated comedies titled *Eve*", `
for $m in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/
        {red}descendant::movie[contains({red}child::name, "Eve")],
    $n in document("mdb.xml")/{green}descendant::movie-award
        [contains({green}child::name, "Oscar")]/{green}descendant::movie
where $m = $n
return createColor(black, <m-name2> { createCopy($m/{red}child::name) } </m-name2>)`)

	// Q3: Oscar-nominated comedies in which Bette Davis acted: the shared
	// movie-role node links the red (movie) and blue (actor) hierarchies.
	run("Q3", "Oscar comedies with Bette Davis", `
for $m in document("mdb.xml")/{green}descendant::movie-award
        [contains({green}child::name, "Oscar")]/{green}descendant::movie,
    $r in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/
        {red}descendant::movie[. = $m]/{red}child::movie-role,
    $s in document("mdb.xml")/{blue}descendant::actor
        [{blue}child::name = "Bette Davis"]/{blue}child::movie-role
where $r = $s
return createColor(black, <m-name3> { createCopy($m/{red}child::name) } </m-name3>)`)

	// Q4: actors in Oscar-nominated movies with more than 10 votes — a
	// single path expression that changes color twice (green > red > blue).
	run("Q4", "actors in Oscar movies with >10 votes", `
for $a in document("mdb.xml")/{green}descendant::movie-award
        [contains({green}child::name, "Oscar")]/{green}descendant::movie
        [{green}child::votes > 10]/{red}child::movie-role/{blue}parent::actor
return createColor(black, <a-name> { createCopy($a/{blue}child::name) } </a-name>)`)

	// Q5: restructure — group Oscar-nominated movies by votes into a brand
	// new (black) hierarchy over the existing movie nodes (paper Figure 7).
	run("Q5", "movies grouped by votes (new colored tree)", `
createColor(black, <byvotes> {
  for $v in distinct-values(document("mdb.xml")/{green}descendant::votes)
  order by $v
  return
    <award-byvotes>
      { for $m in document("mdb.xml")/{green}descendant::movie[{green}child::votes = $v]
        return $m }
      <votes> { $v } </votes>
    </award-byvotes>
} </byvotes>)`)

	// The movie nodes now carry a third color (paper: "movie nodes now have
	// three colors").
	movies := db.MustQuery(`document("mdb.xml")/{black}descendant::movie`)
	fmt.Printf("\nAfter Q5, %d movie nodes are black too; the first is %s\n",
		len(movies), colorful.Label(movies[0].Node))

	if err := db.Validate(); err != nil {
		log.Fatalf("database invariants violated: %v", err)
	}
	fmt.Println("\ndatabase validates: every node is in exactly one rooted tree per color")
}

// buildMovieDB constructs the Figure 2 database: red genres, green awards,
// blue actors; movies red+green when nominated; movie-roles red+blue.
func buildMovieDB() *colorful.DB {
	db := colorful.New("red", "green", "blue")
	doc := db.Document()
	must := func(n *colorful.Node, err error) *colorful.Node {
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Red: the genre hierarchy.
	genres := must(db.AddElement(doc, "movie-genres", "red"))
	comedy := must(db.AddElement(genres, "movie-genre", "red"))
	must(db.AddElementText(comedy, "name", "red", "Comedy"))
	slapstick := must(db.AddElement(comedy, "movie-genre", "red"))
	must(db.AddElementText(slapstick, "name", "red", "Slapstick"))

	// Green: the Oscar temporal hierarchy.
	awards := must(db.AddElement(doc, "movie-awards", "green"))
	oscar := must(db.AddElement(awards, "movie-award", "green"))
	must(db.AddElementText(oscar, "name", "green", "Oscar Best Movie"))
	y1950 := must(db.AddElement(oscar, "year", "green"))
	must(db.AddElementText(y1950, "name", "green", "1950"))
	y1959 := must(db.AddElement(oscar, "year", "green"))
	must(db.AddElementText(y1959, "name", "green", "1959"))

	// Blue: actors.
	actors := must(db.AddElement(doc, "actors", "blue"))
	bette := must(db.AddElement(actors, "actor", "blue"))
	must(db.AddElementText(bette, "name", "blue", "Bette Davis"))
	marilyn := must(db.AddElement(actors, "actor", "blue"))
	must(db.AddElementText(marilyn, "name", "blue", "Marilyn Monroe"))
	groucho := must(db.AddElement(actors, "actor", "blue"))
	must(db.AddElementText(groucho, "name", "blue", "Groucho Marx"))

	// Movies. A nominated movie is adopted into the green hierarchy — the
	// next-color constructor in action.
	addMovie := func(genre *colorful.Node, title string, year *colorful.Node, votes string,
		actor *colorful.Node, role string) {
		m := must(db.AddElement(genre, "movie", "red"))
		name := must(db.AddElementText(m, "name", "red", title))
		if year != nil {
			check(db.Adopt(year, m, "green"))
			check(db.Adopt(m, name, "green")) // names carry their parents' colors
			must(db.AddElementText(m, "votes", "green", votes))
		}
		r := must(db.AddElement(m, "movie-role", "red"))
		rn := must(db.AddElementText(r, "name", "red", role))
		check(db.Adopt(actor, r, "blue"))
		check(db.Adopt(r, rn, "blue"))
	}
	addMovie(comedy, "All About Eve", y1950, "14", bette, "Margo Channing")
	addMovie(comedy, "Some Like It Hot", y1959, "11", marilyn, "Sugar")
	addMovie(slapstick, "Duck Soup", nil, "", groucho, "Rufus T. Firefly")

	if err := db.Validate(); err != nil {
		log.Fatal(err)
	}
	return db
}
