// The tpcw example generates the TPC-W dataset in all three representations
// (multi-colored, shallow with ID/IDREFs, deep with replication), loads each
// into the Timber-style physical store, and runs a selection of the paper's
// Table 2 queries on each — printing result counts, wall-clock times and the
// operator mix (structural joins vs. value joins vs. color crossings) that
// explains them.
package main

import (
	"fmt"
	"log"
	"time"

	"colorfulxml/internal/workload"
)

func main() {
	fmt.Println("generating TPC-W at scale 2 (three representations) ...")
	st, err := workload.LoadTPCW(2, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range workload.Variants {
		c := st.Of(v).Counts()
		data, _ := st.Of(v).DataBytes()
		fmt.Printf("  %-8s %7d elements, %7d structural nodes, %6.2f MB data\n",
			v, c.Elements, c.StructNodes, float64(data)/(1<<20))
	}

	interesting := map[string]bool{
		"TQ1": true, "TQ3": true, "TQ7": true, "TQ9": true,
		"TQ13": true, "TQ16": true,
	}
	fmt.Printf("\n%-5s %-26s %8s  %10s %10s %10s   %s\n",
		"query", "", "results", "MCT", "Shallow", "Deep", "why")
	for _, q := range workload.TPCWQueries() {
		if !interesting[q.ID] {
			continue
		}
		var times [3]time.Duration
		var results int
		var mctMetrics, shMetrics string
		for i, v := range workload.Variants {
			// Warm the buffer pool, then time.
			if _, _, err := workload.RunQuery(q, st, v); err != nil {
				log.Fatalf("%s/%s: %v", q.ID, v, err)
			}
			start := time.Now()
			out, m, err := workload.RunQuery(q, st, v)
			if err != nil {
				log.Fatal(err)
			}
			times[i] = time.Since(start)
			if v == workload.MCT {
				results = len(out)
				mctMetrics = fmt.Sprintf("MCT: %d struct joins, %d crossings",
					m.StructJoins, m.CrossJoins)
			}
			if v == workload.Shallow {
				shMetrics = fmt.Sprintf("shallow: %d value-join probes", m.ValueJoins)
			}
		}
		fmt.Printf("%-5s %-26s %8d  %10v %10v %10v   %s; %s\n",
			q.ID, truncate(q.Desc, 26), results, times[0].Round(time.Microsecond),
			times[1].Round(time.Microsecond), times[2].Round(time.Microsecond),
			mctMetrics, shMetrics)
	}

	// The headline comparison: TQ16 needs three value joins in shallow and
	// pays replication + dedup in deep; MCT folds it into the billing
	// hierarchy plus one color crossing.
	fmt.Println("\nTable 2's qualitative claims, reproduced:")
	fmt.Println("  - single-hierarchy queries (TQ1): all three representations comparable")
	fmt.Println("  - multi-tree queries (TQ9, TQ13): shallow pays value joins")
	fmt.Println("  - replicated-entity queries (TQ7): deep pays scan + duplicate elimination")
	fmt.Println("  - TQ16: MCT beats both at once")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
