package join

import (
	"fmt"

	"colorfulxml/internal/storage"
)

// This file implements the holistic path/twig join substrate (paper ref [8],
// Bruno, Koudas, Srivastava: "Holistic twig joins"). PathStack evaluates a
// linear path pattern q1//q2//.../qn over start-sorted streams with one
// stack per query node, never materializing intermediate binary-join
// results. Branching twigs are evaluated by decomposing into root-to-leaf
// paths and intersecting the branch-node matches, each path evaluated
// holistically.

// PathStep is one node of a linear path pattern: the input stream (sorted by
// start, single color) and the axis connecting it to its predecessor (the
// root step's axis is ignored).
type PathStep struct {
	Nodes []storage.SNode
	Axis  Axis
}

// pathEntry is a stack entry with a pointer into the previous stack.
type pathEntry struct {
	node   storage.SNode
	parent int // index into previous stack at push time (-1 when empty)
}

// PathStack evaluates the linear path holistically and returns the matches
// of the step at index out (0-based), deduplicated, in start order.
func PathStack(steps []PathStep, out int) ([]storage.SNode, error) {
	n := len(steps)
	if n == 0 {
		return nil, fmt.Errorf("join: empty path")
	}
	if out < 0 || out >= n {
		return nil, fmt.Errorf("join: output index %d out of range", out)
	}
	pos := make([]int, n)
	stacks := make([][]pathEntry, n)
	results := map[int64]storage.SNode{}

	exhausted := func() bool {
		for i := range steps {
			if pos[i] < len(steps[i].Nodes) {
				return false
			}
		}
		return true
	}

	for !exhausted() {
		// qmin: stream with the smallest next start.
		qmin := -1
		var minStart int64
		for i := range steps {
			if pos[i] >= len(steps[i].Nodes) {
				continue
			}
			s := steps[i].Nodes[pos[i]].Start
			if qmin == -1 || s < minStart {
				qmin = i
				minStart = s
			}
		}
		next := steps[qmin].Nodes[pos[qmin]]
		// Pop entries that cannot be ancestors of anything still to come.
		for i := range stacks {
			for len(stacks[i]) > 0 && stacks[i][len(stacks[i])-1].node.End < next.Start {
				stacks[i] = stacks[i][:len(stacks[i])-1]
			}
		}
		pos[qmin]++
		// Push only when the previous stack can support a chain.
		if qmin > 0 && len(stacks[qmin-1]) == 0 {
			continue
		}
		parentIdx := -1
		if qmin > 0 {
			parentIdx = len(stacks[qmin-1]) - 1
		}
		stacks[qmin] = append(stacks[qmin], pathEntry{node: next, parent: parentIdx})
		if qmin == n-1 {
			// A root-to-leaf chain exists (ancestor-descendant semantics);
			// verify axis constraints and record the output node(s).
			collectChains(stacks, steps, n-1, len(stacks[n-1])-1, out, results)
		}
	}
	outNodes := make([]storage.SNode, 0, len(results))
	for _, sn := range results {
		outNodes = append(outNodes, sn)
	}
	SortByStart(outNodes)
	return outNodes, nil
}

// collectChains walks all stack chains ending at stacks[level][idx],
// verifying axis constraints, and records the output-step node of every
// valid chain.
func collectChains(stacks [][]pathEntry, steps []PathStep, level, idx, out int, results map[int64]storage.SNode) {
	chain := make([]storage.SNode, len(steps))
	var rec func(level, maxIdx int) bool
	rec = func(level, maxIdx int) bool {
		if level < 0 {
			return true
		}
		found := false
		for i := maxIdx; i >= 0; i-- {
			e := stacks[level][i]
			if level < len(steps)-1 {
				// e must relate to chain[level+1] per that step's axis.
				child := chain[level+1]
				if !matches(e.node, child, steps[level+1].Axis) {
					continue
				}
			}
			chain[level] = e.node
			nextMax := e.parent
			if level > 0 && nextMax < 0 {
				nextMax = len(stacks[level-1]) - 1
			}
			if rec(level-1, nextMax) {
				results[chain[out].Start] = chain[out]
				found = true
				// Keep scanning: other chains may bind different output
				// nodes only when out < level; for out == leaf one chain
				// suffices.
				if out == len(steps)-1 {
					return true
				}
			}
		}
		return found
	}
	chain[level] = stacks[level][idx].node
	if level == 0 {
		results[chain[out].Start] = chain[out]
		return
	}
	maxIdx := stacks[level][idx].parent
	if maxIdx < 0 {
		maxIdx = len(stacks[level-1]) - 1
	}
	rec(level-1, maxIdx)
}

// TwigBranch describes a branching twig: a common prefix path and a set of
// branch paths hanging off the prefix's last node. Matches of the branch
// node are returned.
type TwigBranch struct {
	Prefix   []PathStep
	Branches [][]PathStep
}

// Twig evaluates a branching twig by holistic path evaluation of
// prefix+branch for every branch and intersecting the branch-node matches.
func Twig(t TwigBranch) ([]storage.SNode, error) {
	if len(t.Prefix) == 0 {
		return nil, fmt.Errorf("join: twig without prefix")
	}
	branchIdx := len(t.Prefix) - 1
	var result []storage.SNode
	if len(t.Branches) == 0 {
		return PathStack(t.Prefix, branchIdx)
	}
	for bi, br := range t.Branches {
		full := append(append([]PathStep(nil), t.Prefix...), br...)
		m, err := PathStack(full, branchIdx)
		if err != nil {
			return nil, err
		}
		if bi == 0 {
			result = m
			continue
		}
		result = intersectByStart(result, m)
	}
	return result, nil
}

func intersectByStart(a, b []storage.SNode) []storage.SNode {
	in := make(map[int64]bool, len(b))
	for _, n := range b {
		in[n.Start] = true
	}
	out := a[:0:0]
	for _, n := range a {
		if in[n.Start] {
			out = append(out, n)
		}
	}
	return out
}
