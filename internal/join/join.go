// Package join implements the join primitives the paper's evaluation rests
// on:
//
//   - the stack-tree structural join of Al-Khalifa et al. (paper ref [2]),
//     pairing ancestor/descendant (or parent/child) structural-node lists
//     sorted by start position in a single merge pass;
//   - the holistic twig join (TwigStack, paper ref [8]) for path patterns;
//   - hash-based value joins (the shallow representation's ID/IDREF joins),
//     including the multi-valued "contains(@idrefs, @id)" variant;
//   - nested-loop joins for inequality predicates (the paper notes these are
//     quadratic in data size);
//   - duplicate elimination (what the deep representation pays for).
//
// All algorithms work on storage.SNode lists; inputs to the structural
// algorithms must be sorted by Start within one color, which storage index
// scans guarantee.
package join

import (
	"sort"

	"colorfulxml/internal/storage"
)

// Axis selects the structural relationship to join on.
type Axis uint8

// Structural join axes.
const (
	AncestorDescendant Axis = iota
	ParentChild
)

// Pair is one structural join result.
type Pair struct {
	Anc  storage.SNode
	Desc storage.SNode
}

// matches reports whether (a, d) satisfies the axis.
func matches(a, d storage.SNode, axis Axis) bool {
	if !a.Contains(d) {
		return false
	}
	if axis == ParentChild {
		return d.ParentStart == a.Start && d.Level == a.Level+1
	}
	return true
}

// Structural runs the stack-tree structural join: both inputs sorted by
// Start, same color. It returns all (ancestor, descendant) pairs satisfying
// the axis, in descendant start order.
func Structural(anc, desc []storage.SNode, axis Axis) []Pair {
	var out []Pair
	var stack []storage.SNode
	ai, di := 0, 0
	for ai < len(anc) || di < len(desc) {
		// Pop ancestors that end before the next node begins.
		nextStart := int64(0)
		switch {
		case ai < len(anc) && di < len(desc):
			nextStart = min64(anc[ai].Start, desc[di].Start)
		case ai < len(anc):
			nextStart = anc[ai].Start
		default:
			nextStart = desc[di].Start
		}
		for len(stack) > 0 && stack[len(stack)-1].End < nextStart {
			stack = stack[:len(stack)-1]
		}
		if ai < len(anc) && (di >= len(desc) || anc[ai].Start < desc[di].Start) {
			stack = append(stack, anc[ai])
			ai++
			continue
		}
		if di < len(desc) {
			d := desc[di]
			di++
			for _, a := range stack {
				if matches(a, d, axis) {
					out = append(out, Pair{Anc: a, Desc: d})
				}
			}
		}
	}
	return out
}

// SemiDesc returns the descendants (deduplicated, start order) that have at
// least one ancestor in anc.
func SemiDesc(anc, desc []storage.SNode, axis Axis) []storage.SNode {
	pairs := Structural(anc, desc, axis)
	out := make([]storage.SNode, 0, len(pairs))
	var lastStart int64 = -1
	for _, p := range pairs {
		if p.Desc.Start != lastStart {
			out = append(out, p.Desc)
			lastStart = p.Desc.Start
		}
	}
	return out
}

// SemiAnc returns the ancestors (deduplicated, start order) that have at
// least one descendant in desc.
func SemiAnc(anc, desc []storage.SNode, axis Axis) []storage.SNode {
	pairs := Structural(anc, desc, axis)
	seen := map[int64]bool{}
	out := make([]storage.SNode, 0, len(pairs))
	for _, p := range pairs {
		if !seen[p.Anc.Start] {
			seen[p.Anc.Start] = true
			out = append(out, p.Anc)
		}
	}
	SortByStart(out)
	return out
}

// SortByStart sorts structural nodes by start position.
func SortByStart(ns []storage.SNode) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Start < ns[j].Start })
}

// DedupByElem removes duplicate elements (keeping first occurrence) — the
// duplicate elimination the deep representation needs after joins over
// replicated data.
func DedupByElem(ns []storage.SNode) []storage.SNode {
	seen := make(map[storage.ElemID]bool, len(ns))
	out := ns[:0:0]
	for _, n := range ns {
		if !seen[n.Elem] {
			seen[n.Elem] = true
			out = append(out, n)
		}
	}
	return out
}

// KeyFunc extracts a join key from a structural node (typically an attribute
// or content fetch through the store, so the page cost is real).
type KeyFunc func(storage.SNode) (string, error)

// KeysFunc extracts multiple join keys (the IDREFS case).
type KeysFunc func(storage.SNode) ([]string, error)

// HashValue performs a hash join of left and right on string keys. Rows with
// empty keys do not join. The result order follows left input order.
func HashValue(left, right []storage.SNode, lkey, rkey KeyFunc) ([]Pair, error) {
	ht := make(map[string][]storage.SNode, len(right))
	for _, r := range right {
		k, err := rkey(r)
		if err != nil {
			return nil, err
		}
		if k != "" {
			ht[k] = append(ht[k], r)
		}
	}
	var out []Pair
	for _, l := range left {
		k, err := lkey(l)
		if err != nil {
			return nil, err
		}
		if k == "" {
			continue
		}
		for _, r := range ht[k] {
			out = append(out, Pair{Anc: l, Desc: r})
		}
	}
	return out, nil
}

// HashValueMulti joins left (multi-key side, e.g. an IDREFS attribute) with
// right (single-key side): a pair matches when any of the left keys equals
// the right key.
func HashValueMulti(left, right []storage.SNode, lkeys KeysFunc, rkey KeyFunc) ([]Pair, error) {
	ht := make(map[string][]storage.SNode, len(right))
	for _, r := range right {
		k, err := rkey(r)
		if err != nil {
			return nil, err
		}
		if k != "" {
			ht[k] = append(ht[k], r)
		}
	}
	var out []Pair
	for _, l := range left {
		ks, err := lkeys(l)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			for _, r := range ht[k] {
				out = append(out, Pair{Anc: l, Desc: r})
			}
		}
	}
	return out, nil
}

// NestedLoop joins with an arbitrary predicate — the paper's inequality
// value joins, "implemented as nested loops, and hence has a quadratic
// dependence on data set size".
func NestedLoop(left, right []storage.SNode, pred func(l, r storage.SNode) (bool, error)) ([]Pair, error) {
	var out []Pair
	for _, l := range left {
		for _, r := range right {
			ok, err := pred(l, r)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, Pair{Anc: l, Desc: r})
			}
		}
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
