package join_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"colorfulxml/internal/core"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

func loadMovie(t *testing.T) (*fixtures.MovieDB, *storage.Store) {
	t.Helper()
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func scan(t *testing.T, s *storage.Store, c core.Color, tag string) []storage.SNode {
	t.Helper()
	ns, err := s.ScanTag(c, tag)
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestStructuralAncestorDescendant(t *testing.T) {
	_, s := loadMovie(t)
	genres := scan(t, s, "red", "movie-genre")
	movies := scan(t, s, "red", "movie")
	pairs := join.Structural(genres, movies, join.AncestorDescendant)
	// comedy>eve, comedy>hot, comedy>(slapstick>duck), slapstick>duck,
	// drama>angry: 4 movies but duck pairs with both comedy and slapstick.
	if len(pairs) != 5 {
		t.Fatalf("pairs = %d, want 5", len(pairs))
	}
	desc := join.SemiDesc(genres, movies, join.AncestorDescendant)
	if len(desc) != 4 {
		t.Fatalf("semi desc = %d, want 4", len(desc))
	}
	anc := join.SemiAnc(genres, movies, join.AncestorDescendant)
	if len(anc) != 3 {
		t.Fatalf("semi anc = %d, want 3 (all genres have movies)", len(anc))
	}
}

func TestStructuralParentChild(t *testing.T) {
	_, s := loadMovie(t)
	genres := scan(t, s, "red", "movie-genre")
	movies := scan(t, s, "red", "movie")
	pairs := join.Structural(genres, movies, join.ParentChild)
	if len(pairs) != 4 {
		t.Fatalf("parent-child pairs = %d, want 4", len(pairs))
	}
	for _, p := range pairs {
		if !p.Anc.IsParentOf(p.Desc) {
			t.Fatalf("not a parent: %+v", p)
		}
	}
}

func TestStructuralResultOrder(t *testing.T) {
	_, s := loadMovie(t)
	genres := scan(t, s, "red", "movie-genre")
	names := scan(t, s, "red", "name")
	desc := join.SemiDesc(genres, names, join.AncestorDescendant)
	for i := 1; i < len(desc); i++ {
		if desc[i-1].Start >= desc[i].Start {
			t.Fatal("SemiDesc result not start ordered")
		}
	}
}

func TestHashValueJoin(t *testing.T) {
	m := fixtures.NewMovieDB()
	// Give movies and roles ID/IDREF attributes (the shallow idiom).
	for i, key := range []string{"eve", "hot", "duck", "angry"} {
		if _, err := m.DB.SetAttribute(m.Node(key), "id", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.DB.SetAttribute(m.Node(key+"-role"), "movieIdRef", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	movies := scan(t, s, "red", "movie")
	roles := scan(t, s, "red", "movie-role")
	attrKey := func(name string) join.KeyFunc {
		return func(sn storage.SNode) (string, error) {
			e, err := s.Elem(sn.Elem)
			if err != nil {
				return "", err
			}
			return e.Attr(name), nil
		}
	}
	pairs, err := join.HashValue(movies, roles, attrKey("id"), attrKey("movieIdRef"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Fatalf("value join pairs = %d, want 4", len(pairs))
	}
	for _, p := range pairs {
		em, _ := s.Elem(p.Anc.Elem)
		er, _ := s.Elem(p.Desc.Elem)
		if em.Attr("id") != er.Attr("movieIdRef") {
			t.Fatalf("mismatched pair: %v vs %v", em.Attrs, er.Attrs)
		}
	}
}

func TestHashValueMulti(t *testing.T) {
	m := fixtures.NewMovieDB()
	if _, err := m.DB.SetAttribute(m.Node("bette"), "roleIdRefs", "r1 r9"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DB.SetAttribute(m.Node("eve-role"), "id", "r1"); err != nil {
		t.Fatal(err)
	}
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	actors := scan(t, s, "blue", "actor")
	roles := scan(t, s, "red", "movie-role")
	lkeys := func(sn storage.SNode) ([]string, error) {
		e, err := s.Elem(sn.Elem)
		if err != nil {
			return nil, err
		}
		return splitFields(e.Attr("roleIdRefs")), nil
	}
	rkey := func(sn storage.SNode) (string, error) {
		e, err := s.Elem(sn.Elem)
		if err != nil {
			return "", err
		}
		return e.Attr("id"), nil
	}
	pairs, err := join.HashValueMulti(actors, roles, lkeys, rkey)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("multi join = %d pairs, want 1", len(pairs))
	}
}

func splitFields(s string) []string {
	var out []string
	cur := ""
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(s[i])
	}
	return out
}

func TestNestedLoop(t *testing.T) {
	_, s := loadMovie(t)
	votes := scan(t, s, "green", "votes")
	pairs, err := join.NestedLoop(votes, votes, func(l, r storage.SNode) (bool, error) {
		lc, err := s.ContentOf(l.Elem)
		if err != nil {
			return false, err
		}
		rc, err := s.ContentOf(r.Elem)
		if err != nil {
			return false, err
		}
		return lc < rc, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// votes: 14, 9, 11 -> string-lt pairs: (14<9) t, (11<14) t, (11<9) t
	if len(pairs) != 3 {
		t.Fatalf("inequality pairs = %d, want 3", len(pairs))
	}
}

func TestDedupByElem(t *testing.T) {
	_, s := loadMovie(t)
	movies := scan(t, s, "red", "movie")
	dup := append(append([]storage.SNode{}, movies...), movies...)
	if got := join.DedupByElem(dup); len(got) != len(movies) {
		t.Fatalf("dedup = %d, want %d", len(got), len(movies))
	}
}

func TestPathStackLinear(t *testing.T) {
	_, s := loadMovie(t)
	// //movie-genres//movie-genre//movie with leaf output.
	steps := []join.PathStep{
		{Nodes: scan(t, s, "red", "movie-genres")},
		{Nodes: scan(t, s, "red", "movie-genre"), Axis: join.AncestorDescendant},
		{Nodes: scan(t, s, "red", "movie"), Axis: join.AncestorDescendant},
	}
	out, err := join.PathStack(steps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("leaf matches = %d, want 4", len(out))
	}
	// Output the middle node: genres that contain movies.
	mid, err := join.PathStack(steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != 3 {
		t.Fatalf("genre matches = %d, want 3", len(mid))
	}
}

func TestPathStackParentChildAxis(t *testing.T) {
	_, s := loadMovie(t)
	// movie-genre/movie (parent-child): slapstick's duck has comedy only as
	// grandparent, so comedy/child::movie = eve, hot.
	steps := []join.PathStep{
		{Nodes: scan(t, s, "red", "movie-genre")},
		{Nodes: scan(t, s, "red", "movie"), Axis: join.ParentChild},
	}
	out, err := join.PathStack(steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 { // each movie is a PC child of some genre
		t.Fatalf("pc matches = %d, want 4", len(out))
	}
	// Three-level strict parent-child: genres/genre/movie.
	steps3 := []join.PathStep{
		{Nodes: scan(t, s, "red", "movie-genres")},
		{Nodes: scan(t, s, "red", "movie-genre"), Axis: join.ParentChild},
		{Nodes: scan(t, s, "red", "movie"), Axis: join.ParentChild},
	}
	out3, err := join.PathStack(steps3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// duck's parent slapstick is not a PC child of movie-genres... it is a
	// child of comedy; so duck is excluded: eve, hot, angry remain.
	if len(out3) != 3 {
		t.Fatalf("strict pc = %d, want 3", len(out3))
	}
}

func TestTwigBranching(t *testing.T) {
	_, s := loadMovie(t)
	// //movie[.//name][.//movie-role] -> branch node movie.
	tw := join.TwigBranch{
		Prefix: []join.PathStep{{Nodes: scan(t, s, "red", "movie")}},
		Branches: [][]join.PathStep{
			{{Nodes: scan(t, s, "red", "name"), Axis: join.AncestorDescendant}},
			{{Nodes: scan(t, s, "red", "movie-role"), Axis: join.AncestorDescendant}},
		},
	}
	out, err := join.Twig(tw)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("twig matches = %d, want 4", len(out))
	}
	// A branch that only some movies satisfy: green votes exists only in the
	// green tree, so use red movie-role + a name filter via separate scans.
	tw2 := join.TwigBranch{
		Prefix: []join.PathStep{{Nodes: scan(t, s, "green", "movie")}},
		Branches: [][]join.PathStep{
			{{Nodes: scan(t, s, "green", "votes"), Axis: join.ParentChild}},
		},
	}
	out2, err := join.Twig(tw2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 3 {
		t.Fatalf("green twig = %d, want 3", len(out2))
	}
}

// TestQuickStructuralAgainstNaive cross-checks the stack-tree join against a
// quadratic reference on random interval sets derived from random trees.
func TestQuickStructuralAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := core.NewDatabase("c")
		attached := []*core.Node{db.Document()}
		for i := 0; i < 80; i++ {
			parent := attached[rng.Intn(len(attached))]
			tag := []string{"a", "b"}[rng.Intn(2)]
			n, err := db.AddElement(parent, tag, "c")
			if err != nil {
				return false
			}
			attached = append(attached, n)
		}
		s, err := storage.Load(db, 0)
		if err != nil {
			return false
		}
		as, err := s.ScanTag("c", "a")
		if err != nil {
			return false
		}
		bs, err := s.ScanTag("c", "b")
		if err != nil {
			return false
		}
		for _, axis := range []join.Axis{join.AncestorDescendant, join.ParentChild} {
			got := join.Structural(as, bs, axis)
			var want int
			for _, a := range as {
				for _, b := range bs {
					if a.Contains(b) && (axis == join.AncestorDescendant ||
						(b.ParentStart == a.Start && b.Level == a.Level+1)) {
						want++
					}
				}
			}
			if len(got) != want {
				t.Logf("axis %v: got %d want %d (seed %d)", axis, len(got), want, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPathStackAgainstBinaryJoins cross-checks holistic path evaluation
// against cascaded binary structural joins.
func TestQuickPathStackAgainstBinaryJoins(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := core.NewDatabase("c")
		attached := []*core.Node{db.Document()}
		tags := []string{"x", "y", "z"}
		for i := 0; i < 100; i++ {
			parent := attached[rng.Intn(len(attached))]
			n, err := db.AddElement(parent, tags[rng.Intn(3)], "c")
			if err != nil {
				return false
			}
			attached = append(attached, n)
		}
		s, err := storage.Load(db, 0)
		if err != nil {
			return false
		}
		xs, _ := s.ScanTag("c", "x")
		ys, _ := s.ScanTag("c", "y")
		zs, _ := s.ScanTag("c", "z")
		steps := []join.PathStep{
			{Nodes: xs},
			{Nodes: ys, Axis: join.AncestorDescendant},
			{Nodes: zs, Axis: join.AncestorDescendant},
		}
		holistic, err := join.PathStack(steps, 2)
		if err != nil {
			return false
		}
		// Binary plan: z with y-ancestors, then those with x-ancestors...
		// equivalently z descendants of (y descendants of x).
		yUnderX := join.SemiDesc(xs, ys, join.AncestorDescendant)
		zUnderY := join.SemiDesc(yUnderX, zs, join.AncestorDescendant)
		if len(holistic) != len(zUnderY) {
			t.Logf("seed %d: holistic %d vs binary %d", seed, len(holistic), len(zUnderY))
			return false
		}
		for i := range holistic {
			if holistic[i].Start != zUnderY[i].Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
