package schema

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the shallow/deep schema characterization of the
// paper's Definition 3.3, built on XNF (Arenas & Libkin, "A Normal Form for
// XML Documents", PODS 2002):
//
//	A schema (D, F) — a DTD plus functional dependencies over DTD paths —
//	is SHALLOW iff for every non-trivial FD S -> p.@attr or S -> p.content
//	implied by (D, F), the FD S -> p is also implied. Otherwise it is DEEP.
//
// FD implication over XML documents in full generality requires the
// Arenas–Libkin chase; this implementation uses the standard relational
// attribute-closure algorithm over path sets, which is sound for the
// acyclic, single-production DTDs used throughout this repository (each DTD
// path denotes one "column" and the given FDs are interpreted relationally).

// Path is a DTD path from the root: element labels separated by '/', with an
// optional trailing "@attr" or "content()" component, e.g.
// "genres/genre/movie/@id" or "genres/genre/movie/name/content()".
type Path string

// Parent returns the path with its last component removed; for value paths
// (@attr, content()) this is the element path the value hangs off.
func (p Path) Parent() (Path, bool) {
	i := strings.LastIndexByte(string(p), '/')
	if i < 0 {
		return "", false
	}
	return p[:i], true
}

// IsValuePath reports whether the path addresses an attribute or content.
func (p Path) IsValuePath() bool {
	return strings.Contains(string(p), "@") || strings.HasSuffix(string(p), "content()")
}

// elem returns the element name the path ends in (its last label).
func (p Path) elem() string {
	s := string(p)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// FD is a functional dependency S -> R over DTD paths.
type FD struct {
	LHS []Path
	RHS Path
}

func (f FD) String() string {
	parts := make([]string, len(f.LHS))
	for i, p := range f.LHS {
		parts[i] = string(p)
	}
	sort.Strings(parts)
	return fmt.Sprintf("{%s} -> %s", strings.Join(parts, ", "), f.RHS)
}

// Trivial reports whether the FD is trivial (RHS in LHS).
func (f FD) Trivial() bool {
	for _, p := range f.LHS {
		if p == f.RHS {
			return true
		}
	}
	return false
}

// DTD is a single-hierarchy document type: element productions rooted at
// Root, with per-element attributes.
type DTD struct {
	Root  string
	Elems map[string]DTDElem
}

// DTDElem declares one element type.
type DTDElem struct {
	Children []Child
	Attrs    []string
	// HasContent marks elements with text content.
	HasContent bool
}

// Paths enumerates all DTD paths from the root: element paths, attribute
// paths and content paths. Recursion is cut off at depth limit 16 (the
// schemas in this repository are acyclic).
func (d *DTD) Paths() []Path {
	var out []Path
	var walk func(prefix string, elem string, depth int)
	walk = func(prefix string, elem string, depth int) {
		if depth > 16 {
			return
		}
		p := elem
		if prefix != "" {
			p = prefix + "/" + elem
		}
		out = append(out, Path(p))
		decl := d.Elems[elem]
		for _, a := range decl.Attrs {
			out = append(out, Path(p+"/@"+a))
		}
		if decl.HasContent {
			out = append(out, Path(p+"/content()"))
		}
		for _, ch := range decl.Children {
			walk(p, ch.Elem, depth+1)
		}
	}
	walk("", d.Root, 0)
	return out
}

// XMLSchema is the (D, F) pair of Definition 3.3.
type XMLSchema struct {
	DTD *DTD
	FDs []FD
}

// closure computes the closure of a path set under the schema's FDs plus
// the structural (tree) dependencies the DTD guarantees:
//
//   - a determined node determines its ancestor nodes (a node identifies the
//     unique root-to-node path above it);
//   - a determined node determines its attribute values and text content
//     (each node carries at most one value per attribute);
//   - a determined node determines its at-most-once children (quantifier 1
//     or ?).
//
// A determined VALUE (@attr, content()) pins no node by itself — that is
// exactly the difference the paper's deep trees exploit.
func (s *XMLSchema) closure(start []Path) map[Path]bool {
	got := map[Path]bool{}
	var add func(p Path)
	add = func(p Path) {
		if got[p] {
			return
		}
		got[p] = true
		if p.IsValuePath() {
			return
		}
		if parent, ok := p.Parent(); ok {
			add(parent)
		}
		decl, ok := s.DTD.Elems[p.elem()]
		if !ok {
			return
		}
		for _, a := range decl.Attrs {
			add(p + Path("/@"+a))
		}
		if decl.HasContent {
			add(p + "/content()")
		}
		for _, ch := range decl.Children {
			if ch.Quant == One || ch.Quant == Optional {
				add(p + Path("/"+ch.Elem))
			}
		}
	}
	for _, p := range start {
		add(p)
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range s.FDs {
			if got[fd.RHS] {
				continue
			}
			all := true
			for _, l := range fd.LHS {
				if !got[l] {
					all = false
					break
				}
			}
			if all {
				add(fd.RHS)
				changed = true
			}
		}
	}
	return got
}

// Implies reports whether (D, F) implies the FD under the relational
// interpretation described above.
func (s *XMLSchema) Implies(fd FD) bool {
	return s.closure(fd.LHS)[fd.RHS]
}

// Shallow reports whether the schema is shallow per Definition 3.3: every
// non-trivial implied FD S -> p.@attr / S -> p.content has S -> p implied as
// well. The check examines the declared FDs and their pairwise
// transitivity consequences (sufficient for the acyclic schemas used here).
// The returned witness is an FD violating the condition when the schema is
// deep.
func (s *XMLSchema) Shallow() (bool, *FD) {
	for _, fd := range s.candidates() {
		if fd.Trivial() || !fd.RHS.IsValuePath() {
			continue
		}
		if !s.Implies(fd) {
			continue
		}
		parent, ok := fd.RHS.Parent()
		if !ok {
			continue
		}
		if !s.closure(fd.LHS)[parent] {
			v := fd
			return false, &v
		}
	}
	return true, nil
}

// Deep is the negation of Shallow.
func (s *XMLSchema) Deep() bool {
	ok, _ := s.Shallow()
	return !ok
}

// candidates enumerates FDs to check: the declared ones plus single-step
// transitivity compositions (LHS of one FD reached via another's RHS).
func (s *XMLSchema) candidates() []FD {
	out := append([]FD(nil), s.FDs...)
	for _, a := range s.FDs {
		for _, b := range s.FDs {
			// If b's LHS is {a.RHS}, then a.LHS -> b.RHS.
			if len(b.LHS) == 1 && b.LHS[0] == a.RHS {
				out = append(out, FD{LHS: a.LHS, RHS: b.RHS})
			}
		}
	}
	return out
}
