package schema

import (
	"strings"
	"testing"
)

func TestFigure8RealColors(t *testing.T) {
	s := Figure8()
	if err := s.Validate(); err != nil {
		t.Fatalf("Figure8 should validate: %v", err)
	}
	cases := map[string][]string{
		"movie":       {"green", "red"},
		"movie-role":  {"blue", "red"},
		"name":        {"blue", "green", "red"},
		"payment":     {"blue"},
		"description": {"red"},
		"scene":       {"red"},
		"category":    {"green"},
		"votes":       {"green"},
		"actor":       {"blue"},
		"movie-genre": {"red"},
	}
	for elem, want := range cases {
		got := s.RealColors(elem)
		if len(got) != len(want) {
			t.Errorf("RealColors(%s) = %v, want %v", elem, got, want)
			continue
		}
		for i := range want {
			if string(got[i]) != want[i] {
				t.Errorf("RealColors(%s) = %v, want %v", elem, got, want)
			}
		}
	}
	if !s.MultiColored("movie") || s.MultiColored("votes") {
		t.Fatal("MultiColored wrong")
	}
}

func TestIsLeafAndParentIn(t *testing.T) {
	s := Figure8()
	if !s.IsLeaf("votes") || !s.IsLeaf("name") || s.IsLeaf("movie") {
		t.Fatal("IsLeaf wrong")
	}
	if got := s.ParentIn("movie", "red"); got != "movie-genre" {
		t.Fatalf("ParentIn(movie, red) = %q", got)
	}
	if got := s.ParentIn("movie", "green"); got != "year" {
		t.Fatalf("ParentIn(movie, green) = %q", got)
	}
	if got := s.ParentIn("movie", "blue"); got != "" {
		t.Fatalf("ParentIn(movie, blue) = %q", got)
	}
	if got := s.ParentIn("movie-genres", "red"); got != "" {
		t.Fatalf("root has no parent, got %q", got)
	}
}

func TestQuantDefaults(t *testing.T) {
	s := Figure8()
	if got := s.Quant("movie-role", "red"); got != 10 {
		t.Fatalf("quant(movie-role, red) = %v", got)
	}
	if got := s.Quant("votes", "green"); got != 1 {
		t.Fatalf("default quant = %v", got)
	}
}

func TestProductionParsingQuantifiers(t *testing.T) {
	s := New()
	s.AddColor("c", "r")
	s.AddProduction("c", "r", "a", "b?", "d+", "e*")
	p := s.Production("c", "r")
	want := []Quant{One, Optional, OneOrMore, ZeroOrMore}
	for i, q := range want {
		if p.Children[i].Quant != q {
			t.Fatalf("child %d quant = %c, want %c", i, p.Children[i].Quant, q)
		}
	}
	if got := p.String(); !strings.Contains(got, "b?") || !strings.Contains(got, "e*") {
		t.Fatalf("production rendering: %s", got)
	}
}

func TestValidateErrors(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Fatal("empty schema should fail")
	}
	s := New()
	s.AddColor("c", "")
	if err := s.Validate(); err == nil {
		t.Fatal("missing root should fail")
	}
	// Cycle through a multi-colored type is rejected (Section 5.3
	// assumption); 'b' is multi-colored because it also appears in color d.
	s2 := New()
	s2.AddColor("c", "a")
	s2.AddColor("d", "b")
	s2.AddProduction("c", "a", "b")
	s2.AddProduction("c", "b", "a")
	s2.AddProduction("d", "b", "x")
	if err := s2.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle: %v", err)
	}
	// Recursion through single-colored types is legal (nested genres).
	s4 := New()
	s4.AddColor("c", "genre")
	s4.AddProduction("c", "genre", "name", "genre*")
	if err := s4.Validate(); err != nil {
		t.Fatalf("recursive single-colored type should validate: %v", err)
	}
	// Undeclared color.
	s3 := New()
	s3.AddColor("c", "a")
	s3.AddProduction("d", "a", "b")
	if err := s3.Validate(); err == nil {
		t.Fatal("undeclared color should fail")
	}
}

func TestElementTypes(t *testing.T) {
	s := Figure8()
	types := s.ElementTypes()
	if len(types) < 10 {
		t.Fatalf("types = %v", types)
	}
	for _, want := range []string{"movie", "movie-role", "payment", "name"} {
		found := false
		for _, ty := range types {
			if ty == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing type %s in %v", want, types)
		}
	}
}

// deepMovieSchema is the Deep-1 design of Example 1.1: actors are replicated
// under each movie, so actor ids determine actor values but not actor nodes.
func deepMovieSchema() *XMLSchema {
	d := &DTD{
		Root: "genres",
		Elems: map[string]DTDElem{
			"genres": {Children: []Child{{Elem: "genre", Quant: ZeroOrMore}}},
			"genre":  {Children: []Child{{Elem: "movie", Quant: ZeroOrMore}}},
			"movie":  {Children: []Child{{Elem: "name", Quant: One}, {Elem: "actor", Quant: ZeroOrMore}}},
			"actor":  {Children: []Child{{Elem: "name", Quant: One}}, Attrs: []string{"id"}},
			"name":   {HasContent: true},
		},
	}
	return &XMLSchema{
		DTD: d,
		FDs: []FD{
			// An actor id determines the actor's name content...
			{LHS: []Path{"genres/genre/movie/actor/@id"},
				RHS: "genres/genre/movie/actor/name/content()"},
			// ...but NOT the actor node (replicated per movie): no such FD.
		},
	}
}

// shallowMovieSchema is the Shallow-1 design: actors stored once at the top,
// with id as a key for the actor node itself.
func shallowMovieSchema() *XMLSchema {
	d := &DTD{
		Root: "db",
		Elems: map[string]DTDElem{
			"db":    {Children: []Child{{Elem: "actor", Quant: ZeroOrMore}, {Elem: "movie", Quant: ZeroOrMore}}},
			"actor": {Children: []Child{{Elem: "name", Quant: One}}, Attrs: []string{"id"}},
			"movie": {Children: []Child{{Elem: "name", Quant: One}}, Attrs: []string{"id", "roleIdRefs"}},
			"name":  {HasContent: true},
		},
	}
	return &XMLSchema{
		DTD: d,
		FDs: []FD{
			{LHS: []Path{"db/actor/@id"}, RHS: "db/actor/name/content()"},
			{LHS: []Path{"db/actor/@id"}, RHS: "db/actor"}, // id is a key
			{LHS: []Path{"db/movie/@id"}, RHS: "db/movie/name/content()"},
			{LHS: []Path{"db/movie/@id"}, RHS: "db/movie"},
		},
	}
}

func TestDeepSchemaIsDeep(t *testing.T) {
	s := deepMovieSchema()
	ok, witness := s.Shallow()
	if ok {
		t.Fatal("Deep-1 schema should be deep")
	}
	if witness == nil || !strings.Contains(string(witness.RHS), "content()") {
		t.Fatalf("witness = %v", witness)
	}
	if !s.Deep() {
		t.Fatal("Deep() should be true")
	}
}

func TestShallowSchemaIsShallow(t *testing.T) {
	s := shallowMovieSchema()
	if ok, w := s.Shallow(); !ok {
		t.Fatalf("Shallow-1 schema should be shallow; witness %v", w)
	}
	if s.Deep() {
		t.Fatal("Deep() should be false")
	}
}

func TestFDBasics(t *testing.T) {
	fd := FD{LHS: []Path{"a/b"}, RHS: "a/b"}
	if !fd.Trivial() {
		t.Fatal("reflexive FD is trivial")
	}
	p := Path("a/b/@id")
	if !p.IsValuePath() {
		t.Fatal("@id is a value path")
	}
	parent, ok := p.Parent()
	if !ok || parent != "a/b" {
		t.Fatalf("parent = %q", parent)
	}
	if _, ok := Path("a").Parent(); ok {
		t.Fatal("root path has no parent")
	}
	if got := fd.String(); !strings.Contains(got, "->") {
		t.Fatalf("FD rendering: %s", got)
	}
}

func TestClosureIncludesAncestors(t *testing.T) {
	s := shallowMovieSchema()
	// Knowing db/actor/@id pins the actor node, which pins its ancestors.
	if !s.Implies(FD{LHS: []Path{"db/actor/@id"}, RHS: "db"}) {
		t.Fatal("closure should include ancestors of determined nodes")
	}
	// Transitivity via candidates: id -> actor -> ... name content (direct).
	if !s.Implies(FD{LHS: []Path{"db/actor/@id"}, RHS: "db/actor/name"}) {
		t.Fatal("id determines the name node via the actor node")
	}
}

func TestDTDPaths(t *testing.T) {
	s := deepMovieSchema()
	paths := s.DTD.Paths()
	want := map[Path]bool{
		"genres":                       true,
		"genres/genre/movie/actor/@id": true,
		"genres/genre/movie/actor/name/content()": true,
	}
	got := map[Path]bool{}
	for _, p := range paths {
		got[p] = true
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing path %s in %v", p, paths)
		}
	}
}
