// Package schema models MCT schemas (paper Sections 3.4 and 5.1): per-color
// element productions with occurrence quantifiers, the real colors of each
// element type, and the statistical summary (average child counts) that the
// optSerialize algorithm consumes. It also implements the shallow/deep
// schema characterization of Definition 3.3, based on XNF (Arenas & Libkin).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"colorfulxml/internal/core"
)

// Quant is an occurrence quantifier of a production child: exactly one (1),
// optional (?), one-or-more (+) or zero-or-more (*).
type Quant byte

// Occurrence quantifiers.
const (
	One        Quant = '1'
	Optional   Quant = '?'
	OneOrMore  Quant = '+'
	ZeroOrMore Quant = '*'
)

func (q Quant) String() string {
	if q == One {
		return ""
	}
	return string(q)
}

// Child is one child slot of a production.
type Child struct {
	Elem  string
	Quant Quant
}

func (c Child) String() string { return c.Elem + c.Quant.String() }

// Production is the single production of an element type in one colored
// hierarchy: elem -> children. The paper assumes one production per
// (multi-colored element type, color).
type Production struct {
	Color    core.Color
	Elem     string
	Children []Child
}

func (p Production) String() string {
	parts := make([]string, len(p.Children))
	for i, c := range p.Children {
		parts[i] = c.String()
	}
	return fmt.Sprintf("{%s} %s -> %s", p.Color, p.Elem, strings.Join(parts, ", "))
}

// Schema is an MCT schema: one tree grammar per color over a shared set of
// element types, plus the statistical summary used for cost-based
// serialization.
type Schema struct {
	colors []core.Color
	roots  map[core.Color]string
	// prods maps (color, elem) to the element's production in that color.
	prods map[prodKey]*Production
	// stats maps (elem, color) to quant(elem, color): the average number of
	// children of this type under its parent type in that colored hierarchy.
	stats map[prodKey]float64
}

type prodKey struct {
	color core.Color
	elem  string
}

// New creates an empty schema.
func New() *Schema {
	return &Schema{
		roots: make(map[core.Color]string),
		prods: make(map[prodKey]*Production),
		stats: make(map[prodKey]float64),
	}
}

// AddColor registers a colored hierarchy with its root element type.
func (s *Schema) AddColor(c core.Color, root string) *Schema {
	for _, have := range s.colors {
		if have == c {
			s.roots[c] = root
			return s
		}
	}
	s.colors = append(s.colors, c)
	sort.Slice(s.colors, func(i, j int) bool { return s.colors[i] < s.colors[j] })
	s.roots[c] = root
	return s
}

// AddProduction registers the production of elem in color c. Children are
// given as "name", "name?", "name+" or "name*".
func (s *Schema) AddProduction(c core.Color, elem string, children ...string) *Schema {
	p := &Production{Color: c, Elem: elem}
	for _, ch := range children {
		q := One
		name := ch
		if len(ch) > 0 {
			switch ch[len(ch)-1] {
			case '?', '+', '*':
				q = Quant(ch[len(ch)-1])
				name = ch[:len(ch)-1]
			}
		}
		p.Children = append(p.Children, Child{Elem: name, Quant: q})
	}
	s.prods[prodKey{c, elem}] = p
	return s
}

// SetQuant records quant(elem, c): the average number of children of type
// elem per parent in hierarchy c (paper Section 5.3's helper function).
func (s *Schema) SetQuant(elem string, c core.Color, avg float64) *Schema {
	s.stats[prodKey{c, elem}] = avg
	return s
}

// Quant returns quant(elem, c), defaulting to 1 when no statistic was set.
func (s *Schema) Quant(elem string, c core.Color) float64 {
	if v, ok := s.stats[prodKey{c, elem}]; ok {
		return v
	}
	return 1
}

// Colors returns the schema's colors in sorted order.
func (s *Schema) Colors() []core.Color { return s.colors }

// Root returns the root element type of hierarchy c.
func (s *Schema) Root(c core.Color) string { return s.roots[c] }

// Production returns elem's production in color c, or nil.
func (s *Schema) Production(c core.Color, elem string) *Production {
	return s.prods[prodKey{c, elem}]
}

// RealColors returns the colors in which elem appears (as root or as a child
// in some production), in sorted order — the element type's real colors
// (paper Section 5.1).
func (s *Schema) RealColors(elem string) []core.Color {
	var out []core.Color
	for _, c := range s.colors {
		if s.roots[c] == elem {
			out = append(out, c)
			continue
		}
		if s.prods[prodKey{c, elem}] != nil {
			out = append(out, c)
			continue
		}
		found := false
		for k, p := range s.prods {
			if k.color != c {
				continue
			}
			for _, ch := range p.Children {
				if ch.Elem == elem {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			out = append(out, c)
		}
	}
	return out
}

// IsLeaf reports whether elem has no production in any color (a leaf type
// such as name or votes).
func (s *Schema) IsLeaf(elem string) bool {
	for _, c := range s.colors {
		if s.prods[prodKey{c, elem}] != nil {
			return false
		}
	}
	return true
}

// MultiColored reports whether elem has two or more real colors.
func (s *Schema) MultiColored(elem string) bool { return len(s.RealColors(elem)) > 1 }

// ElementTypes returns all element types mentioned anywhere in the schema,
// sorted.
func (s *Schema) ElementTypes() []string {
	seen := map[string]bool{}
	for _, r := range s.roots {
		seen[r] = true
	}
	for _, p := range s.prods {
		seen[p.Elem] = true
		for _, ch := range p.Children {
			seen[ch.Elem] = true
		}
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// ParentIn returns the parent element type of elem in hierarchy c, or ""
// when elem is the root of c or absent from c. Schemas used with
// optSerialize have a unique parent type per color (no cycles, single
// production).
func (s *Schema) ParentIn(elem string, c core.Color) string {
	for k, p := range s.prods {
		if k.color != c {
			continue
		}
		for _, ch := range p.Children {
			if ch.Elem == elem {
				return p.Elem
			}
		}
	}
	return ""
}

// Validate checks schema well-formedness for serialization: every color has
// a root, productions reference declared colors, and no colored hierarchy
// has a cycle among multi-colored element types (the paper's simplifying
// assumption in Section 5.3).
func (s *Schema) Validate() error {
	if len(s.colors) == 0 {
		return fmt.Errorf("schema: no colors")
	}
	for _, c := range s.colors {
		if s.roots[c] == "" {
			return fmt.Errorf("schema: color %q has no root", c)
		}
		// Cycle detection per color by DFS from the root. Recursive types
		// (e.g. nested movie-genre) are fine; the paper's Section 5.3
		// assumption is only that MULTI-COLORED element types are not
		// involved in cycles.
		state := map[string]int{} // 0 unseen, 1 in-stack, 2 done
		var stack []string
		var visit func(elem string) error
		visit = func(elem string) error {
			switch state[elem] {
			case 1:
				// Found a cycle: elem .. top-of-stack. It is an error iff
				// any member is multi-colored.
				for i := len(stack) - 1; i >= 0; i-- {
					if s.MultiColored(stack[i]) {
						return fmt.Errorf("schema: multi-colored type %q in a cycle in color %q", stack[i], c)
					}
					if stack[i] == elem {
						break
					}
				}
				return nil
			case 2:
				return nil
			}
			state[elem] = 1
			stack = append(stack, elem)
			defer func() { stack = stack[:len(stack)-1] }()
			if p := s.prods[prodKey{c, elem}]; p != nil {
				for _, ch := range p.Children {
					if err := visit(ch.Elem); err != nil {
						return err
					}
				}
			}
			state[elem] = 2
			return nil
		}
		if err := visit(s.roots[c]); err != nil {
			return err
		}
	}
	for k := range s.prods {
		found := false
		for _, c := range s.colors {
			if c == k.color {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("schema: production for undeclared color %q", k.color)
		}
	}
	return nil
}

// Figure8 builds the paper's Figure 8 example MCT schema: the movie schema
// with red (genre), green (award) and blue (actor) hierarchies, movie
// red+green, movie-role red+blue, and the extra subelements introduced in
// Section 5.1 (category green, payment blue, description and scene red).
func Figure8() *Schema {
	s := New()
	s.AddColor("red", "movie-genres")
	s.AddColor("green", "movie-awards")
	s.AddColor("blue", "actors")

	s.AddProduction("red", "movie-genres", "movie-genre*")
	s.AddProduction("red", "movie-genre", "name", "movie-genre*", "movie*")
	s.AddProduction("red", "movie", "name", "movie-role*")
	s.AddProduction("red", "movie-role", "name", "description?", "scene*")

	s.AddProduction("green", "movie-awards", "movie-award*")
	s.AddProduction("green", "movie-award", "name", "year*")
	s.AddProduction("green", "year", "name", "movie*")
	s.AddProduction("green", "movie", "name", "votes?", "category*")

	s.AddProduction("blue", "actors", "actor*")
	s.AddProduction("blue", "actor", "name", "movie-role*")
	s.AddProduction("blue", "movie-role", "name", "payment?")

	// Statistics in the spirit of Section 5.2: a movie has on average one
	// name, one votes, one category and several movie-roles; a movie-role
	// has one name/description/payment and 3 scenes.
	s.SetQuant("movie-role", "red", 10)
	s.SetQuant("movie-role", "blue", 4)
	s.SetQuant("scene", "red", 3)
	s.SetQuant("movie", "red", 5)
	s.SetQuant("movie", "green", 5)
	return s
}
