package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeak verifies the lifecycle of every `go` statement in the
// program: a spawned goroutine must have a termination path the analyzer
// can see. Accepted evidence, searched through the spawned body and
// transitively through its (non-goroutine) callees:
//
//   - a receive from ctx.Done() (context cancellation),
//   - a receive / range / select over a stop channel — a channel that some
//     function in the program close()s (matched by field/var class, or by
//     identity for function-local channels), or whose name marks it a
//     lifecycle channel (done / stop / quit / exit / closing),
//   - sync.WaitGroup tracking: the spawning function calls Add on a
//     WaitGroup and the goroutine body (transitively) calls Done — accepted
//     only when the body has no inescapable `for {}` loop, since a tracked
//     goroutine that never returns still deadlocks the Wait.
//
// A goroutine whose body the analyzer cannot see at all (a call into a
// dependency, or through a function value) is reported too: termination is
// then unverifiable, and the site needs either restructuring or a
// `//mctlint:ignore goroutineleak <why>` comment citing the external
// contract that bounds it.
var GoroutineLeak = &Analyzer{
	Name:       "goroutineleak",
	Doc:        "every go statement needs a visible termination path: ctx.Done, a closed stop channel, or WaitGroup tracking",
	RunProgram: runGoroutineLeak,
}

// stopChanNames marks identifier fragments that label lifecycle channels.
var stopChanNames = []string{"done", "stop", "quit", "exit", "closing"}

type leakChecker struct {
	cg *CallGraph
	// closedClasses / closedObjs index every close(ch) in the program: by
	// storage class for fields and package vars, by object identity for
	// locals (closures close over the same types.Var).
	closedClasses map[string]bool
	closedObjs    map[types.Object]bool
}

func runGoroutineLeak(pass *ProgramPass) error {
	lc := &leakChecker{
		cg:            pass.Prog.CallGraph(),
		closedClasses: map[string]bool{},
		closedObjs:    map[types.Object]bool{},
	}
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "close" || pkg.Info.Uses[id] != types.Universe.Lookup("close") {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				if class, ok := classOfExpr(pkg, arg); ok {
					lc.closedClasses[class] = true
				}
				if id, ok := arg.(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						lc.closedObjs[obj] = true
					}
				}
				return true
			})
		}
	}

	for _, n := range sortedNodes(lc.cg) {
		for _, cs := range n.Calls {
			if !cs.Go {
				continue
			}
			lc.checkGoStmt(pass, n, cs)
		}
	}
	return nil
}

// checkGoStmt applies the evidence rules to one go statement.
func (lc *leakChecker) checkGoStmt(pass *ProgramPass, n *FuncNode, cs *CallSite) {
	type spawned struct {
		body ast.Node
		pkg  *Package
	}
	var bodies []spawned
	if lit, ok := ast.Unparen(cs.Call.Fun).(*ast.FuncLit); ok {
		bodies = []spawned{{lit.Body, n.Pkg}}
	} else if len(cs.Callees) > 0 {
		for _, callee := range cs.Callees {
			bodies = append(bodies, spawned{callee.Decl.Body, callee.Pkg})
		}
	} else {
		pass.Reportf(cs.Call.Pos(), "cannot verify termination of this goroutine: the callee is outside the analyzed program")
		return
	}

	tracked := lc.spawnerAddsToWaitGroup(n)
	for _, sp := range bodies {
		if lc.hasTerminationEvidence(sp.body, sp.pkg, map[*FuncNode]bool{}) {
			continue
		}
		if tracked &&
			lc.callsWaitGroupDone(sp.body, sp.pkg, map[*FuncNode]bool{}) &&
			!lc.hasInescapableLoop(sp.body, sp.pkg, map[*FuncNode]bool{}) {
			continue
		}
		pass.Reportf(cs.Call.Pos(), "goroutine may never terminate: no ctx.Done or stop-channel receive on its paths and it is not WaitGroup-tracked")
		return
	}
}

// hasTerminationEvidence searches body (and its non-goroutine callees) for
// a cancellation receive.
func (lc *leakChecker) hasTerminationEvidence(body ast.Node, pkg *Package, visited map[*FuncNode]bool) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.GoStmt:
			return false // a nested goroutine's lifecycle is checked at its own site
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && lc.isStopChannel(pkg, v.X) {
				found = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[v.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && lc.isStopChannel(pkg, v.X) {
					found = true
				}
			}
		case *ast.CallExpr:
			for _, callee := range lc.cg.resolveFuncExpr(pkg, v.Fun) {
				if visited[callee] {
					continue
				}
				visited[callee] = true
				if lc.hasTerminationEvidence(callee.Decl.Body, callee.Pkg, visited) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isStopChannel recognizes ctx.Done() results, channels close()d somewhere
// in the program, and lifecycle-named channels.
func (lc *leakChecker) isStopChannel(pkg *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if obj, ok := calleeObj(pkg.Info, call).(*types.Func); ok &&
			obj.Name() == "Done" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
		return false
	}
	if class, ok := classOfExpr(pkg, e); ok && lc.closedClasses[class] {
		return true
	}
	name := ""
	switch v := e.(type) {
	case *ast.Ident:
		if lc.closedObjs[pkg.Info.Uses[v]] {
			return true
		}
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	}
	name = strings.ToLower(name)
	for _, frag := range stopChanNames {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// spawnerAddsToWaitGroup reports whether n's body calls Add on a
// sync.WaitGroup (the spawning half of the tracking idiom).
func (lc *leakChecker) spawnerAddsToWaitGroup(n *FuncNode) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && isWaitGroupMethod(n.Pkg, call, "Add") {
			found = true
		}
		return !found
	})
	return found
}

// callsWaitGroupDone searches body (and its non-goroutine callees) for a
// WaitGroup.Done call.
func (lc *leakChecker) callsWaitGroupDone(body ast.Node, pkg *Package, visited map[*FuncNode]bool) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if isWaitGroupMethod(pkg, v, "Done") {
				found = true
				return false
			}
			for _, callee := range lc.cg.resolveFuncExpr(pkg, v.Fun) {
				if visited[callee] {
					continue
				}
				visited[callee] = true
				if lc.callsWaitGroupDone(callee.Decl.Body, callee.Pkg, visited) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isWaitGroupMethod(pkg *Package, call *ast.CallExpr, name string) bool {
	obj, ok := calleeObj(pkg.Info, call).(*types.Func)
	if !ok || obj.Name() != name || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := derefNamed(recv.Type())
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// hasInescapableLoop reports whether body (or a callee on its control flow)
// contains a `for {}` with no break, return, or terminating call — a loop a
// WaitGroup-tracked goroutine could never leave.
func (lc *leakChecker) hasInescapableLoop(body ast.Node, pkg *Package, visited map[*FuncNode]bool) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if v.Cond == nil && !loopEscapes(v.Body) {
				found = true
				return false
			}
		case *ast.CallExpr:
			for _, callee := range lc.cg.resolveFuncExpr(pkg, v.Fun) {
				if visited[callee] {
					continue
				}
				visited[callee] = true
				if lc.hasInescapableLoop(callee.Decl.Body, callee.Pkg, visited) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// loopEscapes reports whether a loop body contains any statement that can
// leave the loop: break (any target — an approximation), return, goto, or a
// terminal call (panic / os.Exit).
func loopEscapes(body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(x ast.Node) bool {
		if escapes {
			return false
		}
		switch v := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			if v.Tok == token.BREAK || v.Tok == token.GOTO {
				escapes = true
			}
		case *ast.ExprStmt:
			if isTerminalCall(v.X) {
				escapes = true
			}
		}
		return !escapes
	})
	return escapes
}
