package lint

import (
	"go/ast"
)

// CtxPoll enforces the cancellation discipline of the batched executor
// (DESIGN.md §6/§8/§11): every engine operator's NextBatch that contains a
// loop must reach a cancellation touchpoint. Parents that consume child rows
// get it for free — the executor's pullBatch checks Ctx.Cancel once per
// batch, and a batchCursor's pull() rides on it — but an operator filling a
// batch from its own iteration state (an index scan skipping non-matching
// entries, an exchange draining worker channels) makes no child pull and
// would spin past a canceled context for a whole scan's worth of rows.
// Such loops must call ctx.poll() (or consult ctx.Cancel) themselves.
//
// Rule: in package engine, a NextBatch (or legacy Next) method that contains
// a loop must reach a cancellation touchpoint somewhere in its body — a call
// to pull or pullBatch, a call to a method named poll or pollBatch, or a use
// of the Cancel field. Methods that poll are trusted with their inner
// bounded loops (copying one row's columns, draining a pending slice into
// the batch); methods with loops and no touchpoint at all are flagged at
// each outermost loop. Loop-free bulk emitters (a materialized operator
// copying a slice range per batch) need no touchpoint: the per-batch check
// in pullBatch bounds their work.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "engine operator NextBatch loops must reach the cancellation poll",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	if pass.Pkg.Name() != "engine" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil ||
				(fd.Name.Name != "NextBatch" && fd.Name.Name != "Next") {
				continue
			}
			checkNextLoops(pass, fd.Body)
		}
	}
	return nil
}

// checkNextLoops flags the outermost loops of a NextBatch body that never
// reaches a cancellation touchpoint. A body that polls anywhere sanctions
// its loops: per invocation the poll counter advances, and the engine's
// inner loops are bounded per pulled row or per emitted batch.
func checkNextLoops(pass *Pass, body *ast.BlockStmt) {
	if subtreePolls(body) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			pass.Reportf(n.Pos(),
				"loop in an operator NextBatch that never reaches the cancellation check; pull child rows through a cursor or pullBatch, or call ctx.poll() each iteration")
			return false // outermost loops only
		}
		return true
	})
}

// subtreePolls reports whether the loop's subtree contains a cancellation
// touchpoint: a pull/pullBatch call, a poll/pollBatch method call, or any
// use of the Cancel field. Function literals are skipped — a closure's body
// does not run on this loop's iterations.
func subtreePolls(loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			switch calleeName(x) {
			case "pull", "pullBatch", "poll", "pollBatch":
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Cancel" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
