package lint

import (
	"go/ast"
)

// CtxPoll enforces the cancellation discipline of the streaming executor
// (DESIGN.md §6/§8): every engine operator's Next that contains a loop must
// reach the periodic cancellation check. Parents that pull child rows get it
// for free — pull() polls Ctx.Cancel every cancelCheckEvery pulls — but an
// operator looping over its own iteration state (an index scan skipping
// non-matching entries, an exchange draining worker channels) makes no pull
// and would spin past a canceled context for the whole scan. Such loops must
// call ctx.poll() (or consult ctx.Cancel) themselves.
//
// Rule: in package engine, a Next method that contains a loop must reach a
// cancellation touchpoint somewhere in its body — a call to pull, a call to
// a method named poll, or a use of the Cancel field. Methods that poll are
// trusted with their inner bounded loops (copying one row's columns,
// draining a pending batch); methods with loops and no touchpoint at all
// are flagged at each outermost loop.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "engine operator Next loops must reach the cancellation poll",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	if pass.Pkg.Name() != "engine" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Next" || fd.Body == nil {
				continue
			}
			checkNextLoops(pass, fd.Body)
		}
	}
	return nil
}

// checkNextLoops flags the outermost loops of a Next body that never
// reaches a cancellation touchpoint. A body that polls anywhere sanctions
// its loops: per invocation the poll counter advances, and the engine's
// inner loops are bounded per pulled row.
func checkNextLoops(pass *Pass, body *ast.BlockStmt) {
	if subtreePolls(body) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			pass.Reportf(n.Pos(),
				"loop in an operator Next that never reaches the cancellation check; pull child rows through pull(), or call ctx.poll() each iteration")
			return false // outermost loops only
		}
		return true
	})
}

// subtreePolls reports whether the loop's subtree contains a cancellation
// touchpoint: a pull(...) call, a .poll(...) method call, or any use of the
// Cancel field. Function literals are skipped — a closure's body does not
// run on this loop's iterations.
func subtreePolls(loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			name := calleeName(x)
			if name == "pull" || name == "poll" {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Cancel" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
