package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file is the intraprocedural control-flow layer of the whole-program
// analyzers: a statement-granularity CFG over go/ast, precise enough for the
// forward dataflow the concurrency checks run (lock-held sets, batch-alias
// poisoning) without needing SSA. Blocks hold the statements that execute
// straight-line; successor edges model if/for/range/switch/select,
// labeled break/continue, goto, return, and the terminal calls panic and
// os.Exit. Deferred statements do not appear in the flow — they are
// collected on the side (CFG.Defers) for analyses that interpret them
// (a deferred mu.Unlock keeps the lock held for the rest of the function;
// a deferred wg.Done is the goroutine-tracking idiom).

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block in creation order; Blocks[0] is the entry.
	Blocks []*Block
	// Entry receives control at the function's start; Exit collects every
	// return, fall-off-the-end, and terminal call. Neither holds statements.
	Entry, Exit *Block
	// Defers lists the function's defer statements in source order,
	// excluding those inside nested function literals.
	Defers []*ast.DeferStmt
}

// Block is one straight-line run of statements.
type Block struct {
	Index int
	// Stmts execute in order; control then moves to one of Succs.
	// Compound statements contribute their sub-expressions here (an IfStmt's
	// init+cond, a SwitchStmt's tag, ...) via small wrapper statements, so a
	// linear scan of Stmts sees every expression the block evaluates.
	Stmts []ast.Stmt
	Succs []*Block
}

// cfgBuilder threads the under-construction graph: cur is the block new
// statements append to (nil after a terminal statement — subsequent dead
// code lands in a fresh unreachable block).
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// breakTo / continueTo map "" to the innermost target and each label to
	// its loop or switch.
	breakTo    map[string]*Block
	continueTo map[string]*Block
	labels     map[string]*Block   // goto targets materialized so far
	gotos      map[string][]*Block // blocks waiting for a label
	labelNext  string              // pending label for the next loop/switch
	// breakStack / contStack save the outer "" targets across nested
	// loops and switches.
	breakStack []*Block
	contStack  []*Block
}

// BuildCFG builds the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{},
		breakTo:    map[string]*Block{},
		continueTo: map[string]*Block{},
		labels:     map[string]*Block{},
		gotos:      map[string][]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.newBlock()
	b.edge(b.cfg.Entry, b.cur)
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	// Unresolved gotos (labels on plain statements handled below) fall
	// through to exit so the graph stays connected.
	for _, pending := range b.gotos {
		for _, from := range pending {
			b.edge(from, b.cfg.Exit)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock makes next the current block, linking it from the previous
// current block when control can fall through.
func (b *cfgBuilder) startBlock(next *Block) {
	if b.cur != nil {
		b.edge(b.cur, next)
	}
	b.cur = next
}

func (b *cfgBuilder) append(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code still gets a block
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// exprStmt wraps a compound statement's sub-expression (an if condition, a
// switch tag, a range operand) so it appears in a block's statement list.
func exprStmt(e ast.Expr) ast.Stmt {
	if e == nil {
		return nil
	}
	return &ast.ExprStmt{X: e}
}

func (b *cfgBuilder) appendExpr(e ast.Expr) {
	if s := exprStmt(e); s != nil {
		b.append(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmts(x.List)
	case *ast.LabeledStmt:
		switch x.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.labelNext = x.Label.Name
			b.stmt(x.Stmt)
			b.labelNext = ""
		default:
			// A goto target on a plain statement: materialize a block.
			target := b.newBlock()
			b.startBlock(target)
			b.labels[x.Label.Name] = target
			for _, from := range b.gotos[x.Label.Name] {
				b.edge(from, target)
			}
			delete(b.gotos, x.Label.Name)
			b.stmt(x.Stmt)
		}
	case *ast.IfStmt:
		b.stmt(x.Init)
		b.appendExpr(x.Cond)
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(x.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		if x.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(x.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.ForStmt:
		b.stmt(x.Init)
		head := b.newBlock()
		b.startBlock(head)
		b.appendExpr(x.Cond)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		if x.Cond != nil {
			b.edge(head, exit) // condition can fail
		}
		label := b.labelNext
		b.labelNext = ""
		post := head
		if x.Post != nil {
			post = b.newBlock()
		}
		b.pushLoop(label, exit, post)
		b.cur = body
		b.stmt(x.Body)
		if x.Post != nil {
			b.startBlock(post)
			b.stmt(x.Post)
			if b.cur != nil {
				b.edge(b.cur, head)
			}
		} else if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop(label)
		b.cur = exit
	case *ast.RangeStmt:
		b.appendExpr(x.X)
		head := b.newBlock()
		b.startBlock(head)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit) // a range always may be empty/exhausted
		label := b.labelNext
		b.labelNext = ""
		b.pushLoop(label, exit, head)
		b.cur = body
		b.stmt(x.Body)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop(label)
		b.cur = exit
	case *ast.SwitchStmt:
		b.stmt(x.Init)
		b.appendExpr(x.Tag)
		b.caseClauses(x.Body, true)
	case *ast.TypeSwitchStmt:
		b.stmt(x.Init)
		b.stmt(x.Assign)
		b.caseClauses(x.Body, true)
	case *ast.SelectStmt:
		b.caseClauses(x.Body, false)
	case *ast.ReturnStmt:
		b.append(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		label := ""
		if x.Label != nil {
			label = x.Label.Name
		}
		switch x.Tok {
		case token.BREAK:
			if t, ok := b.breakTo[label]; ok {
				b.edge(b.cur, t)
				b.cur = nil
			}
		case token.CONTINUE:
			if t, ok := b.continueTo[label]; ok {
				b.edge(b.cur, t)
				b.cur = nil
			}
		case token.GOTO:
			if t, ok := b.labels[label]; ok {
				b.edge(b.cur, t)
			} else if b.cur != nil {
				b.gotos[label] = append(b.gotos[label], b.cur)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// caseClauses wires the fallthrough edge; nothing to do here.
		}
	case *ast.DeferStmt:
		// stmt never descends into FuncLit bodies (they live inside
		// expressions), so every defer seen here belongs to this function.
		b.cfg.Defers = append(b.cfg.Defers, x)
		b.append(s)
	case *ast.ExprStmt:
		b.append(s)
		if isTerminalCall(x.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}
	default:
		b.append(s)
	}
}

// caseClauses builds the blocks of a switch/type-switch/select body. For
// switches, withTag adds the fall-past edge when no default clause exists;
// consecutive clauses are linked for fallthrough.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, isSwitch bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	join := b.newBlock()
	label := b.labelNext
	b.labelNext = ""
	prevBreak, hadBreak := b.breakTo[""]
	b.breakTo[""] = join
	if label != "" {
		b.breakTo[label] = join
	}

	hasDefault := false
	clauseBlocks := make([]*Block, 0, len(body.List))
	for range body.List {
		clauseBlocks = append(clauseBlocks, b.newBlock())
	}
	for i, cl := range body.List {
		blk := clauseBlocks[i]
		b.edge(head, blk)
		b.cur = blk
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				b.appendExpr(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			b.stmt(c.Comm)
			stmts = c.Body
		}
		fellThrough := false
		for _, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(clauseBlocks) {
					b.edge(b.cur, clauseBlocks[i+1])
					b.cur = nil
					fellThrough = true
				}
				continue
			}
			b.stmt(st)
		}
		if !fellThrough && b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	if isSwitch && !hasDefault {
		b.edge(head, join) // no case matched
	}
	if len(body.List) == 0 {
		b.edge(head, join)
	}
	if hadBreak {
		b.breakTo[""] = prevBreak
	} else {
		delete(b.breakTo, "")
	}
	if label != "" {
		delete(b.breakTo, label)
	}
	b.cur = join
}

// pushLoop / popLoop maintain the break/continue target stacks: the "" key
// always points at the innermost loop, and the stacks restore the outer
// targets when a nested loop ends.
func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakStack = append(b.breakStack, b.breakTo[""])
	b.contStack = append(b.contStack, b.continueTo[""])
	b.breakTo[""] = brk
	b.continueTo[""] = cont
	if label != "" {
		b.breakTo[label] = brk
		b.continueTo[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	n := len(b.breakStack) - 1
	b.breakTo[""] = b.breakStack[n]
	b.continueTo[""] = b.contStack[n]
	b.breakStack = b.breakStack[:n]
	b.contStack = b.contStack[:n]
	if label != "" {
		delete(b.breakTo, label)
		delete(b.continueTo, label)
	}
}

// String renders the graph compactly for tests and debugging:
// "b2[3 stmts] -> b4 b5" per block, reachable blocks only.
func (c *CFG) String() string {
	reach := map[*Block]bool{}
	var mark func(*Block)
	mark = func(b *Block) {
		if b == nil || reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			mark(s)
		}
	}
	mark(c.Entry)
	var sb strings.Builder
	for _, b := range c.Blocks {
		if !reach[b] {
			continue
		}
		succs := make([]int, 0, len(b.Succs))
		for _, s := range b.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		fmt.Fprintf(&sb, "b%d[%d]", b.Index, len(b.Stmts))
		if b == c.Entry {
			sb.WriteString(" entry")
		}
		if b == c.Exit {
			sb.WriteString(" exit")
		}
		for _, s := range succs {
			fmt.Fprintf(&sb, " ->b%d", s)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
