// Package lint is a repo-specific static-analysis suite that mechanizes the
// correctness invariants of the colorful MCT system: production file I/O
// must flow through internal/vfs, every colorful.DB mutation must sit inside
// a beginCommit/commitChanges durable commit scope, engine operators must
// poll cancellation from their row loops, sentinel errors must be compared
// with errors.Is/errors.As and wrapped with %w, the crash-test workload and
// the WAL/checkpoint encoders must stay deterministic, and the published
// query snapshot may be touched only through sync/atomic accessors.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is implemented entirely on the standard
// library: packages are enumerated and compiled with `go list -export`, and
// type-checked with go/types against the compiled export data of their
// dependencies. That keeps the module dependency-free — the lint tool runs
// with the same toolchain that builds the repo and nothing else.
//
// Drivers: cmd/mctlint runs every analyzer over a package pattern;
// internal/lint/linttest runs one analyzer over a testdata fixture module
// and checks its diagnostics against `// want "regexp"` comments.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring analysis.Analyzer. An analyzer is
// either per-package (Run) or whole-program (RunProgram): per-package checks
// see one type-checked package at a time, whole-program checks see every
// loaded package at once plus the static call graph, which is what the
// cross-package concurrency invariants (lock ordering, goroutine lifecycle)
// need. Exactly one of Run / RunProgram is set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	Name string
	// Doc is the one-paragraph description printed by `mctlint -help`.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
	// RunProgram inspects the whole loaded program at once.
	RunProgram func(pass *ProgramPass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test syntax trees. Test files are never
	// loaded, so every analyzer is automatically exempt in tests.
	Files []*ast.File
	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info
	// Path is the package import path (Pkg.Path(), kept separate so scoping
	// helpers read naturally).
	Path string

	report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf formats and emits a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Program is the whole-program view handed to RunProgram analyzers: every
// loaded package (sharing one FileSet, so positions resolve uniformly) and
// the static call graph across them.
type Program struct {
	Packages []*Package
	Fset     *token.FileSet
	// CallGraph is built lazily by the first analyzer that asks for it.
	callGraph *CallGraph
}

// NewProgram assembles a Program over the loaded packages.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Packages: pkgs}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	} else {
		p.Fset = token.NewFileSet()
	}
	return p
}

// CallGraph returns the program's static call graph, building it on first
// use.
func (p *Program) CallGraph() *CallGraph {
	if p.callGraph == nil {
		p.callGraph = BuildCallGraph(p.Packages)
	}
	return p.callGraph
}

// ProgramPass carries one whole-program analyzer's view of the program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	report func(Diagnostic)
}

// Report emits a diagnostic.
func (p *ProgramPass) Report(d Diagnostic) { p.report(d) }

// Reportf formats and emits a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a located diagnostic, ready for printing or matching.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		VFSOnly,
		CommitScope,
		SessionClose,
		CtxPoll,
		ErrWrapSentinel,
		Determinism,
		AtomicSnapshot,
		ObsRegister,
		LockOrder,
		GoroutineLeak,
		BatchAlias,
		HealthTransition,
	}
}

// Run applies the analyzers to every package and returns the findings
// sorted by file, line, column and analyzer name. Per-package analyzers see
// one package at a time; whole-program analyzers see all of them at once
// through a shared Program. Findings carrying a matching
// `//mctlint:ignore <analyzer> <reason>` suppression comment (on the
// finding's line or the line above) are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs)
		}
		a := a
		pass := &ProgramPass{Analyzer: a, Prog: prog}
		pass.report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Position: prog.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
			}
			pass.report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	out = filterSuppressed(pkgs, out)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// suppressKey identifies one suppressed (file, line, analyzer) site.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// filterSuppressed drops findings covered by an
//
//	//mctlint:ignore <analyzer> <reason>
//
// comment on the finding's own line or on the line directly above it. The
// reason is mandatory — a bare ignore suppresses nothing — so every
// suppression in the tree documents why the imprecision is acceptable.
func filterSuppressed(pkgs []*Package, findings []Finding) []Finding {
	suppressed := map[suppressKey]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//mctlint:ignore ")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) < 2 { // analyzer plus at least one reason word
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					suppressed[suppressKey{pos.Filename, pos.Line, fields[0]}] = true
					suppressed[suppressKey{pos.Filename, pos.Line + 1, fields[0]}] = true
				}
			}
		}
	}
	if len(suppressed) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		if !suppressed[suppressKey{f.Position.Filename, f.Position.Line, f.Analyzer}] {
			kept = append(kept, f)
		}
	}
	return kept
}

// --- shared scoping and AST helpers ---------------------------------------

// pathHasSuffix reports whether an import path is pkg or ends in "/"+pkg,
// for suffix-scoped analyzers (fixture modules mirror the repo's layout
// under their own module path, so suffix matching scopes both).
func pathHasSuffix(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// calleeObj resolves a call expression's callee to its types.Object (the
// function or method being called), unwrapping parens; nil for indirect
// calls through non-named expressions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the named function of the named package.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeName returns the bare name a call is spelled with (x.Sel or ident),
// for syntax-keyed analyzers; "" for other call shapes.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) implements the error interface.
func implementsError(t types.Type) bool {
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}
