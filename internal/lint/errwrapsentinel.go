package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ErrWrapSentinel enforces the error-matching contract the fallback and
// recovery paths rely on: sentinel errors (plan.ErrUnsupported,
// wal.ErrCorrupt, pagestore.ErrChecksum, colorful.ErrClosed, ...) travel
// through fmt.Errorf("%w") chains — colorful.Query falls back to the
// evaluator only when errors.Is(err, plan.ErrUnsupported) — so:
//
//   - comparing an error against a package-level sentinel with == or !=
//     silently misses every wrapped occurrence; use errors.Is;
//   - a type assertion to a concrete error type misses wrapped occurrences
//     the same way; use errors.As;
//   - passing a sentinel to fmt.Errorf under %v or %s strips it from the
//     chain, so downstream errors.Is stops matching; use %w.
//
// Nil comparisons are exempt, as are the Is/As/Unwrap methods a sentinel
// type itself defines.
var ErrWrapSentinel = &Analyzer{
	Name: "errwrapsentinel",
	Doc:  "sentinel errors are matched with errors.Is/As and wrapped with %w",
	Run:  runErrWrapSentinel,
}

func runErrWrapSentinel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				// The comparison inside a sentinel type's own Is method is the
				// one place == is the point.
				if x.Recv != nil && (x.Name.Name == "Is" || x.Name.Name == "Unwrap") {
					return false
				}
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, x)
			case *ast.TypeAssertExpr:
				checkErrorTypeAssert(pass, x)
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
			}
			return true
		})
	}
	return nil
}

// sentinelObj returns the package-level error variable e refers to, nil if e
// is anything else. Both exported sentinels from other packages (selector)
// and the package's own (identifier) count.
func sentinelObj(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package-level: its parent scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}

func checkSentinelCompare(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		v := sentinelObj(pass.Info, side)
		if v == nil {
			continue
		}
		other := b.Y
		if side == b.Y {
			other = b.X
		}
		if isNil(pass.Info, other) {
			continue
		}
		pass.Reportf(b.Pos(),
			"sentinel error %s compared with %s; use errors.Is so wrapped occurrences match",
			v.Name(), b.Op)
		return
	}
}

// checkErrorTypeAssert flags err.(*SomeError) where the operand is an error
// and the asserted type implements error: errors.As sees through wrapping,
// the assertion does not. Type switches are left alone — they are the
// idiomatic multi-type dispatch and rarely applied to wrapped chains.
func checkErrorTypeAssert(pass *Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // type switch guard
	}
	operand, ok := pass.Info.Types[ta.X]
	if !ok || !isErrorInterface(operand.Type) {
		return // only assertions on values of static type error
	}
	asserted, ok := pass.Info.Types[ta.Type]
	if !ok || !implementsError(asserted.Type) {
		return
	}
	if _, isIface := asserted.Type.Underlying().(*types.Interface); isIface {
		return // interface-to-interface assertions are not sentinel matching
	}
	pass.Reportf(ta.Pos(),
		"type assertion on an error to %s; use errors.As so wrapped occurrences match", asserted.Type)
}

func isErrorInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && types.Identical(iface, errorType)
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel error under a
// verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(calleeObj(pass.Info, call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // indexed or otherwise exotic format; out of scope
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		v := sentinelObj(pass.Info, call.Args[argIdx])
		if v == nil {
			continue
		}
		if verb != 'w' {
			pass.Reportf(call.Args[argIdx].Pos(),
				"sentinel error %s formatted with %%%c; use %%w so the chain keeps matching errors.Is",
				v.Name(), verb)
		}
	}
}

// formatVerbs extracts the verb letter consumed by each successive argument
// of a Printf-style format. ok is false for formats using explicit argument
// indexes ([n]), which this simple scanner does not model.
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*') // width/precision consumes an arg
				i++
				continue
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs, true
}
