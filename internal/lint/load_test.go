package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"colorfulxml/internal/lint"
)

// writeModule materializes a tiny module from name -> contents pairs and
// returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, contents := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadSkipsBuildTaggedFiles: a file excluded by a build constraint must
// not be parsed or type-checked — it references an undefined symbol, so
// loading it would fail.
func TestLoadSkipsBuildTaggedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":    "module tagfix\n\ngo 1.22\n",
		"a.go":      "package tagfix\n\nfunc OK() int { return 1 }\n",
		"tagged.go": "//go:build never_enabled_tag\n\npackage tagfix\n\nvar broken = undefinedSymbol\n",
	})
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load with excluded build-tagged file: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("want 1 package with 1 file, got %d packages", len(pkgs))
	}
}

// TestLoadWithoutCgo: with CGO_ENABLED=0 (the CI cross-compile default) the
// loader must still resolve export data, and cgo-gated files drop out of
// the package like any other constrained file.
func TestLoadWithoutCgo(t *testing.T) {
	t.Setenv("CGO_ENABLED", "0")
	dir := writeModule(t, map[string]string{
		"go.mod": "module nocgofix\n\ngo 1.22\n",
		"a.go":   "package nocgofix\n\nimport \"os\"\n\nfunc Hostname() (string, error) { return os.Hostname() }\n",
		"cgo.go": "//go:build cgo\n\npackage nocgofix\n\nvar broken = undefinedSymbol\n",
	})
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load with CGO_ENABLED=0: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("want 1 package with 1 file (cgo file excluded), got %+v", pkgs)
	}
}

// TestLoadSkipsExternalTestsOnlyPackage: a directory holding only _test.go
// files lists with no GoFiles; the loader must skip it without error and
// still load its siblings.
func TestLoadSkipsExternalTestsOnlyPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              "module testonlyfix\n\ngo 1.22\n",
		"lib/lib.go":          "package lib\n\nfunc Lib() {}\n",
		"onlytests/x_test.go": "package onlytests\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
	})
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load with tests-only sibling package: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "lib" {
		t.Fatalf("want only package lib, got %d packages", len(pkgs))
	}
}
