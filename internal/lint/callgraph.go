package lint

import (
	"go/ast"
	"go/types"
)

// This file builds the static call graph the whole-program analyzers walk:
// one node per function or method declared (with a body) in the loaded
// packages, call-site edges resolved through go/types. Direct calls resolve
// to exactly one callee; calls through an interface fan out to every method
// of every loaded concrete type implementing that interface (a sound
// over-approximation for code the loader saw — calls into dependencies the
// loader only has export data for simply have no callees, and each analyzer
// decides whether "unresolved" is benign or a finding). Method values and
// function values referenced outside call position are recorded as Refs so
// lifecycle analyses can chase `go w.run` and callbacks.

// CallGraph is the program's static call graph.
type CallGraph struct {
	// Nodes maps each declared function's stable full name (its
	// generic-origin types.Func FullName, e.g.
	// "(*path/to/pkg.Type).Method") to its node. The key is a string, not
	// the *types.Func itself, because every package is type-checked
	// independently against export data: the object a caller sees for an
	// imported function is a different instance than the one produced by
	// type-checking the defining package's source, and only the full name
	// is stable across those views.
	Nodes map[string]*FuncNode

	named []*types.Named // loaded non-interface named types, for dispatch fan-out
}

// FuncNode is one declared function or method.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists every call expression in the declaration, in source order,
	// including calls inside nested function literals (flagged InFuncLit).
	Calls []*CallSite
	// Refs lists functions referenced as values rather than called —
	// method values, functions passed as arguments — the potential targets
	// of later indirect calls.
	Refs []*FuncNode
}

// Name renders the node as Func or Type.Method (pointer receivers
// collapsed), the notation Lookup accepts.
func (n *FuncNode) Name() string {
	sig := n.Fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + n.Fn.Name()
		}
	}
	return n.Fn.Name()
}

// CallSite is one call expression inside a declaration.
type CallSite struct {
	Call *ast.CallExpr
	// Callees holds the resolved targets: one for a direct call, several for
	// interface dispatch, none when the target is outside the loaded
	// program or truly dynamic (a call through a function-typed variable).
	Callees []*FuncNode
	// Go and Deferred mark the call as the operand of a go / defer
	// statement; InFuncLit marks it lexically inside a function literal of
	// the enclosing declaration (so it does not execute on the declaring
	// function's own control flow).
	Go        bool
	Deferred  bool
	InFuncLit bool
}

// BuildCallGraph constructs the call graph over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[string]*FuncNode{}}

	// Pass 1: nodes for every declaration with a body, plus the named-type
	// universe interface dispatch fans out over.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[funcKey(fn)] = &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.named = append(g.named, named)
		}
	}

	// Pass 2: edges.
	for _, n := range g.Nodes {
		g.scan(n, n.Decl.Body, false)
	}
	return g
}

// scan walks body collecting call sites and function-value references for n.
// go/defer operands are marked by visiting the parent statement before its
// call child; call-position expressions are excluded from Refs the same way.
func (g *CallGraph) scan(n *FuncNode, body ast.Node, inLit bool) {
	goCalls := map[*ast.CallExpr]bool{}
	deferCalls := map[*ast.CallExpr]bool{}
	inCallPos := map[ast.Expr]bool{}
	consumedSel := map[*ast.Ident]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			if !inLit {
				g.scan(n, v.Body, true)
				return false
			}
			return true // already inside a literal; flags unchanged
		case *ast.GoStmt:
			goCalls[v.Call] = true
		case *ast.DeferStmt:
			deferCalls[v.Call] = true
		case *ast.CallExpr:
			inCallPos[ast.Unparen(v.Fun)] = true
			n.Calls = append(n.Calls, &CallSite{
				Call:      v,
				Callees:   g.resolveFuncExpr(n.Pkg, v.Fun),
				Go:        goCalls[v],
				Deferred:  deferCalls[v],
				InFuncLit: inLit,
			})
		case *ast.SelectorExpr:
			consumedSel[v.Sel] = true
			if !inCallPos[v] {
				n.Refs = append(n.Refs, g.resolveFuncExpr(n.Pkg, v)...)
			}
		case *ast.Ident:
			if consumedSel[v] || inCallPos[v] {
				return true
			}
			if _, isDef := n.Pkg.Info.Defs[v]; isDef {
				return true
			}
			if fn, ok := n.Pkg.Info.Uses[v].(*types.Func); ok {
				if target := g.node(fn); target != nil {
					n.Refs = append(n.Refs, target)
				}
			}
		}
		return true
	})
}

// funcKey is the stable cross-package identity of a function: its
// generic-origin full name.
func funcKey(fn *types.Func) string { return fn.Origin().FullName() }

// node maps a types.Func to its declared node, normalizing instantiated
// generic methods back to their origin; nil for functions outside the
// loaded program.
func (g *CallGraph) node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.Nodes[funcKey(fn)]
}

// resolveFuncExpr resolves an expression in function position (a call's Fun,
// or a method/function value) to its possible declared targets.
func (g *CallGraph) resolveFuncExpr(pkg *Package, e ast.Expr) []*FuncNode {
	switch fun := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if n := g.node(fn); n != nil {
				return []*FuncNode{n}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return g.implementers(iface, fn)
			}
		}
		if n := g.node(fn); n != nil {
			return []*FuncNode{n}
		}
	}
	return nil
}

// implementers fans an interface method out to the corresponding concrete
// method of every loaded named type implementing the interface.
func (g *CallGraph) implementers(iface *types.Interface, m *types.Func) []*FuncNode {
	var out []*FuncNode
	for _, named := range g.named {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(named, true, m.Pkg(), m.Name())
		if mf, ok := obj.(*types.Func); ok {
			if n := g.node(mf); n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// Lookup finds a node by package-path suffix and Name() notation
// ("Open", "DB.Close"); nil when absent. Test and debugging helper.
func (g *CallGraph) Lookup(pkgSuffix, name string) *FuncNode {
	for _, n := range g.Nodes {
		if pathHasSuffix(n.Pkg.Path, pkgSuffix) && n.Name() == name {
			return n
		}
	}
	return nil
}

// CalleesNamed flattens a node's resolved callee names, call order, for
// compact test assertions: "pkgname.Func" / "pkgname.Type.Method".
func (n *FuncNode) CalleesNamed() []string {
	var out []string
	for _, cs := range n.Calls {
		for _, c := range cs.Callees {
			out = append(out, c.Pkg.Name+"."+c.Name())
		}
	}
	return out
}
