package lint_test

import (
	"sort"
	"testing"

	"colorfulxml/internal/lint"
)

// loadCallGraph materializes a module, loads it, and builds its call graph.
func loadCallGraph(t *testing.T, files map[string]string) *lint.CallGraph {
	t.Helper()
	dir := writeModule(t, files)
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading call-graph fixture: %v", err)
	}
	return lint.BuildCallGraph(pkgs)
}

func TestCallGraphDirectAndCrossPackage(t *testing.T) {
	g := loadCallGraph(t, map[string]string{
		"go.mod": "module cgfix\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"cgfix/b\"\n\nfunc Caller() { helper(); b.Exported() }\nfunc helper() {}\n",
		"b/b.go": "package b\n\nfunc Exported() { inner() }\nfunc inner() {}\n",
	})
	caller := g.Lookup("cgfix/a", "Caller")
	if caller == nil {
		t.Fatal("Caller not in graph")
	}
	got := caller.CalleesNamed()
	want := []string{"a.helper", "b.Exported"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Caller callees = %v, want %v", got, want)
	}
	// Cross-package resolution must link to the node with a body: the edge
	// from b.Exported to b.inner proves the graph is transitively usable.
	if ex := g.Lookup("cgfix/b", "Exported"); ex == nil || len(ex.CalleesNamed()) != 1 {
		t.Errorf("Exported -> inner edge missing")
	}
}

func TestCallGraphInterfaceDispatchFanOut(t *testing.T) {
	g := loadCallGraph(t, map[string]string{
		"go.mod": "module cgfix\n\ngo 1.22\n",
		"a/a.go": `package a

type Speaker interface{ Speak() }

type Dog struct{}

func (Dog) Speak() {}

type Cat struct{}

func (Cat) Speak() {}

func Dispatch(s Speaker) { s.Speak() }
`,
	})
	d := g.Lookup("cgfix/a", "Dispatch")
	if d == nil {
		t.Fatal("Dispatch not in graph")
	}
	got := d.CalleesNamed()
	sort.Strings(got)
	want := []string{"a.Cat.Speak", "a.Dog.Speak"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("interface dispatch fan-out = %v, want %v", got, want)
	}
}

func TestCallGraphMethodValueRef(t *testing.T) {
	g := loadCallGraph(t, map[string]string{
		"go.mod": "module cgfix\n\ngo 1.22\n",
		"a/a.go": `package a

type W struct{}

func (W) run() {}

func Holder(w W) func() {
	f := w.run
	return f
}
`,
	})
	h := g.Lookup("cgfix/a", "Holder")
	if h == nil {
		t.Fatal("Holder not in graph")
	}
	foundRef := false
	for _, r := range h.Refs {
		if r.Name() == "W.run" {
			foundRef = true
		}
	}
	if !foundRef {
		t.Errorf("method value w.run not recorded as a Ref; refs: %d", len(h.Refs))
	}
	if len(h.CalleesNamed()) != 0 {
		t.Errorf("method value must not count as a call: %v", h.CalleesNamed())
	}
}

func TestCallGraphGoDeferAndLiteralFlags(t *testing.T) {
	g := loadCallGraph(t, map[string]string{
		"go.mod": "module cgfix\n\ngo 1.22\n",
		"a/a.go": `package a

func helper() {}

func Spawner() {
	go helper()
	defer helper()
	f := func() { helper() }
	f()
}
`,
	})
	sp := g.Lookup("cgfix/a", "Spawner")
	if sp == nil {
		t.Fatal("Spawner not in graph")
	}
	var goSeen, deferSeen, litSeen, plainSeen bool
	for _, cs := range sp.Calls {
		for _, c := range cs.Callees {
			if c.Name() != "helper" {
				continue
			}
			switch {
			case cs.Go:
				goSeen = true
			case cs.Deferred:
				deferSeen = true
			case cs.InFuncLit:
				litSeen = true
			default:
				plainSeen = true
			}
		}
	}
	if !goSeen || !deferSeen || !litSeen {
		t.Errorf("call-site flags: go=%v defer=%v inFuncLit=%v", goSeen, deferSeen, litSeen)
	}
	if plainSeen {
		t.Errorf("no plain direct call to helper exists, but one was recorded")
	}
}
