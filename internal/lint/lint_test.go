package lint_test

import (
	"os/exec"
	"testing"

	"colorfulxml/internal/lint"
	"colorfulxml/internal/lint/linttest"
)

func TestVFSOnly(t *testing.T)         { linttest.Run(t, lint.VFSOnly, "vfsonly") }
func TestCommitScope(t *testing.T)     { linttest.Run(t, lint.CommitScope, "commitscope") }
func TestSessionClose(t *testing.T)    { linttest.Run(t, lint.SessionClose, "sessionclose") }
func TestCtxPoll(t *testing.T)         { linttest.Run(t, lint.CtxPoll, "ctxpoll") }
func TestErrWrapSentinel(t *testing.T) { linttest.Run(t, lint.ErrWrapSentinel, "errwrapsentinel") }
func TestDeterminism(t *testing.T)     { linttest.Run(t, lint.Determinism, "determinism") }
func TestAtomicSnapshot(t *testing.T)  { linttest.Run(t, lint.AtomicSnapshot, "atomicsnapshot") }
func TestObsRegister(t *testing.T)     { linttest.Run(t, lint.ObsRegister, "obsregister") }

func TestLockOrder(t *testing.T)        { linttest.Run(t, lint.LockOrder, "lockorder") }
func TestGoroutineLeak(t *testing.T)    { linttest.Run(t, lint.GoroutineLeak, "goroutineleak") }
func TestBatchAlias(t *testing.T)       { linttest.Run(t, lint.BatchAlias, "batchalias") }
func TestHealthTransition(t *testing.T) { linttest.Run(t, lint.HealthTransition, "healthtransition") }

// TestRepoClean runs the whole suite over the repository itself: the tree
// must stay free of diagnostics. A failure here is a real invariant
// violation — fix the flagged code, not this test.
func TestRepoClean(t *testing.T) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestMctlintCommand exercises the CI entry point end to end: the mctlint
// command must build, run over ./..., and exit 0.
func TestMctlintCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: TestRepoClean covers the analyzers in-process")
	}
	cmd := exec.Command("go", "run", "./cmd/mctlint", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/mctlint ./...: %v\n%s", err, out)
	}
}
