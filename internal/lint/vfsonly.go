package lint

import (
	"go/ast"
	"go/types"
)

// VFSOnly enforces the DESIGN.md §8 crash-safety boundary: production
// packages of the durability stack perform file I/O only through
// internal/vfs, never by calling package os directly or by holding *os.File
// handles. The fault-injection harness (vfs.CrashFS) can only tear writes it
// sees; an os.Create that bypasses the FS abstraction is invisible to it,
// making every crash-recovery guarantee about that file untested and
// unenforced.
//
// Scope: packages internal/wal, internal/storage, internal/pagestore and
// colorful. internal/vfs itself (the one place allowed to touch os) is
// exempt, and test files are never analyzed.
var VFSOnly = &Analyzer{
	Name: "vfsonly",
	Doc:  "production file I/O must go through internal/vfs, not package os",
	Run:  runVFSOnly,
}

// osFileOps are the package-os filesystem entry points the durability stack
// must not call directly. Pure process/environment helpers (os.Getenv,
// os.Exit) are not file I/O and stay allowed.
var osFileOps = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "ReadDir": true, "Mkdir": true, "MkdirAll": true,
	"MkdirTemp": true, "Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Chtimes": true, "Link": true, "Symlink": true,
	"NewFile": true, "Pipe": true,
}

func runVFSOnly(pass *Pass) error {
	scoped := pass.Pkg.Name() == "colorful" ||
		pathHasSuffix(pass.Path, "internal/wal") ||
		pathHasSuffix(pass.Path, "internal/storage") ||
		pathHasSuffix(pass.Path, "internal/pagestore")
	if !scoped || pathHasSuffix(pass.Path, "internal/vfs") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			// Direct package-os filesystem calls.
			if isPkgObj(obj, "os") && osFileOps[obj.Name()] {
				pass.Reportf(call.Pos(),
					"direct call to os.%s in a durability-critical package; all file I/O must go through internal/vfs so CrashFS fault injection covers it",
					obj.Name())
				return true
			}
			// Method calls on a raw *os.File handle.
			if s := pass.Info.Selections[sel]; s != nil && isOSFile(s.Recv()) {
				pass.Reportf(call.Pos(),
					"method call on *os.File in a durability-critical package; hold a vfs.File so CrashFS fault injection covers it")
			}
			return true
		})
	}
	return nil
}

// isPkgObj reports whether obj belongs to the package with the given path.
func isPkgObj(obj types.Object, pkgPath string) bool {
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isOSFile reports whether t is os.File or *os.File.
func isOSFile(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
