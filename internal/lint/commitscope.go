package lint

import (
	"go/ast"
	"sort"
)

// CommitScope enforces the durability contract of DESIGN.md §8: in package
// colorful, every mutation of the store happens inside a durable commit
// scope — beginCommit (or Database.Mark, its primitive) opens it, and
// commitChanges must run on every path before the function returns, exactly
// once. A mutator that returns between the two leaves acknowledged in-memory
// state that was never written ahead to the WAL: the next crash silently
// loses it, which is precisely the failure class the crashtest harness
// exists to rule out. The analyzer also flags direct core-mutator calls
// (d.Database.AddElement and friends) in functions with no commit scope at
// all.
//
// The check is a small abstract interpretation over each function body with
// three states — before the scope, inside it, after it — joined across
// branches; loops are iterated to a fixed point. Function literals are
// ignored (a closure body does not run on the enclosing function's path),
// and beginCommit/commitChanges themselves are exempt.
var CommitScope = &Analyzer{
	Name: "commitscope",
	Doc:  "colorful.DB mutations are bracketed by beginCommit/commitChanges on every path",
	Run:  runCommitScope,
}

// coreMutators are the embedded core.Database methods that mutate the store
// and therefore must be called inside a commit scope.
var coreMutators = map[string]bool{
	"AddElement": true, "AddElementText": true, "Adopt": true,
	"SetText": true, "CopySubtree": true, "AddDatabaseColor": true,
	"SetAttribute": true, "Rename": true, "RemoveAttribute": true,
	"AppendText": true, "AddColor": true, "RemoveColor": true,
	"Append": true, "InsertBefore": true, "Detach": true,
	"Delete": true, "DeleteSubtree": true,
}

// commitScopeExempt names the scope machinery itself.
var commitScopeExempt = map[string]bool{
	"beginCommit": true, "commitChanges": true, "Mark": true,
}

// Abstract states, as a bitmask so branch joins are unions.
type scopeState uint8

const (
	sBefore scopeState = 1 << iota // no scope opened yet
	sOpen                          // inside beginCommit..commitChanges
	sDone                          // scope committed
	sNone   scopeState = 0         // unreachable (terminated path)
)

func runCommitScope(pass *Pass) error {
	if pass.Pkg.Name() != "colorful" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || commitScopeExempt[fd.Name.Name] {
				continue
			}
			checkCommitScope(pass, fd)
		}
	}
	return nil
}

func checkCommitScope(pass *Pass, fd *ast.FuncDecl) {
	begins, commits, mutators := commitScopeCalls(fd.Body)
	if len(begins) == 0 && len(commits) == 0 {
		for _, m := range mutators {
			pass.Reportf(m.Pos(),
				"core mutator %s called outside a durable commit scope; bracket it with beginCommit/commitChanges or the mutation will not survive a crash",
				calleeName(m))
		}
		return
	}
	fl := &scopeFlow{pass: pass}
	out := fl.stmt(fd.Body, sBefore)
	if out&sOpen != 0 {
		pass.Reportf(fd.Body.Rbrace,
			"%s can exit with an open commit scope; commitChanges must run on every path after beginCommit",
			fd.Name.Name)
	}
}

// commitScopeCalls collects the function's begin, commit and core-mutator
// call sites, skipping function literals.
func commitScopeCalls(body *ast.BlockStmt) (begins, commits, mutators []*ast.CallExpr) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch name := calleeName(call); {
		case name == "beginCommit" || name == "Mark":
			begins = append(begins, call)
		case name == "commitChanges":
			commits = append(commits, call)
		case coreMutators[name] && isDatabaseSelector(call):
			mutators = append(mutators, call)
		}
		return true
	})
	return
}

// isDatabaseSelector reports whether the call is spelled x.Database.M(...) —
// a direct core-database mutator call, as opposed to the locked DB wrapper
// of the same name.
func isDatabaseSelector(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	return ok && inner.Sel.Name == "Database"
}

// scopeFlow evaluates the begin/commit state machine over a function body.
type scopeFlow struct {
	pass *Pass
	// beginErrVar is the error variable of the most recent
	// `m, err := d.beginCommit()` assignment. beginCommit refuses degraded,
	// failed and closed databases before anything mutates, so the
	// `if err != nil { return ... }` guard straight after it exits with NO
	// scope open — the then-branch is analyzed in the before-scope state.
	// Consumed by the first matching guard.
	beginErrVar string
}

// stmt returns the set of states flowing out of s when entered with in.
func (fl *scopeFlow) stmt(s ast.Stmt, in scopeState) scopeState {
	if s == nil || in == sNone {
		return in
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.List {
			in = fl.stmt(st, in)
		}
		return in
	case *ast.IfStmt:
		in = fl.stmt(x.Init, in)
		in = fl.exprs(in, x.Cond)
		thenIn := in
		if fl.isBeginErrGuard(x.Cond) {
			// beginCommit failed: the scope never opened on this branch.
			thenIn = in&^sOpen | sBefore
			fl.beginErrVar = ""
		}
		thenOut := fl.stmt(x.Body, thenIn)
		elseOut := in
		if x.Else != nil {
			elseOut = fl.stmt(x.Else, in)
		}
		return thenOut | elseOut
	case *ast.ForStmt:
		in = fl.stmt(x.Init, in)
		in = fl.exprs(in, x.Cond)
		return fl.loop(in, func(s scopeState) scopeState {
			s = fl.stmt(x.Body, s)
			return fl.stmt(x.Post, s)
		})
	case *ast.RangeStmt:
		in = fl.exprs(in, x.X)
		return fl.loop(in, func(s scopeState) scopeState { return fl.stmt(x.Body, s) })
	case *ast.SwitchStmt:
		in = fl.stmt(x.Init, in)
		in = fl.exprs(in, x.Tag)
		return fl.cases(in, x.Body)
	case *ast.TypeSwitchStmt:
		in = fl.stmt(x.Init, in)
		in = fl.stmt(x.Assign, in)
		return fl.cases(in, x.Body)
	case *ast.SelectStmt:
		return fl.cases(in, x.Body)
	case *ast.LabeledStmt:
		return fl.stmt(x.Stmt, in)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			in = fl.exprs(in, r)
		}
		if in&sOpen != 0 {
			fl.pass.Reportf(x.Pos(),
				"return inside an open commit scope skips commitChanges; the mutation would not survive a crash")
		}
		return sNone
	case *ast.BranchStmt:
		// break/continue/goto: approximate as falling through with the same
		// state — the loop fixed point absorbs the imprecision.
		return in
	case *ast.ExprStmt:
		if isTerminalCall(x.X) {
			fl.exprs(in, x.X)
			return sNone
		}
		return fl.exprs(in, x.X)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			in = fl.exprs(in, e)
		}
		for _, e := range x.Lhs {
			in = fl.exprs(in, e)
		}
		fl.noteBeginAssign(x)
		return in
	case *ast.DeferStmt:
		// A deferred commitChanges guards every later exit; approximating it
		// as an immediate transition keeps the machine simple and sound for
		// the paths that follow the defer.
		return fl.exprs(in, x.Call)
	case *ast.GoStmt:
		return fl.exprs(in, x.Call)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		return fl.scanAll(in, s)
	default:
		return fl.scanAll(in, s)
	}
}

// loop runs body to a fixed point over the three-state lattice, starting
// from in (zero iterations included).
func (fl *scopeFlow) loop(in scopeState, body func(scopeState) scopeState) scopeState {
	out := in
	for i := 0; i < 3; i++ {
		next := out | body(out)
		if next == out {
			break
		}
		out = next
	}
	return out
}

// cases joins the outcomes of a switch/select body's clauses; a missing
// default keeps the fall-past path.
func (fl *scopeFlow) cases(in scopeState, body *ast.BlockStmt) scopeState {
	out := sNone
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			s := in
			for _, e := range c.List {
				s = fl.exprs(s, e)
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
			in = s
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		s := in
		for _, st := range stmts {
			s = fl.stmt(st, s)
		}
		out |= s
	}
	if !hasDefault {
		out |= in
	}
	return out
}

// scanAll applies call transitions for every call under n, in source order.
func (fl *scopeFlow) scanAll(in scopeState, n ast.Node) scopeState {
	var calls []*ast.CallExpr
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := m.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].Pos() < calls[j].Pos() })
	for _, c := range calls {
		in = fl.transition(in, c)
	}
	return in
}

func (fl *scopeFlow) exprs(in scopeState, e ast.Expr) scopeState {
	if e == nil {
		return in
	}
	return fl.scanAll(in, e)
}

// transition applies one call's effect on the state set, reporting misuse.
func (fl *scopeFlow) transition(in scopeState, call *ast.CallExpr) scopeState {
	switch name := calleeName(call); {
	case name == "beginCommit" || name == "Mark":
		if in&(sOpen|sDone) != 0 {
			fl.pass.Reportf(call.Pos(),
				"beginCommit opens a second commit scope in the same function; a mutator commits exactly once")
		}
		return sOpen
	case name == "commitChanges":
		if in&sOpen == 0 {
			if in&sDone != 0 {
				fl.pass.Reportf(call.Pos(), "commitChanges called twice on the same path")
			} else {
				fl.pass.Reportf(call.Pos(), "commitChanges without a preceding beginCommit")
			}
		}
		return sDone
	}
	return in
}

// noteBeginAssign records the error variable of a two-value beginCommit
// assignment (`m, err := d.beginCommit()`); any other assignment to that
// variable invalidates the note, so only the immediate refusal guard is
// recognized.
func (fl *scopeFlow) noteBeginAssign(x *ast.AssignStmt) {
	if len(x.Rhs) == 1 && len(x.Lhs) == 2 {
		if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok && calleeName(call) == "beginCommit" {
			if id, ok := x.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
				fl.beginErrVar = id.Name
				return
			}
		}
	}
	if fl.beginErrVar == "" {
		return
	}
	for _, e := range x.Lhs {
		if id, ok := e.(*ast.Ident); ok && id.Name == fl.beginErrVar {
			fl.beginErrVar = ""
			return
		}
	}
}

// isBeginErrGuard matches `<beginErrVar> != nil`.
func (fl *scopeFlow) isBeginErrGuard(cond ast.Expr) bool {
	if fl.beginErrVar == "" {
		return false
	}
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op.String() != "!=" {
		return false
	}
	x, ok := ast.Unparen(b.X).(*ast.Ident)
	if !ok || x.Name != fl.beginErrVar {
		return false
	}
	y, ok := ast.Unparen(b.Y).(*ast.Ident)
	return ok && y.Name == "nil"
}

// isTerminalCall recognizes statements that end the path: panic(...) and
// os.Exit(...).
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}
