// Package colorful mirrors the durable commit-scope protocol the analyzer
// guards: beginCommit (or Database.Mark) opens a scope, commitChanges closes
// it, and the embedded Database's mutators may only run in between.
package colorful

type Database struct{}

func (d *Database) AddElement(parent int, tag string) int { return 0 }
func (d *Database) Delete(n int)                          {}
func (d *Database) Mark()                                 {}

type DB struct {
	Database *Database
}

type mark struct{}

func (d *DB) beginCommit() (mark, error) { return mark{}, nil }
func (d *DB) commitChanges() error       { return nil }
func (d *DB) fallible() error            { return nil }

// Bracketed on every path: conforming.
func (d *DB) AddElement(parent int, tag string) (int, error) {
	d.beginCommit()
	id := d.Database.AddElement(parent, tag)
	return id, d.commitChanges()
}

// Mark is beginCommit's primitive and opens the scope the same way.
func (d *DB) viaMark(parent int) error {
	d.Database.Mark()
	d.Database.AddElement(parent, "x")
	return d.commitChanges()
}

// An early return between begin and commit loses the mutation on crash.
func (d *DB) addTwo(parent int) error {
	d.beginCommit()
	a := d.Database.AddElement(parent, "a")
	if a < 0 {
		return nil // want "return inside an open commit scope"
	}
	d.Database.AddElement(parent, "b")
	return d.commitChanges()
}

// beginCommit refuses a degraded or closed database before anything
// mutates, so the error guard straight after it exits with no scope open:
// conforming.
func (d *DB) guarded(parent int) (int, error) {
	m, err := d.beginCommit()
	if err != nil {
		return 0, err
	}
	_ = m
	id := d.Database.AddElement(parent, "x")
	return id, d.commitChanges()
}

// Once the error variable is reassigned, `err != nil` is no longer the
// refusal guard; returning inside it leaks the open scope.
func (d *DB) reassigned(parent int) error {
	_, err := d.beginCommit()
	err = d.fallible()
	if err != nil {
		return err // want "return inside an open commit scope"
	}
	d.Database.AddElement(parent, "x")
	return d.commitChanges()
}

// A second beginCommit in the same function.
func (d *DB) double(parent int) error {
	d.beginCommit()
	d.Database.AddElement(parent, "a")
	d.beginCommit() // want "second commit scope"
	return d.commitChanges()
}

// commitChanges with no scope open.
func (d *DB) stray() {
	_ = d.commitChanges() // want "without a preceding beginCommit"
}

// Committing twice on one path.
func (d *DB) twice() error {
	d.beginCommit()
	if err := d.commitChanges(); err != nil {
		return err
	}
	return d.commitChanges() // want "called twice on the same path"
}

// Falling off the end with the scope still open.
func (d *DB) leak(parent int) {
	d.beginCommit()
	d.Database.AddElement(parent, "x")
} // want "can exit with an open commit scope"

// Mutating with no scope at all.
func (d *DB) naked(parent int) {
	d.Database.AddElement(parent, "x") // want "outside a durable commit scope"
	d.Database.Delete(parent)          // want "outside a durable commit scope"
}

// A loop wholly inside the scope is fine.
func (d *DB) bulk(parents []int) error {
	d.beginCommit()
	for _, p := range parents {
		d.Database.AddElement(p, "x")
	}
	return d.commitChanges()
}

// Opening the scope inside a loop re-begins on the second iteration.
func (d *DB) reopen(parents []int) error {
	for _, p := range parents {
		d.beginCommit() // want "second commit scope"
		d.Database.AddElement(p, "x")
	}
	return d.commitChanges()
}
