module commitscopefix

go 1.22
