module healthtransitionfix

go 1.22
