// Package serving exercises the healthtransition analyzer: the atomic
// health field has one writer (transitionHealth), and call sites must name
// legal state-machine edges with Health constants.
package serving

import "sync/atomic"

type Health int32

const (
	Healthy Health = iota
	DegradedReadOnly
	Failed
)

type DB struct {
	health atomic.Int32
}

// transitionHealth is the choke point: the only function allowed to write
// the health field.
func (d *DB) transitionHealth(from, to Health) bool {
	return d.health.CompareAndSwap(int32(from), int32(to))
}

// Legal edges of the serving state machine.
func (d *DB) degrade() { d.transitionHealth(Healthy, DegradedReadOnly) }
func (d *DB) heal()    { d.transitionHealth(DegradedReadOnly, Healthy) }
func (d *DB) fail() {
	if !d.transitionHealth(Healthy, Failed) {
		d.transitionHealth(DegradedReadOnly, Failed)
	}
}

// Violation: a stray write bypassing the choke point.
func (d *DB) sneakyWrite() {
	d.health.Store(int32(Failed)) // want "health state written outside transitionHealth"
}

// Violation: Failed is terminal — no edge leaves it.
func (d *DB) resurrect() {
	d.transitionHealth(Failed, Healthy) // want "illegal health transition Failed -> Healthy"
}

// Violation: endpoints must be named constants the analyzer can check, not
// computed values.
func (d *DB) dynamic(next Health) {
	d.transitionHealth(next, Failed) // want "endpoints must be named Health constants"
}

// Legal: reading the field is unrestricted.
func (d *DB) state() Health { return Health(d.health.Load()) }
