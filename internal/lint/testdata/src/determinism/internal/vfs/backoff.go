// Package vfs sits on the internal/vfs suffix: the fault-injection layer is
// determinism-scoped because retry jitter and fault selection must replay
// from a seed. Sleeping is fine (it consumes time, it doesn't read it);
// reading the wall clock or the global generator is not.
package vfs

import (
	"math/rand"
	"time"
)

func jitterBad(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1)) // want "global rand.Int63n"
}

func jitterGood(seed int64, d time.Duration) time.Duration {
	// The sanctioned form: jitter from an explicitly seeded local generator.
	rng := rand.New(rand.NewSource(seed))
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

func budgetBad(start time.Time, budget time.Duration) bool {
	return time.Since(start) > budget // want "time.Since"
}

func budgetGood(slept, budget time.Duration) bool {
	// Budgets are accounted by summing the delays handed out, not by
	// reading the clock.
	return slept > budget
}

func backoffSleep(d time.Duration) {
	// Sleeping is allowed: it produces no value the schedule can depend on.
	time.Sleep(d)
}
