// Package obs is a fixture stub of the repository's metrics clock.
package obs

// Stopwatch mirrors the real obs.Stopwatch shape.
type Stopwatch struct{ start int64 }

func Nanos() int64 { return 0 }

func Start() Stopwatch { return Stopwatch{start: Nanos()} }

func (s Stopwatch) ElapsedNanos() int64 { return Nanos() - s.start }
