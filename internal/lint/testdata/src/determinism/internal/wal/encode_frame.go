package wal

import "determinismfix/internal/obs"

// encodeFrame lives in an encode-prefixed file, so the metrics clock is
// within reach of the byte stream and stays forbidden.
func encodeFrame(buf []byte) []byte {
	sw := obs.Start() // want "obs.Start in a WAL encoder file"
	_ = sw.ElapsedNanos()
	return buf
}
