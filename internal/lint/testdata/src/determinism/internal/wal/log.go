package wal

import "determinismfix/internal/obs"

// flushTiming is the sanctioned use of the metrics clock in WAL code: the
// reading feeds a histogram and log.go is not an encoder file, so no
// diagnostic is expected.
func flushTiming() int64 {
	sw := obs.Start()
	return sw.ElapsedNanos()
}
