// Package wal sits on a scoped import-path suffix (internal/wal) and
// exercises the three nondeterminism sources: wall clock, global randomness,
// and map-ordered output.
package wal

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func jitter() int {
	return rand.Intn(100) // want "global rand.Intn"
}

func seeded(seed int64) int {
	// The sanctioned form: an explicitly seeded local generator.
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}

func encodeBad(m map[uint32][]byte, out *[]byte) {
	for k, v := range m { // want "map iteration feeds ordered output"
		_ = k
		*out = append(*out, v...)
	}
}

func encodeGood(m map[uint32][]byte, out *[]byte) {
	// Collect, sort, iterate: the enclosing sort call sanctions both loops.
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		*out = append(*out, m[k]...)
	}
}

func tally(m map[string]int) int {
	// Aggregation is order-insensitive and allowed.
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
