// Package crashtest exercises the obs-timing rule: even the sanctioned
// metrics clock is wall-clock input here, so it stays forbidden.
package crashtest

import "determinismfix/internal/obs"

func stampStep() int64 {
	return obs.Nanos() // want "obs.Nanos in the crashtest package"
}

func timeStep() int64 {
	sw := obs.Start() // want "obs.Start in the crashtest package"
	return sw.ElapsedNanos()
}
