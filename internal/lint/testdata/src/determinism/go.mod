module determinismfix

go 1.22
