// Package clock is outside the determinism scope; wall time is fine here.
package clock

import "time"

func Now() int64 { return time.Now().UnixNano() }
