module ctxpollfix

go 1.22
