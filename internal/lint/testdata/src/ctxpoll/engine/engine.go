// Package engine mirrors the operator protocol the ctxpoll analyzer guards:
// a NextBatch implementation that loops must reach the cancellation check —
// by pulling child rows through a cursor's pull() or the executor's
// pullBatch(), by calling ctx.poll(), or by consulting ctx.Cancel directly.
package engine

type Ctx struct {
	Cancel chan struct{}
	steps  int
}

func (c *Ctx) poll() error { return nil }

type Row []int

type Batch struct {
	rows []Row
}

func (b *Batch) Reset()          { b.rows = b.rows[:0] }
func (b *Batch) Len() int        { return len(b.rows) }
func (b *Batch) Full() bool      { return len(b.rows) >= 4 }
func (b *Batch) AppendRow(r Row) { b.rows = append(b.rows, r) }
func (b *Batch) appendRows(rs []Row) int {
	n := 0
	for _, r := range rs {
		if b.Full() {
			break
		}
		b.rows = append(b.rows, r)
		n++
	}
	return n
}

type Op interface {
	NextBatch(ctx *Ctx, out *Batch) error
}

func pullBatch(ctx *Ctx, o Op, out *Batch) error { return o.NextBatch(ctx, out) }

type batchCursor struct {
	child Op
	buf   Batch
	pos   int
}

func (c *batchCursor) pull(ctx *Ctx) (Row, bool, error) {
	for c.pos >= c.buf.Len() {
		if err := pullBatch(ctx, c.child, &c.buf); err != nil {
			return nil, false, err
		}
		c.pos = 0
		if c.buf.Len() == 0 {
			return nil, false, nil
		}
	}
	r := c.buf.rows[c.pos]
	c.pos++
	return r, true, nil
}

// Scan fills its batch from its own iteration state with no touchpoint:
// flagged.
type Scan struct {
	refs []int
	pos  int
}

func (o *Scan) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for o.pos < len(o.refs) && !out.Full() { // want "never reaches the cancellation check"
		o.pos++
		if o.refs[o.pos-1]%2 == 0 {
			out.AppendRow(Row{o.refs[o.pos-1]})
		}
	}
	return nil
}

// Non-NextBatch methods are out of scope; their loops are not flagged.
func (o *Scan) reset() {
	for i := range o.refs {
		o.refs[i] = 0
	}
}

// PollScan polls each candidate while filling the batch: allowed.
type PollScan struct {
	refs []int
	pos  int
}

func (o *PollScan) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for o.pos < len(o.refs) && !out.Full() {
		if err := ctx.poll(); err != nil {
			return err
		}
		o.pos++
		out.AppendRow(Row{o.refs[o.pos-1]})
	}
	return nil
}

// Bulk emits a slice range per batch with no loop at all: allowed (the
// per-batch check in pullBatch bounds its work).
type Bulk struct {
	rows []Row
	pos  int
}

func (o *Bulk) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	o.pos += out.appendRows(o.rows[o.pos:])
	return nil
}

// Filter pulls child rows through a cursor: the pull is the touchpoint, the
// fill loop is sanctioned.
type Filter struct {
	in batchCursor
}

func (o *Filter) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if r[0]%2 == 0 {
			out.AppendRow(r)
		}
	}
	return nil
}

// Drain consults ctx.Cancel directly while draining a channel: allowed.
type Drain struct {
	ch chan Row
}

func (o *Drain) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		select {
		case r, ok := <-o.ch:
			if !ok {
				return nil
			}
			out.AppendRow(r)
		case <-ctx.Cancel:
			return nil
		}
	}
	return nil
}

// A poll inside a closure does not run on this loop's iterations: still
// flagged.
type LazyScan struct {
	pos int
}

func (o *LazyScan) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	check := func() error { return ctx.poll() }
	_ = check
	for o.pos < 10 { // want "never reaches the cancellation check"
		o.pos++
	}
	return nil
}

// Legacy row-at-a-time Next methods remain in scope during transitions.
type OldScan struct {
	pos int
}

func (o *OldScan) Next(ctx *Ctx) (Row, bool, error) {
	for o.pos < 10 { // want "never reaches the cancellation check"
		o.pos++
	}
	return nil, false, nil
}
