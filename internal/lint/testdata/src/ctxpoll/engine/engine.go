// Package engine mirrors the operator protocol the ctxpoll analyzer guards:
// a Next implementation that loops must reach the cancellation check — by
// pulling child rows through pull(), by calling ctx.poll(), or by consulting
// ctx.Cancel directly.
package engine

type Ctx struct {
	Cancel chan struct{}
	pulls  int
}

func (c *Ctx) poll() error { return nil }

type Row []int

type Op interface {
	Next(ctx *Ctx) (Row, bool, error)
}

func pull(ctx *Ctx, o Op) (Row, bool, error) { return o.Next(ctx) }

// Scan loops over its own iteration state with no touchpoint: flagged.
type Scan struct {
	refs []int
	pos  int
}

func (o *Scan) Next(ctx *Ctx) (Row, bool, error) {
	for o.pos < len(o.refs) { // want "never reaches the cancellation check"
		o.pos++
		if o.refs[o.pos-1]%2 == 0 {
			return Row{o.refs[o.pos-1]}, true, nil
		}
	}
	return nil, false, nil
}

// Non-Next methods are out of scope; their loops are not flagged.
func (o *Scan) reset() {
	for i := range o.refs {
		o.refs[i] = 0
	}
}

// PollScan polls each iteration: allowed.
type PollScan struct {
	refs []int
	pos  int
}

func (o *PollScan) Next(ctx *Ctx) (Row, bool, error) {
	for o.pos < len(o.refs) {
		if err := ctx.poll(); err != nil {
			return nil, false, err
		}
		o.pos++
	}
	return nil, false, nil
}

// Project pulls a child row before a bounded per-row copy loop: the pull is
// the touchpoint, the inner loop is sanctioned.
type Project struct {
	Input Op
	Cols  []int
}

func (o *Project) Next(ctx *Ctx) (Row, bool, error) {
	r, ok, err := pull(ctx, o.Input)
	if err != nil || !ok {
		return nil, false, err
	}
	nr := make(Row, len(o.Cols))
	for j, c := range o.Cols {
		nr[j] = r[c]
	}
	return nr, true, nil
}

// Drain consults ctx.Cancel directly: allowed.
type Drain struct {
	ch chan Row
}

func (o *Drain) Next(ctx *Ctx) (Row, bool, error) {
	for {
		select {
		case r, ok := <-o.ch:
			if !ok {
				return nil, false, nil
			}
			return r, true, nil
		case <-ctx.Cancel:
			return nil, false, nil
		}
	}
}

// A poll inside a closure does not run on this loop's iterations: still
// flagged.
type LazyScan struct {
	pos int
}

func (o *LazyScan) Next(ctx *Ctx) (Row, bool, error) {
	check := func() error { return ctx.poll() }
	_ = check
	for o.pos < 10 { // want "never reaches the cancellation check"
		o.pos++
	}
	return nil, false, nil
}
