module goroutineleakfix

go 1.22
