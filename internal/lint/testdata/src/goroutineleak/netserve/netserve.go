// Package netserve exercises the goroutineleak analyzer over the
// network-serving shape: an accept loop watching a stop channel,
// WaitGroup-tracked per-connection handlers, and the variants of each that
// leak.
package netserve

import "sync"

type conn struct{}

func (c *conn) readFrame() bool { return false }
func (c *conn) respond()        {}

type listener struct{}

func (l *listener) accept() (*conn, bool) { return &conn{}, true }
func (l *listener) close()                {}

// Server mirrors the mctserved lifecycle: the accept loop watches stopCh,
// per-connection handlers are WaitGroup-tracked, and Shutdown closes the
// channel and waits for the handlers.
type Server struct {
	stopCh chan struct{}
	wg     sync.WaitGroup
}

func NewServer() *Server { return &Server{stopCh: make(chan struct{})} }

// serveLoop accepts until shutdown; its select receives from the closed
// stop channel, which is the loop's termination evidence.
func (s *Server) serveLoop(l *listener) {
	for {
		select {
		case <-s.stopCh:
			s.wg.Wait()
			return
		default:
		}
		c, ok := l.accept()
		if !ok {
			return
		}
		s.wg.Add(1)
		go s.handle(c)
	}
}

// handle drains one connection; it is WaitGroup-tracked by serveLoop and
// its read loop is bounded by the connection closing.
func (s *Server) handle(c *conn) {
	defer s.wg.Done()
	for c.readFrame() {
		c.respond()
	}
}

// Legal: the spawn resolves to serveLoop's body, whose stop-channel receive
// is found transitively.
func (s *Server) Start(l *listener) {
	go s.serveLoop(l)
}

func (s *Server) Shutdown() {
	close(s.stopCh)
	s.wg.Wait()
}

// awaitStop blocks until shutdown; callers inherit its evidence.
func (s *Server) awaitStop() {
	<-s.stopCh
}

// Legal: the drain watcher's evidence is one call deep, in awaitStop.
func (s *Server) drainWatcher(l *listener) {
	go func() {
		s.awaitStop()
		l.close()
	}()
}

// Violation: a per-connection goroutine with no tracking and no stop signal
// spins on the connection forever, even after shutdown.
func (s *Server) handleUntracked(c *conn) {
	go func() { // want "goroutine may never terminate"
		for {
			c.respond()
		}
	}()
}

// Violation: WaitGroup tracking does not excuse an accept loop that never
// checks the stop channel — Shutdown's Wait would deadlock on it.
func (s *Server) acceptForever(l *listener) {
	s.wg.Add(1)
	go func() { // want "goroutine may never terminate"
		defer s.wg.Done()
		for {
			c, _ := l.accept()
			c.respond()
		}
	}()
}

// Violation: a connection callback through a function value has no
// resolvable body to verify.
func (s *Server) onConnUnchecked(fn func()) {
	go fn() // want "cannot verify termination"
}

// Legal: the same opaque spawn with the serving contract cited.
func (s *Server) onConn(fn func()) {
	//mctlint:ignore goroutineleak the handler contract requires fn to return when its connection closes
	go fn()
}
