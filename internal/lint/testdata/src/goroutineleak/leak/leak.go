// Package leak exercises the goroutineleak analyzer: every go statement
// needs visible termination evidence (ctx.Done, a closed stop channel, or
// WaitGroup tracking of a body that can actually return).
package leak

import (
	"context"
	"sync"
)

func work() {}

// Violation: an unbounded loop with no cancellation signal and no tracking.
func spinsForever() {
	go func() { // want "goroutine may never terminate"
		for {
			work()
		}
	}()
}

// Violation: a call through a function value has no resolvable body, so
// termination cannot be verified.
func spawnsOpaque(fn func()) {
	go fn() // want "cannot verify termination"
}

// Legal: the same opaque spawn, with the external contract cited.
func spawnsOpaqueSuppressed(fn func()) {
	//mctlint:ignore goroutineleak the callback contract requires fn to return when its input closes
	go fn()
}

// Legal: the loop selects on ctx.Done and returns.
func watchesContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// Worker holds a neutrally-named channel; the analyzer accepts it as a stop
// channel because Close closes it somewhere in the program, not because of
// its name.
type Worker struct {
	ch chan struct{}
}

func (w *Worker) run() {
	for {
		select {
		case <-w.ch:
			return
		default:
			work()
		}
	}
}

// Legal: go w.run() resolves to a body that receives from the closed channel.
func (w *Worker) Start() {
	go w.run()
}

func (w *Worker) Close() {
	close(w.ch)
}

// Legal: WaitGroup-tracked goroutine with a bounded loop.
func tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			work()
		}
	}()
}

// Violation: WaitGroup tracking does not excuse an inescapable for {} —
// the goroutine never returns, so Wait deadlocks instead of leaking.
func trackedButStuck(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want "goroutine may never terminate"
		defer wg.Done()
		for {
			work()
		}
	}()
}
