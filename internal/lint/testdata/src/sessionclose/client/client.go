// Package client mirrors the network-client surface the analyzer guards:
// Pool.Get checkouts hold a capacity slot until Release (or Close), and
// Dial/Open/OpenOptions/Prepare results hold sockets or server handles
// until Close.
package client

import "errors"

type Options struct{ PoolSize int }

type Pool struct{}

func (p *Pool) Get() (*Conn, error) { return &Conn{}, nil }

type Conn struct{}

func (c *Conn) Query(src string) error { return nil }
func (c *Conn) Ping() error            { return nil }
func (c *Conn) Release()               {}
func (c *Conn) Close() error           { return nil }

func Dial(addr string, opt Options) (*Conn, error) {
	if addr == "" {
		return nil, errors.New("empty address")
	}
	return &Conn{}, nil
}

type DB struct{}

// Open's obligation escapes by being returned: conforming.
func Open(addr string) (*DB, error) { return OpenOptions(addr, Options{}) }

func OpenOptions(addr string, opt Options) (*DB, error) {
	if addr == "" {
		return nil, errors.New("empty address")
	}
	return &DB{}, nil
}

func (db *DB) Query(src string) error { return nil }
func (db *DB) Close() error           { return nil }

func (db *DB) Prepare(src string) (*Stmt, error) {
	if src == "" {
		return nil, errors.New("empty query")
	}
	return &Stmt{}, nil
}

type Stmt struct{}

func (st *Stmt) Query() error { return nil }
func (st *Stmt) Close() error { return nil }
