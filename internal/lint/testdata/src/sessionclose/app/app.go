// Package app exercises the sessionclose analyzer from a client package:
// conforming lifecycles, outright discards, and paths that leak an open
// Session or Stmt.
package app

import "sessionclosefix/colorful"

// Deferred Close covers every exit: conforming.
func deferred(db *colorful.DB) error {
	s := db.Session()
	defer s.Close()
	return s.Query("q")
}

// The idiomatic prepared-statement shape: the err-nil guard is the failure
// path (nothing to close there), the success path defers Close.
func prepared(db *colorful.DB, q string) error {
	s := db.Session()
	defer s.Close()
	st, err := s.Prepare(q)
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Run()
}

// Explicit Close on every branch: conforming.
func branches(db *colorful.DB, fast bool) error {
	s := db.Session()
	if fast {
		err := s.Query("fast")
		s.Close()
		return err
	}
	err := s.Query("slow")
	s.Close()
	return err
}

// Ownership transfers: returned, passed on, stored, captured.
func handsOff(db *colorful.DB, sink func(*colorful.Session), cleanup func(func())) *colorful.Session {
	a := db.Session()
	sink(a) // the callee owns it now
	b := db.Session()
	cleanup(func() { b.Close() }) // captured by the closure that closes it
	return db.Session()           // the caller owns it now
}

// An unbound call can never be closed.
func discarded(db *colorful.DB) {
	db.Session() // want "result of Session is discarded"
}

// Blank assignment: same.
func blanked(db *colorful.DB) {
	_ = db.Session() // want "assigned to the blank identifier"
}

// A method chained off the fresh value leaves nothing to close.
func chained(db *colorful.DB) error {
	return db.Session().Query("q") // want "not bound to a variable"
}

// No Close on any path: flagged at the end of the function.
func leaked(db *colorful.DB) error {
	s := db.Session()
	return s.Query("q") // want "return leaks s while it is still open"
}

// Closed on one branch, leaked on the other.
func halfClosed(db *colorful.DB, fast bool) error {
	s := db.Session()
	if fast {
		err := s.Query("fast")
		s.Close()
		return err
	}
	return s.Query("slow") // want "return leaks s while it is still open"
}

// An early return between Session and Close skips the Close.
func earlyReturn(db *colorful.DB, skip bool) error {
	s := db.Session()
	if skip {
		return nil // want "return leaks s while it is still open"
	}
	err := s.Query("q")
	s.Close()
	return err
}

// Reassigning in a loop abandons the previous iteration's session.
func loopReassign(db *colorful.DB, n int) {
	var s *colorful.Session
	for i := 0; i < n; i++ {
		s = db.Session() // want "reassigned while still open"
		_ = s.Query("q")
	}
	if s != nil {
		s.Close()
	}
}

// Opening per iteration and closing per iteration is fine.
func loopScoped(db *colorful.DB, n int) {
	for i := 0; i < n; i++ {
		s := db.Session()
		_ = s.Query("q")
		s.Close()
	}
}

// A session opened inside a goroutine body must close on that body's paths.
func inGoroutine(db *colorful.DB, done chan error) {
	go func() {
		s := db.Session()
		done <- s.Query("q")
	}() // want "s can reach the end of the function still open"
	go func() {
		s := db.Session()
		defer s.Close()
		done <- s.Query("q")
	}()
}

// A prepared statement that never reaches Close, even though the session is
// handled: the Stmt leak is flagged at the end of the body.
func stmtLeak(db *colorful.DB, q string) error {
	s := db.Session()
	defer s.Close()
	st, err := s.Prepare(q)
	if err != nil {
		return err
	}
	return st.Run() // want "return leaks st while it is still open"
}

// err == nil inverts which branch owns the statement.
func invertedGuard(db *colorful.DB, q string) error {
	s := db.Session()
	defer s.Close()
	if st, err := s.Prepare(q); err == nil {
		defer st.Close()
		return st.Run()
	}
	return nil
}
