// Network-client cases for the sessionclose analyzer: pool checkouts must
// reach Release or Close, dialed connections and opened DBs must reach
// Close, and prepared statements over the pool carry the same obligation as
// session statements.
package app

import "sessionclosefix/client"

// Release discharges a checkout exactly like Close: conforming.
func released(p *client.Pool) error {
	c, err := p.Get()
	if err != nil {
		return err
	}
	defer c.Release()
	return c.Query("q")
}

// Destroying a broken connection with Close also discharges it.
func destroyed(p *client.Pool) error {
	c, err := p.Get()
	if err != nil {
		return err
	}
	err = c.Query("q")
	c.Close()
	return err
}

// A checkout that is neither Released nor Closed pins a pool slot forever.
func checkoutLeak(p *client.Pool) error {
	c, err := p.Get()
	if err != nil {
		return err
	}
	return c.Query("q") // want "return leaks c while it is still open"
}

// Released on the happy path, leaked when the health probe fails.
func halfReleased(p *client.Pool) error {
	c, err := p.Get()
	if err != nil {
		return err
	}
	if err := c.Ping(); err != nil {
		return err // want "return leaks c while it is still open"
	}
	c.Release()
	return nil
}

// An unbound Get can never return its slot.
func checkoutDiscard(p *client.Pool) {
	p.Get() // want "result of Get is discarded"
}

// Dial hands out a live socket; the err-nil guard is the failure path.
func dialed(addr string) error {
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	return c.Ping()
}

// Blank-assigning a dialed connection leaks the socket.
func dialBlanked(addr string) {
	_, _ = client.Dial(addr, client.Options{}) // want "assigned to the blank identifier"
}

// Ownership of an opened DB transfers to the caller by return: conforming.
func open(addr string) (*client.DB, error) {
	return client.Open(addr)
}

// OpenOptions closed on the probe-failure path, returned on success.
func openChecked(addr string) (*client.DB, error) {
	db, err := client.OpenOptions(addr, client.Options{PoolSize: 2})
	if err != nil {
		return nil, err
	}
	if err := db.Query("probe"); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// A pool-wide prepared statement leaks like a session statement.
func prepareLeak(db *client.DB, q string) error {
	st, err := db.Prepare(q)
	if err != nil {
		return err
	}
	return st.Query() // want "return leaks st while it is still open"
}

// The conforming shape: deferred Close after the err-nil guard.
func prepareClosed(db *client.DB, q string) error {
	st, err := db.Prepare(q)
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Query()
}
