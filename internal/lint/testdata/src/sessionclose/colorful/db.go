// Package colorful mirrors the session-kernel surface the analyzer guards:
// DB.Session and Session.Prepare/DB.Prepare hand out values that must reach
// Close — an open Session pins DB.Close's drain, an open Stmt pins its plan.
package colorful

import "errors"

type DB struct{}

func (d *DB) Session() *Session { return &Session{} }

func (d *DB) Prepare(src string) (*Stmt, error) {
	s := &Session{}
	// Ownership escapes by being returned: conforming.
	return s.Prepare(src)
}

type Session struct{}

func (s *Session) Prepare(src string) (*Stmt, error) {
	if src == "" {
		return nil, errors.New("empty query")
	}
	return &Stmt{}, nil
}

func (s *Session) Query(src string) error { return nil }
func (s *Session) Close() error           { return nil }

type Stmt struct{}

func (st *Stmt) Run() error   { return nil }
func (st *Stmt) Close() error { return nil }
