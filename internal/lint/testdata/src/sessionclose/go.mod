module sessionclosefix

go 1.22
