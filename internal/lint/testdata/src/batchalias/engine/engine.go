// Package engine mirrors the shapes the batchalias analyzer keys on: Batch
// rows and arena allocations are views into reused storage, invalidated by
// Reset/Swap/free, cursor pull/close, arena release, and the NextBatch /
// pullBatch refill helpers.
package engine

type Row []uint32

type Batch struct {
	data []uint32
	cols int
	rows int
}

func (b *Batch) Row(i int) Row {
	off := i * b.cols
	return Row(b.data[off : off+b.cols : off+b.cols])
}

func (b *Batch) Reset(cols int) { b.cols, b.rows, b.data = cols, 0, b.data[:0] }
func (b *Batch) Swap(o *Batch)  { *b, *o = *o, *b }
func (b *Batch) free()          { b.data = nil }

type batchCursor struct {
	buf *Batch
	pos int
}

func (c *batchCursor) pull() (Row, bool, error) {
	if c.pos >= c.buf.rows {
		return nil, false, nil
	}
	r := c.buf.Row(c.pos)
	c.pos++
	return r, true, nil
}

func (c *batchCursor) close() { c.buf.free() }

type arena struct {
	buf  []uint32
	used int
}

func (a *arena) alloc(n int) []uint32 {
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

func (a *arena) release() { a.used = 0 }

func NextBatch(n int, b *Batch) bool    { b.rows = n; return n > 0 }
func pullBatch(x, n int, b *Batch) bool { b.rows = n; return n > 0 }
func use(r Row)                         { _ = r }
func useSlice(s []uint32)               { _ = s }
func copyRow(r Row) Row                 { return append(Row(nil), r...) }
