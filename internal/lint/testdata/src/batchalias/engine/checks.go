package engine

// Violation: the row view outlives the Reset that recycled its batch.
func resetInvalidates(b *Batch) {
	r := b.Row(0)
	b.Reset(2)
	use(r) // want "view r used after Batch.Reset invalidated"
}

// Legal: the row was copied before the batch was recycled.
func copiedRowSurvives(b *Batch) {
	r := b.Row(0)
	cp := copyRow(r)
	b.Reset(2)
	use(cp)
}

// Legal: reassigning the variable after the refill binds a fresh view.
func rebindIsFresh(b *Batch) {
	r := b.Row(0)
	use(r)
	b.Reset(2)
	r = b.Row(0)
	use(r)
}

// Violation: Swap on one branch poisons the view on every path below the
// merge (may-analysis).
func swapPoisonsOnOnePath(b, o *Batch, cond bool) {
	r := b.Row(0)
	if cond {
		b.Swap(o)
	}
	use(r) // want "view r used after Batch.Swap invalidated"
}

// Violation: pulling the next row invalidates the previous pull's view.
func pullInvalidatesPrevious(c *batchCursor) {
	r1, ok, _ := c.pull()
	if !ok {
		return
	}
	use(r1)
	r2, _, _ := c.pull()
	use(r1) // want "view r1 used after batchCursor.pull invalidated"
	use(r2)
}

// Legal: the standard drain loop — each iteration's pull poisons the old
// view and immediately rebinds the variable to the fresh one.
func drainLoop(c *batchCursor) {
	for {
		r, ok, _ := c.pull()
		if !ok {
			return
		}
		use(r)
	}
}

// Violation: closing the cursor recycles its batch.
func closedCursor(c *batchCursor) {
	r, ok, _ := c.pull()
	if !ok {
		return
	}
	c.close()
	use(r) // want "view r used after batchCursor.close invalidated"
}

// Violation: NextBatch refills the batch in place.
func refillInvalidates(b *Batch) {
	r := b.Row(0)
	NextBatch(1, b)
	use(r) // want "view r used after NextBatch invalidated"
}

// Violation: pullBatch refills through the operator-pull helper.
func pullBatchInvalidates(b *Batch) {
	r := b.Row(0)
	pullBatch(0, 1, b)
	use(r) // want "view r used after pullBatch invalidated"
}

// Violation: arena allocations are views into the arena's reused buffer.
func releasedArena(a *arena) {
	s := a.alloc(4)
	a.release()
	useSlice(s) // want "view s used after arena.release invalidated"
}
