module batchaliasfix

go 1.22
