// Package faults mirrors the fault-tolerance error surface — transient
// storage sentinels (ErrDiskFull, ErrIO) and a health sentinel chain where
// ErrReadOnly wraps ErrDegraded — and exercises the matching rules against
// it. Chained sentinels raise the stakes: == on ErrReadOnly already fails
// today for the wrapped form, and a %v rewrap would sever errors.Is for
// every caller downstream.
package faults

import (
	"errors"
	"fmt"
)

var (
	ErrDiskFull = errors.New("disk full")
	ErrIO       = errors.New("i/o error")
	ErrDegraded = errors.New("degraded")
	// ErrReadOnly wraps ErrDegraded so callers can match either level.
	ErrReadOnly = fmt.Errorf("mutations are disabled: %w", ErrDegraded)
)

func classifyBad(err error) bool {
	if err == ErrDiskFull { // want "compared with =="
		return true
	}
	return err != ErrIO // want "compared with !="
}

func classifyGood(err error) bool {
	return errors.Is(err, ErrDiskFull) || errors.Is(err, ErrIO)
}

func degradedBad(err error) bool {
	// Also wrong in spirit: ErrReadOnly is itself a wrapping error, so ==
	// never matches a further-wrapped instance anyway.
	return err == ErrReadOnly // want "compared with =="
}

func degradedGood(err error) bool {
	// Matching the inner sentinel works through the ErrReadOnly chain.
	return errors.Is(err, ErrDegraded)
}

func rewrapBad() error {
	// Severs the ErrDegraded chain for every downstream errors.Is.
	return fmt.Errorf("commit refused: %v", ErrReadOnly) // want "use %w so the chain keeps matching"
}

func rewrapGood(op string) error {
	return fmt.Errorf("%s refused: %w", op, ErrReadOnly)
}
