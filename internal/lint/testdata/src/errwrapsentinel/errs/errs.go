// Package errs exercises the sentinel-matching rules: == against a
// package-level sentinel, type assertions to concrete error types, and
// fmt.Errorf verbs that strip the chain.
package errs

import (
	"errors"
	"fmt"
)

var ErrClosed = errors.New("closed")

type ParseError struct{ Pos int }

func (e *ParseError) Error() string { return "parse" }

// A sentinel type's own Is method is the one place == is the point.
func (e *ParseError) Is(target error) bool {
	return target == ErrClosed
}

func direct(err error) bool {
	return err == ErrClosed // want "compared with =="
}

func negated(err error) bool {
	return err != ErrClosed // want "compared with !="
}

func nilCheck(err error) bool {
	// Nil comparisons are exempt.
	return err == nil
}

func viaIs(err error) bool {
	// The sanctioned form.
	return errors.Is(err, ErrClosed)
}

func assert(err error) int {
	if pe, ok := err.(*ParseError); ok { // want "use errors.As"
		return pe.Pos
	}
	return -1
}

func viaAs(err error) int {
	var pe *ParseError
	if errors.As(err, &pe) {
		return pe.Pos
	}
	return -1
}

func wrapBad() error {
	return fmt.Errorf("load: %v", ErrClosed) // want "use %w so the chain keeps matching"
}

func wrapGood(name string) error {
	return fmt.Errorf("load %s: %w", name, ErrClosed)
}
