// Package metrics exercises the obsregister registration rules.
package metrics

import "obsregisterfix/internal/obs"

// Package-level var initializers are the sanctioned registration site.
var (
	queries  = obs.NewCounter("db_queries_total")
	inflight = obs.NewGauge("db_inflight_queries")
	latency  = obs.NewHistogram("db_query_nanos")
	custom   = obs.Default.Counter("db_custom_total")
)

// init functions are equally sanctioned.
var retries *obs.Counter

func init() {
	retries = obs.NewCounter("db_retries_total")
}

// Registration reachable from a request path is a latent panic.
func lazyRegister() *obs.Counter {
	return obs.NewCounter("db_lazy_total") // want "outside package init"
}

func lazyMethod(r *obs.Registry) *obs.Histogram {
	return r.Histogram("db_lazy_nanos") // want "outside package init"
}

// Instrument names must be subsystem_name snake_case.
var camel = obs.NewCounter("dbQueriesTotal") // want "not subsystem_name snake_case"

var bare = obs.NewGauge("queries") // want "not subsystem_name snake_case"

// A computed name defeats the static duplicate check.
func dynamic(suffix string) {
	obs.NewCounter("db_" + suffix + "_total") // want "outside package init" // want "string literal"
}

// Second registration of a name already claimed by the var block above.
var dup = obs.NewCounter("db_queries_total") // want "already registered"
