// Package obs is a fixture stub of the repository's instrument registry.
// The package itself is exempt from the obsregister analyzer: its
// constructors are the registration machinery.
package obs

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type Registry struct{}

var Default = &Registry{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

func NewCounter(name string) *Counter { return Default.Counter(name) }

func NewGauge(name string) *Gauge { return Default.Gauge(name) }

func NewHistogram(name string) *Histogram { return Default.Histogram(name) }
