module obsregisterfix

go 1.22
