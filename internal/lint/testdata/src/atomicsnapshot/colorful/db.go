// Package colorful mirrors the snapshot publication protocol: the snap
// field is read lock-free, so it must be an atomic.Pointer touched only
// through its accessors.
package colorful

import "sync/atomic"

type snapshot struct{ gen uint64 }

type DB struct {
	snap atomic.Pointer[snapshot]
}

func (d *DB) read() *snapshot {
	return d.snap.Load()
}

func (d *DB) publish(s *snapshot) {
	d.snap.Store(s)
}

func (d *DB) swapIn(s *snapshot) *snapshot {
	return d.snap.Swap(s)
}

func (d *DB) alias() *atomic.Pointer[snapshot] {
	return &d.snap // want "without an atomic accessor"
}

type racyDB struct {
	snap *snapshot // want "must have a sync/atomic type"
}

func (d *racyDB) read() *snapshot {
	return d.snap // want "without an atomic accessor"
}

func (d *racyDB) publish(s *snapshot) {
	d.snap = s // want "without an atomic accessor"
}

// A method named snap is not the field; selections distinguish them.
type other struct{}

func (other) snap() int { return 0 }

func use(o other) int { return o.snap() }
