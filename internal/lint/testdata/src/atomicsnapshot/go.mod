module atomicsnapfix

go 1.22
