// Package colorful is in vfsonly's scope by package name, wherever it lives.
package colorful

import "os"

func dump(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want "direct call to os.WriteFile"
}

func sweep(dir string) error {
	return os.RemoveAll(dir) // want "direct call to os.RemoveAll"
}
