// Package other is outside the durability stack; direct os use is fine.
package other

import "os"

func Touch(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
