module vfsonlyfix

go 1.22
