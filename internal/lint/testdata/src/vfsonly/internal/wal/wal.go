// Package wal is a fixture package whose import path ends in internal/wal,
// putting it inside vfsonly's scope.
package wal

import "os"

func create(path string) error {
	f, err := os.Create(path) // want "direct call to os.Create"
	if err != nil {
		return err
	}
	_, err = f.Write([]byte("x"))       // want "method call on \*os.File"
	if cerr := f.Close(); cerr != nil { // want "method call on \*os.File"
		return cerr
	}
	return err
}

func read(path string) ([]byte, error) {
	return os.ReadFile(path) // want "direct call to os.ReadFile"
}

func env() string {
	// Process helpers are not file I/O and stay allowed.
	return os.Getenv("HOME")
}
