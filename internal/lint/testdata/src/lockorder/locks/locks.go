// Package locks exercises the lockorder analyzer against the fixture
// DESIGN.md table. Every test case uses its own disjoint pair of mutexes so
// a deliberate ordering violation does not double as a cycle.
package locks

import "sync"

type Server struct {
	mu      sync.Mutex
	statsMu sync.Mutex
	logMu   sync.Mutex
	c       sync.Mutex
	d       sync.Mutex
	x       sync.Mutex
	y       sync.Mutex
	p       sync.Mutex
	q       sync.Mutex
}

// Legal: acquiring statsMu (rank 2) while holding mu (rank 1), with the
// deferred unlock keeping mu held to the end.
func (s *Server) legalNested() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statsMu.Lock()
	s.statsMu.Unlock()
}

// Violation: acquiring c (rank 3) while holding d (rank 4).
func (s *Server) inverted() {
	s.d.Lock()
	s.c.Lock() // want "violates the documented lock order"
	s.c.Unlock()
	s.d.Unlock()
}

// Undocumented: logMu is not ranked, so the edge mu -> logMu must be added
// to the table before it is legal.
func (s *Server) undocumented() {
	s.mu.Lock()
	s.logMu.Lock() // want "undocumented lock-order edge"
	s.logMu.Unlock()
	s.mu.Unlock()
}

// Legal: statsMu is released before mu is acquired — sequential use, no
// ordering edge.
func (s *Server) sequential() {
	s.statsMu.Lock()
	s.statsMu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *Server) lockMu() {
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *Server) lockY() {
	s.y.Lock()
	s.y.Unlock()
}

func (s *Server) lockP() {
	s.p.Lock()
	s.p.Unlock()
}

// Legal interprocedural: calling lockY (acquires y, rank 6) while holding
// x (rank 5) — the summary edge x -> y agrees with the table.
func (s *Server) legalViaCallee() {
	s.x.Lock()
	s.lockY()
	s.x.Unlock()
}

// Interprocedural violation: lockP acquires p (rank 7) while the caller
// holds q (rank 8); the edge is reported at the call site.
func (s *Server) invertedViaCallee() {
	s.q.Lock()
	s.lockP() // want "violates the documented lock order"
	s.q.Unlock()
}

// Legal: a spawned goroutine does not inherit the parent's held set, so
// the would-be edge x -> mu is not recorded.
func (s *Server) spawnsWhileHeld() {
	s.x.Lock()
	go s.lockMu()
	s.x.Unlock()
}

// Legal: a function literal's acquisitions happen when it runs, not where
// it is written — no y -> mu edge from the closure body.
func (s *Server) literalWhileHeld() func() {
	s.y.Lock()
	f := func() { s.lockMu() }
	s.y.Unlock()
	return f
}
