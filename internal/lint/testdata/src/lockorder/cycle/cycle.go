// Package cycle acquires two mutexes in both orders: a lock-order cycle
// (reported at the first edge) on top of two undocumented edges, since
// neither mutex appears in the fixture DESIGN.md table.
package cycle

import "sync"

var muA, muB sync.Mutex

func aThenB() {
	muA.Lock()
	muB.Lock() // want "undocumented lock-order edge" // want "lock-order cycle among"
	muB.Unlock()
	muA.Unlock()
}

func bThenA() {
	muB.Lock()
	muA.Lock() // want "undocumented lock-order edge"
	muA.Unlock()
	muB.Unlock()
}
