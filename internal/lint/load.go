package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (resolved relative to dir,
// which must lie inside a module), compiles them and their dependencies for
// export data with `go list -export -deps`, parses the matched packages'
// non-test sources, and type-checks them against the dependencies' export
// data. Only the standard toolchain is involved: this is the stdlib
// equivalent of golang.org/x/tools/go/packages.Load(NeedTypes|NeedSyntax).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := bytes.TrimSpace(stderr.Bytes())
		if len(msg) == 0 {
			msg = []byte("(no stderr output)")
		}
		return nil, fmt.Errorf("lint: go list %v in %s: %v: %s", patterns, dir, err, msg)
	}

	exports := map[string]string{} // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s (in %s): %s", p.ImportPath, p.Dir, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	// The gc importer reads compiled export data through lookup; it resolves
	// "unsafe" itself. One importer serves all packages, so shared
	// dependencies are decoded once.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Name:  tpkg.Name(),
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
