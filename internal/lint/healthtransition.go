package lint

import (
	"go/ast"
	"go/types"
)

// HealthTransition pins the fault-tolerance state machine of DESIGN §13 to
// its legal edges. The DB's serving state (the atomic.Int32 `health` field)
// has exactly one writer, the transitionHealth CAS choke point; every other
// Store/Swap/CompareAndSwap on the field is a finding. Call sites of
// transitionHealth must name both endpoints as Health constants, and the
// (from, to) pair must be one of the state machine's edges:
//
//	Healthy          -> DegradedReadOnly  (durability failure rolled back)
//	Healthy          -> Failed            (unrecoverable while healthy)
//	DegradedReadOnly -> Failed            (unrecoverable while degraded)
//	DegradedReadOnly -> Healthy           (probe healed the disk)
//
// Failed is terminal: no edge leaves it. The analyzer self-scopes to
// packages declaring a struct field named health of type atomic.Int32, so
// it runs on the colorful package and its fixtures and is inert elsewhere.
var HealthTransition = &Analyzer{
	Name: "healthtransition",
	Doc:  "health state changes only through transitionHealth, along legal state-machine edges",
	Run:  runHealthTransition,
}

// healthWriteMethods are the atomic.Int32 mutators a stray writer would use.
var healthWriteMethods = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true, "Add": true,
}

// legalHealthEdges holds the state machine, keyed by constant names.
var legalHealthEdges = map[[2]string]bool{
	{"Healthy", "DegradedReadOnly"}: true,
	{"Healthy", "Failed"}:           true,
	{"DegradedReadOnly", "Failed"}:  true,
	{"DegradedReadOnly", "Healthy"}: true,
}

func runHealthTransition(pass *Pass) error {
	if !declaresHealthField(pass) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inChokePoint := fd.Name.Name == "transitionHealth"
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !inChokePoint && isHealthFieldWrite(pass, call) {
					pass.Reportf(call.Pos(), "health state written outside transitionHealth: all transitions go through the state-machine choke point")
				}
				checkTransitionCall(pass, call)
				return true
			})
		}
	}
	return nil
}

// declaresHealthField reports whether the package declares a struct field
// named health of type sync/atomic.Int32 — the analyzer's scope gate.
func declaresHealthField(pass *Pass) bool {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if fieldIsAtomicHealth(st.Field(i)) {
				return true
			}
		}
	}
	return false
}

func fieldIsAtomicHealth(f *types.Var) bool {
	if f.Name() != "health" {
		return false
	}
	named := derefNamed(f.Type())
	return named != nil && named.Obj().Name() == "Int32" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// isHealthFieldWrite recognizes x.health.Store(...) and the other mutators
// on the health field.
func isHealthFieldWrite(pass *Pass, call *ast.CallExpr) bool {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !healthWriteMethods[fun.Sel.Name] {
		return false
	}
	field, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.Info.Uses[field.Sel].(*types.Var)
	return ok && fieldIsAtomicHealth(obj)
}

// checkTransitionCall validates a transitionHealth call site: both
// endpoints named Health constants, the pair a legal edge.
func checkTransitionCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.Info, call)
	if obj == nil || obj.Name() != "transitionHealth" || len(call.Args) < 2 {
		return
	}
	names := make([]string, 2)
	for i := 0; i < 2; i++ {
		c, ok := healthConstName(pass, call.Args[i])
		if !ok {
			pass.Reportf(call.Args[i].Pos(), "health transition endpoints must be named Health constants, not computed values")
			return
		}
		names[i] = c
	}
	if !legalHealthEdges[[2]string{names[0], names[1]}] {
		pass.Reportf(call.Pos(), "illegal health transition %s -> %s: not an edge of the serving state machine", names[0], names[1])
	}
}

// healthConstName resolves an argument to the name of a declared constant
// of a type named Health.
func healthConstName(pass *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return "", false
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	if !ok {
		return "", false
	}
	named := derefNamed(c.Type())
	if named == nil || named.Obj().Name() != "Health" {
		return "", false
	}
	return c.Name(), true
}
