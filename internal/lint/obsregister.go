package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// ObsRegister mechanizes internal/obs's registration discipline: instruments
// are registered exactly once, at package init time. Registration takes a
// lock and panics on a duplicate name, so a registration reachable from a
// request path is a latent crash; the analyzer requires every call to
// obs.NewCounter/NewGauge/NewHistogram (and the Registry.Counter/Gauge/
// Histogram methods) to sit in a package-level var declaration or an init
// function. The instrument name must be a snake_case string literal with a
// subsystem prefix ("wal_fsyncs_total") — a computed name defeats both the
// static duplicate check and grep — and must be unique within its package.
//
// internal/obs itself is exempt: its constructors and tests are the
// registration machinery.
var ObsRegister = &Analyzer{
	Name: "obsregister",
	Doc:  "obs instruments must be registered once, at init, under snake_case literal names",
	Run:  runObsRegister,
}

// obsNameRe mirrors internal/obs's naming rule: snake_case, at least two
// segments, the first being the owning subsystem.
var obsNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// obsRegistrationFuncs are the registering callables of internal/obs; every
// other obs function (Inc, Observe, Snapshot, ...) records or reads and is
// unrestricted.
var obsRegistrationFuncs = map[string]bool{
	"NewCounter": true, "NewGauge": true, "NewHistogram": true,
	"Counter": true, "Gauge": true, "Histogram": true,
}

func runObsRegister(pass *Pass) error {
	if pathHasSuffix(pass.Path, "internal/obs") {
		return nil
	}
	seen := map[string]token.Pos{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				// Package-level var initializers are the sanctioned site.
				checkObsCalls(pass, d, d.Tok == token.VAR, seen)
			case *ast.FuncDecl:
				isInit := d.Recv == nil && d.Name.Name == "init"
				checkObsCalls(pass, d, isInit, seen)
			}
		}
	}
	return nil
}

// checkObsCalls walks one top-level declaration; atInit marks declarations
// where registration is allowed (package var blocks and init functions).
func checkObsCalls(pass *Pass, root ast.Node, atInit bool, seen map[string]token.Pos) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.Info, call)
		if obj == nil || obj.Pkg() == nil ||
			!pathHasSuffix(obj.Pkg().Path(), "internal/obs") ||
			!obsRegistrationFuncs[obj.Name()] {
			return true
		}
		if !atInit {
			pass.Reportf(call.Pos(),
				"obs instrument registered outside package init; registration locks and panics on duplicates — move it to a package-level var or init()")
		}
		if len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			pass.Reportf(call.Args[0].Pos(),
				"obs instrument name must be a string literal; a computed name defeats the static duplicate check")
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !obsNameRe.MatchString(name) {
			pass.Reportf(lit.Pos(),
				"obs instrument name %q is not subsystem_name snake_case", name)
			return true
		}
		if prev, dup := seen[name]; dup {
			pass.Reportf(lit.Pos(),
				"obs instrument %q already registered in this package at %s",
				name, pass.Fset.Position(prev))
			return true
		}
		seen[name] = lit.Pos()
		return true
	})
}
