package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"colorfulxml/internal/lint"
)

// buildCFG parses a function body and builds its control-flow graph.
func buildCFG(t *testing.T, body string) *lint.CFG {
	t.Helper()
	src := "package p\nfunc probe() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "probe.go", src, 0)
	if err != nil {
		t.Fatalf("parsing probe body: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return lint.BuildCFG(fd.Body)
}

// findCall locates the block containing a call to the named function.
func findCall(cfg *lint.CFG, name string) *lint.Block {
	for _, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				return b
			}
		}
	}
	return nil
}

// canReach reports whether to is reachable from from along successor edges.
func canReach(from, to *lint.Block) bool {
	seen := map[*lint.Block]bool{}
	var walk func(*lint.Block) bool
	walk = func(b *lint.Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// stmtCount sums the statements across reachable blocks.
func stmtCount(cfg *lint.CFG) int {
	n := 0
	seen := map[*lint.Block]bool{}
	var walk func(*lint.Block)
	walk = func(b *lint.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		n += len(b.Stmts)
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Entry)
	return n
}

func TestCFGStraightLine(t *testing.T) {
	cfg := buildCFG(t, "a := 1\nb := a\n_ = b")
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Fatalf("exit unreachable:\n%s", cfg)
	}
	if got := stmtCount(cfg); got != 3 {
		t.Errorf("want 3 statements on the reachable flow, got %d:\n%s", got, cfg)
	}
}

func TestCFGBranches(t *testing.T) {
	cfg := buildCFG(t, "if cond() {\n\tthenCall()\n} else {\n\telseCall()\n}\njoin()")
	condBlk := findCall(cfg, "cond")
	if condBlk == nil {
		t.Fatalf("condition expression not materialized in any block:\n%s", cfg)
	}
	if len(condBlk.Succs) != 2 {
		t.Errorf("condition block wants 2 successors (then, else), got %d:\n%s", len(condBlk.Succs), cfg)
	}
	join := findCall(cfg, "join")
	for _, arm := range []string{"thenCall", "elseCall"} {
		if blk := findCall(cfg, arm); blk == nil || !canReach(blk, join) {
			t.Errorf("%s does not flow to the join:\n%s", arm, cfg)
		}
	}
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Errorf("exit unreachable:\n%s", cfg)
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg := buildCFG(t, "for i := 0; i < 3; i++ {\n\tbody()\n}\nafter()")
	body := findCall(cfg, "body")
	if body == nil {
		t.Fatalf("loop body not found:\n%s", cfg)
	}
	if !canReach(body, body) {
		t.Errorf("loop body has no back edge to itself:\n%s", cfg)
	}
	if after := findCall(cfg, "after"); after == nil || !canReach(cfg.Entry, after) {
		t.Errorf("loop exit path missing:\n%s", cfg)
	}
}

func TestCFGBreakEscapesInfiniteLoop(t *testing.T) {
	noBreak := buildCFG(t, "for {\n\tspin()\n}")
	if canReach(noBreak.Entry, noBreak.Exit) {
		t.Errorf("for {} without break must not reach exit:\n%s", noBreak)
	}
	withBreak := buildCFG(t, "for {\n\tif p() {\n\t\tbreak\n\t}\n}\nafter()")
	if !canReach(withBreak.Entry, withBreak.Exit) {
		t.Errorf("break must make exit reachable:\n%s", withBreak)
	}
}

func TestCFGNestedBreakTargets(t *testing.T) {
	// The switch's implicit break target must not clobber the enclosing
	// loop's: the outer break must still leave the loop afterwards.
	cfg := buildCFG(t, `for {
	switch k() {
	case 1:
		break
	}
	if q() {
		break
	}
}
after()`)
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Errorf("outer break must reach exit:\n%s", cfg)
	}
	if after := findCall(cfg, "after"); after == nil || !canReach(cfg.Entry, after) {
		t.Errorf("code after the loop unreachable:\n%s", cfg)
	}
}

func TestCFGDefersCollectedNotFlowed(t *testing.T) {
	cfg := buildCFG(t, "defer cleanup()\nwork()\nf := func() { defer nested() }\n_ = f")
	if len(cfg.Defers) != 1 {
		t.Fatalf("want 1 defer (the nested literal's excluded), got %d", len(cfg.Defers))
	}
}

func TestCFGReturnEndsFlow(t *testing.T) {
	cfg := buildCFG(t, "if p() {\n\treturn\n}\nafter()")
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Fatalf("exit unreachable:\n%s", cfg)
	}
	if after := findCall(cfg, "after"); after == nil || !canReach(cfg.Entry, after) {
		t.Errorf("fall-through path unreachable:\n%s", cfg)
	}
	if !strings.Contains(cfg.String(), "exit") {
		t.Errorf("String() lost the exit annotation:\n%s", cfg)
	}
}

func TestCFGTerminalCallEndsFlow(t *testing.T) {
	cfg := buildCFG(t, "panic(\"boom\")")
	if got := stmtCount(cfg); got != 1 {
		t.Errorf("want the panic statement only on the reachable flow, got %d:\n%s", got, cfg)
	}
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Errorf("panic must edge to exit:\n%s", cfg)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := buildCFG(t, `switch v() {
case 1:
	one()
	fallthrough
case 2:
	two()
default:
	other()
}`)
	one, two := findCall(cfg, "one"), findCall(cfg, "two")
	if one == nil || two == nil {
		t.Fatalf("case bodies not found:\n%s", cfg)
	}
	direct := false
	for _, s := range one.Succs {
		if s == two {
			direct = true
		}
	}
	if !direct {
		t.Errorf("fallthrough edge missing from one() to two():\n%s", cfg)
	}
}

func TestCFGGotoForward(t *testing.T) {
	cfg := buildCFG(t, "if p() {\n\tgoto done\n}\nmid()\ndone:\nend()")
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Fatalf("exit unreachable:\n%s", cfg)
	}
	end := findCall(cfg, "end")
	if end == nil || !canReach(cfg.Entry, end) {
		t.Fatalf("goto target unreachable:\n%s", cfg)
	}
	if mid := findCall(cfg, "mid"); mid == nil || !canReach(mid, end) {
		t.Errorf("fall-through path to the label missing:\n%s", cfg)
	}
}

func TestCFGSelect(t *testing.T) {
	cfg := buildCFG(t, `select {
case <-a:
	one()
case <-b:
	two()
}`)
	for _, arm := range []string{"one", "two"} {
		if blk := findCall(cfg, arm); blk == nil || !canReach(cfg.Entry, blk) {
			t.Errorf("select arm %s unreachable:\n%s", arm, cfg)
		}
	}
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Errorf("exit unreachable after select:\n%s", cfg)
	}
}
