// Package linttest runs one lint.Analyzer over a fixture module and checks
// its diagnostics against expectations embedded in the fixture source — the
// stdlib counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in internal/lint/testdata/src/<name>/: a small, compilable
// module (its own go.mod keeps it out of the repo module) whose package
// layout mirrors whatever scoping the analyzer keys on (package name or
// import-path suffix). A line expecting a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment; the regexp must match the diagnostic's message. Lines without a
// want comment must produce no diagnostic. Several want comments on one line
// expect several diagnostics.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"colorfulxml/internal/lint"
)

// wantRe extracts the quoted pattern of one want comment.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// expectation is one want comment: a file, line, and message pattern.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads testdata/src/<fixture> (relative to the test's working
// directory), applies the analyzer, and reports any mismatch between its
// diagnostics and the fixture's want comments as test errors.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("linttest: resolving fixture %s: %v", fixture, err)
	}
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", fixture, err)
	}
	findings, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: running %s on %s: %v", a.Name, fixture, err)
	}

	expectations, err := collectWants(pkgs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, f := range findings {
		if !matchExpectation(expectations, f) {
			t.Errorf("%s: unexpected diagnostic: %s", fixture, f)
		}
	}
	for _, e := range expectations {
		if !e.hit {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				fixture, filepath.Base(e.file), e.line, e.re)
		}
	}
}

// collectWants scans every loaded file's comments for want expectations.
func collectWants(pkgs []*lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pat := strings.ReplaceAll(m[1], `\"`, `"`)
						re, err := regexp.Compile(pat)
						if err != nil {
							pos := pkg.Fset.Position(c.Pos())
							return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						pos := pkg.Fset.Position(c.Pos())
						out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return out, nil
}

// matchExpectation marks and reports the first unhit expectation on the
// finding's line whose pattern matches.
func matchExpectation(exps []*expectation, f lint.Finding) bool {
	for _, e := range exps {
		if e.hit || e.line != f.Position.Line || e.file != f.Position.Filename {
			continue
		}
		if e.re.MatchString(f.Message) {
			e.hit = true
			return true
		}
	}
	return false
}
