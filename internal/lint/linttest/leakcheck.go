package linttest

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// This file is the runtime counterpart of the static goroutineleak
// analyzer: a snapshot-diff goroutine leak verifier in the spirit of
// go.uber.org/goleak, built on runtime.Stack. The static analyzer proves
// every `go` statement *has* a termination path; the verifier checks the
// paths are actually taken — a test run may not leave stray goroutines
// behind. Wire it into a package with
//
//	func TestMain(m *testing.M) { os.Exit(linttest.VerifyTestMain(m)) }
//
// or scope it to one test with
//
//	snap := linttest.Snap()
//	defer snap.VerifyNoLeaks(t)
//
// Goroutine exit is asynchronous (Close returns before a worker finishes
// unwinding), so the check retries with backoff before declaring a leak.

// leakPatience bounds how long a verifier waits for goroutines to unwind
// before declaring them leaked. Generous because -race and loaded CI
// runners deschedule exiting goroutines for surprisingly long.
const leakPatience = 5 * time.Second

// benignMarkers match goroutines the test harness itself runs: a stack
// containing any of them is never reported.
var benignMarkers = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runTests(",
	"testing.(*M).Run(",
	"testing.(*M).before(",
	"os/signal.loop(",
	"runtime.ReadTrace(",
}

// Snapshot is the set of goroutines alive at a point in time; goroutines
// it contains are exempt from a later leak check.
type Snapshot struct {
	ids map[string]bool
}

// Snap records the currently-live goroutines.
func Snap() Snapshot {
	ids := map[string]bool{}
	for _, st := range goroutineStanzas() {
		if id := stanzaID(st); id != "" {
			ids[id] = true
		}
	}
	return Snapshot{ids: ids}
}

// VerifyNoLeaks fails t when goroutines spawned since the snapshot are
// still running after the patience window. Use from a defer at the top of
// a test that spawns workers.
func (s Snapshot) VerifyNoLeaks(t testing.TB) {
	t.Helper()
	if leaked := leakedStacks(s.ids, leakPatience); len(leaked) > 0 {
		t.Errorf("%d leaked goroutine(s):\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// VerifyNoLeaks fails t when any non-harness goroutine is running after
// the patience window, with no baseline exemptions.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	Snapshot{}.VerifyNoLeaks(t)
}

// VerifyTestMain runs a package's tests and then verifies no goroutine
// spawned by them outlived the run:
//
//	func TestMain(m *testing.M) { os.Exit(linttest.VerifyTestMain(m)) }
//
// The leak check only runs when the tests passed, so a leak never masks a
// real failure's exit code.
func VerifyTestMain(m *testing.M) int {
	base := Snap()
	code := m.Run()
	if code != 0 {
		return code
	}
	if leaked := leakedStacks(base.ids, leakPatience); len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "linttest: %d goroutine(s) leaked by the test run:\n\n%s\n",
			len(leaked), strings.Join(leaked, "\n\n"))
		return 1
	}
	return code
}

// leakedStacks polls the goroutine dump until nothing unexplained remains
// or patience runs out, returning the offending stanzas.
func leakedStacks(base map[string]bool, patience time.Duration) []string {
	deadline := time.Now().Add(patience)
	wait := time.Millisecond
	for {
		all := goroutineStanzas()
		var leaked []string
		// all[0] is the goroutine running this check.
		for _, st := range all[1:] {
			if base[stanzaID(st)] || benignStack(st) {
				continue
			}
			leaked = append(leaked, st)
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(wait)
		if wait < 100*time.Millisecond {
			wait *= 2
		}
	}
}

// goroutineStanzas captures one runtime.Stack dump of every user
// goroutine, split into per-goroutine stanzas, current goroutine first.
func goroutineStanzas() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// stanzaID extracts the goroutine id from a stanza header
// ("goroutine 42 [chan receive]:" -> "42").
func stanzaID(stanza string) string {
	rest, ok := strings.CutPrefix(stanza, "goroutine ")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return ""
}

func benignStack(stanza string) bool {
	for _, m := range benignMarkers {
		if strings.Contains(stanza, m) {
			return true
		}
	}
	return false
}
