package linttest

import (
	"strings"
	"testing"
	"time"
)

// TestLeakCheckCatchesDeliberateLeak proves the verifier actually detects
// a leak: a goroutine parked on a channel nobody has closed yet must be
// reported, and must stop being reported once released.
func TestLeakCheckCatchesDeliberateLeak(t *testing.T) {
	base := Snap()
	release := make(chan struct{})
	go func() { <-release }()

	leaked := leakedStacks(base.ids, 50*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("expected exactly the deliberate leak, got %d stanza(s):\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
	if !strings.Contains(leaked[0], "TestLeakCheckCatchesDeliberateLeak") {
		t.Errorf("leak report does not name the leaking test:\n%s", leaked[0])
	}

	close(release)
	if leaked := leakedStacks(base.ids, leakPatience); len(leaked) > 0 {
		t.Errorf("released goroutine still reported as leaked:\n%s", strings.Join(leaked, "\n\n"))
	}
}

// TestSnapshotExemptsExisting verifies the snapshot diff: a goroutine
// alive before Snap is not a leak afterwards.
func TestSnapshotExemptsExisting(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	go func() { <-release }()
	time.Sleep(10 * time.Millisecond) // let the goroutine get a stack

	base := Snap()
	if leaked := leakedStacks(base.ids, 50*time.Millisecond); len(leaked) > 0 {
		t.Errorf("pre-snapshot goroutine reported as leaked:\n%s", strings.Join(leaked, "\n\n"))
	}
}
