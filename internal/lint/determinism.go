package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism guards the reproducibility the crash harness and the on-disk
// format depend on. The crashtest workload must generate identically from a
// seed (the differential committed-prefix verification replays it on shadow
// databases), and the WAL and checkpoint encoders must emit identical bytes
// for identical state (corruption classification and the recovery tests pin
// exact offsets). The fault-injection layer joins the scope for the same
// reason: the retry backoff's jitter and FaultFS's fault selection must
// derive from explicit seeds, or a failing chaos run stops reproducing.
// Three nondeterminism sources are flagged in the scoped packages
// (internal/crashtest, internal/wal, internal/storage, internal/pagestore,
// internal/vfs):
//
//   - time.Now/Since/Until: wall-clock input;
//   - math/rand global functions (rand.Intn, rand.Shuffle, ...): process-
//     global, unseedable state — a seeded rand.New(rand.NewSource(seed)) is
//     the sanctioned form and stays allowed;
//   - iteration over a map feeding ordered output (an append or a Write/Put
//     call in the loop body): map order varies run to run. The sanctioned
//     pattern — collect keys, sort, then iterate — is recognized by the
//     enclosing function calling into package sort or slices.
//
// internal/obs is the sanctioned clock for the scoped packages: obs.Nanos
// and obs.Start feed metrics, never encoded bytes, so storage and pagestore
// may time their operations freely. Two places stay forbidden even for obs
// timing: the crashtest package (any wall-clock reading perturbs seeded
// replay) and WAL encoder files (internal/wal files named encode*.go, where
// a timing value within reach of the byte stream is exactly the bug the
// analyzer exists to prevent).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "crashtest workload and WAL/checkpoint encoders must be deterministic",
	Run:  runDeterminism,
}

// seededRandCtors are the math/rand functions that build explicitly seeded
// local generators and are therefore allowed.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	scoped := pathHasSuffix(pass.Path, "internal/crashtest") ||
		pathHasSuffix(pass.Path, "internal/wal") ||
		pathHasSuffix(pass.Path, "internal/storage") ||
		pathHasSuffix(pass.Path, "internal/pagestore") ||
		pathHasSuffix(pass.Path, "internal/vfs")
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeterminismFunc(pass, fd)
		}
	}
	return nil
}

func checkDeterminismFunc(pass *Pass, fd *ast.FuncDecl) {
	sorts := callsSortPackage(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			obj := calleeObj(pass.Info, x)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if pathHasSuffix(obj.Pkg().Path(), "internal/obs") {
				if name := obj.Name(); name == "Nanos" || name == "Start" {
					if why := obsTimingForbidden(pass, x.Pos()); why != "" {
						pass.Reportf(x.Pos(), "obs.%s %s", name, why)
					}
				}
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if name := obj.Name(); name == "Now" || name == "Since" || name == "Until" {
					pass.Reportf(x.Pos(),
						"time.%s in a determinism-critical package; wall-clock input breaks seeded replay", name)
				}
			case "math/rand", "math/rand/v2":
				// Only package-level functions (global generator state);
				// methods on a locally seeded *rand.Rand are the sanctioned
				// form.
				fn, isFunc := obj.(*types.Func)
				if isFunc && fn.Type().(*types.Signature).Recv() == nil && !seededRandCtors[obj.Name()] {
					pass.Reportf(x.Pos(),
						"global %s.%s in a determinism-critical package; use a seeded rand.New(rand.NewSource(seed))",
						obj.Pkg().Name(), obj.Name())
				}
			}
		case *ast.RangeStmt:
			if !sorts && rangesOverMap(pass, x) && bodyEmitsOrderedOutput(x.Body) {
				pass.Reportf(x.Pos(),
					"map iteration feeds ordered output; collect the keys, sort them, then iterate")
			}
		}
		return true
	})
}

// obsTimingForbidden reports why an obs clock reading is disallowed at pos,
// or "" where the metrics clock is sanctioned. obs timing is the approved
// exemption from the time.Now ban — except in crashtest (seeded replay) and
// WAL encoder files (encode*.go), where the original hazards apply in full.
func obsTimingForbidden(pass *Pass, pos token.Pos) string {
	if pathHasSuffix(pass.Path, "internal/crashtest") {
		return "in the crashtest package; wall-clock readings perturb seeded replay"
	}
	if pathHasSuffix(pass.Path, "internal/wal") {
		base := filepath.Base(pass.Fset.Position(pos).Filename)
		if strings.HasPrefix(base, "encode") {
			return "in a WAL encoder file; timing values must stay out of reach of encoded bytes"
		}
	}
	return ""
}

func rangesOverMap(pass *Pass, r *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[r.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// bodyEmitsOrderedOutput reports whether a loop body appends to a slice or
// calls an output-shaped method (Write*/Append*/Encode*/Put*/WriteString),
// the signature of order-sensitive emission. Pure map-to-map copies and
// aggregations iterate maps harmlessly and are not flagged.
func bodyEmitsOrderedOutput(body *ast.BlockStmt) bool {
	emits := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name == "append" || hasAnyPrefix(name, "Write", "Append", "Encode", "Put") {
			emits = true
			return false
		}
		return true
	})
	return emits
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

// callsSortPackage reports whether the function calls into package sort or
// slices anywhere — the marker of the collect-sort-iterate pattern.
func callsSortPackage(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeObj(pass.Info, call); obj != nil && obj.Pkg() != nil {
			if p := obj.Pkg().Path(); p == "sort" || p == "slices" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
