package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BatchAlias enforces the vectorized-execution aliasing contract of
// internal/engine (DESIGN §11): rows handed out by Batch.Row and
// batchCursor.pull are *views* into a reused buffer, valid only until the
// batch is next refilled, swapped, or recycled — anything kept longer must
// be copied (Ctx.copyRow / concatRow) first. The analyzer runs a forward
// may-poisoned dataflow over each function's CFG: assigning a view
// expression marks the variable a view of its batch (identified by the root
// variable of the receiver — b for b.Row(i), c for c.pull(ctx)); an
// invalidating call on the same root (Reset, Swap — both operands — free,
// close, pull, NextBatch, pullBatch, arena release) poisons every view of
// that root; using a poisoned view on any path is a finding. Reassigning
// the variable clears the poison, which is exactly the refill idiom:
// `r, ok, err := c.pull(ctx)` first invalidates the previous view of c,
// then binds r to the fresh one.
//
// Scope: packages named engine. Views escaping through returns or struct
// fields are not tracked (batchCursor.pull itself returns a view — that is
// the documented hand-off, and its callers are checked in turn).
var BatchAlias = &Analyzer{
	Name: "batchalias",
	Doc:  "no batch row view may be used after its batch was refilled, swapped, or recycled",
	Run:  runBatchAlias,
}

// viewState tracks one view variable: which root it aliases and whether an
// invalidation poisoned it (poisonPos set).
type viewState struct {
	base      types.Object
	poisonPos token.Pos
	poison    string // the invalidating call, for the message
}

func runBatchAlias(pass *Pass) error {
	if pass.Pkg.Name() != "engine" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBatchAliases(pass, fd)
		}
	}
	return nil
}

func checkBatchAliases(pass *Pass, fd *ast.FuncDecl) {
	cfg := BuildCFG(fd.Body)
	in := make([]map[types.Object]viewState, len(cfg.Blocks))
	out := make([]map[types.Object]viewState, len(cfg.Blocks))
	visited := make([]bool, len(cfg.Blocks))
	reported := map[token.Pos]bool{}

	transfer := func(b *Block, state map[types.Object]viewState, emit bool) map[types.Object]viewState {
		st := map[types.Object]viewState{}
		for k, v := range state {
			st[k] = v
		}
		for _, s := range b.Stmts {
			batchAliasStmt(pass, s, st, emit, reported)
		}
		return st
	}

	work := []int{cfg.Entry.Index}
	in[cfg.Entry.Index] = map[types.Object]viewState{}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		b := cfg.Blocks[i]
		newOut := transfer(b, in[i], false)
		// Unvisited blocks must propagate even with an empty state, which
		// would otherwise compare equal to the nil initial out-state.
		if visited[i] && viewStatesEqual(newOut, out[i]) {
			continue
		}
		visited[i] = true
		out[i] = newOut
		for _, succ := range b.Succs {
			merged := mergeViewStates(in[succ.Index], newOut)
			if in[succ.Index] == nil || !viewStatesEqual(merged, in[succ.Index]) {
				in[succ.Index] = merged
				work = append(work, succ.Index)
			}
		}
	}
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil {
			continue // unreachable
		}
		transfer(b, in[b.Index], true)
	}
}

// batchAliasStmt applies one statement to the view state, in contract
// order: invalidations fire first (a refill kills the previous views),
// then uses of poisoned views are reported, then assignments bind fresh
// views.
func batchAliasStmt(pass *Pass, s ast.Stmt, st map[types.Object]viewState, emit bool, reported map[token.Pos]bool) {
	// 1. Invalidations.
	ast.Inspect(s, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			for _, inv := range invalidatedRoots(pass, v) {
				for obj, vs := range st {
					if vs.base == inv.base && vs.poisonPos == token.NoPos {
						vs.poisonPos = v.Pos()
						vs.poison = inv.name
						st[obj] = vs
					}
				}
			}
		}
		return true
	})

	// 2. Uses of poisoned views.
	lhs := map[*ast.Ident]bool{}
	var assign *ast.AssignStmt
	if a, ok := s.(*ast.AssignStmt); ok {
		assign = a
		for _, l := range a.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				lhs[id] = true
			}
		}
	}
	ast.Inspect(s, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if lhs[v] {
				return true
			}
			obj := pass.Info.Uses[v]
			vs, tracked := st[obj]
			if !tracked || vs.poisonPos == token.NoPos {
				return true
			}
			if emit && !reported[v.Pos()] {
				reported[v.Pos()] = true
				pass.Reportf(v.Pos(), "batch row view %s used after %s invalidated its batch (line %d); copy the row before the batch is recycled",
					v.Name, vs.poison, pass.Fset.Position(vs.poisonPos).Line)
			}
		}
		return true
	})

	// 3. Assignments binding or clearing views.
	if assign == nil {
		return
	}
	bind := func(l ast.Expr, r ast.Expr) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if base, ok := viewBase(pass, r); ok {
			st[obj] = viewState{base: base}
		} else {
			delete(st, obj)
		}
	}
	if len(assign.Rhs) == len(assign.Lhs) {
		for i, l := range assign.Lhs {
			bind(l, assign.Rhs[i])
		}
	} else if len(assign.Rhs) == 1 {
		// Multi-value: only the first result of pull is a view.
		bind(assign.Lhs[0], assign.Rhs[0])
		for _, l := range assign.Lhs[1:] {
			bind(l, nil)
		}
	}
}

// viewBase reports whether e creates a batch/arena view, returning the root
// variable of the backing object.
func viewBase(pass *Pass, e ast.Expr) (types.Object, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	recv := engineRecvType(pass, sel.X)
	switch {
	case recv == "Batch" && sel.Sel.Name == "Row",
		recv == "batchCursor" && sel.Sel.Name == "pull",
		recv == "arena" && sel.Sel.Name == "alloc":
		return rootObj(pass, sel.X), rootObj(pass, sel.X) != nil
	}
	return nil, false
}

// invalidation is one root whose views a call kills.
type invalidation struct {
	base types.Object
	name string
}

// invalidatedRoots lists the roots a call invalidates, per the batch
// ownership contract.
func invalidatedRoots(pass *Pass, call *ast.CallExpr) []invalidation {
	var out []invalidation
	add := func(e ast.Expr, name string) {
		if obj := rootObj(pass, e); obj != nil {
			out = append(out, invalidation{obj, name})
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		recv := engineRecvType(pass, fun.X)
		m := fun.Sel.Name
		switch {
		case recv == "Batch" && (m == "Reset" || m == "free"):
			add(fun.X, "Batch."+m)
		case recv == "Batch" && m == "Swap":
			add(fun.X, "Batch.Swap")
			if len(call.Args) == 1 {
				add(call.Args[0], "Batch.Swap")
			}
		case recv == "batchCursor" && (m == "pull" || m == "close"):
			add(fun.X, "batchCursor."+m)
		case recv == "arena" && m == "release":
			add(fun.X, "arena.release")
		}
	case *ast.Ident:
		obj := pass.Info.Uses[fun]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "engine" {
			return out
		}
		switch {
		case fun.Name == "NextBatch" && len(call.Args) >= 2:
			add(call.Args[1], "NextBatch")
		case fun.Name == "pullBatch" && len(call.Args) >= 3:
			add(call.Args[2], "pullBatch")
		}
	}
	return out
}

// engineRecvType names the engine type a receiver expression has ("Batch",
// "batchCursor", "arena"); "" otherwise.
func engineRecvType(pass *Pass, recv ast.Expr) string {
	named := derefNamed(pass.Info.Types[recv].Type)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "engine" {
		return ""
	}
	return named.Obj().Name()
}

// rootObj resolves the outermost variable an expression dereferences:
// c for c.buf, b for (&b), o for o.in.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.Ident:
			return pass.Info.Uses[v]
		default:
			return nil
		}
	}
}

func mergeViewStates(a, b map[types.Object]viewState) map[types.Object]viewState {
	m := map[types.Object]viewState{}
	for k, v := range a {
		m[k] = v
	}
	for k, v := range b {
		prev, ok := m[k]
		if !ok {
			m[k] = v
			continue
		}
		// May-analysis: poisoned on any path wins; earliest position for
		// deterministic messages.
		if v.poisonPos != token.NoPos && (prev.poisonPos == token.NoPos || v.poisonPos < prev.poisonPos) {
			m[k] = v
		}
	}
	return m
}

func viewStatesEqual(a, b map[types.Object]viewState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
