package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LockOrder builds the program's global mutex-acquisition graph and checks
// it two ways. Always: the graph must be acyclic — a cycle is a potential
// deadlock regardless of documentation. When the module's DESIGN.md carries
// a lock-order table (a markdown table between `<!-- lockorder:begin -->`
// and `<!-- lockorder:end -->`, each row `| rank | `+"`class`"+` | note |`),
// every acquisition edge must also agree with it: acquiring B while holding
// A is legal only when A's rank is strictly smaller than B's, and an edge
// between locks the table does not rank at all is an undocumented edge that
// must be added to the table.
//
// Lock identity is by *class*, not instance: the field path pkg.Type.field
// for mutex fields, pkg.var for package-level mutexes (an RWMutex's read and
// write sides share the class). Edges are discovered by a forward may-held
// dataflow over each function's CFG — Lock/RLock/TryLock add the class,
// Unlock/RUnlock remove it, a deferred Unlock keeps it held to the
// function's end — combined with transitive acquisition summaries at call
// sites: while holding A, calling a function that (transitively) acquires B
// records the edge A → B. Function literals and `go` statements are
// excluded from summaries and event streams — a spawned goroutine does not
// inherit its parent's held set. Local (function-scoped) mutexes and
// self-edges are not tracked; see DESIGN.md §14 for the imprecision notes.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "mutex-acquisition graph must be acyclic and match the DESIGN.md lock-order table",
	RunProgram: runLockOrder,
}

var lockAcquireMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}
var lockReleaseMethods = map[string]bool{
	"Unlock": true, "RUnlock": true,
}

// lockEdge is one observed acquisition ordering: to was acquired (directly
// or via a callee) while from was held.
type lockEdge struct{ from, to string }

func runLockOrder(pass *ProgramPass) error {
	prog := pass.Prog
	cg := prog.CallGraph()
	nodes := sortedNodes(cg)

	// Transitive acquisition summaries: the lock classes calling a function
	// may acquire, through any depth of (non-goroutine) calls.
	trans := map[*FuncNode]map[string]bool{}
	for _, n := range nodes {
		trans[n] = directAcquires(n)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, cs := range n.Calls {
				if cs.Go || cs.InFuncLit {
					continue
				}
				for _, callee := range cs.Callees {
					for c := range trans[callee] {
						if !trans[n][c] {
							trans[n][c] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// Edge discovery: per-function CFG dataflow of the may-held set.
	edges := map[lockEdge]token.Pos{}
	record := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		e := lockEdge{from, to}
		if old, ok := edges[e]; !ok || pos < old {
			edges[e] = pos
		}
	}
	for _, n := range nodes {
		collectLockEdges(n, trans, record)
	}

	ranks, haveTable := loadLockRanks(prog)

	keys := make([]lockEdge, 0, len(edges))
	for e := range edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	if haveTable {
		for _, e := range keys {
			rf, okf := ranks[e.from]
			rt, okt := ranks[e.to]
			switch {
			case okf && okt && rf >= rt:
				pass.Reportf(edges[e], "acquiring %s while holding %s violates the documented lock order (DESIGN.md ranks %s at %d, %s at %d)",
					e.to, e.from, e.from, rf, e.to, rt)
			case !okf || !okt:
				pass.Reportf(edges[e], "undocumented lock-order edge %s -> %s: add it to the DESIGN.md lock-order table", e.from, e.to)
			}
		}
	}

	reportLockCycles(pass, keys, edges)
	return nil
}

// directAcquires returns the lock classes n acquires on its own control
// flow (excluding function literals, go statements, and defers).
func directAcquires(n *FuncNode) map[string]bool {
	out := map[string]bool{}
	forEachLockStmt(n.Pkg, n.Decl.Body, func(call *ast.CallExpr, method, class string) {
		if lockAcquireMethods[method] {
			out[class] = true
		}
	}, nil)
	return out
}

// forEachLockStmt walks body in source order, skipping function literals,
// go statements, and defer statements, invoking onLock for each mutex
// Lock/Unlock-family call with a resolvable class and onCall for every
// other call expression.
func forEachLockStmt(pkg *Package, body ast.Node, onLock func(*ast.CallExpr, string, string), onCall func(*ast.CallExpr)) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if method, class, ok := lockCallClass(pkg, v); ok {
				onLock(v, method, class)
				return true
			}
			if onCall != nil {
				onCall(v)
			}
		}
		return true
	})
}

// collectLockEdges runs the may-held dataflow over n's CFG, recording an
// edge for every class acquired — directly or through a callee's summary —
// while another class is held.
func collectLockEdges(n *FuncNode, trans map[*FuncNode]map[string]bool, record func(from, to string, pos token.Pos)) {
	cfg := BuildCFG(n.Decl.Body)
	sites := map[*ast.CallExpr]*CallSite{}
	for _, cs := range n.Calls {
		sites[cs.Call] = cs
	}

	in := make([]map[string]bool, len(cfg.Blocks))
	out := make([]map[string]bool, len(cfg.Blocks))
	visited := make([]bool, len(cfg.Blocks))

	transfer := func(b *Block, held map[string]bool, emit bool) map[string]bool {
		h := map[string]bool{}
		for c := range held {
			h[c] = true
		}
		for _, s := range b.Stmts {
			forEachLockStmt(n.Pkg, s, func(call *ast.CallExpr, method, class string) {
				if lockAcquireMethods[method] {
					if emit {
						for held := range h {
							record(held, class, call.Pos())
						}
					}
					h[class] = true
				} else {
					delete(h, class)
				}
			}, func(call *ast.CallExpr) {
				cs := sites[call]
				if cs == nil || cs.Go || len(h) == 0 {
					return
				}
				if !emit {
					return
				}
				for _, callee := range cs.Callees {
					for acq := range trans[callee] {
						for held := range h {
							record(held, acq, call.Pos())
						}
					}
				}
			})
		}
		return h
	}

	// Fixpoint on the held sets, then one emitting pass.
	work := []int{cfg.Entry.Index}
	in[cfg.Entry.Index] = map[string]bool{}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		b := cfg.Blocks[i]
		newOut := transfer(b, in[i], false)
		// An unvisited block must propagate even when its output state is
		// empty — emptiness is indistinguishable from "not yet computed"
		// otherwise, and the walk would stall at the entry block.
		if visited[i] && lockSetEqual(newOut, out[i]) {
			continue
		}
		visited[i] = true
		out[i] = newOut
		for _, succ := range b.Succs {
			merged := lockSetUnion(in[succ.Index], newOut)
			if in[succ.Index] == nil || !lockSetEqual(merged, in[succ.Index]) {
				in[succ.Index] = merged
				work = append(work, succ.Index)
			}
		}
	}
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil {
			continue // unreachable
		}
		transfer(b, in[b.Index], true)
	}
}

func lockSetUnion(a, b map[string]bool) map[string]bool {
	u := map[string]bool{}
	for c := range a {
		u[c] = true
	}
	for c := range b {
		u[c] = true
	}
	return u
}

func lockSetEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if !b[c] {
			return false
		}
	}
	return true
}

// lockCallClass recognizes x.Lock() / x.mu.RLock() / pkgvar.Unlock() calls
// on sync.Mutex / sync.RWMutex, returning the method name and the lock's
// class key.
func lockCallClass(pkg *Package, call *ast.CallExpr) (method, class string, ok bool) {
	fun, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	m := fun.Sel.Name
	if !lockAcquireMethods[m] && !lockReleaseMethods[m] {
		return "", "", false
	}
	obj, isFn := pkg.Info.Uses[fun.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	if named := derefNamed(recv.Type()); named == nil ||
		(named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	// The holder expression: either the mutex itself (x.mu, pkgvar) or, for
	// an embedded mutex, the embedding struct (class by its type).
	holder := fun.X
	if named := derefNamed(pkg.Info.Types[holder].Type); named != nil &&
		!(named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync") {
		class = named.Obj().Pkg().Name() + "." + named.Obj().Name()
		return m, class, true
	}
	class, ok = classOfExpr(pkg, holder)
	if !ok {
		return "", "", false
	}
	return m, class, true
}

// classOfExpr names the storage location an expression denotes, as a class
// key shared by every instance: pkgname.Type.field for struct fields,
// pkgname.var for package-level variables. Local variables and arbitrary
// expressions have no class.
func classOfExpr(pkg *Package, e ast.Expr) (string, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[v]; ok {
			if named := derefNamed(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + v.Sel.Name, true
			}
			return "", false
		}
		// Qualified identifier: pkgname.Var.
		if obj, ok := pkg.Info.Uses[v.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name(), true
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[v].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name(), true
		}
	}
	return "", false
}

// derefNamed unwraps pointers down to a named type; nil if the core type is
// unnamed.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// sortedNodes returns the call graph's nodes in source order, so the
// analysis (and in particular edge positions) is deterministic.
func sortedNodes(cg *CallGraph) []*FuncNode {
	nodes := make([]*FuncNode, 0, len(cg.Nodes))
	for _, n := range cg.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	return nodes
}

// reportLockCycles finds strongly connected components of the acquisition
// graph and reports each multi-node component as one potential-deadlock
// finding, positioned at the component's first recorded edge.
func reportLockCycles(pass *ProgramPass, keys []lockEdge, edges map[lockEdge]token.Pos) {
	adj := map[string][]string{}
	var classes []string
	seen := map[string]bool{}
	for _, e := range keys {
		adj[e.from] = append(adj[e.from], e.to)
		for _, c := range []string{e.from, e.to} {
			if !seen[c] {
				seen[c] = true
				classes = append(classes, c)
			}
		}
	}
	sort.Strings(classes)

	// Tarjan's SCC, iterative enough for a handful of lock classes.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, c := range classes {
		if _, ok := index[c]; !ok {
			strong(c)
		}
	}

	for _, comp := range sccs {
		sort.Strings(comp)
		pos := token.Pos(0)
		in := map[string]bool{}
		for _, c := range comp {
			in[c] = true
		}
		for _, e := range keys {
			if in[e.from] && in[e.to] {
				if p := edges[e]; pos == 0 || p < pos {
					pos = p
				}
			}
		}
		pass.Reportf(pos, "lock-order cycle among {%s}: these mutexes are acquired in both orders (potential deadlock)",
			strings.Join(comp, ", "))
	}
}

// loadLockRanks parses the documented lock order out of the module's
// DESIGN.md: rows of a markdown table between the lockorder:begin / end
// markers, each carrying an integer rank cell and a backtick-quoted class
// cell. Returns ok=false when no module DESIGN.md or no marked table exists
// (cycle detection still runs).
func loadLockRanks(prog *Program) (map[string]int, bool) {
	if len(prog.Packages) == 0 {
		return nil, false
	}
	root := moduleRoot(prog.Packages[0].Dir)
	if root == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		return nil, false
	}
	text := string(data)
	_, after, found := strings.Cut(text, "<!-- lockorder:begin -->")
	if !found {
		return nil, false
	}
	table, _, found := strings.Cut(after, "<!-- lockorder:end -->")
	if !found {
		return nil, false
	}
	ranks := map[string]int{}
	for _, line := range strings.Split(table, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		rank := -1
		class := ""
		for _, cell := range cells {
			cell = strings.TrimSpace(cell)
			if rank < 0 {
				if n, err := strconv.Atoi(cell); err == nil {
					rank = n
					continue
				}
			}
			if class == "" {
				if i := strings.IndexByte(cell, '`'); i >= 0 {
					if j := strings.IndexByte(cell[i+1:], '`'); j >= 0 {
						class = cell[i+1 : i+1+j]
					}
				}
			}
		}
		if rank >= 0 && class != "" {
			ranks[class] = rank
		}
	}
	return ranks, len(ranks) > 0
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
