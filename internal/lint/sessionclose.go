package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SessionClose enforces the session-kernel lifecycle contract of DESIGN.md
// §12: every colorful.DB.Session() and Prepare() result must reach Close.
// An unclosed Session pins the DB's drain forever — DB.Close waits for every
// session to finish — and an unclosed Stmt pins its plan in the session for
// as long as the session lives. The network client carries the same shape of
// obligation: a Pool.Get checkout holds a capacity slot until Release (or
// Close), and a client.Open/Dial/Prepare result holds sockets or server
// handles until Close. The analyzer tracks each creation through the
// function with the same three-state abstract interpretation the
// commitscope analyzer uses (before the creation, live, closed-or-escaped),
// joined across branches and iterated to a fixed point in loops.
//
// Ownership transfer ends the obligation here: returning the value, passing
// it to a call, storing it in a field/slice/map/channel, or capturing it in
// a function literal all move responsibility to the receiver, which this
// per-function analysis cannot follow. What it can always flag: results
// that are discarded outright (an unbound call, a blank assignment, a
// method chained off the fresh value) and variables that are provably still
// open on a return path with no deferred Close.
var SessionClose = &Analyzer{
	Name: "sessionclose",
	Doc:  "colorful Session()/Prepare() and client Get/Dial/Open results must reach Close or Release on every path",
	Run:  runSessionClose,
}

// sessionConstructors are the functions whose results carry a close
// obligation, keyed by the package-path suffix that defines them: the
// colorful session kernel, and the network client's pooled handles.
var sessionConstructors = map[string]map[string]bool{
	"colorful": {
		"Session": true,
		"Prepare": true,
	},
	"client": {
		"Get":         true, // Pool.Get checkout holds a capacity slot
		"Dial":        true,
		"Open":        true,
		"OpenOptions": true,
		"Prepare":     true,
	},
}

// sessionClosers are the methods that discharge the obligation. Release is
// the client pool's healthy-return path; Close retires or destroys.
var sessionClosers = map[string]bool{
	"Close":   true,
	"Release": true,
}

// isSessionConstructor reports whether the call resolves to one of the
// tracked constructors (suffix-scoped by package path so fixture modules
// mirroring the layout are covered too).
func isSessionConstructor(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	for suffix, names := range sessionConstructors {
		if names[obj.Name()] && pathHasSuffix(obj.Pkg().Path(), suffix) {
			return true
		}
	}
	return false
}

func runSessionClose(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Function literals get their own pass: a session opened inside a
			// goroutine or callback body must be closed on that body's paths.
			bodies := []*ast.BlockStmt{fd.Body}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					bodies = append(bodies, fl.Body)
				}
				return true
			})
			for _, b := range bodies {
				checkSessionClose(pass, b)
			}
		}
	}
	return nil
}

// checkSessionClose classifies every constructor call in one body (nested
// function literals excluded — they are analyzed as their own bodies) and
// flow-checks the ones bound to a variable.
func checkSessionClose(pass *Pass, body *ast.BlockStmt) {
	parents := parentMap(body)
	for _, call := range sessionCalls(pass.Info, body) {
		switch p := parents[call].(type) {
		case *ast.AssignStmt:
			trackAssigned(pass, body, call, p)
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if v != ast.Expr(call) || i >= len(p.Names) {
					continue
				}
				trackSessionVar(pass, body, call, p.Names[i], nil)
			}
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(),
				"result of %s is discarded; a Session/Stmt must reach Close", calleeName(call))
		case *ast.SelectorExpr:
			// A method chained off the fresh value: nothing holds it afterward.
			if !sessionClosers[p.Sel.Name] {
				pass.Reportf(call.Pos(),
					"result of %s is not bound to a variable; it can never be closed", calleeName(call))
			}
		default:
			// Return value, call argument, composite literal, channel send,
			// parenthesis under one of those: ownership escapes this function.
		}
	}
}

// trackAssigned resolves which LHS of an assignment receives the
// constructor result and flow-checks it.
func trackAssigned(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr, as *ast.AssignStmt) {
	idx := 0
	if len(as.Lhs) == len(as.Rhs) {
		for i, r := range as.Rhs {
			if r == ast.Expr(call) {
				idx = i
			}
		}
	}
	// Multi-value forms (st, err := s.Prepare(q)) bind the object first.
	if idx >= len(as.Lhs) {
		return
	}
	id, ok := as.Lhs[idx].(*ast.Ident)
	if !ok {
		// Stored straight into a field/index expression: ownership escapes.
		return
	}
	// The companion of a multi-value form (st, err := s.Prepare(q)): on the
	// path where that error is non-nil the constructor failed and there is
	// nothing to close.
	var errObj types.Object
	for i, l := range as.Lhs {
		if i == idx {
			continue
		}
		if eid, ok := l.(*ast.Ident); ok && eid.Name != "_" {
			if o := objectOf(pass.Info, eid); o != nil {
				errObj = o
			}
		}
	}
	trackSessionVar(pass, body, call, id, errObj)
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func trackSessionVar(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr, id *ast.Ident, errObj types.Object) {
	if id.Name == "_" {
		pass.Reportf(call.Pos(),
			"result of %s is assigned to the blank identifier; it can never be closed", calleeName(call))
		return
	}
	obj := objectOf(pass.Info, id)
	if obj == nil {
		return
	}
	fl := &sessFlow{pass: pass, create: call, obj: obj, errObj: errObj,
		name: id.Name, reported: map[token.Pos]bool{}}
	out := fl.stmt(body, sessPre)
	if out&sessLive != 0 {
		pass.Reportf(body.Rbrace,
			"%s can reach the end of the function still open; close it (or defer Close) on every path", fl.name)
	}
}

// sessionCalls collects constructor calls in source order, skipping nested
// function literals.
func sessionCalls(info *types.Info, body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && isSessionConstructor(info, c) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// parentMap records each node's immediate parent within body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// Abstract states for one tracked variable, as a bitmask so branch joins
// are unions (mirroring the commitscope lattice).
type sessState uint8

const (
	sessPre  sessState = 1 << iota // before the constructor call
	sessLive                       // created, not yet closed or escaped
	sessDone                       // closed, or ownership escaped
	sessNone sessState = 0         // unreachable (terminated path)
)

// sessFlow evaluates one variable's create/close state machine over a body.
// reported guards against duplicate diagnostics when the loop fixed point
// re-evaluates a body.
type sessFlow struct {
	pass     *Pass
	create   *ast.CallExpr
	obj      types.Object
	errObj   types.Object // companion error of a multi-value creation, if any
	name     string
	reported map[token.Pos]bool
}

// reportf emits at most one diagnostic per position for this flow.
func (fl *sessFlow) reportf(pos token.Pos, format string, args ...any) {
	if fl.reported[pos] {
		return
	}
	fl.reported[pos] = true
	fl.pass.Reportf(pos, format, args...)
}

func (fl *sessFlow) stmt(s ast.Stmt, in sessState) sessState {
	if s == nil || in == sessNone {
		return in
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.List {
			in = fl.stmt(st, in)
		}
		return in
	case *ast.IfStmt:
		in = fl.stmt(x.Init, in)
		in = fl.scan(in, x.Cond)
		// An err-nil guard on the creation's companion error: on the failing
		// branch the constructor returned nothing to close.
		thenIn, elseIn := in, in
		switch fl.errNilBranch(x.Cond) {
		case errFailsThen: // if err != nil { ... }
			thenIn = fl.failed(in)
		case errFailsElse: // if err == nil { ... } else { ... }
			elseIn = fl.failed(in)
		}
		thenOut := fl.stmt(x.Body, thenIn)
		elseOut := elseIn
		if x.Else != nil {
			elseOut = fl.stmt(x.Else, elseIn)
		}
		return thenOut | elseOut
	case *ast.ForStmt:
		in = fl.stmt(x.Init, in)
		in = fl.scan(in, x.Cond)
		return fl.loop(in, func(s sessState) sessState {
			s = fl.stmt(x.Body, s)
			return fl.stmt(x.Post, s)
		})
	case *ast.RangeStmt:
		in = fl.scan(in, x.X)
		return fl.loop(in, func(s sessState) sessState { return fl.stmt(x.Body, s) })
	case *ast.SwitchStmt:
		in = fl.stmt(x.Init, in)
		in = fl.scan(in, x.Tag)
		return fl.cases(in, x.Body)
	case *ast.TypeSwitchStmt:
		in = fl.stmt(x.Init, in)
		in = fl.stmt(x.Assign, in)
		return fl.cases(in, x.Body)
	case *ast.SelectStmt:
		return fl.cases(in, x.Body)
	case *ast.LabeledStmt:
		return fl.stmt(x.Stmt, in)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			in = fl.scan(in, r)
		}
		if in&sessLive != 0 {
			fl.reportf(x.Pos(),
				"return leaks %s while it is still open; close it (or defer Close) before returning", fl.name)
		}
		return sessNone
	case *ast.BranchStmt:
		return in
	case *ast.ExprStmt:
		if isTerminalCall(x.X) {
			fl.scan(in, x.X)
			return sessNone
		}
		return fl.scan(in, x.X)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			in = fl.scan(in, e)
		}
		for _, e := range x.Lhs {
			// Assigning to the tracked variable (its definition, or a plain
			// reassignment) is neither a use nor an escape.
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && fl.isVar(id) {
				continue
			}
			in = fl.scan(in, e)
		}
		return in
	case *ast.DeferStmt:
		// A deferred Close guards every later exit; the immediate-transition
		// approximation is the same one commitscope makes.
		return fl.scan(in, x.Call)
	case *ast.GoStmt:
		return fl.scan(in, x.Call)
	default:
		return fl.scanStmt(in, s)
	}
}

// Outcomes of matching an if condition against the companion error.
const (
	errNoGuard   = iota // not an err-nil check on the companion
	errFailsThen        // err != nil: the then-branch is the failure path
	errFailsElse        // err == nil: the else-branch is the failure path
)

// errNilBranch classifies cond as an err-nil guard on the creation's
// companion error variable.
func (fl *sessFlow) errNilBranch(cond ast.Expr) int {
	if fl.errObj == nil {
		return errNoGuard
	}
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return errNoGuard
	}
	isErr := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && fl.pass.Info.Uses[id] == fl.errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isErr(be.X) && isNil(be.Y)) || (isNil(be.X) && isErr(be.Y)) {
		if be.Op == token.NEQ {
			return errFailsThen
		}
		return errFailsElse
	}
	return errNoGuard
}

// failed maps the state set onto the constructor-failed path: anything live
// becomes done, because a failed Session()/Prepare returns nothing to close.
func (fl *sessFlow) failed(in sessState) sessState {
	if in&sessLive != 0 {
		in = (in &^ sessLive) | sessDone
	}
	return in
}

func (fl *sessFlow) loop(in sessState, body func(sessState) sessState) sessState {
	out := in
	for i := 0; i < 3; i++ {
		next := out | body(out)
		if next == out {
			break
		}
		out = next
	}
	return out
}

func (fl *sessFlow) cases(in sessState, body *ast.BlockStmt) sessState {
	out := sessNone
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			s := in
			for _, e := range c.List {
				s = fl.scan(s, e)
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
			in = s
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		s := in
		for _, st := range stmts {
			s = fl.stmt(st, s)
		}
		out |= s
	}
	if !hasDefault {
		out |= in
	}
	return out
}

// sessEvent is one state-affecting occurrence inside an expression, applied
// in source order.
type sessEvent struct {
	pos  ast.Node
	kind int // 0 create, 1 close, 2 escape
}

const (
	evCreate = iota
	evClose
	evEscape
)

// scan applies the variable's transitions for every occurrence under e.
func (fl *sessFlow) scan(in sessState, e ast.Expr) sessState {
	if e == nil {
		return in
	}
	return fl.scanStmt(in, e)
}

func (fl *sessFlow) scanStmt(in sessState, n ast.Node) sessState {
	var events []sessEvent
	skip := map[ast.Node]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if skip[m] {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			// Capturing the variable in a closure transfers ownership (a
			// deferred closure Close, a t.Cleanup, a goroutine that closes).
			if fl.references(x) {
				events = append(events, sessEvent{pos: x, kind: evEscape})
			}
			return false
		case *ast.CallExpr:
			if x == fl.create {
				events = append(events, sessEvent{pos: x, kind: evCreate})
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && fl.isVar(id) {
					if sessionClosers[sel.Sel.Name] {
						events = append(events, sessEvent{pos: x, kind: evClose})
					}
					// A method call on the variable (Query, Stats, ...) is a
					// use, not an escape; don't descend into the receiver.
					skip[sel] = true
				}
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && fl.isVar(id) {
				// Field access through the variable: a use, not an escape.
				return false
			}
		case *ast.Ident:
			// Only a genuine use escapes; the defining occurrence (`:=` LHS,
			// ValueSpec name) is in Defs, not Uses.
			if fl.pass.Info.Uses[x] == fl.obj {
				events = append(events, sessEvent{pos: x, kind: evEscape})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos.Pos() < events[j].pos.Pos() })
	for _, ev := range events {
		in = fl.transition(in, ev)
	}
	return in
}

func (fl *sessFlow) transition(in sessState, ev sessEvent) sessState {
	switch ev.kind {
	case evCreate:
		if in&sessLive != 0 {
			fl.reportf(ev.pos.Pos(),
				"%s is reassigned while still open; close the previous Session/Stmt first", fl.name)
		}
		return sessLive
	case evClose, evEscape:
		return sessDone
	}
	return in
}

// isVar reports whether the identifier resolves to the tracked variable.
func (fl *sessFlow) isVar(id *ast.Ident) bool {
	return fl.pass.Info.Uses[id] == fl.obj || fl.pass.Info.Defs[id] == fl.obj
}

// references reports whether the tracked variable occurs anywhere under n.
func (fl *sessFlow) references(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && fl.isVar(id) {
			found = true
		}
		return !found
	})
	return found
}
