package lint

import (
	"go/ast"
	"go/types"
)

// AtomicSnapshot guards the lock-free reader protocol of DESIGN.md §7: the
// published store snapshot in package colorful lives in the DB's snap field
// and is read by queries with no lock held, so it must be declared with a
// sync/atomic type and touched exclusively through its atomic accessors
// (Load/Store/Swap/CompareAndSwap). A plain read or assignment — or a
// retyping of the field to a bare pointer — would be a data race that the
// race detector only catches when a test happens to interleave it.
var AtomicSnapshot = &Analyzer{
	Name: "atomicsnapshot",
	Doc:  "the published snapshot pointer is only touched via atomic Load/Store",
	Run:  runAtomicSnapshot,
}

// atomicAccessors are the sync/atomic methods through which the snap field
// may be used.
var atomicAccessors = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

func runAtomicSnapshot(pass *Pass) error {
	if pass.Pkg.Name() != "colorful" {
		return nil
	}
	for _, f := range pass.Files {
		checkSnapFieldDecl(pass, f)
		checkSnapUses(pass, f)
	}
	return nil
}

// checkSnapFieldDecl flags a snap struct field whose type does not come from
// sync/atomic — the retyping failure mode.
func checkSnapFieldDecl(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				if name.Name != "snap" {
					continue
				}
				tv, ok := pass.Info.Types[field.Type]
				if !ok || !isAtomicType(tv.Type) {
					pass.Reportf(field.Pos(),
						"snapshot field snap must have a sync/atomic type (atomic.Pointer), not %s: lock-free readers race on a plain pointer",
						tv.Type)
				}
			}
		}
		return true
	})
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// checkSnapUses walks with an ancestor stack so each `x.snap` selector can
// be judged by how its parent expression uses it: the only legal shape is
// x.snap.<atomic accessor>(...).
func checkSnapUses(pass *Pass, f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "snap" {
			return true
		}
		// Only field selections (not a method or package member named snap).
		if s := pass.Info.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if !snapUseIsAtomic(stack) {
			pass.Reportf(sel.Pos(),
				"snapshot pointer snap accessed without an atomic accessor; use snap.Load/snap.Store")
		}
		return true
	})
}

// snapUseIsAtomic inspects the two ancestors of the x.snap selector at the
// top of the stack: legal iff they form (x.snap).Accessor(...) — a selector
// of an atomic accessor that is itself immediately called.
func snapUseIsAtomic(stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || !atomicAccessors[parent.Sel.Name] {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == parent
}
