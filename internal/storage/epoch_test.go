package storage_test

import (
	"testing"
)

// The stats/schema epoch is what the compiled-plan cache keys its
// invalidation on: content-only updates must preserve it (so the cache stays
// hot under point updates), every structural mutation must move it, and no
// two structurally distinct store images may ever share a value.

func TestStatsEpochContentUpdatePreserves(t *testing.T) {
	s := summaryStore(t, 4)
	e0 := s.StatsEpoch()
	if e0 == 0 {
		t.Fatal("fresh store has zero epoch")
	}
	roots, err := s.Roots("red")
	if err != nil || len(roots) != 1 {
		t.Fatalf("Roots: %v %v", roots, err)
	}
	if err := s.UpdateContent(roots[0].Elem, "renamed"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetElemAttrs(roots[0].Elem, [][2]string{{"k", "v"}}); err != nil {
		t.Fatal(err)
	}
	if got := s.StatsEpoch(); got != e0 {
		t.Fatalf("content/attr update moved epoch %d -> %d", e0, got)
	}
}

func TestStatsEpochStructuralMutationBumps(t *testing.T) {
	s := summaryStore(t, 4)
	e0 := s.StatsEpoch()

	roots, err := s.Roots("red")
	if err != nil || len(roots) != 1 {
		t.Fatalf("Roots: %v %v", roots, err)
	}
	leaf, err := s.InsertLeafChild(roots[0], "extra", "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	e1 := s.StatsEpoch()
	if e1 == e0 {
		t.Fatalf("insert did not move epoch (%d)", e0)
	}

	if err := s.DeleteSubtree(leaf); err != nil {
		t.Fatal(err)
	}
	if e2 := s.StatsEpoch(); e2 == e1 {
		t.Fatalf("delete did not move epoch (%d)", e1)
	}
}

func TestStatsEpochCloneSharesUntilMutation(t *testing.T) {
	s := summaryStore(t, 4)
	c := s.Clone()
	if c.StatsEpoch() != s.StatsEpoch() {
		t.Fatalf("clone epoch %d != parent %d", c.StatsEpoch(), s.StatsEpoch())
	}
	roots, err := c.Roots("red")
	if err != nil || len(roots) != 1 {
		t.Fatalf("Roots: %v %v", roots, err)
	}
	if _, err := c.InsertLeafChild(roots[0], "extra", "x", nil); err != nil {
		t.Fatal(err)
	}
	if c.StatsEpoch() == s.StatsEpoch() {
		t.Fatal("clone mutation moved parent's epoch (or failed to move its own)")
	}
}

func TestStatsEpochProcessUnique(t *testing.T) {
	// Two independently built stores (e.g. a full Load rebuild replacing a
	// snapshot) must never collide on an epoch, even with identical content.
	a := summaryStore(t, 2)
	b := summaryStore(t, 2)
	if a.StatsEpoch() == b.StatsEpoch() {
		t.Fatalf("independent stores share epoch %d", a.StatsEpoch())
	}
}
