package storage_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/storage"
)

// fingerprint canonicalizes a store's logical content: every colored tree in
// pre-order with element ids, tags, content, attributes and colors.
func fingerprint(t *testing.T, s *storage.Store) string {
	t.Helper()
	var b strings.Builder
	for _, c := range s.Colors() {
		fmt.Fprintf(&b, "color %s\n", c)
		var walk func(sn storage.SNode, depth int)
		walk = func(sn storage.SNode, depth int) {
			e, err := s.Elem(sn.Elem)
			if err != nil {
				t.Fatalf("Elem(%d): %v", sn.Elem, err)
			}
			attrs := append([][2]string(nil), e.Attrs...)
			sort.Slice(attrs, func(i, j int) bool { return attrs[i][0] < attrs[j][0] })
			colors := s.ColorsOf(sn.Elem)
			fmt.Fprintf(&b, "%s%d %s content=%q attrs=%v colors=%v level=%d\n",
				strings.Repeat(" ", depth), sn.Elem, e.Tag, e.Content, attrs, colors, sn.Level)
			kids, err := s.ChildrenOf(sn)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range kids {
				walk(k, depth+1)
			}
		}
		roots, err := s.Roots(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range roots {
			walk(r, 1)
		}
	}
	return b.String()
}

// applyDrained clones base, applies db's drained change log, and compares
// the result with a fresh Load of db.
func applyDrained(t *testing.T, base *storage.Store, db *core.Database) *storage.Store {
	t.Helper()
	changes, overflow := db.DrainChanges()
	if overflow {
		t.Fatal("change log overflowed")
	}
	clone := base.Clone()
	if err := clone.ApplyChanges(changes); err != nil {
		t.Fatalf("ApplyChanges: %v", err)
	}
	fresh, err := storage.Load(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, clone), fingerprint(t, fresh); got != want {
		t.Fatalf("incrementally maintained store diverges from fresh load:\n--- incremental ---\n%s\n--- fresh ---\n%s", got, want)
	}
	return clone
}

// TestApplyChangesDifferential drives a scripted update sequence through
// clone+ApplyChanges and checks each step against a fresh bulk load.
func TestApplyChangesDifferential(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := m.DB
	base, err := storage.Load(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.DrainChanges() // discard construction history; base reflects it

	// 1. Content update.
	if err := db.SetText(m.Node("eve-votes"), "140000"); err != nil {
		t.Fatal(err)
	}
	base = applyDrained(t, base, db)

	// 2. Leaf insert (new element with text under an existing parent).
	if _, err := db.AddElementText(m.Node("eve"), "runtime", fixtures.Red, "138"); err != nil {
		t.Fatal(err)
	}
	base = applyDrained(t, base, db)

	// 3. Attribute set and removal.
	if _, err := db.SetAttribute(m.Node("eve"), "rating", "8.2"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetAttribute(m.Node("duck"), "studio", "Paramount"); err != nil {
		t.Fatal(err)
	}
	base = applyDrained(t, base, db)
	db.RemoveAttribute(m.Node("duck"), "studio")
	base = applyDrained(t, base, db)

	// 4. Next-color attach of an already-stored element.
	if err := db.Adopt(m.Node("y1957"), m.Node("duck"), fixtures.Green); err != nil {
		t.Fatal(err)
	}
	base = applyDrained(t, base, db)

	// 5. Subtree delete.
	if err := db.DeleteSubtree(m.Node("hot-role"), fixtures.Red); err != nil {
		t.Fatal(err)
	}
	base = applyDrained(t, base, db)

	// 6. Detach (element leaves one colored tree, stays in others).
	if err := db.Detach(m.Node("duck"), fixtures.Green); err != nil {
		t.Fatal(err)
	}
	base = applyDrained(t, base, db)

	// 7. New database color plus a root-level insert in it.
	db.AddDatabaseColor("yellow")
	n, err := db.NewElement("topic", "yellow")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(db.Document(), n, "yellow"); err != nil {
		t.Fatal(err)
	}
	base = applyDrained(t, base, db)

	// 8. A batch of mixed updates drained at once.
	if err := db.SetText(m.Node("hot-votes"), "12"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetAttribute(m.Node("hot"), "year", "1959"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddElementText(n, "name", "yellow", "classics"); err != nil {
		t.Fatal(err)
	}
	applyDrained(t, base, db)
}

// TestApplyChangesComplexFallsBack: changes without an incremental
// counterpart surface ErrDeltaUnsupported.
func TestApplyChangesComplexFallsBack(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := m.DB
	base, err := storage.Load(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.DrainChanges()

	// Rename re-keys the tag index: no incremental op.
	if err := db.Rename(m.Node("eve"), "film"); err != nil {
		t.Fatal(err)
	}
	changes, overflow := db.DrainChanges()
	if overflow {
		t.Fatal("unexpected overflow")
	}
	clone := base.Clone()
	if err := clone.ApplyChanges(changes); !errors.Is(err, storage.ErrDeltaUnsupported) {
		t.Fatalf("ApplyChanges = %v, want ErrDeltaUnsupported", err)
	}
}

// TestCloneLeavesSnapshotIntact: applying changes to a clone never mutates
// the frozen base snapshot.
func TestCloneLeavesSnapshotIntact(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := m.DB
	base, err := storage.Load(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.DrainChanges()
	before := fingerprint(t, base)

	if err := db.SetText(m.Node("eve-votes"), "999"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddElementText(m.Node("eve"), "tagline", fixtures.Red, "fasten your seatbelts"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteSubtree(m.Node("drama"), fixtures.Red); err != nil {
		t.Fatal(err)
	}
	changes, _ := db.DrainChanges()
	clone := base.Clone()
	if err := clone.ApplyChanges(changes); err != nil {
		t.Fatal(err)
	}
	if after := fingerprint(t, base); after != before {
		t.Fatalf("frozen snapshot changed:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
}
