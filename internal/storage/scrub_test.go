package storage_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colorfulxml/internal/storage"
)

// scrubFixture builds a directory holding a live checkpoint and one sealed
// WAL segment: commit, checkpoint (epoch 2), commit again, rotate (sealing
// segment 2 with content, opening 3).
func scrubFixture(t *testing.T) (*storage.Durable, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	db := buildShadow(t)
	commit(t, db, d, st)
	epoch, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InstallCheckpoint(epoch, st); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddElementText(db.NodeByID(1), "item", "paper", "sealed"); err != nil {
		t.Fatal(err)
	}
	commit(t, db, d, st)
	if _, err := d.Rotate(); err != nil {
		t.Fatal(err)
	}
	return d, dir
}

func TestScrubCleanPass(t *testing.T) {
	d, _ := scrubFixture(t)
	res, err := d.ScrubOnce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PassComplete {
		t.Fatalf("unbounded scrub did not complete a pass: %+v", res)
	}
	if res.Files != 2 || res.Bytes == 0 {
		t.Fatalf("scrubbed %d files / %d bytes, want 2 files (checkpoint + sealed segment)", res.Files, res.Bytes)
	}
	if len(res.Corruptions) != 0 {
		t.Fatalf("clean directory reported corruption: %+v", res.Corruptions)
	}
}

func TestScrubBudgetAndCursor(t *testing.T) {
	d, _ := scrubFixture(t)
	// A 1-byte budget admits exactly one file per increment.
	first, err := d.ScrubOnce(1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Files != 1 || first.PassComplete {
		t.Fatalf("budgeted increment = %+v, want 1 file and an unfinished pass", first)
	}
	second, err := d.ScrubOnce(1)
	if err != nil {
		t.Fatal(err)
	}
	if second.Files != 1 || !second.PassComplete {
		t.Fatalf("second increment = %+v, want the final file completing the pass", second)
	}
	// The pass restarts from the top.
	third, err := d.ScrubOnce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if third.Files != 2 || !third.PassComplete {
		t.Fatalf("restarted pass = %+v, want both files again", third)
	}
}

func TestScrubDetectsSegmentCorruption(t *testing.T) {
	d, dir := scrubFixture(t)
	// Flip a payload byte in the sealed segment (bit-rot at rest).
	seg := filepath.Join(dir, "wal-00000002.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := d.ScrubOnce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corruptions) != 1 {
		t.Fatalf("want 1 corruption, got %+v", res.Corruptions)
	}
	c := res.Corruptions[0]
	if c.File != "wal-00000002.log" || c.Offset < 0 {
		t.Fatalf("corruption not located: %+v", c)
	}
}

func TestScrubDetectsCheckpointCorruption(t *testing.T) {
	d, dir := scrubFixture(t)
	ckpt := filepath.Join(dir, "checkpoint-00000002.ckpt")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x80
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := d.ScrubOnce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corruptions) != 1 {
		t.Fatalf("want 1 corruption, got %+v", res.Corruptions)
	}
	if c := res.Corruptions[0]; !strings.HasPrefix(c.File, "checkpoint-") {
		t.Fatalf("corruption names %q, want the checkpoint", c.File)
	}
}

// TestScrubHealedByCheckpoint verifies the heal path: after a fresh
// checkpoint supersedes a corrupt sealed segment, the next pass is clean.
func TestScrubHealedByCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	db := buildShadow(t)
	commit(t, db, d, st)
	if _, err := d.Rotate(); err != nil { // seal segment 1 with content
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := d.ScrubOnce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corruptions) == 0 {
		t.Fatal("corruption not detected before heal")
	}
	// Heal: checkpoint the in-memory committed state; GC sweeps the
	// damaged segment and the next pass has nothing to complain about.
	epoch, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InstallCheckpoint(epoch, st); err != nil {
		t.Fatal(err)
	}
	res2, err := d.ScrubOnce(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Corruptions) != 0 {
		t.Fatalf("corruption survived the healing checkpoint: %+v", res2.Corruptions)
	}
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Fatal("damaged segment survived GC")
	}
}
