package storage

import (
	"fmt"

	"colorfulxml/internal/core"
)

// Load bulk-loads a logical MCT database into a physical store: element
// records are written once per element (in first-color document order),
// structural records per (element, color) in pre-order — so tag-index
// postings come out sorted by start position, as the structural join
// algorithms require.
func Load(db *core.Database, poolPages int) (*Store, error) {
	s := NewStore(poolPages, db.Colors()...)
	type rec struct {
		node *core.Node
		sn   SNode
	}
	for _, c := range db.Colors() {
		ctr := int64(gap)
		// First pass: compute intervals in pre-order (records are written in
		// pre-order afterwards so index postings come out start-sorted; End
		// is only known after the recursion).
		var recs []rec
		var walk func(n *core.Node, level int32, parentStart int64)
		walk = func(n *core.Node, level int32, parentStart int64) {
			for _, ch := range core.Children(n, c) {
				if ch.Kind() != core.KindElement {
					continue // text is the owning element's content
				}
				idx := len(recs)
				start := ctr
				ctr += gap
				recs = append(recs, rec{node: ch, sn: SNode{
					Elem:        ElemID(ch.ID()),
					Color:       c,
					Start:       start,
					Level:       level,
					ParentStart: parentStart,
				}})
				walk(ch, level+1, start)
				recs[idx].sn.End = ctr
				ctr += gap
			}
		}
		walk(db.Document(), 0, -1)
		for _, r := range recs {
			if err := s.ensureElem(r.node); err != nil {
				return nil, err
			}
			if err := s.insertStruct(r.node.Name(), core.Text(r.node), r.sn); err != nil {
				return nil, err
			}
		}
		s.maxStart[c] = ctr
	}
	// Count text nodes for Table 1's content-node accounting.
	return s, nil
}

// ensureElem writes the element record on first encounter.
func (s *Store) ensureElem(n *core.Node) error {
	id := ElemID(n.ID())
	if _, ok := s.elemLoc[id]; ok {
		return nil
	}
	var attrs [][2]string
	for _, a := range n.Attributes() {
		attrs = append(attrs, [2]string{a.Name(), a.Value()})
	}
	content := core.Text(n)
	rid, err := s.pages.AppendRecord(s.elemFile, encodeElem(id, n.Name(), content, attrs))
	if err != nil {
		return err
	}
	s.elemLoc[id] = rid
	if id >= s.nextID {
		s.nextID = id + 1
	}
	s.counts.Elements++
	s.counts.Attributes += len(attrs)
	if content != "" {
		s.counts.ContentNodes++
	}
	for _, a := range attrs {
		s.attrIdx.Insert(attrKey(a[0], a[1]), uint64(id))
	}
	return nil
}

// insertStruct writes a structural record and registers it in the
// directories and indexes.
func (s *Store) insertStruct(tag, content string, sn SNode) error {
	f, ok := s.structFile[sn.Color]
	if !ok {
		return fmt.Errorf("storage: unknown color %q", sn.Color)
	}
	rid, err := s.pages.AppendRecord(f, encodeStruct(sn))
	if err != nil {
		return err
	}
	s.structLoc[structKey{sn.Elem, sn.Color}] = rid
	// A new structural node may introduce a new root-anchored label path.
	s.invalidatePathSummaries()
	ref := packRID(rid)
	s.tagIdx.Insert(tagKey(sn.Color, tag), ref)
	if content != "" {
		s.contentIdx.Insert(contentKey(sn.Color, tag, content), ref)
	}
	s.startIdx.Insert(startKey(sn.Color, sn.Start), ref)
	s.counts.StructNodes++
	return nil
}
