package storage_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/pagestore"
	"colorfulxml/internal/serialize"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/wal"
)

// commit drains the shadow database's change log and applies it both to the
// WAL and to the live store — the same sequence the serving layer's durable
// commit hook performs.
func commit(t *testing.T, db *core.Database, d *storage.Durable, st *storage.Store) int {
	t.Helper()
	changes, overflow := db.DrainChanges()
	if overflow {
		t.Fatal("change log overflowed in test workload")
	}
	if len(changes) == 0 {
		return 0
	}
	if err := d.Append(changes); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyChanges(changes); err != nil {
		t.Fatal(err)
	}
	return len(changes)
}

func mustIso(t *testing.T, want *core.Database, st *storage.Store) {
	t.Helper()
	got, err := storage.Reconstruct(st)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := serialize.Isomorphic(want, got); !ok {
		t.Fatalf("recovered database differs: %s", why)
	}
}

func buildShadow(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase("paper", "talk")
	root, err := db.AddElement(db.Document(), "library", "paper")
	if err != nil {
		t.Fatal(err)
	}
	for i, title := range []string{"mct", "views", "colors"} {
		item, err := db.AddElementText(root, "item", "paper", title)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.SetAttribute(item, "rank", strings.Repeat("i", i+1)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := db.AddColor(item, "talk"); err != nil {
				t.Fatal(err)
			}
			if err := db.Append(db.Document(), item, "talk"); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestDurableOpenReplayCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")

	d, st, stats, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointLoaded || stats.SegmentsReplayed != 0 {
		t.Fatalf("fresh open reported recovery: %+v", stats)
	}
	db := buildShadow(t)
	n := commit(t, db, d, st)
	if n == 0 {
		t.Fatal("workload recorded no changes")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything comes back from the WAL alone.
	d2, st2, stats2, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CheckpointLoaded {
		t.Fatalf("no checkpoint was written, yet one loaded: %+v", stats2)
	}
	if stats2.RecordsReplayed != 1 || stats2.ChangesReplayed != n {
		t.Fatalf("replay stats = %+v, want 1 record / %d changes", stats2, n)
	}
	mustIso(t, db, st2)

	// Mutate in the second incarnation, close, reopen again: both sessions'
	// segments replay in order.
	if _, err := db.AddElementText(db.NodeByID(1), "item", "paper", "late"); err != nil {
		t.Fatal(err)
	}
	commit(t, db, d2, st2)
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st3, stats3, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats3.SegmentsReplayed < 2 {
		t.Fatalf("expected at least two segments, got %+v", stats3)
	}
	mustIso(t, db, st3)
}

func TestDurableCheckpointCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db := buildShadow(t)
	commit(t, db, d, st)

	epoch, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InstallCheckpoint(epoch, st); err != nil {
		t.Fatal(err)
	}

	// Changes after the checkpoint land in the new segment.
	if _, err := db.AddElementText(db.NodeByID(1), "item", "paper", "post-ckpt"); err != nil {
		t.Fatal(err)
	}
	postChanges := commit(t, db, d, st)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Pre-checkpoint segments are garbage-collected.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if e.Name() == "wal-00000001.log" {
			t.Fatal("segment 1 survived checkpoint GC")
		}
	}

	_, st2, stats, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CheckpointLoaded || stats.CheckpointEpoch != epoch {
		t.Fatalf("recovery did not use checkpoint %d: %+v", epoch, stats)
	}
	if stats.ChangesReplayed != postChanges {
		t.Fatalf("replayed %d changes, want only the %d post-checkpoint ones",
			stats.ChangesReplayed, postChanges)
	}
	mustIso(t, db, st2)
}

// lastSegment returns the path of the highest-numbered WAL segment with
// content.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			if info, err := e.Info(); err == nil && info.Size() > 0 && name > best {
				best = name
			}
		}
	}
	if best == "" {
		t.Fatal("no non-empty WAL segment found")
	}
	return filepath.Join(dir, best)
}

func TestDurableTornTailDropped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One committed batch, then a second whose tail we tear off.
	db := buildShadow(t)
	commit(t, db, d, st)
	shadowAtOne := buildShadow(t) // same content as db before the second batch
	if _, err := db.AddElementText(db.NodeByID(1), "item", "paper", "torn-away"); err != nil {
		t.Fatal(err)
	}
	commit(t, db, d, st)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, st2, stats, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TornTail || stats.RecordsReplayed != 1 {
		t.Fatalf("want torn tail with 1 surviving record, got %+v", stats)
	}
	mustIso(t, shadowAtOne, st2)
}

func TestDurableDetectsWALCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db := buildShadow(t)
	commit(t, db, d, st)
	if _, err := db.AddElementText(db.NodeByID(1), "item", "paper", "second"); err != nil {
		t.Fatal(err)
	}
	commit(t, db, d, st)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the FIRST record's payload: damage followed by a
	// valid record is corruption, not a torn tail.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = storage.OpenDurable(dir, storage.DurableOptions{})
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("got %v, want wal.ErrCorrupt", err)
	}
	var ce *wal.CorruptError
	if !errors.As(err, &ce) || !strings.HasPrefix(ce.Segment, "wal-") {
		t.Fatalf("corruption error does not name the segment: %v", err)
	}
}

func TestDurableDetectsCheckpointCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db := buildShadow(t)
	commit(t, db, d, st)
	epoch, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InstallCheckpoint(epoch, st); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(dir, "checkpoint-00000002.ckpt")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x80
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = storage.OpenDurable(dir, storage.DurableOptions{})
	if !errors.Is(err, pagestore.ErrChecksum) {
		t.Fatalf("got %v, want pagestore.ErrChecksum", err)
	}
	if !strings.Contains(err.Error(), "checkpoint-00000002.ckpt") {
		t.Fatalf("error does not name the checkpoint file: %v", err)
	}
}

func TestReconstructPreservesIdentity(t *testing.T) {
	db := buildShadow(t)
	st, err := storage.Load(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := storage.Reconstruct(st)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := serialize.Isomorphic(db, rec); !ok {
		t.Fatalf("reconstructed database differs: %s", why)
	}
	// Element identities survive: every element of the original exists in
	// the copy with the same tag and colors.
	for id := core.NodeID(1); id <= 16; id++ {
		orig := db.NodeByID(id)
		if orig == nil || orig.Kind() != core.KindElement {
			continue
		}
		got := rec.NodeByID(id)
		if got == nil || got.Kind() != core.KindElement || got.Name() != orig.Name() {
			t.Fatalf("element %d: original %v, reconstructed %v", id, orig, got)
		}
	}
}
