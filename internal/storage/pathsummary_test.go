package storage_test

import (
	"fmt"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/storage"
)

// summaryStore: <shop> with n <item> children, each holding a <name> leaf,
// plus one <name> directly under the root (a second distinct path).
func summaryStore(t *testing.T, n int) *storage.Store {
	t.Helper()
	db := core.NewDatabase("red")
	root, err := db.AddElement(db.Document(), "shop", "red")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddElementText(root, "name", "red", "the shop"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		item, err := db.AddElement(root, "item", "red")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.AddElementText(item, "name", "red", fmt.Sprintf("n%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := storage.Load(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func steps(spec ...storage.PathStep) []storage.PathStep { return spec }

func TestPathSummaryCounts(t *testing.T) {
	s := summaryStore(t, 8)
	ps, err := s.PathSummary("red")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct root paths: shop, shop/name, shop/item, shop/item/name.
	if got := ps.Paths(); got != 4 {
		t.Fatalf("Paths() = %d, want 4", got)
	}
	for _, tc := range []struct {
		pat  []storage.PathStep
		want int
	}{
		// //name matches both the shop-level and the item-level names.
		{steps(storage.PathStep{Tag: "name", Desc: true}), 9},
		// //item/name matches only item-level names.
		{steps(storage.PathStep{Tag: "item", Desc: true}, storage.PathStep{Tag: "name"}), 8},
		// //shop/name requires name as a direct child of shop.
		{steps(storage.PathStep{Tag: "shop", Desc: true}, storage.PathStep{Tag: "name"}), 1},
		// //shop//name reaches both depths.
		{steps(storage.PathStep{Tag: "shop", Desc: true}, storage.PathStep{Tag: "name", Desc: true}), 9},
		// /name: no root element is a name.
		{steps(storage.PathStep{Tag: "name"}), 0},
		// /shop: the root element.
		{steps(storage.PathStep{Tag: "shop"}), 1},
	} {
		if got := ps.Count(tc.pat); got != tc.want {
			t.Errorf("Count(%s) = %d, want %d", storage.PathString(tc.pat), got, tc.want)
		}
		if got := len(ps.Match(tc.pat)); got != tc.want {
			t.Errorf("len(Match(%s)) = %d, want %d", storage.PathString(tc.pat), got, tc.want)
		}
	}
}

func TestPathSummaryCacheAndInvalidation(t *testing.T) {
	s := summaryStore(t, 4)
	ps1, err := s.PathSummary("red")
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := s.PathSummary("red")
	if err != nil {
		t.Fatal(err)
	}
	if ps1 != ps2 {
		t.Fatal("second probe should hit the cache")
	}

	// Content updates preserve every label path: cache survives.
	items, err := s.ScanTag("red", "name")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateContent(items[0].Elem, "renamed"); err != nil {
		t.Fatal(err)
	}
	ps3, err := s.PathSummary("red")
	if err != nil {
		t.Fatal(err)
	}
	if ps3 != ps1 {
		t.Fatal("content update should not invalidate the path summary")
	}

	// Structural deletion rebuilds with updated counts.
	nodes, err := s.ScanTag("red", "item")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSubtree(nodes[0]); err != nil {
		t.Fatal(err)
	}
	ps4, err := s.PathSummary("red")
	if err != nil {
		t.Fatal(err)
	}
	if ps4 == ps1 {
		t.Fatal("structural deletion must invalidate the path summary")
	}
	pat := steps(storage.PathStep{Tag: "item", Desc: true}, storage.PathStep{Tag: "name"})
	if got := ps4.Count(pat); got != 3 {
		t.Fatalf("post-delete Count(//item/name) = %d, want 3", got)
	}
}

func TestPathSummarySharedWithClone(t *testing.T) {
	s := summaryStore(t, 4)
	ps1, err := s.PathSummary("red")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	psc, err := c.PathSummary("red")
	if err != nil {
		t.Fatal(err)
	}
	if psc != ps1 {
		t.Fatal("clone should share the immutable cached summary")
	}
	// A structural mutation in the clone invalidates only the clone's cache.
	nodes, err := c.ScanTag("red", "item")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSubtree(nodes[0]); err != nil {
		t.Fatal(err)
	}
	psp, err := s.PathSummary("red")
	if err != nil {
		t.Fatal(err)
	}
	if psp != ps1 {
		t.Fatal("parent cache must survive a clone's mutation")
	}
}

func TestPathSummaryUnknownColor(t *testing.T) {
	s := summaryStore(t, 2)
	ps, err := s.PathSummary("blue")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Paths() != 0 || ps.Count(steps(storage.PathStep{Tag: "shop", Desc: true})) != 0 {
		t.Fatal("unknown color should yield an empty summary")
	}
}
