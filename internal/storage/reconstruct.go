package storage

import (
	"fmt"
	"sort"

	"colorfulxml/internal/core"
)

// Reconstruct rebuilds a core.Database from a recovered physical store. It is
// the inverse of Load for everything the store materializes: elements keep
// their NodeIDs (so WAL replay, which addresses elements by id, stays valid
// after recovery), every colored tree is rebuilt in document order, and
// attributes and text content are reattached last so text nodes land in all
// of their owner's colors.
//
// Store-invisible state — detached fragments, comments, processing
// instructions — is not in the store and therefore not recovered; this is the
// documented durability boundary.
func Reconstruct(s *Store) (*core.Database, error) {
	db := core.NewDatabase(s.colors...)

	ids := make([]ElemID, 0, len(s.elemLoc))
	for id := range s.elemLoc {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	nodes := make(map[ElemID]*core.Node, len(ids))
	infos := make(map[ElemID]ElemInfo, len(ids))
	for _, id := range ids {
		e, err := s.Elem(id)
		if err != nil {
			return nil, fmt.Errorf("storage: reconstruct: %w", err)
		}
		n, err := db.RestoreElement(core.NodeID(id), e.Tag)
		if err != nil {
			return nil, fmt.Errorf("storage: reconstruct: %w", err)
		}
		nodes[id] = n
		infos[id] = e
	}

	var attach func(parent *core.Node, sn SNode, c core.Color) error
	attach = func(parent *core.Node, sn SNode, c core.Color) error {
		n, ok := nodes[sn.Elem]
		if !ok {
			return fmt.Errorf("storage: reconstruct: color %q references missing element %d", c, sn.Elem)
		}
		if !n.HasColor(c) {
			if err := db.AddColor(n, c); err != nil {
				return fmt.Errorf("storage: reconstruct: %w", err)
			}
		}
		if err := db.Append(parent, n, c); err != nil {
			return fmt.Errorf("storage: reconstruct: %w", err)
		}
		children, err := s.ChildrenOf(sn)
		if err != nil {
			return fmt.Errorf("storage: reconstruct: %w", err)
		}
		for _, ch := range children {
			if err := attach(n, ch, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range s.colors {
		roots, err := s.Roots(c)
		if err != nil {
			return nil, fmt.Errorf("storage: reconstruct: %w", err)
		}
		for _, r := range roots {
			if err := attach(db.Document(), r, c); err != nil {
				return nil, err
			}
		}
	}

	// Attributes and text go last: AppendText inserts the text node into
	// every color the element holds, so all colors must be attached first.
	for _, id := range ids {
		e, n := infos[id], nodes[id]
		for _, a := range e.Attrs {
			if _, err := db.SetAttribute(n, a[0], a[1]); err != nil {
				return nil, fmt.Errorf("storage: reconstruct: %w", err)
			}
		}
		if e.Content != "" {
			if _, err := db.AppendText(n, e.Content); err != nil {
				return nil, fmt.Errorf("storage: reconstruct: %w", err)
			}
		}
	}

	// The rebuild itself generated change-log noise; the recovered database
	// starts with a clean log.
	db.DrainChanges()
	return db, nil
}
