package storage

import (
	"fmt"
	"strings"

	"colorfulxml/internal/core"
	"colorfulxml/internal/pagestore"
)

// readStructRef reads a structural record through the buffer pool.
func (s *Store) readStructRef(ref uint64, c core.Color) (SNode, error) {
	buf, err := s.pages.ReadRecord(unpackRID(ref))
	if err != nil {
		return SNode{}, err
	}
	return decodeStruct(buf, c), nil
}

// TagRefs returns the tag index posting list for (c, tag) without reading
// any records: packed structural record refs in start order. Callers resolve
// individual refs with StructByRef, which lets iterators stream one record at
// a time instead of materializing the whole scan.
func (s *Store) TagRefs(c core.Color, tag string) []uint64 {
	obsIndexProbes.Inc()
	return s.tagIdx.Get(tagKey(c, tag))
}

// ContentRefs returns the content index posting list for (c, tag, value)
// without reading any records (start order).
func (s *Store) ContentRefs(c core.Color, tag, value string) []uint64 {
	obsIndexProbes.Inc()
	return s.contentIdx.Get(contentKey(c, tag, value))
}

// StructByRef resolves one packed structural record ref (from TagRefs or
// ContentRefs) through the buffer pool.
func (s *Store) StructByRef(ref uint64, c core.Color) (SNode, error) {
	return s.readStructRef(ref, c)
}

// ScanTag returns all structural nodes with the given tag in color c, in
// start (local document) order.
func (s *Store) ScanTag(c core.Color, tag string) ([]SNode, error) {
	obsIndexProbes.Inc()
	refs := s.tagIdx.Get(tagKey(c, tag))
	out := make([]SNode, 0, len(refs))
	for _, ref := range refs {
		sn, err := s.readStructRef(ref, c)
		if err != nil {
			return nil, err
		}
		out = append(out, sn)
	}
	return out, nil
}

// CountTag returns the number of structural nodes with a tag in color c
// without reading them (index-only).
func (s *Store) CountTag(c core.Color, tag string) int {
	return len(s.tagIdx.Get(tagKey(c, tag)))
}

// CountContent returns the number of structural nodes with a tag whose
// content equals value in color c without reading them (index-only), the
// equality-selectivity statistic of the plan compiler's cost model.
func (s *Store) CountContent(c core.Color, tag, value string) int {
	return len(s.contentIdx.Get(contentKey(c, tag, value)))
}

// ElemInfo is a decoded element record.
type ElemInfo struct {
	ID      ElemID
	Tag     string
	Content string
	Attrs   [][2]string
}

// Attr returns the named attribute's value, or "".
func (e ElemInfo) Attr(name string) string {
	for _, a := range e.Attrs {
		if a[0] == name {
			return a[1]
		}
	}
	return ""
}

// Elem reads an element record through the buffer pool.
func (s *Store) Elem(id ElemID) (ElemInfo, error) {
	rid, ok := s.elemLoc[id]
	if !ok {
		return ElemInfo{}, fmt.Errorf("storage: element %d: %w", id, pagestore.ErrNoSuchRecord)
	}
	buf, err := s.pages.ReadRecord(rid)
	if err != nil {
		return ElemInfo{}, err
	}
	eid, tag, content, attrs := decodeElem(buf)
	return ElemInfo{ID: eid, Tag: tag, Content: content, Attrs: attrs}, nil
}

// ContentOf reads an element's text content.
func (s *Store) ContentOf(id ElemID) (string, error) {
	e, err := s.Elem(id)
	if err != nil {
		return "", err
	}
	return e.Content, nil
}

// EqContent returns structural nodes with the given tag whose content equals
// value, via the content index (no scan).
func (s *Store) EqContent(c core.Color, tag, value string) ([]SNode, error) {
	obsIndexProbes.Inc()
	refs := s.contentIdx.Get(contentKey(c, tag, value))
	out := make([]SNode, 0, len(refs))
	for _, ref := range refs {
		sn, err := s.readStructRef(ref, c)
		if err != nil {
			return nil, err
		}
		out = append(out, sn)
	}
	return out, nil
}

// ScanContains scans all nodes of a tag in color c and keeps those whose
// content satisfies pred — the access path for contains() predicates, which
// the content index cannot answer. Every candidate's element record is read
// (a real content fetch), so the page cost is proportional to the tag's
// cardinality.
func (s *Store) ScanContains(c core.Color, tag string, pred func(content string) bool) ([]SNode, error) {
	nodes, err := s.ScanTag(c, tag)
	if err != nil {
		return nil, err
	}
	out := nodes[:0:0]
	for _, sn := range nodes {
		content, err := s.ContentOf(sn.Elem)
		if err != nil {
			return nil, err
		}
		if pred(content) {
			out = append(out, sn)
		}
	}
	return out, nil
}

// EqAttr returns the element ids whose attribute name equals value, via the
// attribute index.
func (s *Store) EqAttr(name, value string) []ElemID {
	obsIndexProbes.Inc()
	refs := s.attrIdx.Get(attrKey(name, value))
	out := make([]ElemID, len(refs))
	for i, r := range refs {
		out[i] = ElemID(r)
	}
	return out
}

// CrossTree is the color-transition access method of Section 6.2: it follows
// the element's back-link to its structural node in the target color. ok is
// false when the element does not participate in that colored tree.
func (s *Store) CrossTree(id ElemID, to core.Color) (SNode, bool, error) {
	rid, ok := s.structLoc[structKey{id, to}]
	if !ok {
		return SNode{}, false, nil
	}
	buf, err := s.pages.ReadRecord(rid)
	if err != nil {
		return SNode{}, false, err
	}
	return decodeStruct(buf, to), true, nil
}

// ColorsOf returns the colors an element participates in.
func (s *Store) ColorsOf(id ElemID) []core.Color {
	var out []core.Color
	for _, c := range s.colors {
		if _, ok := s.structLoc[structKey{id, c}]; ok {
			out = append(out, c)
		}
	}
	return out
}

// ParentOf returns the parent structural node of sn in its color.
func (s *Store) ParentOf(sn SNode) (SNode, bool, error) {
	if sn.ParentStart < 0 {
		return SNode{}, false, nil
	}
	obsIndexProbes.Inc()
	refs := s.startIdx.Get(startKey(sn.Color, sn.ParentStart))
	if len(refs) == 0 {
		return SNode{}, false, fmt.Errorf("storage: dangling parent start %d in %q", sn.ParentStart, sn.Color)
	}
	p, err := s.readStructRef(refs[0], sn.Color)
	if err != nil {
		return SNode{}, false, err
	}
	return p, true, nil
}

// Subtree returns the descendants of sn (excluding sn) in start order.
func (s *Store) Subtree(sn SNode) ([]SNode, error) {
	var out []SNode
	var scanErr error
	obsIndexProbes.Inc()
	s.startIdx.Range(startKey(sn.Color, sn.Start+1), startKey(sn.Color, sn.End), func(_ string, refs []uint64) bool {
		for _, ref := range refs {
			d, err := s.readStructRef(ref, sn.Color)
			if err != nil {
				scanErr = err
				return false
			}
			out = append(out, d)
		}
		return true
	})
	return out, scanErr
}

// ChildrenOf returns the direct children of sn in start order.
func (s *Store) ChildrenOf(sn SNode) ([]SNode, error) {
	desc, err := s.Subtree(sn)
	if err != nil {
		return nil, err
	}
	out := desc[:0:0]
	for _, d := range desc {
		if d.ParentStart == sn.Start {
			out = append(out, d)
		}
	}
	return out, nil
}

// Roots returns the root structural nodes of a colored tree (children of the
// document) in start order.
func (s *Store) Roots(c core.Color) ([]SNode, error) {
	var out []SNode
	var scanErr error
	obsIndexProbes.Inc()
	s.startIdx.Prefix(string(c)+"|", func(_ string, refs []uint64) bool {
		for _, ref := range refs {
			sn, err := s.readStructRef(ref, c)
			if err != nil {
				scanErr = err
				return false
			}
			if sn.ParentStart == -1 {
				out = append(out, sn)
			}
		}
		return true
	})
	return out, scanErr
}

// StructOf returns the structural node of an element in a color (same as
// CrossTree; provided for readability at call sites that are not joins).
func (s *Store) StructOf(id ElemID, c core.Color) (SNode, bool, error) {
	return s.CrossTree(id, c)
}

// ContainsFold reports substring containment, the semantics used by the
// workload's contains() predicates.
func ContainsFold(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}
