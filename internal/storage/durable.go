package storage

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"colorfulxml/internal/core"
	"colorfulxml/internal/vfs"
	"colorfulxml/internal/wal"
)

// This file orchestrates durability: a directory holding a MANIFEST, one
// checkpoint, and a run of WAL segments, with the invariant that the
// committed state is always reconstructible as
//
//	checkpoint-E  +  replay of wal segments E, E+1, ..., L (ascending)
//
// where E is the epoch named by MANIFEST. Segment numbers and checkpoint
// epochs share one counter: a checkpoint installed under epoch E captures
// everything up to the end of segment E-1, so exactly the segments >= E
// remain relevant and everything below E is garbage.
//
// Crash safety comes from ordering, not locking:
//   - a commit is acknowledged only after its WAL record is written (and,
//     under SyncAlways, fsynced) to the current segment;
//   - a checkpoint first rotates to a fresh segment E (created and
//     directory-fsynced before any post-rotation commit is acknowledged),
//     then writes checkpoint-E.ckpt.tmp, fsyncs, renames into place, fsyncs
//     the directory, and only then moves MANIFEST to E — itself via
//     tmp+rename, so MANIFEST always names a fully installed checkpoint;
//   - garbage collection runs last and is pure cleanup: a crash anywhere
//     leaves either the old epoch fully intact or the new one.

const manifestName = "MANIFEST"

// manifestMagic leads the MANIFEST file; the epoch follows on the same line.
const manifestMagic = "MCTDB1"

func segFile(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }
func ckptFile(ep uint64) string { return fmt.Sprintf("checkpoint-%08d.ckpt", ep) }

func parseNumbered(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// FS is the filesystem to operate on; nil means the real OS filesystem.
	FS vfs.FS
	// PoolPages sizes the recovered store's buffer pool (0: default).
	PoolPages int
	// Sync is the WAL fsync policy. The default (SyncAlways) makes every
	// acknowledged commit crash-durable.
	Sync wal.SyncPolicy
	// Retry is the transient-failure retry schedule applied to WAL flushes
	// and checkpoint installation (zero: fail on the first error).
	Retry vfs.RetryPolicy
}

// RecoveryStats reports what OpenDurable found and replayed.
type RecoveryStats struct {
	// CheckpointEpoch is the MANIFEST epoch the store was recovered from
	// (1 with no checkpoint on a fresh or young directory).
	CheckpointEpoch uint64
	// CheckpointLoaded reports whether a checkpoint file was loaded (false
	// means recovery started from an empty store).
	CheckpointLoaded bool
	// SegmentsReplayed counts WAL segments read back.
	SegmentsReplayed int
	// RecordsReplayed counts committed WAL records applied.
	RecordsReplayed int
	// ChangesReplayed counts individual changes inside those records.
	ChangesReplayed int
	// TornTail reports that the final segment ended in a torn record,
	// which was discarded (an in-flight, unacknowledged commit).
	TornTail bool
	// TornSegment and TornOffset locate the discarded tail.
	TornSegment string
	TornOffset  int64
}

// Durable is the write half of a durable store directory: the open WAL
// segment plus the checkpoint installation protocol. The caller owns
// serialization of commits against rotation (colorful.DB uses its writer
// lock); concurrent Append calls are safe and group-commit together.
type Durable struct {
	fs     vfs.FS
	dir    string
	policy wal.SyncPolicy
	retry  vfs.RetryPolicy
	pool   int

	mu  sync.RWMutex // Append holds R, Rotate/Reseal/Close hold W
	w   *wal.Writer
	seg uint64

	scrubMu    sync.Mutex // serializes ScrubOnce; guards the cursor below
	scrubEpoch uint64     // epoch the in-progress scrub pass started under
	scrubPos   int        // next file index within that pass
}

// OpenDurable opens (creating if necessary) a durable store directory,
// recovers the committed state, and leaves a fresh WAL segment open for new
// commits. The returned Store is the recovered physical state; callers
// wanting the node-level view run Reconstruct on it.
func OpenDurable(dir string, opts DurableOptions) (*Durable, *Store, RecoveryStats, error) {
	fs := opts.FS
	if fs == nil {
		fs = vfs.OS
	}
	var stats RecoveryStats
	fail := func(err error) (*Durable, *Store, RecoveryStats, error) {
		return nil, nil, stats, err
	}
	if err := fs.MkdirAll(dir); err != nil {
		return fail(fmt.Errorf("storage: open durable %s: %w", dir, err))
	}

	// MANIFEST -> epoch. Absent means a fresh (or never-checkpointed)
	// directory at epoch 1.
	epoch := uint64(1)
	manifestSeen := false
	if data, err := fs.ReadFile(vfs.Join(dir, manifestName)); err == nil {
		e, perr := parseManifest(data)
		if perr != nil {
			return fail(fmt.Errorf("storage: %s/%s: %w", dir, manifestName, perr))
		}
		epoch, manifestSeen = e, true
	} else if !vfs.IsNotExist(err) {
		return fail(fmt.Errorf("storage: open durable %s: %w", dir, err))
	}
	stats.CheckpointEpoch = epoch

	// Checkpoint. Required whenever MANIFEST names an epoch past the
	// initial one; at epoch 1 its absence means "start empty".
	var st *Store
	ckpt := vfs.Join(dir, ckptFile(epoch))
	if data, err := fs.ReadFile(ckpt); err == nil {
		st, err = ReadCheckpoint(bytes.NewReader(data), opts.PoolPages)
		if err != nil {
			return fail(fmt.Errorf("storage: %s: %w", ckpt, err))
		}
		stats.CheckpointLoaded = true
	} else if !vfs.IsNotExist(err) {
		return fail(fmt.Errorf("storage: open durable %s: %w", dir, err))
	} else if manifestSeen && epoch != 1 {
		return fail(fmt.Errorf("storage: %s names epoch %d but %s is missing", manifestName, epoch, ckptFile(epoch)))
	} else {
		st = NewStore(opts.PoolPages)
	}

	// Inventory the directory: live segments (>= epoch) to replay, and
	// stale leftovers from an interrupted GC or checkpoint to sweep later.
	names, err := fs.ReadDir(dir)
	if err != nil {
		return fail(fmt.Errorf("storage: open durable %s: %w", dir, err))
	}
	var segs []uint64
	var stale []string
	for _, name := range names {
		if n, ok := parseNumbered(name, "wal-", ".log"); ok {
			if n >= epoch {
				segs = append(segs, n)
			} else {
				stale = append(stale, name)
			}
			continue
		}
		if n, ok := parseNumbered(name, "checkpoint-", ".ckpt"); ok && n != epoch {
			stale = append(stale, name)
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			stale = append(stale, name)
		}
	}
	// ReadDir is sorted and the fixed-width numbering makes lexicographic
	// order numeric, but do not depend on a vfs implementation detail.
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return fail(fmt.Errorf("storage: WAL segment gap: have %s and %s",
				segFile(segs[i-1]), segFile(segs[i])))
		}
	}
	if len(segs) > 0 && segs[0] != epoch && stats.CheckpointLoaded {
		return fail(fmt.Errorf("storage: checkpoint epoch %d but first WAL segment is %s",
			epoch, segFile(segs[0])))
	}

	// Replay, oldest first. Only the last segment may end torn; record
	// sequence numbers must be contiguous across segment boundaries.
	var nextSeq uint64
	for i, seq := range segs {
		name := segFile(seq)
		data, err := fs.ReadFile(vfs.Join(dir, name))
		if err != nil {
			return fail(fmt.Errorf("storage: open durable %s: %w", dir, err))
		}
		res, err := wal.ReadSegment(data, name, i == len(segs)-1)
		if err != nil {
			return fail(err)
		}
		stats.SegmentsReplayed++
		if res.Torn {
			stats.TornTail = true
			stats.TornSegment = name
			stats.TornOffset = res.TornOffset
			// Truncate the torn tail now, via tmp+rename: once this
			// incarnation rotates, the segment is no longer final, and a
			// torn record surviving in a non-final segment would read as
			// hard corruption on the next recovery. A crash mid-truncation
			// leaves either the original file (final again, tail re-dropped)
			// or the clean prefix — both recoverable.
			if err := replaceFile(fs, dir, name, data[:res.TornOffset]); err != nil {
				return fail(fmt.Errorf("storage: truncating torn tail of %s: %w", name, err))
			}
		}
		for _, rec := range res.Records {
			if nextSeq != 0 && rec.Seq != nextSeq {
				return fail(&wal.CorruptError{Segment: name, Offset: rec.Offset,
					Reason: fmt.Sprintf("record sequence %d, want %d", rec.Seq, nextSeq)})
			}
			nextSeq = rec.Seq + 1
			changes, err := wal.DecodeChanges(rec.Payload)
			if err != nil {
				return fail(&wal.CorruptError{Segment: name, Offset: rec.Offset,
					Reason: fmt.Sprintf("undecodable change batch: %v", err)})
			}
			if err := st.ApplyChanges(changes); err != nil {
				return fail(fmt.Errorf("storage: replaying %s record %d: %w", name, rec.Seq, err))
			}
			stats.RecordsReplayed++
			stats.ChangesReplayed += len(changes)
		}
	}
	if nextSeq == 0 {
		nextSeq = 1
	}

	// Rotate to a fresh segment for this incarnation's commits. Creating it
	// (and fsyncing the directory) before returning means a later recovery
	// never sees a gap where this session's segment should be.
	newSeg := epoch
	if len(segs) > 0 {
		newSeg = segs[len(segs)-1] + 1
	}
	f, err := fs.Create(vfs.Join(dir, segFile(newSeg)))
	if err != nil {
		return fail(fmt.Errorf("storage: open durable %s: %w", dir, err))
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return fail(fmt.Errorf("storage: open durable %s: %w", dir, err))
	}
	w := wal.NewWriter(f, segFile(newSeg), nextSeq, opts.Sync)
	w.SetRetry(opts.Retry)
	d := &Durable{
		fs:     fs,
		dir:    dir,
		policy: opts.Sync,
		retry:  opts.Retry,
		pool:   opts.PoolPages,
		w:      w,
		seg:    newSeg,
	}
	// Sweep leftovers from interrupted checkpoints; best-effort.
	for _, name := range stale {
		_ = fs.Remove(vfs.Join(dir, name))
	}
	return d, st, stats, nil
}

func parseManifest(data []byte) (uint64, error) {
	line := strings.TrimSpace(string(data))
	rest, ok := strings.CutPrefix(line, manifestMagic+" ")
	if !ok {
		return 0, fmt.Errorf("bad manifest contents %q", line)
	}
	epoch, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
	if err != nil || epoch == 0 {
		return 0, fmt.Errorf("bad manifest epoch %q", rest)
	}
	return epoch, nil
}

// Append commits one change batch to the WAL: the batch is encoded,
// checksummed, appended to the open segment, and (under SyncAlways) fsynced
// before Append returns. Concurrent callers group-commit.
func (d *Durable) Append(changes []core.Change) error {
	payload := wal.EncodeChanges(changes)
	d.mu.RLock()
	w := d.w
	d.mu.RUnlock()
	if w == nil {
		return errors.New("storage: durable store is closed")
	}
	_, err := w.Append(payload)
	return err
}

// LogBytes returns the size of the open WAL segment, the signal for
// auto-checkpoint thresholds.
func (d *Durable) LogBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.w == nil {
		return 0
	}
	return d.w.Size()
}

// Segment returns the open WAL segment's number.
func (d *Durable) Segment() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.seg
}

// Rotate seals the open segment and starts the next one, returning the new
// segment's number — the epoch a checkpoint of the store's current state
// must be installed under (see InstallCheckpoint). The caller must hold its
// writer lock: no Append may be in flight, and the store image captured for
// the checkpoint must be exactly the state at rotation.
func (d *Durable) Rotate() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.w == nil {
		return 0, errors.New("storage: durable store is closed")
	}
	nextSeq := d.w.NextSeq()
	if err := d.w.Close(); err != nil {
		return 0, fmt.Errorf("storage: sealing %s: %w", segFile(d.seg), err)
	}
	newSeg := d.seg + 1
	var f vfs.File
	err := retrying(d.retry, func() error {
		var err error
		f, err = d.fs.Create(vfs.Join(d.dir, segFile(newSeg)))
		if err != nil {
			return err
		}
		if err := d.fs.SyncDir(d.dir); err != nil {
			f.Close()
			return err
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("storage: rotating WAL: %w", err)
	}
	w := wal.NewWriter(f, segFile(newSeg), nextSeq, d.policy)
	w.SetRetry(d.retry)
	d.w = w
	d.seg = newSeg
	return newSeg, nil
}

// InstallCheckpoint durably installs st as the checkpoint for the given
// epoch (a segment number returned by Rotate; st must capture the state at
// exactly that rotation). It may run concurrently with Appends to the
// current segment — the image is already frozen. On success all state below
// the epoch is garbage-collected.
func (d *Durable) InstallCheckpoint(epoch uint64, st *Store) error {
	// The whole installation sequence up to the manifest move is retried as
	// one unit on transient failure: every step before the final rename is
	// re-runnable from scratch (the tmp files are simply rewritten), and the
	// renames themselves are idempotent.
	if err := retrying(d.retry, func() error { return d.installOnce(epoch, st) }); err != nil {
		return err
	}
	// Point of no return passed: MANIFEST names the new epoch. Everything
	// below it is unreferenced; removal is best-effort cleanup.
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	for _, name := range names {
		if n, ok := parseNumbered(name, "wal-", ".log"); ok && n < epoch {
			_ = d.fs.Remove(vfs.Join(d.dir, name))
		}
		if n, ok := parseNumbered(name, "checkpoint-", ".ckpt"); ok && n < epoch {
			_ = d.fs.Remove(vfs.Join(d.dir, name))
		}
	}
	return nil
}

// installOnce runs one attempt of the checkpoint installation sequence:
// tmp + fsync + rename + dir-fsync for the checkpoint image, then the same
// dance moving MANIFEST to the new epoch.
func (d *Durable) installOnce(epoch uint64, st *Store) error {
	final := vfs.Join(d.dir, ckptFile(epoch))
	tmp := final + ".tmp"
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := st.WriteCheckpoint(f); err != nil {
		f.Close()
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := d.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	return d.writeManifest(epoch)
}

func (d *Durable) writeManifest(epoch uint64) error {
	tmp := vfs.Join(d.dir, manifestName+".tmp")
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: manifest: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%s %d\n", manifestMagic, epoch); err != nil {
		f.Close()
		return fmt.Errorf("storage: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: manifest: %w", err)
	}
	if err := d.fs.Rename(tmp, vfs.Join(d.dir, manifestName)); err != nil {
		return fmt.Errorf("storage: manifest: %w", err)
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		return fmt.Errorf("storage: manifest: %w", err)
	}
	return nil
}

// Close seals the open WAL segment. The directory stays recoverable; a later
// OpenDurable replays it.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.w == nil {
		return nil
	}
	err := d.w.Close()
	d.w = nil
	return err
}
