package storage

import (
	"testing"

	"colorfulxml/internal/fixtures"
)

// TestIndexBytesCoversAllIndexes pins IndexBytes to the sum of all four
// index trees; the start index in particular was once omitted from the
// Table 1 accounting.
func TestIndexBytesCoversAllIndexes(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := []struct {
		name  string
		bytes int64
	}{
		{"tag", approxBytes(s.tagIdx)},
		{"content", approxBytes(s.contentIdx)},
		{"attr", approxBytes(s.attrIdx)},
		{"start", approxBytes(s.startIdx)},
	}
	var sum int64
	for _, p := range parts {
		sum += p.bytes
	}
	if got := s.IndexBytes(); got != sum {
		t.Fatalf("IndexBytes() = %d, want sum of all four indexes = %d", got, sum)
	}
	// Populated indexes must contribute; the start index covers every
	// structural node, so it can never be empty on a loaded store.
	for _, p := range parts {
		if p.name == "attr" {
			continue // the movie fixture carries no attributes
		}
		if p.bytes <= 0 {
			t.Errorf("%s index contributes %d bytes, want > 0", p.name, p.bytes)
		}
	}
}
