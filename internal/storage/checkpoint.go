package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"colorfulxml/internal/btree"
	"colorfulxml/internal/core"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/pagestore"
)

// This file is the checkpoint half of the durable store: a checkpoint is the
// store's metadata (the color -> heap-file mapping and the element file)
// followed by the checksummed page dump of internal/pagestore. Directories
// and indexes are deliberately NOT serialized — ReadCheckpoint rebuilds them
// by scanning the recovered pages, so they can never disagree with the page
// contents, and the format surface that must stay compatible across versions
// stays minimal.
//
//	checkpoint := magic "MCTCKPT1" | metaLen:u32 | meta | crc32c(meta):u32
//	              page-dump (see pagestore.DumpPages)
//	meta       := version:u32 | elemFile:u32 | nColors:u32
//	              (colorLen:u16 color elemFile:u32)*

const ckptMagic = "MCTCKPT1"

// ckptVersion is the checkpoint metadata format version.
const ckptVersion = 1

var ckptCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteCheckpoint serializes the store to w. The receiver must be quiescent
// (a frozen snapshot or a store covered by the writer lock).
func (s *Store) WriteCheckpoint(w io.Writer) error {
	sw := obs.Start()
	defer func() {
		obsCheckpointSaves.Inc()
		obsCheckpointWriteNanos.Observe(sw.ElapsedNanos())
	}()
	var meta bytes.Buffer
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		meta.Write(u32[:])
	}
	put32(ckptVersion)
	put32(uint32(s.elemFile))
	put32(uint32(len(s.colors)))
	for _, c := range s.colors {
		var n [2]byte
		binary.LittleEndian.PutUint16(n[:], uint16(len(c)))
		meta.Write(n[:])
		meta.WriteString(string(c))
		put32(uint32(s.structFile[c]))
	}

	if _, err := w.Write([]byte(ckptMagic)); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(meta.Len()))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	if _, err := w.Write(meta.Bytes()); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(meta.Bytes(), ckptCastagnoli))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	return s.pages.DumpPages(w)
}

// ReadCheckpoint deserializes a checkpoint, verifying the metadata checksum
// and every page checksum, then rebuilds the in-memory directories and
// indexes by scanning the recovered heap files.
func ReadCheckpoint(r io.Reader, poolPages int) (*Store, error) {
	sw := obs.Start()
	defer func() {
		obsCheckpointLoads.Inc()
		obsCheckpointLoadNanos.Observe(sw.ElapsedNanos())
	}()
	hdr := make([]byte, len(ckptMagic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("storage: truncated checkpoint header: %w", err)
	}
	if string(hdr[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("storage: bad checkpoint magic %q", hdr[:len(ckptMagic)])
	}
	metaLen := binary.LittleEndian.Uint32(hdr[len(ckptMagic):])
	if metaLen > 1<<24 {
		return nil, fmt.Errorf("storage: implausible checkpoint meta length %d", metaLen)
	}
	meta := make([]byte, metaLen+4)
	if _, err := io.ReadFull(r, meta); err != nil {
		return nil, fmt.Errorf("storage: truncated checkpoint meta: %w", err)
	}
	wantCRC := binary.LittleEndian.Uint32(meta[metaLen:])
	meta = meta[:metaLen]
	if got := crc32.Checksum(meta, ckptCastagnoli); got != wantCRC {
		return nil, fmt.Errorf("storage: checkpoint meta: %w (got %08x, want %08x)",
			pagestore.ErrChecksum, got, wantCRC)
	}

	rd := bytes.NewReader(meta)
	var u32 [4]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(rd, u32[:]); err != nil {
			return 0, fmt.Errorf("storage: truncated checkpoint meta: %w", err)
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	ver, err := get32()
	if err != nil {
		return nil, err
	}
	if ver != ckptVersion {
		return nil, fmt.Errorf("storage: unsupported checkpoint version %d", ver)
	}
	elemFile, err := get32()
	if err != nil {
		return nil, err
	}
	nColors, err := get32()
	if err != nil {
		return nil, err
	}
	if uint64(nColors) > uint64(metaLen) {
		return nil, fmt.Errorf("storage: implausible color count %d", nColors)
	}
	type colorFile struct {
		c core.Color
		f pagestore.FileID
	}
	colorFiles := make([]colorFile, nColors)
	for i := range colorFiles {
		var n [2]byte
		if _, err := io.ReadFull(rd, n[:]); err != nil {
			return nil, fmt.Errorf("storage: truncated checkpoint meta: %w", err)
		}
		nameLen := int(binary.LittleEndian.Uint16(n[:]))
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(rd, name); err != nil {
			return nil, fmt.Errorf("storage: truncated checkpoint meta: %w", err)
		}
		f, err := get32()
		if err != nil {
			return nil, err
		}
		colorFiles[i] = colorFile{c: core.Color(name), f: pagestore.FileID(f)}
	}

	pages, err := pagestore.ReadStore(r, poolPages)
	if err != nil {
		return nil, err
	}
	s := &Store{
		pages:      pages,
		elemFile:   pagestore.FileID(elemFile),
		structFile: map[core.Color]pagestore.FileID{},
		elemLoc:    map[ElemID]pagestore.RecordID{},
		structLoc:  map[structKey]pagestore.RecordID{},
		tagIdx:     btree.New(),
		contentIdx: btree.New(),
		attrIdx:    btree.New(),
		startIdx:   btree.New(),
		maxStart:   map[core.Color]int64{},
	}
	for _, cf := range colorFiles {
		if _, dup := s.structFile[cf.c]; dup {
			return nil, fmt.Errorf("storage: checkpoint meta repeats color %q", cf.c)
		}
		s.structFile[cf.c] = cf.f
		s.colors = append(s.colors, cf.c)
	}
	sort.Slice(s.colors, func(i, j int) bool { return s.colors[i] < s.colors[j] })
	if err := s.rebuildDirectories(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuildDirectories repopulates the element and structural directories, all
// four indexes, the size counts and the allocation cursors by scanning the
// heap files of a freshly loaded page set.
func (s *Store) rebuildDirectories() error {
	// Element file: directory, attribute index, id cursor, counts.
	err := s.pages.Scan(s.elemFile, func(rid pagestore.RecordID, rec []byte) bool {
		id, _, content, attrs := decodeElem(rec)
		s.elemLoc[id] = rid
		if id >= s.nextID {
			s.nextID = id + 1
		}
		s.counts.Elements++
		s.counts.Attributes += len(attrs)
		if content != "" {
			s.counts.ContentNodes++
		}
		for _, a := range attrs {
			s.attrIdx.Insert(attrKey(a[0], a[1]), uint64(id))
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("storage: rebuilding element directory: %w", err)
	}

	// Structural files: collect per color, sort by start so index posting
	// lists come out in document order (file order is append order, which
	// diverges from start order after updates), then register.
	for _, c := range s.colors {
		type item struct {
			sn  SNode
			rid pagestore.RecordID
		}
		var items []item
		var badRec error
		err := s.pages.Scan(s.structFile[c], func(rid pagestore.RecordID, rec []byte) bool {
			if len(rec) != structRecSize {
				badRec = fmt.Errorf("storage: color %q: structural record %v has %d bytes, want %d",
					c, rid, len(rec), structRecSize)
				return false
			}
			items = append(items, item{sn: decodeStruct(rec, c), rid: rid})
			return true
		})
		if err != nil {
			return fmt.Errorf("storage: rebuilding color %q: %w", c, err)
		}
		if badRec != nil {
			return badRec
		}
		sort.Slice(items, func(i, j int) bool { return items[i].sn.Start < items[j].sn.Start })
		maxEnd := int64(0)
		for _, it := range items {
			e, err := s.Elem(it.sn.Elem)
			if err != nil {
				return fmt.Errorf("storage: color %q: structural node references missing element %d: %w",
					c, it.sn.Elem, err)
			}
			s.structLoc[structKey{it.sn.Elem, c}] = it.rid
			ref := packRID(it.rid)
			s.tagIdx.Insert(tagKey(c, e.Tag), ref)
			if e.Content != "" {
				s.contentIdx.Insert(contentKey(c, e.Tag, e.Content), ref)
			}
			s.startIdx.Insert(startKey(c, it.sn.Start), ref)
			s.counts.StructNodes++
			if it.sn.End > maxEnd {
				maxEnd = it.sn.End
			}
		}
		if len(items) > 0 {
			s.maxStart[c] = maxEnd + gap
		}
	}
	return nil
}
