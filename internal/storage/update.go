package storage

import (
	"fmt"

	"colorfulxml/internal/core"
	"colorfulxml/internal/pagestore"
)

// This file implements the store-level update operations the experiment
// workloads need: content replacement, leaf insertion, and subtree deletion.
// Insertions allocate start positions inside the interval gaps left by bulk
// loading; when a parent's gap is exhausted the colored tree is renumbered.

// UpdateContent replaces an element's text content in place (appending a
// relocated record when the new content is larger).
func (s *Store) UpdateContent(id ElemID, content string) error {
	rid, ok := s.elemLoc[id]
	if !ok {
		return fmt.Errorf("storage: element %d: %w", id, pagestore.ErrNoSuchRecord)
	}
	old, err := s.pages.ReadRecord(rid)
	if err != nil {
		return err
	}
	_, tag, oldContent, attrs := decodeElem(old)
	rec := encodeElem(id, tag, content, attrs)
	if len(rec) <= len(old) {
		if err := s.pages.OverwriteRecord(rid, rec); err != nil {
			return err
		}
	} else {
		newRID, err := s.pages.AppendRecord(s.elemFile, rec)
		if err != nil {
			return err
		}
		if err := s.pages.DeleteRecord(rid); err != nil {
			return err
		}
		s.elemLoc[id] = newRID
	}
	// Re-key the content index for every colored structural node.
	for _, c := range s.colors {
		srid, ok := s.structLoc[structKey{id, c}]
		if !ok {
			continue
		}
		ref := packRID(srid)
		if oldContent != "" {
			s.contentIdx.Delete(contentKey(c, tag, oldContent), ref)
		}
		if content != "" {
			s.contentIdx.Insert(contentKey(c, tag, content), ref)
		}
	}
	if oldContent == "" && content != "" {
		s.counts.ContentNodes++
	}
	if oldContent != "" && content == "" {
		s.counts.ContentNodes--
	}
	return nil
}

// InsertLeafChild creates a new element with one structural node, as the
// last child of parent in parent's color. The element id is allocated by the
// store.
func (s *Store) InsertLeafChild(parent SNode, tag, content string, attrs [][2]string) (SNode, error) {
	id := s.nextID
	s.nextID++
	return s.insertLeafChild(id, parent, tag, content, attrs)
}

// InsertLeafChildID is InsertLeafChild with a caller-chosen element id, used
// by incremental snapshot maintenance where store element ids must equal
// logical core node ids.
func (s *Store) InsertLeafChildID(id ElemID, parent SNode, tag, content string, attrs [][2]string) (SNode, error) {
	if _, ok := s.elemLoc[id]; ok {
		return SNode{}, fmt.Errorf("storage: element %d already stored: %w", id, core.ErrAlreadyColored)
	}
	if id >= s.nextID {
		s.nextID = id + 1
	}
	return s.insertLeafChild(id, parent, tag, content, attrs)
}

func (s *Store) insertLeafChild(id ElemID, parent SNode, tag, content string, attrs [][2]string) (SNode, error) {
	for attempt := 0; ; attempt++ {
		sn, ok, err := s.tryInsertLeaf(id, parent, tag, content, attrs)
		if err != nil {
			return SNode{}, err
		}
		if ok {
			return sn, nil
		}
		if attempt > 0 {
			return SNode{}, fmt.Errorf("storage: no interval space after renumbering %q", parent.Color)
		}
		newParent, err := s.renumber(parent.Color, parent)
		if err != nil {
			return SNode{}, err
		}
		parent = newParent
	}
}

func (s *Store) tryInsertLeaf(id ElemID, parent SNode, tag, content string, attrs [][2]string) (SNode, bool, error) {
	desc, err := s.Subtree(parent)
	if err != nil {
		return SNode{}, false, err
	}
	lo := parent.Start
	for _, d := range desc {
		if d.End > lo {
			lo = d.End
		}
	}
	start := lo + 1
	end := start + 1
	if end >= parent.End {
		return SNode{}, false, nil // no gap left
	}
	rid, err := s.pages.AppendRecord(s.elemFile, encodeElem(id, tag, content, attrs))
	if err != nil {
		return SNode{}, false, err
	}
	s.elemLoc[id] = rid
	s.counts.Elements++
	s.counts.Attributes += len(attrs)
	if content != "" {
		s.counts.ContentNodes++
	}
	for _, a := range attrs {
		s.attrIdx.Insert(attrKey(a[0], a[1]), uint64(id))
	}
	sn := SNode{
		Elem:        id,
		Color:       parent.Color,
		Start:       start,
		End:         end,
		Level:       parent.Level + 1,
		ParentStart: parent.Start,
	}
	if err := s.insertStruct(tag, content, sn); err != nil {
		return SNode{}, false, err
	}
	return sn, true, nil
}

// rootSlot allocates an interval for a new last root (child of the document)
// in color c. Root positions are unbounded above, so no renumbering is ever
// needed.
func (s *Store) rootSlot(c core.Color) (start, end int64) {
	start = s.maxStart[c]
	if start < gap {
		start = gap
	}
	end = start + 1
	s.maxStart[c] = end + gap
	return start, end
}

// InsertLeafRootID creates a new element with a caller-chosen id as the last
// root of colored tree c (a child of the document node).
func (s *Store) InsertLeafRootID(id ElemID, c core.Color, tag, content string, attrs [][2]string) (SNode, error) {
	if _, ok := s.structFile[c]; !ok {
		return SNode{}, fmt.Errorf("storage: unknown color %q", c)
	}
	if _, ok := s.elemLoc[id]; ok {
		return SNode{}, fmt.Errorf("storage: element %d already stored: %w", id, core.ErrAlreadyColored)
	}
	if id >= s.nextID {
		s.nextID = id + 1
	}
	rid, err := s.pages.AppendRecord(s.elemFile, encodeElem(id, tag, content, attrs))
	if err != nil {
		return SNode{}, err
	}
	s.elemLoc[id] = rid
	s.counts.Elements++
	s.counts.Attributes += len(attrs)
	if content != "" {
		s.counts.ContentNodes++
	}
	for _, a := range attrs {
		s.attrIdx.Insert(attrKey(a[0], a[1]), uint64(id))
	}
	start, end := s.rootSlot(c)
	sn := SNode{Elem: id, Color: c, Start: start, End: end, Level: 0, ParentStart: -1}
	if err := s.insertStruct(tag, content, sn); err != nil {
		return SNode{}, err
	}
	return sn, nil
}

// AddColorRoot attaches an existing element into colored tree c as its last
// root (the next-color constructor with the document as parent).
func (s *Store) AddColorRoot(id ElemID, c core.Color) (SNode, error) {
	if _, ok := s.structFile[c]; !ok {
		return SNode{}, fmt.Errorf("storage: unknown color %q", c)
	}
	if _, ok := s.structLoc[structKey{id, c}]; ok {
		return SNode{}, fmt.Errorf("storage: element %d already in color %q: %w", id, c, core.ErrAlreadyColored)
	}
	e, err := s.Elem(id)
	if err != nil {
		return SNode{}, err
	}
	start, end := s.rootSlot(c)
	sn := SNode{Elem: id, Color: c, Start: start, End: end, Level: 0, ParentStart: -1}
	if err := s.insertStruct(e.Tag, e.Content, sn); err != nil {
		return SNode{}, err
	}
	return sn, nil
}

// SetElemAttrs replaces an element's attribute list, re-keying the attribute
// index (the physical counterpart of attribute set/remove).
func (s *Store) SetElemAttrs(id ElemID, attrs [][2]string) error {
	rid, ok := s.elemLoc[id]
	if !ok {
		return fmt.Errorf("storage: element %d: %w", id, pagestore.ErrNoSuchRecord)
	}
	old, err := s.pages.ReadRecord(rid)
	if err != nil {
		return err
	}
	_, tag, content, oldAttrs := decodeElem(old)
	rec := encodeElem(id, tag, content, attrs)
	if len(rec) <= len(old) {
		if err := s.pages.OverwriteRecord(rid, rec); err != nil {
			return err
		}
	} else {
		newRID, err := s.pages.AppendRecord(s.elemFile, rec)
		if err != nil {
			return err
		}
		if err := s.pages.DeleteRecord(rid); err != nil {
			return err
		}
		s.elemLoc[id] = newRID
	}
	for _, a := range oldAttrs {
		s.attrIdx.Delete(attrKey(a[0], a[1]), uint64(id))
	}
	for _, a := range attrs {
		s.attrIdx.Insert(attrKey(a[0], a[1]), uint64(id))
	}
	s.counts.Attributes += len(attrs) - len(oldAttrs)
	return nil
}

// AddColorTo attaches an existing element into another colored tree as the
// last child of parent (the physical counterpart of the next-color
// constructor).
func (s *Store) AddColorTo(id ElemID, parent SNode) (SNode, error) {
	if _, ok := s.structLoc[structKey{id, parent.Color}]; ok {
		return SNode{}, fmt.Errorf("storage: element %d already in color %q: %w", id, parent.Color, core.ErrAlreadyColored)
	}
	e, err := s.Elem(id)
	if err != nil {
		return SNode{}, err
	}
	for attempt := 0; ; attempt++ {
		desc, err := s.Subtree(parent)
		if err != nil {
			return SNode{}, err
		}
		lo := parent.Start
		for _, d := range desc {
			if d.End > lo {
				lo = d.End
			}
		}
		start := lo + 1
		end := start + 1
		if end < parent.End {
			sn := SNode{
				Elem:        id,
				Color:       parent.Color,
				Start:       start,
				End:         end,
				Level:       parent.Level + 1,
				ParentStart: parent.Start,
			}
			if err := s.insertStruct(e.Tag, e.Content, sn); err != nil {
				return SNode{}, err
			}
			return sn, nil
		}
		if attempt > 0 {
			return SNode{}, fmt.Errorf("storage: no interval space after renumbering %q", parent.Color)
		}
		parent, err = s.renumber(parent.Color, parent)
		if err != nil {
			return SNode{}, err
		}
	}
}

// DeleteSubtree removes sn and its descendants from sn's colored tree.
// Elements left with no structural node are removed entirely.
func (s *Store) DeleteSubtree(sn SNode) error {
	s.invalidatePathSummaries()
	desc, err := s.Subtree(sn)
	if err != nil {
		return err
	}
	nodes := append([]SNode{sn}, desc...)
	for _, d := range nodes {
		e, err := s.Elem(d.Elem)
		if err != nil {
			return err
		}
		rid := s.structLoc[structKey{d.Elem, d.Color}]
		ref := packRID(rid)
		if err := s.pages.DeleteRecord(rid); err != nil {
			return err
		}
		s.tagIdx.Delete(tagKey(d.Color, e.Tag), ref)
		if e.Content != "" {
			s.contentIdx.Delete(contentKey(d.Color, e.Tag, e.Content), ref)
		}
		s.startIdx.DeleteKey(startKey(d.Color, d.Start))
		delete(s.structLoc, structKey{d.Elem, d.Color})
		s.counts.StructNodes--
		if len(s.ColorsOf(d.Elem)) == 0 {
			if err := s.pages.DeleteRecord(s.elemLoc[d.Elem]); err != nil {
				return err
			}
			delete(s.elemLoc, d.Elem)
			for _, a := range e.Attrs {
				s.attrIdx.Delete(attrKey(a[0], a[1]), uint64(d.Elem))
			}
			s.counts.Elements--
			s.counts.Attributes -= len(e.Attrs)
			if e.Content != "" {
				s.counts.ContentNodes--
			}
		}
	}
	return nil
}

// renumber reassigns interval positions of an entire colored tree with fresh
// gaps, preserving pre-order. It returns the renumbered image of track (so
// in-flight callers can continue with a valid handle).
func (s *Store) renumber(c core.Color, track SNode) (SNode, error) {
	// Label paths survive renumbering, but cached summary refs point at
	// rewritten records whose start order is rebuilt; drop the cache.
	s.invalidatePathSummaries()
	// Collect all structural nodes of the color in start order.
	type item struct {
		sn  SNode
		rid pagestore.RecordID
	}
	var items []item
	var scanErr error
	s.startIdx.Prefix(string(c)+"|", func(_ string, refs []uint64) bool {
		for _, ref := range refs {
			rid := unpackRID(ref)
			buf, err := s.pages.ReadRecord(rid)
			if err != nil {
				scanErr = err
				return false
			}
			items = append(items, item{sn: decodeStruct(buf, c), rid: rid})
		}
		return true
	})
	if scanErr != nil {
		return SNode{}, scanErr
	}
	// Recompute pre-order intervals with a stack over the OLD interval
	// bounds (items arrive in old start order, which is pre-order).
	newStart := map[int64]int64{-1: -1}
	var out SNode
	found := false
	type renum struct {
		oldStart, oldEnd int64
		idx              int
	}
	olds := make([]renum, len(items))
	for i, it := range items {
		olds[i] = renum{oldStart: it.sn.Start, oldEnd: it.sn.End, idx: i}
	}
	ctr := int64(gap)
	var open []renum
	closeOne := func() {
		top := open[len(open)-1]
		open = open[:len(open)-1]
		items[top.idx].sn.End = ctr
		ctr += gap
	}
	for i := range items {
		for len(open) > 0 && open[len(open)-1].oldEnd < olds[i].oldStart {
			closeOne()
		}
		oldParent := items[i].sn.ParentStart
		items[i].sn.Start = ctr
		newStart[olds[i].oldStart] = ctr
		ctr += gap
		if ns, ok := newStart[oldParent]; ok {
			items[i].sn.ParentStart = ns
		}
		open = append(open, olds[i])
	}
	for len(open) > 0 {
		closeOne()
	}
	// Rewrite records and rebuild the start index for this color.
	var keys []string
	s.startIdx.Prefix(string(c)+"|", func(k string, _ []uint64) bool {
		keys = append(keys, k)
		return true
	})
	for _, k := range keys {
		s.startIdx.DeleteKey(k)
	}
	for _, it := range items {
		if err := s.pages.OverwriteRecord(it.rid, encodeStruct(it.sn)); err != nil {
			return SNode{}, err
		}
		s.startIdx.Insert(startKey(c, it.sn.Start), packRID(it.rid))
		if it.sn.Elem == track.Elem && track.Color == c {
			out = it.sn
			found = true
		}
	}
	s.maxStart[c] = ctr
	if !found {
		return SNode{}, fmt.Errorf("storage: renumber lost track of element %d", track.Elem)
	}
	return out, nil
}
