package storage

import (
	"errors"
	"fmt"

	"colorfulxml/internal/core"
	"colorfulxml/internal/pagestore"
)

// This file implements incremental snapshot maintenance: Clone produces a
// copy-on-write sibling of a frozen store snapshot, and ApplyChanges replays
// a logical change log (core.Change, drained from core.Database) against it
// using the store-level update operations. Together they let the serving
// layer publish a fresh snapshot after a point update without an O(N)
// storage.Load rebuild.

// ErrDeltaUnsupported reports a change-log entry with no incremental store
// counterpart (ChangeComplex); the caller must rebuild the snapshot with a
// full Load instead.
var ErrDeltaUnsupported = errors.New("storage: change delta unsupported for incremental maintenance")

// Clone returns a copy-on-write snapshot sibling of the store. The page
// store shares immutable page images, the B+-tree indexes share nodes via
// path-copying, and the in-memory directories are copied flat. Cloning is
// O(directory size) with no record copying; subsequent mutations of either
// side never become visible to the other.
//
// The intended discipline: the receiver is a frozen snapshot that keeps
// serving readers; the clone absorbs updates and is published in its place.
func (s *Store) Clone() *Store {
	ns := &Store{
		pages:      s.pages.Clone(),
		elemFile:   s.elemFile,
		structFile: make(map[core.Color]pagestore.FileID, len(s.structFile)),
		elemLoc:    make(map[ElemID]pagestore.RecordID, len(s.elemLoc)),
		structLoc:  make(map[structKey]pagestore.RecordID, len(s.structLoc)),
		tagIdx:     s.tagIdx.Clone(),
		contentIdx: s.contentIdx.Clone(),
		attrIdx:    s.attrIdx.Clone(),
		startIdx:   s.startIdx.Clone(),
		colors:     append([]core.Color(nil), s.colors...),
		nextID:     s.nextID,
		maxStart:   make(map[core.Color]int64, len(s.maxStart)),
		counts:     s.counts,
		pathSums:   s.clonePathSums(),
	}
	for c, f := range s.structFile {
		ns.structFile[c] = f
	}
	for id, rid := range s.elemLoc {
		ns.elemLoc[id] = rid
	}
	for k, rid := range s.structLoc {
		ns.structLoc[k] = rid
	}
	for c, v := range s.maxStart {
		ns.maxStart[c] = v
	}
	// The clone starts structurally identical to its parent, so it inherits
	// the stats epoch; the first structural change it absorbs moves it to a
	// fresh one. (Atomics cannot be copied in the composite literal above.)
	ns.statsEpoch.Store(s.statsEpoch.Load())
	obsSnapshotClones.Inc()
	return ns
}

// ApplyChanges replays a drained change log in order. On ErrDeltaUnsupported
// (or any other error) the store may be left mid-replay and must be
// discarded in favor of a full Load; the frozen snapshot it was cloned from
// is unaffected.
func (s *Store) ApplyChanges(changes []core.Change) error {
	for i, ch := range changes {
		if err := s.applyChange(ch); err != nil {
			return fmt.Errorf("storage: applying change %d/%d (kind %d, elem %d): %w",
				i+1, len(changes), ch.Kind, ch.Elem, err)
		}
	}
	obsChangesApplied.Add(uint64(len(changes)))
	return nil
}

func (s *Store) applyChange(ch core.Change) error {
	switch ch.Kind {
	case core.ChangeAddDatabaseColor:
		s.addColor(ch.Color)
		return nil

	case core.ChangeContent:
		id := ElemID(ch.Elem)
		if _, ok := s.elemLoc[id]; !ok {
			return nil // detached fragment; not materialized
		}
		return s.UpdateContent(id, ch.Content)

	case core.ChangeAttrs:
		id := ElemID(ch.Elem)
		if _, ok := s.elemLoc[id]; !ok {
			return nil
		}
		return s.SetElemAttrs(id, ch.Attrs)

	case core.ChangeInsertLeaf:
		if ch.Parent == 0 {
			_, err := s.InsertLeafRootID(ElemID(ch.Elem), ch.Color, ch.Tag, ch.Content, ch.Attrs)
			return err
		}
		parent, ok, err := s.StructOf(ElemID(ch.Parent), ch.Color)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("parent %d not in color %q: %w", ch.Parent, ch.Color, ErrDeltaUnsupported)
		}
		_, err = s.InsertLeafChildID(ElemID(ch.Elem), parent, ch.Tag, ch.Content, ch.Attrs)
		return err

	case core.ChangeAddColor:
		if ch.Parent == 0 {
			_, err := s.AddColorRoot(ElemID(ch.Elem), ch.Color)
			return err
		}
		parent, ok, err := s.StructOf(ElemID(ch.Parent), ch.Color)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("parent %d not in color %q: %w", ch.Parent, ch.Color, ErrDeltaUnsupported)
		}
		_, err = s.AddColorTo(ElemID(ch.Elem), parent)
		return err

	case core.ChangeDeleteSubtree:
		sn, ok, err := s.StructOf(ElemID(ch.Elem), ch.Color)
		if err != nil {
			return err
		}
		if !ok {
			return nil // already gone (e.g. removed with an ancestor)
		}
		return s.DeleteSubtree(sn)

	case core.ChangeComplex:
		return ErrDeltaUnsupported
	}
	return fmt.Errorf("unknown change kind %d: %w", ch.Kind, ErrDeltaUnsupported)
}
