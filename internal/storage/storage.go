// Package storage is the Timber-style physical MCT store of the paper's
// Section 6.2 and Figure 10:
//
//   - element content and attributes are stored exactly once, as one element
//     record in a heap file;
//   - structural relationships are stored separately: one structural node per
//     (element, color), carrying a (start, end, level, parent-start) interval
//     encoding of its position in that colored tree;
//   - multi-colored elements carry back-links from the element record to each
//     of its single-colored structural nodes, which the cross-tree join
//     access method follows to transition between colors.
//
// All record access goes through the pagestore buffer pool, so structural
// scans, content fetches and cross-tree joins have observable page costs.
// Tag, content and attribute B+-tree indexes support the experiment
// workloads.
package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"colorfulxml/internal/btree"
	"colorfulxml/internal/core"
	"colorfulxml/internal/pagestore"
)

// ElemID identifies an element record (identity shared by all its structural
// nodes).
type ElemID uint64

// structKey addresses one structural record: an element within one colored
// tree.
type structKey struct {
	Elem  ElemID
	Color core.Color
}

// SNode is a structural node: the physical representation of one element's
// participation in one colored tree, with interval encoding.
type SNode struct {
	Elem        ElemID
	Color       core.Color
	Start       int64
	End         int64
	Level       int32
	ParentStart int64 // -1 for roots (children of the document)
}

// Contains reports whether d lies strictly within a's interval: a is an
// ancestor of d in their (shared) colored tree.
func (a SNode) Contains(d SNode) bool { return a.Start < d.Start && d.End < a.End }

// IsParentOf reports whether a is the parent of d (one level apart and
// d's parent-start matches).
func (a SNode) IsParentOf(d SNode) bool {
	return d.ParentStart == a.Start && d.Level == a.Level+1
}

// gap is the spacing between consecutive start values at bulk load, leaving
// room for a few inserts without renumbering.
const gap = 16

// structRecSize is the fixed size of an encoded structural record.
const structRecSize = 8 + 8 + 8 + 4 + 8 // elem, start, end, level, parentStart

// Store is the physical MCT database.
type Store struct {
	pages *pagestore.Store

	elemFile   pagestore.FileID
	structFile map[core.Color]pagestore.FileID

	// Directories (in-memory, like Timber's node directories): element
	// record locations and per-(element, color) structural record locations
	// (the Figure 10 back-link "attributes"). structLoc is a flat map so
	// that Clone copies it in one pass without per-element allocations.
	elemLoc   map[ElemID]pagestore.RecordID
	structLoc map[structKey]pagestore.RecordID

	// Indexes.
	tagIdx     *btree.Tree // color|tag -> struct record refs (start order)
	contentIdx *btree.Tree // color|tag|content -> struct record refs
	attrIdx    *btree.Tree // name=value -> elem ids
	startIdx   *btree.Tree // color|zero-padded start -> struct record ref

	colors []core.Color
	nextID ElemID
	// maxStart tracks the highest start per color for appends.
	maxStart map[core.Color]int64

	counts SizeCounts

	// pathSums caches lazily built per-color path summaries (pathsummary.go).
	// Summaries are immutable, so clones share them; structural mutations
	// invalidate. Guarded by pathMu because summaries build on first probe,
	// which may happen from concurrent readers of a published snapshot.
	pathMu   sync.Mutex
	pathSums map[core.Color]*PathSummary

	// statsEpoch is the stats/schema epoch of this store image: a
	// process-unique token that changes whenever the structure (and hence the
	// catalog statistics a compiled plan's cost choices were made from) may
	// have changed. Content-only updates preserve it, so a plan cache keyed
	// on the epoch stays hot across the common point-update workload, while
	// structural mutations, renumbering and full rebuilds all move it.
	// Atomic because readers (the plan cache) probe published snapshots
	// concurrently with a clone being mutated before publication.
	statsEpoch atomic.Uint64
}

// SizeCounts is the Table 1 accounting: logical node counts plus physical
// sizes.
type SizeCounts struct {
	Elements     int
	Attributes   int
	ContentNodes int
	StructNodes  int
}

// NewStore creates an empty store with the given buffer pool size in pages
// (0 means the paper's 256 MB default).
func NewStore(poolPages int, colors ...core.Color) *Store {
	s := &Store{
		pages:      pagestore.NewStore(poolPages),
		structFile: map[core.Color]pagestore.FileID{},
		elemLoc:    map[ElemID]pagestore.RecordID{},
		structLoc:  map[structKey]pagestore.RecordID{},
		tagIdx:     btree.New(),
		contentIdx: btree.New(),
		attrIdx:    btree.New(),
		startIdx:   btree.New(),
		maxStart:   map[core.Color]int64{},
	}
	s.elemFile = s.pages.CreateFile()
	s.statsEpoch.Store(nextStatsEpoch())
	for _, c := range colors {
		s.addColor(c)
	}
	return s
}

// statsEpochCounter allocates process-unique stats epochs: every fresh store
// image and every structural mutation draws a new value, so two store states
// with different structure can never share an epoch — the property the
// compiled-plan cache's invalidation relies on.
var statsEpochCounter atomic.Uint64

func nextStatsEpoch() uint64 { return statsEpochCounter.Add(1) }

// StatsEpoch returns the store's current stats/schema epoch. A compiled plan
// whose recorded epoch differs from the serving snapshot's may have been
// cost-chosen against different structure and must be recompiled.
func (s *Store) StatsEpoch() uint64 { return s.statsEpoch.Load() }

// bumpStatsEpoch moves the store to a fresh epoch; called by every
// structural mutation (alongside the path-summary invalidation, which guards
// the same class of change).
func (s *Store) bumpStatsEpoch() { s.statsEpoch.Store(nextStatsEpoch()) }

func (s *Store) addColor(c core.Color) {
	if _, ok := s.structFile[c]; ok {
		return
	}
	s.structFile[c] = s.pages.CreateFile()
	s.colors = append(s.colors, c)
	sort.Slice(s.colors, func(i, j int) bool { return s.colors[i] < s.colors[j] })
}

// Colors returns the store's colors in sorted order.
func (s *Store) Colors() []core.Color { return s.colors }

// Pages exposes the underlying page store (for I/O statistics).
func (s *Store) Pages() *pagestore.Store { return s.pages }

// Counts returns the logical node counts.
func (s *Store) Counts() SizeCounts { return s.counts }

// DataBytes returns the total bytes of data pages (element + structural
// files).
func (s *Store) DataBytes() (int64, error) {
	total := int64(0)
	n, err := s.pages.NumPages(s.elemFile)
	if err != nil {
		return 0, err
	}
	total += int64(n) * pagestore.PageSize
	for _, f := range s.structFile {
		n, err := s.pages.NumPages(f)
		if err != nil {
			return 0, err
		}
		total += int64(n) * pagestore.PageSize
	}
	return total, nil
}

// IndexBytes returns the approximate in-memory size of the indexes: tag,
// content, attribute and start (all four are part of the Table 1 index
// accounting).
func (s *Store) IndexBytes() int64 {
	return approxBytes(s.tagIdx) + approxBytes(s.contentIdx) +
		approxBytes(s.attrIdx) + approxBytes(s.startIdx)
}

func approxBytes(t *btree.Tree) int64 {
	total := int64(0)
	t.Ascend(func(k string, vals []uint64) bool {
		total += int64(len(k)) + 16 + 8*int64(len(vals))
		return true
	})
	return total
}

// --- record encoding ---------------------------------------------------

func encodeElem(id ElemID, tag, content string, attrs [][2]string) []byte {
	buf := make([]byte, 0, 32+len(tag)+len(content))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(id))
	buf = append(buf, tmp[:]...)
	buf = appendStr(buf, tag)
	buf = appendStr(buf, content)
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(attrs)))
	buf = append(buf, n[:]...)
	for _, a := range attrs {
		buf = appendStr(buf, a[0])
		buf = appendStr(buf, a[1])
	}
	return buf
}

func appendStr(buf []byte, s string) []byte {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	buf = append(buf, n[:]...)
	return append(buf, s...)
}

func readStr(buf []byte, off int) (string, int) {
	n := int(binary.LittleEndian.Uint16(buf[off : off+2]))
	off += 2
	return string(buf[off : off+n]), off + n
}

func decodeElem(buf []byte) (id ElemID, tag, content string, attrs [][2]string) {
	id = ElemID(binary.LittleEndian.Uint64(buf[0:8]))
	off := 8
	tag, off = readStr(buf, off)
	content, off = readStr(buf, off)
	n := int(binary.LittleEndian.Uint16(buf[off : off+2]))
	off += 2
	for i := 0; i < n; i++ {
		var k, v string
		k, off = readStr(buf, off)
		v, off = readStr(buf, off)
		attrs = append(attrs, [2]string{k, v})
	}
	return
}

func encodeStruct(sn SNode) []byte {
	buf := make([]byte, structRecSize)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(sn.Elem))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(sn.Start))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(sn.End))
	binary.LittleEndian.PutUint32(buf[24:28], uint32(sn.Level))
	binary.LittleEndian.PutUint64(buf[28:36], uint64(sn.ParentStart))
	return buf
}

func decodeStruct(buf []byte, c core.Color) SNode {
	return SNode{
		Elem:        ElemID(binary.LittleEndian.Uint64(buf[0:8])),
		Color:       c,
		Start:       int64(binary.LittleEndian.Uint64(buf[8:16])),
		End:         int64(binary.LittleEndian.Uint64(buf[16:24])),
		Level:       int32(binary.LittleEndian.Uint32(buf[24:28])),
		ParentStart: int64(binary.LittleEndian.Uint64(buf[28:36])),
	}
}

// packRID encodes a RecordID into a uint64 for index postings.
func packRID(r pagestore.RecordID) uint64 {
	return uint64(r.File)<<48 | uint64(r.Page)<<16 | uint64(r.Slot)
}

func unpackRID(v uint64) pagestore.RecordID {
	return pagestore.RecordID{
		PageID: pagestore.PageID{
			File: pagestore.FileID(v >> 48),
			Page: uint32(v >> 16),
		},
		Slot: uint16(v),
	}
}

func tagKey(c core.Color, tag string) string { return string(c) + "|" + tag }

func contentKey(c core.Color, tag, content string) string {
	return string(c) + "|" + tag + "|" + content
}

func attrKey(name, value string) string { return name + "=" + value }

// startKey is the startIdx key: color plus a zero-padded decimal start so
// that lexicographic order equals numeric order.
func startKey(c core.Color, start int64) string {
	return fmt.Sprintf("%s|%016d", c, start)
}
