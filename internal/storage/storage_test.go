package storage_test

import (
	"sort"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/storage"
)

func load(t *testing.T) (*fixtures.MovieDB, *storage.Store) {
	t.Helper()
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestLoadCounts(t *testing.T) {
	m, s := load(t)
	want := m.DB.ComputeStats()
	got := s.Counts()
	if got.Elements != want.Elements {
		t.Fatalf("elements = %d, want %d", got.Elements, want.Elements)
	}
	if got.StructNodes != want.StructuralNodes {
		t.Fatalf("struct nodes = %d, want %d", got.StructNodes, want.StructuralNodes)
	}
	if got.ContentNodes == 0 {
		t.Fatal("content nodes = 0")
	}
	db, err := s.DataBytes()
	if err != nil || db <= 0 {
		t.Fatalf("data bytes = %d, %v", db, err)
	}
	if s.IndexBytes() <= 0 {
		t.Fatal("index bytes = 0")
	}
}

func TestScanTagIsStartOrdered(t *testing.T) {
	_, s := load(t)
	for _, c := range s.Colors() {
		for _, tag := range []string{"movie", "name", "movie-genre", "actor"} {
			nodes, err := s.ScanTag(c, tag)
			if err != nil {
				t.Fatal(err)
			}
			if !sort.SliceIsSorted(nodes, func(i, j int) bool { return nodes[i].Start < nodes[j].Start }) {
				t.Fatalf("ScanTag(%s, %s) not start ordered", c, tag)
			}
		}
	}
	movies, _ := s.ScanTag("red", "movie")
	if len(movies) != 4 {
		t.Fatalf("red movies = %d, want 4", len(movies))
	}
	greenMovies, _ := s.ScanTag("green", "movie")
	if len(greenMovies) != 3 {
		t.Fatalf("green movies = %d, want 3", len(greenMovies))
	}
	if s.CountTag("blue", "actor") != 4 {
		t.Fatalf("blue actors = %d", s.CountTag("blue", "actor"))
	}
}

func TestIntervalInvariants(t *testing.T) {
	_, s := load(t)
	for _, c := range s.Colors() {
		all := map[string][]storage.SNode{}
		for _, tag := range []string{"movie", "movie-genre", "movie-genres", "name", "votes", "actor", "actors", "movie-role", "movie-award", "movie-awards", "year"} {
			ns, err := s.ScanTag(c, tag)
			if err != nil {
				t.Fatal(err)
			}
			all[tag] = ns
		}
		// Genre contains its movies (red).
		if c == "red" {
			for _, mv := range all["movie"] {
				found := false
				for _, g := range all["movie-genre"] {
					if g.Contains(mv) {
						found = true
					}
				}
				if !found {
					t.Fatalf("movie %v not contained in any red genre", mv)
				}
			}
		}
		// Intervals nest or are disjoint, never partially overlap.
		var flat []storage.SNode
		for _, ns := range all {
			flat = append(flat, ns...)
		}
		for i := range flat {
			for j := range flat {
				a, b := flat[i], flat[j]
				if a.Start >= b.Start || a.Color != b.Color {
					continue
				}
				if b.Start < a.End && b.End > a.End {
					t.Fatalf("partial overlap: %+v vs %+v", a, b)
				}
			}
		}
	}
}

func TestElemAndContent(t *testing.T) {
	m, s := load(t)
	eveName := storage.ElemID(m.Node("eve-name").ID())
	e, err := s.Elem(eveName)
	if err != nil {
		t.Fatal(err)
	}
	if e.Tag != "name" || e.Content != "All About Eve" {
		t.Fatalf("elem = %+v", e)
	}
	content, err := s.ContentOf(eveName)
	if err != nil || content != "All About Eve" {
		t.Fatalf("content = %q, %v", content, err)
	}
	if _, err := s.Elem(99999); err == nil {
		t.Fatal("missing element should fail")
	}
}

func TestEqContentIndex(t *testing.T) {
	_, s := load(t)
	hits, err := s.EqContent("red", "name", "Comedy")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("EqContent = %d hits", len(hits))
	}
	none, _ := s.EqContent("red", "name", "Nonexistent")
	if len(none) != 0 {
		t.Fatal("expected no hits")
	}
}

func TestScanContains(t *testing.T) {
	_, s := load(t)
	hits, err := s.ScanContains("red", "name", func(c string) bool {
		return storage.ContainsFold(c, "Eve")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("contains Eve = %d hits", len(hits))
	}
}

func TestAttrIndex(t *testing.T) {
	m := fixtures.NewMovieDB()
	if _, err := m.DB.SetAttribute(m.Node("eve"), "id", "m1"); err != nil {
		t.Fatal(err)
	}
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := s.EqAttr("id", "m1")
	if len(ids) != 1 || ids[0] != storage.ElemID(m.Node("eve").ID()) {
		t.Fatalf("EqAttr = %v", ids)
	}
}

func TestCrossTreeJoin(t *testing.T) {
	m, s := load(t)
	eve := storage.ElemID(m.Node("eve").ID())
	// eve participates in red and green.
	red, ok, err := s.CrossTree(eve, "red")
	if err != nil || !ok {
		t.Fatalf("red cross: %v %v", ok, err)
	}
	green, ok, err := s.CrossTree(eve, "green")
	if err != nil || !ok {
		t.Fatalf("green cross: %v %v", ok, err)
	}
	if red.Color != "red" || green.Color != "green" || red.Elem != green.Elem {
		t.Fatalf("cross results: %+v %+v", red, green)
	}
	if _, ok, _ := s.CrossTree(eve, "blue"); ok {
		t.Fatal("eve is not blue")
	}
	colors := s.ColorsOf(eve)
	if len(colors) != 2 || colors[0] != "green" || colors[1] != "red" {
		t.Fatalf("ColorsOf = %v", colors)
	}
}

func TestParentChildrenSubtree(t *testing.T) {
	m, s := load(t)
	comedy := storage.ElemID(m.Node("comedy").ID())
	sn, ok, err := s.StructOf(comedy, "red")
	if err != nil || !ok {
		t.Fatal(err)
	}
	kids, err := s.ChildrenOf(sn)
	if err != nil {
		t.Fatal(err)
	}
	// comedy: name, slapstick, eve, hot.
	if len(kids) != 4 {
		t.Fatalf("children = %d, want 4", len(kids))
	}
	for _, k := range kids {
		if !sn.IsParentOf(k) {
			t.Fatalf("IsParentOf failed for %+v", k)
		}
	}
	desc, err := s.Subtree(sn)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) <= len(kids) {
		t.Fatalf("descendants = %d", len(desc))
	}
	parent, ok, err := s.ParentOf(kids[0])
	if err != nil || !ok || parent.Elem != comedy {
		t.Fatalf("ParentOf = %+v, %v, %v", parent, ok, err)
	}
	roots, err := s.Roots("red")
	if err != nil || len(roots) != 1 {
		t.Fatalf("red roots = %v, %v", roots, err)
	}
}

func TestUpdateContent(t *testing.T) {
	m, s := load(t)
	votes := storage.ElemID(m.Node("eve-votes").ID())
	if err := s.UpdateContent(votes, "15"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.ContentOf(votes)
	if got != "15" {
		t.Fatalf("content = %q", got)
	}
	// Content index re-keyed.
	hits, _ := s.EqContent("green", "votes", "15")
	if len(hits) != 1 {
		t.Fatalf("EqContent(15) = %d", len(hits))
	}
	old, _ := s.EqContent("green", "votes", "14")
	if len(old) != 0 {
		t.Fatal("old content key should be gone")
	}
	// Larger content forces record relocation.
	if err := s.UpdateContent(votes, "a considerably longer content value than before"); err != nil {
		t.Fatal(err)
	}
	got, _ = s.ContentOf(votes)
	if got != "a considerably longer content value than before" {
		t.Fatalf("relocated content = %q", got)
	}
}

func TestInsertLeafChild(t *testing.T) {
	m, s := load(t)
	bette := storage.ElemID(m.Node("bette").ID())
	sn, _, err := s.StructOf(bette, "blue")
	if err != nil {
		t.Fatal(err)
	}
	before := s.Counts().Elements
	child, err := s.InsertLeafChild(sn, "birthDate", "1908-04-05", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counts().Elements != before+1 {
		t.Fatal("element count did not grow")
	}
	if !sn.IsParentOf(child) {
		t.Fatalf("child not under parent: %+v / %+v", sn, child)
	}
	kids, err := s.ChildrenOf(sn)
	if err != nil {
		t.Fatal(err)
	}
	last := kids[len(kids)-1]
	if last.Elem != child.Elem {
		t.Fatalf("inserted child not last: %+v", kids)
	}
	found, _ := s.ScanTag("blue", "birthDate")
	if len(found) != 1 {
		t.Fatalf("tag index missing new leaf: %v", found)
	}
}

func TestInsertTriggersRenumber(t *testing.T) {
	m, s := load(t)
	bette := storage.ElemID(m.Node("bette").ID())
	sn, _, err := s.StructOf(bette, "blue")
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the gap: insert many leaves under one parent.
	for i := 0; i < 100; i++ {
		var err error
		sn, _, err = s.StructOf(bette, "blue")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.InsertLeafChild(sn, "x", "v", nil); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	sn, _, _ = s.StructOf(bette, "blue")
	kids, err := s.ChildrenOf(sn)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 102 { // name + movie-role + 100 inserted
		t.Fatalf("children = %d, want 102", len(kids))
	}
	// Intervals remain nested after renumbering.
	for _, k := range kids {
		if !sn.Contains(k) || !sn.IsParentOf(k) {
			t.Fatalf("broken nesting after renumber: parent %+v child %+v", sn, k)
		}
	}
	// Cross-links survive renumbering: movie-role is red+blue.
	role := storage.ElemID(m.Node("eve-role").ID())
	red, ok, err := s.CrossTree(role, "red")
	if err != nil || !ok {
		t.Fatalf("cross after renumber: %v %v", ok, err)
	}
	if red.Color != "red" {
		t.Fatal("wrong color")
	}
}

func TestDeleteSubtree(t *testing.T) {
	m, s := load(t)
	// Delete the green subtree of y1950: removes eve's green struct node but
	// keeps eve alive (it is red too); the green-only votes element dies.
	y1950 := storage.ElemID(m.Node("y1950").ID())
	sn, _, err := s.StructOf(y1950, "green")
	if err != nil {
		t.Fatal(err)
	}
	eve := storage.ElemID(m.Node("eve").ID())
	votes := storage.ElemID(m.Node("eve-votes").ID())
	if err := s.DeleteSubtree(sn); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.CrossTree(eve, "green"); ok {
		t.Fatal("eve should have lost green")
	}
	if _, ok, _ := s.CrossTree(eve, "red"); !ok {
		t.Fatal("eve should keep red")
	}
	if _, err := s.Elem(votes); err == nil {
		t.Fatal("green-only votes element should be gone")
	}
	if _, err := s.Elem(eve); err != nil {
		t.Fatal("eve's element record must survive")
	}
	greenMovies, _ := s.ScanTag("green", "movie")
	for _, mv := range greenMovies {
		if mv.Elem == eve {
			t.Fatal("tag index still lists deleted struct node")
		}
	}
}

func TestBufferStatsObserveScans(t *testing.T) {
	_, s := load(t)
	s.Pages().ResetStats()
	if _, err := s.ScanTag("red", "movie"); err != nil {
		t.Fatal(err)
	}
	st := s.Pages().Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("scan should touch pages")
	}
}

func TestRootsOfEachColor(t *testing.T) {
	_, s := load(t)
	for _, c := range []core.Color{"red", "green", "blue"} {
		roots, err := s.Roots(c)
		if err != nil || len(roots) != 1 {
			t.Fatalf("roots(%s) = %v, %v", c, roots, err)
		}
		if roots[0].Level != 0 || roots[0].ParentStart != -1 {
			t.Fatalf("root shape: %+v", roots[0])
		}
	}
}
