package storage_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"colorfulxml/internal/storage"
	"colorfulxml/internal/vfs"
)

// quickRetry is a retry schedule that never really sleeps.
func quickRetry() vfs.RetryPolicy {
	return vfs.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Budget:      time.Second,
		Seed:        3,
		Sleep:       func(time.Duration) {},
	}
}

// TestTornTailSurvivesSecondRecovery is the regression test for a latent
// recovery bug: a torn WAL tail used to survive the first recovery on disk,
// and once that incarnation rotated to a fresh segment the torn one was no
// longer final — so the SECOND recovery rejected it as hard corruption.
// Recovery now truncates the torn tail in place.
func TestTornTailSurvivesSecondRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db := buildShadow(t)
	commit(t, db, d, st)
	shadowAtOne := buildShadow(t)
	if _, err := db.AddElementText(db.NodeByID(1), "item", "paper", "torn-away"); err != nil {
		t.Fatal(err)
	}
	commit(t, db, d, st)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	// First recovery drops the tail; its rotation makes the torn segment
	// non-final.
	d2, _, stats, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TornTail {
		t.Fatalf("tear not detected: %+v", stats)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second recovery must still succeed, with the same surviving state.
	_, st3, stats3, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatalf("second recovery after torn tail: %v", err)
	}
	if stats3.TornTail {
		t.Fatalf("tail reported torn again after truncation: %+v", stats3)
	}
	mustIso(t, shadowAtOne, st3)
}

func TestDurableRetriesTransientAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{FS: ffs, Retry: quickRetry()})
	if err != nil {
		t.Fatal(err)
	}
	db := buildShadow(t)

	// Fail the next durability operation (the commit's WAL write) once.
	ffs.Schedule(ffs.Ops(), vfs.Fault{Err: vfs.ErrIO})
	commit(t, db, d, st)
	if ffs.Injected() != 1 {
		t.Fatalf("fault not consumed: injected=%d", ffs.Injected())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, _, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustIso(t, db, st2)
}

func TestDurableRetriesCheckpointInstall(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{FS: ffs, Retry: quickRetry()})
	if err != nil {
		t.Fatal(err)
	}
	db := buildShadow(t)
	commit(t, db, d, st)
	epoch, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// Fail the checkpoint's tmp-file create once; the install must retry
	// the whole sequence and land the checkpoint.
	ffs.Schedule(ffs.Ops(), vfs.Fault{Err: vfs.ErrDiskFull})
	if err := d.InstallCheckpoint(epoch, st); err != nil {
		t.Fatalf("install through transient fault: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, stats, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CheckpointLoaded || stats.CheckpointEpoch != epoch {
		t.Fatalf("checkpoint not installed: %+v", stats)
	}
	mustIso(t, db, st2)
}

func TestResealAfterOutage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	d, st, _, err := storage.OpenDurable(dir, storage.DurableOptions{FS: ffs, Retry: quickRetry()})
	if err != nil {
		t.Fatal(err)
	}
	db := buildShadow(t)
	commit(t, db, d, st)

	// A hard outage: the in-flight commit fails without retries and the
	// writer is poisoned. The in-memory mutation is NOT applied to st —
	// exactly the rollback contract the serving layer maintains.
	ffs.SetStanding(vfs.Permanent(vfs.ErrIO))
	if _, err := db.AddElementText(db.NodeByID(1), "item", "paper", "lost"); err != nil {
		t.Fatal(err)
	}
	lost, _ := db.DrainChanges()
	if err := d.Append(lost); err == nil {
		t.Fatal("append succeeded through a standing outage")
	}
	if err := d.Append(lost); err == nil {
		t.Fatal("poisoned writer accepted another append")
	}

	// Disk comes back: reseal around a checkpoint of the committed state.
	ffs.Clear()
	if err := d.Reseal(st); err != nil {
		t.Fatalf("reseal: %v", err)
	}

	// Commits flow again and land in the new log. The mutator works on the
	// rolled-back committed state, as the serving layer does after a failed
	// commit.
	db2, err := storage.Reconstruct(st)
	if err != nil {
		t.Fatal(err)
	}
	db2.DrainChanges() // discard reconstruction's own change records
	if _, err := db2.AddElementText(db2.NodeByID(1), "item", "paper", "after-heal"); err != nil {
		t.Fatal(err)
	}
	post, _ := db2.DrainChanges()
	if err := d.Append(post); err != nil {
		t.Fatalf("append after reseal: %v", err)
	}
	if err := st.ApplyChanges(post); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	_, st2, stats, err := storage.OpenDurable(dir, storage.DurableOptions{})
	if err != nil {
		t.Fatalf("recovery after reseal: %v", err)
	}
	if !stats.CheckpointLoaded {
		t.Fatalf("reseal installed no checkpoint: %+v", stats)
	}
	mustIso(t, db2, st2)
}

func TestProbeDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	d, _, _, err := storage.OpenDurable(dir, storage.DurableOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.ProbeDisk(); err != nil {
		t.Fatalf("probe on a healthy disk: %v", err)
	}
	ffs.SetStanding(vfs.ErrIO)
	if err := d.ProbeDisk(); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("probe on a broken disk: %v", err)
	}
	ffs.Clear()
	if err := d.ProbeDisk(); err != nil {
		t.Fatalf("probe after outage cleared: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "probe.tmp")); !os.IsNotExist(err) {
		t.Fatal("probe scratch file left behind")
	}
}
