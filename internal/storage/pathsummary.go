package storage

import (
	"sort"
	"strings"

	"colorfulxml/internal/core"
)

// This file is the DataGuide-style path summary: one entry per distinct
// root-anchored label path of a colored tree, carrying the structural-record
// refs of its instances. The plan compiler consults it (through
// plan.PathCatalog) to lower fully-resolvable colored path expressions to a
// direct summary probe instead of a structural-join chain, and to cost that
// access path with an exact cardinality.
//
// Summaries are per-color, built lazily on first probe by one pass over the
// color's structural nodes in start order, and cached on the store. A cached
// summary is immutable, so snapshot clones share it; only structural
// mutations (inserts, recolorings, deletions, renumbering) invalidate the
// cache — content and attribute updates leave every label path intact.

// PathStep is one step of a root-anchored label-path pattern. Desc means the
// step's tag may sit at any depth below the previous step (descendant axis,
// "//tag"); otherwise it must be a direct child ("/tag"). The first step is
// relative to the document, so Desc on it means "at any depth" and !Desc
// means "a root element".
type PathStep struct {
	Tag  string
	Desc bool
}

// PathString renders steps in XPath-ish form, for plan display.
func PathString(steps []PathStep) string {
	var b strings.Builder
	for _, st := range steps {
		if st.Desc {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(st.Tag)
	}
	return b.String()
}

// PathSummary is the summary of one colored tree: every distinct
// root-anchored label path, with the refs of its instances in start order.
type PathSummary struct {
	paths map[string][]uint64
}

// pathSep joins path labels into map keys. Tags never contain '\x00'.
const pathSep = "\x00"

// buildPathSummary scans a color's structural nodes in global start order,
// maintaining the ancestor stack, and buckets each node's ref under its
// root-anchored label path.
func (s *Store) buildPathSummary(c core.Color) (*PathSummary, error) {
	ps := &PathSummary{paths: map[string][]uint64{}}
	type frame struct {
		end  int64
		path string
	}
	var stack []frame
	var scanErr error
	obsIndexProbes.Inc()
	s.startIdx.Prefix(string(c)+"|", func(_ string, refs []uint64) bool {
		for _, ref := range refs {
			sn, err := s.readStructRef(ref, c)
			if err != nil {
				scanErr = err
				return false
			}
			e, err := s.Elem(sn.Elem)
			if err != nil {
				scanErr = err
				return false
			}
			for len(stack) > 0 && stack[len(stack)-1].end < sn.Start {
				stack = stack[:len(stack)-1]
			}
			path := e.Tag
			if len(stack) > 0 {
				path = stack[len(stack)-1].path + pathSep + e.Tag
			}
			stack = append(stack, frame{end: sn.End, path: path})
			ps.paths[path] = append(ps.paths[path], ref)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return ps, nil
}

// PathSummary returns the (lazily built, cached) path summary of a color.
// A color the store does not contain yields an empty summary.
func (s *Store) PathSummary(c core.Color) (*PathSummary, error) {
	s.pathMu.Lock()
	if ps, ok := s.pathSums[c]; ok {
		s.pathMu.Unlock()
		obsPathSummaryProbes.Inc()
		return ps, nil
	}
	s.pathMu.Unlock()

	// Build outside the lock: the store snapshot is immutable while serving,
	// and a racing duplicate build is harmless (last writer wins, both
	// results are identical).
	ps, err := s.buildPathSummary(c)
	if err != nil {
		return nil, err
	}
	obsPathSummaryBuilds.Inc()

	s.pathMu.Lock()
	if s.pathSums == nil {
		s.pathSums = map[core.Color]*PathSummary{}
	}
	s.pathSums[c] = ps
	s.pathMu.Unlock()
	obsPathSummaryProbes.Inc()
	return ps, nil
}

// invalidatePathSummaries drops cached summaries; called by every structural
// mutation (content/attribute updates preserve label paths and do not). The
// same call sites define the stats/schema epoch: whatever invalidates the
// path summary also invalidates cached compiled plans, so the epoch bump
// rides along here rather than being scattered over the mutators.
func (s *Store) invalidatePathSummaries() {
	s.pathMu.Lock()
	s.pathSums = nil
	s.pathMu.Unlock()
	s.bumpStatsEpoch()
}

// clonePathSums shares the cached summaries with a snapshot clone (they are
// immutable; the clone invalidates its own copy of the map on structural
// mutation without affecting the parent).
func (s *Store) clonePathSums() map[core.Color]*PathSummary {
	s.pathMu.Lock()
	defer s.pathMu.Unlock()
	if s.pathSums == nil {
		return nil
	}
	m := make(map[core.Color]*PathSummary, len(s.pathSums))
	for c, ps := range s.pathSums {
		m[c] = ps
	}
	return m
}

// matchSteps reports whether a label path (split on pathSep) satisfies a
// step pattern anchored at the path's first label.
func matchSteps(steps []PathStep, labels []string) bool {
	if len(steps) == 0 {
		return len(labels) == 0
	}
	st := steps[0]
	if !st.Desc {
		return len(labels) > 0 && labels[0] == st.Tag && matchSteps(steps[1:], labels[1:])
	}
	for i := 0; i < len(labels); i++ {
		if labels[i] == st.Tag && matchSteps(steps[1:], labels[i+1:]) {
			return true
		}
	}
	return false
}

// Match returns the refs of every node whose root-anchored label path
// satisfies the pattern, grouped by path in sorted path order (deterministic,
// but not globally start-ordered across paths — consumers needing document
// order sort the resolved nodes). Each node appears at most once: it has
// exactly one root path.
func (ps *PathSummary) Match(steps []PathStep) []uint64 {
	keys := make([]string, 0, len(ps.paths))
	for path := range ps.paths {
		if matchSteps(steps, strings.Split(path, pathSep)) {
			keys = append(keys, path)
		}
	}
	sort.Strings(keys)
	var out []uint64
	for _, k := range keys {
		out = append(out, ps.paths[k]...)
	}
	return out
}

// Count returns the number of nodes Match would yield, without touching the
// refs (the compiler's costing probe).
func (ps *PathSummary) Count(steps []PathStep) int {
	n := 0
	for path, refs := range ps.paths {
		if matchSteps(steps, strings.Split(path, pathSep)) {
			n += len(refs)
		}
	}
	return n
}

// Paths returns the number of distinct label paths in the summary.
func (ps *PathSummary) Paths() int { return len(ps.paths) }
