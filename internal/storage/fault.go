package storage

import (
	"fmt"

	"colorfulxml/internal/vfs"
	"colorfulxml/internal/wal"
)

// Fault-tolerance plumbing for the durable store: the shared retry loop, the
// atomic file-replacement helper behind torn-tail truncation, the Reseal
// healing protocol, and the disk probe the degraded-mode recovery loop polls.

// retrying runs op, retrying transient failures under policy p (see
// vfs.Backoff). Each retried attempt must be re-runnable from scratch.
func retrying(p vfs.RetryPolicy, op func() error) error {
	b := vfs.NewBackoff(p)
	for {
		err := op()
		if err == nil {
			return nil
		}
		delay, ok := b.Next(err)
		if !ok {
			return err
		}
		obsRetries.Inc()
		obsRetryBackoffNanos.Observe(int64(delay))
	}
}

// replaceFile atomically replaces dir/name with the given contents via
// tmp + fsync + rename + dir-fsync; a crash leaves either the old file or the
// new one, never a mix.
func replaceFile(fs vfs.FS, dir, name string, contents []byte) error {
	path := vfs.Join(dir, name)
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if len(contents) > 0 {
		if _, err := f.Write(contents); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// Reseal abandons the current WAL segment — whose on-disk state is unknown
// after an exhausted-retry flush failure — and re-founds the log around a
// fresh checkpoint of st, the last committed state. The protocol is
// checkpoint-first: installing checkpoint E = seg+1 moves MANIFEST past the
// broken segment (making it unreferenced garbage) before the new segment E is
// created, so a crash at any step recovers to either the old epoch (the
// broken segment is final again and its torn tail is dropped at replay) or
// the new one. On success the store accepts commits again; on failure the
// directory is unchanged from recovery's point of view and Reseal may be
// retried with the same st.
func (d *Durable) Reseal(st *Store) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.w == nil {
		return fmt.Errorf("storage: durable store is closed")
	}
	nextSeq := d.w.NextSeq()
	d.w.Abandon()
	epoch := d.seg + 1
	if err := d.InstallCheckpoint(epoch, st); err != nil {
		return fmt.Errorf("storage: reseal: %w", err)
	}
	var f vfs.File
	err := retrying(d.retry, func() error {
		var err error
		f, err = d.fs.Create(vfs.Join(d.dir, segFile(epoch)))
		if err != nil {
			return err
		}
		if err := d.fs.SyncDir(d.dir); err != nil {
			f.Close()
			return err
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("storage: reseal: %w", err)
	}
	w := wal.NewWriter(f, segFile(epoch), nextSeq, d.policy)
	w.SetRetry(d.retry)
	d.w = w
	d.seg = epoch
	obsReseals.Inc()
	return nil
}

// ProbeDisk checks whether the store's directory accepts durable writes
// again: one create + write + fsync + remove of a scratch file, with no
// retries — the caller's recovery loop is itself the retry schedule.
func (d *Durable) ProbeDisk() error {
	path := vfs.Join(d.dir, "probe.tmp")
	f, err := d.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("probe")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return d.fs.Remove(path)
}
