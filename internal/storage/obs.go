package storage

import "colorfulxml/internal/obs"

// Storage instruments: index probe counts at B+-tree lookup granularity
// (one probe per posting-list fetch, so hot scans pay one atomic add per
// operation, not per row), snapshot maintenance activity, and checkpoint
// serialization timing. This package is determinism-scoped by mctlint, so
// all timing goes through obs (exempted outside crashtest/WAL-encode
// paths), never through package time directly.
var (
	obsIndexProbes = obs.NewCounter("storage_index_probes_total")

	obsPathSummaryBuilds = obs.NewCounter("storage_path_summary_builds_total")
	obsPathSummaryProbes = obs.NewCounter("storage_path_summary_probes_total")

	obsSnapshotClones  = obs.NewCounter("storage_snapshot_clones_total")
	obsChangesApplied  = obs.NewCounter("storage_changes_applied_total")
	obsCheckpointSaves = obs.NewCounter("storage_checkpoint_writes_total")
	obsCheckpointLoads = obs.NewCounter("storage_checkpoint_loads_total")

	obsCheckpointWriteNanos = obs.NewHistogram("storage_checkpoint_write_nanos")
	obsCheckpointLoadNanos  = obs.NewHistogram("storage_checkpoint_load_nanos")

	obsRetries          = obs.NewCounter("storage_retries_total")
	obsReseals          = obs.NewCounter("storage_reseals_total")
	obsScrubFiles       = obs.NewCounter("storage_scrub_files_total")
	obsScrubBytes       = obs.NewCounter("storage_scrub_bytes_total")
	obsScrubCorruptions = obs.NewCounter("storage_scrub_corruptions_total")

	obsRetryBackoffNanos = obs.NewHistogram("storage_retry_backoff_nanos")
)
