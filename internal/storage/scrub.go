package storage

import (
	"bytes"
	"errors"
	"fmt"

	"colorfulxml/internal/vfs"
	"colorfulxml/internal/wal"
)

// Online integrity scrubbing: re-verify the durable directory's at-rest
// files — the live checkpoint's page checksums and the sealed WAL segments'
// record CRCs — without stopping the serving path. Scrubbing is read-only
// and incremental: each ScrubOnce call verifies whole files until the byte
// budget is spent (always at least one), resuming where the last call left
// off; a full pass covers the checkpoint plus every sealed segment. The open
// segment is skipped — it is still being appended and is verified by the
// next pass once sealed.

// ScrubCorruption reports one damaged file found by the scrubber.
type ScrubCorruption struct {
	// File is the damaged file's name within the store directory.
	File string
	// Offset is the byte offset of the damage when known, -1 otherwise.
	Offset int64
	// Detail is the underlying verification error.
	Detail string
}

// ScrubResult reports one ScrubOnce increment.
type ScrubResult struct {
	// Files and Bytes count what this increment verified.
	Files int
	Bytes int64
	// PassComplete reports that this increment finished a full pass over the
	// checkpoint and all sealed segments.
	PassComplete bool
	// Corruptions lists files that failed verification twice (each is
	// re-read once before being reported, to rule out a transient read).
	Corruptions []ScrubCorruption
}

// ScrubOnce verifies at-rest files until roughly budget bytes have been read
// (always at least one file; budget <= 0 means one file). Verification
// failures are re-read once before being reported as corruption. Safe to run
// concurrently with commits and checkpoints; a file swept by a concurrent
// checkpoint install is skipped, and an epoch change restarts the pass.
func (d *Durable) ScrubOnce(budget int64) (ScrubResult, error) {
	d.scrubMu.Lock()
	defer d.scrubMu.Unlock()
	var res ScrubResult

	// Snapshot the live epoch and the sealed-segment range.
	data, err := d.fs.ReadFile(vfs.Join(d.dir, manifestName))
	epoch := uint64(1)
	if err == nil {
		if e, perr := parseManifest(data); perr == nil {
			epoch = e
		} else {
			return res, fmt.Errorf("storage: scrub: %w", perr)
		}
	} else if !vfs.IsNotExist(err) {
		return res, fmt.Errorf("storage: scrub: %w", err)
	}
	d.mu.RLock()
	open := d.seg
	d.mu.RUnlock()

	// The pass's file list: the live checkpoint, then sealed segments
	// epoch..open-1. A checkpoint install between calls shifts the list, so
	// an epoch change restarts the pass rather than resuming a stale cursor.
	var files []string
	if _, err := d.fs.Stat(vfs.Join(d.dir, ckptFile(epoch))); err == nil {
		files = append(files, ckptFile(epoch))
	}
	for n := epoch; n < open; n++ {
		files = append(files, segFile(n))
	}
	if d.scrubEpoch != epoch || d.scrubPos > len(files) {
		d.scrubEpoch = epoch
		d.scrubPos = 0
	}
	if len(files) == 0 {
		res.PassComplete = true
		return res, nil
	}

	for d.scrubPos < len(files) {
		name := files[d.scrubPos]
		d.scrubPos++
		n, corr, err := d.scrubFile(name)
		if err != nil {
			return res, err
		}
		res.Files++
		res.Bytes += n
		if corr != nil {
			res.Corruptions = append(res.Corruptions, *corr)
			obsScrubCorruptions.Inc()
		}
		obsScrubFiles.Inc()
		obsScrubBytes.Add(uint64(n))
		if budget > 0 && res.Bytes >= budget {
			break
		}
	}
	if d.scrubPos >= len(files) {
		res.PassComplete = true
		d.scrubPos = 0
	}
	return res, nil
}

// scrubFile verifies one file, re-reading once on failure. A missing file
// (swept by a concurrent checkpoint) is not an error and not corruption.
func (d *Durable) scrubFile(name string) (int64, *ScrubCorruption, error) {
	var lastCorr *ScrubCorruption
	var bytesRead int64
	for attempt := 0; attempt < 2; attempt++ {
		data, err := d.fs.ReadFile(vfs.Join(d.dir, name))
		if vfs.IsNotExist(err) {
			return bytesRead, nil, nil
		}
		if err != nil {
			return bytesRead, nil, fmt.Errorf("storage: scrub %s: %w", name, err)
		}
		bytesRead += int64(len(data))
		verr := verifyImage(name, data)
		if verr == nil {
			return bytesRead, nil, nil
		}
		lastCorr = &ScrubCorruption{File: name, Offset: -1, Detail: verr.Error()}
		var ce *wal.CorruptError
		if errors.As(verr, &ce) {
			lastCorr.Offset = ce.Offset
		}
	}
	return bytesRead, lastCorr, nil
}

// verifyImage checks one file image: checkpoints decode page-by-page with
// checksum validation; sealed segments must parse record-by-record with no
// torn tail allowed.
func verifyImage(name string, data []byte) error {
	if _, ok := parseNumbered(name, "checkpoint-", ".ckpt"); ok {
		_, err := ReadCheckpoint(bytes.NewReader(data), 0)
		return err
	}
	_, err := wal.ReadSegment(data, name, false)
	return err
}
