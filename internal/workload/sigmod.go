package workload

import (
	"colorfulxml/internal/core"
	"colorfulxml/internal/datagen"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/storage"
)

// Color shorthands for the SIGMOD-Record dataset.
var (
	cIss = datagen.ColIssueDate
	cTop = datagen.ColTopic
)

// SigmodQueries returns the five Table 2 SIGMOD-Record queries.
func SigmodQueries() []*Query {
	return []*Query{sq1(), sq2(), sq3(), sq4(), sq5()}
}

// SigmodUpdates returns the two Table 2 SIGMOD-Record updates.
func SigmodUpdates() []*UpdateSpec {
	return []*UpdateSpec{su1(), su2()}
}

// SQ1: article by exact title — an index point lookup everywhere (paper:
// 0.01 across the board).
func sq1() *Query {
	title := func(p Params) string { return p.S.Articles[0].Title }
	return &Query{
		ID: "SQ1", Desc: "article by exact title",
		Colors: 0, Trees: 1,
		Text: map[Variant]string{
			MCT: `for $a in document("sr")/{date}descendant::article[{date}child::title = "T"]
return createColor(black, <r>{ $a/{date}attribute::id }</r>)`,
			Shallow: `for $a in document("sr")//article[title = "T"] return <r>{ $a/@id }</r>`,
			Deep:    `for $a in document("sr")//article[title = "T"] return <r>{ $a/@id }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(p Params) engine.Op {
				return havingChild(scanT(cIss, "article"), 0, eqC(cIss, "title", title(p)))
			},
			Shallow: func(p Params) engine.Op {
				return havingChild(scanT(cDoc, "article"), 0, eqC(cDoc, "title", title(p)))
			},
			Deep: func(p Params) engine.Op {
				return havingChild(scanT(cDoc, "article"), 0, eqC(cDoc, "title", title(p)))
			},
		},
		Out: sameOut(idOut(0)),
	}
}

// SQ2: articles on one topic published in one year — MCT crosses from the
// topic hierarchy to the date hierarchy; shallow value-joins; deep has the
// topic replicated inside the article (paper: 0.02 / 0.91 / 0.02).
func sq2() *Query {
	const topic = "Query Processing"
	const year = "1980"
	return &Query{
		ID: "SQ2", Desc: "articles on '" + topic + "' published in " + year,
		Colors: 1, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $a in document("sr")/{topic}descendant::topic[{topic}child::name = "Query Processing"]/{topic}child::article,
    $d in document("sr")/{date}descendant::year[{date}child::value = "1980"]/{date}descendant::article
where $a = $d
return createColor(black, <r>{ $a/{topic}attribute::id }</r>)`,
			Shallow: `for $t in document("sr")//topic[name = "Query Processing"],
    $a in document("sr")//article,
    $i in document("sr")//year[value = "1980"]/issue
where $a/@topicIdRef = $t/@id and $a/@issueIdRef = $i/@id
return <r>{ $a/@id }</r>`,
			Deep: `for $a in document("sr")//year[value = "1980"]/issue/article[topic/name = "Query Processing"]
return <r>{ $a/@id }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(Params) engine.Op {
				topics := elemWithChildEq(cTop, "topic", "name", topic)
				arts := pc(topics, scanT(cTop, "article"), 0, 0) // [t, a]
				crossed := cross(arts, 1, cIss)                  // +a@date col 2
				years := elemWithChildEq(cIss, "year", "value", year)
				return havingAncIn(crossed, 2, years)
			},
			Shallow: func(Params) engine.Op {
				topics := elemWithChildEq(cDoc, "topic", "name", topic)
				arts := vjoin(scanT(cDoc, "article"), topics, 0, 0, akey("topicIdRef"), akey("id")) // [a, t]
				years := elemWithChildEq(cDoc, "year", "value", year)
				issues := pc(years, scanT(cDoc, "issue"), 0, 0) // [y, i]
				proj := &engine.Project{Input: issues, Cols: []int{1}}
				return vjoin(arts, proj, 0, 0, akey("issueIdRef"), akey("id"))
			},
			Deep: func(Params) engine.Op {
				years := elemWithChildEq(cDoc, "year", "value", year)
				arts := havingAncIn(scanT(cDoc, "article"), 0, years)
				return havingChild(arts, 0, elemWithChildEq(cDoc, "topic", "name", topic))
			},
		},
		Out: map[Variant]Extract{MCT: idOut(1), Shallow: idOut(0), Deep: idOut(0)},
	}
}

// SQ3: articles edited by one editor — structural in MCT and deep, a value
// join over all articles in shallow (paper: 0.02 / 10.32 / 0.02).
func sq3() *Query {
	// Use the editor of the first article's topic, so the query is
	// guaranteed non-empty at every scale and seed.
	name := func(p Params) string {
		topic := p.S.Topics[p.S.Articles[0].Topic-1]
		return p.S.Editors[topic.Editor-1].Name
	}
	return &Query{
		ID: "SQ3", Desc: "articles whose topic is edited by one editor",
		Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $a in document("sr")/{topic}descendant::editor[{topic}child::name = "E"]/{topic}child::topic/{topic}child::article
return createColor(black, <r>{ $a/{topic}attribute::id }</r>)`,
			Shallow: `for $e in document("sr")//editor[name = "E"],
    $t in $e/topic,
    $a in document("sr")//article
where $a/@topicIdRef = $t/@id
return <r>{ $a/@id }</r>`,
			Deep: `for $a in document("sr")//article[topic/editor/name = "E"]
return <r>{ $a/@id }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(p Params) engine.Op {
				eds := elemWithChildEq(cTop, "editor", "name", name(p))
				topics := pc(eds, scanT(cTop, "topic"), 0, 0) // [e, t]
				return pc2(topics, scanT(cTop, "article"), 1, 0)
			},
			Shallow: func(p Params) engine.Op {
				eds := elemWithChildEq(cDoc, "editor", "name", name(p))
				topics := pc(eds, scanT(cDoc, "topic"), 0, 0) // [e, t]
				proj := &engine.Project{Input: topics, Cols: []int{1}}
				return vjoin(scanT(cDoc, "article"), proj, 0, 0, akey("topicIdRef"), akey("id"))
			},
			Deep: func(p Params) engine.Op {
				// editor name is replicated inside each article's topic copy.
				eds := havingChild(scanT(cDoc, "editor"), 0, eqC(cDoc, "name", name(p)))
				topics := pc(scanT(cDoc, "topic"), eds, 0, 0) // [t, e]
				return pc(scanT(cDoc, "article"), topics, 0, 0)
			},
		},
		Out: map[Variant]Extract{MCT: idOut(2), Shallow: idOut(0), Deep: idOut(0)},
	}
}

// SQ4: editors whose name contains a fragment — trivially small for MCT and
// shallow; deep must scan one replicated editor copy per article and
// deduplicate (paper: 0.01 / 0.01 / 0.30, SQ4D: 1994 rows).
func sq4() *Query {
	pred := engine.Pred{Kind: "contains", Value: "a"}
	deepBase := func(Params) engine.Op {
		eds := havingChild(scanT(cDoc, "editor"), 0, containsC(cDoc, "name", pred))
		return pc(eds, scanT(cDoc, "name"), 0, 0) // [editor, name] (copies)
	}
	return &Query{
		ID: "SQ4", Desc: "editors whose name contains a fragment",
		Colors: 0, Trees: 1,
		Text: map[Variant]string{
			MCT: `for $e in document("sr")/{topic}descendant::editor[contains({topic}child::name, "a")]
return createColor(black, <r>{ $e/{topic}child::name }</r>)`,
			Shallow: `for $e in document("sr")//editor[contains(name, "a")] return <r>{ $e/name }</r>`,
			Deep: `for $n in distinct-values(document("sr")//editor[contains(name, "a")]/name)
return <r>{ $n }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(Params) engine.Op {
				eds := havingChild(scanT(cTop, "editor"), 0, containsC(cTop, "name", pred))
				return pc(eds, scanT(cTop, "name"), 0, 0)
			},
			Shallow: func(Params) engine.Op {
				eds := havingChild(scanT(cDoc, "editor"), 0, containsC(cDoc, "name", pred))
				return pc(eds, scanT(cDoc, "name"), 0, 0)
			},
			Deep: func(p Params) engine.Op {
				return &engine.DedupContent{Input: deepBase(p), Col: 1}
			},
		},
		DeepNoDedup: deepBase,
		Out:         sameOut(Extract{Col: 1}),
	}
}

// SQ5: titles of articles published in one year — structural for MCT and
// deep (the date hierarchy), a value join for shallow (paper: 0.01 / 3.11 /
// 0.01).
func sq5() *Query {
	const year = "1979"
	structural := func(c core2) engine.Op {
		years := elemWithChildEq(c, "year", "value", year)
		issues := pc(years, scanT(c, "issue"), 0, 0)   // [y, i]
		arts := pc2(issues, scanT(c, "article"), 1, 0) // +a col 2
		return pc2(arts, scanT(c, "title"), 2, 0)      // +title col 3
	}
	return &Query{
		ID: "SQ5", Desc: "titles of articles published in " + year,
		Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $a in document("sr")/{date}descendant::year[{date}child::value = "1979"]/{date}descendant::article
return createColor(black, <r>{ $a/{date}child::title }</r>)`,
			Shallow: `for $i in document("sr")//year[value = "1979"]/issue,
    $a in document("sr")//article
where $a/@issueIdRef = $i/@id
return <r>{ $a/title }</r>`,
			Deep: `for $a in document("sr")//year[value = "1979"]//article
return <r>{ $a/title }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(Params) engine.Op { return structural(cIss) },
			Shallow: func(Params) engine.Op {
				years := elemWithChildEq(cDoc, "year", "value", year)
				issues := pc(years, scanT(cDoc, "issue"), 0, 0)
				proj := &engine.Project{Input: issues, Cols: []int{1}}
				arts := vjoin(scanT(cDoc, "article"), proj, 0, 0, akey("issueIdRef"), akey("id")) // [a, i]
				return pc2(arts, scanT(cDoc, "title"), 0, 0)                                      // +title col 2
			},
			Deep: func(Params) engine.Op { return structural(cDoc) },
		},
		Out: map[Variant]Extract{
			MCT: {Col: 3}, Shallow: {Col: 2}, Deep: {Col: 3},
		},
	}
}

// core2 aliases core.Color locally to keep sq5's helper signature short.
type core2 = core.Color

// SU1: rename a topic — one element for MCT/shallow, one copy per article on
// that topic for deep (paper SU1: 5 nodes vs SU1D: 25).
func su1() *UpdateSpec {
	const topic = "Benchmarking"
	const newName = "Benchmarks and Evaluation"
	return &UpdateSpec{
		ID: "SU1", Desc: "rename topic " + topic,
		Colors: 0, Trees: 1,
		Text: map[Variant]string{
			MCT: `for $t in document("sr")/{topic}descendant::topic[{topic}child::name = "Benchmarking"]
update $t { replace $t/{topic}child::name with "Benchmarks and Evaluation" }`,
			Shallow: `for $t in document("sr")//topic[name = "Benchmarking"]
update $t { replace $t/name with "Benchmarks and Evaluation" }`,
			Deep: `for $t in document("sr")//topic[name = "Benchmarking"]
update $t { replace $t/name with "Benchmarks and Evaluation" }`,
		},
		Run: map[Variant]func(*storage.Store, Params) (int, error){
			MCT: func(s *storage.Store, p Params) (int, error) {
				t := elemWithChildEq(cTop, "topic", "name", topic)
				names := pc(t, scanT(cTop, "name"), 0, 0)
				return updateContentTargets(s, names, 1, newName)
			},
			Shallow: func(s *storage.Store, p Params) (int, error) {
				t := elemWithChildEq(cDoc, "topic", "name", topic)
				names := pc(t, scanT(cDoc, "name"), 0, 0)
				return updateContentTargets(s, names, 1, newName)
			},
			Deep: func(s *storage.Store, p Params) (int, error) {
				t := havingChild(scanT(cDoc, "topic"), 0, eqC(cDoc, "name", topic))
				names := pc(t, scanT(cDoc, "name"), 0, 0)
				return updateContentTargets(s, names, 1, newName)
			},
		},
	}
}

// SU2: rename the editor of one topic — the WHERE spans both hierarchies.
// Deep touches one editor copy per article on the topic (paper SU2: 1 vs
// SU2D: 7).
func su2() *UpdateSpec {
	const topic = "Indexing"
	const newName = "New Editor"
	return &UpdateSpec{
		ID: "SU2", Desc: "rename the editor of topic " + topic,
		Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $e in document("sr")/{topic}descendant::editor[{topic}child::topic/{topic}child::name = "Indexing"]
update $e { replace $e/{topic}child::name with "New Editor" }`,
			Shallow: `for $e in document("sr")//editor[topic/name = "Indexing"]
update $e { replace $e/name with "New Editor" }`,
			Deep: `for $e in document("sr")//topic[name = "Indexing"]/editor
update $e { replace $e/name with "New Editor" }`,
		},
		Run: map[Variant]func(*storage.Store, Params) (int, error){
			MCT: func(s *storage.Store, p Params) (int, error) {
				topics := elemWithChildEq(cTop, "topic", "name", topic)
				eds := pc(scanT(cTop, "editor"), topics, 0, 0) // [e, t]
				names := pc2(eds, scanT(cTop, "name"), 0, 0)   // +name col 2
				return updateContentTargets(s, names, 2, newName)
			},
			Shallow: func(s *storage.Store, p Params) (int, error) {
				topics := elemWithChildEq(cDoc, "topic", "name", topic)
				eds := pc(scanT(cDoc, "editor"), topics, 0, 0)
				names := pc2(eds, scanT(cDoc, "name"), 0, 0)
				return updateContentTargets(s, names, 2, newName)
			},
			Deep: func(s *storage.Store, p Params) (int, error) {
				topics := havingChild(scanT(cDoc, "topic"), 0, eqC(cDoc, "name", topic))
				eds := pc2(topics, scanT(cDoc, "editor"), 0, 0) // [t, e]
				names := pc2(eds, scanT(cDoc, "name"), 1, 0)    // +name col 2
				return updateContentTargets(s, names, 2, newName)
			},
		},
	}
}

// havingAncIn keeps rows whose column has an ANCESTOR among probe's rows.
func havingAncIn(in engine.Op, col int, probe engine.Op) engine.Op {
	return &engine.ExistsJoin{Input: in, Probe: probe, Col: col, ProbeCol: 0,
		InputIsDesc: true}
}
