package workload

import (
	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/join"
)

// Plan-building shorthands. Column conventions are noted at each use site:
// engine.StructJoin emits anc-row ++ desc-row; engine.CrossColor appends the
// crossed structural node as a new last column.

// scanT is an index scan.
func scanT(c core.Color, tag string) engine.Op {
	return &engine.ScanTag{Color: c, Tag: tag}
}

// eqC is a content-index lookup.
func eqC(c core.Color, tag, val string) engine.Op {
	return &engine.EqContent{Color: c, Tag: tag, Value: val}
}

// containsC scans a tag applying a content predicate.
func containsC(c core.Color, tag string, pred engine.Pred) engine.Op {
	return &engine.ContainsScan{Color: c, Tag: tag, Pred: pred}
}

// pc joins anc (column ancCol) as parent of desc (column descCol).
func pc(anc, desc engine.Op, ancCol, descCol int) engine.Op {
	return &engine.StructJoin{Anc: anc, Desc: desc, AncCol: ancCol, DescCol: descCol, Axis: join.ParentChild}
}

// ad joins anc as ancestor of desc.
func ad(anc, desc engine.Op, ancCol, descCol int) engine.Op {
	return &engine.StructJoin{Anc: anc, Desc: desc, AncCol: ancCol, DescCol: descCol, Axis: join.AncestorDescendant}
}

// havingChild keeps rows of in whose column col has a child matching probe.
func havingChild(in engine.Op, col int, probe engine.Op) engine.Op {
	return &engine.ExistsJoin{Input: in, Probe: probe, Col: col, ProbeCol: 0, Axis: join.ParentChild}
}

// havingDesc keeps rows of in whose column col has a descendant matching
// probe.
func havingDesc(in engine.Op, col int, probe engine.Op) engine.Op {
	return &engine.ExistsJoin{Input: in, Probe: probe, Col: col, ProbeCol: 0, Axis: join.AncestorDescendant}
}

// cross appends the To-colored structural node of column col.
func cross(in engine.Op, col int, to core.Color) engine.Op {
	return &engine.CrossColor{Input: in, Col: col, To: to}
}

// vjoin hash-joins left.col's key with right.col's key.
func vjoin(left, right engine.Op, lcol, rcol int, lkey, rkey engine.Key) engine.Op {
	return &engine.ValueJoin{Left: left, Right: right, LeftCol: lcol, RightCol: rcol,
		LeftKey: lkey, RightKey: rkey}
}

// elemWithChildEq returns elements of tag whose child childTag equals val —
// the workhorse "entity by field value" pattern.
func elemWithChildEq(c core.Color, tag, childTag, val string) engine.Op {
	return havingChild(scanT(c, tag), 0, eqC(c, childTag, val))
}

// elemWithChildPred is the predicate-scan version.
func elemWithChildPred(c core.Color, tag, childTag string, pred engine.Pred) engine.Op {
	return havingChild(scanT(c, tag), 0, containsC(c, childTag, pred))
}

// akey builds an attribute key for value joins. Content keys
// (engine.Key{Content: true}) and IDREFS keys (Multi: true) are used
// directly at call sites.
func akey(name string) engine.Key { return engine.Key{Attr: name} }
