package workload_test

import (
	"sort"
	"sync"
	"testing"

	"colorfulxml/internal/workload"
)

var (
	once    sync.Once
	tpcwSt  *workload.Stores
	sigSt   *workload.Stores
	loadErr error
)

func stores(t *testing.T) (*workload.Stores, *workload.Stores) {
	t.Helper()
	once.Do(func() {
		tpcwSt, loadErr = workload.LoadTPCW(1, 1, 0)
		if loadErr != nil {
			return
		}
		sigSt, loadErr = workload.LoadSigmod(1, 5, 0)
	})
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	return tpcwSt, sigSt
}

func sorted(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}

func equalSets(a, b []string) bool {
	a, b = sorted(a), sorted(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueriesAgreeAcrossVariants is the central correctness check of the
// reproduction: every Table 2 query must return the same result set on the
// MCT, shallow and deep representations of the same entity pool.
func TestQueriesAgreeAcrossVariants(t *testing.T) {
	tp, sg := stores(t)
	run := func(qs []*workload.Query, st *workload.Stores) {
		for _, q := range qs {
			mct, _, err := workload.RunQuery(q, st, workload.MCT)
			if err != nil {
				t.Fatalf("%s MCT: %v", q.ID, err)
			}
			if len(mct) == 0 {
				t.Errorf("%s returned no results on MCT — query constants too selective", q.ID)
				continue
			}
			for _, v := range []workload.Variant{workload.Shallow, workload.Deep} {
				got, _, err := workload.RunQuery(q, st, v)
				if err != nil {
					t.Fatalf("%s %s: %v", q.ID, v, err)
				}
				if !equalSets(mct, got) {
					t.Errorf("%s: %s disagrees with MCT: %d vs %d results\nMCT: %.10v\n%s: %.10v",
						q.ID, v, len(mct), len(got), sorted(mct), v, sorted(got))
				}
			}
		}
	}
	run(workload.TPCWQueries(), tp)
	run(workload.SigmodQueries(), sg)
}

// TestDeepDuplicateVariants checks the "*D" rows: without duplicate
// elimination, deep returns strictly more rows for the duplicate-afflicted
// queries.
func TestDeepDuplicateVariants(t *testing.T) {
	tp, sg := stores(t)
	for _, tc := range []struct {
		q  *workload.Query
		st *workload.Stores
	}{
		{findQuery(t, "TQ7"), tp},
		{findQuery(t, "TQ12"), tp},
		{findQuery(t, "SQ4"), sg},
	} {
		with, _, err := workload.RunQuery(tc.q, tc.st, workload.Deep)
		if err != nil {
			t.Fatal(err)
		}
		without, _, err := workload.RunDeepNoDedup(tc.q, tc.st)
		if err != nil {
			t.Fatal(err)
		}
		if len(without) <= len(with) {
			t.Errorf("%s: no-dedup %d should exceed dedup %d", tc.q.ID, len(without), len(with))
		}
	}
}

func findQuery(t *testing.T, id string) *workload.Query {
	t.Helper()
	for _, q := range append(workload.TPCWQueries(), workload.SigmodQueries()...) {
		if q.ID == id {
			return q
		}
	}
	t.Fatalf("unknown query %s", id)
	return nil
}

// TestOperatorShapeMatchesAnnotations: the MCT plans use color crossings
// exactly where Table 2 says; shallow plans use value joins exactly on
// multi-tree queries.
func TestOperatorShapeMatchesAnnotations(t *testing.T) {
	tp, sg := stores(t)
	check := func(qs []*workload.Query, st *workload.Stores) {
		for _, q := range qs {
			_, m, err := workload.RunQuery(q, st, workload.MCT)
			if err != nil {
				t.Fatal(err)
			}
			if q.Colors > 0 && m.CrossJoins == 0 {
				t.Errorf("%s: expected color crossings, saw none", q.ID)
			}
			if q.Colors == 0 && m.CrossJoins > 0 {
				t.Errorf("%s: unexpected crossings (%d)", q.ID, m.CrossJoins)
			}
			if m.ValueJoins > 0 && q.ID != "TQ15" { // TQ15's NL join counts as value probes
				t.Errorf("%s: MCT plan should not value join", q.ID)
			}
			_, ms, err := workload.RunQuery(q, st, workload.Shallow)
			if err != nil {
				t.Fatal(err)
			}
			if q.Trees > 1 && ms.ValueJoins == 0 {
				t.Errorf("%s: shallow should value join on a %d-tree query", q.ID, q.Trees)
			}
		}
	}
	check(workload.TPCWQueries(), tp)
	check(workload.SigmodQueries(), sg)
}

// TestUpdates runs every update on fresh stores and checks the Table 2
// update shape: MCT and shallow touch the same number of nodes; deep touches
// at least as many (strictly more for the replication-afflicted updates).
func TestUpdates(t *testing.T) {
	// Fresh stores: updates mutate.
	tp, err := workload.LoadTPCW(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := workload.LoadSigmod(1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	strictlyMore := map[string]bool{"TU1": true, "TU4": true, "SU1": true, "SU2": true}
	run := func(us []*workload.UpdateSpec, st *workload.Stores) {
		for _, u := range us {
			nMCT, err := u.Run[workload.MCT](st.MCT, st.Params)
			if err != nil {
				t.Fatalf("%s MCT: %v", u.ID, err)
			}
			nSh, err := u.Run[workload.Shallow](st.Shallow, st.Params)
			if err != nil {
				t.Fatalf("%s shallow: %v", u.ID, err)
			}
			nDp, err := u.Run[workload.Deep](st.Deep, st.Params)
			if err != nil {
				t.Fatalf("%s deep: %v", u.ID, err)
			}
			if nMCT == 0 {
				t.Errorf("%s: no nodes updated on MCT", u.ID)
			}
			if nMCT != nSh {
				t.Errorf("%s: MCT %d vs shallow %d nodes", u.ID, nMCT, nSh)
			}
			if nDp < nMCT {
				t.Errorf("%s: deep %d < MCT %d", u.ID, nDp, nMCT)
			}
			if strictlyMore[u.ID] && nDp <= nMCT {
				t.Errorf("%s: deep should touch replicated copies (%d vs %d)", u.ID, nDp, nMCT)
			}
		}
	}
	run(workload.TPCWUpdates(), tp)
	run(workload.SigmodUpdates(), sg)
}

// TestQueryTextsParse: every query text in every variant must parse with the
// MCXQuery parser, and every update text with the update parser — they feed
// the Figure 11/12 metrics.
func TestQueryTextsParse(t *testing.T) {
	for _, q := range append(workload.TPCWQueries(), workload.SigmodQueries()...) {
		for v, text := range q.Text {
			c, err := workload.QueryComplexity(text)
			if err != nil {
				t.Errorf("%s/%s does not parse: %v\n%s", q.ID, v, err, text)
				continue
			}
			if c.PathExprs == 0 {
				t.Errorf("%s/%s: no path expressions counted", q.ID, v)
			}
			if c.Bindings == 0 {
				t.Errorf("%s/%s: no bindings counted", q.ID, v)
			}
		}
	}
	for _, u := range append(workload.TPCWUpdates(), workload.SigmodUpdates()...) {
		for v, text := range u.Text {
			if _, err := workload.UpdateComplexity(text); err != nil {
				t.Errorf("%s/%s does not parse: %v\n%s", u.ID, v, err, text)
			}
		}
	}
}

// TestShallowNeverSimplerThanMCT is Figure 11/12's claim: the shallow
// formulation needs at least as many path expressions and bindings as MCT,
// and strictly more on multi-tree queries.
func TestShallowNeverSimplerThanMCT(t *testing.T) {
	for _, q := range append(workload.TPCWQueries(), workload.SigmodQueries()...) {
		mct, err := workload.QueryComplexity(q.Text[workload.MCT])
		if err != nil {
			t.Fatal(err)
		}
		sh, err := workload.QueryComplexity(q.Text[workload.Shallow])
		if err != nil {
			t.Fatal(err)
		}
		if sh.Bindings < mct.Bindings {
			t.Errorf("%s: shallow bindings %d < MCT %d", q.ID, sh.Bindings, mct.Bindings)
		}
		if q.Trees > 1 && sh.Bindings <= mct.Bindings && sh.PathExprs <= mct.PathExprs {
			t.Errorf("%s: multi-tree query should be more complex in shallow (MCT %+v, shallow %+v)",
				q.ID, mct, sh)
		}
	}
}
