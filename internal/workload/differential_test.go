package workload_test

import (
	"sort"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/datagen"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/workload"
)

// TestDifferentialLogicalVsPhysical cross-checks the two evaluation stacks
// of this repository on the same data and queries: the reference
// tree-walking MCXQuery evaluator runs each query's MCT TEXT over the
// logical core database, while the physical engine runs the hand-specified
// PLAN over the Timber-style store. Both must produce the same result set.
//
// Queries are compared by the id attribute their result elements carry. Only
// queries whose MCT text is a faithful rendition of the plan are included
// (texts with illustrative literal constants that the plan derives from the
// entity pool are skipped).
func TestDifferentialLogicalVsPhysical(t *testing.T) {
	ds, err := datagen.TPCW(datagen.TPCWConfig{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.LoadTPCW(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Logical evaluation of the MCT query texts over ds.MCT. The texts use
	// createColor, so each runs against a fresh logical database.
	cases := []string{"TQ1", "TQ2", "TQ5", "TQ8", "TQ9", "TQ11", "TQ13"}
	for _, id := range cases {
		q := findQuery(t, id)

		// Physical: run the plan, extract ids.
		physical, _, err := workload.RunQuery(q, st, workload.MCT)
		if err != nil {
			t.Fatalf("%s physical: %v", id, err)
		}

		// Logical: fresh database (createColor mutates), evaluate the text.
		fresh, err := datagen.BuildTPCWMCT(ds.Entities)
		if err != nil {
			t.Fatal(err)
		}
		ev := mcxquery.NewEvaluator(fresh)
		out, err := ev.Query(q.Text[workload.MCT])
		if err != nil {
			t.Fatalf("%s logical: %v\n%s", id, err, q.Text[workload.MCT])
		}
		var logical []string
		for _, it := range out {
			if it.Node == nil {
				t.Fatalf("%s: logical result is not a node: %+v", id, it)
			}
			// The result constructors wrap { $x/...attribute::id }: the id
			// attribute is copied onto the constructed element.
			v := it.Node.AttributeValue("id")
			if v == "" {
				// Some texts return the id as text content instead.
				v, _ = core.StringValue(it.Node, "black")
			}
			logical = append(logical, v)
		}

		sort.Strings(logical)
		phys := append([]string(nil), physical...)
		sort.Strings(phys)
		if len(logical) != len(phys) {
			t.Errorf("%s: logical %d results vs physical %d\nlogical: %v\nphysical: %v",
				id, len(logical), len(phys), logical, phys)
			continue
		}
		for i := range phys {
			if logical[i] != phys[i] {
				t.Errorf("%s: result sets differ at %d: %q vs %q", id, i, logical[i], phys[i])
				break
			}
		}
	}
}

// TestDifferentialShallowTexts does the same for the shallow value-join
// formulations: the logical evaluator executes the XQuery text with its
// where-clause joins over the shallow database; the engine executes the
// value-join plan over the shallow store.
func TestDifferentialShallowTexts(t *testing.T) {
	ds, err := datagen.TPCW(datagen.TPCWConfig{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.LoadTPCW(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// TQ9/TQ11's shallow texts join orderlines to orders via @orderIdRef —
	// fully self-contained (no pool-derived constants).
	for _, id := range []string{"TQ9", "TQ11", "TQ2"} {
		q := findQuery(t, id)
		physical, _, err := workload.RunQuery(q, st, workload.Shallow)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := datagen.BuildTPCWShallow(ds.Entities)
		if err != nil {
			t.Fatal(err)
		}
		ev := mcxquery.NewEvaluator(fresh)
		ev.DefaultColor = datagen.ColDoc
		out, err := ev.Query(q.Text[workload.Shallow])
		if err != nil {
			t.Fatalf("%s logical shallow: %v", id, err)
		}
		if len(out) != len(physical) {
			t.Errorf("%s: logical shallow %d vs physical %d results", id, len(out), len(physical))
		}
	}
}
