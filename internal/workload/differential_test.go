package workload_test

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/datagen"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/workload"
)

// TestDifferentialLogicalVsPhysical cross-checks the two evaluation stacks
// of this repository on the same data and queries: the reference
// tree-walking MCXQuery evaluator runs each query's MCT TEXT over the
// logical core database, while the physical engine runs the hand-specified
// PLAN over the Timber-style store. Both must produce the same result set.
//
// Queries are compared by the id attribute their result elements carry. Only
// queries whose MCT text is a faithful rendition of the plan are included
// (texts with illustrative literal constants that the plan derives from the
// entity pool are skipped).
func TestDifferentialLogicalVsPhysical(t *testing.T) {
	ds, err := datagen.TPCW(datagen.TPCWConfig{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.LoadTPCW(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Logical evaluation of the MCT query texts over ds.MCT. The texts use
	// createColor, so each runs against a fresh logical database.
	cases := []string{"TQ1", "TQ2", "TQ5", "TQ8", "TQ9", "TQ11", "TQ13"}
	for _, id := range cases {
		q := findQuery(t, id)

		// Physical: run the plan, extract ids.
		physical, _, err := workload.RunQuery(q, st, workload.MCT)
		if err != nil {
			t.Fatalf("%s physical: %v", id, err)
		}

		// Logical: fresh database (createColor mutates), evaluate the text.
		fresh, err := datagen.BuildTPCWMCT(ds.Entities)
		if err != nil {
			t.Fatal(err)
		}
		ev := mcxquery.NewEvaluator(fresh)
		out, err := ev.Query(q.Text[workload.MCT])
		if err != nil {
			t.Fatalf("%s logical: %v\n%s", id, err, q.Text[workload.MCT])
		}
		var logical []string
		for _, it := range out {
			if it.Node == nil {
				t.Fatalf("%s: logical result is not a node: %+v", id, it)
			}
			// The result constructors wrap { $x/...attribute::id }: the id
			// attribute is copied onto the constructed element.
			v := it.Node.AttributeValue("id")
			if v == "" {
				// Some texts return the id as text content instead.
				v, _ = core.StringValue(it.Node, "black")
			}
			logical = append(logical, v)
		}

		sort.Strings(logical)
		phys := append([]string(nil), physical...)
		sort.Strings(phys)
		if len(logical) != len(phys) {
			t.Errorf("%s: logical %d results vs physical %d\nlogical: %v\nphysical: %v",
				id, len(logical), len(phys), logical, phys)
			continue
		}
		for i := range phys {
			if logical[i] != phys[i] {
				t.Errorf("%s: result sets differ at %d: %q vs %q", id, i, logical[i], phys[i])
				break
			}
		}
	}
}

// TestDifferentialShallowTexts does the same for the shallow value-join
// formulations: the logical evaluator executes the XQuery text with its
// where-clause joins over the shallow database; the engine executes the
// value-join plan over the shallow store.
func TestDifferentialShallowTexts(t *testing.T) {
	ds, err := datagen.TPCW(datagen.TPCWConfig{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.LoadTPCW(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// TQ9/TQ11's shallow texts join orderlines to orders via @orderIdRef —
	// fully self-contained (no pool-derived constants).
	for _, id := range []string{"TQ9", "TQ11", "TQ2"} {
		q := findQuery(t, id)
		physical, _, err := workload.RunQuery(q, st, workload.Shallow)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := datagen.BuildTPCWShallow(ds.Entities)
		if err != nil {
			t.Fatal(err)
		}
		ev := mcxquery.NewEvaluator(fresh)
		ev.DefaultColor = datagen.ColDoc
		out, err := ev.Query(q.Text[workload.Shallow])
		if err != nil {
			t.Fatalf("%s logical shallow: %v", id, err)
		}
		if len(out) != len(physical) {
			t.Errorf("%s: logical shallow %d vs physical %d results", id, len(out), len(physical))
		}
	}
}

// deepUnsupported lists the deep texts that use distinct-values(), which the
// plan compiler deliberately does not lower. Every other text of every query
// must compile.
var deepUnsupported = map[string]bool{"TQ7": true, "TQ12": true, "TQ16": true, "SQ4": true}

// TestDifferentialCompiledPlans compiles every Table 2 query TEXT with the
// automatic plan compiler and cross-checks the result set against the
// hand-specified physical plan on the same store — for all three
// representations — and, for the MCT texts, additionally against the
// reference tree-walking evaluator. Comparisons are over distinct value sets
// (compiled plans always deduplicate their output nodes; the evaluator
// returns one item per binding).
func TestDifferentialCompiledPlans(t *testing.T) {
	tpcwDS, err := datagen.TPCW(datagen.TPCWConfig{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := workload.LoadTPCW(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sgDS, err := datagen.Sigmod(datagen.SigmodConfig{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := workload.LoadSigmod(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	groups := []struct {
		queries []*workload.Query
		st      *workload.Stores
		freshDB func() (*core.Database, error)
	}{
		{workload.TPCWQueries(), tp, func() (*core.Database, error) { return datagen.BuildTPCWMCT(tpcwDS.Entities) }},
		{workload.SigmodQueries(), sg, func() (*core.Database, error) { return datagen.BuildSigmodMCT(sgDS.Sigmod) }},
	}

	nonEmpty := 0
	for _, g := range groups {
		for _, q := range g.queries {
			for _, v := range workload.Variants {
				name := fmt.Sprintf("%s/%s", q.ID, v)
				values, handValues, _, err := workload.RunCompiled(q, g.st, v)
				if err != nil {
					if errors.Is(err, plan.ErrUnsupported) && v == workload.Deep && deepUnsupported[q.ID] {
						continue
					}
					t.Errorf("%s: compile/run: %v", name, err)
					continue
				}

				hand, _, err := workload.RunQuery(q, g.st, v)
				if err != nil {
					t.Fatalf("%s: hand plan: %v", name, err)
				}
				ch, hh := distinctSorted(handValues), distinctSorted(hand)
				if !equalStrings(ch, hh) {
					t.Errorf("%s: compiled %d values %v\n  != hand %d values %v",
						name, len(ch), trim(ch), len(hh), trim(hh))
					continue
				}
				if len(ch) > 0 {
					nonEmpty++
				}

				// Evaluator cross-check on the MCT texts. TQ10's text wraps
				// all orderlines of a binding in a single constructed <r>, so
				// its items are not value-comparable to plan rows.
				if v != workload.MCT || q.ID == "TQ10" {
					continue
				}
				fresh, err := g.freshDB()
				if err != nil {
					t.Fatal(err)
				}
				out, err := mcxquery.NewEvaluator(fresh).Query(
					workload.FaithfulText(q, v, g.st.Params))
				if err != nil {
					t.Fatalf("%s: evaluator: %v", name, err)
				}
				var ref []string
				for _, it := range out {
					if it.Node == nil {
						t.Fatalf("%s: evaluator result is not a node: %+v", name, it)
					}
					s := it.Node.AttributeValue("id")
					if s == "" {
						s, _ = core.StringValue(it.Node, "black")
					}
					ref = append(ref, s)
				}
				cv, rv := distinctSorted(values), distinctSorted(ref)
				if !equalStrings(cv, rv) {
					t.Errorf("%s: compiled %d values %v\n  != evaluator %d values %v",
						name, len(cv), trim(cv), len(rv), trim(rv))
				}
			}
		}
	}
	// Guard against vacuous agreement: most comparisons must be non-empty.
	if nonEmpty < 40 {
		t.Errorf("only %d non-empty compiled/hand comparisons; substitutions broken?", nonEmpty)
	}
}

func distinctSorted(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func trim(s []string) []string {
	if len(s) > 8 {
		return append(append([]string(nil), s[:8]...), "...")
	}
	return s
}
