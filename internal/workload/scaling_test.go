package workload_test

import (
	"testing"

	"colorfulxml/internal/workload"
)

// TestScalingShape reproduces the paper's data-set scaling observation with
// deterministic operator counters instead of flaky wall-clock measurements:
// "most of the times scaled linearly with data set size. The only exceptions
// were the two queries involving an inequality value join, which is
// implemented as nested loops, and hence has a quadratic dependence on data
// set size."
func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("loads two dataset scales")
	}
	st1, err := workload.LoadTPCW(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := workload.LoadTPCW(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	probes := func(id string, st *workload.Stores) (structJoins, valueJoins, contentReads int) {
		q := findQuery(t, id)
		_, m, err := workload.RunQuery(q, st, workload.MCT)
		if err != nil {
			t.Fatal(err)
		}
		return m.StructJoins, m.ValueJoins, m.ContentReads
	}

	// TQ2 (a scan + structural join): all counters grow roughly linearly.
	s1, _, c1 := probes("TQ2", st1)
	s2, _, c2 := probes("TQ2", st2)
	if ratio := float64(s2) / float64(s1); ratio < 1.4 || ratio > 3.0 {
		t.Errorf("TQ2 structural work scaled by %.2f, want ~2 (linear)", ratio)
	}
	if ratio := float64(c2) / float64(c1); ratio < 1.4 || ratio > 3.0 {
		t.Errorf("TQ2 content reads scaled by %.2f, want ~2 (linear)", ratio)
	}

	// TQ15 (the inequality nested-loop join): probe count grows roughly
	// quadratically (both join inputs double).
	_, v1, _ := probes("TQ15", st1)
	_, v2, _ := probes("TQ15", st2)
	if v1 == 0 {
		t.Fatal("TQ15 should perform nested-loop probes")
	}
	if ratio := float64(v2) / float64(v1); ratio < 2.8 || ratio > 6.0 {
		t.Errorf("TQ15 nested-loop probes scaled by %.2f, want ~4 (quadratic)", ratio)
	}
}
