package workload

import (
	"strings"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/plan"
)

// This file connects the workload to the automatic plan compiler
// (internal/plan): it compiles each query's published TEXT instead of using
// the hand-specified PLAN, so the two can be compared differentially and in
// the experiment tables.

// textSubs lists, per query, the illustrative literal constants the published
// text carries together with the pool-derived constants the hand plan uses.
// Substituting makes the text a faithful rendition of the plan, so compiled
// and hand results are comparable (and non-empty) at every scale and seed.
var textSubs = map[string]func(p Params) [][2]string{
	"TQ3": func(p Params) [][2]string {
		o := p.E.Orders[0]
		return [][2]string{
			{"user000007", p.E.Customers[o.Customer-1].Uname},
			{"Japan", p.E.Countries[p.E.Addresses[o.Shipping-1].Country-1].Name},
		}
	},
	"TQ12": func(p Params) [][2]string {
		return [][2]string{{"A", p.E.Authors[0].Name}}
	},
	"TQ14": func(p Params) [][2]string {
		return [][2]string{{"A", p.E.Authors[1].Name}}
	},
	"SQ1": func(p Params) [][2]string {
		return [][2]string{{"T", p.S.Articles[0].Title}}
	},
	"SQ3": func(p Params) [][2]string {
		topic := p.S.Topics[p.S.Articles[0].Topic-1]
		return [][2]string{{"E", p.S.Editors[topic.Editor-1].Name}}
	},
}

// FaithfulText returns the query text for a variant with illustrative
// constants replaced by the pool-derived constants the hand plan uses.
func FaithfulText(q *Query, v Variant, p Params) string {
	text := q.Text[v]
	if subs, ok := textSubs[q.ID]; ok {
		for _, s := range subs(p) {
			text = strings.ReplaceAll(text, `"`+s[0]+`"`, `"`+s[1]+`"`)
		}
	}
	return text
}

// Compile compiles a query's faithful text for a variant into a physical
// plan over the variant's store, costed with exact store statistics. Queries
// outside the compilable subset report plan.ErrUnsupported.
func Compile(q *Query, st *Stores, v Variant) (*plan.Compiled, error) {
	opt := plan.Options{Catalog: plan.StoreCatalog{Store: st.Of(v)}}
	if v != MCT {
		opt.DefaultColor = cDoc
	}
	return plan.CompileQuery(FaithfulText(q, v, st.Params), opt)
}

// handCompatible overrides, per query and variant, which compiled-plan column
// yields the same values as the hand plan's Out designator. Needed only where
// the text RETURNS element content while the hand plan extracts the entity's
// id attribute (TQ7/TQ12 return title/bio, TQ10's MCT text returns the
// orderline elements themselves).
var handCompatible = map[string]map[Variant]func(c *plan.Compiled) Extract{
	"TQ7": {
		MCT:     byVarID("i"),
		Shallow: byVarID("i"),
	},
	"TQ10": {
		MCT: func(c *plan.Compiled) Extract { return Extract{Col: c.OutCol, Attr: "id"} },
	},
	"TQ12": {
		MCT:     byVarID("a"),
		Shallow: byVarID("a"),
	},
}

func byVarID(name string) func(c *plan.Compiled) Extract {
	return func(c *plan.Compiled) Extract {
		return Extract{Col: c.VarCols[name], Attr: "id"}
	}
}

// RunCompiled compiles and executes a query's text on a variant's store. It
// returns two renderings of the result rows: values extracted by the
// compiled plan's own output designator (comparable to the reference
// evaluator running the same text), and values matching the hand plan's Out
// designator (comparable to RunQuery).
func RunCompiled(q *Query, st *Stores, v Variant) (values, handValues []string, m engine.Metrics, err error) {
	c, err := Compile(q, st, v)
	if err != nil {
		return nil, nil, engine.Metrics{}, err
	}
	s := st.Of(v)
	rows, m, err := engine.Exec(s, c.Root)
	if err != nil {
		return nil, nil, m, err
	}
	values, err = extract(s, rows, Extract{Col: c.OutCol, Attr: c.OutAttr})
	if err != nil {
		return nil, nil, m, err
	}
	handEx := Extract{Col: c.OutCol, Attr: c.OutAttr}
	if f, ok := handCompatible[q.ID][v]; ok {
		handEx = f(c)
	}
	handValues, err = extract(s, rows, handEx)
	return values, handValues, m, err
}
