package workload

import (
	"fmt"

	"colorfulxml/internal/core"
	"colorfulxml/internal/datagen"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

// Color shorthands.
var (
	cCust = datagen.ColCustomer
	cBill = datagen.ColBilling
	cShip = datagen.ColShipping
	cDate = datagen.ColDate
	cAuth = datagen.ColAuthor
	cDoc  = datagen.ColDoc
)

// TPCWQueries returns the sixteen Table 2 TPC-W queries.
func TPCWQueries() []*Query {
	return []*Query{
		tq1(), tq2(), tq3(), tq4(), tq5(), tq6(), tq7(), tq8(),
		tq9(), tq10(), tq11(), tq12(), tq13(), tq14(), tq15(), tq16(),
	}
}

// TPCWUpdates returns the four Table 2 TPC-W updates.
func TPCWUpdates() []*UpdateSpec {
	return []*UpdateSpec{tu1(), tu2(), tu3(), tu4()}
}

// idOut extracts the id attribute of column col.
func idOut(col int) Extract { return Extract{Col: col, Attr: "id"} }

// sameOut uses the same extraction for all variants.
func sameOut(ex Extract) map[Variant]Extract {
	return map[Variant]Extract{MCT: ex, Shallow: ex, Deep: ex}
}

// entityByField builds the single-hierarchy "entity by field" query shared
// by TQ1/TQ2/TQ4/TQ5/TQ6/TQ8: scan or index the field, join to the parent
// entity. mctColor is the hierarchy the entity folds into.
func entityByField(id, desc string, mctColor core.Color, tag, field string, pred engine.Pred) *Query {
	mk := func(c core.Color) func(Params) engine.Op {
		if pred.Kind == "eq" {
			return func(Params) engine.Op { return elemWithChildEq(c, tag, field, pred.Value) }
		}
		return func(Params) engine.Op { return elemWithChildPred(c, tag, field, pred) }
	}
	cmp := map[string]string{"eq": "=", "gt": ">", "ge": ">=", "lt": "<", "le": "<="}[pred.Kind]
	cond := fmt.Sprintf(`%s %s "%s"`, field, cmp, pred.Value)
	if pred.Kind == "contains" {
		cond = fmt.Sprintf(`contains(%s, "%s")`, field, pred.Value)
	}
	mctCond := fmt.Sprintf(`{%s}child::%s %s "%s"`, mctColor, field, cmp, pred.Value)
	if pred.Kind == "contains" {
		mctCond = fmt.Sprintf(`contains({%s}child::%s, "%s")`, mctColor, field, pred.Value)
	}
	return &Query{
		ID: id, Desc: desc, Colors: 0, Trees: 1,
		Text: map[Variant]string{
			MCT: fmt.Sprintf(`for $x in document("tpcw")/{%s}descendant::%s[%s]
return createColor(black, <r>{ $x/{%s}attribute::id }</r>)`, mctColor, tag, mctCond, mctColor),
			Shallow: fmt.Sprintf(`for $x in document("tpcw")//%s[%s] return <r>{ $x/@id }</r>`, tag, cond),
			Deep:    fmt.Sprintf(`for $x in document("tpcw")//%s[%s] return <r>{ $x/@id }</r>`, tag, cond),
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: mk(mctColor), Shallow: mk(cDoc), Deep: mk(cDoc),
		},
		Out: sameOut(idOut(0)),
	}
}

func tq1() *Query {
	return entityByField("TQ1", "customer with a given user name",
		cCust, "customer", "uname", engine.Pred{Kind: "eq", Value: "user000042"})
}

func tq2() *Query {
	return entityByField("TQ2", "orders with status SHIPPED",
		cCust, "order", "status", engine.Pred{Kind: "eq", Value: "SHIPPED"})
}

func tq4() *Query {
	return entityByField("TQ4", "order lines with quantity >= 8",
		cCust, "orderline", "qty", engine.Pred{Kind: "ge", Value: "8", Numeric: true})
}

func tq5() *Query {
	return entityByField("TQ5", "customers with email matching a fragment",
		cCust, "customer", "email", engine.Pred{Kind: "contains", Value: "user00004"})
}

func tq6() *Query {
	return entityByField("TQ6", "order lines with quantity >= 2 (bulk scan)",
		cCust, "orderline", "qty", engine.Pred{Kind: "ge", Value: "2", Numeric: true})
}

func tq8() *Query {
	return entityByField("TQ8", "customer by email fragment (point-ish scan)",
		cCust, "customer", "email", engine.Pred{Kind: "contains", Value: "user000042@"})
}

// TQ3: orders of one customer shipped to a given country — two hierarchies,
// one color crossing in MCT; two value joins in shallow; pure structure in
// deep (the address is replicated inside the order), which is why deep WINS
// this query in the paper (0.16 vs 0.82).
func tq3() *Query {
	uname := func(p Params) string {
		o := p.E.Orders[0]
		return p.E.Customers[o.Customer-1].Uname
	}
	country := func(p Params) string {
		o := p.E.Orders[0]
		return p.E.Countries[p.E.Addresses[o.Shipping-1].Country-1].Name
	}
	return &Query{
		ID: "TQ3", Desc: "orders of one customer shipped to one country",
		Colors: 1, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $o in document("tpcw")/{customer}descendant::customer[{customer}child::uname = "user000007"]/{customer}child::order,
    $a in document("tpcw")/{shipping}descendant::address[{shipping}child::country = "Japan"]/{shipping}child::order
where $o = $a
return createColor(black, <r>{ $o/{customer}attribute::id }</r>)`,
			Shallow: `for $c in document("tpcw")//customer[uname = "user000007"],
    $o in document("tpcw")//order,
    $a in document("tpcw")//address[country = "Japan"]
where $o/@customerIdRef = $c/@id and $o/@shippingIdRef = $a/@id
return <r>{ $o/@id }</r>`,
			Deep: `for $o in document("tpcw")//customer[uname = "user000007"]/order[shippingAddress//country = "Japan"]
return <r>{ $o/@id }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(p Params) engine.Op {
				cust := elemWithChildEq(cCust, "customer", "uname", uname(p))
				orders := pc(cust, scanT(cCust, "order"), 0, 0) // [cust, order]
				crossed := cross(orders, 1, cShip)              // +[order@shipping] col 2
				addrs := elemWithChildEq(cShip, "address", "country", country(p))
				return &engine.ExistsJoin{Input: crossed, Probe: addrs, Col: 2, ProbeCol: 0,
					Axis: join.ParentChild, InputIsDesc: true}
			},
			Shallow: func(p Params) engine.Op {
				cust := elemWithChildEq(cDoc, "customer", "uname", uname(p))
				orders := vjoin(scanT(cDoc, "order"), cust, 0, 0, akey("customerIdRef"), akey("id")) // [order, cust]
				addrs := elemWithChildEq(cDoc, "address", "country", country(p))
				return vjoin(orders, addrs, 0, 0, akey("shippingIdRef"), akey("id")) // [order, cust, addr]
			},
			Deep: func(p Params) engine.Op {
				cust := elemWithChildEq(cDoc, "customer", "uname", uname(p))
				orders := pc(cust, scanT(cDoc, "order"), 0, 0) // [cust, order]
				return havingDesc(orders, 1, eqC(cDoc, "country", country(p)))
			},
		},
		Out: map[Variant]Extract{MCT: idOut(1), Shallow: idOut(0), Deep: idOut(1)},
	}
}

// TQ7: expensive items — trivial for MCT and shallow, catastrophic for deep,
// whose item copies (one per order line) must all be scanned and then
// deduplicated (paper: 112.25s with dedup, 2.79s without, vs 0.02).
func tq7() *Query {
	pred := engine.Pred{Kind: "gt", Value: "9000", Numeric: true}
	deepBase := func(Params) engine.Op {
		return elemWithChildPred(cDoc, "item", "cost", pred)
	}
	return &Query{
		ID: "TQ7", Desc: "items with cost > 9000",
		Colors: 0, Trees: 1,
		Text: map[Variant]string{
			MCT: `for $i in document("tpcw")/{author}descendant::item[{author}child::cost > "9000"]
return createColor(black, <r>{ $i/{author}child::title }</r>)`,
			Shallow: `for $i in document("tpcw")//item[cost > "9000"] return <r>{ $i/title }</r>`,
			Deep: `for $t in distinct-values(document("tpcw")//item[cost > "9000"]/@ref)
return <r>{ $t }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT:     func(Params) engine.Op { return elemWithChildPred(cAuth, "item", "cost", pred) },
			Shallow: func(Params) engine.Op { return elemWithChildPred(cDoc, "item", "cost", pred) },
			Deep: func(p Params) engine.Op {
				return &engine.DedupAttr{Input: deepBase(p), Col: 0, Name: "ref"}
			},
		},
		DeepNoDedup: deepBase,
		Out: map[Variant]Extract{
			MCT: idOut(0), Shallow: idOut(0), Deep: {Col: 0, Attr: "ref"},
		},
	}
}

// TQ9: order lines (qty >= 5) of SHIPPED orders — one hierarchy for MCT and
// deep, a large ID/IDREF value join for shallow (paper: 30.16 vs 0.55/0.76).
func tq9() *Query {
	return linesOfOrders("TQ9", "order lines (discount 3) of SHIPPED orders",
		"SHIPPED", engine.Pred{Kind: "eq", Value: "3"})
}

// TQ11 is TQ9 with much smaller join inputs (paper: 33 x 25912): the shallow
// value join is cheaper but still dominates.
func tq11() *Query {
	return linesOfOrders("TQ11", "order lines (discount 9) of DENIED orders",
		"DENIED", engine.Pred{Kind: "eq", Value: "9"})
}

func linesOfOrders(id, desc, status string, linePred engine.Pred) *Query {
	lineField := "qty"
	if linePred.Kind == "eq" {
		lineField = "olDiscount"
	}
	cmp := map[string]string{"eq": "=", "ge": ">="}[linePred.Kind]
	structPlan := func(c core.Color) engine.Op {
		orders := elemWithChildEq(c, "order", "status", status)
		var lines engine.Op
		if linePred.Kind == "eq" {
			lines = elemWithChildEq(c, "orderline", lineField, linePred.Value)
		} else {
			lines = elemWithChildPred(c, "orderline", lineField, linePred)
		}
		return pc(orders, lines, 0, 0) // [order, line]
	}
	return &Query{
		ID: id, Desc: desc, Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: fmt.Sprintf(`for $l in document("tpcw")/{customer}descendant::order[{customer}child::status = "%s"]/{customer}child::orderline[{customer}child::%s %s "%s"]
return createColor(black, <r>{ $l/{customer}attribute::id }</r>)`, status, lineField, cmp, linePred.Value),
			Shallow: fmt.Sprintf(`for $o in document("tpcw")//order[status = "%s"],
    $l in document("tpcw")//orderline[%s %s "%s"]
where $l/@orderIdRef = $o/@id
return <r>{ $l/@id }</r>`, status, lineField, cmp, linePred.Value),
			Deep: fmt.Sprintf(`for $l in document("tpcw")//order[status = "%s"]/orderline[%s %s "%s"]
return <r>{ $l/@id }</r>`, status, lineField, cmp, linePred.Value),
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(Params) engine.Op { return structPlan(cCust) },
			Shallow: func(Params) engine.Op {
				orders := elemWithChildEq(cDoc, "order", "status", status)
				var lines engine.Op
				if linePred.Kind == "eq" {
					lines = elemWithChildEq(cDoc, "orderline", lineField, linePred.Value)
				} else {
					lines = elemWithChildPred(cDoc, "orderline", lineField, linePred)
				}
				return vjoin(lines, orders, 0, 0, akey("orderIdRef"), akey("id")) // [line, order]
			},
			Deep: func(Params) engine.Op { return structPlan(cDoc) },
		},
		Out: map[Variant]Extract{MCT: idOut(1), Shallow: idOut(0), Deep: idOut(1)},
	}
}

// TQ10: order lines of orders by customers with a given discount placed in
// May 2003 — the query where DEEP wins (everything nested under customer),
// MCT pays a color crossing per candidate order, and shallow pays two value
// joins (paper: 6.61 / 8.96 / 0.71).
func tq10() *Query {
	const disc = "7"
	return &Query{
		ID: "TQ10", Desc: "order lines of discount-7 customers' orders placed in May 2003",
		Colors: 1, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $o in document("tpcw")/{customer}descendant::customer[{customer}child::discount = "7"]/{customer}child::order,
    $d in document("tpcw")/{date}descendant::year[{date}child::value = "2003"]/{date}child::month[{date}child::value = "5"]/{date}descendant::order
where $o = $d
return createColor(black, <r>{ $o/{customer}child::orderline }</r>)`,
			Shallow: `for $c in document("tpcw")//customer[discount = "7"],
    $o in document("tpcw")//order,
    $d in document("tpcw")//year[value = "2003"]/month[value = "5"]/day,
    $l in document("tpcw")//orderline
where $o/@customerIdRef = $c/@id and $o/@dateIdRef = $d/@id and $l/@orderIdRef = $o/@id
return <r>{ $l/@id }</r>`,
			Deep: `for $l in document("tpcw")//customer[discount = "7"]/order[orderDate/year = "2003" and orderDate/month = "5"]/orderline
return <r>{ $l/@id }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(Params) engine.Op {
				custs := elemWithChildEq(cCust, "customer", "discount", disc)
				orders := pc(custs, scanT(cCust, "order"), 0, 0) // [cust, order]
				crossed := cross(orders, 1, cDate)               // +col 2
				months := underChild(elemWithChildEq(cDate, "month", "value", "5"), 0,
					elemWithChildEq(cDate, "year", "value", "2003"))
				days := &engine.Project{Input: pc(months, scanT(cDate, "day"), 0, 0), Cols: []int{1}}
				inMay := &engine.ExistsJoin{Input: crossed, Probe: days, Col: 2, ProbeCol: 0,
					Axis: join.ParentChild, InputIsDesc: true}
				return pc2(inMay, scanT(cCust, "orderline"), 1, 0) // + line col 3
			},
			Shallow: func(Params) engine.Op {
				custs := elemWithChildEq(cDoc, "customer", "discount", disc)
				orders := vjoin(scanT(cDoc, "order"), custs, 0, 0, akey("customerIdRef"), akey("id")) // [o, c]
				months := underChild(elemWithChildEq(cDoc, "month", "value", "5"), 0,
					elemWithChildEq(cDoc, "year", "value", "2003"))
				days := &engine.Project{Input: pc(months, scanT(cDoc, "day"), 0, 0), Cols: []int{1}}
				ordersD := vjoin(orders, days, 0, 0, akey("dateIdRef"), akey("id")) // [o, c, d]
				return vjoin(scanT(cDoc, "orderline"), ordersD, 0, 0, akey("orderIdRef"), akey("id"))
			},
			Deep: func(Params) engine.Op {
				custs := elemWithChildEq(cDoc, "customer", "discount", disc)
				orders := pc(custs, scanT(cDoc, "order"), 0, 0) // [c, o]
				dates := havingChild(havingChild(scanT(cDoc, "orderDate"), 0,
					eqC(cDoc, "year", "2003")), 0, eqC(cDoc, "month", "5"))
				ordersF := &engine.ExistsJoin{Input: orders, Probe: dates, Col: 1, ProbeCol: 0,
					Axis: join.ParentChild}
				return pc2(ordersF, scanT(cDoc, "orderline"), 1, 0) // + line col 2
			},
		},
		Out: map[Variant]Extract{MCT: idOut(3), Shallow: idOut(0), Deep: idOut(2)},
	}
}

// TQ12: author lookup by name — deep must scan replicated author copies and
// deduplicate (paper: 0.54 deep vs 0.01; TQ12D shows the copies).
func tq12() *Query {
	name := func(p Params) string { return p.E.Authors[0].Name }
	deepBase := func(p Params) engine.Op {
		return havingChild(scanT(cDoc, "author"), 0, eqC(cDoc, "name", name(p)))
	}
	return &Query{
		ID: "TQ12", Desc: "author by exact name",
		Colors: 0, Trees: 1,
		Text: map[Variant]string{
			MCT: `for $a in document("tpcw")/{author}descendant::author[{author}child::name = "A"]
return createColor(black, <r>{ $a/{author}child::bio }</r>)`,
			Shallow: `for $a in document("tpcw")//author[name = "A"] return <r>{ $a/bio }</r>`,
			Deep: `for $a in distinct-values(document("tpcw")//author[name = "A"]/@ref)
return <r>{ $a }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(p Params) engine.Op {
				return havingChild(scanT(cAuth, "author"), 0, eqC(cAuth, "name", name(p)))
			},
			Shallow: func(p Params) engine.Op {
				return havingChild(scanT(cDoc, "author"), 0, eqC(cDoc, "name", name(p)))
			},
			Deep: func(p Params) engine.Op {
				return &engine.DedupAttr{Input: deepBase(p), Col: 0, Name: "ref"}
			},
		},
		DeepNoDedup: deepBase,
		Out: map[Variant]Extract{
			MCT: idOut(0), Shallow: idOut(0), Deep: {Col: 0, Attr: "ref"},
		},
	}
}

// TQ13: order lines of HISTORY items — folded into the author hierarchy for
// MCT (no crossing), a value join for shallow (paper: 0.11 / 2.36 / 0.23).
func tq13() *Query {
	const subject = "HISTORY"
	return &Query{
		ID: "TQ13", Desc: "order lines of items with subject " + subject,
		Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $l in document("tpcw")/{author}descendant::item[{author}child::subject = "HISTORY"]/{author}child::orderline
return createColor(black, <r>{ $l/{author}attribute::id }</r>)`,
			Shallow: `for $i in document("tpcw")//item[subject = "HISTORY"],
    $l in document("tpcw")//orderline
where $l/@itemIdRef = $i/@id
return <r>{ $l/@id }</r>`,
			Deep: `for $l in document("tpcw")//orderline[item/subject = "HISTORY"]
return <r>{ $l/@id }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(Params) engine.Op {
				items := elemWithChildEq(cAuth, "item", "subject", subject)
				return pc(items, scanT(cAuth, "orderline"), 0, 0) // [item, line]
			},
			Shallow: func(Params) engine.Op {
				items := elemWithChildEq(cDoc, "item", "subject", subject)
				return vjoin(scanT(cDoc, "orderline"), items, 0, 0, akey("itemIdRef"), akey("id"))
			},
			Deep: func(Params) engine.Op {
				items := havingChild(scanT(cDoc, "item"), 0, eqC(cDoc, "subject", subject))
				return pc(scanT(cDoc, "orderline"), items, 0, 0) // [line, item]
			},
		},
		Out: map[Variant]Extract{MCT: idOut(1), Shallow: idOut(0), Deep: idOut(0)},
	}
}

// TQ14: order lines of items by one author — two structural hops for MCT,
// two value joins for shallow (paper: 0.09 / 2.29 / 0.25).
func tq14() *Query {
	name := func(p Params) string { return p.E.Authors[1].Name }
	return &Query{
		ID: "TQ14", Desc: "order lines of items written by one author",
		Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $l in document("tpcw")/{author}descendant::author[{author}child::name = "A"]/{author}child::item/{author}child::orderline
return createColor(black, <r>{ $l/{author}attribute::id }</r>)`,
			Shallow: `for $a in document("tpcw")//author[name = "A"],
    $i in document("tpcw")//item,
    $l in document("tpcw")//orderline
where $i/@authorIdRef = $a/@id and $l/@itemIdRef = $i/@id
return <r>{ $l/@id }</r>`,
			Deep: `for $l in document("tpcw")//orderline[item/author/name = "A"]
return <r>{ $l/@id }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(p Params) engine.Op {
				auth := elemWithChildEq(cAuth, "author", "name", name(p))
				items := pc(auth, scanT(cAuth, "item"), 0, 0)      // [a, i]
				return pc2(items, scanT(cAuth, "orderline"), 1, 0) // +line col 2
			},
			Shallow: func(p Params) engine.Op {
				auth := elemWithChildEq(cDoc, "author", "name", name(p))
				items := vjoin(scanT(cDoc, "item"), auth, 0, 0, akey("authorIdRef"), akey("id")) // [i, a]
				return vjoin(scanT(cDoc, "orderline"), items, 0, 0, akey("itemIdRef"), akey("id"))
			},
			Deep: func(p Params) engine.Op {
				auths := havingChild(scanT(cDoc, "author"), 0, eqC(cDoc, "name", name(p)))
				items := pc(scanT(cDoc, "item"), auths, 0, 0)    // [i, a]
				return pc(scanT(cDoc, "orderline"), items, 0, 0) // [l, i, a]
			},
		},
		Out: map[Variant]Extract{MCT: idOut(2), Shallow: idOut(0), Deep: idOut(0)},
	}
}

// TQ15: the inequality value join — orders whose total exceeds the total of
// some order shipped to Norway. Nested loops everywhere (quadratic, as the
// paper notes); shallow additionally pays a value join to build the inner
// side (paper: 0.72 / 38.11 / 1.34).
func tq15() *Query {
	const country = "Norway"
	return &Query{
		ID: "TQ15", Desc: "orders out-pricing some order shipped to " + country,
		Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $o in document("tpcw")/{customer}descendant::order,
    $n in document("tpcw")/{shipping}descendant::address[{shipping}child::country = "Norway"]/{shipping}child::order
where $o/{customer}child::total > $n/{shipping}child::total
return createColor(black, <r>{ $o/{customer}attribute::id }</r>)`,
			Shallow: `for $o in document("tpcw")//order,
    $a in document("tpcw")//address[country = "Norway"],
    $n in document("tpcw")//order
where $n/@shippingIdRef = $a/@id and $o/total > $n/total
return <r>{ $o/@id }</r>`,
			Deep: `for $o in document("tpcw")//order,
    $n in document("tpcw")//order[shippingAddress//country = "Norway"]
where $o/total > $n/total
return <r>{ $o/@id }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(Params) engine.Op {
				addrs := elemWithChildEq(cShip, "address", "country", country)
				nOrders := pc(addrs, scanT(cShip, "order"), 0, 0)             // [a, n]
				nTotals := pc2(nOrders, scanT(cShip, "total"), 1, 0)          // +t col 2
				all := pc(scanT(cCust, "order"), scanT(cCust, "total"), 0, 0) // [o, t]
				nl := &engine.NLJoin{Left: all, Right: nTotals, LeftCol: 1, RightCol: 2,
					Kind: "gt", Numeric: true}
				return &engine.Dedup{Input: nl, Col: 0}
			},
			Shallow: func(Params) engine.Op {
				addrs := elemWithChildEq(cDoc, "address", "country", country)
				nOrders := vjoin(scanT(cDoc, "order"), addrs, 0, 0, akey("shippingIdRef"), akey("id")) // [n, a]
				nTotals := pc2(nOrders, scanT(cDoc, "total"), 0, 0)                                    // +t col 2
				all := pc(scanT(cDoc, "order"), scanT(cDoc, "total"), 0, 0)
				nl := &engine.NLJoin{Left: all, Right: nTotals, LeftCol: 1, RightCol: 2,
					Kind: "gt", Numeric: true}
				return &engine.Dedup{Input: nl, Col: 0}
			},
			Deep: func(Params) engine.Op {
				nOrders := havingDesc(scanT(cDoc, "order"), 0, eqC(cDoc, "country", country))
				nTotals := pc2(nOrders, scanT(cDoc, "total"), 0, 0) // [n, t]
				all := pc(scanT(cDoc, "order"), scanT(cDoc, "total"), 0, 0)
				nl := &engine.NLJoin{Left: all, Right: nTotals, LeftCol: 1, RightCol: 1,
					Kind: "gt", Numeric: true}
				return &engine.Dedup{Input: nl, Col: 0}
			},
		},
		Out: sameOut(idOut(0)),
	}
}

// TQ16: distinct items ordered by customers billed in Japan — the query
// where MCT beats BOTH: shallow needs three value joins, deep pays both
// replication and duplicate elimination (paper: 0.40 / 20.09 / 34.61).
func tq16() *Query {
	const country = "Japan"
	return &Query{
		ID: "TQ16", Desc: "distinct items bought by customers billed in " + country,
		Colors: 1, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $i in document("tpcw")/{billing}descendant::address[{billing}child::country = "Japan"]/{billing}descendant::orderline/{author}parent::item
return createColor(black, <r>{ $i/{author}attribute::id }</r>)`,
			Shallow: `for $a in document("tpcw")//address[country = "Japan"],
    $o in document("tpcw")//order,
    $l in document("tpcw")//orderline,
    $i in document("tpcw")//item
where $o/@billingIdRef = $a/@id and $l/@orderIdRef = $o/@id and $i/@id = $l/@itemIdRef
return <r>{ $i/@id }</r>`,
			Deep: `for $i in distinct-values(document("tpcw")//customer[billingAddress//country = "Japan"]//item/@ref)
return <r>{ $i }</r>`,
		},
		Plan: map[Variant]func(Params) engine.Op{
			MCT: func(Params) engine.Op {
				addrs := elemWithChildEq(cBill, "address", "country", country)
				orders := pc(addrs, scanT(cBill, "order"), 0, 0)      // [a, o]
				lines := pc2(orders, scanT(cBill, "orderline"), 1, 0) // +l col 2
				crossed := cross(lines, 2, cAuth)                     // +l@author col 3
				items := &engine.StructJoin{Anc: scanT(cAuth, "item"), Desc: crossed,
					AncCol: 0, DescCol: 3, Axis: join.ParentChild} // [item, a, o, l, l']
				return &engine.Dedup{Input: items, Col: 0}
			},
			Shallow: func(Params) engine.Op {
				addrs := elemWithChildEq(cDoc, "address", "country", country)
				orders := vjoin(scanT(cDoc, "order"), addrs, 0, 0, akey("billingIdRef"), akey("id"))   // [o, a]
				lines := vjoin(scanT(cDoc, "orderline"), orders, 0, 0, akey("orderIdRef"), akey("id")) // [l, o, a]
				items := vjoin(lines, scanT(cDoc, "item"), 0, 0, akey("itemIdRef"), akey("id"))        // [l, o, a, i]
				return &engine.Dedup{Input: items, Col: 3}
			},
			Deep: func(Params) engine.Op {
				bAddrs := havingDesc(scanT(cDoc, "billingAddress"), 0, eqC(cDoc, "country", country))
				custs := pc(scanT(cDoc, "customer"), bAddrs, 0, 0)   // [c, b]
				orders := pc2(custs, scanT(cDoc, "order"), 0, 0)     // +o col 2
				lines := pc2(orders, scanT(cDoc, "orderline"), 2, 0) // +l col 3
				items := pc2(lines, scanT(cDoc, "item"), 3, 0)       // +i col 4
				return &engine.DedupAttr{Input: items, Col: 4, Name: "ref"}
			},
		},
		Out: map[Variant]Extract{
			MCT: idOut(0), Shallow: idOut(3), Deep: {Col: 4, Attr: "ref"},
		},
	}
}

// --- updates ---------------------------------------------------------------

// updateContentTargets runs a plan and rewrites the content of column col.
func updateContentTargets(s *storage.Store, plan engine.Op, col int, newContent string) (int, error) {
	rows, _, err := engine.Exec(s, plan)
	if err != nil {
		return 0, err
	}
	seen := map[storage.ElemID]bool{}
	n := 0
	for _, r := range rows {
		id := r[col].Elem
		if seen[id] {
			continue
		}
		seen[id] = true
		if err := s.UpdateContent(id, newContent); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// TU1: reprice an item by title. One element for MCT/shallow; every
// replicated copy for deep (paper TU1: 1 node vs TU1D: 335).
func tu1() *UpdateSpec {
	title := func(p Params) string { return p.E.Items[0].Title }
	return &UpdateSpec{
		ID: "TU1", Desc: "set the cost of an item (by title)",
		Colors: 0, Trees: 1,
		Text: map[Variant]string{
			MCT: `for $i in document("tpcw")/{author}descendant::item[{author}child::title = "T"]
update $i { replace $i/{author}child::cost with "9999" }`,
			Shallow: `for $i in document("tpcw")//item[title = "T"]
update $i { replace $i/cost with "9999" }`,
			Deep: `for $i in document("tpcw")//item[title = "T"]
update $i { replace $i/cost with "9999" }`,
		},
		Run: map[Variant]func(*storage.Store, Params) (int, error){
			MCT: func(s *storage.Store, p Params) (int, error) {
				items := elemWithChildEq(cAuth, "item", "title", title(p))
				costs := pc(items, scanT(cAuth, "cost"), 0, 0)
				return updateContentTargets(s, costs, 1, "9999")
			},
			Shallow: func(s *storage.Store, p Params) (int, error) {
				items := elemWithChildEq(cDoc, "item", "title", title(p))
				costs := pc(items, scanT(cDoc, "cost"), 0, 0)
				return updateContentTargets(s, costs, 1, "9999")
			},
			Deep: func(s *storage.Store, p Params) (int, error) {
				items := havingChild(scanT(cDoc, "item"), 0, eqC(cDoc, "title", title(p)))
				costs := pc(items, scanT(cDoc, "cost"), 0, 0)
				return updateContentTargets(s, costs, 1, "9999")
			},
		},
	}
}

// TU2: change the zip of one address. Deep touches one copy per use (paper
// TU2: 1 vs TU2D: 5).
func tu2() *UpdateSpec {
	street := func(p Params) string { return p.E.Addresses[0].Street }
	return &UpdateSpec{
		ID: "TU2", Desc: "set the zip of an address (by street)",
		Colors: 0, Trees: 1,
		Text: map[Variant]string{
			MCT: `for $a in document("tpcw")/{shipping}descendant::address[{shipping}child::street = "S"]
update $a { replace $a/{shipping}child::zip with "00000" }`,
			Shallow: `for $a in document("tpcw")//address[street = "S"]
update $a { replace $a/zip with "00000" }`,
			Deep: `for $a in document("tpcw")//shippingAddress[street = "S"]
update $a { replace $a/zip with "00000" }`,
		},
		Run: map[Variant]func(*storage.Store, Params) (int, error){
			MCT: func(s *storage.Store, p Params) (int, error) {
				// The address is stored once; find it through either
				// hierarchy it participates in.
				total := 0
				for _, c := range []core.Color{cShip, cBill} {
					addrs := elemWithChildEq(c, "address", "street", street(p))
					zips := pc(addrs, scanT(c, "zip"), 0, 0)
					n, err := updateContentTargets(s, zips, 1, "00000")
					if err != nil {
						return total, err
					}
					total += n
					if total > 0 {
						break // found via the first hierarchy: done
					}
				}
				return total, nil
			},
			Shallow: func(s *storage.Store, p Params) (int, error) {
				addrs := elemWithChildEq(cDoc, "address", "street", street(p))
				zips := pc(addrs, scanT(cDoc, "zip"), 0, 0)
				return updateContentTargets(s, zips, 1, "00000")
			},
			Deep: func(s *storage.Store, p Params) (int, error) {
				total := 0
				for _, tag := range []string{"shippingAddress", "billingAddress"} {
					addrs := havingChild(scanT(cDoc, tag), 0, eqC(cDoc, "street", street(p)))
					zips := pc(addrs, scanT(cDoc, "zip"), 0, 0)
					n, err := updateContentTargets(s, zips, 1, "00000")
					if err != nil {
						return total, err
					}
					total += n
				}
				return total, nil
			},
		},
	}
}

// TU3: set the status of all orders billed to a country — the update whose
// WHERE needs a join: structural for MCT/deep, a value join for shallow
// (paper: 0.36 / 15.14 / 0.65).
func tu3() *UpdateSpec {
	const country = "Ireland"
	return &UpdateSpec{
		ID: "TU3", Desc: "set status of orders billed to " + country,
		Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $o in document("tpcw")/{billing}descendant::address[{billing}child::country = "Ireland"]/{billing}child::order
update $o { replace $o/{billing}child::status with "AUDITED" }`,
			Shallow: `for $a in document("tpcw")//address[country = "Ireland"],
    $o in document("tpcw")//order
where $o/@billingIdRef = $a/@id
update $o { replace $o/status with "AUDITED" }`,
			Deep: `for $o in document("tpcw")//customer[billingAddress//country = "Ireland"]/order
update $o { replace $o/status with "AUDITED" }`,
		},
		Run: map[Variant]func(*storage.Store, Params) (int, error){
			MCT: func(s *storage.Store, p Params) (int, error) {
				addrs := elemWithChildEq(cBill, "address", "country", country)
				orders := pc(addrs, scanT(cBill, "order"), 0, 0)
				status := pc2(orders, scanT(cBill, "status"), 1, 0)
				return updateContentTargets(s, status, 2, "AUDITED")
			},
			Shallow: func(s *storage.Store, p Params) (int, error) {
				addrs := elemWithChildEq(cDoc, "address", "country", country)
				orders := vjoin(scanT(cDoc, "order"), addrs, 0, 0, akey("billingIdRef"), akey("id"))
				status := pc2(orders, scanT(cDoc, "status"), 0, 0)
				return updateContentTargets(s, status, 2, "AUDITED")
			},
			Deep: func(s *storage.Store, p Params) (int, error) {
				bAddrs := havingDesc(scanT(cDoc, "billingAddress"), 0, eqC(cDoc, "country", country))
				custs := pc(scanT(cDoc, "customer"), bAddrs, 0, 0)
				orders := pc2(custs, scanT(cDoc, "order"), 0, 0)
				status := pc2(orders, scanT(cDoc, "status"), 2, 0)
				return updateContentTargets(s, status, 3, "AUDITED")
			},
		},
	}
}

// TU4: rewrite an author's bio. Deep touches one copy per item copy (paper
// TU4: 1 vs TU4D: 10).
func tu4() *UpdateSpec {
	name := func(p Params) string { return p.E.Authors[2].Name }
	const bio = "Updated biography."
	return &UpdateSpec{
		ID: "TU4", Desc: "set an author's bio (by name)",
		Colors: 0, Trees: 2,
		Text: map[Variant]string{
			MCT: `for $a in document("tpcw")/{author}descendant::author[{author}child::name = "A"]
update $a { replace $a/{author}child::bio with "B" }`,
			Shallow: `for $a in document("tpcw")//author[name = "A"]
update $a { replace $a/bio with "B" }`,
			Deep: `for $a in document("tpcw")//author[name = "A"]
update $a { replace $a/bio with "B" }`,
		},
		Run: map[Variant]func(*storage.Store, Params) (int, error){
			MCT: func(s *storage.Store, p Params) (int, error) {
				auth := elemWithChildEq(cAuth, "author", "name", name(p))
				bios := pc(auth, scanT(cAuth, "bio"), 0, 0)
				return updateContentTargets(s, bios, 1, bio)
			},
			Shallow: func(s *storage.Store, p Params) (int, error) {
				auth := elemWithChildEq(cDoc, "author", "name", name(p))
				bios := pc(auth, scanT(cDoc, "bio"), 0, 0)
				return updateContentTargets(s, bios, 1, bio)
			},
			Deep: func(s *storage.Store, p Params) (int, error) {
				auth := havingChild(scanT(cDoc, "author"), 0, eqC(cDoc, "name", name(p)))
				bios := pc(auth, scanT(cDoc, "bio"), 0, 0)
				return updateContentTargets(s, bios, 1, bio)
			},
		},
	}
}

// underChild keeps rows of in whose column col has a PARENT matching probe.
func underChild(in engine.Op, col int, probe engine.Op) engine.Op {
	return &engine.ExistsJoin{Input: in, Probe: probe, Col: col, ProbeCol: 0,
		Axis: join.ParentChild, InputIsDesc: true}
}

// pc2 is pc with an explicit anchor column on the anc side.
func pc2(anc, desc engine.Op, ancCol, descCol int) engine.Op {
	return &engine.StructJoin{Anc: anc, Desc: desc, AncCol: ancCol, DescCol: descCol, Axis: join.ParentChild}
}
