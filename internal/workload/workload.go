// Package workload defines the experiment workload of the paper's Table 2:
// sixteen TPC-W queries (TQ1–TQ16), four TPC-W updates (TU1–TU4), five
// SIGMOD-Record queries (SQ1–SQ5) and two SIGMOD-Record updates (SU1–SU2),
// each in all three representations — MCT, shallow and deep — as
//
//   - query/update TEXT in the corresponding language (MCXQuery for MCT,
//     XQuery with value joins for shallow, plain-path XQuery for deep), which
//     the Figure 11/12 complexity metrics are computed from; and
//   - a hand-specified physical PLAN over the engine operators, exactly as
//     the paper ran Timber ("we manually specified the query plan").
//
// Queries whose deep evaluation produces duplicates additionally provide the
// paper's "*D" variant: the same deep plan without duplicate elimination.
package workload

import (
	"fmt"

	"colorfulxml/internal/datagen"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/update"
)

// Variant selects a representation.
type Variant string

// The three representations of Section 7.
const (
	MCT     Variant = "MCT"
	Shallow Variant = "Shallow"
	Deep    Variant = "Deep"
)

// Variants lists them in the paper's column order.
var Variants = []Variant{MCT, Shallow, Deep}

// Extract designates how to render a query's result rows as comparable
// values: the attribute (or content, when Attr is empty) of one column.
type Extract struct {
	Col  int
	Attr string
}

// Query is one read-only workload query.
type Query struct {
	ID   string
	Desc string
	// Colors is the number of color transitions the MCT plan needs; Trees is
	// the number of hierarchies involved (Table 2's annotation columns).
	Colors int
	Trees  int
	// Text per variant; parsed by the Figure 11/12 metrics.
	Text map[Variant]string
	// Plan builds the physical plan per variant.
	Plan map[Variant]func(p Params) engine.Op
	// Out extracts comparable result values per variant.
	Out map[Variant]Extract
	// DeepNoDedup, when set, is the "*D" plan: deep without duplicate
	// elimination (paper Table 2's TQ7D, TQ12D, SQ4D rows).
	DeepNoDedup func(p Params) engine.Op
}

// UpdateSpec is one update statement of the workload.
type UpdateSpec struct {
	ID     string
	Desc   string
	Colors int
	Trees  int
	Text   map[Variant]string
	// Run applies the update against the store of the given variant and
	// returns the number of nodes updated (Table 2's "results" column for
	// updates: 1 for MCT/shallow, the number of copies for deep).
	Run map[Variant]func(s *storage.Store, p Params) (int, error)
}

// Params carries the generated entity pools so queries can use data-derived
// constants.
type Params struct {
	E *datagen.TPCWEntities
	S *datagen.SigmodEntities
}

// Stores bundles one loaded store per variant.
type Stores struct {
	MCT     *storage.Store
	Shallow *storage.Store
	Deep    *storage.Store
	Params  Params
}

// Of returns the store for a variant.
func (s *Stores) Of(v Variant) *storage.Store {
	switch v {
	case MCT:
		return s.MCT
	case Shallow:
		return s.Shallow
	default:
		return s.Deep
	}
}

// LoadTPCW generates and loads the TPC-W dataset at a scale.
func LoadTPCW(scale int, seed int64, poolPages int) (*Stores, error) {
	ds, err := datagen.TPCW(datagen.TPCWConfig{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	return loadStores(ds, Params{E: ds.Entities}, poolPages)
}

// LoadSigmod generates and loads the SIGMOD-Record dataset at a scale.
func LoadSigmod(scale int, seed int64, poolPages int) (*Stores, error) {
	ds, err := datagen.Sigmod(datagen.SigmodConfig{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	return loadStores(ds, Params{S: ds.Sigmod}, poolPages)
}

func loadStores(ds *datagen.Dataset, p Params, poolPages int) (*Stores, error) {
	mct, err := storage.Load(ds.MCT, poolPages)
	if err != nil {
		return nil, fmt.Errorf("workload: load mct: %w", err)
	}
	sh, err := storage.Load(ds.Shallow, poolPages)
	if err != nil {
		return nil, fmt.Errorf("workload: load shallow: %w", err)
	}
	dp, err := storage.Load(ds.Deep, poolPages)
	if err != nil {
		return nil, fmt.Errorf("workload: load deep: %w", err)
	}
	return &Stores{MCT: mct, Shallow: sh, Deep: dp, Params: p}, nil
}

// RunQuery executes a query on one variant, returning the extracted result
// values and the engine metrics.
func RunQuery(q *Query, st *Stores, v Variant) ([]string, engine.Metrics, error) {
	plan := q.Plan[v](st.Params)
	s := st.Of(v)
	rows, m, err := engine.Exec(s, plan)
	if err != nil {
		return nil, m, fmt.Errorf("workload: %s/%s: %w", q.ID, v, err)
	}
	out, err := extract(s, rows, q.Out[v])
	return out, m, err
}

// RunDeepNoDedup executes the "*D" variant.
func RunDeepNoDedup(q *Query, st *Stores) ([]string, engine.Metrics, error) {
	if q.DeepNoDedup == nil {
		return nil, engine.Metrics{}, fmt.Errorf("workload: %s has no *D variant", q.ID)
	}
	plan := q.DeepNoDedup(st.Params)
	rows, m, err := engine.Exec(st.Deep, plan)
	if err != nil {
		return nil, m, err
	}
	out, err := extract(st.Deep, rows, q.Out[Deep])
	return out, m, err
}

func extract(s *storage.Store, rows []engine.Row, ex Extract) ([]string, error) {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		e, err := s.Elem(r[ex.Col].Elem)
		if err != nil {
			return nil, err
		}
		if ex.Attr == "" {
			out = append(out, e.Content)
		} else {
			out = append(out, e.Attr(ex.Attr))
		}
	}
	return out, nil
}

// Complexity is the Figure 11/12 metric pair for one query text.
type Complexity struct {
	PathExprs int
	Bindings  int
}

// QueryComplexity parses a query text as MCXQuery/XQuery and counts path
// expressions and variable bindings.
func QueryComplexity(text string) (Complexity, error) {
	e, err := mcxquery.ParseQuery(text)
	if err != nil {
		return Complexity{}, err
	}
	return Complexity{
		PathExprs: pathexpr.CountPaths(e),
		Bindings:  mcxquery.CountVariableBindings(e),
	}, nil
}

// UpdateComplexity parses an update text and counts the same metrics.
func UpdateComplexity(text string) (Complexity, error) {
	u, err := update.Parse(text)
	if err != nil {
		return Complexity{}, err
	}
	return Complexity{
		PathExprs: u.CountPathExpressions(),
		Bindings:  u.NumBindings(),
	}, nil
}
