// Package wire implements the length-prefixed binary protocol spoken
// between mctserved and the client package. A conversation is a stream of
// frames:
//
//	frame  := len:uint32le crc:uint32le type:byte payload
//	len    =  1 + len(payload)        (covers type + payload)
//	crc    =  CRC32-C(type | payload) (same Castagnoli discipline as the WAL)
//
// The checksum lets the receiver distinguish a torn stream (a peer died
// mid-frame: ErrShort / io.ErrUnexpectedEOF) from an actively corrupted one
// (bad CRC, impossible length: CorruptError wrapping ErrCorrupt), exactly
// the torn-vs-corrupt split the WAL reader makes for segment tails.
// Message payloads are varint-framed and strictly bounds-checked
// (messages.go), so fuzzed or truncated input fails cleanly instead of
// panicking or over-allocating.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ProtoVersion is the protocol generation carried in Hello/Welcome. A
// server refuses a client whose version it does not speak; the handshake is
// the only place the version appears, so bumping it is a flag day per
// connection, not per message.
const ProtoVersion = 1

// frameHeaderSize is len + crc + type.
const frameHeaderSize = 9

// MaxFrame bounds the length field: 1 (type byte) + the largest payload a
// peer may send. Large query results are chunked well below this by the
// server; the bound exists so a corrupt or hostile length prefix cannot
// drive a multi-gigabyte allocation.
const MaxFrame = 16 << 20

// Type tags a frame's payload format. Unknown types are a protocol error at
// the message layer, never a panic at the frame layer.
type Type uint8

// Frame types. Requests are client->server; each names its response type.
const (
	TypeInvalid     Type = 0
	TypeHello       Type = 1 // -> Welcome
	TypeWelcome     Type = 2
	TypeError       Type = 3 // any request may answer with Error
	TypePing        Type = 4 // -> Pong
	TypePong        Type = 5
	TypeQuery       Type = 6 // -> Items stream (one-shot query)
	TypeItems       Type = 7
	TypePrepare     Type = 8 // -> Prepared
	TypePrepared    Type = 9
	TypeExecute     Type = 10 // -> Executed, then Fetch drains the cursor
	TypeExecuted    Type = 11
	TypeFetch       Type = 12 // -> Items
	TypeCloseCursor Type = 13 // -> Ack
	TypeCloseStmt   Type = 14 // -> Ack
	TypeAck         Type = 15
	TypeUpdate      Type = 16 // -> Updated
	TypeUpdated     Type = 17
	TypeHealth      Type = 18 // -> HealthInfo
	TypeHealthInfo  Type = 19
	TypeStats       Type = 20 // -> StatsInfo
	TypeStatsInfo   Type = 21
	TypeDrain       Type = 22 // unsolicited server notice: draining, no more requests
)

func (t Type) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeWelcome:
		return "Welcome"
	case TypeError:
		return "Error"
	case TypePing:
		return "Ping"
	case TypePong:
		return "Pong"
	case TypeQuery:
		return "Query"
	case TypeItems:
		return "Items"
	case TypePrepare:
		return "Prepare"
	case TypePrepared:
		return "Prepared"
	case TypeExecute:
		return "Execute"
	case TypeExecuted:
		return "Executed"
	case TypeFetch:
		return "Fetch"
	case TypeCloseCursor:
		return "CloseCursor"
	case TypeCloseStmt:
		return "CloseStmt"
	case TypeAck:
		return "Ack"
	case TypeUpdate:
		return "Update"
	case TypeUpdated:
		return "Updated"
	case TypeHealth:
		return "Health"
	case TypeHealthInfo:
		return "HealthInfo"
	case TypeStats:
		return "Stats"
	case TypeStatsInfo:
		return "StatsInfo"
	case TypeDrain:
		return "Drain"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ErrShort reports a frame cut off by the end of the buffer — the stream
// equivalent of a torn WAL tail: more bytes may simply not have arrived.
var ErrShort = errors.New("wire: short frame")

// ErrCorrupt is the sentinel under every CorruptError.
var ErrCorrupt = errors.New("wire: corrupt frame")

// CorruptError reports a frame that cannot be valid no matter how many more
// bytes arrive: a length beyond MaxFrame, or a checksum mismatch.
type CorruptError struct {
	Offset int // byte offset of the frame start within the decoded buffer
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wire: corrupt frame at offset %d: %s", e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcOf checksums a frame body (type byte + payload) with CRC32-C.
func crcOf(typ Type, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, []byte{byte(typ)})
	return crc32.Update(crc, castagnoli, payload)
}

// AppendFrame appends one encoded frame to buf and returns the extended
// slice.
func AppendFrame(buf []byte, typ Type, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(1+len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crcOf(typ, payload))
	buf = append(buf, byte(typ))
	return append(buf, payload...)
}

// DecodeFrame decodes the frame starting at buf[off]. It returns the frame
// type, its payload (aliasing buf), and the offset of the next frame.
// Truncation reports ErrShort; impossible lengths and checksum mismatches
// report a CorruptError.
func DecodeFrame(buf []byte, off int) (typ Type, payload []byte, next int, err error) {
	if off < 0 || off > len(buf) {
		return 0, nil, off, fmt.Errorf("%w: offset %d out of range", ErrShort, off)
	}
	rest := buf[off:]
	if len(rest) < frameHeaderSize {
		return 0, nil, off, ErrShort
	}
	flen := binary.LittleEndian.Uint32(rest[0:4])
	crc := binary.LittleEndian.Uint32(rest[4:8])
	if flen < 1 {
		return 0, nil, off, &CorruptError{Offset: off, Reason: "frame length 0"}
	}
	if flen > MaxFrame {
		return 0, nil, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("frame length %d exceeds max %d", flen, MaxFrame)}
	}
	if uint32(len(rest)-8) < flen {
		return 0, nil, off, ErrShort
	}
	typ = Type(rest[8])
	payload = rest[9 : 8+flen]
	if got := crcOf(typ, payload); got != crc {
		return 0, nil, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("checksum mismatch: header %08x body %08x", crc, got)}
	}
	return typ, payload, off + 8 + int(flen), nil
}

// Writer frames messages onto a stream. Not safe for concurrent use.
type Writer struct {
	bw  *bufio.Writer
	hdr [frameHeaderSize]byte
}

// NewWriter wraps w in a buffered frame writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// WriteFrame writes one frame and flushes it to the underlying stream.
func (w *Writer) WriteFrame(typ Type, payload []byte) error {
	if 1+len(payload) > MaxFrame {
		return fmt.Errorf("wire: payload of %d bytes exceeds max frame %d", len(payload), MaxFrame)
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(1+len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:8], crcOf(typ, payload))
	w.hdr[8] = byte(typ)
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	obsFramesWritten.Inc()
	obsBytesWritten.Add(uint64(frameHeaderSize + len(payload)))
	return nil
}

// Reader deframes messages from a stream. Not safe for concurrent use.
type Reader struct {
	br  *bufio.Reader
	hdr [frameHeaderSize]byte
}

// NewReader wraps r in a buffered frame reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// ReadFrame reads the next frame. A clean EOF at a frame boundary returns
// io.EOF; EOF mid-frame returns io.ErrUnexpectedEOF (torn); a bad length or
// checksum returns a CorruptError.
func (r *Reader) ReadFrame() (Type, []byte, error) {
	// The stream header is len+crc (8 bytes); the type byte is part of the
	// length-counted body.
	if _, err := io.ReadFull(r.br, r.hdr[:8]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: torn frame header: %w", err)
	}
	flen := binary.LittleEndian.Uint32(r.hdr[0:4])
	crc := binary.LittleEndian.Uint32(r.hdr[4:8])
	if flen < 1 {
		obsDecodeErrors.Inc()
		return 0, nil, &CorruptError{Reason: "frame length 0"}
	}
	if flen > MaxFrame {
		obsDecodeErrors.Inc()
		return 0, nil, &CorruptError{Reason: fmt.Sprintf("frame length %d exceeds max %d", flen, MaxFrame)}
	}
	body := make([]byte, flen)
	if _, err := io.ReadFull(r.br, body); err != nil {
		if errors.Is(err, io.EOF) {
			// A header with no body at all is just as torn as a partial one.
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: torn frame body: %w", err)
	}
	typ := Type(body[0])
	payload := body[1:]
	if got := crcOf(typ, payload); got != crc {
		obsDecodeErrors.Inc()
		return 0, nil, &CorruptError{Reason: fmt.Sprintf("checksum mismatch: header %08x body %08x", crc, got)}
	}
	obsFramesRead.Inc()
	obsBytesRead.Add(uint64(frameHeaderSize + len(payload)))
	return typ, payload, nil
}
