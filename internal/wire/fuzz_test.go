package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at both decoding layers — the frame
// framing (DecodeFrame / Reader.ReadFrame) and every message payload
// decoder. Neither may panic or over-allocate; every failure must classify
// as torn (ErrShort / io.ErrUnexpectedEOF) or corrupt (ErrCorrupt), the
// same split the WAL reader makes; and whatever decodes successfully must
// survive an encode/decode round trip unchanged.
func FuzzWireDecode(f *testing.F) {
	// A healthy three-frame conversation.
	stream := AppendFrame(nil, TypeHello, Hello{Proto: ProtoVersion, Client: "fuzz"}.Encode())
	stream = AppendFrame(stream, TypeQuery, Query{Src: `document("db")/{red}child::a`, ChunkItems: 8}.Encode())
	stream = AppendFrame(stream, TypeItems, Items{Cursor: 1, More: true, Items: []Item{
		{Node: 7, Color: "red", Value: "Item 7"},
		{Node: 0, Color: "", Value: "42"},
	}}.Encode())
	f.Add(stream)
	// The same stream with a torn tail and with a flipped body byte.
	f.Add(stream[:len(stream)-4])
	flipped := bytes.Clone(stream)
	flipped[len(flipped)-1] ^= 0x20
	f.Add(flipped)
	// An unknown frame type with a valid checksum.
	f.Add(AppendFrame(nil, Type(250), []byte("mystery")))
	// Bare payloads (not frame-wrapped) and adversarial prefixes.
	f.Add(ErrorMsg{Code: CodeReadOnly, Msg: "colorful: read-only"}.Encode())
	f.Add(StatsInfo{Connections: 1, Draining: true}.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame layer, buffer flavor: walk frames until error; the error must
		// classify.
		off := 0
		for off < len(data) {
			typ, payload, next, err := DecodeFrame(data, off)
			if err != nil {
				if !errors.Is(err, ErrShort) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("DecodeFrame error %v is neither torn nor corrupt", err)
				}
				break
			}
			if next <= off {
				t.Fatalf("DecodeFrame did not advance: off %d -> %d", off, next)
			}
			fuzzPayload(t, typ, payload)
			off = next
		}

		// Frame layer, stream flavor: its errors must classify the same way.
		r := NewReader(bytes.NewReader(data))
		for {
			typ, payload, err := r.ReadFrame()
			if err != nil {
				if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("ReadFrame error %v is neither EOF, torn, nor corrupt", err)
				}
				break
			}
			fuzzPayload(t, typ, payload)
		}

		// Message layer: throw the raw input at every decoder.
		for typ := TypeHello; typ <= TypeDrain; typ++ {
			fuzzPayload(t, typ, data)
		}
	})
}

// rtrip re-encodes a successfully decoded message and decodes it again; the
// two structs must match. (Byte-level canonicity is not required — overlong
// uvarints decode but re-encode minimally.)
func rtrip[T any](t *testing.T, m T, decode func([]byte) (T, error), encode func(T) []byte) {
	t.Helper()
	back, err := decode(encode(m))
	if err != nil {
		t.Fatalf("re-decode of re-encoded %+v: %v", m, err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, m)
	}
}

// fuzzPayload decodes payload as typ and, on success, checks the
// encode/decode round trip.
func fuzzPayload(t *testing.T, typ Type, payload []byte) {
	t.Helper()
	switch typ {
	case TypeHello:
		if m, err := DecodeHello(payload); err == nil {
			rtrip(t, m, DecodeHello, Hello.Encode)
		}
	case TypeWelcome:
		if m, err := DecodeWelcome(payload); err == nil {
			rtrip(t, m, DecodeWelcome, Welcome.Encode)
		}
	case TypeError:
		if m, err := DecodeError(payload); err == nil {
			rtrip(t, m, DecodeError, ErrorMsg.Encode)
		}
	case TypeQuery:
		if m, err := DecodeQuery(payload); err == nil {
			rtrip(t, m, DecodeQuery, Query.Encode)
		}
	case TypeItems:
		if m, err := DecodeItems(payload); err == nil {
			rtrip(t, m, DecodeItems, Items.Encode)
		}
	case TypePrepare:
		if m, err := DecodePrepare(payload); err == nil {
			rtrip(t, m, DecodePrepare, Prepare.Encode)
		}
	case TypePrepared:
		if m, err := DecodePrepared(payload); err == nil {
			rtrip(t, m, DecodePrepared, Prepared.Encode)
		}
	case TypeExecute:
		if m, err := DecodeExecute(payload); err == nil {
			rtrip(t, m, DecodeExecute, Execute.Encode)
		}
	case TypeExecuted:
		if m, err := DecodeExecuted(payload); err == nil {
			rtrip(t, m, DecodeExecuted, Executed.Encode)
		}
	case TypeFetch:
		if m, err := DecodeFetch(payload); err == nil {
			rtrip(t, m, DecodeFetch, Fetch.Encode)
		}
	case TypeCloseCursor:
		if m, err := DecodeCloseCursor(payload); err == nil {
			rtrip(t, m, DecodeCloseCursor, CloseCursor.Encode)
		}
	case TypeCloseStmt:
		if m, err := DecodeCloseStmt(payload); err == nil {
			rtrip(t, m, DecodeCloseStmt, CloseStmt.Encode)
		}
	case TypeUpdate:
		if m, err := DecodeUpdate(payload); err == nil {
			rtrip(t, m, DecodeUpdate, Update.Encode)
		}
	case TypeUpdated:
		if m, err := DecodeUpdated(payload); err == nil {
			rtrip(t, m, DecodeUpdated, Updated.Encode)
		}
	case TypeHealthInfo:
		if m, err := DecodeHealthInfo(payload); err == nil {
			rtrip(t, m, DecodeHealthInfo, HealthInfo.Encode)
		}
	case TypeStatsInfo:
		if m, err := DecodeStatsInfo(payload); err == nil {
			rtrip(t, m, DecodeStatsInfo, StatsInfo.Encode)
		}
	case TypeDrain:
		if m, err := DecodeDrain(payload); err == nil {
			rtrip(t, m, DecodeDrain, Drain.Encode)
		}
	}
}
