package wire

import "colorfulxml/internal/obs"

// Frame-level instruments, shared by every connection in the process (both
// the server's and the client pool's ends when they live in one process,
// e.g. the loopback benchmark).
var (
	obsFramesRead    = obs.NewCounter("wire_frames_read_total")
	obsFramesWritten = obs.NewCounter("wire_frames_written_total")
	obsBytesRead     = obs.NewCounter("wire_bytes_read_total")
	obsBytesWritten  = obs.NewCounter("wire_bytes_written_total")
	obsDecodeErrors  = obs.NewCounter("wire_frame_decode_errors_total")
)
