package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestMessageRoundTrip covers every message type: encode then decode must
// be the identity.
func TestMessageRoundTrip(t *testing.T) {
	items := []Item{
		{Node: 1, Color: "red", Value: "Item 0"},
		{Node: 0, Color: "", Value: "42"},
		{Node: 1<<63 + 5, Color: "green", Value: strings.Repeat("v", 300)},
	}
	cases := []struct {
		name   string
		msg    any
		decode func([]byte) (any, error)
		enc    []byte
	}{
		{"hello", Hello{Proto: ProtoVersion, Client: "bench-7"},
			func(p []byte) (any, error) { return DecodeHello(p) }, Hello{Proto: ProtoVersion, Client: "bench-7"}.Encode()},
		{"welcome", Welcome{Proto: ProtoVersion, Server: "mctserved/1"},
			func(p []byte) (any, error) { return DecodeWelcome(p) }, Welcome{Proto: ProtoVersion, Server: "mctserved/1"}.Encode()},
		{"error", ErrorMsg{Code: CodeOverloaded, Msg: "colorful: overloaded"},
			func(p []byte) (any, error) { return DecodeError(p) }, ErrorMsg{Code: CodeOverloaded, Msg: "colorful: overloaded"}.Encode()},
		{"query", Query{Src: `document("db")/{red}child::a`, ChunkItems: 128, DeadlineMillis: 1500},
			func(p []byte) (any, error) { return DecodeQuery(p) }, Query{Src: `document("db")/{red}child::a`, ChunkItems: 128, DeadlineMillis: 1500}.Encode()},
		{"items", Items{Cursor: 7, More: true, Items: items},
			func(p []byte) (any, error) { return DecodeItems(p) }, Items{Cursor: 7, More: true, Items: items}.Encode()},
		{"items-empty", Items{Items: []Item{}},
			func(p []byte) (any, error) { return DecodeItems(p) }, Items{Items: []Item{}}.Encode()},
		{"prepare", Prepare{Src: "q"},
			func(p []byte) (any, error) { return DecodePrepare(p) }, Prepare{Src: "q"}.Encode()},
		{"prepared", Prepared{Stmt: 99},
			func(p []byte) (any, error) { return DecodePrepared(p) }, Prepared{Stmt: 99}.Encode()},
		{"execute", Execute{Stmt: 3, DeadlineMillis: 10},
			func(p []byte) (any, error) { return DecodeExecute(p) }, Execute{Stmt: 3, DeadlineMillis: 10}.Encode()},
		{"executed", Executed{Cursor: 12, Rows: 4096},
			func(p []byte) (any, error) { return DecodeExecuted(p) }, Executed{Cursor: 12, Rows: 4096}.Encode()},
		{"fetch", Fetch{Cursor: 12, Max: 256},
			func(p []byte) (any, error) { return DecodeFetch(p) }, Fetch{Cursor: 12, Max: 256}.Encode()},
		{"close-cursor", CloseCursor{Cursor: 12},
			func(p []byte) (any, error) { return DecodeCloseCursor(p) }, CloseCursor{Cursor: 12}.Encode()},
		{"close-stmt", CloseStmt{Stmt: 3},
			func(p []byte) (any, error) { return DecodeCloseStmt(p) }, CloseStmt{Stmt: 3}.Encode()},
		{"update", Update{Src: "insert ...", DeadlineMillis: 77},
			func(p []byte) (any, error) { return DecodeUpdate(p) }, Update{Src: "insert ...", DeadlineMillis: 77}.Encode()},
		{"updated", Updated{Tuples: 5, NodesTouched: 17},
			func(p []byte) (any, error) { return DecodeUpdated(p) }, Updated{Tuples: 5, NodesTouched: 17}.Encode()},
		{"health-info", HealthInfo{State: 1, Cause: "io fault", Degrades: 2, Heals: 1},
			func(p []byte) (any, error) { return DecodeHealthInfo(p) }, HealthInfo{State: 1, Cause: "io fault", Degrades: 2, Heals: 1}.Encode()},
		{"stats-info", StatsInfo{Connections: 9, Open: 2, Requests: 100, Responses: 99, Errors: 3, StmtsOpen: 4, CursorsOpen: 1, Draining: true},
			func(p []byte) (any, error) { return DecodeStatsInfo(p) }, StatsInfo{Connections: 9, Open: 2, Requests: 100, Responses: 99, Errors: 3, StmtsOpen: 4, CursorsOpen: 1, Draining: true}.Encode()},
		{"drain", Drain{Reason: "sigterm"},
			func(p []byte) (any, error) { return DecodeDrain(p) }, Drain{Reason: "sigterm"}.Encode()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.decode(tc.enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.msg) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.msg)
			}
		})
	}
}

// TestDecodeRejectsTrailingBytes: strict decoding refuses payloads with
// extra bytes, which would otherwise mask framing bugs.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	enc := append(Prepared{Stmt: 1}.Encode(), 0xff)
	if _, err := DecodePrepared(enc); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing bytes: got %v, want ErrBadMessage", err)
	}
}

// TestDecodeTruncated: every truncation of a representative payload fails
// cleanly with ErrBadMessage, never a panic.
func TestDecodeTruncated(t *testing.T) {
	enc := Items{Cursor: 3, More: true, Items: []Item{{Node: 9, Color: "red", Value: "hello"}}}.Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeItems(enc[:i]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}
}

// TestDecodeItemsHugeCount: an adversarial count prefix is rejected before
// allocation.
func TestDecodeItemsHugeCount(t *testing.T) {
	// cursor=0, more=0, count=2^60
	enc := []byte{0, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10}
	if _, err := DecodeItems(enc); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("huge count: got %v, want ErrBadMessage", err)
	}
}

// TestFrameRoundTrip: AppendFrame then DecodeFrame is the identity, and
// consecutive frames decode in sequence.
func TestFrameRoundTrip(t *testing.T) {
	buf := AppendFrame(nil, TypeHello, Hello{Proto: 1, Client: "c"}.Encode())
	buf = AppendFrame(buf, TypePing, nil)
	buf = AppendFrame(buf, TypeItems, Items{Items: []Item{{Node: 4, Color: "red", Value: "x"}}}.Encode())

	var types []Type
	off := 0
	for off < len(buf) {
		typ, payload, next, err := DecodeFrame(buf, off)
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		types = append(types, typ)
		if typ == TypeHello {
			h, err := DecodeHello(payload)
			if err != nil || h.Client != "c" {
				t.Fatalf("hello payload: %+v, %v", h, err)
			}
		}
		off = next
	}
	want := []Type{TypeHello, TypePing, TypeItems}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("types = %v, want %v", types, want)
	}
}

// TestFrameTornVsCorrupt: truncation is ErrShort (more bytes might fix
// it); a flipped byte or absurd length is CorruptError (no bytes can).
func TestFrameTornVsCorrupt(t *testing.T) {
	frame := AppendFrame(nil, TypeQuery, Query{Src: "q"}.Encode())
	for i := 0; i < len(frame); i++ {
		if _, _, _, err := DecodeFrame(frame[:i], 0); !errors.Is(err, ErrShort) {
			t.Fatalf("truncation at %d: got %v, want ErrShort", i, err)
		}
	}
	for i := 4; i < len(frame); i++ { // flipping length bytes may stay ErrShort; body/crc flips must be corrupt
		bad := bytes.Clone(frame)
		bad[i] ^= 0x40
		_, _, _, err := DecodeFrame(bad, 0)
		if err == nil {
			t.Fatalf("flip at %d decoded successfully", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", i, err)
		}
	}
	huge := make([]byte, frameHeaderSize)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, _, err := DecodeFrame(huge, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: got %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	_, _, _, err := DecodeFrame(huge, 0)
	if !errors.As(err, &ce) {
		t.Fatalf("oversized length: %v is not a *CorruptError", err)
	}
}

// TestReaderWriter drives the stream layer: frames written through Writer
// come back typed and intact through Reader, a clean close yields io.EOF at
// a boundary, and a mid-frame cut yields a torn-stream error.
func TestReaderWriter(t *testing.T) {
	var stream bytes.Buffer
	w := NewWriter(&stream)
	msgs := []struct {
		typ     Type
		payload []byte
	}{
		{TypeHello, Hello{Proto: 1, Client: "t"}.Encode()},
		{TypePong, nil},
		{TypeItems, Items{Cursor: 1, More: true, Items: []Item{{Node: 2, Color: "green", Value: strings.Repeat("x", 70000)}}}.Encode()},
	}
	for _, m := range msgs {
		if err := w.WriteFrame(m.typ, m.payload); err != nil {
			t.Fatalf("write %v: %v", m.typ, err)
		}
	}

	r := NewReader(bytes.NewReader(stream.Bytes()))
	for _, m := range msgs {
		typ, payload, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if typ != m.typ || !bytes.Equal(payload, m.payload) {
			t.Fatalf("frame mismatch: got %v (%d bytes), want %v (%d bytes)", typ, len(payload), m.typ, len(m.payload))
		}
	}
	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("at boundary: got %v, want io.EOF", err)
	}

	torn := NewReader(bytes.NewReader(stream.Bytes()[:stream.Len()-3]))
	var err error
	for err == nil {
		_, _, err = torn.ReadFrame()
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn stream: got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestWriterRejectsOversizedPayload: the writer refuses to emit a frame the
// reader would classify as corrupt.
func TestWriterRejectsOversizedPayload(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(TypeItems, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}
