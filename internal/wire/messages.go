package wire

import (
	"encoding/binary"
	"fmt"
)

// This file encodes the message payloads carried inside frames. The format
// is varint-framed in the same style as the WAL's change batches:
//
//	str    := len:uvarint bytes
//	item   := node:uvarint color:str value:str
//	items  := cursor:uvarint more:byte count:uvarint item*
//
// Decoding is strict: every length is bounds-checked against the remaining
// buffer and trailing bytes are rejected, so arbitrary (fuzzed or
// corrupted) payloads fail cleanly instead of over-allocating or panicking.

// ErrBadMessage reports a payload that does not decode as its frame type
// claims. It is a protocol error, distinct from frame-level corruption.
var ErrBadMessage = fmt.Errorf("wire: malformed message")

// ErrCode classifies an Error response so typed error semantics —
// colorful.IsRetryable in particular — survive the network. The client maps
// codes back onto the colorful sentinel errors.
type ErrCode uint8

const (
	CodeInternal      ErrCode = 0  // unclassified server failure
	CodeBadRequest    ErrCode = 1  // malformed or out-of-order request
	CodeProtocol      ErrCode = 2  // handshake/version mismatch
	CodeOverloaded    ErrCode = 3  // admission gate rejection (retryable)
	CodeReadOnly      ErrCode = 4  // degraded read-only mode refused a write
	CodeFailed        ErrCode = 5  // database is in the Failed state
	CodeSessionClosed ErrCode = 6  // session or statement already closed
	CodeUnknownHandle ErrCode = 7  // stmt/cursor handle not found
	CodeShuttingDown  ErrCode = 8  // server is draining
	CodeQuery         ErrCode = 9  // parse/execution error from the query itself
	CodeCanceled      ErrCode = 10 // deadline exceeded or canceled server-side
	CodeClosed        ErrCode = 11 // database closed underneath the server
)

func (c ErrCode) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeBadRequest:
		return "bad-request"
	case CodeProtocol:
		return "protocol"
	case CodeOverloaded:
		return "overloaded"
	case CodeReadOnly:
		return "read-only"
	case CodeFailed:
		return "failed"
	case CodeSessionClosed:
		return "session-closed"
	case CodeUnknownHandle:
		return "unknown-handle"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeQuery:
		return "query"
	case CodeCanceled:
		return "canceled"
	case CodeClosed:
		return "closed"
	}
	return fmt.Sprintf("code-%d", uint8(c))
}

// Item is one query result on the wire: the node's stable ID (0 for atomic
// values), the color it was selected under, and its text value.
type Item struct {
	Node  uint64
	Color string
	Value string
}

// Hello opens a connection; it must be the first frame a client sends.
type Hello struct {
	Proto  uint32
	Client string // informational client name, surfaced in server logs
}

// Welcome acknowledges a Hello.
type Welcome struct {
	Proto  uint32
	Server string
}

// ErrorMsg answers any request the server could not satisfy.
type ErrorMsg struct {
	Code ErrCode
	Msg  string
}

// Query runs a one-shot query; the response is a stream of Items frames
// (cursor 0) ending with one whose More flag is false.
type Query struct {
	Src            string
	ChunkItems     uint32 // max items per Items frame; 0 = server default
	DeadlineMillis uint64 // remaining budget when the request was sent; 0 = none
}

// Items carries one chunk of results, for both one-shot Query streams and
// cursor Fetches.
type Items struct {
	Cursor uint64
	More   bool
	Items  []Item
}

// Prepare compiles a statement on the connection's session.
type Prepare struct {
	Src string
}

// Prepared returns the server-side statement handle.
type Prepared struct {
	Stmt uint64
}

// Execute runs a prepared statement and materializes a cursor; drain it
// with Fetch.
type Execute struct {
	Stmt           uint64
	DeadlineMillis uint64
}

// Executed reports the cursor handle and total row count of an Execute.
type Executed struct {
	Cursor uint64
	Rows   uint64
}

// Fetch requests the next chunk from a cursor. The final chunk (More ==
// false) closes the cursor server-side.
type Fetch struct {
	Cursor uint64
	Max    uint32 // max items in this chunk; 0 = server default
}

// CloseCursor discards a cursor early; the server answers Ack.
type CloseCursor struct {
	Cursor uint64
}

// CloseStmt frees a prepared-statement handle; the server answers Ack.
type CloseStmt struct {
	Stmt uint64
}

// Update applies a mutation batch; the response is Updated.
type Update struct {
	Src            string
	DeadlineMillis uint64
}

// Updated reports what an Update changed.
type Updated struct {
	Tuples       uint64
	NodesTouched uint64
}

// HealthInfo mirrors colorful.HealthInfo over the wire.
type HealthInfo struct {
	State    uint8
	Cause    string
	Degrades uint64
	Heals    uint64
}

// StatsInfo is a point-in-time server snapshot, answering a Stats request.
type StatsInfo struct {
	Connections uint64 // accepted since start
	Open        uint64 // currently open
	Requests    uint64 // fully read requests
	Responses   uint64 // fully written responses
	Errors      uint64 // Error responses among them
	StmtsOpen   uint64
	CursorsOpen uint64
	Draining    bool
}

// Drain is the unsolicited notice a draining server sends before closing a
// connection; the client must not send further requests on it.
type Drain struct {
	Reason string
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// decoder is a cursor with sticky error handling over a payload buffer,
// mirroring the WAL's.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrBadMessage, msg, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) uint32() uint32 {
	v := d.uvarint()
	if d.err == nil && v > 1<<32-1 {
		d.fail("value exceeds uint32")
		return 0
	}
	return uint32(v)
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(fmt.Sprintf("string length %d exceeds payload", n))
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// finish rejects trailing bytes and returns the sticky error.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.buf)-d.off)
	}
	return nil
}

// Encode / Decode pairs. Every Decode is total over arbitrary input.

func (m Hello) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(m.Proto))
	return appendString(buf, m.Client)
}

func DecodeHello(p []byte) (Hello, error) {
	d := decoder{buf: p}
	m := Hello{Proto: d.uint32(), Client: d.string()}
	return m, d.finish()
}

func (m Welcome) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(m.Proto))
	return appendString(buf, m.Server)
}

func DecodeWelcome(p []byte) (Welcome, error) {
	d := decoder{buf: p}
	m := Welcome{Proto: d.uint32(), Server: d.string()}
	return m, d.finish()
}

func (m ErrorMsg) Encode() []byte {
	buf := []byte{byte(m.Code)}
	return appendString(buf, m.Msg)
}

func DecodeError(p []byte) (ErrorMsg, error) {
	d := decoder{buf: p}
	m := ErrorMsg{Code: ErrCode(d.byte()), Msg: d.string()}
	return m, d.finish()
}

func (m Query) Encode() []byte {
	buf := appendString(nil, m.Src)
	buf = binary.AppendUvarint(buf, uint64(m.ChunkItems))
	return binary.AppendUvarint(buf, m.DeadlineMillis)
}

func DecodeQuery(p []byte) (Query, error) {
	d := decoder{buf: p}
	m := Query{Src: d.string(), ChunkItems: d.uint32(), DeadlineMillis: d.uvarint()}
	return m, d.finish()
}

func (m Items) Encode() []byte {
	buf := binary.AppendUvarint(nil, m.Cursor)
	buf = appendBool(buf, m.More)
	buf = binary.AppendUvarint(buf, uint64(len(m.Items)))
	for _, it := range m.Items {
		buf = binary.AppendUvarint(buf, it.Node)
		buf = appendString(buf, it.Color)
		buf = appendString(buf, it.Value)
	}
	return buf
}

func DecodeItems(p []byte) (Items, error) {
	d := decoder{buf: p}
	m := Items{Cursor: d.uvarint(), More: d.bool()}
	n := d.uvarint()
	// Each item occupies at least 3 bytes, so an impossible count is
	// rejected before any allocation.
	if d.err == nil && n > uint64(len(p)) {
		return m, fmt.Errorf("%w: item count %d exceeds payload", ErrBadMessage, n)
	}
	m.Items = make([]Item, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Items = append(m.Items, Item{Node: d.uvarint(), Color: d.string(), Value: d.string()})
	}
	return m, d.finish()
}

func (m Prepare) Encode() []byte { return appendString(nil, m.Src) }

func DecodePrepare(p []byte) (Prepare, error) {
	d := decoder{buf: p}
	m := Prepare{Src: d.string()}
	return m, d.finish()
}

func (m Prepared) Encode() []byte { return binary.AppendUvarint(nil, m.Stmt) }

func DecodePrepared(p []byte) (Prepared, error) {
	d := decoder{buf: p}
	m := Prepared{Stmt: d.uvarint()}
	return m, d.finish()
}

func (m Execute) Encode() []byte {
	buf := binary.AppendUvarint(nil, m.Stmt)
	return binary.AppendUvarint(buf, m.DeadlineMillis)
}

func DecodeExecute(p []byte) (Execute, error) {
	d := decoder{buf: p}
	m := Execute{Stmt: d.uvarint(), DeadlineMillis: d.uvarint()}
	return m, d.finish()
}

func (m Executed) Encode() []byte {
	buf := binary.AppendUvarint(nil, m.Cursor)
	return binary.AppendUvarint(buf, m.Rows)
}

func DecodeExecuted(p []byte) (Executed, error) {
	d := decoder{buf: p}
	m := Executed{Cursor: d.uvarint(), Rows: d.uvarint()}
	return m, d.finish()
}

func (m Fetch) Encode() []byte {
	buf := binary.AppendUvarint(nil, m.Cursor)
	return binary.AppendUvarint(buf, uint64(m.Max))
}

func DecodeFetch(p []byte) (Fetch, error) {
	d := decoder{buf: p}
	m := Fetch{Cursor: d.uvarint(), Max: d.uint32()}
	return m, d.finish()
}

func (m CloseCursor) Encode() []byte { return binary.AppendUvarint(nil, m.Cursor) }

func DecodeCloseCursor(p []byte) (CloseCursor, error) {
	d := decoder{buf: p}
	m := CloseCursor{Cursor: d.uvarint()}
	return m, d.finish()
}

func (m CloseStmt) Encode() []byte { return binary.AppendUvarint(nil, m.Stmt) }

func DecodeCloseStmt(p []byte) (CloseStmt, error) {
	d := decoder{buf: p}
	m := CloseStmt{Stmt: d.uvarint()}
	return m, d.finish()
}

func (m Update) Encode() []byte {
	buf := appendString(nil, m.Src)
	return binary.AppendUvarint(buf, m.DeadlineMillis)
}

func DecodeUpdate(p []byte) (Update, error) {
	d := decoder{buf: p}
	m := Update{Src: d.string(), DeadlineMillis: d.uvarint()}
	return m, d.finish()
}

func (m Updated) Encode() []byte {
	buf := binary.AppendUvarint(nil, m.Tuples)
	return binary.AppendUvarint(buf, m.NodesTouched)
}

func DecodeUpdated(p []byte) (Updated, error) {
	d := decoder{buf: p}
	m := Updated{Tuples: d.uvarint(), NodesTouched: d.uvarint()}
	return m, d.finish()
}

func (m HealthInfo) Encode() []byte {
	buf := []byte{m.State}
	buf = appendString(buf, m.Cause)
	buf = binary.AppendUvarint(buf, m.Degrades)
	return binary.AppendUvarint(buf, m.Heals)
}

func DecodeHealthInfo(p []byte) (HealthInfo, error) {
	d := decoder{buf: p}
	m := HealthInfo{State: d.byte(), Cause: d.string(), Degrades: d.uvarint(), Heals: d.uvarint()}
	return m, d.finish()
}

func (m StatsInfo) Encode() []byte {
	buf := binary.AppendUvarint(nil, m.Connections)
	buf = binary.AppendUvarint(buf, m.Open)
	buf = binary.AppendUvarint(buf, m.Requests)
	buf = binary.AppendUvarint(buf, m.Responses)
	buf = binary.AppendUvarint(buf, m.Errors)
	buf = binary.AppendUvarint(buf, m.StmtsOpen)
	buf = binary.AppendUvarint(buf, m.CursorsOpen)
	return appendBool(buf, m.Draining)
}

func DecodeStatsInfo(p []byte) (StatsInfo, error) {
	d := decoder{buf: p}
	m := StatsInfo{
		Connections: d.uvarint(),
		Open:        d.uvarint(),
		Requests:    d.uvarint(),
		Responses:   d.uvarint(),
		Errors:      d.uvarint(),
		StmtsOpen:   d.uvarint(),
		CursorsOpen: d.uvarint(),
		Draining:    d.bool(),
	}
	return m, d.finish()
}

func (m Drain) Encode() []byte { return appendString(nil, m.Reason) }

func DecodeDrain(p []byte) (Drain, error) {
	d := decoder{buf: p}
	m := Drain{Reason: d.string()}
	return m, d.finish()
}
