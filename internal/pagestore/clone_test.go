package pagestore

import (
	"fmt"
	"sync"
	"testing"
)

// TestCloneSnapshotIsolation: records written through a clone are invisible
// to the original and vice versa, including pages that were resident in the
// original's buffer pool at clone time.
func TestCloneSnapshotIsolation(t *testing.T) {
	s := NewStore(4) // tiny pool: some pages live on "disk", some in frames
	f := s.CreateFile()
	var rids []RecordID
	for i := 0; i < 200; i++ {
		rid, err := s.AppendRecord(f, []byte(fmt.Sprintf("orig-%04d-payload-xxxxxxxxxxxxxxxx", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}

	cl := s.Clone()

	// Mutate the clone: overwrite, delete, append.
	for i := 0; i < 200; i += 2 {
		if err := cl.OverwriteRecord(rids[i], []byte(fmt.Sprintf("CLON-%04d-payload-xxxxxxxxxxxxxxxx", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 200; i += 4 {
		if err := cl.DeleteRecord(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := cl.AppendRecord(f, []byte("clone-extra-record")); err != nil {
			t.Fatal(err)
		}
	}

	// Original still reads every original record.
	for i, rid := range rids {
		got, err := s.ReadRecord(rid)
		if err != nil {
			t.Fatalf("original record %d: %v", i, err)
		}
		want := fmt.Sprintf("orig-%04d-payload-xxxxxxxxxxxxxxxx", i)
		if string(got) != want {
			t.Fatalf("original record %d = %q, want %q", i, got, want)
		}
	}
	// Clone sees its own mutations.
	for i := 0; i < 200; i += 2 {
		got, err := cl.ReadRecord(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("CLON-%04d-payload-xxxxxxxxxxxxxxxx", i); string(got) != want {
			t.Fatalf("clone record %d = %q, want %q", i, got, want)
		}
	}
	for i := 1; i < 200; i += 4 {
		if _, err := cl.ReadRecord(rids[i]); err == nil {
			t.Fatalf("clone record %d should be deleted", i)
		}
	}
	// And mutating the original does not leak into the clone.
	if err := s.OverwriteRecord(rids[3], []byte("ORIG-mutated")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadRecord(rids[3])
	if err != nil {
		t.Fatal(err)
	}
	if want := "orig-0003-payload-xxxxxxxxxxxxxxxx"; string(got) != want {
		t.Fatalf("clone saw original's post-clone write: %q", got)
	}
}

// TestCloneConcurrentReaders: frozen original serves readers while the
// clone absorbs writes (meaningful under -race).
func TestCloneConcurrentReaders(t *testing.T) {
	s := NewStore(8)
	f := s.CreateFile()
	var rids []RecordID
	for i := 0; i < 300; i++ {
		rid, err := s.AppendRecord(f, []byte(fmt.Sprintf("rec-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	cl := s.Clone()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 100; n++ {
				i := n % len(rids)
				got, err := s.ReadRecord(rids[i])
				if err != nil {
					t.Error(err)
					return
				}
				if want := fmt.Sprintf("rec-%04d", i); string(got) != want {
					t.Errorf("read %q, want %q", got, want)
					return
				}
			}
		}()
	}
	for i := range rids {
		if err := cl.OverwriteRecord(rids[i], []byte("mutated!")); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
}
