package pagestore

import "colorfulxml/internal/obs"

// Pagestore instruments: buffer-pool effectiveness. A "page read" is a pool
// miss that fetches the page image from the backing store; hits are served
// from the pool. Both are recorded under the pool mutex already held by Pin,
// so the atomic add is noise next to the map lookup it accompanies.
var (
	obsPoolHits  = obs.NewCounter("pagestore_pool_hits_total")
	obsPageReads = obs.NewCounter("pagestore_page_reads_total")
)
