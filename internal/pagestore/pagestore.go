// Package pagestore is the storage substrate of the physical MCT store: 8 KB
// slotted pages grouped into heap files, behind an LRU buffer pool with
// pin/unpin discipline and hit/miss accounting.
//
// The experiments of the paper's Section 7 ran Timber with an 8 KB data page
// size and a 256 MB buffer pool; this package reproduces that configuration
// (both sizes are tunable) so the query engine's relative costs — structural
// joins vs. value joins vs. color crossings — are shaped by the same page
// and buffering behaviour.
package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// PageSize is the default page size (8 KB, the paper's configuration).
const PageSize = 8192

// DefaultPoolPages is the default buffer pool capacity: 256 MB of 8 KB
// pages, the paper's configuration.
const DefaultPoolPages = (256 << 20) / PageSize

// PageID identifies a page within a Store: a file number and a page number.
type PageID struct {
	File FileID
	Page uint32
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.File, p.Page) }

// FileID identifies a heap file within a Store.
type FileID uint32

// RecordID identifies a record: a page and a slot within it.
type RecordID struct {
	PageID
	Slot uint16
}

func (r RecordID) String() string { return fmt.Sprintf("%d:%d:%d", r.File, r.Page, r.Slot) }

// Errors returned by the page store.
var (
	ErrRecordTooLarge = errors.New("record larger than page capacity")
	ErrNoSuchRecord   = errors.New("no such record")
	ErrNoSuchFile     = errors.New("no such file")
)

// Page is an in-memory page image with a slot directory:
//
//	[0:2]  numSlots
//	[2:4]  free-space offset (end of used data region)
//	then per-slot 4-byte entries (offset uint16, length uint16) growing from
//	the end of the page, record data growing from the front.
type Page struct {
	ID   PageID
	Data [PageSize]byte
}

const pageHeader = 4
const slotSize = 4

func (p *Page) numSlots() uint16 { return binary.LittleEndian.Uint16(p.Data[0:2]) }

func (p *Page) setNumSlots(n uint16) { binary.LittleEndian.PutUint16(p.Data[0:2], n) }

func (p *Page) freeOff() uint16 {
	v := binary.LittleEndian.Uint16(p.Data[2:4])
	if v == 0 {
		return pageHeader
	}
	return v
}

func (p *Page) setFreeOff(v uint16) { binary.LittleEndian.PutUint16(p.Data[2:4], v) }

func (p *Page) slotEntry(i uint16) (off, length uint16) {
	base := PageSize - int(i+1)*slotSize
	return binary.LittleEndian.Uint16(p.Data[base : base+2]),
		binary.LittleEndian.Uint16(p.Data[base+2 : base+4])
}

func (p *Page) setSlotEntry(i uint16, off, length uint16) {
	base := PageSize - int(i+1)*slotSize
	binary.LittleEndian.PutUint16(p.Data[base:base+2], off)
	binary.LittleEndian.PutUint16(p.Data[base+2:base+4], length)
}

// FreeSpace returns the bytes available for one more record (including its
// slot entry).
func (p *Page) FreeSpace() int {
	used := int(p.freeOff()) + int(p.numSlots())*slotSize
	free := PageSize - used - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert adds a record to the page, returning its slot.
func (p *Page) Insert(rec []byte) (uint16, error) {
	if len(rec) > p.FreeSpace() {
		return 0, fmt.Errorf("pagestore: %w (%d bytes, %d free)", ErrRecordTooLarge, len(rec), p.FreeSpace())
	}
	slot := p.numSlots()
	off := p.freeOff()
	copy(p.Data[off:], rec)
	p.setSlotEntry(slot, off, uint16(len(rec)))
	p.setNumSlots(slot + 1)
	p.setFreeOff(off + uint16(len(rec)))
	return slot, nil
}

// Record returns the record bytes in a slot. The returned slice aliases the
// page; callers must copy if they retain it past unpin.
func (p *Page) Record(slot uint16) ([]byte, error) {
	if slot >= p.numSlots() {
		return nil, fmt.Errorf("pagestore: slot %d: %w", slot, ErrNoSuchRecord)
	}
	off, length := p.slotEntry(slot)
	if off == 0 && length == 0 {
		return nil, fmt.Errorf("pagestore: slot %d deleted: %w", slot, ErrNoSuchRecord)
	}
	return p.Data[off : off+length], nil
}

// Overwrite replaces a record in place. The new record must not be longer
// than the old one (MCT structural records are fixed-size).
func (p *Page) Overwrite(slot uint16, rec []byte) error {
	if slot >= p.numSlots() {
		return fmt.Errorf("pagestore: slot %d: %w", slot, ErrNoSuchRecord)
	}
	off, length := p.slotEntry(slot)
	if len(rec) > int(length) {
		return fmt.Errorf("pagestore: overwrite grows record %d -> %d: %w", length, len(rec), ErrRecordTooLarge)
	}
	copy(p.Data[off:off+uint16(len(rec))], rec)
	if len(rec) < int(length) {
		p.setSlotEntry(slot, off, uint16(len(rec)))
	}
	return nil
}

// Delete tombstones a slot (space is not reclaimed; heap files are
// append-mostly in this system).
func (p *Page) Delete(slot uint16) error {
	if slot >= p.numSlots() {
		return fmt.Errorf("pagestore: slot %d: %w", slot, ErrNoSuchRecord)
	}
	p.setSlotEntry(slot, 0, 0)
	return nil
}

// NumSlots returns the number of slots ever allocated in the page (including
// tombstones).
func (p *Page) NumSlots() int { return int(p.numSlots()) }

// Stats counts buffer pool activity.
type Stats struct {
	Hits      uint64 // page requests served from the pool
	Misses    uint64 // page requests that had to "read from disk"
	Evictions uint64
	PagesRead uint64 // alias of Misses, for reporting symmetry
}

// Store is a collection of heap files backed by a buffer pool over an
// in-memory "disk". All reads go through Pin/Unpin so that page traffic is
// observable; the disk layer stores evicted page images.
type Store struct {
	mu       sync.Mutex
	poolCap  int
	pool     map[PageID]*frame
	lru      *lruList
	disk     map[PageID][]byte
	files    map[FileID]*fileMeta
	nextFile FileID
	stats    Stats
	coldMiss bool // when true, first-touch pages count as misses (default)
}

type fileMeta struct {
	pages uint32
	// lastPage caches the current fill target for appends.
	lastPage uint32
	hasPages bool
}

type frame struct {
	page *Page
	pins int
	elem *lruElem
}

// NewStore creates a store with the given buffer pool capacity in pages
// (DefaultPoolPages if <= 0).
func NewStore(poolPages int) *Store {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	return &Store{
		poolCap:  poolPages,
		pool:     make(map[PageID]*frame),
		lru:      newLRUList(),
		disk:     make(map[PageID][]byte),
		files:    make(map[FileID]*fileMeta),
		coldMiss: true,
	}
}

// Clone returns a copy-on-write snapshot of the store. Page images are
// shared with the receiver and never mutated in place: Pin copies an image
// into a fresh frame and eviction writes back a freshly allocated image, so
// writes through either store leave the other's disk layer untouched. The
// clone starts with an empty (cold) buffer pool and zeroed statistics.
//
// The intended discipline is that the receiver is a frozen snapshot serving
// readers while the clone absorbs updates; Clone itself only reads frame
// data, so it is safe alongside concurrent record reads on the receiver.
func (s *Store) Clone() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	disk := make(map[PageID][]byte, len(s.disk)+len(s.pool))
	for id, img := range s.disk {
		disk[id] = img
	}
	// Pooled frames may be newer than their disk image (or have none yet);
	// materialize them so the clone sees current contents.
	for id, fr := range s.pool {
		img := make([]byte, PageSize)
		copy(img, fr.page.Data[:])
		disk[id] = img
	}
	files := make(map[FileID]*fileMeta, len(s.files))
	for id, m := range s.files {
		c := *m
		files[id] = &c
	}
	return &Store{
		poolCap:  s.poolCap,
		pool:     make(map[PageID]*frame),
		lru:      newLRUList(),
		disk:     disk,
		files:    files,
		nextFile: s.nextFile,
		coldMiss: s.coldMiss,
	}
}

// CreateFile allocates a new, empty heap file.
func (s *Store) CreateFile() FileID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextFile
	s.nextFile++
	s.files[id] = &fileMeta{}
	return id
}

// NumPages returns the number of pages in a file.
func (s *Store) NumPages(f FileID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, ok := s.files[f]
	if !ok {
		return 0, fmt.Errorf("pagestore: file %d: %w", f, ErrNoSuchFile)
	}
	return int(meta.pages), nil
}

// Stats returns a snapshot of buffer pool statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.PagesRead = st.Misses
	return st
}

// ResetStats zeroes the counters (used between experiment runs).
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// FlushAll unpins nothing but evicts every unpinned page to the disk layer,
// simulating a cold cache (the paper's cold-cache runs flush all buffers).
func (s *Store) FlushAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, fr := range s.pool {
		if fr.pins == 0 {
			s.evictLocked(id, fr)
		}
	}
}

// Pin fetches a page and pins it in the pool. Every Pin must be matched by
// an Unpin.
func (s *Store) Pin(id PageID) (*Page, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, ok := s.files[id.File]
	if !ok {
		return nil, fmt.Errorf("pagestore: file %d: %w", id.File, ErrNoSuchFile)
	}
	if id.Page >= meta.pages {
		return nil, fmt.Errorf("pagestore: page %v out of range (%d pages)", id, meta.pages)
	}
	if fr, ok := s.pool[id]; ok {
		s.stats.Hits++
		obsPoolHits.Inc()
		fr.pins++
		if fr.elem != nil {
			s.lru.remove(fr.elem)
			fr.elem = nil
		}
		return fr.page, nil
	}
	s.stats.Misses++
	obsPageReads.Inc()
	pg := &Page{ID: id}
	if img, ok := s.disk[id]; ok {
		copy(pg.Data[:], img)
	}
	s.ensureCapacityLocked()
	s.pool[id] = &frame{page: pg, pins: 1}
	return pg, nil
}

// Unpin releases a pinned page.
func (s *Store) Unpin(id PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.pool[id]
	if !ok || fr.pins == 0 {
		return
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = s.lru.pushFront(id)
	}
}

// ensureCapacityLocked evicts LRU unpinned pages until there is room for one
// more.
func (s *Store) ensureCapacityLocked() {
	for len(s.pool) >= s.poolCap {
		id, ok := s.lru.popBack()
		if !ok {
			return // everything pinned; allow temporary overcommit
		}
		fr := s.pool[id]
		if fr == nil {
			continue
		}
		fr.elem = nil
		s.evictLocked(id, fr)
	}
}

func (s *Store) evictLocked(id PageID, fr *frame) {
	img := make([]byte, PageSize)
	copy(img, fr.page.Data[:])
	s.disk[id] = img
	if fr.elem != nil {
		s.lru.remove(fr.elem)
	}
	delete(s.pool, id)
	s.stats.Evictions++
}

// AppendRecord inserts a record at the end of a file, allocating pages as
// needed, and returns its RecordID.
func (s *Store) AppendRecord(f FileID, rec []byte) (RecordID, error) {
	if len(rec) > PageSize-pageHeader-slotSize {
		return RecordID{}, fmt.Errorf("pagestore: %w", ErrRecordTooLarge)
	}
	s.mu.Lock()
	meta, ok := s.files[f]
	if !ok {
		s.mu.Unlock()
		return RecordID{}, fmt.Errorf("pagestore: file %d: %w", f, ErrNoSuchFile)
	}
	var target uint32
	fresh := false
	if meta.hasPages {
		target = meta.lastPage
	} else {
		target = meta.pages
		meta.pages++
		meta.lastPage = target
		meta.hasPages = true
		fresh = true
	}
	s.mu.Unlock()

	for {
		id := PageID{File: f, Page: target}
		pg, err := s.Pin(id)
		if err != nil {
			return RecordID{}, err
		}
		if fresh || len(rec) <= pg.FreeSpace() {
			slot, err := pg.Insert(rec)
			s.Unpin(id)
			if err == nil {
				return RecordID{PageID: id, Slot: slot}, nil
			}
			if !errors.Is(err, ErrRecordTooLarge) {
				return RecordID{}, err
			}
		} else {
			s.Unpin(id)
		}
		// Page full: allocate a new one.
		s.mu.Lock()
		target = meta.pages
		meta.pages++
		meta.lastPage = target
		s.mu.Unlock()
		fresh = true
	}
}

// ReadRecord pins the page, copies the record out and unpins.
func (s *Store) ReadRecord(rid RecordID) ([]byte, error) {
	pg, err := s.Pin(rid.PageID)
	if err != nil {
		return nil, err
	}
	defer s.Unpin(rid.PageID)
	rec, err := pg.Record(rid.Slot)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// OverwriteRecord replaces a record in place (same or smaller size).
func (s *Store) OverwriteRecord(rid RecordID, rec []byte) error {
	pg, err := s.Pin(rid.PageID)
	if err != nil {
		return err
	}
	defer s.Unpin(rid.PageID)
	return pg.Overwrite(rid.Slot, rec)
}

// DeleteRecord tombstones a record.
func (s *Store) DeleteRecord(rid RecordID) error {
	pg, err := s.Pin(rid.PageID)
	if err != nil {
		return err
	}
	defer s.Unpin(rid.PageID)
	return pg.Delete(rid.Slot)
}

// Scan iterates every live record of a file in (page, slot) order, calling
// fn with the record id and bytes (valid only during the call). fn returning
// false stops the scan.
func (s *Store) Scan(f FileID, fn func(RecordID, []byte) bool) error {
	n, err := s.NumPages(f)
	if err != nil {
		return err
	}
	for p := 0; p < n; p++ {
		id := PageID{File: f, Page: uint32(p)}
		pg, err := s.Pin(id)
		if err != nil {
			return err
		}
		slots := pg.NumSlots()
		for sl := 0; sl < slots; sl++ {
			rec, err := pg.Record(uint16(sl))
			if err != nil {
				continue // tombstone
			}
			if !fn(RecordID{PageID: id, Slot: uint16(sl)}, rec) {
				s.Unpin(id)
				return nil
			}
		}
		s.Unpin(id)
	}
	return nil
}

// lruList is a tiny intrusive doubly-linked LRU list of PageIDs.
type lruList struct {
	head, tail *lruElem
}

type lruElem struct {
	id         PageID
	prev, next *lruElem
}

func newLRUList() *lruList { return &lruList{} }

func (l *lruList) pushFront(id PageID) *lruElem {
	e := &lruElem{id: id}
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	return e
}

func (l *lruList) remove(e *lruElem) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lruList) popBack() (PageID, bool) {
	if l.tail == nil {
		return PageID{}, false
	}
	e := l.tail
	l.remove(e)
	return e.id, true
}
