package pagestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageInsertAndRead(t *testing.T) {
	var p Page
	recs := [][]byte{[]byte("hello"), []byte("world"), []byte("")}
	var slots []uint16
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Record(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("slot %d = %q, want %q", s, got, recs[i])
		}
	}
	if _, err := p.Record(99); err == nil {
		t.Fatal("bad slot should fail")
	}
}

func TestPageCapacity(t *testing.T) {
	var p Page
	big := make([]byte, PageSize)
	if _, err := p.Insert(big); err == nil {
		t.Fatal("oversized record should fail")
	}
	// Fill the page with 100-byte records until full; then one more fails.
	rec := make([]byte, 100)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			break
		}
		n++
	}
	want := (PageSize - pageHeader) / (100 + slotSize)
	if n != want {
		t.Fatalf("fit %d records, want %d", n, want)
	}
}

func TestPageOverwriteAndDelete(t *testing.T) {
	var p Page
	s, _ := p.Insert([]byte("abcdef"))
	if err := p.Overwrite(s, []byte("xyzxyz")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Record(s)
	if string(got) != "xyzxyz" {
		t.Fatalf("got %q", got)
	}
	if err := p.Overwrite(s, []byte("too long here")); err == nil {
		t.Fatal("growing overwrite should fail")
	}
	if err := p.Overwrite(s, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Record(s)
	if string(got) != "ab" {
		t.Fatalf("shrunk record = %q", got)
	}
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Record(s); err == nil {
		t.Fatal("deleted record should not read")
	}
}

func TestStoreAppendAndScan(t *testing.T) {
	s := NewStore(16)
	f := s.CreateFile()
	var want []string
	for i := 0; i < 5000; i++ {
		rec := fmt.Sprintf("record-%05d", i)
		want = append(want, rec)
		if _, err := s.AppendRecord(f, []byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := s.Scan(f, func(_ RecordID, rec []byte) bool {
		got = append(got, string(rec))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	n, _ := s.NumPages(f)
	if n < 2 {
		t.Fatalf("expected multiple pages, got %d", n)
	}
}

func TestStoreReadWriteDelete(t *testing.T) {
	s := NewStore(8)
	f := s.CreateFile()
	rid, err := s.AppendRecord(f, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRecord(rid)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if err := s.OverwriteRecord(rid, []byte("PAYLOAD")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.ReadRecord(rid)
	if string(got) != "PAYLOAD" {
		t.Fatalf("after overwrite = %q", got)
	}
	if err := s.DeleteRecord(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRecord(rid); err == nil {
		t.Fatal("deleted record should not read")
	}
	// Scan skips the tombstone.
	count := 0
	_ = s.Scan(f, func(RecordID, []byte) bool { count++; return true })
	if count != 0 {
		t.Fatalf("scan found %d records after delete", count)
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewStore(4)
	if _, err := s.AppendRecord(99, []byte("x")); err == nil {
		t.Fatal("append to missing file should fail")
	}
	if _, err := s.Pin(PageID{File: 99}); err == nil {
		t.Fatal("pin of missing file should fail")
	}
	f := s.CreateFile()
	if _, err := s.Pin(PageID{File: f, Page: 0}); err == nil {
		t.Fatal("pin of out-of-range page should fail")
	}
	big := make([]byte, PageSize)
	if _, err := s.AppendRecord(f, big); err == nil {
		t.Fatal("oversized append should fail")
	}
	if _, err := s.NumPages(99); err == nil {
		t.Fatal("NumPages of missing file should fail")
	}
}

func TestBufferPoolEvictionAndStats(t *testing.T) {
	s := NewStore(4)
	f := s.CreateFile()
	// Create 10 pages worth of data.
	rec := make([]byte, 4000) // two records per page
	for i := 0; i < 20; i++ {
		if _, err := s.AppendRecord(f, rec); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := s.NumPages(f)
	if n != 10 {
		t.Fatalf("pages = %d, want 10", n)
	}
	s.ResetStats()
	// Sequential scan through a 4-page pool: every page is a miss.
	_ = s.Scan(f, func(RecordID, []byte) bool { return true })
	st := s.Stats()
	if st.Misses != 10 {
		t.Fatalf("misses = %d, want 10", st.Misses)
	}
	// Re-scan: the last pages are hot but early ones were evicted.
	_ = s.Scan(f, func(RecordID, []byte) bool { return true })
	st = s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions with a 4-page pool")
	}
	// A pool large enough turns the second scan into all hits.
	s2 := NewStore(64)
	f2 := s2.CreateFile()
	for i := 0; i < 20; i++ {
		if _, err := s2.AppendRecord(f2, rec); err != nil {
			t.Fatal(err)
		}
	}
	s2.ResetStats()
	_ = s2.Scan(f2, func(RecordID, []byte) bool { return true })
	first := s2.Stats()
	_ = s2.Scan(f2, func(RecordID, []byte) bool { return true })
	second := s2.Stats()
	if second.Misses != first.Misses {
		t.Fatalf("warm scan should not miss: %d -> %d", first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Fatal("warm scan should hit")
	}
}

func TestEvictionPersistsData(t *testing.T) {
	s := NewStore(2) // tiny pool forces eviction
	f := s.CreateFile()
	var rids []RecordID
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("%04d-%s", i, string(make([]byte, 500))))
		rid, err := s.AppendRecord(f, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := s.ReadRecord(rid)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(got[:4]) != fmt.Sprintf("%04d", i) {
			t.Fatalf("record %d corrupted: %q", i, got[:4])
		}
	}
}

func TestFlushAllSimulatesColdCache(t *testing.T) {
	s := NewStore(64)
	f := s.CreateFile()
	for i := 0; i < 10; i++ {
		if _, err := s.AppendRecord(f, make([]byte, 4000)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Scan(f, func(RecordID, []byte) bool { return true }) // warm up
	s.FlushAll()
	s.ResetStats()
	_ = s.Scan(f, func(RecordID, []byte) bool { return true })
	if st := s.Stats(); st.Misses == 0 {
		t.Fatal("scan after FlushAll should miss")
	}
}

func TestQuickRandomRecordsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(3)
		file := s.CreateFile()
		type kv struct {
			rid RecordID
			val []byte
		}
		var all []kv
		for i := 0; i < 200; i++ {
			n := rng.Intn(300)
			val := make([]byte, n)
			rng.Read(val)
			rid, err := s.AppendRecord(file, val)
			if err != nil {
				return false
			}
			all = append(all, kv{rid, val})
		}
		for _, item := range all {
			got, err := s.ReadRecord(item.rid)
			if err != nil || !bytes.Equal(got, item.val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
