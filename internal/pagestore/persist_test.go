package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func buildPersistStore(t *testing.T) (*Store, FileID, []RecordID) {
	t.Helper()
	s := NewStore(8) // tiny pool to force eviction traffic
	f := s.CreateFile()
	var rids []RecordID
	for i := 0; i < 500; i++ {
		rid, err := s.AppendRecord(f, []byte(fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", i%40))))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	return s, f, rids
}

func TestDumpLoadRoundTrip(t *testing.T) {
	s, f, rids := buildPersistStore(t)
	g := s.CreateFile() // second, empty file must survive too

	var buf bytes.Buffer
	if err := s.DumpPages(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadStore(bytes.NewReader(buf.Bytes()), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		got, err := r.ReadRecord(rid)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want, _ := s.ReadRecord(rid)
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %q want %q", i, got, want)
		}
	}
	if n, err := r.NumPages(g); err != nil || n != 0 {
		t.Fatalf("empty file: pages=%d err=%v", n, err)
	}
	// Appends continue in the right place.
	rid, err := r.AppendRecord(f, []byte("after-reload"))
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != rids[len(rids)-1].Page && rid.Page != rids[len(rids)-1].Page+1 {
		t.Fatalf("append landed at %v, last loaded page %v", rid, rids[len(rids)-1])
	}
}

func TestLoadDetectsPageCorruption(t *testing.T) {
	s, _, _ := buildPersistStore(t)
	var buf bytes.Buffer
	if err := s.DumpPages(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte inside a page image (past the header + file table region).
	data[len(data)/2] ^= 0x40
	_, err := ReadStore(bytes.NewReader(data), 0)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
	if !strings.Contains(err.Error(), "page ") && !strings.Contains(err.Error(), "trailer") {
		t.Fatalf("error does not locate the damage: %v", err)
	}
}

func TestLoadDetectsTruncation(t *testing.T) {
	s, _, _ := buildPersistStore(t)
	var buf bytes.Buffer
	if err := s.DumpPages(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) - 1, len(data) - PageSize, len(data) / 2, 7, 0} {
		if _, err := ReadStore(bytes.NewReader(data[:cut]), 0); err == nil {
			t.Fatalf("cut at %d accepted", cut)
		}
	}
}
