package pagestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// This file is the on-disk page format of the durable store. A page dump is
// the paged half of a checkpoint: a header, the heap-file table, and every
// page image prefixed with its identity and a CRC32C checksum. Loading
// verifies each page's checksum and fails naming the damaged page, so a
// corrupted checkpoint can never be opened as if it were intact.
//
//	dump   := magic "MCTPAGE1" | version:u32 | nextFile:u32 | nFiles:u32
//	          file* page*
//	file   := id:u32 | pages:u32
//	page   := file:u32 | page:u32 | crc32c(data):u32 | data[PageSize]
//	       then trailer crc32c over everything before it.

const pageMagic = "MCTPAGE1"

// persistVersion is the page-dump format version.
const persistVersion = 1

var pageCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum is wrapped by every checksum failure detected while loading a
// page dump.
var ErrChecksum = errors.New("pagestore: checksum mismatch")

// DumpPages writes every page of every heap file to w in the checkpoint
// format. The receiver must be quiescent (a frozen snapshot): DumpPages
// reads page images without pinning.
func (s *Store) DumpPages(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	bw := bufio.NewWriterSize(w, 1<<16)
	sum := crc32.New(pageCastagnoli)
	out := io.MultiWriter(bw, sum)

	var u32 [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := out.Write(u32[:])
		return err
	}
	if _, err := out.Write([]byte(pageMagic)); err != nil {
		return err
	}
	if err := put(persistVersion); err != nil {
		return err
	}
	if err := put(uint32(s.nextFile)); err != nil {
		return err
	}
	if err := put(uint32(len(s.files))); err != nil {
		return err
	}
	// File table in id order (files map iteration is unordered).
	ids := make([]FileID, 0, len(s.files))
	for id := range s.files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := put(uint32(id)); err != nil {
			return err
		}
		if err := put(s.files[id].pages); err != nil {
			return err
		}
	}
	for _, id := range ids {
		meta := s.files[id]
		for p := uint32(0); p < meta.pages; p++ {
			pid := PageID{File: id, Page: p}
			img := s.pageImageLocked(pid)
			if err := put(uint32(pid.File)); err != nil {
				return err
			}
			if err := put(pid.Page); err != nil {
				return err
			}
			if err := put(crc32.Checksum(img, pageCastagnoli)); err != nil {
				return err
			}
			if _, err := out.Write(img); err != nil {
				return err
			}
		}
	}
	// Whole-dump trailer checksum (catches truncation of the final page run).
	binary.LittleEndian.PutUint32(u32[:], sum.Sum32())
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// pageImageLocked returns the current image of a page: the pooled frame if
// resident, the disk layer otherwise, or a zero page if never written.
func (s *Store) pageImageLocked(id PageID) []byte {
	if fr, ok := s.pool[id]; ok {
		return fr.page.Data[:]
	}
	if img, ok := s.disk[id]; ok {
		return img
	}
	return make([]byte, PageSize)
}

// ReadStore reconstructs a Store from a page dump, verifying every page
// checksum. poolPages sizes the new buffer pool (0: default). Any mismatch
// is reported with the damaged page's identity and wraps ErrChecksum.
func ReadStore(r io.Reader, poolPages int) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	sum := crc32.New(pageCastagnoli)
	in := io.TeeReader(br, sum)

	var u32 [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(in, u32[:]); err != nil {
			return 0, fmt.Errorf("pagestore: truncated page dump: %w", err)
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	magic := make([]byte, len(pageMagic))
	if _, err := io.ReadFull(in, magic); err != nil {
		return nil, fmt.Errorf("pagestore: truncated page dump: %w", err)
	}
	if string(magic) != pageMagic {
		return nil, fmt.Errorf("pagestore: bad page dump magic %q", magic)
	}
	ver, err := get()
	if err != nil {
		return nil, err
	}
	if ver != persistVersion {
		return nil, fmt.Errorf("pagestore: unsupported page dump version %d", ver)
	}
	nextFile, err := get()
	if err != nil {
		return nil, err
	}
	nFiles, err := get()
	if err != nil {
		return nil, err
	}
	if nFiles > 1<<20 {
		return nil, fmt.Errorf("pagestore: implausible file count %d", nFiles)
	}
	s := NewStore(poolPages)
	s.nextFile = FileID(nextFile)
	type fileEnt struct {
		id    FileID
		pages uint32
	}
	files := make([]fileEnt, nFiles)
	totalPages := uint64(0)
	for i := range files {
		id, err := get()
		if err != nil {
			return nil, err
		}
		pages, err := get()
		if err != nil {
			return nil, err
		}
		files[i] = fileEnt{FileID(id), pages}
		if FileID(id) >= s.nextFile {
			return nil, fmt.Errorf("pagestore: file id %d beyond nextFile %d", id, nextFile)
		}
		s.files[FileID(id)] = &fileMeta{pages: pages}
		totalPages += uint64(pages)
	}
	for n := uint64(0); n < totalPages; n++ {
		fid, err := get()
		if err != nil {
			return nil, err
		}
		pno, err := get()
		if err != nil {
			return nil, err
		}
		want, err := get()
		if err != nil {
			return nil, err
		}
		id := PageID{File: FileID(fid), Page: pno}
		meta, ok := s.files[id.File]
		if !ok || id.Page >= meta.pages {
			return nil, fmt.Errorf("pagestore: page dump names unknown page %v", id)
		}
		img := make([]byte, PageSize)
		if _, err := io.ReadFull(in, img); err != nil {
			return nil, fmt.Errorf("pagestore: truncated page %v: %w", id, err)
		}
		if got := crc32.Checksum(img, pageCastagnoli); got != want {
			return nil, fmt.Errorf("pagestore: page %v: %w (got %08x, want %08x)", id, ErrChecksum, got, want)
		}
		s.disk[id] = img
	}
	wantTrailer := sum.Sum32()
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("pagestore: truncated page dump trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(u32[:]); got != wantTrailer {
		return nil, fmt.Errorf("pagestore: page dump trailer: %w (got %08x, want %08x)", ErrChecksum, got, wantTrailer)
	}
	// Recompute append targets: the last page of each file is the fill target.
	for _, f := range files {
		meta := s.files[f.id]
		if f.pages > 0 {
			meta.lastPage = f.pages - 1
			meta.hasPages = true
		}
	}
	return s, nil
}
