// Package btree implements an in-memory B+-tree keyed by strings, each key
// holding a postings list of uint64 values. It backs the physical store's
// indexes: the element tag-name index, the content index and the
// attribute-value index (paper Section 7: "we constructed an index on
// element tag name and attribute id ... and on element content and attribute
// value, where needed").
//
// Keys are unique with multi-value postings, matching the index usage where
// one tag or value maps to many structural node references.
//
// Trees are copy-on-write: Clone is O(1) and the two trees share all nodes
// until one of them mutates. Mutations path-copy any node not owned by the
// mutating tree, so a cloned (frozen) snapshot is never modified and may be
// read concurrently from many goroutines while its clones evolve.
package btree

import "sort"

// degree is the maximum number of keys per node.
const degree = 64

// owner is an identity token: a node may be mutated in place only by the
// tree whose owner token it carries.
type owner struct{ _ byte }

// Tree is a B+-tree from string keys to postings lists of uint64.
type Tree struct {
	root   node
	height int
	keys   int
	own    *owner
}

type node interface {
	// find returns the postings for a key, or nil.
	find(key string) []uint64
}

type leaf struct {
	own  *owner
	keys []string
	vals [][]uint64
	// sharedVals marks postings lists that may still be referenced by a
	// frozen clone: they must be copied before the first in-place change.
	sharedVals bool
}

type inner struct {
	own      *owner
	keys     []string // separator keys: child[i] holds keys < keys[i]
	children []node
}

// New creates an empty tree.
func New() *Tree {
	own := &owner{}
	return &Tree{root: &leaf{own: own}, own: own}
}

// Clone returns a copy-on-write snapshot of the tree in O(1). Both trees
// keep working: each path-copies shared nodes on its next mutation, so
// neither ever observes the other's changes. The receiver must not be
// mutated concurrently with Clone.
func (t *Tree) Clone() *Tree {
	// Orphan the shared nodes from both trees so either side copies on
	// write.
	t.own = &owner{}
	return &Tree{root: t.root, height: t.height, keys: t.keys, own: &owner{}}
}

// Len returns the number of distinct keys.
func (t *Tree) Len() int { return t.keys }

// mutable returns n if owned by own, else a shallow path-copy carrying own.
func mutable(n node, own *owner) node {
	switch x := n.(type) {
	case *leaf:
		if x.own == own {
			return x
		}
		return &leaf{
			own:        own,
			keys:       append([]string(nil), x.keys...),
			vals:       append([][]uint64(nil), x.vals...),
			sharedVals: true,
		}
	case *inner:
		if x.own == own {
			return x
		}
		return &inner{
			own:      own,
			keys:     append([]string(nil), x.keys...),
			children: append([]node(nil), x.children...),
		}
	}
	return n
}

// Insert appends val to key's postings (creating the key if absent).
func (t *Tree) Insert(key string, val uint64) {
	if t.root.find(key) == nil {
		t.keys++
	}
	t.root = mutable(t.root, t.own)
	right, sep := t.insertAt(t.root, key, val)
	if right != nil {
		t.root = &inner{own: t.own, keys: []string{sep}, children: []node{t.root, right}}
		t.height++
	}
}

// insertAt inserts into an already-mutable node, returning a new right
// sibling and its separator key when the node splits.
func (t *Tree) insertAt(n node, key string, val uint64) (node, string) {
	switch x := n.(type) {
	case *leaf:
		return x.insert(key, val)
	case *inner:
		i := x.childFor(key)
		x.children[i] = mutable(x.children[i], t.own)
		right, sep := t.insertAt(x.children[i], key, val)
		if right == nil {
			return nil, ""
		}
		x.keys = append(x.keys, "")
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = sep
		x.children = append(x.children, nil)
		copy(x.children[i+2:], x.children[i+1:])
		x.children[i+1] = right
		if len(x.keys) <= degree {
			return nil, ""
		}
		mid := len(x.keys) / 2
		sepUp := x.keys[mid]
		r := &inner{
			own:      x.own,
			keys:     append([]string(nil), x.keys[mid+1:]...),
			children: append([]node(nil), x.children[mid+1:]...),
		}
		x.keys = x.keys[:mid]
		x.children = x.children[:mid+1]
		return r, sepUp
	}
	return nil, ""
}

// Get returns the postings for key (shared storage; do not modify), or nil.
func (t *Tree) Get(key string) []uint64 { return t.root.find(key) }

// Delete removes one occurrence of val from key's postings. It returns true
// when something was removed.
func (t *Tree) Delete(key string, val uint64) bool {
	lf, i := t.mutableLeafFor(key)
	if lf == nil {
		return false
	}
	vals := lf.vals[i]
	for j, v := range vals {
		if v != val {
			continue
		}
		if lf.sharedVals {
			nv := make([]uint64, 0, len(vals)-1)
			nv = append(nv, vals[:j]...)
			nv = append(nv, vals[j+1:]...)
			lf.vals[i] = nv
		} else {
			lf.vals[i] = append(vals[:j], vals[j+1:]...)
		}
		if len(lf.vals[i]) == 0 {
			lf.removeAt(i)
			t.keys--
		}
		return true
	}
	return false
}

// DeleteKey removes a key and all its postings. It returns true when the key
// existed. (Underflow is tolerated: nodes may become sparse but remain
// correct; this matches the append-mostly usage of the MCT store.)
func (t *Tree) DeleteKey(key string) bool {
	lf, i := t.mutableLeafFor(key)
	if lf == nil {
		return false
	}
	lf.removeAt(i)
	t.keys--
	return true
}

// mutableLeafFor path-copies down to the leaf holding key and returns it
// with the key's slot, or (nil, 0) when the key is absent. The tree is left
// untouched when the key does not exist.
func (t *Tree) mutableLeafFor(key string) (*leaf, int) {
	if t.root.find(key) == nil {
		return nil, 0
	}
	t.root = mutable(t.root, t.own)
	n := t.root
	for {
		switch x := n.(type) {
		case *leaf:
			i := sort.SearchStrings(x.keys, key)
			if i >= len(x.keys) || x.keys[i] != key {
				return nil, 0
			}
			return x, i
		case *inner:
			i := x.childFor(key)
			x.children[i] = mutable(x.children[i], t.own)
			n = x.children[i]
		}
	}
}

// removeAt drops slot i from an already-mutable leaf. The outer keys/vals
// arrays are private to this leaf (mutable copies them); only the inner
// postings lists may be shared with a frozen clone.
func (l *leaf) removeAt(i int) {
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
}

// Ascend iterates all (key, postings) pairs in key order; fn returning false
// stops.
func (t *Tree) Ascend(fn func(key string, vals []uint64) bool) {
	ascendFrom(t.root, "", fn)
}

// Range iterates keys in [lo, hi] inclusive; fn returning false stops.
func (t *Tree) Range(lo, hi string, fn func(key string, vals []uint64) bool) {
	ascendFrom(t.root, lo, func(k string, v []uint64) bool {
		if k > hi {
			return false
		}
		return fn(k, v)
	})
}

// Prefix iterates keys with the given prefix in order.
func (t *Tree) Prefix(prefix string, fn func(key string, vals []uint64) bool) {
	ascendFrom(t.root, prefix, func(k string, v []uint64) bool {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			return false
		}
		return fn(k, v)
	})
}

// ascendFrom walks keys >= lo in order without relying on sibling links
// (clones share subtrees, so leaves cannot be chained). It returns false
// when fn stopped the iteration.
func ascendFrom(n node, lo string, fn func(key string, vals []uint64) bool) bool {
	switch x := n.(type) {
	case *leaf:
		i := 0
		if lo != "" {
			i = sort.SearchStrings(x.keys, lo)
		}
		for ; i < len(x.keys); i++ {
			if !fn(x.keys[i], x.vals[i]) {
				return false
			}
		}
		return true
	case *inner:
		i := 0
		if lo != "" {
			i = x.childFor(lo)
		}
		for ; i < len(x.children); i++ {
			if !ascendFrom(x.children[i], lo, fn) {
				return false
			}
		}
		return true
	}
	return true
}

// --- leaf ---------------------------------------------------------------

func (l *leaf) find(key string) []uint64 {
	i := sort.SearchStrings(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		return l.vals[i]
	}
	return nil
}

// insert assumes the leaf is already mutable (owned by the inserting tree).
func (l *leaf) insert(key string, val uint64) (node, string) {
	i := sort.SearchStrings(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		if l.sharedVals {
			nv := make([]uint64, 0, len(l.vals[i])+1)
			nv = append(nv, l.vals[i]...)
			l.vals[i] = append(nv, val)
		} else {
			l.vals[i] = append(l.vals[i], val)
		}
		return nil, ""
	}
	l.keys = append(l.keys, "")
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = []uint64{val}
	if len(l.keys) <= degree {
		return nil, ""
	}
	// Split.
	mid := len(l.keys) / 2
	right := &leaf{
		own:        l.own,
		keys:       append([]string(nil), l.keys[mid:]...),
		vals:       append([][]uint64(nil), l.vals[mid:]...),
		sharedVals: l.sharedVals,
	}
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	return right, right.keys[0]
}

// --- inner ---------------------------------------------------------------

func (in *inner) childFor(key string) int {
	return sort.SearchStrings(in.keys, key+"\x00")
}

func (in *inner) find(key string) []uint64 {
	return in.children[in.childFor(key)].find(key)
}
