// Package btree implements an in-memory B+-tree keyed by strings, each key
// holding a postings list of uint64 values. It backs the physical store's
// indexes: the element tag-name index, the content index and the
// attribute-value index (paper Section 7: "we constructed an index on
// element tag name and attribute id ... and on element content and attribute
// value, where needed").
//
// Leaves are linked for ordered and range iteration; keys are unique with
// multi-value postings, matching the index usage where one tag or value maps
// to many structural node references.
package btree

import "sort"

// degree is the maximum number of keys per node.
const degree = 64

// Tree is a B+-tree from string keys to postings lists of uint64.
type Tree struct {
	root   node
	height int
	keys   int
}

type node interface {
	// insert returns a new right sibling and its first key when the node
	// splits.
	insert(key string, val uint64) (node, string)
	// find returns the postings for a key, or nil.
	find(key string) []uint64
	// firstLeafFrom descends to the leaf that may contain key.
	firstLeafFrom(key string) *leaf
	firstLeaf() *leaf
}

type leaf struct {
	keys []string
	vals [][]uint64
	next *leaf
}

type inner struct {
	keys     []string // separator keys: child[i] holds keys < keys[i]
	children []node
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}}
}

// Len returns the number of distinct keys.
func (t *Tree) Len() int { return t.keys }

// Insert appends val to key's postings (creating the key if absent).
func (t *Tree) Insert(key string, val uint64) {
	if t.root.find(key) == nil {
		t.keys++
	}
	right, sep := t.root.insert(key, val)
	if right != nil {
		t.root = &inner{keys: []string{sep}, children: []node{t.root, right}}
		t.height++
	}
}

// Get returns the postings for key (shared storage; do not modify), or nil.
func (t *Tree) Get(key string) []uint64 { return t.root.find(key) }

// Delete removes one occurrence of val from key's postings. It returns true
// when something was removed.
func (t *Tree) Delete(key string, val uint64) bool {
	lf := t.root.firstLeafFrom(key)
	if lf == nil {
		return false
	}
	i := sort.SearchStrings(lf.keys, key)
	if i >= len(lf.keys) || lf.keys[i] != key {
		return false
	}
	vals := lf.vals[i]
	for j, v := range vals {
		if v == val {
			lf.vals[i] = append(vals[:j], vals[j+1:]...)
			if len(lf.vals[i]) == 0 {
				lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
				lf.vals = append(lf.vals[:i], lf.vals[i+1:]...)
				t.keys--
			}
			return true
		}
	}
	return false
}

// DeleteKey removes a key and all its postings. It returns true when the key
// existed. (Underflow is tolerated: nodes may become sparse but remain
// correct; this matches the append-mostly usage of the MCT store.)
func (t *Tree) DeleteKey(key string) bool {
	lf := t.root.firstLeafFrom(key)
	if lf == nil {
		return false
	}
	i := sort.SearchStrings(lf.keys, key)
	if i >= len(lf.keys) || lf.keys[i] != key {
		return false
	}
	lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
	lf.vals = append(lf.vals[:i], lf.vals[i+1:]...)
	t.keys--
	return true
}

// Ascend iterates all (key, postings) pairs in key order; fn returning false
// stops.
func (t *Tree) Ascend(fn func(key string, vals []uint64) bool) {
	for lf := t.root.firstLeaf(); lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			if !fn(k, lf.vals[i]) {
				return
			}
		}
	}
}

// Range iterates keys in [lo, hi] inclusive; fn returning false stops.
func (t *Tree) Range(lo, hi string, fn func(key string, vals []uint64) bool) {
	lf := t.root.firstLeafFrom(lo)
	for ; lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, lf.vals[i]) {
				return
			}
		}
	}
}

// Prefix iterates keys with the given prefix in order.
func (t *Tree) Prefix(prefix string, fn func(key string, vals []uint64) bool) {
	lf := t.root.firstLeafFrom(prefix)
	for ; lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			if k < prefix {
				continue
			}
			if len(k) < len(prefix) || k[:len(prefix)] != prefix {
				if k > prefix {
					return
				}
				continue
			}
			if !fn(k, lf.vals[i]) {
				return
			}
		}
	}
}

// --- leaf ---------------------------------------------------------------

func (l *leaf) find(key string) []uint64 {
	i := sort.SearchStrings(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		return l.vals[i]
	}
	return nil
}

func (l *leaf) insert(key string, val uint64) (node, string) {
	i := sort.SearchStrings(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		l.vals[i] = append(l.vals[i], val)
		return nil, ""
	}
	l.keys = append(l.keys, "")
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = []uint64{val}
	if len(l.keys) <= degree {
		return nil, ""
	}
	// Split.
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([]string(nil), l.keys[mid:]...),
		vals: append([][]uint64(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	l.next = right
	return right, right.keys[0]
}

func (l *leaf) firstLeafFrom(string) *leaf { return l }

func (l *leaf) firstLeaf() *leaf { return l }

// --- inner ---------------------------------------------------------------

func (in *inner) childFor(key string) int {
	return sort.SearchStrings(in.keys, key+"\x00")
}

func (in *inner) find(key string) []uint64 {
	return in.children[in.childFor(key)].find(key)
}

func (in *inner) insert(key string, val uint64) (node, string) {
	i := in.childFor(key)
	right, sep := in.children[i].insert(key, val)
	if right == nil {
		return nil, ""
	}
	in.keys = append(in.keys, "")
	copy(in.keys[i+1:], in.keys[i:])
	in.keys[i] = sep
	in.children = append(in.children, nil)
	copy(in.children[i+2:], in.children[i+1:])
	in.children[i+1] = right
	if len(in.keys) <= degree {
		return nil, ""
	}
	mid := len(in.keys) / 2
	sepUp := in.keys[mid]
	r := &inner{
		keys:     append([]string(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid]
	in.children = in.children[:mid+1]
	return r, sepUp
}

func (in *inner) firstLeafFrom(key string) *leaf {
	return in.children[in.childFor(key)].firstLeafFrom(key)
}

func (in *inner) firstLeaf() *leaf { return in.children[0].firstLeaf() }
