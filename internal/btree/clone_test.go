package btree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func snapshot(tr *Tree) map[string][]uint64 {
	out := map[string][]uint64{}
	tr.Ascend(func(k string, vals []uint64) bool {
		out[k] = append([]uint64(nil), vals...)
		return true
	})
	return out
}

func sameContents(t *testing.T, got *Tree, want map[string][]uint64) {
	t.Helper()
	n := 0
	got.Ascend(func(k string, vals []uint64) bool {
		w, ok := want[k]
		if !ok {
			t.Fatalf("unexpected key %q", k)
		}
		if len(vals) != len(w) {
			t.Fatalf("key %q: postings %v, want %v", k, vals, w)
		}
		for i := range w {
			if vals[i] != w[i] {
				t.Fatalf("key %q: postings %v, want %v", k, vals, w)
			}
		}
		n++
		return true
	})
	if n != len(want) {
		t.Fatalf("iterated %d keys, want %d", n, len(want))
	}
}

// TestCloneIsolation: mutations on either side of a Clone are invisible to
// the other side, across inserts, posting deletes and key deletes.
func TestCloneIsolation(t *testing.T) {
	tr := New()
	for i := 0; i < 3000; i++ {
		tr.Insert(fmt.Sprintf("k%05d", i), uint64(i))
		tr.Insert(fmt.Sprintf("k%05d", i), uint64(i+100000))
	}
	frozen := snapshot(tr)

	cl := tr.Clone()
	// Mutate the clone heavily.
	for i := 0; i < 3000; i += 2 {
		if !cl.Delete(fmt.Sprintf("k%05d", i), uint64(i)) {
			t.Fatalf("clone delete %d failed", i)
		}
	}
	for i := 0; i < 1000; i += 3 {
		cl.DeleteKey(fmt.Sprintf("k%05d", i))
	}
	for i := 3000; i < 4000; i++ {
		cl.Insert(fmt.Sprintf("k%05d", i), uint64(i))
	}
	sameContents(t, tr, frozen)

	// Mutating the original must not disturb the clone either.
	cloneState := snapshot(cl)
	for i := 0; i < 500; i++ {
		tr.Insert(fmt.Sprintf("x%05d", i), uint64(i))
		tr.Delete(fmt.Sprintf("k%05d", i*2+1), uint64(i*2+1))
	}
	sameContents(t, cl, cloneState)
}

// TestCloneChain: repeated clone-then-mutate keeps every generation intact,
// matching the snapshot lifecycle of the serving path.
func TestCloneChain(t *testing.T) {
	cur := New()
	var states []map[string][]uint64
	var trees []*Tree
	rng := rand.New(rand.NewSource(7))
	for g := 0; g < 8; g++ {
		for i := 0; i < 400; i++ {
			cur.Insert(fmt.Sprintf("g%02d-%04d", g, rng.Intn(300)), uint64(i))
		}
		if g%2 == 1 {
			for i := 0; i < 100; i++ {
				cur.DeleteKey(fmt.Sprintf("g%02d-%04d", g-1, i))
			}
		}
		trees = append(trees, cur)
		states = append(states, snapshot(cur))
		cur = cur.Clone()
	}
	for i, tr := range trees {
		sameContents(t, tr, states[i])
	}
}

// TestCloneConcurrentReads: a frozen tree serves concurrent readers while
// its clone is being mutated (run under -race to be meaningful).
func TestCloneConcurrentReads(t *testing.T) {
	tr := New()
	for i := 0; i < 5000; i++ {
		tr.Insert(fmt.Sprintf("k%05d", i), uint64(i))
	}
	cl := tr.Clone()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 200; n++ {
				k := fmt.Sprintf("k%05d", rng.Intn(5000))
				if got := tr.Get(k); len(got) != 1 {
					t.Errorf("Get(%s) = %v", k, got)
					return
				}
				count := 0
				tr.Range("k00100", "k00199", func(string, []uint64) bool {
					count++
					return true
				})
				if count != 100 {
					t.Errorf("range count = %d", count)
					return
				}
			}
		}(int64(r))
	}
	for i := 0; i < 5000; i++ {
		cl.Delete(fmt.Sprintf("k%05d", i), uint64(i))
		cl.Insert(fmt.Sprintf("n%05d", i), uint64(i))
	}
	wg.Wait()
}
