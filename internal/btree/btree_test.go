package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	tr := New()
	tr.Insert("b", 2)
	tr.Insert("a", 1)
	tr.Insert("c", 3)
	tr.Insert("a", 10)
	if got := tr.Get("a"); len(got) != 2 || got[0] != 1 || got[1] != 10 {
		t.Fatalf("Get(a) = %v", got)
	}
	if got := tr.Get("zz"); got != nil {
		t.Fatalf("Get(zz) = %v", got)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSplitsAndOrder(t *testing.T) {
	tr := New()
	n := 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Insert(fmt.Sprintf("key-%06d", i), uint64(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	// Ascend yields sorted keys.
	last := ""
	count := 0
	tr.Ascend(func(k string, vals []uint64) bool {
		if k <= last {
			t.Fatalf("out of order: %q after %q", k, last)
		}
		last = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("ascended %d keys", count)
	}
	// Point lookups.
	for i := 0; i < n; i += 997 {
		k := fmt.Sprintf("key-%06d", i)
		got := tr.Get(k)
		if len(got) != 1 || got[0] != uint64(i) {
			t.Fatalf("Get(%s) = %v", k, got)
		}
	}
}

func TestRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("%03d", i), uint64(i))
	}
	var got []string
	tr.Range("010", "015", func(k string, _ []uint64) bool {
		got = append(got, k)
		return true
	})
	want := []string{"010", "011", "012", "013", "014", "015"}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v", got)
		}
	}
	// Early stop.
	n := 0
	tr.Range("000", "099", func(string, []uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestPrefix(t *testing.T) {
	tr := New()
	for _, k := range []string{"app", "apple", "apply", "banana", "ape"} {
		tr.Insert(k, 1)
	}
	var got []string
	tr.Prefix("app", func(k string, _ []uint64) bool {
		got = append(got, k)
		return true
	})
	want := []string{"app", "apple", "apply"}
	if len(got) != 3 {
		t.Fatalf("prefix = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix = %v", got)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Insert("k", 1)
	tr.Insert("k", 2)
	tr.Insert("j", 9)
	if !tr.Delete("k", 1) {
		t.Fatal("delete existing failed")
	}
	if got := tr.Get("k"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after delete: %v", got)
	}
	if tr.Delete("k", 42) {
		t.Fatal("delete of absent value should fail")
	}
	if tr.Delete("nope", 1) {
		t.Fatal("delete of absent key should fail")
	}
	if !tr.Delete("k", 2) {
		t.Fatal("delete last value failed")
	}
	if tr.Get("k") != nil || tr.Len() != 1 {
		t.Fatalf("key should be gone; len=%d", tr.Len())
	}
	if !tr.DeleteKey("j") || tr.DeleteKey("j") {
		t.Fatal("DeleteKey behaviour wrong")
	}
}

func TestDeleteAcrossSplits(t *testing.T) {
	tr := New()
	n := 5000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("%06d", i), uint64(i))
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(fmt.Sprintf("%06d", i), uint64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		got := tr.Get(fmt.Sprintf("%06d", i))
		if i%2 == 0 && got != nil {
			t.Fatalf("deleted %d still present", i)
		}
		if i%2 == 1 && (len(got) != 1 || got[0] != uint64(i)) {
			t.Fatalf("kept %d missing", i)
		}
	}
}

// TestQuickAgainstMapModel drives the tree and a map side by side through a
// random workload and checks that lookups, deletes and ordered iteration
// agree.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		model := map[string][]uint64{}
		for op := 0; op < 800; op++ {
			k := fmt.Sprintf("k%03d", rng.Intn(200))
			switch rng.Intn(3) {
			case 0, 1:
				v := uint64(rng.Intn(1000))
				tr.Insert(k, v)
				model[k] = append(model[k], v)
			case 2:
				if vs := model[k]; len(vs) > 0 {
					idx := rng.Intn(len(vs))
					v := vs[idx]
					if !tr.Delete(k, v) {
						return false
					}
					model[k] = append(vs[:idx], vs[idx+1:]...)
					if len(model[k]) == 0 {
						delete(model, k)
					}
				} else if tr.Delete(k, 0) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		// Every model key agrees (multiset compare).
		for k, want := range model {
			got := append([]uint64(nil), tr.Get(k)...)
			if len(got) != len(want) {
				return false
			}
			w := append([]uint64(nil), want...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
			for i := range w {
				if got[i] != w[i] {
					return false
				}
			}
		}
		// Ascend visits exactly the model keys in order.
		var keys []string
		tr.Ascend(func(k string, _ []uint64) bool {
			keys = append(keys, k)
			return true
		})
		if len(keys) != len(model) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
