package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestHistogramQuantilesConcurrent drives one histogram from several
// goroutines with a known uniform distribution and checks that the quantile
// estimates land inside the power-of-two bucket holding the true quantile —
// the histogram's stated resolution guarantee — and that no observation is
// lost (the -race build of this test is the concurrency contract).
func TestHistogramQuantilesConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 2000 // values 1..workers*perW, uniform
	)
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perW; i++ {
				h.Observe(int64(w*perW + i))
			}
		}(w)
	}
	wg.Wait()

	n := int64(workers * perW)
	if got := h.Count(); got != uint64(n) {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	if want := n * (n + 1) / 2; h.Sum() != want {
		t.Fatalf("Sum = %d, want %d", h.Sum(), want)
	}
	if h.Max() != n {
		t.Fatalf("Max = %d, want %d", h.Max(), n)
	}
	for _, tc := range []struct{ q, exact float64 }{
		{0.50, float64(n) * 0.50},
		{0.95, float64(n) * 0.95},
		{0.99, float64(n) * 0.99},
	} {
		got := h.Quantile(tc.q)
		lo, hi := bucketBounds(bucketOf(int64(tc.exact)))
		if got < float64(lo) || got > float64(hi) {
			t.Errorf("Quantile(%.2f) = %.0f, want within bucket [%d, %d] of exact %.0f",
				tc.q, got, lo, hi, tc.exact)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %v, want 0", q)
	}
	h.Observe(0)
	h.Observe(-5) // clamps to 0
	if h.Count() != 2 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("zero observations: count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if q := h.Quantile(1); q != 0 {
		t.Errorf("Quantile(1) of zeros = %v, want 0", q)
	}
	h.Observe(1 << 40)
	if got := h.Quantile(1); got < float64(int64(1)<<39) {
		t.Errorf("Quantile(1) = %v, want >= 2^39", got)
	}
}

// TestSlowLogEvictionOrder fills a ring past capacity and checks that the
// oldest entries are evicted first and Entries returns newest-first with
// monotonic sequence numbers.
func TestSlowLogEvictionOrder(t *testing.T) {
	l := NewSlowLog(4)
	for i := 1; i <= 7; i++ {
		l.Add(SlowQuery{Query: fmt.Sprintf("q%d", i)})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	got := l.Entries()
	want := []string{"q7", "q6", "q5", "q4"} // q1..q3 evicted, newest first
	if len(got) != len(want) {
		t.Fatalf("Entries = %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Query != want[i] {
			t.Errorf("Entries[%d] = %q, want %q", i, e.Query, want[i])
		}
		if wantSeq := uint64(7 - i); e.Seq != wantSeq {
			t.Errorf("Entries[%d].Seq = %d, want %d", i, e.Seq, wantSeq)
		}
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	l := NewSlowLog(8)
	l.Add(SlowQuery{Query: "a"})
	l.Add(SlowQuery{Query: "b"})
	got := l.Entries()
	if len(got) != 2 || got[0].Query != "b" || got[1].Query != "a" {
		t.Fatalf("Entries = %+v, want [b a]", got)
	}
}

func TestRegistryNamingAndDuplicates(t *testing.T) {
	r := NewRegistry()
	r.Counter("sub_events_total")
	for _, bad := range []string{"NoCase", "single", "sub__x", "_sub_x", "sub_x_"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q) did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("duplicate registration did not panic")
			}
		}()
		r.Gauge("sub_events_total")
	}()
}

func TestSnapshotJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_events_total").Add(3)
	r.Gauge("a_depth_current").Set(-2)
	h := r.Histogram("a_wait_nanos")
	h.Observe(100)
	h.Observe(200)

	s := r.Snapshot()
	if s.Counters["a_events_total"] != 3 {
		t.Errorf("counter in snapshot = %d, want 3", s.Counters["a_events_total"])
	}
	if s.Gauges["a_depth_current"] != -2 {
		t.Errorf("gauge in snapshot = %d, want -2", s.Gauges["a_depth_current"])
	}
	if st := s.Histograms["a_wait_nanos"]; st.Count != 2 || st.Sum != 300 || st.Max != 200 {
		t.Errorf("histogram stat = %+v", st)
	}

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(b), `"a_events_total":3`) {
		t.Errorf("JSON missing counter: %s", b)
	}

	var txt strings.Builder
	if err := s.WriteText(&txt); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{
		"counter a_events_total 3\n",
		"gauge a_depth_current -2\n",
		"histogram a_wait_nanos count=2 sum=300 max=200",
	} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, txt.String())
		}
	}
}

// TestSpanTree exercises parent/child structure, attributes, concurrent
// child creation (the Exchange-worker pattern), and the JSON export shape.
func TestSpanTree(t *testing.T) {
	root := NewSpan("query")
	root.SetAttr("src", "doc()")
	exec := root.Child("execute")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := exec.Child(fmt.Sprintf("worker-%d", w))
			c.SetAttr("rows", w*10)
			c.End()
		}(w)
	}
	wg.Wait()
	exec.End()
	root.End()

	if got := len(exec.Children()); got != 4 {
		t.Fatalf("execute children = %d, want 4", got)
	}
	if root.Find("worker-2") == nil {
		t.Errorf("Find(worker-2) = nil")
	}
	if root.DurNanos() < 0 {
		t.Errorf("root duration negative")
	}

	b, err := root.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded struct {
		Name     string `json:"name"`
		DurNs    int64  `json:"dur_ns"`
		Children []struct {
			Name     string `json:"name"`
			Children []struct {
				Name  string `json:"name"`
				Attrs []Attr `json:"attrs"`
			} `json:"children"`
		} `json:"children"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Name != "query" || len(decoded.Children) != 1 || len(decoded.Children[0].Children) != 4 {
		t.Fatalf("unexpected tree shape: %s", b)
	}
}

func TestSpanSetDurNanos(t *testing.T) {
	s := NewSpan("op")
	s.SetDurNanos(12345)
	s.End() // must not overwrite
	if s.DurNanos() != 12345 {
		t.Errorf("DurNanos = %d, want 12345", s.DurNanos())
	}
}

func TestStopwatch(t *testing.T) {
	sw := Start()
	if e := sw.ElapsedNanos(); e < 0 {
		t.Errorf("elapsed negative: %d", e)
	}
}
