package obs

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Span is one node of a per-query trace tree: a named begin/end interval
// with ordered attributes and child spans. Spans are cheap (no global
// registration, no sampling machinery) and safe for concurrent use — an
// Exchange worker may open children of the execute span while its siblings
// do the same.
//
// The tree exports as JSON via MarshalJSON / (*Span).JSON; durations are
// monotonic nanoseconds. Synthetic spans (per-operator attribution built
// after a run from engine statistics) override their measured duration with
// SetDurNanos.
type Span struct {
	mu       sync.Mutex
	name     string
	start    int64 // Nanos() at creation
	dur      int64 // -1 while open
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: Nanos(), dur: -1}
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Child starts a child span. Safe to call from several goroutines on the
// same parent; sibling order is the order of Child calls.
func (s *Span) Child(name string) *Span {
	c := NewSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span; the value is rendered with fmt.Sprint.
func (s *Span) SetAttr(key string, value any) {
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
	s.mu.Unlock()
}

// End closes the span, fixing its duration; a second End is a no-op, and a
// duration installed by SetDurNanos is preserved.
func (s *Span) End() {
	now := Nanos()
	s.mu.Lock()
	if s.dur < 0 {
		s.dur = now - s.start
	}
	s.mu.Unlock()
}

// SetDurNanos overrides the measured duration (for synthesized spans whose
// timing was accumulated elsewhere); it also closes the span.
func (s *Span) SetDurNanos(n int64) {
	s.mu.Lock()
	s.dur = n
	s.mu.Unlock()
}

// DurNanos returns the span's duration, or the time since start while open.
func (s *Span) DurNanos() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur < 0 {
		return Nanos() - s.start
	}
	return s.dur
}

// Children returns the current child spans (shared, do not mutate).
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.children
}

// Attrs returns the span's attributes (shared, do not mutate).
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs
}

// Find returns the first span named name in a pre-order walk of the tree
// rooted at s (including s), or nil.
func (s *Span) Find(name string) *Span {
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// spanJSON is the wire shape of one span.
type spanJSON struct {
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_ns"`
	DurNs    int64   `json:"dur_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// MarshalJSON renders the span tree. Open spans report their duration so
// far.
func (s *Span) MarshalJSON() ([]byte, error) {
	s.mu.Lock()
	j := spanJSON{
		Name:     s.name,
		StartNs:  s.start,
		DurNs:    s.dur,
		Attrs:    s.attrs,
		Children: s.children,
	}
	if j.DurNs < 0 {
		j.DurNs = Nanos() - s.start
	}
	s.mu.Unlock()
	return json.Marshal(j)
}

// JSON renders the span tree as indented JSON.
func (s *Span) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
