package obs

import (
	"fmt"
	"io"
)

// HistStat is the exported view of one histogram: totals plus the p50/p95/p99
// latency points Section 7-style reporting wants.
type HistStat struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of a registry, JSON-encodable as-is (the
// shape mctbench folds into its BENCH line and /debug/metrics serves).
type Snapshot struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms"`
}

// statOf summarizes one histogram.
func statOf(h *Histogram) HistStat {
	return HistStat{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Snapshot copies every instrument's current state. Writers are not stopped;
// each instrument is read atomically, so the snapshot is consistent per
// instrument and approximately consistent across them.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistStat, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = statOf(h)
	}
	return s
}

// WriteText renders the snapshot as sorted "kind name value" lines, the
// plain-text format of /debug/metrics?format=text.
func (s *Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%d max=%d p50=%.0f p95=%.0f p99=%.0f\n",
			name, h.Count, h.Sum, h.Max, h.P50, h.P95, h.P99); err != nil {
			return err
		}
	}
	return nil
}
