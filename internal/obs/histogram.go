package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: power-of-two buckets cover the full
// non-negative int64 range (bucket 0 holds zero, bucket b holds
// [2^(b-1), 2^b - 1]), so nanosecond timings from 1ns to ~292 years land
// without configuration and the histogram's footprint is bounded by
// construction.
const histBuckets = 64

// Histogram is a bounded, lock-free histogram over non-negative int64
// observations (typically nanoseconds or byte sizes). Observation is two
// atomic adds; quantiles are estimated from the bucket counts with linear
// interpolation inside the hit bucket, so the relative error is bounded by
// the bucket width (a factor of two). The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps an observation to its bucket index: 0 for <=0, else
// 1 + floor(log2(v)) capped to the last bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// bucketBounds returns the inclusive value range covered by bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	lo = int64(1) << (b - 1)
	hi = lo<<1 - 1
	if hi < lo { // last bucket overflow
		hi = int64(^uint64(0) >> 1)
	}
	return lo, hi
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded values:
// the bucket holding the target rank is located and the value interpolated
// linearly within its bounds. Returns 0 for an empty histogram. Concurrent
// observers may race individual bucket loads; the estimate stays within the
// resolution guarantee for the observations it sees.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for b, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			lo, hi := bucketBounds(b)
			frac := (target - cum) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum = next
	}
	_, hi := bucketBounds(histBuckets - 1)
	return float64(hi)
}
