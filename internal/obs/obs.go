// Package obs is the stdlib-only observability substrate of the MCT system:
// a process-wide registry of atomic instruments (counters, gauges, bounded
// histograms with quantile estimation), lightweight trace spans forming
// per-query trees, a slow-query ring buffer, and a monotonic clock facade.
//
// Design rules, enforced by the mctlint obsregister analyzer:
//
//   - instruments are registered exactly once, at package init time (a
//     package-level var block or an init function), never from request
//     paths — registration takes a lock, recording never does;
//   - instrument names are snake_case with a subsystem prefix
//     ("wal_fsyncs_total", "engine_exec_nanos"), so a registry snapshot
//     groups naturally by layer.
//
// Recording is wait-free: counters and gauges are single atomic adds,
// histogram observation is two atomic adds into a fixed bucket array.
// Subsystems therefore keep their instruments always on; the cost is a few
// nanoseconds per event, and snapshots (Registry.Snapshot) are consistent
// enough for monitoring without stopping writers.
//
// The determinism-critical packages (internal/wal, internal/storage,
// internal/pagestore, internal/crashtest) must not read the wall clock
// directly; they time their work through Start/Nanos here, which the
// determinism analyzer exempts outside crashtest and WAL-encode paths
// (timing feeds metrics only, never encoded bytes).
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// epoch anchors the package's monotonic clock; all Nanos readings are
// relative to process start, so spans and stopwatches subtract cleanly.
var epoch = time.Now()

// Nanos returns the monotonic clock reading in nanoseconds since process
// start. It is the sanctioned time source for determinism-critical packages:
// the value feeds instruments and spans, never encoded state.
func Nanos() int64 { return int64(time.Since(epoch)) }

// Stopwatch measures one duration: Start it, then ElapsedNanos.
type Stopwatch struct{ start int64 }

// Start begins a stopwatch at the current monotonic reading.
func Start() Stopwatch { return Stopwatch{start: Nanos()} }

// ElapsedNanos returns nanoseconds since Start.
func (s Stopwatch) ElapsedNanos() int64 { return Nanos() - s.start }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use (unregistered, for local accumulation); registered counters
// come from Registry.Counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (set or adjusted, may decrease).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// nameRe is the instrument naming rule: snake_case with at least two
// segments, the first being the owning subsystem ("wal_fsyncs_total").
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// Registry holds named instruments. Registration (Counter, Gauge,
// Histogram) locks and is meant for init time; Snapshot locks only the
// name tables, reading instrument state atomically.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry every subsystem registers into and
// the /debug/metrics endpoint and mctbench snapshots read from.
var Default = NewRegistry()

// checkName panics on a malformed or duplicate instrument name; both are
// programming errors at init time, caught by the first test that imports
// the offending package.
func (r *Registry) checkName(name string) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: instrument name %q is not subsystem_name snake_case", name))
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: instrument %q registered twice", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: instrument %q registered twice", name))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("obs: instrument %q registered twice", name))
	}
}

// Counter registers and returns a new named counter. Panics on a malformed
// or duplicate name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers and returns a new named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram registers and returns a new named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	h := &Histogram{}
	r.histograms[name] = h
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// sortedKeys returns the sorted key set of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
