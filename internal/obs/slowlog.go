package obs

import "sync"

// SlowQuery is one slow-query log entry: the query text, how long it took,
// and — for compiled queries — the physical plan annotated with per-operator
// execution statistics (rows, materialization, join and content-read
// counts), captured by re-analyzing the query against the same immutable
// snapshot it ran on.
type SlowQuery struct {
	// Seq is the entry's position in the log's lifetime (monotonic from 1),
	// so consumers can tell how many offenders scrolled out of the ring.
	Seq    uint64  `json:"seq"`
	Query  string  `json:"query"`
	Millis float64 `json:"millis"`
	Rows   int     `json:"rows"`
	// Fallback marks queries served by the reference evaluator (no compiled
	// plan exists to capture).
	Fallback bool   `json:"fallback,omitempty"`
	Err      string `json:"error,omitempty"`
	// Plan is the compiled physical plan annotated with per-operator
	// metrics, empty for fallback or failed queries.
	Plan string `json:"plan,omitempty"`
	// UnixNanos is the wall-clock time the entry was recorded.
	UnixNanos int64 `json:"unix_nanos"`
}

// SlowLog is a fixed-capacity ring buffer of slow-query entries: the newest
// capacity offenders are retained, the oldest evicted first. Safe for
// concurrent use.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries []SlowQuery // ring storage, entries[next] is the oldest once full
	next    int
}

// NewSlowLog creates a ring retaining the last capacity entries (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{cap: capacity}
}

// Add records one entry, stamping its Seq and evicting the oldest entry if
// the ring is full.
func (l *SlowLog) Add(e SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		l.next = len(l.entries) % l.cap
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// Entries returns a copy of the retained entries, newest first.
func (l *SlowLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.entries))
	// Walk backwards from the newest (the slot before next, wrapping).
	for i := 0; i < len(l.entries); i++ {
		idx := (l.next - 1 - i + 2*l.cap) % l.cap
		if idx >= len(l.entries) {
			continue
		}
		out = append(out, l.entries[idx])
	}
	return out
}

// Len returns the number of retained entries.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
