// Package datagen generates the experiment datasets of the paper's Section
// 7. The paper used ToXgene to generate TPC-W data in a multi-colored schema
// of its own design, plus equivalent shallow and deep tree schemas, and a
// scaled-up SIGMOD-Record dataset treated the same way. This package is the
// ToXgene substitute: deterministic generators that produce the same entity
// pool in all three representations, at a configurable scale:
//
//	MCT      one multi-colored database (TPC-W: the paper's five single-
//	         colored hierarchies; SIGMOD-Record: two).
//	Shallow  a single-colored database in XNF: entities as flat top-level
//	         collections related by id/idref attributes.
//	Deep     a single-colored database with one big hierarchy and the
//	         attendant replication of shared entities (addresses, countries,
//	         items, authors / editors, topics), which is exactly what causes
//	         the deep representation's duplicate problems.
package datagen

import (
	"fmt"
	"math/rand"

	"colorfulxml/internal/core"
)

// Colors of the TPC-W MCT schema (paper Section 7): five hierarchies.
const (
	ColCustomer = core.Color("customer")
	ColBilling  = core.Color("billing")
	ColShipping = core.Color("shipping")
	ColDate     = core.Color("date")
	ColAuthor   = core.Color("author")
)

// Colors of the SIGMOD-Record MCT schema: two hierarchies.
const (
	ColIssueDate = core.Color("date")
	ColTopic     = core.Color("topic")
)

// Shallow and deep variants are single-colored.
const ColDoc = core.Color("doc")

// Dataset bundles the three representations of one generated entity pool.
type Dataset struct {
	MCT     *core.Database
	Shallow *core.Database
	Deep    *core.Database
	// Entities retains the generated pool for ground-truth checks in tests.
	Entities *TPCWEntities
	Sigmod   *SigmodEntities
}

// --- TPC-W entity pool -----------------------------------------------------

// Country is a shipping country.
type Country struct {
	ID   int
	Name string
}

// Address is a postal address; a customer's billing address and an order's
// shipping address both draw from this pool.
type Address struct {
	ID      int
	Street  string
	City    string
	Zip     string
	Country int // Country.ID
}

// Customer is a registered shopper.
type Customer struct {
	ID       int
	Uname    string
	Name     string
	Email    string
	Discount int // percent
	Billing  int // Address.ID
}

// Author writes items.
type Author struct {
	ID   int
	Name string
	Bio  string
}

// Item is a catalogue entry (a book).
type Item struct {
	ID      int
	Title   string
	Subject string
	Cost    int // cents
	Author  int // Author.ID
}

// Order is a purchase.
type Order struct {
	ID       int
	Customer int // Customer.ID
	Billing  int // Address.ID
	Shipping int // Address.ID
	Date     int // OrderDate.ID
	Status   string
	Total    int // cents
}

// OrderLine is one item position of an order.
type OrderLine struct {
	ID       int
	Order    int // Order.ID
	Item     int // Item.ID
	Qty      int
	Discount int
}

// OrderDate is one calendar day carrying orders.
type OrderDate struct {
	ID    int
	Year  int
	Month int
	Day   int
}

// TPCWEntities is the full generated pool.
type TPCWEntities struct {
	Countries  []Country
	Addresses  []Address
	Customers  []Customer
	Authors    []Author
	Items      []Item
	Orders     []Order
	OrderLines []OrderLine
	Dates      []OrderDate
}

// TPCWConfig controls generation.
type TPCWConfig struct {
	// Scale multiplies entity cardinalities; Scale 1 yields roughly 15k
	// elements per representation (the paper's full dataset corresponds to
	// roughly Scale 100).
	Scale int
	Seed  int64
}

var subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
	"HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
	"NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
	"ROMANCE", "SCIENCE", "SELF-HELP", "SPORTS", "TRAVEL", "YOUTH",
}

var statuses = []string{"PENDING", "PROCESSING", "SHIPPED", "DENIED"}

var countryNames = []string{
	"United States", "United Kingdom", "Canada", "Germany", "France",
	"Japan", "Netherlands", "Switzerland", "Australia", "Italy", "Spain",
	"Brazil", "India", "China", "South Africa", "Mexico", "Ireland",
	"Sweden", "Norway", "Denmark",
}

// GenTPCWEntities generates the entity pool.
func GenTPCWEntities(cfg TPCWConfig) *TPCWEntities {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &TPCWEntities{}

	for i, n := range countryNames {
		e.Countries = append(e.Countries, Country{ID: i + 1, Name: n})
	}

	nCust := 200 * cfg.Scale
	nAddr := 2 * nCust
	nAuth := 40 * cfg.Scale
	nItem := 100 * cfg.Scale

	for i := 1; i <= nAddr; i++ {
		e.Addresses = append(e.Addresses, Address{
			ID:      i,
			Street:  fmt.Sprintf("%d %s St", 1+rng.Intn(999), wordAt(rng, streetWords)),
			City:    wordAt(rng, cityWords),
			Zip:     fmt.Sprintf("%05d", rng.Intn(100000)),
			Country: 1 + rng.Intn(len(e.Countries)),
		})
	}
	for i := 1; i <= nCust; i++ {
		e.Customers = append(e.Customers, Customer{
			ID:       i,
			Uname:    fmt.Sprintf("user%06d", i),
			Name:     fmt.Sprintf("%s %s", wordAt(rng, firstNames), wordAt(rng, lastNames)),
			Email:    fmt.Sprintf("user%06d@example.com", i),
			Discount: rng.Intn(30),
			Billing:  1 + rng.Intn(nAddr),
		})
	}
	for i := 1; i <= nAuth; i++ {
		e.Authors = append(e.Authors, Author{
			ID:   i,
			Name: fmt.Sprintf("%s %s", wordAt(rng, firstNames), wordAt(rng, lastNames)),
			Bio:  fmt.Sprintf("Author of %d acclaimed works.", 1+rng.Intn(20)),
		})
	}
	for i := 1; i <= nItem; i++ {
		e.Items = append(e.Items, Item{
			ID:      i,
			Title:   fmt.Sprintf("The %s %s", wordAt(rng, titleAdjs), wordAt(rng, titleNouns)),
			Subject: subjects[rng.Intn(len(subjects))],
			Cost:    500 + rng.Intn(9500),
			Author:  1 + rng.Intn(nAuth),
		})
	}
	// Dates: two years of days, sparse.
	dateID := 0
	for y := 2003; y <= 2004; y++ {
		for m := 1; m <= 12; m++ {
			for d := 1; d <= 28; d += 3 {
				dateID++
				e.Dates = append(e.Dates, OrderDate{ID: dateID, Year: y, Month: m, Day: d})
			}
		}
	}
	// Orders: ~2.5 per customer; order lines: 1-5 per order.
	oid, olid := 0, 0
	for _, c := range e.Customers {
		n := 1 + rng.Intn(4)
		for k := 0; k < n; k++ {
			oid++
			// The first nAddr orders ship round-robin so that every address
			// is used by some order (the MCT representation only contains
			// addresses that participate in a hierarchy).
			shipping := 1 + rng.Intn(nAddr)
			if oid <= nAddr {
				shipping = oid
			}
			o := Order{
				ID:       oid,
				Customer: c.ID,
				Billing:  c.Billing,
				Shipping: shipping,
				Date:     1 + rng.Intn(len(e.Dates)),
				Status:   statuses[rng.Intn(len(statuses))],
			}
			lines := 1 + rng.Intn(5)
			for l := 0; l < lines; l++ {
				olid++
				item := &e.Items[rng.Intn(nItem)]
				qty := 1 + rng.Intn(9)
				e.OrderLines = append(e.OrderLines, OrderLine{
					ID: olid, Order: oid, Item: item.ID, Qty: qty,
					Discount: rng.Intn(10),
				})
				o.Total += item.Cost * qty
			}
			e.Orders = append(e.Orders, o)
		}
	}
	return e
}

func wordAt(rng *rand.Rand, words []string) string { return words[rng.Intn(len(words))] }

var streetWords = []string{"Oak", "Maple", "Cedar", "Elm", "Pine", "Birch", "Walnut", "Chestnut"}
var cityWords = []string{"Springfield", "Riverton", "Lakewood", "Fairview", "Georgetown", "Arlington", "Ashland", "Dover"}
var firstNames = []string{"Alice", "Robert", "Carol", "David", "Erin", "Frank", "Grace", "Henry", "Irene", "Jack", "Karen", "Louis", "Maria", "Nathan", "Olivia", "Peter"}
var lastNames = []string{"Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis", "Wilson", "Moore", "Taylor", "Anderson", "Thomas", "Jackson", "White", "Harris", "Martin"}
var titleAdjs = []string{"Silent", "Hidden", "Last", "First", "Golden", "Broken", "Secret", "Lost", "Final", "Distant", "Burning", "Frozen"}
var titleNouns = []string{"Garden", "River", "Mountain", "City", "Voyage", "Letter", "Promise", "Shadow", "Harbor", "Bridge", "Forest", "Island"}
