package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"colorfulxml/internal/core"
)

// SIGMOD-Record entities. The paper scaled the original 600 KB document by
// 100; this generator produces an equivalent bibliography shape at a
// configurable scale.

// Issue is one SIGMOD Record issue.
type Issue struct {
	ID     int
	Volume int
	Number int
	Year   int
	Month  int
}

// Editor edits topics.
type Editor struct {
	ID   int
	Name string
}

// Topic is a subject area maintained by an editor.
type Topic struct {
	ID     int
	Name   string
	Editor int // Editor.ID
}

// SArticle is one article, appearing both in an issue (date hierarchy) and
// under a topic (editor hierarchy).
type SArticle struct {
	ID       int
	Title    string
	InitPage int
	EndPage  int
	Issue    int // Issue.ID
	Topic    int // Topic.ID
	Authors  []string
}

// SigmodEntities is the generated pool.
type SigmodEntities struct {
	Issues   []Issue
	Editors  []Editor
	Topics   []Topic
	Articles []SArticle
}

// SigmodConfig controls generation.
type SigmodConfig struct {
	Scale int
	Seed  int64
}

var topicNames = []string{
	"Query Processing", "Data Mining", "Transaction Management", "Indexing",
	"Distributed Systems", "Information Retrieval", "Data Models",
	"Storage Systems", "Benchmarking", "Stream Processing", "XML",
	"Optimization", "Concurrency", "Recovery", "Privacy", "Visualization",
}

// GenSigmodEntities generates the pool.
func GenSigmodEntities(cfg SigmodConfig) *SigmodEntities {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	e := &SigmodEntities{}
	nEditors := 12
	for i := 1; i <= nEditors; i++ {
		e.Editors = append(e.Editors, Editor{
			ID:   i,
			Name: fmt.Sprintf("%s %s", wordAt(rng, firstNames), wordAt(rng, lastNames)),
		})
	}
	for i, tn := range topicNames {
		e.Topics = append(e.Topics, Topic{ID: i + 1, Name: tn, Editor: 1 + rng.Intn(nEditors)})
	}
	nIssues := 40 * cfg.Scale
	aid := 0
	for i := 1; i <= nIssues; i++ {
		year := 1975 + (i-1)/4
		iss := Issue{ID: i, Volume: (i-1)/4 + 1, Number: (i-1)%4 + 1, Year: year, Month: ((i - 1) % 4) * 3}
		e.Issues = append(e.Issues, iss)
		n := 8 + rng.Intn(8)
		page := 1
		for k := 0; k < n; k++ {
			aid++
			na := 1 + rng.Intn(3)
			var authors []string
			for a := 0; a < na; a++ {
				authors = append(authors,
					fmt.Sprintf("%s %s", wordAt(rng, firstNames), wordAt(rng, lastNames)))
			}
			length := 3 + rng.Intn(20)
			e.Articles = append(e.Articles, SArticle{
				ID:       aid,
				Title:    fmt.Sprintf("On the %s of %s", wordAt(rng, titleAdjs), wordAt(rng, topicNames)),
				InitPage: page,
				EndPage:  page + length,
				Issue:    i,
				Topic:    1 + rng.Intn(len(e.Topics)),
				Authors:  authors,
			})
			page += length + 1
		}
	}
	return e
}

// Sigmod generates the pool and all three representations.
func Sigmod(cfg SigmodConfig) (*Dataset, error) {
	e := GenSigmodEntities(cfg)
	mct, err := BuildSigmodMCT(e)
	if err != nil {
		return nil, fmt.Errorf("datagen: sigmod mct: %w", err)
	}
	shallow, err := BuildSigmodShallow(e)
	if err != nil {
		return nil, fmt.Errorf("datagen: sigmod shallow: %w", err)
	}
	deep, err := BuildSigmodDeep(e)
	if err != nil {
		return nil, fmt.Errorf("datagen: sigmod deep: %w", err)
	}
	return &Dataset{MCT: mct, Shallow: shallow, Deep: deep, Sigmod: e}, nil
}

// articleFields emits the shared article fields and returns them for color
// adoption.
func articleFields(b *builder, n *core.Node, a SArticle, c core.Color) []*core.Node {
	out := []*core.Node{
		b.field(n, "title", c, a.Title),
		b.field(n, "initPage", c, strconv.Itoa(a.InitPage)),
		b.field(n, "endPage", c, strconv.Itoa(a.EndPage)),
	}
	for _, au := range a.Authors {
		out = append(out, b.field(n, "authorName", c, au))
	}
	return out
}

// BuildSigmodMCT materializes the two-hierarchy MCT representation:
//
//	date--issue--articles   (color "date")
//	editor--topic--articles (color "topic")
func BuildSigmodMCT(e *SigmodEntities) (*core.Database, error) {
	db := core.NewDatabase(ColIssueDate, ColTopic)
	b := &builder{db: db}
	doc := db.Document()

	dateRoot := b.el(doc, "sigmodRecord", ColIssueDate)
	yearNode := map[int]*core.Node{}
	articleNode := map[int]*core.Node{}
	issueNode := map[int]*core.Node{}
	for _, iss := range e.Issues {
		y, ok := yearNode[iss.Year]
		if !ok {
			y = b.el(dateRoot, "year", ColIssueDate)
			b.field(y, "value", ColIssueDate, strconv.Itoa(iss.Year))
			yearNode[iss.Year] = y
		}
		n := b.el(y, "issue", ColIssueDate)
		b.attr(n, "id", fmt.Sprintf("S%d", iss.ID))
		b.field(n, "volume", ColIssueDate, strconv.Itoa(iss.Volume))
		b.field(n, "number", ColIssueDate, strconv.Itoa(iss.Number))
		issueNode[iss.ID] = n
	}
	for _, a := range e.Articles {
		n := b.el(issueNode[a.Issue], "article", ColIssueDate)
		b.attr(n, "id", fmt.Sprintf("P%d", a.ID))
		fields := articleFields(b, n, a, ColIssueDate)
		articleNode[a.ID] = n
		_ = fields
	}

	editorRoot := b.el(doc, "editors", ColTopic)
	editorNode := map[int]*core.Node{}
	topicNode := map[int]*core.Node{}
	for _, ed := range e.Editors {
		n := b.el(editorRoot, "editor", ColTopic)
		b.attr(n, "id", fmt.Sprintf("E%d", ed.ID))
		b.field(n, "name", ColTopic, ed.Name)
		editorNode[ed.ID] = n
	}
	for _, tp := range e.Topics {
		n := b.el(editorNode[tp.Editor], "topic", ColTopic)
		b.attr(n, "id", fmt.Sprintf("T%d", tp.ID))
		b.field(n, "name", ColTopic, tp.Name)
		topicNode[tp.ID] = n
	}
	for _, a := range e.Articles {
		n := articleNode[a.ID]
		b.adopt(topicNode[a.Topic], n, ColTopic)
		// Article fields carry both colors (the paper's convention).
		for _, c := range []core.Color{ColTopic} {
			for _, f := range core.Children(n, ColIssueDate) {
				if f.Kind() == core.KindElement && !f.HasColor(c) {
					b.adopt(n, f, c)
				}
			}
		}
	}

	if b.err != nil {
		return nil, b.err
	}
	return db, nil
}

// BuildSigmodShallow materializes the paper's shallow variant with its three
// sections: articles (flat, with idrefs), date--issue, and editor--topic.
func BuildSigmodShallow(e *SigmodEntities) (*core.Database, error) {
	db := core.NewDatabase(ColDoc)
	b := &builder{db: db}
	root := b.el(db.Document(), "sigmodRecord", ColDoc)

	dates := b.el(root, "dates", ColDoc)
	yearNode := map[int]*core.Node{}
	for _, iss := range e.Issues {
		y, ok := yearNode[iss.Year]
		if !ok {
			y = b.el(dates, "year", ColDoc)
			b.field(y, "value", ColDoc, strconv.Itoa(iss.Year))
			yearNode[iss.Year] = y
		}
		n := b.el(y, "issue", ColDoc)
		b.attr(n, "id", fmt.Sprintf("S%d", iss.ID))
		b.field(n, "volume", ColDoc, strconv.Itoa(iss.Volume))
		b.field(n, "number", ColDoc, strconv.Itoa(iss.Number))
	}
	editors := b.el(root, "editors", ColDoc)
	for _, ed := range e.Editors {
		n := b.el(editors, "editor", ColDoc)
		b.attr(n, "id", fmt.Sprintf("E%d", ed.ID))
		b.field(n, "name", ColDoc, ed.Name)
		for _, tp := range e.Topics {
			if tp.Editor != ed.ID {
				continue
			}
			tn := b.el(n, "topic", ColDoc)
			b.attr(tn, "id", fmt.Sprintf("T%d", tp.ID))
			b.field(tn, "name", ColDoc, tp.Name)
		}
	}
	articles := b.el(root, "articles", ColDoc)
	for _, a := range e.Articles {
		n := b.el(articles, "article", ColDoc)
		b.attr(n, "id", fmt.Sprintf("P%d", a.ID))
		b.attr(n, "issueIdRef", fmt.Sprintf("S%d", a.Issue))
		b.attr(n, "topicIdRef", fmt.Sprintf("T%d", a.Topic))
		articleFields(b, n, a, ColDoc)
	}

	if b.err != nil {
		return nil, b.err
	}
	return db, nil
}

// BuildSigmodDeep materializes the deep variant: the natural
// date>issue>article hierarchy with the topic and its editor REPLICATED
// inside every article.
func BuildSigmodDeep(e *SigmodEntities) (*core.Database, error) {
	db := core.NewDatabase(ColDoc)
	b := &builder{db: db}
	root := b.el(db.Document(), "sigmodRecord", ColDoc)

	yearNode := map[int]*core.Node{}
	issueNode := map[int]*core.Node{}
	for _, iss := range e.Issues {
		y, ok := yearNode[iss.Year]
		if !ok {
			y = b.el(root, "year", ColDoc)
			b.field(y, "value", ColDoc, strconv.Itoa(iss.Year))
			yearNode[iss.Year] = y
		}
		n := b.el(y, "issue", ColDoc)
		b.attr(n, "id", fmt.Sprintf("S%d", iss.ID))
		b.field(n, "volume", ColDoc, strconv.Itoa(iss.Volume))
		b.field(n, "number", ColDoc, strconv.Itoa(iss.Number))
		issueNode[iss.ID] = n
	}
	for _, a := range e.Articles {
		n := b.el(issueNode[a.Issue], "article", ColDoc)
		b.attr(n, "id", fmt.Sprintf("P%d", a.ID))
		articleFields(b, n, a, ColDoc)
		tp := e.Topics[a.Topic-1]
		tn := b.el(n, "topic", ColDoc) // replicated per article
		b.field(tn, "name", ColDoc, tp.Name)
		ed := e.Editors[tp.Editor-1]
		en := b.el(tn, "editor", ColDoc) // replicated per article
		b.field(en, "name", ColDoc, ed.Name)
	}

	if b.err != nil {
		return nil, b.err
	}
	return db, nil
}
