package datagen

import (
	"fmt"
	"strconv"

	"colorfulxml/internal/core"
)

// TPCW generates the TPC-W entity pool and materializes it in all three
// representations.
func TPCW(cfg TPCWConfig) (*Dataset, error) {
	e := GenTPCWEntities(cfg)
	mct, err := BuildTPCWMCT(e)
	if err != nil {
		return nil, fmt.Errorf("datagen: mct: %w", err)
	}
	shallow, err := BuildTPCWShallow(e)
	if err != nil {
		return nil, fmt.Errorf("datagen: shallow: %w", err)
	}
	deep, err := BuildTPCWDeep(e)
	if err != nil {
		return nil, fmt.Errorf("datagen: deep: %w", err)
	}
	return &Dataset{MCT: mct, Shallow: shallow, Deep: deep, Entities: e}, nil
}

// builder wraps error-threaded construction.
type builder struct {
	db  *core.Database
	err error
}

func (b *builder) el(parent *core.Node, name string, c core.Color) *core.Node {
	if b.err != nil {
		return nil
	}
	n, err := b.db.AddElement(parent, name, c)
	if err != nil {
		b.err = err
		return nil
	}
	return n
}

func (b *builder) field(parent *core.Node, name string, c core.Color, text string) *core.Node {
	if b.err != nil {
		return nil
	}
	n, err := b.db.AddElementText(parent, name, c, text)
	if err != nil {
		b.err = err
	}
	return n
}

func (b *builder) attr(n *core.Node, name, value string) {
	if b.err != nil {
		return
	}
	if _, err := b.db.SetAttribute(n, name, value); err != nil {
		b.err = err
	}
}

// adopt applies the next-color constructor and attaches.
func (b *builder) adopt(parent, n *core.Node, c core.Color) {
	if b.err != nil {
		return
	}
	if err := b.db.Adopt(parent, n, c); err != nil {
		b.err = err
	}
}

// adoptFields gives every element-with-text child (a field) the new color
// too, mirroring the paper's "name children have all the colors of their
// parents".
func (b *builder) adoptFields(n *core.Node, fields []*core.Node, c core.Color) {
	for _, f := range fields {
		b.adopt(n, f, c)
	}
}

// BuildTPCWMCT materializes the five-hierarchy multi-colored representation:
//
//	customer--order--orderline        (color "customer")
//	billing address--order--orderline (color "billing")
//	shipping address--order--orderline(color "shipping")
//	date--order--orderline            (color "date")
//	author--item--orderline           (color "author")
func BuildTPCWMCT(e *TPCWEntities) (*core.Database, error) {
	db := core.NewDatabase(ColCustomer, ColBilling, ColShipping, ColDate, ColAuthor)
	b := &builder{db: db}
	doc := db.Document()

	// Customer hierarchy.
	custRoot := b.el(doc, "customers", ColCustomer)
	custNode := map[int]*core.Node{}
	for _, c := range e.Customers {
		n := b.el(custRoot, "customer", ColCustomer)
		b.attr(n, "id", fmt.Sprintf("C%d", c.ID))
		b.field(n, "uname", ColCustomer, c.Uname)
		b.field(n, "name", ColCustomer, c.Name)
		b.field(n, "email", ColCustomer, c.Email)
		b.field(n, "discount", ColCustomer, strconv.Itoa(c.Discount))
		custNode[c.ID] = n
	}

	// Billing and shipping hierarchies share address nodes: an address gets
	// the billing color when some order bills to it, the shipping color when
	// some order ships to it.
	billRoot := b.el(doc, "billing-addresses", ColBilling)
	shipRoot := b.el(doc, "shipping-addresses", ColShipping)
	addrNode := map[int]*core.Node{}
	addrFields := map[int][]*core.Node{}
	addrHas := map[int]map[core.Color]bool{}
	ensureAddr := func(id int, c core.Color, root *core.Node) *core.Node {
		n, ok := addrNode[id]
		if !ok {
			a := e.Addresses[id-1]
			n = b.el(root, "address", c)
			b.attr(n, "id", fmt.Sprintf("A%d", a.ID))
			f1 := b.field(n, "street", c, a.Street)
			f2 := b.field(n, "city", c, a.City)
			f3 := b.field(n, "zip", c, a.Zip)
			f4 := b.field(n, "country", c, e.Countries[a.Country-1].Name)
			addrNode[id] = n
			addrFields[id] = []*core.Node{f1, f2, f3, f4}
			addrHas[id] = map[core.Color]bool{c: true}
			return n
		}
		if !addrHas[id][c] {
			b.adopt(root, n, c)
			b.adoptFields(n, addrFields[id], c)
			addrHas[id][c] = true
		}
		return n
	}

	// Date hierarchy: dates > year > month > day.
	dateRoot := b.el(doc, "dates", ColDate)
	yearNode := map[int]*core.Node{}
	monthNode := map[[2]int]*core.Node{}
	dayNode := map[int]*core.Node{}
	for _, d := range e.Dates {
		y, ok := yearNode[d.Year]
		if !ok {
			y = b.el(dateRoot, "year", ColDate)
			b.field(y, "value", ColDate, strconv.Itoa(d.Year))
			yearNode[d.Year] = y
		}
		mKey := [2]int{d.Year, d.Month}
		m, ok := monthNode[mKey]
		if !ok {
			m = b.el(y, "month", ColDate)
			b.field(m, "value", ColDate, strconv.Itoa(d.Month))
			monthNode[mKey] = m
		}
		day := b.el(m, "day", ColDate)
		b.attr(day, "id", fmt.Sprintf("D%d", d.ID))
		b.field(day, "value", ColDate, strconv.Itoa(d.Day))
		dayNode[d.ID] = day
	}

	// Author hierarchy: authors > author > item.
	authRoot := b.el(doc, "authors", ColAuthor)
	itemNode := map[int]*core.Node{}
	authNode := map[int]*core.Node{}
	for _, a := range e.Authors {
		n := b.el(authRoot, "author", ColAuthor)
		b.attr(n, "id", fmt.Sprintf("U%d", a.ID))
		b.field(n, "name", ColAuthor, a.Name)
		b.field(n, "bio", ColAuthor, a.Bio)
		authNode[a.ID] = n
	}
	for _, it := range e.Items {
		n := b.el(authNode[it.Author], "item", ColAuthor)
		b.attr(n, "id", fmt.Sprintf("I%d", it.ID))
		b.field(n, "title", ColAuthor, it.Title)
		b.field(n, "subject", ColAuthor, it.Subject)
		b.field(n, "cost", ColAuthor, strconv.Itoa(it.Cost))
		itemNode[it.ID] = n
	}

	// Orders: first-color customer, then adopted into billing, shipping and
	// date hierarchies; fields carry all four colors.
	orderNode := map[int]*core.Node{}
	for _, o := range e.Orders {
		n := b.el(custNode[o.Customer], "order", ColCustomer)
		b.attr(n, "id", fmt.Sprintf("O%d", o.ID))
		f1 := b.field(n, "status", ColCustomer, o.Status)
		f2 := b.field(n, "total", ColCustomer, strconv.Itoa(o.Total))
		fields := []*core.Node{f1, f2}
		b.adopt(ensureAddr(o.Billing, ColBilling, billRoot), n, ColBilling)
		b.adoptFields(n, fields, ColBilling)
		b.adopt(ensureAddr(o.Shipping, ColShipping, shipRoot), n, ColShipping)
		b.adoptFields(n, fields, ColShipping)
		b.adopt(dayNode[o.Date], n, ColDate)
		b.adoptFields(n, fields, ColDate)
		orderNode[o.ID] = n
	}

	// Order lines: first-color customer (under their order), adopted into
	// the other three order hierarchies and under their item in the author
	// hierarchy; fields carry all five colors.
	for _, ol := range e.OrderLines {
		n := b.el(orderNode[ol.Order], "orderline", ColCustomer)
		b.attr(n, "id", fmt.Sprintf("L%d", ol.ID))
		f1 := b.field(n, "qty", ColCustomer, strconv.Itoa(ol.Qty))
		f2 := b.field(n, "olDiscount", ColCustomer, strconv.Itoa(ol.Discount))
		fields := []*core.Node{f1, f2}
		for _, c := range []core.Color{ColBilling, ColShipping, ColDate} {
			b.adopt(orderNode[ol.Order], n, c)
			b.adoptFields(n, fields, c)
		}
		b.adopt(itemNode[ol.Item], n, ColAuthor)
		b.adoptFields(n, fields, ColAuthor)
	}

	if b.err != nil {
		return nil, b.err
	}
	return db, nil
}

// BuildTPCWShallow materializes the single-colored XNF representation: flat
// entity collections related by id/idref attributes.
func BuildTPCWShallow(e *TPCWEntities) (*core.Database, error) {
	db := core.NewDatabase(ColDoc)
	b := &builder{db: db}
	doc := db.Document()
	root := b.el(doc, "tpcw", ColDoc)

	customers := b.el(root, "customers", ColDoc)
	for _, c := range e.Customers {
		n := b.el(customers, "customer", ColDoc)
		b.attr(n, "id", fmt.Sprintf("C%d", c.ID))
		b.attr(n, "billingIdRef", fmt.Sprintf("A%d", c.Billing))
		b.field(n, "uname", ColDoc, c.Uname)
		b.field(n, "name", ColDoc, c.Name)
		b.field(n, "email", ColDoc, c.Email)
		b.field(n, "discount", ColDoc, strconv.Itoa(c.Discount))
	}
	addresses := b.el(root, "addresses", ColDoc)
	for _, a := range e.Addresses {
		n := b.el(addresses, "address", ColDoc)
		b.attr(n, "id", fmt.Sprintf("A%d", a.ID))
		b.field(n, "street", ColDoc, a.Street)
		b.field(n, "city", ColDoc, a.City)
		b.field(n, "zip", ColDoc, a.Zip)
		b.field(n, "country", ColDoc, e.Countries[a.Country-1].Name)
	}
	authors := b.el(root, "authors", ColDoc)
	for _, a := range e.Authors {
		n := b.el(authors, "author", ColDoc)
		b.attr(n, "id", fmt.Sprintf("U%d", a.ID))
		b.field(n, "name", ColDoc, a.Name)
		b.field(n, "bio", ColDoc, a.Bio)
	}
	items := b.el(root, "items", ColDoc)
	for _, it := range e.Items {
		n := b.el(items, "item", ColDoc)
		b.attr(n, "id", fmt.Sprintf("I%d", it.ID))
		b.attr(n, "authorIdRef", fmt.Sprintf("U%d", it.Author))
		b.field(n, "title", ColDoc, it.Title)
		b.field(n, "subject", ColDoc, it.Subject)
		b.field(n, "cost", ColDoc, strconv.Itoa(it.Cost))
	}
	// Dates stay a (single-colored) nested dimension, like the MCT date
	// hierarchy: year > month > day, with day ids referenced by orders. This
	// is still XNF — a nested hierarchy can be shallow (Definition 3.3).
	dates := b.el(root, "dates", ColDoc)
	yearNode := map[int]*core.Node{}
	monthNode := map[[2]int]*core.Node{}
	for _, d := range e.Dates {
		y, ok := yearNode[d.Year]
		if !ok {
			y = b.el(dates, "year", ColDoc)
			b.field(y, "value", ColDoc, strconv.Itoa(d.Year))
			yearNode[d.Year] = y
		}
		mKey := [2]int{d.Year, d.Month}
		m, ok := monthNode[mKey]
		if !ok {
			m = b.el(y, "month", ColDoc)
			b.field(m, "value", ColDoc, strconv.Itoa(d.Month))
			monthNode[mKey] = m
		}
		day := b.el(m, "day", ColDoc)
		b.attr(day, "id", fmt.Sprintf("D%d", d.ID))
		b.field(day, "value", ColDoc, strconv.Itoa(d.Day))
	}
	orders := b.el(root, "orders", ColDoc)
	for _, o := range e.Orders {
		n := b.el(orders, "order", ColDoc)
		b.attr(n, "id", fmt.Sprintf("O%d", o.ID))
		b.attr(n, "customerIdRef", fmt.Sprintf("C%d", o.Customer))
		b.attr(n, "billingIdRef", fmt.Sprintf("A%d", o.Billing))
		b.attr(n, "shippingIdRef", fmt.Sprintf("A%d", o.Shipping))
		b.attr(n, "dateIdRef", fmt.Sprintf("D%d", o.Date))
		b.field(n, "status", ColDoc, o.Status)
		b.field(n, "total", ColDoc, strconv.Itoa(o.Total))
	}
	orderlines := b.el(root, "orderlines", ColDoc)
	for _, ol := range e.OrderLines {
		n := b.el(orderlines, "orderline", ColDoc)
		b.attr(n, "id", fmt.Sprintf("L%d", ol.ID))
		b.attr(n, "orderIdRef", fmt.Sprintf("O%d", ol.Order))
		b.attr(n, "itemIdRef", fmt.Sprintf("I%d", ol.Item))
		b.field(n, "qty", ColDoc, strconv.Itoa(ol.Qty))
		b.field(n, "olDiscount", ColDoc, strconv.Itoa(ol.Discount))
	}

	if b.err != nil {
		return nil, b.err
	}
	return db, nil
}

// BuildTPCWDeep materializes the deep representation of the paper: customer
// at the top of the hierarchy, then order, address, country, item, and
// finally author — with addresses, dates, items and authors REPLICATED under
// every order/orderline that references them.
func BuildTPCWDeep(e *TPCWEntities) (*core.Database, error) {
	db := core.NewDatabase(ColDoc)
	b := &builder{db: db}
	doc := db.Document()
	root := b.el(doc, "tpcw", ColDoc)

	// Pre-group orders and lines.
	ordersOf := map[int][]Order{}
	for _, o := range e.Orders {
		ordersOf[o.Customer] = append(ordersOf[o.Customer], o)
	}
	linesOf := map[int][]OrderLine{}
	for _, ol := range e.OrderLines {
		linesOf[ol.Order] = append(linesOf[ol.Order], ol)
	}

	emitAddress := func(parent *core.Node, role string, id int) {
		a := e.Addresses[id-1]
		n := b.el(parent, role, ColDoc)
		b.field(n, "street", ColDoc, a.Street)
		b.field(n, "city", ColDoc, a.City)
		b.field(n, "zip", ColDoc, a.Zip)
		cn := b.el(n, "countryNode", ColDoc)
		b.field(cn, "country", ColDoc, e.Countries[a.Country-1].Name)
	}

	for _, c := range e.Customers {
		cn := b.el(root, "customer", ColDoc)
		b.attr(cn, "id", fmt.Sprintf("C%d", c.ID))
		b.field(cn, "uname", ColDoc, c.Uname)
		b.field(cn, "name", ColDoc, c.Name)
		b.field(cn, "email", ColDoc, c.Email)
		b.field(cn, "discount", ColDoc, strconv.Itoa(c.Discount))
		emitAddress(cn, "billingAddress", c.Billing) // replicated per customer
		for _, o := range ordersOf[c.ID] {
			on := b.el(cn, "order", ColDoc)
			b.attr(on, "id", fmt.Sprintf("O%d", o.ID))
			b.field(on, "status", ColDoc, o.Status)
			b.field(on, "total", ColDoc, strconv.Itoa(o.Total))
			emitAddress(on, "shippingAddress", o.Shipping) // replicated per order
			d := e.Dates[o.Date-1]
			dn := b.el(on, "orderDate", ColDoc)
			b.field(dn, "year", ColDoc, strconv.Itoa(d.Year))
			b.field(dn, "month", ColDoc, strconv.Itoa(d.Month))
			b.field(dn, "day", ColDoc, strconv.Itoa(d.Day))
			for _, ol := range linesOf[o.ID] {
				ln := b.el(on, "orderline", ColDoc)
				b.attr(ln, "id", fmt.Sprintf("L%d", ol.ID))
				b.field(ln, "qty", ColDoc, strconv.Itoa(ol.Qty))
				b.field(ln, "olDiscount", ColDoc, strconv.Itoa(ol.Discount))
				it := e.Items[ol.Item-1]
				in := b.el(ln, "item", ColDoc) // replicated per orderline
				b.attr(in, "ref", fmt.Sprintf("I%d", it.ID))
				b.field(in, "title", ColDoc, it.Title)
				b.field(in, "subject", ColDoc, it.Subject)
				b.field(in, "cost", ColDoc, strconv.Itoa(it.Cost))
				au := e.Authors[it.Author-1]
				an := b.el(in, "author", ColDoc) // replicated per item copy
				b.attr(an, "ref", fmt.Sprintf("U%d", au.ID))
				b.field(an, "name", ColDoc, au.Name)
				b.field(an, "bio", ColDoc, au.Bio)
			}
		}
	}

	if b.err != nil {
		return nil, b.err
	}
	return db, nil
}
