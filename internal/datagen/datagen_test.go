package datagen_test

import (
	"sync"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/datagen"
	"colorfulxml/internal/storage"
)

var (
	dsOnce sync.Once
	dsTPCW *datagen.Dataset
	dsErr  error
)

// getTPCW builds the scale-1 dataset once for the whole test package.
func getTPCW(t *testing.T) *datagen.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsTPCW, dsErr = datagen.TPCW(datagen.TPCWConfig{Scale: 1, Seed: 1})
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsTPCW
}

func TestTPCWDeterministic(t *testing.T) {
	a := datagen.GenTPCWEntities(datagen.TPCWConfig{Scale: 1, Seed: 42})
	b := datagen.GenTPCWEntities(datagen.TPCWConfig{Scale: 1, Seed: 42})
	if len(a.Orders) != len(b.Orders) || len(a.OrderLines) != len(b.OrderLines) {
		t.Fatal("same seed must give same cardinalities")
	}
	for i := range a.Orders {
		if a.Orders[i] != b.Orders[i] {
			t.Fatal("orders differ")
		}
	}
	c := datagen.GenTPCWEntities(datagen.TPCWConfig{Scale: 1, Seed: 43})
	if len(c.Orders) == len(a.Orders) && c.Orders[0] == a.Orders[0] && c.Orders[1] == a.Orders[1] {
		t.Fatal("different seeds should differ")
	}
}

func TestTPCWAllVariantsValidate(t *testing.T) {
	ds := getTPCW(t)
	for name, db := range map[string]*core.Database{
		"mct": ds.MCT, "shallow": ds.Shallow, "deep": ds.Deep,
	} {
		if err := db.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
}

func TestTPCWShapeMatchesPaper(t *testing.T) {
	ds := getTPCW(t)
	mct := ds.MCT.ComputeStats()
	sh := ds.Shallow.ComputeStats()
	dp := ds.Deep.ComputeStats()
	// Paper Table 1: MCT and shallow have the SAME element count; ours
	// differ only in a handful of section-wrapper elements. Deep has roughly
	// 2.6x as many elements due to replication.
	if diff := sh.Elements - mct.Elements; diff < 0 || diff > 8 {
		t.Fatalf("MCT elements %d vs shallow %d (diff %d beyond wrappers)", mct.Elements, sh.Elements, diff)
	}
	ratio := float64(dp.Elements) / float64(sh.Elements)
	if ratio < 1.5 || ratio > 4.5 {
		t.Fatalf("deep/shallow element ratio = %.2f, want replication blow-up (paper: ~2.6)", ratio)
	}
	// MCT structural nodes exceed its elements (multi-colored nodes).
	if mct.StructuralNodes <= mct.Elements {
		t.Fatalf("MCT struct nodes %d should exceed elements %d", mct.StructuralNodes, mct.Elements)
	}
	// Orders are 4-colored, orderlines 5-colored.
	if mct.MultiColored == 0 {
		t.Fatal("MCT should have multi-colored nodes")
	}
}

func TestTPCWMCTHierarchies(t *testing.T) {
	ds := getTPCW(t)
	s, err := storage.Load(ds.MCT, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := ds.Entities
	// Every hierarchy holds every order / orderline.
	for _, c := range []core.Color{datagen.ColCustomer, datagen.ColBilling, datagen.ColShipping, datagen.ColDate} {
		if got := s.CountTag(c, "order"); got != len(e.Orders) {
			t.Fatalf("orders in %s = %d, want %d", c, got, len(e.Orders))
		}
		if got := s.CountTag(c, "orderline"); got != len(e.OrderLines) {
			t.Fatalf("orderlines in %s = %d, want %d", c, got, len(e.OrderLines))
		}
	}
	if got := s.CountTag(datagen.ColAuthor, "orderline"); got != len(e.OrderLines) {
		t.Fatalf("orderlines in author = %d, want %d", got, len(e.OrderLines))
	}
	if got := s.CountTag(datagen.ColAuthor, "item"); got != len(e.Items) {
		t.Fatalf("items = %d, want %d", got, len(e.Items))
	}
	if got := s.CountTag(datagen.ColCustomer, "customer"); got != len(e.Customers) {
		t.Fatalf("customers = %d, want %d", got, len(e.Customers))
	}
}

func TestTPCWDeepReplication(t *testing.T) {
	ds := getTPCW(t)
	s, err := storage.Load(ds.Deep, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := ds.Entities
	// In deep, item elements are replicated once per orderline.
	if got := s.CountTag(datagen.ColDoc, "item"); got != len(e.OrderLines) {
		t.Fatalf("deep item copies = %d, want one per orderline %d", got, len(e.OrderLines))
	}
	if got := s.CountTag(datagen.ColDoc, "author"); got != len(e.OrderLines) {
		t.Fatalf("deep author copies = %d, want %d", got, len(e.OrderLines))
	}
	// Shipping addresses replicated once per order (plus billing per customer).
	if got := s.CountTag(datagen.ColDoc, "shippingAddress"); got != len(e.Orders) {
		t.Fatalf("deep shipping addresses = %d, want %d", got, len(e.Orders))
	}
}

func TestSigmodAllVariants(t *testing.T) {
	ds, err := datagen.Sigmod(datagen.SigmodConfig{Scale: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for name, db := range map[string]*core.Database{
		"mct": ds.MCT, "shallow": ds.Shallow, "deep": ds.Deep,
	} {
		if err := db.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
	e := ds.Sigmod
	s, err := storage.Load(ds.MCT, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Articles appear in both hierarchies.
	if got := s.CountTag(datagen.ColIssueDate, "article"); got != len(e.Articles) {
		t.Fatalf("date-tree articles = %d, want %d", got, len(e.Articles))
	}
	if got := s.CountTag(datagen.ColTopic, "article"); got != len(e.Articles) {
		t.Fatalf("topic-tree articles = %d, want %d", got, len(e.Articles))
	}
	// Deep replicates topics and editors per article.
	sd, err := storage.Load(ds.Deep, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sd.CountTag(datagen.ColDoc, "topic"); got != len(e.Articles) {
		t.Fatalf("deep topic copies = %d, want %d", got, len(e.Articles))
	}
	if got := sd.CountTag(datagen.ColDoc, "editor"); got != len(e.Articles) {
		t.Fatalf("deep editor copies = %d, want %d", got, len(e.Articles))
	}
	// MCT and shallow element counts are close (shallow has no extra copies;
	// both store each entity once). They differ only by section wrappers.
	mct := ds.MCT.ComputeStats()
	sh := ds.Shallow.ComputeStats()
	if diff := sh.Elements - mct.Elements; diff < 0 || diff > 5 {
		t.Fatalf("mct %d vs shallow %d elements", mct.Elements, sh.Elements)
	}
}

func TestSigmodScaling(t *testing.T) {
	small := datagen.GenSigmodEntities(datagen.SigmodConfig{Scale: 1, Seed: 5})
	big := datagen.GenSigmodEntities(datagen.SigmodConfig{Scale: 3, Seed: 5})
	if len(big.Issues) != 3*len(small.Issues) {
		t.Fatalf("issues: %d vs %d", len(big.Issues), len(small.Issues))
	}
	if len(big.Articles) <= 2*len(small.Articles) {
		t.Fatalf("articles did not scale: %d vs %d", len(big.Articles), len(small.Articles))
	}
}

func TestTPCWOrderColors(t *testing.T) {
	ds := getTPCW(t)
	s, err := storage.Load(ds.MCT, 0)
	if err != nil {
		t.Fatal(err)
	}
	orders, err := s.ScanTag(datagen.ColCustomer, "order")
	if err != nil {
		t.Fatal(err)
	}
	colors := s.ColorsOf(orders[0].Elem)
	if len(colors) != 4 {
		t.Fatalf("order colors = %v, want 4", colors)
	}
	lines, err := s.ScanTag(datagen.ColCustomer, "orderline")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ColorsOf(lines[0].Elem); len(got) != 5 {
		t.Fatalf("orderline colors = %v, want 5", got)
	}
}
