package mcxquery

import (
	"fmt"
	"strings"

	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/xmlenc"
)

// LexQuery tokenizes a complete MCXQuery source text with the modal lexer:
// ordinary expression tokens, plus element-constructor tokens (TokTagOpen,
// TokTagClose, TokTagSelfClose, TokTagEnd, TokRawText) produced by switching
// to raw-content mode inside constructors and back to expression mode inside
// enclosed `{ ... }` expressions.
//
// Disambiguation follows XQuery: '<' starts a constructor only at operand
// position (start of input, after '(', '[', ',', '{', ':=', an operator, or
// a keyword such as return/in/where/then/else); elsewhere it is less-than.
// Curly braces nest: a '{' inside an expression (a color specification)
// increments the brace depth so only the matching outer '}' returns to
// constructor content.
func LexQuery(src string) ([]pathexpr.Token, error) {
	ml := &modalLexer{lx: pathexpr.NewLexer(src)}
	ml.stack = []frame{{kind: fExpr}}
	var out []pathexpr.Token
	for {
		tok, err := ml.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == pathexpr.TokEOF {
			if len(ml.stack) > 1 {
				top := ml.stack[len(ml.stack)-1]
				return nil, pathexpr.Errf(tok.Pos, "unterminated element constructor <%s>", top.tag)
			}
			return out, nil
		}
	}
}

type frameKind uint8

const (
	fExpr    frameKind = iota // expression tokens
	fTag                      // inside a constructor start tag (attributes)
	fContent                  // raw constructor content
)

type frame struct {
	kind  frameKind
	depth int    // '{' nesting within an fExpr frame (color specs)
	tag   string // element name for fTag/fContent frames
}

type modalLexer struct {
	lx    *pathexpr.Lexer
	stack []frame
	last  pathexpr.Token // last emitted token, for operand-position tracking
}

func (ml *modalLexer) top() *frame { return &ml.stack[len(ml.stack)-1] }

func (ml *modalLexer) push(f frame) { ml.stack = append(ml.stack, f) }

func (ml *modalLexer) pop() { ml.stack = ml.stack[:len(ml.stack)-1] }

// operandKeywords are identifiers after which '<' must start a constructor.
var operandKeywords = map[string]bool{
	"return": true, "in": true, "where": true, "then": true, "else": true,
	"and": true, "or": true, "div": true, "mod": true, "by": true,
	"satisfies": true, "to": true, "update": true, "into": true, "with": true,
	"insert": true, "before": true, "after": true,
}

func (ml *modalLexer) operandPosition() bool {
	switch ml.last.Kind {
	case pathexpr.TokEOF, // start of input (zero token)
		pathexpr.TokLParen, pathexpr.TokLBracket, pathexpr.TokComma,
		pathexpr.TokEq, pathexpr.TokNe, pathexpr.TokLt, pathexpr.TokLe,
		pathexpr.TokGt, pathexpr.TokGe, pathexpr.TokPlus, pathexpr.TokMinus,
		pathexpr.TokStar, pathexpr.TokAssign, pathexpr.TokLBrace,
		pathexpr.TokSemicolon:
		return true
	case pathexpr.TokIdent:
		return operandKeywords[ml.last.Text]
	default:
		return false
	}
}

func (ml *modalLexer) next() (pathexpr.Token, error) {
	var tok pathexpr.Token
	var err error
	switch ml.top().kind {
	case fExpr:
		tok, err = ml.nextExpr()
	case fTag:
		tok, err = ml.nextTag()
	case fContent:
		tok, err = ml.nextContent()
	}
	if err != nil {
		return pathexpr.Token{}, err
	}
	ml.last = tok
	return tok, nil
}

func (ml *modalLexer) nextExpr() (pathexpr.Token, error) {
	tok, err := ml.lx.Next()
	if err != nil {
		return pathexpr.Token{}, err
	}
	src := ml.lx.Source()
	if tok.Kind == pathexpr.TokLt && ml.operandPosition() &&
		ml.lx.Pos() < len(src) && isNameStart(src[ml.lx.Pos()]) {
		name := ml.scanName()
		ml.push(frame{kind: fTag, tag: name})
		return pathexpr.Token{Kind: pathexpr.TokTagOpen, Text: name, Pos: tok.Pos}, nil
	}
	switch tok.Kind {
	case pathexpr.TokLBrace:
		ml.top().depth++
	case pathexpr.TokRBrace:
		if ml.top().depth > 0 {
			ml.top().depth--
		} else if len(ml.stack) > 1 {
			ml.pop() // back to constructor content
		}
	}
	return tok, nil
}

func (ml *modalLexer) nextTag() (pathexpr.Token, error) {
	ml.lx.SkipSpace()
	src := ml.lx.Source()
	pos := ml.lx.Pos()
	if pos >= len(src) {
		return pathexpr.Token{}, pathexpr.Errf(pos, "unterminated start tag <%s>", ml.top().tag)
	}
	switch {
	case src[pos] == '>':
		ml.lx.SetPos(pos + 1)
		tag := ml.top().tag
		ml.pop()
		ml.push(frame{kind: fContent, tag: tag})
		return pathexpr.Token{Kind: pathexpr.TokTagClose, Text: ">", Pos: pos}, nil
	case strings.HasPrefix(src[pos:], "/>"):
		ml.lx.SetPos(pos + 2)
		ml.pop()
		return pathexpr.Token{Kind: pathexpr.TokTagSelfClose, Text: "/>", Pos: pos}, nil
	default:
		return ml.lx.Next()
	}
}

func (ml *modalLexer) nextContent() (pathexpr.Token, error) {
	src := ml.lx.Source()
	for {
		pos := ml.lx.Pos()
		if pos >= len(src) {
			return pathexpr.Token{}, pathexpr.Errf(pos, "unterminated element constructor <%s>", ml.top().tag)
		}
		switch {
		case strings.HasPrefix(src[pos:], "</"):
			ml.lx.SetPos(pos + 2)
			name := ml.scanName()
			if name == "" {
				return pathexpr.Token{}, pathexpr.Errf(pos, "malformed end tag")
			}
			ml.lx.SkipSpace()
			p := ml.lx.Pos()
			if p >= len(src) || src[p] != '>' {
				return pathexpr.Token{}, pathexpr.Errf(p, "malformed end tag </%s", name)
			}
			ml.lx.SetPos(p + 1)
			if name != ml.top().tag {
				return pathexpr.Token{}, pathexpr.Errf(pos, "mismatched end tag: </%s> closes <%s>", name, ml.top().tag)
			}
			ml.pop()
			return pathexpr.Token{Kind: pathexpr.TokTagEnd, Text: name, Pos: pos}, nil
		case src[pos] == '<' && pos+1 < len(src) && isNameStart(src[pos+1]):
			ml.lx.SetPos(pos + 1)
			name := ml.scanName()
			ml.push(frame{kind: fTag, tag: name})
			return pathexpr.Token{Kind: pathexpr.TokTagOpen, Text: name, Pos: pos}, nil
		case src[pos] == '<':
			return pathexpr.Token{}, pathexpr.Errf(pos, "unexpected '<' in constructor content")
		case src[pos] == '{':
			ml.lx.SetPos(pos + 1)
			ml.push(frame{kind: fExpr})
			return pathexpr.Token{Kind: pathexpr.TokLBrace, Text: "{", Pos: pos}, nil
		case src[pos] == '}':
			return pathexpr.Token{}, pathexpr.Errf(pos, "unexpected '}' in constructor content")
		default:
			end := pos
			for end < len(src) && src[end] != '<' && src[end] != '{' && src[end] != '}' {
				end++
			}
			raw := src[pos:end]
			ml.lx.SetPos(end)
			if strings.TrimSpace(raw) == "" {
				continue // boundary whitespace is dropped
			}
			text, err := xmlenc.Unescape(raw)
			if err != nil {
				return pathexpr.Token{}, pathexpr.Errf(pos, "bad entity in constructor content: %v", err)
			}
			return pathexpr.Token{Kind: pathexpr.TokRawText, Text: text, Pos: pos}, nil
		}
	}
}

// scanName reads an XML name at the current position, advancing past it.
func (ml *modalLexer) scanName() string {
	src := ml.lx.Source()
	start := ml.lx.Pos()
	pos := start
	for pos < len(src) && isNameChar(src[pos]) {
		pos++
	}
	ml.lx.SetPos(pos)
	return src[start:pos]
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// tokenDump renders tokens for debugging.
func tokenDump(toks []pathexpr.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = fmt.Sprintf("%d:%q", t.Kind, t.Text)
	}
	return strings.Join(parts, " ")
}
