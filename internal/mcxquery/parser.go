package mcxquery

import (
	"colorfulxml/internal/pathexpr"
)

// ParseQuery parses a complete MCXQuery expression: a FLWOR expression, an
// element constructor, or any colored path / general expression.
func ParseQuery(src string) (pathexpr.Expr, error) {
	toks, err := LexQuery(src)
	if err != nil {
		return nil, err
	}
	p := pathexpr.NewParser(toks)
	p.Ext = ExtParse
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if p.Peek().Kind != pathexpr.TokEOF {
		return nil, pathexpr.Errf(p.Peek().Pos, "unexpected %s after query", p.Peek())
	}
	return e, nil
}

// ExtParse is the primary-expression extension hook: FLWOR expressions,
// conditional expressions, element constructors, and parenthesized sequences.
// It is exported for the update package, which parses MCXQuery expressions
// inside update clauses.
func ExtParse(p *pathexpr.Parser) (pathexpr.Expr, bool, error) {
	t := p.Peek()
	switch {
	case t.Kind == pathexpr.TokIdent && (t.Text == "for" || t.Text == "let") &&
		p.PeekAt(1).Kind == pathexpr.TokVar:
		e, err := parseFLWOR(p)
		return e, true, err
	case t.Kind == pathexpr.TokIdent && t.Text == "if" &&
		p.PeekAt(1).Kind == pathexpr.TokLParen:
		e, err := parseIf(p)
		return e, true, err
	case t.Kind == pathexpr.TokTagOpen:
		e, err := parseCtor(p)
		return e, true, err
	case t.Kind == pathexpr.TokLParen:
		e, err := parseParenSeq(p)
		return e, true, err
	default:
		return nil, false, nil
	}
}

func parseFLWOR(p *pathexpr.Parser) (pathexpr.Expr, error) {
	f := &FLWOR{}
	for {
		t := p.Peek()
		if t.Kind != pathexpr.TokIdent || (t.Text != "for" && t.Text != "let") ||
			p.PeekAt(1).Kind != pathexpr.TokVar {
			break
		}
		isLet := t.Text == "let"
		p.Advance()
		for {
			v, err := p.Expect(pathexpr.TokVar)
			if err != nil {
				return nil, err
			}
			if isLet {
				if _, err := p.Expect(pathexpr.TokAssign); err != nil {
					return nil, err
				}
			} else if err := p.ExpectIdent("in"); err != nil {
				return nil, err
			}
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, Clause{Let: isLet, Var: v.Text, Expr: e})
			// ", $v ..." continues the same clause kind.
			if p.Peek().Kind == pathexpr.TokComma && p.PeekAt(1).Kind == pathexpr.TokVar {
				p.Advance()
				continue
			}
			break
		}
	}
	if len(f.Clauses) == 0 {
		return nil, pathexpr.Errf(p.Peek().Pos, "expected for/let clause")
	}
	if t := p.Peek(); t.Kind == pathexpr.TokIdent && t.Text == "where" {
		p.Advance()
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		f.Where = e
	}
	if t := p.Peek(); t.Kind == pathexpr.TokIdent && (t.Text == "order" || t.Text == "stable") {
		if t.Text == "stable" {
			p.Advance()
		}
		if err := p.ExpectIdent("order"); err != nil {
			return nil, err
		}
		if err := p.ExpectIdent("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if t := p.Peek(); t.Kind == pathexpr.TokIdent && (t.Text == "ascending" || t.Text == "descending") {
				key.Desc = t.Text == "descending"
				p.Advance()
			}
			f.OrderBy = append(f.OrderBy, key)
			if p.Peek().Kind != pathexpr.TokComma {
				break
			}
			p.Advance()
		}
	}
	if err := p.ExpectIdent("return"); err != nil {
		return nil, err
	}
	ret, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	f.Return = ret
	return f, nil
}

func parseIf(p *pathexpr.Parser) (pathexpr.Expr, error) {
	p.Advance() // if
	if _, err := p.Expect(pathexpr.TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.Expect(pathexpr.TokRParen); err != nil {
		return nil, err
	}
	if err := p.ExpectIdent("then"); err != nil {
		return nil, err
	}
	then, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.ExpectIdent("else"); err != nil {
		return nil, err
	}
	els, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: then, Else: els}, nil
}

// parseCtor parses an element constructor. The modal lexer guarantees the
// token shape: TagOpen (attrName '=' string)* (TagSelfClose | TagClose
// content... TagEnd).
func parseCtor(p *pathexpr.Parser) (pathexpr.Expr, error) {
	open := p.Advance() // TokTagOpen
	ctor := &ElementCtor{Name: open.Text}
	for {
		t := p.Peek()
		switch t.Kind {
		case pathexpr.TokTagSelfClose:
			p.Advance()
			return ctor, nil
		case pathexpr.TokTagClose:
			p.Advance()
			return parseCtorContent(p, ctor)
		case pathexpr.TokIdent:
			p.Advance()
			if _, err := p.Expect(pathexpr.TokEq); err != nil {
				return nil, err
			}
			v, err := p.Expect(pathexpr.TokString)
			if err != nil {
				return nil, err
			}
			ctor.Attrs = append(ctor.Attrs, CtorAttr{Name: t.Text, Value: v.Text})
		default:
			return nil, pathexpr.Errf(t.Pos, "unexpected %s in start tag <%s>", t, ctor.Name)
		}
	}
}

func parseCtorContent(p *pathexpr.Parser, ctor *ElementCtor) (pathexpr.Expr, error) {
	for {
		t := p.Peek()
		switch t.Kind {
		case pathexpr.TokTagEnd:
			p.Advance()
			return ctor, nil
		case pathexpr.TokRawText:
			p.Advance()
			ctor.Content = append(ctor.Content, &TextCtor{Text: t.Text})
		case pathexpr.TokTagOpen:
			child, err := parseCtor(p)
			if err != nil {
				return nil, err
			}
			ctor.Content = append(ctor.Content, child)
		case pathexpr.TokLBrace:
			p.Advance()
			encl, err := parseExprSeq(p)
			if err != nil {
				return nil, err
			}
			if _, err := p.Expect(pathexpr.TokRBrace); err != nil {
				return nil, err
			}
			ctor.Content = append(ctor.Content, encl)
		default:
			return nil, pathexpr.Errf(t.Pos, "unexpected %s in content of <%s>", t, ctor.Name)
		}
	}
}

// parseExprSeq parses Expr ("," Expr)*, wrapping multiples in SeqExpr.
func parseExprSeq(p *pathexpr.Parser) (pathexpr.Expr, error) {
	first, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if p.Peek().Kind != pathexpr.TokComma {
		return first, nil
	}
	seq := &SeqExpr{Items: []pathexpr.Expr{first}}
	for p.Peek().Kind == pathexpr.TokComma {
		p.Advance()
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		seq.Items = append(seq.Items, e)
	}
	return seq, nil
}

// parseParenSeq parses "(" ")" or "(" Expr ("," Expr)* ")".
func parseParenSeq(p *pathexpr.Parser) (pathexpr.Expr, error) {
	p.Advance() // (
	if p.Peek().Kind == pathexpr.TokRParen {
		p.Advance()
		return &SeqExpr{}, nil
	}
	e, err := parseExprSeq(p)
	if err != nil {
		return nil, err
	}
	if _, err := p.Expect(pathexpr.TokRParen); err != nil {
		return nil, err
	}
	return e, nil
}
