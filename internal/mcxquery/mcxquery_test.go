package mcxquery_test

import (
	"errors"
	"strings"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
)

func run(t *testing.T, m *fixtures.MovieDB, src string) pathexpr.Sequence {
	t.Helper()
	ev := mcxquery.NewEvaluator(m.DB)
	out, err := ev.Query(src)
	if err != nil {
		t.Fatalf("query failed: %v\nquery: %s", err, src)
	}
	return out
}

func itemStrings(seq pathexpr.Sequence) []string {
	out := make([]string, len(seq))
	for i, it := range seq {
		out[i] = pathexpr.ItemString(it)
	}
	return out
}

// TestPaperQ1 runs the paper's Figure 3 query 01 verbatim (modulo dataset).
func TestPaperQ1(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $m in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name =
        "Comedy"]/
        {red}descendant::movie[contains({red}child::name, "Eve")]
return createColor(black, <m-name> { $m/{red}child::name } </m-name>)`
	out := run(t, m, q)
	if len(out) != 1 {
		t.Fatalf("Q1 results = %d, want 1", len(out))
	}
	res := out[0].Node
	if res == nil || res.Name() != "m-name" {
		t.Fatalf("result = %v", out[0])
	}
	if !res.HasColor("black") {
		t.Fatal("result root must be black")
	}
	// The enclosed expression retained the identity of the existing name
	// node: it is now black too, in addition to red.
	kids := core.Children(res, "black")
	if len(kids) != 1 || kids[0] != m.Node("eve-name") {
		t.Fatalf("children = %v, want the original eve-name node", kids)
	}
	if !m.Node("eve-name").HasColor("red") || !m.Node("eve-name").HasColor("black") {
		t.Fatalf("eve-name colors = %v", m.Node("eve-name").Colors())
	}
	if err := m.DB.Validate(); err != nil {
		t.Fatalf("database invalid after Q1: %v", err)
	}
}

// TestPaperQ2 is Figure 3 query 02: Oscar-nominated comedies titled *Eve*.
func TestPaperQ2(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $m in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/
        {red}descendant::movie[contains({red}child::name, "Eve")],
    $n in document("mdb.xml")/{green}descendant::movie-award
        [contains({green}child::name, "Oscar")]/{green}descendant::movie
where $m = $n
return createColor(black, <m-name> { $m/{red}child::name } </m-name>)`
	out := run(t, m, q)
	if len(out) != 1 {
		t.Fatalf("Q2 results = %d, want 1 (All About Eve)", len(out))
	}
	sv, _ := core.StringValue(out[0].Node, "black")
	if sv != "All About Eve" {
		t.Fatalf("Q2 value = %q", sv)
	}
}

// TestPaperQ3 is Figure 3 query 03: Oscar comedies with Bette Davis, joining
// through the shared movie-role node across red and blue hierarchies.
func TestPaperQ3(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $m in document("mdb.xml")/{green}descendant::movie-award
        [contains({green}child::name, "Oscar")]/{green}descendant::movie,
    $r in document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/
        {red}descendant::movie[. = $m]/{red}child::movie-role,
    $s in document("mdb.xml")/{blue}descendant::actor
        [{blue}child::name = "Bette Davis"]/{blue}child::movie-role
where $r = $s
return createColor(black, <m-name> { $m/{red}child::name } </m-name>)`
	out := run(t, m, q)
	if len(out) != 1 {
		t.Fatalf("Q3 results = %d, want 1", len(out))
	}
	sv, _ := core.StringValue(out[0].Node, "black")
	if sv != "All About Eve" {
		t.Fatalf("Q3 = %q", sv)
	}
}

// TestPaperQ4 is Figure 3 query 04: the multi-color single path expression.
func TestPaperQ4(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $a in document("mdb.xml")/{green}descendant::movie-award
        [contains({green}child::name, "Oscar")]/{green}descendant::movie
        [{green}child::votes > 10]/{red}child::movie-role/{blue}parent::actor
return createColor(black, <a-name> { $a/{blue}child::name } </a-name>)`
	out := run(t, m, q)
	if len(out) != 2 {
		t.Fatalf("Q4 results = %d, want 2", len(out))
	}
	var got []string
	for _, it := range out {
		sv, _ := core.StringValue(it.Node, "black")
		got = append(got, sv)
	}
	want := map[string]bool{"Bette Davis": true, "Marilyn Monroe": true}
	if !want[got[0]] || !want[got[1]] || got[0] == got[1] {
		t.Fatalf("Q4 = %v", got)
	}
}

// TestPaperQ5 is Figure 3 query 05: restructuring into a new black tree
// grouping Oscar-nominated movies by votes (paper Figure 7).
func TestPaperQ5(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
createColor(black, <byvotes> {
 for $v in distinct-values(document("mdb.xml")/{green}descendant::votes)
 order by $v
 return
     <award-byvotes>
        { for $m in document("mdb.xml")/{green}descendant::movie[{green}child::votes = $v]
          return $m }
        <votes> { $v } </votes>
     </award-byvotes>
 } </byvotes>)`
	out := run(t, m, q)
	if len(out) != 1 {
		t.Fatalf("Q5 results = %d", len(out))
	}
	root := out[0].Node
	if root.Name() != "byvotes" || !root.HasColor("black") {
		t.Fatalf("root = %v", root)
	}
	groups := core.Children(root, "black")
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (votes 9, 11, 14)", len(groups))
	}
	// Ascending vote order: 9 (angry), 11 (hot), 14 (eve).
	wantMovies := []string{"angry", "hot", "eve"}
	wantVotes := []string{"9", "11", "14"}
	for i, g := range groups {
		if g.Name() != "award-byvotes" {
			t.Fatalf("group %d = %v", i, g)
		}
		kids := core.Children(g, "black")
		if len(kids) != 2 {
			t.Fatalf("group %d children = %v", i, kids)
		}
		if kids[0] != m.Node(wantMovies[i]) {
			t.Fatalf("group %d movie = %v, want %s", i, kids[0], wantMovies[i])
		}
		if kids[1].Name() != "votes" {
			t.Fatalf("group %d second child = %v", i, kids[1])
		}
		sv, _ := core.StringValue(kids[1], "black")
		if sv != wantVotes[i] {
			t.Fatalf("group %d votes = %q, want %q", i, sv, wantVotes[i])
		}
	}
	// Paper Figure 7: movie nodes now have three colors.
	if got := m.Node("eve").Colors(); len(got) != 3 {
		t.Fatalf("eve colors = %v, want black+green+red", got)
	}
	if err := m.DB.Validate(); err != nil {
		t.Fatalf("database invalid after Q5: %v", err)
	}
}

// TestDuplProblem reproduces the paper's Section 4.2 dynamic error: the same
// node identity used twice in one constructed colored tree.
func TestDuplProblem(t *testing.T) {
	m := fixtures.NewMovieDB()
	ev := mcxquery.NewEvaluator(m.DB)
	q := `
for $m in document("mdb.xml")/{red}descendant::movie[contains({red}child::name, "Eve")]
return createColor(black, <dupl-problem>
    <m1> { $m/{red}child::name } </m1>
    <m2> { $m/{red}child::name } </m2>
</dupl-problem>)`
	_, err := ev.Query(q)
	if !errors.Is(err, core.ErrDuplicateInTree) {
		t.Fatalf("want ErrDuplicateInTree, got %v", err)
	}
}

// TestCreateCopyAvoidsDuplProblem: with createCopy the same content can be
// used twice, as fresh nodes.
func TestCreateCopyAvoidsDuplProblem(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $m in document("mdb.xml")/{red}descendant::movie[contains({red}child::name, "Eve")]
return createColor(black, <dupl-ok>
    <m1> { createCopy($m/{red}child::name) } </m1>
    <m2> { createCopy($m/{red}child::name) } </m2>
</dupl-ok>)`
	out := run(t, m, q)
	if len(out) != 1 {
		t.Fatalf("results = %d", len(out))
	}
	root := out[0].Node
	kids := core.Children(root, "black")
	if len(kids) != 2 {
		t.Fatalf("children = %v", kids)
	}
	for _, k := range kids {
		inner := core.Children(k, "black")
		if len(inner) != 1 || inner[0].Name() != "name" {
			t.Fatalf("inner = %v", inner)
		}
		if inner[0] == m.Node("eve-name") {
			t.Fatal("createCopy must produce a fresh identity")
		}
		sv, _ := core.StringValue(inner[0], "black")
		if sv != "All About Eve" {
			t.Fatalf("copied value = %q", sv)
		}
	}
	// The original node is untouched: still red only.
	if m.Node("eve-name").HasColor("black") {
		t.Fatal("original must not gain black via createCopy")
	}
	if err := m.DB.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLetClauseAndWhere(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $g in document("x")/{red}descendant::movie-genre
let $n := count($g/{red}child::movie)
where $n >= 1
return createColor(black, <genre-count c="x"> { $g/{red}child::name } </genre-count>)`
	out := run(t, m, q)
	if len(out) != 3 { // comedy (2 movies), slapstick (1), drama (1)
		t.Fatalf("results = %d, want 3", len(out))
	}
	if out[0].Node.AttributeValue("c") != "x" {
		t.Fatal("constructor attribute lost")
	}
}

func TestOrderByDescending(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $m in document("x")/{green}descendant::movie
order by $m/{green}child::votes descending
return $m/{green}child::votes`
	out := run(t, m, q)
	got := itemStrings(out)
	want := []string{"14", "11", "9"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestOrderByStringKey(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $a in document("x")/{blue}descendant::actor
order by $a/{blue}child::name
return $a/{blue}child::name`
	out := run(t, m, q)
	got := itemStrings(out)
	want := []string{"Bette Davis", "Groucho Marx", "Henry Fonda", "Marilyn Monroe"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestIfExpr(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `
for $m in document("x")/{green}descendant::movie
return if ($m/{green}child::votes > 10)
  then concat("hit:", string($m/{green}child::votes))
  else concat("miss:", string($m/{green}child::votes))`
	out := itemStrings(run(t, m, q))
	want := []string{"hit:14", "miss:9", "hit:11"} // green local order
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("if results = %v", out)
		}
	}
}

func TestSequenceExpr(t *testing.T) {
	m := fixtures.NewMovieDB()
	out := run(t, m, `("a", 1, "b")`)
	if got := itemStrings(out); len(got) != 3 || got[1] != "1" {
		t.Fatalf("seq = %v", got)
	}
	out = run(t, m, `()`)
	if len(out) != 0 {
		t.Fatalf("empty seq = %v", out)
	}
}

func TestNestedConstructors(t *testing.T) {
	m := fixtures.NewMovieDB()
	q := `createColor(black, <outer><inner x="1">lit { 1 + 1 } eral</inner><empty/></outer>)`
	out := run(t, m, q)
	root := out[0].Node
	kids := core.Children(root, "black")
	if len(kids) != 2 || kids[0].Name() != "inner" || kids[1].Name() != "empty" {
		t.Fatalf("kids = %v", kids)
	}
	sv, _ := core.StringValue(kids[0], "black")
	if sv != "lit 2 eral" {
		t.Fatalf("mixed content = %q", sv)
	}
	if err := m.DB.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultResultColor(t *testing.T) {
	m := fixtures.NewMovieDB()
	// No createColor: the evaluator materializes in its default color.
	out := run(t, m, `<r>{ 1 + 2 }</r>`)
	if len(out) != 1 || !out[0].Node.HasColor("result") {
		t.Fatalf("out = %v", out)
	}
	sv, _ := core.StringValue(out[0].Node, "result")
	if sv != "3" {
		t.Fatalf("value = %q", sv)
	}
}

func TestLessThanStillWorks(t *testing.T) {
	m := fixtures.NewMovieDB()
	// '<' in operator position must remain a comparison.
	out := run(t, m, `for $m in document("x")/{green}descendant::movie
where $m/{green}child::votes < 10 return $m/{green}child::votes`)
	if got := itemStrings(out); len(got) != 1 || got[0] != "9" {
		t.Fatalf("lt results = %v", got)
	}
}

func TestCreateColorOfExistingNodes(t *testing.T) {
	m := fixtures.NewMovieDB()
	out := run(t, m, `createColor(black, document("x")/{blue}descendant::actor[1])`)
	if len(out) != 1 || !m.Node("bette").HasColor("black") {
		t.Fatalf("out = %v", out)
	}
	// bette is now a black child of the document.
	if core.Parent(m.Node("bette"), "black") != m.DB.Document() {
		t.Fatal("black parent should be the document")
	}
	if err := m.DB.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryStringColorLiteralInCreateColor(t *testing.T) {
	m := fixtures.NewMovieDB()
	out := run(t, m, `createColor("jet-black", <x/>)`)
	if !out[0].Node.HasColor("jet-black") {
		t.Fatal("string color literal not applied")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`for $m in`,
		`for $m document("x") return $m`,
		`for $m in document("x") return`,
		`<a>`,
		`<a><b></a></b>`,
		`<a x=1/>`,
		`<a>{ 1 </a>`,
		`if (1) then 2`,
		`let $x = 3 return $x`,
		`for $m in (1,2) order return $m`,
		`createColor(black)`,
	}
	for _, src := range bad {
		if _, err := mcxquery.ParseQuery(src); err == nil {
			// createColor(black) parses fine; it fails at eval time.
			if src == `createColor(black)` {
				ev := mcxquery.NewEvaluator(fixtures.NewMovieDB().DB)
				if _, everr := ev.Query(src); everr == nil {
					t.Errorf("%q should fail at eval", src)
				}
				continue
			}
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestCreateColorBadArg(t *testing.T) {
	m := fixtures.NewMovieDB()
	ev := mcxquery.NewEvaluator(m.DB)
	if _, err := ev.Query(`createColor(1 + 2, <x/>)`); err == nil ||
		!strings.Contains(err.Error(), "color literal") {
		t.Fatalf("want color-literal error, got %v", err)
	}
}

func TestCountMetrics(t *testing.T) {
	q := `
for $mg in document("mdb.xml")/{red}descendant::movie-genre,
    $m in document("mdb.xml")/{red}descendant::movie
where $mg/{red}child::name = "Comedy" and contains($m/{red}child::name, "Eve")
return <m-name> { $m/{red}child::name } </m-name>`
	e, err := mcxquery.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := mcxquery.CountVariableBindings(e); got != 2 {
		t.Fatalf("bindings = %d, want 2", got)
	}
	if got := mcxquery.CountPathExpressions(e); got != 5 {
		t.Fatalf("paths = %d, want 5", got)
	}
}

func TestFLWORStringRendering(t *testing.T) {
	q := `for $m in document("x")/{red}descendant::movie where $m/{red}child::name = "Eve" order by $m/{red}child::name descending return $m`
	e, err := mcxquery.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	for _, frag := range []string{"for $m in", "where", "order by", "descending", "return"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendered FLWOR missing %q: %s", frag, s)
		}
	}
	// Re-parse the rendering.
	if _, err := mcxquery.ParseQuery(s); err != nil {
		t.Fatalf("reparse rendered query: %v", err)
	}
}
