// Package mcxquery implements the MCXQuery language of the paper's Section 4:
// XQuery FLWOR expressions (for, let, where, order by, return) over colored
// path expressions, element constructor expressions whose enclosed
// expressions retain node identities, and the createColor and createCopy
// functions that color and copy constructed results.
//
// Evaluating a query that constructs elements mutates the database: new
// nodes are created and existing nodes gain the constructed color (the
// paper's next-color constructor applied by createColor). A node may occur
// at most once in any colored tree, so reusing the same node twice in one
// constructed tree raises the dynamic error core.ErrDuplicateInTree, exactly
// as in the paper's dupl-problem example.
package mcxquery

import (
	"fmt"
	"strings"

	"colorfulxml/internal/pathexpr"
)

// Clause is one for/let binding clause of a FLWOR expression.
type Clause struct {
	// Let distinguishes "let $v := e" from "for $v in e".
	Let  bool
	Var  string
	Expr pathexpr.Expr
}

func (c Clause) String() string {
	if c.Let {
		return fmt.Sprintf("let $%s := %s", c.Var, c.Expr)
	}
	return fmt.Sprintf("for $%s in %s", c.Var, c.Expr)
}

// OrderKey is one "order by" sort key.
type OrderKey struct {
	Expr pathexpr.Expr
	Desc bool
}

// FLWOR is a for/let/where/order by/return expression.
type FLWOR struct {
	Clauses []Clause
	Where   pathexpr.Expr // nil when absent
	OrderBy []OrderKey
	Return  pathexpr.Expr
}

// ExprNode marks FLWOR as a pathexpr.Expr.
func (*FLWOR) ExprNode() {}

// Subexprs lets pathexpr.Walk descend into the FLWOR.
func (f *FLWOR) Subexprs() []pathexpr.Expr {
	var out []pathexpr.Expr
	for _, c := range f.Clauses {
		out = append(out, c.Expr)
	}
	if f.Where != nil {
		out = append(out, f.Where)
	}
	for _, k := range f.OrderBy {
		out = append(out, k.Expr)
	}
	out = append(out, f.Return)
	return out
}

func (f *FLWOR) String() string {
	var b strings.Builder
	for i, c := range f.Clauses {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(c.String())
	}
	if f.Where != nil {
		fmt.Fprintf(&b, " where %s", f.Where)
	}
	if len(f.OrderBy) > 0 {
		b.WriteString(" order by ")
		for i, k := range f.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Expr.String())
			if k.Desc {
				b.WriteString(" descending")
			}
		}
	}
	fmt.Fprintf(&b, " return %s", f.Return)
	return b.String()
}

// NumBindings returns the number of for/let variable bindings, the metric of
// the paper's Figure 12.
func (f *FLWOR) NumBindings() int { return len(f.Clauses) }

// CtorAttr is a literal attribute of an element constructor.
type CtorAttr struct {
	Name  string
	Value string
}

// ElementCtor is an element constructor expression
// <name attr="v"> content </name>, whose content items are TextCtor literals,
// nested ElementCtors, and enclosed expressions.
type ElementCtor struct {
	Name    string
	Attrs   []CtorAttr
	Content []pathexpr.Expr
}

// ExprNode marks ElementCtor as a pathexpr.Expr.
func (*ElementCtor) ExprNode() {}

// Subexprs lets pathexpr.Walk descend into the constructor content.
func (e *ElementCtor) Subexprs() []pathexpr.Expr { return e.Content }

func (e *ElementCtor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%s", e.Name)
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " %s=%q", a.Name, a.Value)
	}
	if len(e.Content) == 0 {
		b.WriteString("/>")
		return b.String()
	}
	b.WriteString(">")
	for _, c := range e.Content {
		if t, ok := c.(*TextCtor); ok {
			b.WriteString(t.Text)
			continue
		}
		fmt.Fprintf(&b, " { %s } ", c)
	}
	fmt.Fprintf(&b, "</%s>", e.Name)
	return b.String()
}

// TextCtor is literal text content inside an element constructor.
type TextCtor struct{ Text string }

// ExprNode marks TextCtor as a pathexpr.Expr.
func (*TextCtor) ExprNode() {}

func (t *TextCtor) String() string { return fmt.Sprintf("text(%q)", t.Text) }

// IfExpr is "if (cond) then a else b".
type IfExpr struct {
	Cond, Then, Else pathexpr.Expr
}

// ExprNode marks IfExpr as a pathexpr.Expr.
func (*IfExpr) ExprNode() {}

// Subexprs lets pathexpr.Walk descend into the conditional.
func (e *IfExpr) Subexprs() []pathexpr.Expr {
	return []pathexpr.Expr{e.Cond, e.Then, e.Else}
}

func (e *IfExpr) String() string {
	return fmt.Sprintf("if (%s) then %s else %s", e.Cond, e.Then, e.Else)
}

// SeqExpr is a comma sequence of expressions (allowed inside enclosed
// expressions and parentheses).
type SeqExpr struct{ Items []pathexpr.Expr }

// ExprNode marks SeqExpr as a pathexpr.Expr.
func (*SeqExpr) ExprNode() {}

// Subexprs lets pathexpr.Walk descend into the sequence.
func (e *SeqExpr) Subexprs() []pathexpr.Expr { return e.Items }

func (e *SeqExpr) String() string {
	parts := make([]string, len(e.Items))
	for i, x := range e.Items {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CountVariableBindings counts for/let bindings in an expression tree
// (Figure 12 metric).
func CountVariableBindings(e pathexpr.Expr) int {
	n := 0
	pathexpr.Walk(e, func(x pathexpr.Expr) {
		if f, ok := x.(*FLWOR); ok {
			n += len(f.Clauses)
		}
	})
	return n
}

// CountPathExpressions counts path expressions in an expression tree
// (Figure 11 metric).
func CountPathExpressions(e pathexpr.Expr) int {
	return pathexpr.CountPaths(e)
}
