package mcxquery

import "testing"

// FuzzParseQuery feeds arbitrary source text through the lexer and parser.
// Malformed queries must be rejected with an error — never a panic, a hang,
// or a runaway allocation. Seeds cover every syntactic family: colored
// paths, predicates, FLWOR, constructors, conditionals and the failure
// modes (unterminated strings and braces, stray tokens).
func FuzzParseQuery(f *testing.F) {
	for _, src := range []string{
		`document("db")/{red}child::movie`,
		`for $m in document("db")/{red}descendant::movie[contains({red}child::name, "Eve")]
return createColor(black, <m-name>{ $m/{red}child::name }</m-name>)`,
		`for $g in document("db")/{red}child::movie-genres/{red}child::movie-genre
let $n := $g/{red}child::name
where $n = "Comedy"
return <genre>{ $n }</genre>`,
		`if (document("db")/{red}child::a) then 1 else 2`,
		`document("db")/{red}descendant::movie[{green}child::votes > 10]/{red}child::name`,
		`/{red}child::a/{green}parent::b/{blue}ancestor::c`,
		`(1, 2, "three")`,
		`document("db")//{red}movie`,
		`for $x in`,
		`document("db")/{red}child::`,
		`<unclosed>{`,
		`"unterminated`,
		`{}{}{}`,
		``,
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseQuery(src)
		if err == nil && e == nil {
			t.Fatalf("ParseQuery(%q) returned neither expression nor error", src)
		}
	})
}
