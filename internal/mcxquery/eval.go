package mcxquery

import (
	"fmt"
	"sort"
	"strings"

	"colorfulxml/internal/core"
	"colorfulxml/internal/pathexpr"
)

// Evaluator evaluates MCXQuery expressions against an MCT database.
//
// Evaluation of constructor expressions follows the paper's Section 4.2:
// enclosed expressions retain node identities; new nodes are created only by
// the constructor itself (and by createCopy); createColor adds a color to
// every node of its argument, materializing constructed trees as new colored
// trees attached under the document node.
type Evaluator struct {
	DB *core.Database
	// DefaultResultColor is applied when a constructed element escapes the
	// query without an explicit createColor (plain-XQuery usage). Defaults
	// to "result".
	DefaultResultColor core.Color
	// DefaultColor, when set, is used by location steps without a color
	// specification when no color can be inherited.
	DefaultColor core.Color
}

// NewEvaluator creates an evaluator with default settings.
func NewEvaluator(db *core.Database) *Evaluator {
	return &Evaluator{DB: db, DefaultResultColor: "result"}
}

// pending is an unmaterialized constructed element: pure data until
// createColor assigns its first color and creates the nodes.
type pending struct {
	name    string
	attrs   []CtorAttr
	content []pathexpr.Item // node items, atomic items, or nested pendings
}

// pendingOf extracts a pending constructor from an item, if present.
func pendingOf(it pathexpr.Item) (*pending, bool) {
	p, ok := it.Atom.(*pending)
	return p, ok
}

// Query parses and evaluates src, returning the result sequence.
func (ev *Evaluator) Query(src string) (pathexpr.Sequence, error) {
	e, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return ev.Eval(e)
}

// Eval evaluates a parsed expression. Constructed elements that were never
// passed through createColor are materialized in DefaultResultColor.
func (ev *Evaluator) Eval(e pathexpr.Expr) (pathexpr.Sequence, error) {
	env := ev.newEnv(nil)
	out, err := pathexpr.Eval(env, e)
	if err != nil {
		return nil, err
	}
	return ev.finalize(out)
}

// EvalEnv evaluates with pre-bound variables.
func (ev *Evaluator) EvalEnv(e pathexpr.Expr, vars map[string]pathexpr.Sequence) (pathexpr.Sequence, error) {
	env := ev.newEnv(vars)
	out, err := pathexpr.Eval(env, e)
	if err != nil {
		return nil, err
	}
	return ev.finalize(out)
}

func (ev *Evaluator) newEnv(vars map[string]pathexpr.Sequence) *pathexpr.Env {
	return &pathexpr.Env{
		DB:           ev.DB,
		Vars:         vars,
		DefaultColor: ev.DefaultColor,
		Ext:          ev.evalExt,
	}
}

// ExtEval exposes the extension-evaluation hook so other packages (the
// update language) can build pathexpr environments that understand FLWOR,
// constructors, createColor and createCopy.
func (ev *Evaluator) ExtEval() func(*pathexpr.Env, pathexpr.Expr, pathexpr.Item, int, int) (pathexpr.Sequence, bool, error) {
	return ev.evalExt
}

// Materialize converts an item for placement into a colored tree: a pending
// constructor becomes a real node tree with first color c (attached under
// parent when parent is non-nil), a node item is returned unchanged, and an
// atomic item yields nil (the caller renders it as text).
func (ev *Evaluator) Materialize(it pathexpr.Item, c core.Color, parent *core.Node) (*core.Node, error) {
	ev.DB.AddDatabaseColor(c)
	if it.Node != nil {
		return it.Node, nil
	}
	if p, ok := pendingOf(it); ok {
		return ev.materialize(p, c, parent)
	}
	return nil, nil
}

// finalize materializes any pending constructors that escaped without an
// explicit createColor.
func (ev *Evaluator) finalize(seq pathexpr.Sequence) (pathexpr.Sequence, error) {
	needs := false
	for _, it := range seq {
		if _, ok := pendingOf(it); ok {
			needs = true
			break
		}
	}
	if !needs {
		return seq, nil
	}
	c := ev.DefaultResultColor
	if c == "" {
		c = "result"
	}
	return ev.applyColor(c, seq)
}

// evalExt evaluates the extension expressions and functions.
func (ev *Evaluator) evalExt(env *pathexpr.Env, e pathexpr.Expr, item pathexpr.Item, pos, size int) (pathexpr.Sequence, bool, error) {
	switch x := e.(type) {
	case *FLWOR:
		out, err := ev.evalFLWOR(env, x, item, pos, size)
		return out, true, err
	case *IfExpr:
		cond, err := pathexpr.EvalItem(env, x.Cond, item, pos, size)
		if err != nil {
			return nil, true, err
		}
		b, err := pathexpr.EffectiveBool(cond)
		if err != nil {
			return nil, true, err
		}
		branch := x.Then
		if !b {
			branch = x.Else
		}
		out, err := pathexpr.EvalItem(env, branch, item, pos, size)
		return out, true, err
	case *SeqExpr:
		var out pathexpr.Sequence
		for _, sub := range x.Items {
			v, err := pathexpr.EvalItem(env, sub, item, pos, size)
			if err != nil {
				return nil, true, err
			}
			out = append(out, v...)
		}
		return out, true, nil
	case *TextCtor:
		return pathexpr.Sequence{pathexpr.AtomItem(x.Text)}, true, nil
	case *ElementCtor:
		out, err := ev.evalCtor(env, x, item, pos, size)
		return out, true, err
	case *pathexpr.Call:
		switch x.Name {
		case "createColor":
			out, err := ev.evalCreateColor(env, x, item, pos, size)
			return out, true, err
		case "createCopy":
			out, err := ev.evalCreateCopy(env, x, item, pos, size)
			return out, true, err
		}
		return nil, false, nil
	default:
		return nil, false, nil
	}
}

func (ev *Evaluator) evalFLWOR(env *pathexpr.Env, f *FLWOR, item pathexpr.Item, pos, size int) (pathexpr.Sequence, error) {
	type tuple struct{ env *pathexpr.Env }
	tuples := []tuple{{env: env}}
	for _, cl := range f.Clauses {
		var next []tuple
		for _, tp := range tuples {
			v, err := pathexpr.EvalItem(tp.env, cl.Expr, item, pos, size)
			if err != nil {
				return nil, err
			}
			if cl.Let {
				next = append(next, tuple{env: tp.env.Bind(cl.Var, v)})
				continue
			}
			for _, it := range v {
				next = append(next, tuple{env: tp.env.Bind(cl.Var, pathexpr.Sequence{it})})
			}
		}
		tuples = next
	}
	if f.Where != nil {
		var kept []tuple
		for _, tp := range tuples {
			v, err := pathexpr.EvalItem(tp.env, f.Where, item, pos, size)
			if err != nil {
				return nil, err
			}
			b, err := pathexpr.EffectiveBool(v)
			if err != nil {
				return nil, err
			}
			if b {
				kept = append(kept, tp)
			}
		}
		tuples = kept
	}
	if len(f.OrderBy) > 0 {
		type keyed struct {
			tp   tuple
			keys []any
		}
		rows := make([]keyed, len(tuples))
		for i, tp := range tuples {
			keys := make([]any, len(f.OrderBy))
			for j, k := range f.OrderBy {
				v, err := pathexpr.EvalItem(tp.env, k.Expr, item, pos, size)
				if err != nil {
					return nil, err
				}
				if len(v) > 0 {
					keys[j] = atomOf(v[0])
				}
			}
			rows[i] = keyed{tp: tp, keys: keys}
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for j, k := range f.OrderBy {
				cmp := compareAny(rows[a].keys[j], rows[b].keys[j])
				if cmp == 0 {
					continue
				}
				if k.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		for i := range rows {
			tuples[i] = rows[i].tp
		}
	}
	var out pathexpr.Sequence
	for _, tp := range tuples {
		v, err := pathexpr.EvalItem(tp.env, f.Return, item, pos, size)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

// evalCtor evaluates an element constructor into a pending tree. Enclosed
// expressions retain node identities (no copying).
func (ev *Evaluator) evalCtor(env *pathexpr.Env, c *ElementCtor, item pathexpr.Item, pos, size int) (pathexpr.Sequence, error) {
	p := &pending{name: c.Name, attrs: c.Attrs}
	for _, sub := range c.Content {
		v, err := pathexpr.EvalItem(env, sub, item, pos, size)
		if err != nil {
			return nil, err
		}
		p.content = append(p.content, v...)
	}
	return pathexpr.Sequence{pathexpr.AtomItem(p)}, nil
}

// evalCreateColor implements createColor(color, expr): it adds the color to
// every node in the value of expr, materializing pending constructed trees
// as new colored trees attached under the document node, and returns the
// colored items.
func (ev *Evaluator) evalCreateColor(env *pathexpr.Env, call *pathexpr.Call, item pathexpr.Item, pos, size int) (pathexpr.Sequence, error) {
	if len(call.Args) != 2 {
		return nil, fmt.Errorf("mcxquery: createColor expects 2 arguments, got %d", len(call.Args))
	}
	color, err := colorArg(call.Args[0])
	if err != nil {
		return nil, err
	}
	v, err := pathexpr.EvalItem(env, call.Args[1], item, pos, size)
	if err != nil {
		return nil, err
	}
	return ev.applyColor(color, v)
}

func (ev *Evaluator) applyColor(color core.Color, v pathexpr.Sequence) (pathexpr.Sequence, error) {
	ev.DB.AddDatabaseColor(color)
	out := make(pathexpr.Sequence, 0, len(v))
	for _, it := range v {
		switch {
		case it.Node != nil:
			if err := ev.colorExisting(it.Node, color, ev.DB.Document()); err != nil {
				return nil, err
			}
			out = append(out, pathexpr.NodeItem(it.Node, color))
		default:
			if p, ok := pendingOf(it); ok {
				n, err := ev.materialize(p, color, ev.DB.Document())
				if err != nil {
					return nil, err
				}
				out = append(out, pathexpr.NodeItem(n, color))
				continue
			}
			out = append(out, it) // atomic values pass through uncolored
		}
	}
	return out, nil
}

// colorExisting gives an existing node the new color and attaches it under
// parent in that color. A node already carrying the color would occur twice
// in the colored tree: the paper's dynamic error.
func (ev *Evaluator) colorExisting(n *core.Node, c core.Color, parent *core.Node) error {
	if n.HasColor(c) {
		return fmt.Errorf("mcxquery: node %v already in colored tree %q: %w", n, c, core.ErrDuplicateInTree)
	}
	if err := ev.DB.AddColor(n, c); err != nil {
		return err
	}
	return ev.DB.Append(parent, n, c)
}

// materialize creates the element tree for a pending constructor with first
// color c, attached under parent.
func (ev *Evaluator) materialize(p *pending, c core.Color, parent *core.Node) (*core.Node, error) {
	el, err := ev.DB.NewElement(p.name, c)
	if err != nil {
		return nil, err
	}
	for _, a := range p.attrs {
		if _, err := ev.DB.SetAttribute(el, a.Name, a.Value); err != nil {
			return nil, err
		}
	}
	var textRun strings.Builder
	flushText := func() error {
		if textRun.Len() == 0 {
			return nil
		}
		_, err := ev.DB.AppendText(el, textRun.String())
		textRun.Reset()
		return err
	}
	for _, it := range p.content {
		switch {
		case it.Node != nil:
			if err := flushText(); err != nil {
				return nil, err
			}
			switch it.Node.Kind() {
			case core.KindAttribute:
				if _, err := ev.DB.SetAttribute(el, it.Node.Name(), it.Node.Value()); err != nil {
					return nil, err
				}
			case core.KindText:
				if _, err := ev.DB.AppendText(el, it.Node.Value()); err != nil {
					return nil, err
				}
			default:
				if err := ev.colorExisting(it.Node, c, el); err != nil {
					return nil, err
				}
			}
		default:
			if sub, ok := pendingOf(it); ok {
				if err := flushText(); err != nil {
					return nil, err
				}
				if _, err := ev.materialize(sub, c, el); err != nil {
					return nil, err
				}
				continue
			}
			textRun.WriteString(itemText(it))
		}
	}
	if err := flushText(); err != nil {
		return nil, err
	}
	if parent != nil {
		if err := ev.DB.Append(parent, el, c); err != nil {
			return nil, err
		}
	}
	return el, nil
}

// evalCreateCopy implements createCopy(expr): node items become deep pending
// copies (fresh identities when later colored); atomic items pass through.
func (ev *Evaluator) evalCreateCopy(env *pathexpr.Env, call *pathexpr.Call, item pathexpr.Item, pos, size int) (pathexpr.Sequence, error) {
	if len(call.Args) != 1 {
		return nil, fmt.Errorf("mcxquery: createCopy expects 1 argument, got %d", len(call.Args))
	}
	v, err := pathexpr.EvalItem(env, call.Args[0], item, pos, size)
	if err != nil {
		return nil, err
	}
	out := make(pathexpr.Sequence, 0, len(v))
	for _, it := range v {
		if it.Node == nil {
			out = append(out, it)
			continue
		}
		c := it.Color
		if c == "" {
			colors := it.Node.Colors()
			if len(colors) == 0 {
				return nil, fmt.Errorf("mcxquery: createCopy of colorless node %v", it.Node)
			}
			c = colors[0]
		}
		p, err := copyToPending(it.Node, c)
		if err != nil {
			return nil, err
		}
		out = append(out, pathexpr.AtomItem(p))
	}
	return out, nil
}

// copyToPending converts a node's subtree in color c to a pending tree.
func copyToPending(n *core.Node, c core.Color) (*pending, error) {
	switch n.Kind() {
	case core.KindElement:
		p := &pending{name: n.Name()}
		for _, a := range n.Attributes() {
			p.attrs = append(p.attrs, CtorAttr{Name: a.Name(), Value: a.Value()})
		}
		for _, ch := range core.Children(n, c) {
			if ch.Kind() == core.KindText {
				p.content = append(p.content, pathexpr.AtomItem(ch.Value()))
				continue
			}
			sub, err := copyToPending(ch, c)
			if err != nil {
				return nil, err
			}
			p.content = append(p.content, pathexpr.AtomItem(sub))
		}
		return p, nil
	case core.KindText:
		return &pending{name: "", content: []pathexpr.Item{pathexpr.AtomItem(n.Value())}}, nil
	default:
		return nil, fmt.Errorf("mcxquery: createCopy of %v unsupported", n)
	}
}

// colorArg resolves createColor's first argument: a bare color name (parsed
// as a single child step) or a string literal.
func colorArg(e pathexpr.Expr) (core.Color, error) {
	switch x := e.(type) {
	case *pathexpr.Literal:
		if s, ok := x.Val.(string); ok && s != "" {
			return core.Color(s), nil
		}
	case *pathexpr.PathExpr:
		if x.Doc == "" && x.Var == "" && !x.FromRoot && len(x.Steps) == 1 {
			s := x.Steps[0]
			if s.Color == "" && s.Axis == pathexpr.AxisChild &&
				s.Test.Kind == pathexpr.TestName && len(s.Preds) == 0 {
				return core.Color(s.Test.Name), nil
			}
		}
	}
	return "", fmt.Errorf("mcxquery: createColor: first argument must be a color literal, got %s", e)
}

// itemText renders an item's text for constructor content.
func itemText(it pathexpr.Item) string { return pathexpr.ItemString(it) }

func atomOf(it pathexpr.Item) any {
	if it.Node == nil {
		return it.Atom
	}
	c := it.Color
	if c == "" {
		colors := it.Node.Colors()
		if len(colors) > 0 {
			c = colors[0]
		}
	}
	v, _ := core.TypedValue(it.Node, c)
	return v
}

// compareAny orders two atomized order-by keys: numbers before strings, nil
// first.
func compareAny(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	af, aok := toF(a)
	bf, bok := toF(b)
	switch {
	case aok && bok:
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case aok:
		return -1
	case bok:
		return 1
	}
	as, bs := fmt.Sprint(a), fmt.Sprint(b)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func toF(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}
