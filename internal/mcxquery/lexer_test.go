package mcxquery

import (
	"testing"

	"colorfulxml/internal/pathexpr"
)

func kinds(toks []pathexpr.Token) []pathexpr.TokKind {
	out := make([]pathexpr.TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexLessThanVsConstructor(t *testing.T) {
	// Operator position: '<' is less-than.
	toks, err := LexQuery(`$a < $b`)
	if err != nil {
		t.Fatal(err)
	}
	want := []pathexpr.TokKind{pathexpr.TokVar, pathexpr.TokLt, pathexpr.TokVar, pathexpr.TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
	// Operand position after 'return': '<' opens a constructor.
	toks, err = LexQuery(`return <a/>`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == pathexpr.TokTagOpen && tk.Text == "a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no TagOpen in %v", toks)
	}
}

func TestLexNestedBracesInConstructor(t *testing.T) {
	// Color braces inside an enclosed expression must not end the enclosure.
	toks, err := LexQuery(`<r>{ $m/{red}child::name }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	var opens, closes int
	for _, tk := range toks {
		switch tk.Kind {
		case pathexpr.TokLBrace:
			opens++
		case pathexpr.TokRBrace:
			closes++
		}
	}
	if opens != 2 || closes != 2 {
		t.Fatalf("braces: %d open / %d close", opens, closes)
	}
	// The last non-EOF token must be the end tag.
	if toks[len(toks)-2].Kind != pathexpr.TokTagEnd {
		t.Fatalf("tokens end with %v", toks[len(toks)-2])
	}
}

func TestLexRawTextAndEntities(t *testing.T) {
	toks, err := LexQuery(`<r>a &amp; b</r>`)
	if err != nil {
		t.Fatal(err)
	}
	var raw string
	for _, tk := range toks {
		if tk.Kind == pathexpr.TokRawText {
			raw = tk.Text
		}
	}
	if raw != "a & b" {
		t.Fatalf("raw = %q", raw)
	}
}

func TestLexWhitespaceOnlyContentDropped(t *testing.T) {
	toks, err := LexQuery("<r>   <s/>   </r>")
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range toks {
		if tk.Kind == pathexpr.TokRawText {
			t.Fatalf("whitespace-only text leaked: %q", tk.Text)
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`<r>`,            // unterminated constructor
		`<r`,             // unterminated start tag
		`<r></q>`,        // mismatched end tag
		`<r>}</r>`,       // stray brace in content
		`<r>&bogus;</r>`, // bad entity
		`<r><</r>`,       // bare '<' in content
		`return <a>text`, // EOF inside content
	}
	for _, src := range bad {
		if _, err := LexQuery(src); err == nil {
			t.Errorf("LexQuery(%q) should fail", src)
		}
	}
}

func TestLexSelfCloseReturnsToExpr(t *testing.T) {
	toks, err := LexQuery(`(<a/>, <b/>)`)
	if err != nil {
		t.Fatal(err)
	}
	tags := 0
	for _, tk := range toks {
		if tk.Kind == pathexpr.TokTagSelfClose {
			tags++
		}
	}
	if tags != 2 {
		t.Fatalf("self-closing tags = %d, want 2", tags)
	}
}

func TestLexAttributesInTag(t *testing.T) {
	toks, err := LexQuery(`<r a="1" b-c="x y"/>`)
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	for _, tk := range toks {
		if tk.Kind == pathexpr.TokString {
			strs = append(strs, tk.Text)
		}
	}
	if len(strs) != 2 || strs[0] != "1" || strs[1] != "x y" {
		t.Fatalf("attr strings = %v", strs)
	}
}

func TestLexKeywordOperandPositions(t *testing.T) {
	// '<' after every operand keyword opens a tag.
	for _, kw := range []string{"return", "then", "else", "satisfies", "in"} {
		src := kw + ` <x/>`
		toks, err := LexQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		ok := false
		for _, tk := range toks {
			if tk.Kind == pathexpr.TokTagOpen {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%q: no TagOpen", src)
		}
	}
	// ...but after a closing paren it is a comparison.
	toks, err := LexQuery(`count($x) < 3`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range toks {
		if tk.Kind == pathexpr.TokTagOpen {
			t.Fatal("comparison lexed as constructor")
		}
	}
	_ = toks
}
