package engine

// Plan re-entrancy: a compiled plan held by a prepared statement or the plan
// cache is a prototype, never executed directly. Each execution clones the
// operator tree — configuration copied, run state zeroed, children cloned
// recursively — so two sessions running the same Stmt concurrently never
// share iteration state. Clones are cheap (a handful of small struct
// allocations per plan node, no store access) next to the parse+compile they
// replace.
//
// Every Clone below lists the operator's configuration fields explicitly and
// omits its run-state fields, mirroring the config/state split in each
// operator's declaration. Config slices (Project.Cols, PathScan.Steps) are
// shared, not copied: the compiler never mutates a plan after building it.

// Clone implements Op.
func (o *ScanTag) Clone() Op {
	return &ScanTag{Color: o.Color, Tag: o.Tag, Part: o.Part, Of: o.Of}
}

// Clone implements Op.
func (o *EqContent) Clone() Op {
	return &EqContent{Color: o.Color, Tag: o.Tag, Value: o.Value}
}

// Clone implements Op.
func (o *ContainsScan) Clone() Op {
	return &ContainsScan{Color: o.Color, Tag: o.Tag, Pred: o.Pred, Part: o.Part, Of: o.Of}
}

// Clone implements Op.
func (o *AttrEq) Clone() Op {
	return &AttrEq{Color: o.Color, Name: o.Name, Value: o.Value}
}

// Clone implements Op.
func (o *Filter) Clone() Op {
	return &Filter{Input: o.Input.Clone(), Col: o.Col, Pred: o.Pred}
}

// Clone implements Op.
func (o *AttrFilter) Clone() Op {
	return &AttrFilter{Input: o.Input.Clone(), Col: o.Col, Name: o.Name, Pred: o.Pred}
}

// Clone implements Op.
func (o *StructJoin) Clone() Op {
	return &StructJoin{
		Anc:     o.Anc.Clone(),
		Desc:    o.Desc.Clone(),
		AncCol:  o.AncCol,
		DescCol: o.DescCol,
		Axis:    o.Axis,
	}
}

// Clone implements Op.
func (o *ExistsJoin) Clone() Op {
	return &ExistsJoin{
		Input:       o.Input.Clone(),
		Probe:       o.Probe.Clone(),
		Col:         o.Col,
		ProbeCol:    o.ProbeCol,
		Axis:        o.Axis,
		InputIsDesc: o.InputIsDesc,
	}
}

// Clone implements Op.
func (o *CrossColor) Clone() Op {
	return &CrossColor{Input: o.Input.Clone(), Col: o.Col, To: o.To}
}

// Clone implements Op.
func (o *ValueJoin) Clone() Op {
	return &ValueJoin{
		Left:     o.Left.Clone(),
		Right:    o.Right.Clone(),
		LeftCol:  o.LeftCol,
		RightCol: o.RightCol,
		LeftKey:  o.LeftKey,
		RightKey: o.RightKey,
	}
}

// Clone implements Op.
func (o *IDJoin) Clone() Op {
	return &IDJoin{
		Left:     o.Left.Clone(),
		Right:    o.Right.Clone(),
		LeftCol:  o.LeftCol,
		RightCol: o.RightCol,
	}
}

// Clone implements Op.
func (o *NLJoin) Clone() Op {
	return &NLJoin{
		Left:     o.Left.Clone(),
		Right:    o.Right.Clone(),
		LeftCol:  o.LeftCol,
		RightCol: o.RightCol,
		Kind:     o.Kind,
		Numeric:  o.Numeric,
	}
}

// Clone implements Op.
func (o *Dedup) Clone() Op {
	return &Dedup{Input: o.Input.Clone(), Col: o.Col}
}

// Clone implements Op.
func (o *DedupContent) Clone() Op {
	return &DedupContent{Input: o.Input.Clone(), Col: o.Col}
}

// Clone implements Op.
func (o *DedupAttr) Clone() Op {
	return &DedupAttr{Input: o.Input.Clone(), Col: o.Col, Name: o.Name}
}

// Clone implements Op.
func (o *Project) Clone() Op {
	return &Project{Input: o.Input.Clone(), Cols: o.Cols}
}

// Clone implements Op.
func (o *SortStart) Clone() Op {
	return &SortStart{Input: o.Input.Clone(), Col: o.Col}
}

// Clone implements Op.
func (o *PathScan) Clone() Op {
	return &PathScan{Color: o.Color, Steps: o.Steps}
}

// Clone implements Op.
func (o *Exchange) Clone() Op {
	parts := make([]Op, len(o.Parts))
	for i, p := range o.Parts {
		parts[i] = p.Clone()
	}
	return &Exchange{Parts: parts}
}
