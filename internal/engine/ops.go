package engine

import (
	"fmt"
	"sort"
	"strings"

	"colorfulxml/internal/core"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

// Operator implementation patterns, shared by everything below:
//
//   - Scans fill the output batch straight off their posting list, polling
//     cancellation per candidate (ctx.poll is counter-based and nearly free).
//   - Materializing operators (AttrEq, SortStart, PathScan) buffer at Open
//     and emit with a single bulk appendRows per NextBatch.
//   - Streaming filters pull their input through a batchCursor and copy
//     surviving rows into the output batch.
//   - Joins with fan-out (one input row can emit many output rows) append
//     directly to the output batch while it has room and queue the overflow
//     — copied into the query arena, since batch rows are transient — in a
//     pending list drained first on the next call, preserving emit order.

// ScanTag is an index scan: all structural nodes with a tag in one color, as
// single-column rows in start order. It streams straight off the tag index
// posting list, resolving one structural record per row.
type ScanTag struct {
	Color core.Color
	Tag   string
	// Part/Of select the Part-th of Of contiguous slices of the posting list
	// for parallel scans under an Exchange. Of <= 1 scans the whole list.
	Part, Of int

	refs []uint64
	pos  int
}

// Open implements Op.
func (o *ScanTag) Open(ctx *Ctx) error {
	o.refs = partition(ctx.S.TagRefs(o.Color, o.Tag), o.Part, o.Of)
	o.pos = 0
	return nil
}

// NextBatch implements Op.
func (o *ScanTag) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for o.pos < len(o.refs) && !out.Full() {
		if err := ctx.poll(); err != nil {
			return err
		}
		sn, err := ctx.S.StructByRef(o.refs[o.pos], o.Color)
		if err != nil {
			return err
		}
		o.pos++
		out.appendNode(sn)
	}
	return nil
}

// Close implements Op.
func (o *ScanTag) Close(ctx *Ctx) error {
	o.refs = nil
	return nil
}

// Children implements Op.
func (o *ScanTag) Children() []Op { return nil }

func (o *ScanTag) String() string {
	s := fmt.Sprintf("ScanTag{%s}%s", o.Color, o.Tag)
	if o.Of > 1 {
		s += fmt.Sprintf(" part %d/%d", o.Part+1, o.Of)
	}
	return s
}

// EqContent is a content-index lookup: nodes of a tag whose content equals a
// value, streamed off the content index posting list.
type EqContent struct {
	Color core.Color
	Tag   string
	Value string

	refs []uint64
	pos  int
}

// Open implements Op.
func (o *EqContent) Open(ctx *Ctx) error {
	o.refs = ctx.S.ContentRefs(o.Color, o.Tag, o.Value)
	o.pos = 0
	return nil
}

// NextBatch implements Op.
func (o *EqContent) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for o.pos < len(o.refs) && !out.Full() {
		if err := ctx.poll(); err != nil {
			return err
		}
		sn, err := ctx.S.StructByRef(o.refs[o.pos], o.Color)
		if err != nil {
			return err
		}
		o.pos++
		out.appendNode(sn)
	}
	return nil
}

// Close implements Op.
func (o *EqContent) Close(ctx *Ctx) error {
	o.refs = nil
	return nil
}

// Children implements Op.
func (o *EqContent) Children() []Op { return nil }

func (o *EqContent) String() string {
	return fmt.Sprintf("EqContent{%s}%s=%q", o.Color, o.Tag, o.Value)
}

// ContainsScan scans a tag and keeps nodes whose content satisfies the
// predicate; each candidate costs a content read (no index can serve
// contains()).
type ContainsScan struct {
	Color core.Color
	Tag   string
	Pred  Pred
	// Part/Of partition the scan for an Exchange, as in ScanTag.
	Part, Of int

	refs []uint64
	pos  int
}

// Open implements Op.
func (o *ContainsScan) Open(ctx *Ctx) error {
	o.refs = partition(ctx.S.TagRefs(o.Color, o.Tag), o.Part, o.Of)
	o.pos = 0
	return nil
}

// NextBatch implements Op.
func (o *ContainsScan) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for o.pos < len(o.refs) && !out.Full() {
		// A selective predicate can reject arbitrarily many candidates per
		// emitted row, so the scan polls cancellation per candidate.
		if err := ctx.poll(); err != nil {
			return err
		}
		sn, err := ctx.S.StructByRef(o.refs[o.pos], o.Color)
		if err != nil {
			return err
		}
		o.pos++
		ctx.addContentReads(o, 1)
		content, err := ctx.S.ContentOf(sn.Elem)
		if err != nil {
			return err
		}
		ok, err := o.Pred.Eval(content)
		if err != nil {
			return err
		}
		if ok {
			out.appendNode(sn)
		}
	}
	return nil
}

// Close implements Op.
func (o *ContainsScan) Close(ctx *Ctx) error {
	o.refs = nil
	return nil
}

// Children implements Op.
func (o *ContainsScan) Children() []Op { return nil }

func (o *ContainsScan) String() string {
	s := fmt.Sprintf("ContainsScan{%s}%s[%s]", o.Color, o.Tag, o.Pred)
	if o.Of > 1 {
		s += fmt.Sprintf(" part %d/%d", o.Part+1, o.Of)
	}
	return s
}

// AttrEq is an attribute-index lookup producing the matching elements'
// structural nodes in one color. The attribute index yields element ids in
// no particular order, so the (small) result is buffered and start-sorted.
type AttrEq struct {
	Color core.Color
	Name  string
	Value string

	rows []Row
	pos  int
	held int
}

// Open implements Op.
func (o *AttrEq) Open(ctx *Ctx) error {
	ids := ctx.S.EqAttr(o.Name, o.Value)
	o.rows = nil
	o.pos = 0
	for _, id := range ids {
		sn, ok, err := ctx.S.StructOf(id, o.Color)
		if err != nil {
			return err
		}
		if ok {
			o.rows = append(o.rows, Row{sn})
		}
	}
	sort.Slice(o.rows, func(i, j int) bool { return o.rows[i][0].Start < o.rows[j][0].Start })
	o.held = len(o.rows)
	ctx.hold(o, o.held)
	return nil
}

// NextBatch implements Op: a bulk emit of the buffered rows (the per-batch
// cancellation check in pullBatch suffices — there is no per-row work here).
func (o *AttrEq) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	o.pos += out.appendRows(o.rows[o.pos:])
	return nil
}

// Close implements Op.
func (o *AttrEq) Close(ctx *Ctx) error {
	ctx.release(o.held)
	o.held = 0
	o.rows = nil
	return nil
}

// Children implements Op.
func (o *AttrEq) Children() []Op { return nil }

func (o *AttrEq) String() string {
	return fmt.Sprintf("AttrEq{%s}@%s=%q", o.Color, o.Name, o.Value)
}

// Filter keeps rows whose column's content satisfies the predicate.
type Filter struct {
	Input Op
	Col   int
	Pred  Pred

	in batchCursor
}

// Open implements Op.
func (o *Filter) Open(ctx *Ctx) error { return o.in.open(ctx, o.Input) }

// NextBatch implements Op.
func (o *Filter) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.addContentReads(o, 1)
		content, err := ctx.S.ContentOf(r[o.Col].Elem)
		if err != nil {
			return err
		}
		keep, err := o.Pred.Eval(content)
		if err != nil {
			return err
		}
		if keep {
			out.AppendRow(r)
		}
	}
	return nil
}

// Close implements Op.
func (o *Filter) Close(ctx *Ctx) error {
	o.in.close(ctx)
	return o.Input.Close(ctx)
}

// Children implements Op.
func (o *Filter) Children() []Op { return []Op{o.Input} }

func (o *Filter) String() string { return fmt.Sprintf("Filter[col %d %s]", o.Col, o.Pred) }

// AttrFilter keeps rows whose column's attribute satisfies the predicate.
type AttrFilter struct {
	Input Op
	Col   int
	Name  string
	Pred  Pred

	in batchCursor
}

// Open implements Op.
func (o *AttrFilter) Open(ctx *Ctx) error { return o.in.open(ctx, o.Input) }

// NextBatch implements Op.
func (o *AttrFilter) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.addContentReads(o, 1)
		e, err := ctx.S.Elem(r[o.Col].Elem)
		if err != nil {
			return err
		}
		keep, err := o.Pred.Eval(e.Attr(o.Name))
		if err != nil {
			return err
		}
		if keep {
			out.AppendRow(r)
		}
	}
	return nil
}

// Close implements Op.
func (o *AttrFilter) Close(ctx *Ctx) error {
	o.in.close(ctx)
	return o.Input.Close(ctx)
}

// Children implements Op.
func (o *AttrFilter) Children() []Op { return []Op{o.Input} }

func (o *AttrFilter) String() string {
	return fmt.Sprintf("AttrFilter[col %d @%s %s]", o.Col, o.Name, o.Pred)
}

// StructJoin joins two subplans structurally: the AncCol column of Anc rows
// must be an ancestor (or parent) of the DescCol column of Desc rows. Output
// rows are anc-row ++ desc-row.
//
// The ancestor side is the build side: it is materialized into a
// nearest-enclosing interval index (same-color intervals nest or are
// disjoint, so each descendant's ancestors lie on one enclosing chain found
// by binary search). The descendant side streams.
type StructJoin struct {
	Anc     Op
	Desc    Op
	AncCol  int
	DescCol int
	Axis    join.Axis

	ix      *ancIndex
	in      batchCursor
	pending []Row
	held    int
}

// Open implements Op.
func (o *StructJoin) Open(ctx *Ctx) error {
	ancRows, err := gather(ctx, o, o.Anc)
	if err != nil {
		return err
	}
	o.held = len(ancRows)
	o.ix = buildAncIndex(ancRows, o.AncCol)
	o.pending = nil
	return o.in.open(ctx, o.Desc)
}

// NextBatch implements Op.
func (o *StructJoin) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		if len(o.pending) > 0 {
			o.pending = o.pending[out.appendRows(o.pending):]
			continue
		}
		d, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		dn := d[o.DescCol]
		for _, hi := range o.ix.containing(dn, o.Axis == join.ParentChild) {
			ctx.addStructJoins(o, 1)
			for _, ar := range o.ix.byStart[o.ix.nodes[hi].Start] {
				if !out.Full() && len(o.pending) == 0 {
					out.appendConcat(ar, d)
				} else {
					o.pending = append(o.pending, ctx.concatRow(ar, d))
				}
			}
		}
	}
	return nil
}

// Close implements Op.
func (o *StructJoin) Close(ctx *Ctx) error {
	ctx.release(o.held)
	o.held = 0
	o.ix = nil
	o.pending = nil
	o.in.close(ctx)
	err1 := o.Anc.Close(ctx)
	err2 := o.Desc.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Children implements Op.
func (o *StructJoin) Children() []Op { return []Op{o.Anc, o.Desc} }

func (o *StructJoin) String() string {
	axis := "ancestor-descendant"
	if o.Axis == join.ParentChild {
		axis = "parent-child"
	}
	return fmt.Sprintf("StructJoin[%s, anc col %d, desc col %d]", axis, o.AncCol, o.DescCol)
}

// ExistsJoin is a structural semi-join: keep Input rows whose column has a
// descendant (or child/ancestor/parent, per Axis and Dir) in Probe's column.
// The probe side is materialized into an interval index; Input streams, with
// one decision memoized per distinct input node.
type ExistsJoin struct {
	Input    Op
	Probe    Op
	Col      int
	ProbeCol int
	Axis     join.Axis
	// InputIsDesc inverts the direction: keep Input rows whose column HAS AN
	// ANCESTOR in Probe.
	InputIsDesc bool

	ix            *ancIndex       // when InputIsDesc: probe nodes as ancestors
	probeNodes    []storage.SNode // otherwise: distinct probe nodes, start order
	probeByParent map[int64][]int // otherwise, ParentChild: probe indexes by ParentStart
	decided       map[int64]bool
	in            batchCursor
	held          int
}

// Open implements Op.
func (o *ExistsJoin) Open(ctx *Ctx) error {
	probeRows, err := gather(ctx, o, o.Probe)
	if err != nil {
		return err
	}
	o.held = len(probeRows)
	o.decided = make(map[int64]bool)
	o.ix = nil
	o.probeNodes = nil
	o.probeByParent = nil
	if o.InputIsDesc {
		o.ix = buildAncIndex(probeRows, o.ProbeCol)
	} else {
		seen := make(map[int64]bool, len(probeRows))
		for _, r := range probeRows {
			sn := r[o.ProbeCol]
			if !seen[sn.Start] {
				seen[sn.Start] = true
				o.probeNodes = append(o.probeNodes, sn)
			}
		}
		join.SortByStart(o.probeNodes)
		if o.Axis == join.ParentChild {
			o.probeByParent = make(map[int64][]int, len(o.probeNodes))
			for i, sn := range o.probeNodes {
				o.probeByParent[sn.ParentStart] = append(o.probeByParent[sn.ParentStart], i)
			}
		}
	}
	return o.in.open(ctx, o.Input)
}

// match decides whether one input node has a structural partner in the probe
// set.
func (o *ExistsJoin) match(sn storage.SNode) bool {
	if o.InputIsDesc {
		return len(o.ix.containing(sn, o.Axis == join.ParentChild)) > 0
	}
	if o.Axis == join.ParentChild {
		for _, i := range o.probeByParent[sn.Start] {
			d := o.probeNodes[i]
			if sn.Contains(d) && sn.IsParentOf(d) {
				return true
			}
		}
		return false
	}
	// Ancestor-descendant: any probe node starting inside sn's interval is a
	// descendant (same-color intervals nest or are disjoint).
	i := sort.Search(len(o.probeNodes), func(i int) bool {
		return o.probeNodes[i].Start > sn.Start
	})
	return i < len(o.probeNodes) && sn.Contains(o.probeNodes[i])
}

// NextBatch implements Op.
func (o *ExistsJoin) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		sn := r[o.Col]
		keep, seen := o.decided[sn.Start]
		if !seen {
			keep = o.match(sn)
			o.decided[sn.Start] = keep
			if keep {
				ctx.addStructJoins(o, 1)
			}
		}
		if keep {
			out.AppendRow(r)
		}
	}
	return nil
}

// Close implements Op.
func (o *ExistsJoin) Close(ctx *Ctx) error {
	ctx.release(o.held)
	o.held = 0
	o.ix = nil
	o.probeNodes = nil
	o.probeByParent = nil
	o.decided = nil
	o.in.close(ctx)
	err1 := o.Input.Close(ctx)
	err2 := o.Probe.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Children implements Op.
func (o *ExistsJoin) Children() []Op { return []Op{o.Input, o.Probe} }

func (o *ExistsJoin) String() string {
	return fmt.Sprintf("ExistsJoin[col %d, desc=%v]", o.Col, o.InputIsDesc)
}

// CrossColor is the cross-tree join access method (Section 6.2): for each
// row, follow the element back-link of column Col to its structural node in
// color To, appending it as a new column; rows without that color are
// dropped.
type CrossColor struct {
	Input Op
	Col   int
	To    core.Color

	in batchCursor
}

// Open implements Op.
func (o *CrossColor) Open(ctx *Ctx) error { return o.in.open(ctx, o.Input) }

// NextBatch implements Op.
func (o *CrossColor) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.addCrossJoins(o, 1)
		sn, ok, err := ctx.S.CrossTree(r[o.Col].Elem, o.To)
		if err != nil {
			return err
		}
		if ok {
			out.appendConcatNode(r, sn)
		}
	}
	return nil
}

// Close implements Op.
func (o *CrossColor) Close(ctx *Ctx) error {
	o.in.close(ctx)
	return o.Input.Close(ctx)
}

// Children implements Op.
func (o *CrossColor) Children() []Op { return []Op{o.Input} }

func (o *CrossColor) String() string {
	return fmt.Sprintf("CrossColor[col %d -> %s]", o.Col, o.To)
}

// Key identifies the value-join key of a column: an attribute value, a
// space-separated IDREFS attribute, or element content.
type Key struct {
	Attr    string // attribute name; empty means content
	Content bool
	Multi   bool // split the value on spaces (IDREFS)
}

func (k Key) String() string {
	switch {
	case k.Content:
		return "content()"
	case k.Multi:
		return "@" + k.Attr + " (idrefs)"
	default:
		return "@" + k.Attr
	}
}

func (k Key) extract(ctx *Ctx, o Op, sn storage.SNode) ([]string, error) {
	ctx.addContentReads(o, 1)
	e, err := ctx.S.Elem(sn.Elem)
	if err != nil {
		return nil, err
	}
	var raw string
	if k.Content {
		raw = e.Content
	} else {
		raw = e.Attr(k.Attr)
	}
	if !k.Multi {
		if raw == "" {
			return nil, nil
		}
		return []string{raw}, nil
	}
	return strings.Fields(raw), nil
}

// ValueJoin hash-joins two subplans on extracted string keys — the shallow
// representation's ID/IDREF join. The right side is the build side; the left
// streams. Output rows are left-row ++ right-row.
type ValueJoin struct {
	Left     Op
	Right    Op
	LeftCol  int
	RightCol int
	LeftKey  Key
	RightKey Key

	ht      map[string][]Row
	in      batchCursor
	pending []Row
	held    int
}

// Open implements Op.
func (o *ValueJoin) Open(ctx *Ctx) error {
	right, err := gather(ctx, o, o.Right)
	if err != nil {
		return err
	}
	o.held = len(right)
	o.ht = make(map[string][]Row, len(right))
	for _, r := range right {
		keys, err := o.RightKey.extract(ctx, o, r[o.RightCol])
		if err != nil {
			return err
		}
		for _, k := range keys {
			o.ht[k] = append(o.ht[k], r)
		}
	}
	o.pending = nil
	return o.in.open(ctx, o.Left)
}

// NextBatch implements Op.
func (o *ValueJoin) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		if len(o.pending) > 0 {
			o.pending = o.pending[out.appendRows(o.pending):]
			continue
		}
		l, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		keys, err := o.LeftKey.extract(ctx, o, l[o.LeftCol])
		if err != nil {
			return err
		}
		for _, k := range keys {
			ctx.addValueJoins(o, 1)
			for _, r := range o.ht[k] {
				if !out.Full() && len(o.pending) == 0 {
					out.appendConcat(l, r)
				} else {
					o.pending = append(o.pending, ctx.concatRow(l, r))
				}
			}
		}
	}
	return nil
}

// Close implements Op.
func (o *ValueJoin) Close(ctx *Ctx) error {
	ctx.release(o.held)
	o.held = 0
	o.ht = nil
	o.pending = nil
	o.in.close(ctx)
	err1 := o.Left.Close(ctx)
	err2 := o.Right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Children implements Op.
func (o *ValueJoin) Children() []Op { return []Op{o.Left, o.Right} }

func (o *ValueJoin) String() string {
	return fmt.Sprintf("ValueJoin[%s = %s]", o.LeftKey, o.RightKey)
}

// IDJoin hash-joins two subplans on element identity — the MCT identity join
// produced by the plan compiler for "$a = $b" comparisons between node
// variables. The right side is the build side; the left streams. Output rows
// are left-row ++ right-row.
type IDJoin struct {
	Left     Op
	Right    Op
	LeftCol  int
	RightCol int

	ht      map[storage.ElemID][]Row
	in      batchCursor
	pending []Row
	held    int
}

// Open implements Op.
func (o *IDJoin) Open(ctx *Ctx) error {
	right, err := gather(ctx, o, o.Right)
	if err != nil {
		return err
	}
	o.held = len(right)
	o.ht = make(map[storage.ElemID][]Row, len(right))
	for _, r := range right {
		id := r[o.RightCol].Elem
		o.ht[id] = append(o.ht[id], r)
	}
	o.pending = nil
	return o.in.open(ctx, o.Left)
}

// NextBatch implements Op.
func (o *IDJoin) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		if len(o.pending) > 0 {
			o.pending = o.pending[out.appendRows(o.pending):]
			continue
		}
		l, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.addIDJoins(o, 1)
		for _, r := range o.ht[l[o.LeftCol].Elem] {
			if !out.Full() && len(o.pending) == 0 {
				out.appendConcat(l, r)
			} else {
				o.pending = append(o.pending, ctx.concatRow(l, r))
			}
		}
	}
	return nil
}

// Close implements Op.
func (o *IDJoin) Close(ctx *Ctx) error {
	ctx.release(o.held)
	o.held = 0
	o.ht = nil
	o.pending = nil
	o.in.close(ctx)
	err1 := o.Left.Close(ctx)
	err2 := o.Right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Children implements Op.
func (o *IDJoin) Children() []Op { return []Op{o.Left, o.Right} }

func (o *IDJoin) String() string {
	return fmt.Sprintf("IDJoin[left col %d, right col %d]", o.LeftCol, o.RightCol)
}

// NLJoin is the nested-loop join used for inequality predicates on content.
// The right side (and its contents) is the build side; the left streams.
type NLJoin struct {
	Left     Op
	Right    Op
	LeftCol  int
	RightCol int
	// Kind is an inequality predicate kind ("lt", "le", "gt", "ge", "ne").
	Kind    string
	Numeric bool

	right   []Row
	rc      []string
	in      batchCursor
	pending []Row
	held    int
}

// Open implements Op.
func (o *NLJoin) Open(ctx *Ctx) error {
	right, err := gather(ctx, o, o.Right)
	if err != nil {
		return err
	}
	o.held = len(right)
	o.right = right
	o.rc = make([]string, len(right))
	for i, r := range right {
		ctx.addContentReads(o, 1)
		o.rc[i], err = ctx.S.ContentOf(r[o.RightCol].Elem)
		if err != nil {
			return err
		}
	}
	o.pending = nil
	return o.in.open(ctx, o.Left)
}

// NextBatch implements Op.
func (o *NLJoin) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		if len(o.pending) > 0 {
			o.pending = o.pending[out.appendRows(o.pending):]
			continue
		}
		l, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.addContentReads(o, 1)
		lc, err := ctx.S.ContentOf(l[o.LeftCol].Elem)
		if err != nil {
			return err
		}
		p := Pred{Kind: o.Kind, Numeric: o.Numeric}
		for j, r := range o.right {
			ctx.addValueJoins(o, 1)
			p.Value = o.rc[j]
			match, err := p.Eval(lc)
			if err != nil {
				return err
			}
			if match {
				if !out.Full() && len(o.pending) == 0 {
					out.appendConcat(l, r)
				} else {
					o.pending = append(o.pending, ctx.concatRow(l, r))
				}
			}
		}
	}
	return nil
}

// Close implements Op.
func (o *NLJoin) Close(ctx *Ctx) error {
	ctx.release(o.held)
	o.held = 0
	o.right = nil
	o.rc = nil
	o.pending = nil
	o.in.close(ctx)
	err1 := o.Left.Close(ctx)
	err2 := o.Right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Children implements Op.
func (o *NLJoin) Children() []Op { return []Op{o.Left, o.Right} }

func (o *NLJoin) String() string { return fmt.Sprintf("NLJoin[%s numeric=%v]", o.Kind, o.Numeric) }

// Dedup removes duplicate rows by the element identity of one column — the
// duplicate elimination the deep representation pays after traversing
// replicated data. It streams, holding only the set of seen identities.
type Dedup struct {
	Input Op
	Col   int

	seen map[storage.ElemID]bool
	in   batchCursor
}

// Open implements Op.
func (o *Dedup) Open(ctx *Ctx) error {
	o.seen = make(map[storage.ElemID]bool)
	return o.in.open(ctx, o.Input)
}

// NextBatch implements Op.
func (o *Dedup) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		id := r[o.Col].Elem
		if !o.seen[id] {
			o.seen[id] = true
			out.AppendRow(r)
		}
	}
	return nil
}

// Close implements Op.
func (o *Dedup) Close(ctx *Ctx) error {
	o.seen = nil
	o.in.close(ctx)
	return o.Input.Close(ctx)
}

// Children implements Op.
func (o *Dedup) Children() []Op { return []Op{o.Input} }

func (o *Dedup) String() string { return fmt.Sprintf("Dedup[col %d]", o.Col) }

// DedupContent removes duplicate rows by the CONTENT of one column (deep
// variants often deduplicate by value because replicated copies have
// distinct element ids).
type DedupContent struct {
	Input Op
	Col   int

	seen map[string]bool
	in   batchCursor
}

// Open implements Op.
func (o *DedupContent) Open(ctx *Ctx) error {
	o.seen = make(map[string]bool)
	return o.in.open(ctx, o.Input)
}

// NextBatch implements Op.
func (o *DedupContent) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.addContentReads(o, 1)
		c, err := ctx.S.ContentOf(r[o.Col].Elem)
		if err != nil {
			return err
		}
		if !o.seen[c] {
			o.seen[c] = true
			out.AppendRow(r)
		}
	}
	return nil
}

// Close implements Op.
func (o *DedupContent) Close(ctx *Ctx) error {
	o.seen = nil
	o.in.close(ctx)
	return o.Input.Close(ctx)
}

// Children implements Op.
func (o *DedupContent) Children() []Op { return []Op{o.Input} }

func (o *DedupContent) String() string { return fmt.Sprintf("DedupContent[col %d]", o.Col) }

// DedupAttr removes duplicate rows by an attribute value of one column (deep
// variants identify logical entities by their ref attribute, since replicated
// copies have distinct element ids).
type DedupAttr struct {
	Input Op
	Col   int
	Name  string

	seen map[string]bool
	in   batchCursor
}

// Open implements Op.
func (o *DedupAttr) Open(ctx *Ctx) error {
	o.seen = make(map[string]bool)
	return o.in.open(ctx, o.Input)
}

// NextBatch implements Op.
func (o *DedupAttr) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.addContentReads(o, 1)
		e, err := ctx.S.Elem(r[o.Col].Elem)
		if err != nil {
			return err
		}
		k := e.Attr(o.Name)
		if !o.seen[k] {
			o.seen[k] = true
			out.AppendRow(r)
		}
	}
	return nil
}

// Close implements Op.
func (o *DedupAttr) Close(ctx *Ctx) error {
	o.seen = nil
	o.in.close(ctx)
	return o.Input.Close(ctx)
}

// Children implements Op.
func (o *DedupAttr) Children() []Op { return []Op{o.Input} }

func (o *DedupAttr) String() string { return fmt.Sprintf("DedupAttr[col %d @%s]", o.Col, o.Name) }

// Project keeps a subset of columns.
type Project struct {
	Input Op
	Cols  []int

	in batchCursor
}

// Open implements Op.
func (o *Project) Open(ctx *Ctx) error { return o.in.open(ctx, o.Input) }

// NextBatch implements Op.
func (o *Project) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		r, ok, err := o.in.pull(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		slot := out.appendSlot(len(o.Cols))
		for j, c := range o.Cols {
			slot[j] = r[c]
		}
	}
	return nil
}

// Close implements Op.
func (o *Project) Close(ctx *Ctx) error {
	o.in.close(ctx)
	return o.Input.Close(ctx)
}

// Children implements Op.
func (o *Project) Children() []Op { return []Op{o.Input} }

func (o *Project) String() string { return fmt.Sprintf("Project%v", o.Cols) }

// SortStart orders rows by the start position of one column. A full pipeline
// breaker: the input is materialized and sorted at Open.
type SortStart struct {
	Input Op
	Col   int

	rows []Row
	pos  int
	held int
}

// Open implements Op.
func (o *SortStart) Open(ctx *Ctx) error {
	rows, err := gather(ctx, o, o.Input)
	if err != nil {
		return err
	}
	o.held = len(rows)
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i][o.Col].Start < rows[j][o.Col].Start
	})
	o.rows = rows
	o.pos = 0
	return nil
}

// NextBatch implements Op: a bulk emit of the sorted buffer (the per-batch
// cancellation check in pullBatch suffices — there is no per-row work here).
func (o *SortStart) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	o.pos += out.appendRows(o.rows[o.pos:])
	return nil
}

// Close implements Op.
func (o *SortStart) Close(ctx *Ctx) error {
	ctx.release(o.held)
	o.held = 0
	o.rows = nil
	return o.Input.Close(ctx)
}

// Children implements Op.
func (o *SortStart) Children() []Op { return []Op{o.Input} }

func (o *SortStart) String() string { return fmt.Sprintf("SortStart[col %d]", o.Col) }
