package engine

import (
	"fmt"
	"sort"
	"strings"

	"colorfulxml/internal/core"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

// ScanTag is an index scan: all structural nodes with a tag in one color, as
// single-column rows in start order.
type ScanTag struct {
	Color core.Color
	Tag   string
}

// Run implements Op.
func (o *ScanTag) Run(ctx *Ctx) ([]Row, error) {
	ns, err := ctx.S.ScanTag(o.Color, o.Tag)
	if err != nil {
		return nil, err
	}
	return wrap(ns), nil
}

func (o *ScanTag) String() string { return fmt.Sprintf("ScanTag{%s}%s", o.Color, o.Tag) }

// EqContent is a content-index lookup: nodes of a tag whose content equals a
// value.
type EqContent struct {
	Color core.Color
	Tag   string
	Value string
}

// Run implements Op.
func (o *EqContent) Run(ctx *Ctx) ([]Row, error) {
	ns, err := ctx.S.EqContent(o.Color, o.Tag, o.Value)
	if err != nil {
		return nil, err
	}
	return wrap(ns), nil
}

func (o *EqContent) String() string {
	return fmt.Sprintf("EqContent{%s}%s=%q", o.Color, o.Tag, o.Value)
}

// ContainsScan scans a tag and keeps nodes whose content satisfies the
// predicate; each candidate costs a content read (no index can serve
// contains()).
type ContainsScan struct {
	Color core.Color
	Tag   string
	Pred  Pred
}

// Run implements Op.
func (o *ContainsScan) Run(ctx *Ctx) ([]Row, error) {
	ns, err := ctx.S.ScanTag(o.Color, o.Tag)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, sn := range ns {
		ctx.M.ContentReads++
		content, err := ctx.S.ContentOf(sn.Elem)
		if err != nil {
			return nil, err
		}
		ok, err := o.Pred.Eval(content)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, Row{sn})
		}
	}
	return out, nil
}

func (o *ContainsScan) String() string {
	return fmt.Sprintf("ContainsScan{%s}%s[%s]", o.Color, o.Tag, o.Pred)
}

// AttrEq is an attribute-index lookup producing the matching elements'
// structural nodes in one color.
type AttrEq struct {
	Color core.Color
	Name  string
	Value string
}

// Run implements Op.
func (o *AttrEq) Run(ctx *Ctx) ([]Row, error) {
	ids := ctx.S.EqAttr(o.Name, o.Value)
	var out []Row
	for _, id := range ids {
		sn, ok, err := ctx.S.StructOf(id, o.Color)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, Row{sn})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Start < out[j][0].Start })
	return out, nil
}

func (o *AttrEq) String() string {
	return fmt.Sprintf("AttrEq{%s}@%s=%q", o.Color, o.Name, o.Value)
}

// Filter keeps rows whose column's content satisfies the predicate.
type Filter struct {
	Input Op
	Col   int
	Pred  Pred
}

// Run implements Op.
func (o *Filter) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := rows[:0:0]
	for _, r := range rows {
		content, err := ContentOf(ctx, r, o.Col)
		if err != nil {
			return nil, err
		}
		ok, err := o.Pred.Eval(content)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (o *Filter) String() string { return fmt.Sprintf("Filter[col %d %s]", o.Col, o.Pred) }

// AttrFilter keeps rows whose column's attribute satisfies the predicate.
type AttrFilter struct {
	Input Op
	Col   int
	Name  string
	Pred  Pred
}

// Run implements Op.
func (o *AttrFilter) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := rows[:0:0]
	for _, r := range rows {
		ctx.M.ContentReads++
		e, err := ctx.S.Elem(r[o.Col].Elem)
		if err != nil {
			return nil, err
		}
		ok, err := o.Pred.Eval(e.Attr(o.Name))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (o *AttrFilter) String() string {
	return fmt.Sprintf("AttrFilter[col %d @%s %s]", o.Col, o.Name, o.Pred)
}

// StructJoin joins two subplans with the stack-tree structural join: the
// AncCol column of Anc rows must be an ancestor (or parent) of the DescCol
// column of Desc rows. Output rows are anc-row ++ desc-row.
type StructJoin struct {
	Anc     Op
	Desc    Op
	AncCol  int
	DescCol int
	Axis    join.Axis
}

// Run implements Op.
func (o *StructJoin) Run(ctx *Ctx) ([]Row, error) {
	ancRows, err := o.Anc.Run(ctx)
	if err != nil {
		return nil, err
	}
	descRows, err := o.Desc.Run(ctx)
	if err != nil {
		return nil, err
	}
	ancNodes, ancByStart := column(ancRows, o.AncCol)
	descNodes, descByStart := column(descRows, o.DescCol)
	pairs := join.Structural(ancNodes, descNodes, o.Axis)
	ctx.M.StructJoins += len(pairs)
	out := make([]Row, 0, len(pairs))
	for _, p := range pairs {
		for _, ar := range ancByStart[p.Anc.Start] {
			for _, dr := range descByStart[p.Desc.Start] {
				out = append(out, concat(ar, dr))
			}
		}
	}
	return out, nil
}

func (o *StructJoin) String() string {
	axis := "ancestor-descendant"
	if o.Axis == join.ParentChild {
		axis = "parent-child"
	}
	return fmt.Sprintf("StructJoin[%s, anc col %d, desc col %d]", axis, o.AncCol, o.DescCol)
}

// ExistsJoin is a structural semi-join: keep Input rows whose column has a
// descendant (or child/ancestor/parent, per Axis and Dir) in Probe's column.
type ExistsJoin struct {
	Input    Op
	Probe    Op
	Col      int
	ProbeCol int
	Axis     join.Axis
	// InputIsDesc inverts the direction: keep Input rows whose column HAS AN
	// ANCESTOR in Probe.
	InputIsDesc bool
}

// Run implements Op.
func (o *ExistsJoin) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	probe, err := o.Probe.Run(ctx)
	if err != nil {
		return nil, err
	}
	in, _ := column(rows, o.Col)
	pr, _ := column(probe, o.ProbeCol)
	var keep []storage.SNode
	if o.InputIsDesc {
		keep = join.SemiDesc(pr, in, o.Axis)
	} else {
		keep = join.SemiAnc(in, pr, o.Axis)
	}
	ctx.M.StructJoins += len(keep)
	ok := make(map[int64]bool, len(keep))
	for _, k := range keep {
		ok[k.Start] = true
	}
	out := rows[:0:0]
	for _, r := range rows {
		if ok[r[o.Col].Start] {
			out = append(out, r)
		}
	}
	return out, nil
}

func (o *ExistsJoin) String() string {
	return fmt.Sprintf("ExistsJoin[col %d, desc=%v]", o.Col, o.InputIsDesc)
}

// CrossColor is the cross-tree join access method (Section 6.2): for each
// row, follow the element back-link of column Col to its structural node in
// color To, appending it as a new column; rows without that color are
// dropped.
type CrossColor struct {
	Input Op
	Col   int
	To    core.Color
}

// Run implements Op.
func (o *CrossColor) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := rows[:0:0]
	for _, r := range rows {
		ctx.M.CrossJoins++
		sn, ok, err := ctx.S.CrossTree(r[o.Col].Elem, o.To)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, concat(r, Row{sn}))
		}
	}
	return out, nil
}

func (o *CrossColor) String() string {
	return fmt.Sprintf("CrossColor[col %d -> %s]", o.Col, o.To)
}

// Key identifies the value-join key of a column: an attribute value, a
// space-separated IDREFS attribute, or element content.
type Key struct {
	Attr    string // attribute name; empty means content
	Content bool
	Multi   bool // split the value on spaces (IDREFS)
}

func (k Key) String() string {
	switch {
	case k.Content:
		return "content()"
	case k.Multi:
		return "@" + k.Attr + " (idrefs)"
	default:
		return "@" + k.Attr
	}
}

func (k Key) extract(ctx *Ctx, sn storage.SNode) ([]string, error) {
	ctx.M.ContentReads++
	e, err := ctx.S.Elem(sn.Elem)
	if err != nil {
		return nil, err
	}
	var raw string
	if k.Content {
		raw = e.Content
	} else {
		raw = e.Attr(k.Attr)
	}
	if !k.Multi {
		if raw == "" {
			return nil, nil
		}
		return []string{raw}, nil
	}
	return strings.Fields(raw), nil
}

// ValueJoin hash-joins two subplans on extracted string keys — the shallow
// representation's ID/IDREF join. Output rows are left-row ++ right-row.
type ValueJoin struct {
	Left     Op
	Right    Op
	LeftCol  int
	RightCol int
	LeftKey  Key
	RightKey Key
}

// Run implements Op.
func (o *ValueJoin) Run(ctx *Ctx) ([]Row, error) {
	left, err := o.Left.Run(ctx)
	if err != nil {
		return nil, err
	}
	right, err := o.Right.Run(ctx)
	if err != nil {
		return nil, err
	}
	ht := make(map[string][]Row, len(right))
	for _, r := range right {
		keys, err := o.RightKey.extract(ctx, r[o.RightCol])
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			ht[k] = append(ht[k], r)
		}
	}
	var out []Row
	for _, l := range left {
		keys, err := o.LeftKey.extract(ctx, l[o.LeftCol])
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			ctx.M.ValueJoins++
			for _, r := range ht[k] {
				out = append(out, concat(l, r))
			}
		}
	}
	return out, nil
}

func (o *ValueJoin) String() string {
	return fmt.Sprintf("ValueJoin[%s = %s]", o.LeftKey, o.RightKey)
}

// NLJoin is the nested-loop join used for inequality predicates on content.
type NLJoin struct {
	Left     Op
	Right    Op
	LeftCol  int
	RightCol int
	// Kind is an inequality predicate kind ("lt", "le", "gt", "ge", "ne").
	Kind    string
	Numeric bool
}

// Run implements Op.
func (o *NLJoin) Run(ctx *Ctx) ([]Row, error) {
	left, err := o.Left.Run(ctx)
	if err != nil {
		return nil, err
	}
	right, err := o.Right.Run(ctx)
	if err != nil {
		return nil, err
	}
	// Pre-fetch contents once per side (the quadratic part is comparisons).
	lc := make([]string, len(left))
	for i, r := range left {
		lc[i], err = ContentOf(ctx, r, o.LeftCol)
		if err != nil {
			return nil, err
		}
	}
	rc := make([]string, len(right))
	for i, r := range right {
		rc[i], err = ContentOf(ctx, r, o.RightCol)
		if err != nil {
			return nil, err
		}
	}
	var out []Row
	for i, l := range left {
		p := Pred{Kind: o.Kind, Numeric: o.Numeric}
		for j, r := range right {
			ctx.M.ValueJoins++
			p.Value = rc[j]
			ok, err := p.Eval(lc[i])
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, concat(l, r))
			}
		}
	}
	return out, nil
}

func (o *NLJoin) String() string { return fmt.Sprintf("NLJoin[%s numeric=%v]", o.Kind, o.Numeric) }

// Dedup removes duplicate rows by the element identity of one column — the
// duplicate elimination the deep representation pays after traversing
// replicated data.
type Dedup struct {
	Input Op
	Col   int
}

// Run implements Op.
func (o *Dedup) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	seen := make(map[storage.ElemID]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		id := r[o.Col].Elem
		if !seen[id] {
			seen[id] = true
			out = append(out, r)
		}
	}
	return out, nil
}

func (o *Dedup) String() string { return fmt.Sprintf("Dedup[col %d]", o.Col) }

// DedupContent removes duplicate rows by the CONTENT of one column (deep
// variants often deduplicate by value because replicated copies have
// distinct element ids).
type DedupContent struct {
	Input Op
	Col   int
}

// Run implements Op.
func (o *DedupContent) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		c, err := ContentOf(ctx, r, o.Col)
		if err != nil {
			return nil, err
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, r)
		}
	}
	return out, nil
}

func (o *DedupContent) String() string { return fmt.Sprintf("DedupContent[col %d]", o.Col) }

// DedupAttr removes duplicate rows by an attribute value of one column (deep
// variants identify logical entities by their ref attribute, since replicated
// copies have distinct element ids).
type DedupAttr struct {
	Input Op
	Col   int
	Name  string
}

// Run implements Op.
func (o *DedupAttr) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		ctx.M.ContentReads++
		e, err := ctx.S.Elem(r[o.Col].Elem)
		if err != nil {
			return nil, err
		}
		k := e.Attr(o.Name)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out, nil
}

func (o *DedupAttr) String() string { return fmt.Sprintf("DedupAttr[col %d @%s]", o.Col, o.Name) }

// Project keeps a subset of columns.
type Project struct {
	Input Op
	Cols  []int
}

// Run implements Op.
func (o *Project) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, r := range rows {
		nr := make(Row, len(o.Cols))
		for j, c := range o.Cols {
			nr[j] = r[c]
		}
		out[i] = nr
	}
	return out, nil
}

func (o *Project) String() string { return fmt.Sprintf("Project%v", o.Cols) }

// SortStart orders rows by the start position of one column.
type SortStart struct {
	Input Op
	Col   int
}

// Run implements Op.
func (o *SortStart) Run(ctx *Ctx) ([]Row, error) {
	rows, err := o.Input.Run(ctx)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i][o.Col].Start < rows[j][o.Col].Start
	})
	return rows, nil
}

func (o *SortStart) String() string { return fmt.Sprintf("SortStart[col %d]", o.Col) }

// --- helpers -------------------------------------------------------------

func wrap(ns []storage.SNode) []Row {
	rows := make([]Row, len(ns))
	for i, n := range ns {
		rows[i] = Row{n}
	}
	return rows
}

func concat(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// column extracts one column as a deduplicated, start-sorted node list plus
// a start -> rows map for recombination after a node-level join.
func column(rows []Row, col int) ([]storage.SNode, map[int64][]Row) {
	byStart := make(map[int64][]Row, len(rows))
	var nodes []storage.SNode
	for _, r := range rows {
		sn := r[col]
		if _, ok := byStart[sn.Start]; !ok {
			nodes = append(nodes, sn)
		}
		byStart[sn.Start] = append(byStart[sn.Start], r)
	}
	join.SortByStart(nodes)
	return nodes, byStart
}
