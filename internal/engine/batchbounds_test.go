package engine_test

import (
	"context"
	"errors"
	"testing"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/storage"
)

// openScan opens a tag scan against a fresh Ctx for protocol-level tests.
func openScan(t *testing.T, s *storage.Store, tag string) (*engine.Ctx, engine.Op) {
	t.Helper()
	op := &engine.ScanTag{Color: "red", Tag: tag}
	ctx := &engine.Ctx{S: s}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	return ctx, op
}

// TestBatchEmptyResult: an empty result yields an empty first batch, and the
// operator stays exhausted on further calls.
func TestBatchEmptyResult(t *testing.T) {
	s := bigStore(t, 10)
	ctx, op := openScan(t, s, "nosuch")
	defer op.Close(ctx)
	var b engine.Batch
	for call := 0; call < 3; call++ {
		if err := op.NextBatch(ctx, &b); err != nil {
			t.Fatal(err)
		}
		if b.Len() != 0 {
			t.Fatalf("call %d: empty scan produced %d rows", call, b.Len())
		}
	}
}

// TestBatchExactlyOneRow: a single-row result arrives in one batch followed
// by the empty exhaustion batch.
func TestBatchExactlyOneRow(t *testing.T) {
	s := bigStore(t, 1)
	ctx, op := openScan(t, s, "item")
	defer op.Close(ctx)
	var b engine.Batch
	if err := op.NextBatch(ctx, &b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 || b.Cols() != 1 {
		t.Fatalf("first batch: len=%d cols=%d, want 1x1", b.Len(), b.Cols())
	}
	if err := op.NextBatch(ctx, &b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("second batch has %d rows, want exhaustion", b.Len())
	}
}

// TestBatchSizeAligned: result sets of exactly 1 and 2 times BatchSize fill
// whole batches with no ragged tail and terminate with the empty batch.
func TestBatchSizeAligned(t *testing.T) {
	for _, mult := range []int{1, 2} {
		n := mult * engine.BatchSize
		s := bigStore(t, n)
		ctx, op := openScan(t, s, "item")
		var b engine.Batch
		total, batches := 0, 0
		for {
			if err := op.NextBatch(ctx, &b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				break
			}
			if b.Len() != engine.BatchSize {
				t.Fatalf("aligned result produced a ragged batch of %d rows", b.Len())
			}
			total += b.Len()
			batches++
		}
		if err := op.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if total != n || batches != mult {
			t.Fatalf("n=%d: got %d rows in %d batches, want %d in %d", n, total, batches, n, mult)
		}
	}
}

// TestMidBatchCancellation: canceling during result consumption stops the
// query at the next batch boundary — the consumer sees only complete batches
// (no torn rows) and the context's error.
func TestMidBatchCancellation(t *testing.T) {
	s := bigStore(t, 3*engine.BatchSize)
	plan := &engine.Filter{
		Input: &engine.ScanTag{Color: "red", Tag: "item"},
		Col:   0,
		Pred:  engine.Pred{Kind: "contains", Value: "v"},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	visits, rows := 0, 0
	_, err := engine.ExecBatches(ctx, s, plan, func(b *engine.Batch) error {
		visits++
		if b.Len() == 0 || b.Cols() != 1 {
			t.Fatalf("torn batch: len=%d cols=%d", b.Len(), b.Cols())
		}
		for i := 0; i < b.Len(); i++ {
			if len(b.Row(i)) != 1 {
				t.Fatalf("torn row %d in batch %d", i, visits)
			}
		}
		rows += b.Len()
		cancel() // cancel mid-consumption, after the first batch
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visits != 1 {
		t.Fatalf("visitor ran %d times after cancellation, want exactly 1", visits)
	}
	if rows != engine.BatchSize {
		t.Fatalf("saw %d rows before cancellation, want one full batch (%d)", rows, engine.BatchSize)
	}
}

// TestBatchMixedWidthPanics: a batch's column count is fixed by its first
// row; appending a different width is an operator bug and panics.
func TestBatchMixedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-width append should panic")
		}
	}()
	var b engine.Batch
	b.Reset()
	b.AppendRow(engine.Row{storage.SNode{}})
	b.AppendRow(engine.Row{storage.SNode{}, storage.SNode{}})
}

// TestBatchSwap: Swap exchanges contents without copying rows; both batches
// stay independently usable.
func TestBatchSwap(t *testing.T) {
	var a, b engine.Batch
	a.Reset()
	a.AppendRow(engine.Row{storage.SNode{Start: 1}})
	a.AppendRow(engine.Row{storage.SNode{Start: 2}})
	b.Reset()
	b.AppendRow(engine.Row{storage.SNode{Start: 9}})
	a.Swap(&b)
	if a.Len() != 1 || a.Row(0)[0].Start != 9 {
		t.Fatalf("a after swap: len=%d", a.Len())
	}
	if b.Len() != 2 || b.Row(1)[0].Start != 2 {
		t.Fatalf("b after swap: len=%d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 || a.Len() != 1 {
		t.Fatal("reset after swap leaked across batches")
	}
}
