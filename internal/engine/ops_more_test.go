package engine_test

import (
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

// TestValueJoinMultiKey exercises the IDREFS variant: one side's key is a
// space-separated list (contains(@roleIdRefs, @id) in the paper's Shallow-1
// example).
func TestValueJoinMultiKey(t *testing.T) {
	m := fixtures.NewMovieDB()
	if _, err := m.DB.SetAttribute(m.Node("bette"), "roleIdRefs", "r1 r2"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DB.SetAttribute(m.Node("marilyn"), "roleIdRefs", "r2"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DB.SetAttribute(m.Node("eve-role"), "id", "r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DB.SetAttribute(m.Node("hot-role"), "id", "r2"); err != nil {
		t.Fatal(err)
	}
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := &engine.ValueJoin{
		Left:     &engine.ScanTag{Color: "blue", Tag: "actor"},
		Right:    &engine.ScanTag{Color: "red", Tag: "movie-role"},
		LeftCol:  0,
		RightCol: 0,
		LeftKey:  engine.Key{Attr: "roleIdRefs", Multi: true},
		RightKey: engine.Key{Attr: "id"},
	}
	rows, _, err := engine.Exec(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	// bette->r1, bette->r2, marilyn->r2.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

// TestValueJoinContentKey joins on element content rather than attributes.
func TestValueJoinContentKey(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Join green votes with themselves by content: each matches itself.
	plan := &engine.ValueJoin{
		Left:     &engine.ScanTag{Color: "green", Tag: "votes"},
		Right:    &engine.ScanTag{Color: "green", Tag: "votes"},
		LeftCol:  0,
		RightCol: 0,
		LeftKey:  engine.Key{Content: true},
		RightKey: engine.Key{Content: true},
	}
	rows, met, err := engine.Exec(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (distinct vote values)", len(rows))
	}
	if met.ContentReads == 0 {
		t.Fatal("content keys must cost content reads")
	}
}

// TestCrossColorDropsIncompatible: crossing a mixed row set keeps only nodes
// that participate in the target color.
func TestCrossColorDropsIncompatible(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := &engine.CrossColor{
		Input: &engine.ScanTag{Color: "red", Tag: "movie"},
		Col:   0,
		To:    "green",
	}
	rows, met, err := engine.Exec(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // duck is red-only
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if met.CrossJoins != 4 { // all four movies probed
		t.Fatalf("cross joins = %d, want 4", met.CrossJoins)
	}
	for _, r := range rows {
		if r[1].Color != "green" {
			t.Fatalf("crossed column color = %q", r[1].Color)
		}
		if r[0].Elem != r[1].Elem {
			t.Fatal("crossing must preserve element identity")
		}
	}
}

// TestExistsJoinDirections covers all four (axis, direction) combinations.
func TestExistsJoinDirections(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	genreScan := func() engine.Op { return &engine.ScanTag{Color: "red", Tag: "movie-genre"} }
	movieScan := func() engine.Op { return &engine.ScanTag{Color: "red", Tag: "movie"} }
	cases := []struct {
		name  string
		plan  engine.Op
		nRows int
	}{
		{"genres with movie child", &engine.ExistsJoin{
			Input: genreScan(), Probe: movieScan(), Axis: join.ParentChild}, 3},
		{"genres with movie descendant", &engine.ExistsJoin{
			Input: genreScan(), Probe: movieScan(), Axis: join.AncestorDescendant}, 3},
		{"movies under a genre (child)", &engine.ExistsJoin{
			Input: movieScan(), Probe: genreScan(), Axis: join.ParentChild, InputIsDesc: true}, 4},
		{"movies under a genre (desc)", &engine.ExistsJoin{
			Input: movieScan(), Probe: genreScan(), Axis: join.AncestorDescendant, InputIsDesc: true}, 4},
	}
	for _, c := range cases {
		rows, _, err := engine.Exec(s, c.plan)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(rows) != c.nRows {
			t.Errorf("%s: rows = %d, want %d", c.name, len(rows), c.nRows)
		}
	}
}

// TestMetricsRowsOut verifies executor bookkeeping.
func TestMetricsRowsOut(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, met, err := engine.Exec(s, &engine.ScanTag{Color: "blue", Tag: "actor"})
	if err != nil {
		t.Fatal(err)
	}
	if met.RowsOut != len(rows) || met.RowsOut != 4 {
		t.Fatalf("RowsOut = %d, rows = %d", met.RowsOut, len(rows))
	}
}

// TestEmptyInputsFlowThrough: operators tolerate empty inputs.
func TestEmptyInputsFlowThrough(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	empty := &engine.EqContent{Color: "red", Tag: "name", Value: "No Such Movie"}
	plans := []engine.Op{
		&engine.Filter{Input: empty, Col: 0, Pred: engine.Pred{Kind: "eq", Value: "x"}},
		&engine.StructJoin{Anc: empty, Desc: &engine.ScanTag{Color: "red", Tag: "movie"}, Axis: join.AncestorDescendant},
		&engine.CrossColor{Input: empty, Col: 0, To: "green"},
		&engine.ValueJoin{Left: empty, Right: empty, LeftKey: engine.Key{Attr: "id"}, RightKey: engine.Key{Attr: "id"}},
		&engine.NLJoin{Left: empty, Right: empty, Kind: "gt"},
		&engine.Dedup{Input: empty},
		&engine.SortStart{Input: empty},
		&engine.Project{Input: empty, Cols: []int{0}},
	}
	for _, p := range plans {
		rows, _, err := engine.Exec(s, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(rows) != 0 {
			t.Fatalf("%s: rows = %d", p, len(rows))
		}
	}
}

// TestAttrEqResolvesOnlyRequestedColor: an element found by attribute must
// only yield structural nodes in the requested color.
func TestAttrEqResolvesOnlyRequestedColor(t *testing.T) {
	m := fixtures.NewMovieDB()
	if _, err := m.DB.SetAttribute(m.Node("duck"), "id", "m3"); err != nil {
		t.Fatal(err)
	}
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := engine.Exec(s, &engine.AttrEq{Color: "green", Name: "id", Value: "m3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("duck is not green; rows = %d", len(rows))
	}
	rows, _, err = engine.Exec(s, &engine.AttrEq{Color: "red", Name: "id", Value: "m3"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("red lookup rows = %d, %v", len(rows), err)
	}
	if rows[0][0].Elem != storage.ElemID(m.Node("duck").ID()) {
		t.Fatal("wrong element")
	}
	_ = core.KindElement
}
