package engine

import (
	"context"
	"fmt"

	"colorfulxml/internal/obs"
	"colorfulxml/internal/storage"
)

// TraceExec executes a plan with full per-operator attribution and timing,
// then attaches one child span per operator under parent, mirroring the plan
// tree: an operator's span nests under its parent operator's span, and an
// Exchange's partition subtrees nest under the Exchange span even though
// they ran on worker goroutines (workers carry their own stats contexts,
// merged back when the exchange closes).
//
// Each operator span carries the operator's batches and rows, cumulative
// NextBatch wall time (including children), and its nonzero
// join/materialization/content counters as attributes. TraceExec is the
// expensive, opt-in sibling of ExecContext — the default query path never
// pays per-batch clock reads.
func TraceExec(cctx context.Context, s *storage.Store, plan Op, parent *obs.Span) ([]Row, Metrics, error) {
	ctx := &Ctx{S: s, stats: map[Op]*OpStats{}, timed: true}
	if cctx != nil && cctx.Done() != nil {
		ctx.Cancel = cctx
	}
	sw := obs.Start()
	rows, err := drain(ctx, plan)
	foldObs(ctx, sw, len(rows), err)
	if parent != nil {
		attachOpSpans(parent, plan, ctx.stats)
		parent.SetAttr("batches", ctx.totalBatches)
		parent.SetAttr("rows_transferred", ctx.totalRows)
		parent.SetAttr("peak_materialized", ctx.peak)
	}
	if err != nil {
		return nil, ctx.M, err
	}
	ctx.M.RowsOut = len(rows)
	return rows, ctx.M, nil
}

// attachOpSpans synthesizes the operator span subtree for op under parent
// from the execution's per-operator statistics.
func attachOpSpans(parent *obs.Span, op Op, stats map[Op]*OpStats) {
	st := stats[op]
	if st == nil {
		st = &OpStats{}
	}
	sp := parent.Child(op.String())
	sp.SetAttr("rows", st.Rows)
	sp.SetAttr("batches", st.Batches)
	setNZ := func(key string, v int) {
		if v != 0 {
			sp.SetAttr(key, v)
		}
	}
	setNZ("materialized", st.Materialized)
	setNZ("struct_joins", st.StructJoins)
	setNZ("value_joins", st.ValueJoins)
	setNZ("id_joins", st.IDJoins)
	setNZ("cross_joins", st.CrossJoins)
	setNZ("content_reads", st.ContentReads)
	for _, ch := range op.Children() {
		attachOpSpans(sp, ch, stats)
	}
	sp.SetDurNanos(st.Nanos)
}

// TraceText renders a traced span tree in the indent-per-depth style of
// Explain, for human consumption of /debug/trace output in tests and tools.
func TraceText(s *obs.Span) string {
	var b []byte
	var walk func(sp *obs.Span, depth int)
	walk = func(sp *obs.Span, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, fmt.Sprintf("%s (%.3fms)\n", sp.Name(), float64(sp.DurNanos())/1e6)...)
		for _, c := range sp.Children() {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return string(b)
}
