package engine

import (
	"fmt"
	"sync"
)

// exchangeBatchDepth is the per-partition batch channel depth: deep enough
// (a few thousand rows) to keep workers busy across consumer stalls, small
// enough that an exchange never materializes a meaningful fraction of a
// scan. Each worker owns a free list of this many batch buffers that
// circulate between producer and consumer, so steady state does no
// allocation per transfer.
const exchangeBatchDepth = 4

// partition returns the part-th of of contiguous slices of a posting list.
// Slicing start-ordered postings into contiguous runs means concatenating the
// parts in order reproduces the original global start order exactly.
func partition(refs []uint64, part, of int) []uint64 {
	if of <= 1 {
		return refs
	}
	lo := len(refs) * part / of
	hi := len(refs) * (part + 1) / of
	return refs[lo:hi]
}

// Exchange runs its Parts concurrently, one worker goroutine per part, and
// merges their output streams by draining the parts in order. Parts are
// expected to be contiguous start-order partitions of one logical scan (see
// ScanTag.Part/Of), so the in-order concatenation preserves the global
// document order every downstream operator relies on.
//
// Workers exchange whole batches with the consumer: each worker pulls its
// partition batch-wise and sends filled *Batch buffers over a bounded
// channel, receiving empty ones back through a free list — the consumer
// adopts a batch with a zero-copy Swap. Each worker runs against its own Ctx
// over the same (immutable snapshot) store; metrics, transfer counts and
// per-operator stats are folded back into the parent Ctx when the exchange
// closes, so Exec totals and ExplainAnalyze attribution are unaffected by
// parallelism. Rows inside channel-buffered batches are not part of any
// context's live accounting (bounded by parts × depth × BatchSize). Close
// cancels still-running workers via a done channel and waits for them, so no
// goroutine outlives the exchange.
type Exchange struct {
	Parts []Op

	workers []*exchangeWorker
	cur     int
	done    chan struct{}
	wg      sync.WaitGroup
}

type exchangeWorker struct {
	op   Op
	out  chan *Batch
	free chan *Batch
	ctx  *Ctx
	// err is written by the worker goroutine before it closes out and read
	// by the consumer only after observing the close, so it needs no lock.
	err error
}

func (w *exchangeWorker) run(done chan struct{}) {
	defer close(w.out)
	// Contain panics from this partition's operator tree: the consumer sees
	// them as an execution error after the channel closes, exactly like any
	// other worker failure (the recover defer runs before the close defer).
	defer func() {
		if r := recover(); r != nil {
			w.err = panicErr(w.op, r)
		}
	}()
	if err := w.op.Open(w.ctx); err != nil {
		w.op.Close(w.ctx)
		w.err = err
		return
	}
	for {
		var b *Batch
		select {
		case b = <-w.free:
		case <-done:
			w.op.Close(w.ctx)
			return
		}
		if err := pullBatch(w.ctx, w.op, b); err != nil {
			w.op.Close(w.ctx)
			w.err = err
			return
		}
		if b.Len() == 0 {
			break
		}
		// The batch leaves this worker's pipeline: drop it from the worker's
		// in-flight accounting before handing it to the consumer.
		w.ctx.release(b.held)
		b.held = 0
		select {
		case w.out <- b:
		case <-done:
			w.op.Close(w.ctx)
			return
		}
	}
	w.err = w.op.Close(w.ctx)
}

// Open implements Op.
func (o *Exchange) Open(ctx *Ctx) error {
	o.done = make(chan struct{})
	o.cur = 0
	o.workers = make([]*exchangeWorker, len(o.Parts))
	for i, p := range o.Parts {
		w := &exchangeWorker{
			op:   p,
			out:  make(chan *Batch, exchangeBatchDepth),
			free: make(chan *Batch, exchangeBatchDepth),
			ctx:  &Ctx{S: ctx.S, Cancel: ctx.Cancel, timed: ctx.timed},
		}
		for j := 0; j < exchangeBatchDepth; j++ {
			w.free <- &Batch{}
		}
		if ctx.stats != nil {
			w.ctx.stats = map[Op]*OpStats{}
		}
		o.workers[i] = w
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			w.run(o.done)
		}()
	}
	return nil
}

// NextBatch implements Op: it drains the partitions in order, adopting one
// worker batch per call, so the merged stream is the in-order concatenation
// of the parts.
func (o *Exchange) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	for o.cur < len(o.workers) {
		// Workers observe cancellation through their own contexts; the merge
		// loop polls too so an exhausted-partition spin can't outlive it.
		if err := ctx.poll(); err != nil {
			return err
		}
		w := o.workers[o.cur]
		b, ok := <-w.out
		if ok {
			out.Swap(b)
			b.Reset()
			select {
			case w.free <- b:
			default:
			}
			return nil
		}
		if w.err != nil {
			return w.err
		}
		o.cur++
	}
	return nil
}

// Close implements Op: cancel outstanding workers, wait for them, and fold
// their metrics, transfer counts and stats into the parent context.
func (o *Exchange) Close(ctx *Ctx) error {
	if o.done == nil {
		return nil
	}
	close(o.done)
	o.wg.Wait()
	for _, w := range o.workers {
		ctx.M.merge(w.ctx.M)
		ctx.totalBatches += w.ctx.totalBatches
		ctx.totalRows += w.ctx.totalRows
		if ctx.stats != nil {
			for op, st := range w.ctx.stats {
				ctx.stats[op] = st
			}
		}
	}
	o.workers = nil
	o.done = nil
	o.cur = 0
	return nil
}

// Children implements Op.
func (o *Exchange) Children() []Op { return o.Parts }

func (o *Exchange) String() string { return fmt.Sprintf("Exchange[%d ways]", len(o.Parts)) }

// merge folds a worker's metric counters into the parent's. RowsOut is
// excluded: it describes a whole execution and is set once by the executor.
func (m *Metrics) merge(w Metrics) {
	m.StructJoins += w.StructJoins
	m.ValueJoins += w.ValueJoins
	m.IDJoins += w.IDJoins
	m.CrossJoins += w.CrossJoins
	m.ContentReads += w.ContentReads
}
