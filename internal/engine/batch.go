package engine

import "colorfulxml/internal/storage"

// This file is the vectorized-execution substrate: the column batch that
// operators exchange through NextBatch, the per-query arena that owns every
// row surviving a batch boundary, and the cursor parents use to stream child
// rows out of a scratch batch.

// BatchSize is the target number of rows per batch: large enough to amortize
// the per-transfer virtual dispatch, cancellation poll and ExplainAnalyze
// accounting over ~1K rows, small enough that a pipeline's in-flight batches
// stay a negligible memory footprint.
const BatchSize = 1024

// Batch is a fixed-width block of rows in one contiguous row-major buffer:
// row i is the slice data[i*cols : (i+1)*cols]. The width is set by the first
// row appended after a Reset, so one batch object is reused across operators
// producing different row widths.
//
// Ownership: a batch belongs to the operator (or executor) that passes it to
// NextBatch. The callee resets it, fills at most BatchSize rows, and must
// treat rows of previous fillings as gone. Rows returned by Row are views
// into the batch buffer: valid only until the batch is next reset or
// swapped. Anything that must outlive the batch — join build sides, pending
// output queues, result rows — is copied into the query arena first.
type Batch struct {
	cols int
	n    int
	data []storage.SNode
	// held is executor bookkeeping: the number of rows of this batch
	// currently counted in Ctx.live by pullBatch. It deliberately does not
	// travel with Swap — it describes this batch object's accounting, not
	// its contents.
	held int
	// pool, when non-nil, supplies the row buffer and receives it back on
	// free: set by the executor and by batchCursor.open from the execution's
	// pool, so batches of a pooled execution recycle their buffers. Like
	// held it stays with this batch object across Swap — whichever buffer
	// the batch holds when freed goes to its own pool.
	pool *MemPool
}

// Reset empties the batch. The next appended row fixes the new width.
func (b *Batch) Reset() {
	b.cols = 0
	b.n = 0
	if b.data != nil {
		b.data = b.data[:0]
	}
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Cols returns the row width (0 while empty).
func (b *Batch) Cols() int { return b.cols }

// Full reports whether the batch reached BatchSize rows.
func (b *Batch) Full() bool { return b.n >= BatchSize }

// Row returns row i as a view into the batch buffer, valid until the batch
// is reset or swapped.
func (b *Batch) Row(i int) Row {
	off := i * b.cols
	return Row(b.data[off : off+b.cols : off+b.cols])
}

// appendSlot reserves the next row and returns it for the caller to fill.
// The first slot after a Reset fixes the batch width.
func (b *Batch) appendSlot(cols int) []storage.SNode {
	if b.n == 0 {
		b.cols = cols
		if cap(b.data) < BatchSize*cols {
			b.pool.putBuf(b.data)
			b.data = b.pool.getBuf(BatchSize * cols)
		}
	} else if cols != b.cols {
		panic("engine: mixed row widths in one batch")
	}
	off := b.n * b.cols
	b.data = b.data[:off+b.cols]
	b.n++
	return b.data[off : off+b.cols]
}

// AppendRow copies one row into the batch.
func (b *Batch) AppendRow(r Row) { copy(b.appendSlot(len(r)), r) }

// appendNode appends a single-column row.
func (b *Batch) appendNode(sn storage.SNode) { b.appendSlot(1)[0] = sn }

// appendConcat appends the concatenation of two rows without an intermediate
// allocation.
func (b *Batch) appendConcat(l, r Row) {
	slot := b.appendSlot(len(l) + len(r))
	copy(slot, l)
	copy(slot[len(l):], r)
}

// appendConcatNode appends row l extended by one trailing column.
func (b *Batch) appendConcatNode(l Row, sn storage.SNode) {
	slot := b.appendSlot(len(l) + 1)
	copy(slot, l)
	slot[len(l)] = sn
}

// appendRows bulk-copies rows until the batch is full, returning how many
// were consumed. Used by materializing operators to emit their buffer in
// batch-sized strides without a per-row loop in NextBatch.
func (b *Batch) appendRows(rows []Row) int {
	k := 0
	for ; k < len(rows) && !b.Full(); k++ {
		b.AppendRow(rows[k])
	}
	return k
}

// appendNodes bulk-copies single-column rows until the batch is full,
// returning how many were consumed.
func (b *Batch) appendNodes(nodes []storage.SNode) int {
	k := 0
	for ; k < len(nodes) && !b.Full(); k++ {
		b.appendNode(nodes[k])
	}
	return k
}

// Swap exchanges the contents (rows, width, buffer) of two batches without
// copying rows — the zero-copy hand-off the Exchange consumer uses to adopt
// a worker-filled batch. The held bookkeeping stays with each batch object.
func (b *Batch) Swap(o *Batch) {
	b.cols, o.cols = o.cols, b.cols
	b.n, o.n = o.n, b.n
	b.data, o.data = o.data, b.data
}

// free drops the batch buffer so a closed operator holds no row memory,
// recycling it into the batch's pool when one is attached.
func (b *Batch) free() {
	b.pool.putBuf(b.data)
	b.cols, b.n, b.data = 0, 0, nil
}

// --- arena ----------------------------------------------------------------

// arenaChunkNodes is the bump-allocator chunk size in SNodes (a few hundred
// KB per chunk at most).
const arenaChunkNodes = 16384

// arena is the per-query bump allocator that owns every row copied out of a
// transient batch: join build sides, pending join outputs, and the result
// rows the executor returns. Chunks are never recycled within a query; the
// whole arena is garbage once the execution's rows are dropped. Allocating
// rows in chunk-sized strides replaces the one-allocation-per-row regime of
// the row-at-a-time executor.
//
// With a pool attached, chunks are drawn from it and remembered in taken;
// release hands them back once the execution's rows are provably dead (the
// streaming entry point, whose callers copy what they keep — see MemPool).
type arena struct {
	chunk []storage.SNode
	used  int
	pool  *MemPool
	taken [][]storage.SNode
}

// alloc returns a slice of n nodes carved from the current chunk, which the
// caller fully overwrites (pooled chunks are dirty; both callers copy into
// every node they are handed). Oversized requests (wider than a quarter
// chunk) get their own allocation.
func (a *arena) alloc(n int) []storage.SNode {
	if n > arenaChunkNodes/4 {
		return make([]storage.SNode, n)
	}
	if a.used+n > len(a.chunk) {
		a.chunk = a.pool.getChunk()
		a.used = 0
		if a.pool != nil {
			a.taken = append(a.taken, a.chunk)
		}
	}
	s := a.chunk[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// release returns every pooled chunk drawn during the execution. Only the
// pooled streaming executor calls it, after the last batch was visited and
// the plan closed, so no live row can reference the recycled memory.
func (a *arena) release() {
	for i, c := range a.taken {
		a.pool.putChunk(c)
		a.taken[i] = nil
	}
	a.taken = a.taken[:0]
	a.chunk = nil
	a.used = 0
}

// copyRow copies a transient batch row into the query arena.
func (ctx *Ctx) copyRow(r Row) Row {
	out := ctx.arena.alloc(len(r))
	copy(out, r)
	return Row(out)
}

// concatRow builds the arena-backed concatenation of two rows (either may be
// a transient batch view).
func (ctx *Ctx) concatRow(l, r Row) Row {
	out := ctx.arena.alloc(len(l) + len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return Row(out)
}

// --- cursor ---------------------------------------------------------------

// batchCursor streams a child operator row-at-a-time out of a scratch batch:
// the inner-loop façade parents use while the actual child transfers move
// whole batches through pullBatch. The rows it yields are views into its
// buffer, valid until the next refill — callers copy (via the arena or into
// an output batch) anything they keep.
type batchCursor struct {
	child Op
	buf   Batch
	pos   int
	done  bool
}

// open (re)binds the cursor and opens the child.
func (c *batchCursor) open(ctx *Ctx, child Op) error {
	c.child = child
	c.buf.pool = ctx.arena.pool
	c.buf.Reset()
	c.pos = 0
	c.done = false
	return child.Open(ctx)
}

// pull yields the next child row, refilling the scratch batch through
// pullBatch when it runs dry — so cancellation and ExplainAnalyze accounting
// happen once per batch, not per row. It is the cursor-shaped sibling of the
// old row-at-a-time pull and keeps its name as the lint-visible cancellation
// touchpoint.
func (c *batchCursor) pull(ctx *Ctx) (Row, bool, error) {
	for c.pos >= c.buf.Len() {
		if c.done {
			return nil, false, nil
		}
		if err := pullBatch(ctx, c.child, &c.buf); err != nil {
			return nil, false, err
		}
		c.pos = 0
		if c.buf.Len() == 0 {
			c.done = true
			return nil, false, nil
		}
	}
	r := c.buf.Row(c.pos)
	c.pos++
	return r, true, nil
}

// close releases the cursor's in-flight accounting and buffer; the child is
// closed by the owning operator.
func (c *batchCursor) close(ctx *Ctx) {
	ctx.release(c.buf.held)
	c.buf.held = 0
	c.buf.free()
}
