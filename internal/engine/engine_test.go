package engine_test

import (
	"strings"
	"testing"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

func loadStore(t *testing.T) (*fixtures.MovieDB, *storage.Store) {
	t.Helper()
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func run(t *testing.T, s *storage.Store, plan engine.Op) ([]engine.Row, engine.Metrics) {
	t.Helper()
	rows, m, err := engine.Exec(s, plan)
	if err != nil {
		t.Fatalf("exec: %v\nplan:\n%s", err, engine.Explain(plan))
	}
	return rows, m
}

func TestScanAndFilter(t *testing.T) {
	_, s := loadStore(t)
	plan := &engine.Filter{
		Input: &engine.ScanTag{Color: "red", Tag: "name"},
		Col:   0,
		Pred:  engine.Pred{Kind: "contains", Value: "Eve"},
	}
	rows, m := run(t, s, plan)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if m.ContentReads == 0 {
		t.Fatal("filter should read content")
	}
}

func TestEqContentAndContainsScan(t *testing.T) {
	_, s := loadStore(t)
	rows, _ := run(t, s, &engine.EqContent{Color: "red", Tag: "name", Value: "Comedy"})
	if len(rows) != 1 {
		t.Fatalf("EqContent rows = %d", len(rows))
	}
	rows, _ = run(t, s, &engine.ContainsScan{Color: "green", Tag: "name",
		Pred: engine.Pred{Kind: "contains", Value: "Oscar"}})
	if len(rows) != 1 {
		t.Fatalf("ContainsScan rows = %d", len(rows))
	}
}

// TestQ1PlanMCT evaluates paper query Q1 on the physical store: comedy
// movies whose title contains Eve, all within the red tree.
func TestQ1PlanMCT(t *testing.T) {
	_, s := loadStore(t)
	comedy := &engine.ExistsJoin{
		Input:    &engine.ScanTag{Color: "red", Tag: "movie-genre"},
		Probe:    &engine.EqContent{Color: "red", Tag: "name", Value: "Comedy"},
		Col:      0,
		ProbeCol: 0,
		Axis:     join.ParentChild,
	}
	movies := &engine.StructJoin{
		Anc:    comedy,
		Desc:   &engine.ContainsScan{Color: "red", Tag: "name", Pred: engine.Pred{Kind: "contains", Value: "Eve"}},
		AncCol: 0, DescCol: 0,
		Axis: join.AncestorDescendant,
	}
	// movies: rows (genre, name); restrict name's parent to be a movie.
	full := &engine.StructJoin{
		Anc:    &engine.ScanTag{Color: "red", Tag: "movie"},
		Desc:   movies,
		AncCol: 0, DescCol: 1,
		Axis: join.ParentChild,
	}
	rows, m := run(t, s, full)
	if len(rows) != 1 {
		t.Fatalf("Q1 rows = %d\n%s", len(rows), engine.Explain(full))
	}
	content, err := engine.FetchContents(&engine.Ctx{S: s}, rows, 2)
	if err != nil || content[0] != "All About Eve" {
		t.Fatalf("Q1 content = %v, %v", content, err)
	}
	if m.StructJoins == 0 {
		t.Fatal("expected structural join activity")
	}
	if m.CrossJoins != 0 || m.ValueJoins != 0 {
		t.Fatal("single-color plan should not cross or value join")
	}
}

// TestQ2PlanMCTWithColorCrossing: Oscar-nominated comedies via a cross-tree
// join from red movies into the green hierarchy.
func TestQ2PlanMCTWithColorCrossing(t *testing.T) {
	_, s := loadStore(t)
	comedyMovies := &engine.StructJoin{
		Anc: &engine.ExistsJoin{
			Input:    &engine.ScanTag{Color: "red", Tag: "movie-genre"},
			Probe:    &engine.EqContent{Color: "red", Tag: "name", Value: "Comedy"},
			Col:      0,
			ProbeCol: 0,
			Axis:     join.ParentChild,
		},
		Desc:   &engine.ScanTag{Color: "red", Tag: "movie"},
		AncCol: 0, DescCol: 0,
		Axis: join.AncestorDescendant,
	}
	// Cross into green: survivors are Oscar nominated (all green movies sit
	// under the Oscar award in the fixture).
	crossed := &engine.CrossColor{Input: comedyMovies, Col: 1, To: "green"}
	rows, m := run(t, s, crossed)
	if len(rows) != 2 { // eve, hot
		t.Fatalf("Q2 rows = %d", len(rows))
	}
	if m.CrossJoins == 0 {
		t.Fatal("expected cross-tree joins")
	}
}

// TestShallowValueJoinPlan mimics the shallow representation: relate movies
// to roles via ID/IDREF value joins instead of structure.
func TestShallowValueJoinPlan(t *testing.T) {
	m := fixtures.NewMovieDB()
	for i, key := range []string{"eve", "hot", "duck", "angry"} {
		id := string(rune('a' + i))
		if _, err := m.DB.SetAttribute(m.Node(key), "id", id); err != nil {
			t.Fatal(err)
		}
		if _, err := m.DB.SetAttribute(m.Node(key+"-role"), "movieIdRef", id); err != nil {
			t.Fatal(err)
		}
	}
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := &engine.ValueJoin{
		Left:     &engine.ScanTag{Color: "red", Tag: "movie"},
		Right:    &engine.ScanTag{Color: "red", Tag: "movie-role"},
		LeftCol:  0,
		RightCol: 0,
		LeftKey:  engine.Key{Attr: "id"},
		RightKey: engine.Key{Attr: "movieIdRef"},
	}
	rows, met := run(t, s, plan)
	if len(rows) != 4 {
		t.Fatalf("value join rows = %d", len(rows))
	}
	if met.ValueJoins == 0 {
		t.Fatal("expected value join probes")
	}
}

func TestNLJoinInequality(t *testing.T) {
	_, s := loadStore(t)
	plan := &engine.NLJoin{
		Left:     &engine.ScanTag{Color: "green", Tag: "votes"},
		Right:    &engine.ScanTag{Color: "green", Tag: "votes"},
		LeftCol:  0,
		RightCol: 0,
		Kind:     "gt",
		Numeric:  true,
	}
	rows, _ := run(t, s, plan)
	// votes 14, 9, 11 -> numeric gt pairs: (14,9) (14,11) (11,9) = 3.
	if len(rows) != 3 {
		t.Fatalf("NL rows = %d", len(rows))
	}
}

func TestDedupAndProjectAndSort(t *testing.T) {
	_, s := loadStore(t)
	// Roles joined up to movies twice produce duplicate movie bindings.
	j := &engine.StructJoin{
		Anc:    &engine.ScanTag{Color: "red", Tag: "movie-genre"},
		Desc:   &engine.ScanTag{Color: "red", Tag: "name"},
		AncCol: 0, DescCol: 0,
		Axis: join.AncestorDescendant,
	}
	proj := &engine.Project{Input: j, Cols: []int{0}}
	rows, _ := run(t, s, proj)
	d := &engine.Dedup{Input: proj, Col: 0}
	dedup, _ := run(t, s, d)
	if len(dedup) >= len(rows) {
		t.Fatalf("dedup did not shrink: %d -> %d", len(rows), len(dedup))
	}
	if len(dedup) != 3 {
		t.Fatalf("distinct genres with names = %d", len(dedup))
	}
	sorted, _ := run(t, s, &engine.SortStart{Input: d, Col: 0})
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1][0].Start > sorted[i][0].Start {
			t.Fatal("not sorted")
		}
	}
}

func TestDedupContent(t *testing.T) {
	_, s := loadStore(t)
	// All red name nodes; dedup by content collapses duplicates (none in the
	// fixture are duplicated, but the operator must at least not grow).
	plan := &engine.DedupContent{Input: &engine.ScanTag{Color: "red", Tag: "name"}, Col: 0}
	rows, _ := run(t, s, plan)
	all, _ := run(t, s, &engine.ScanTag{Color: "red", Tag: "name"})
	if len(rows) > len(all) {
		t.Fatal("dedup grew")
	}
}

func TestAttrEqAndAttrFilter(t *testing.T) {
	m := fixtures.NewMovieDB()
	if _, err := m.DB.SetAttribute(m.Node("eve"), "id", "m1"); err != nil {
		t.Fatal(err)
	}
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := run(t, s, &engine.AttrEq{Color: "red", Name: "id", Value: "m1"})
	if len(rows) != 1 {
		t.Fatalf("AttrEq rows = %d", len(rows))
	}
	filt := &engine.AttrFilter{
		Input: &engine.ScanTag{Color: "red", Tag: "movie"},
		Col:   0, Name: "id",
		Pred: engine.Pred{Kind: "eq", Value: "m1"},
	}
	rows, _ = run(t, s, filt)
	if len(rows) != 1 {
		t.Fatalf("AttrFilter rows = %d", len(rows))
	}
}

func TestExplainRendering(t *testing.T) {
	plan := &engine.CrossColor{
		Input: &engine.StructJoin{
			Anc:  &engine.ScanTag{Color: "red", Tag: "movie-genre"},
			Desc: &engine.ScanTag{Color: "red", Tag: "movie"},
			Axis: join.AncestorDescendant,
		},
		Col: 1, To: "green",
	}
	out := engine.Explain(plan)
	for _, frag := range []string{"CrossColor", "StructJoin", "ScanTag{red}movie-genre", "ScanTag{red}movie"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("explain missing %q:\n%s", frag, out)
		}
	}
	// Children are indented under parents.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 || strings.HasPrefix(lines[0], " ") || !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("explain shape:\n%s", out)
	}
}

func TestPredKinds(t *testing.T) {
	cases := []struct {
		pred    engine.Pred
		content string
		want    bool
	}{
		{engine.Pred{Kind: "eq", Value: "x"}, "x", true},
		{engine.Pred{Kind: "ne", Value: "x"}, "y", true},
		{engine.Pred{Kind: "contains", Value: "bc"}, "abcd", true},
		{engine.Pred{Kind: "prefix", Value: "ab"}, "abcd", true},
		{engine.Pred{Kind: "lt", Value: "10", Numeric: true}, "9", true},
		{engine.Pred{Kind: "lt", Value: "10", Numeric: false}, "9", false},
		{engine.Pred{Kind: "ge", Value: "2.5", Numeric: true}, "3", true},
		{engine.Pred{Kind: "gt", Value: "abc"}, "abd", true},
	}
	for _, c := range cases {
		got, err := c.pred.Eval(c.content)
		if err != nil || got != c.want {
			t.Errorf("%v on %q = %v, %v; want %v", c.pred, c.content, got, err, c.want)
		}
	}
	if _, err := (engine.Pred{Kind: "bogus"}).Eval("x"); err == nil {
		t.Fatal("unknown kind should error")
	}
}
