package engine

import "colorfulxml/internal/obs"

// The engine's observability instruments: one set of process-wide counters
// fed from the per-execution Metrics the executor already gathers (the
// ExplainAnalyze plumbing), folded in once per execution so the per-batch hot
// path stays free of atomic operations.
var (
	obsExecs      = obs.NewCounter("engine_execs_total")
	obsExecErrors = obs.NewCounter("engine_exec_errors_total")
	obsRowsOut    = obs.NewCounter("engine_rows_out_total")
	// Batch transfers between operators, and the rows they carried: together
	// they give the average batch fill, the vectorization health metric
	// (rows/batches near BatchSize means amortization is working).
	obsOpBatches = obs.NewCounter("engine_operator_batches_total")
	obsOpRows    = obs.NewCounter("engine_operator_rows_total")
	obsExecNanos = obs.NewHistogram("engine_exec_nanos")

	obsStructJoins  = obs.NewCounter("engine_struct_joins_total")
	obsValueJoins   = obs.NewCounter("engine_value_joins_total")
	obsIDJoins      = obs.NewCounter("engine_id_joins_total")
	obsCrossJoins   = obs.NewCounter("engine_cross_joins_total")
	obsContentReads = obs.NewCounter("engine_content_reads_total")
	obsPanics       = obs.NewCounter("engine_panics_total")
)

// foldObs publishes one finished execution's accumulated context into the
// registry: a handful of atomic adds per query, not per row.
func foldObs(ctx *Ctx, sw obs.Stopwatch, rows int, err error) {
	obsExecs.Inc()
	obsExecNanos.Observe(sw.ElapsedNanos())
	if err != nil {
		obsExecErrors.Inc()
	}
	obsRowsOut.Add(uint64(rows))
	obsOpBatches.Add(uint64(ctx.totalBatches))
	obsOpRows.Add(uint64(ctx.totalRows))
	addNZ := func(c *obs.Counter, n int) {
		if n > 0 {
			c.Add(uint64(n))
		}
	}
	addNZ(obsStructJoins, ctx.M.StructJoins)
	addNZ(obsValueJoins, ctx.M.ValueJoins)
	addNZ(obsIDJoins, ctx.M.IDJoins)
	addNZ(obsCrossJoins, ctx.M.CrossJoins)
	addNZ(obsContentReads, ctx.M.ContentReads)
}
