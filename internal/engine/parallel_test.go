package engine_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/storage"
)

// bigStore builds a single-color database with n <item> leaves under a root,
// large enough that exchange partitions are non-trivial.
func bigStore(t *testing.T, n int) *storage.Store {
	t.Helper()
	db := core.NewDatabase("red")
	root, err := db.AddElement(db.Document(), "lib", "red")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.AddElementText(root, "item", "red", fmt.Sprintf("v%d", i%10)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := storage.Load(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func exchangeOver(parts int, mk func(part, of int) engine.Op) *engine.Exchange {
	ex := &engine.Exchange{}
	for i := 0; i < parts; i++ {
		ex.Parts = append(ex.Parts, mk(i, parts))
	}
	return ex
}

func TestExchangePreservesScanOrder(t *testing.T) {
	s := bigStore(t, 1000)
	serial, _ := run(t, s, &engine.ScanTag{Color: "red", Tag: "item"})
	for _, parts := range []int{1, 2, 3, 4, 7} {
		ex := exchangeOver(parts, func(part, of int) engine.Op {
			return &engine.ScanTag{Color: "red", Tag: "item", Part: part, Of: of}
		})
		rows, _ := run(t, s, ex)
		if !reflect.DeepEqual(rows, serial) {
			t.Fatalf("%d-way exchange diverges from serial scan (%d vs %d rows)",
				parts, len(rows), len(serial))
		}
	}
}

func TestExchangeMergesMetricsAndStats(t *testing.T) {
	s := bigStore(t, 600)
	mk := func(part, of int) engine.Op {
		return &engine.ContainsScan{Color: "red", Tag: "item",
			Pred: engine.Pred{Kind: "eq", Value: "v3"}, Part: part, Of: of}
	}
	serialRows, serialM := run(t, s, mk(0, 1))
	ex := exchangeOver(4, mk)
	an, err := engine.ExplainAnalyze(s, ex)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(an.Rows, serialRows) {
		t.Fatalf("parallel rows diverge: %d vs %d", len(an.Rows), len(serialRows))
	}
	// Every candidate is read exactly once across the partitions.
	if an.Metrics.ContentReads != serialM.ContentReads {
		t.Fatalf("merged ContentReads = %d, serial = %d", an.Metrics.ContentReads, serialM.ContentReads)
	}
	if !strings.Contains(an.Text, "Exchange[4 ways]") {
		t.Fatalf("analyze output lacks exchange header:\n%s", an.Text)
	}
	for i := 1; i <= 4; i++ {
		if !strings.Contains(an.Text, fmt.Sprintf("part %d/4", i)) {
			t.Fatalf("analyze output lacks partition %d:\n%s", i, an.Text)
		}
	}
	// Per-partition row attribution must be present (rows split across parts).
	if strings.Count(an.Text, "rows=15") != 4 { // 600 items, 60 v3s, 4 even parts
		t.Fatalf("expected 4 partitions with rows=15:\n%s", an.Text)
	}
}

func TestExchangeEarlyClose(t *testing.T) {
	// More rows than the exchange buffers can hold, so workers are still
	// blocked on their channels when the consumer abandons the scan.
	s := bigStore(t, 3000)
	ex := exchangeOver(4, func(part, of int) engine.Op {
		return &engine.ScanTag{Color: "red", Tag: "item", Part: part, Of: of}
	})
	ctx := &engine.Ctx{S: s}
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var b engine.Batch
	if err := ex.NextBatch(ctx, &b); err != nil || b.Len() == 0 {
		t.Fatalf("first batch: len=%d err=%v", b.Len(), err)
	}
	if err := ex.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Re-open after close: the exchange must be reusable like any operator.
	rows, _ := run(t, s, ex)
	if len(rows) != 3000 {
		t.Fatalf("rows after reopen = %d, want 3000", len(rows))
	}
}

// failOp emits one batch of a few rows and then fails.
type failOp struct {
	n   int
	pos int
}

var errBoom = errors.New("boom")

func (o *failOp) Open(ctx *engine.Ctx) error { o.pos = 0; return nil }
func (o *failOp) NextBatch(ctx *engine.Ctx, out *engine.Batch) error {
	out.Reset()
	if o.pos >= o.n {
		return errBoom
	}
	for o.pos < o.n && !out.Full() {
		o.pos++
		out.AppendRow(engine.Row{{}})
	}
	return nil
}
func (o *failOp) Close(ctx *engine.Ctx) error { return nil }
func (o *failOp) Children() []engine.Op       { return nil }
func (o *failOp) Clone() engine.Op            { return &failOp{n: o.n} }
func (o *failOp) String() string              { return "failOp" }

func TestExchangePropagatesWorkerError(t *testing.T) {
	s := bigStore(t, 10)
	ex := &engine.Exchange{Parts: []engine.Op{
		&engine.ScanTag{Color: "red", Tag: "item", Part: 0, Of: 2},
		&failOp{n: 3},
	}}
	_, _, err := engine.Exec(s, ex)
	if !errors.Is(err, errBoom) {
		t.Fatalf("Exec error = %v, want errBoom", err)
	}
}
