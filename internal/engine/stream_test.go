package engine_test

import (
	"strings"
	"testing"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

func movieStore(t *testing.T) *storage.Store {
	t.Helper()
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamingBatches: rows arrive in batches through the iterator
// interface, and a plan may be closed early without exhausting it.
func TestStreamingBatches(t *testing.T) {
	s := movieStore(t)
	op := &engine.ScanTag{Color: "red", Tag: "movie"}
	ctx := &engine.Ctx{S: s}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var b engine.Batch
	if err := op.NextBatch(ctx, &b); err != nil {
		t.Fatalf("first NextBatch: %v", err)
	}
	if b.Len() == 0 {
		t.Fatal("first batch is empty")
	}
	if b.Cols() != 1 || len(b.Row(0)) != 1 {
		t.Fatalf("scan rows have one column, got %d", b.Cols())
	}
	// Abandon the scan early: Close must succeed and be idempotent.
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestReopenable: the same plan instance executes repeatedly with identical
// results (Open fully re-prepares state after Close).
func TestReopenable(t *testing.T) {
	s := movieStore(t)
	plan := &engine.Dedup{
		Input: &engine.StructJoin{
			Anc:    &engine.ScanTag{Color: "red", Tag: "movie"},
			Desc:   &engine.ScanTag{Color: "red", Tag: "name"},
			AncCol: 0, DescCol: 0,
			Axis: join.ParentChild,
		},
		Col: 1,
	}
	first, _, err := engine.Exec(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := engine.Exec(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("re-execution differs: %d vs %d rows", len(first), len(second))
	}
	for i := range first {
		if first[i][1].Elem != second[i][1].Elem {
			t.Fatalf("row %d differs across executions", i)
		}
	}
}

// TestChildrenExposeWholeTree: every operator reports its direct inputs, so a
// generic walk (and therefore Explain) reaches the entire plan.
func TestChildrenExposeWholeTree(t *testing.T) {
	scanMovies := &engine.ScanTag{Color: "red", Tag: "movie"}
	scanNames := &engine.ScanTag{Color: "red", Tag: "name"}
	probe := &engine.EqContent{Color: "green", Tag: "name", Value: "Oscar"}
	plan := &engine.Dedup{
		Input: &engine.ExistsJoin{
			Input: &engine.CrossColor{
				Input: &engine.StructJoin{
					Anc: scanMovies, Desc: scanNames,
					AncCol: 0, DescCol: 0, Axis: join.ParentChild,
				},
				Col: 0, To: "green",
			},
			Probe: probe, Col: 2, ProbeCol: 0,
			Axis: join.AncestorDescendant, InputIsDesc: true,
		},
		Col: 0,
	}
	var count int
	var walk func(op engine.Op)
	walk = func(op engine.Op) {
		count++
		for _, ch := range op.Children() {
			walk(ch)
		}
	}
	walk(plan)
	if count != 7 {
		t.Fatalf("Children() walk reached %d of 7 operators", count)
	}
	ex := engine.Explain(plan)
	for _, want := range []string{"Dedup", "ExistsJoin", "CrossColor", "StructJoin", "ScanTag", "EqContent"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("Explain misses %s:\n%s", want, ex)
		}
	}
}

// TestPeakMaterialization: a scan-filter-project pipeline holds only its
// in-flight batches (bounded by pipeline depth × BatchSize), while explicit
// pipeline breakers (here a hash-join build side) additionally hold whole
// build sides, and ExplainAnalyze reports the peak of both.
func TestPeakMaterialization(t *testing.T) {
	s := movieStore(t)
	streaming := &engine.Project{
		Input: &engine.Filter{
			Input: &engine.ScanTag{Color: "red", Tag: "name"},
			Col:   0,
			Pred:  engine.Pred{Kind: "contains", Value: "e"},
		},
		Cols: []int{0},
	}
	an, err := engine.ExplainAnalyze(s, streaming)
	if err != nil {
		t.Fatal(err)
	}
	if an.PeakMaterialized <= 0 {
		t.Fatalf("in-flight batch rows should be counted, peak=%d\n%s",
			an.PeakMaterialized, an.Text)
	}
	// Three transfer edges (scan->filter, filter->project, project->executor),
	// each at most one batch in flight.
	if an.PeakMaterialized > 3*engine.BatchSize {
		t.Fatalf("streaming pipeline peak %d exceeds its in-flight batch bound %d\n%s",
			an.PeakMaterialized, 3*engine.BatchSize, an.Text)
	}
	if len(an.Rows) == 0 {
		t.Fatal("expected some matching names")
	}

	breaker := &engine.IDJoin{
		Left:    &engine.ScanTag{Color: "red", Tag: "movie"},
		Right:   &engine.ScanTag{Color: "green", Tag: "movie"},
		LeftCol: 0, RightCol: 0,
	}
	an, err = engine.ExplainAnalyze(s, breaker)
	if err != nil {
		t.Fatal(err)
	}
	if an.PeakMaterialized <= 0 {
		t.Fatalf("hash join build side should be counted, peak=%d", an.PeakMaterialized)
	}
	if !strings.Contains(an.Text, "peak live") {
		t.Fatalf("analyzed text misses the peak line:\n%s", an.Text)
	}
}
