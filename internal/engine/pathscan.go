package engine

import (
	"fmt"

	"colorfulxml/internal/core"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

// PathScan is the path-summary access path: it probes the store's DataGuide
// summary (storage.PathSummary) with a root-anchored colored label-path
// pattern and reads exactly the nodes on matching paths, replacing an entire
// structural-join chain for path expressions the summary fully resolves. It
// emits the final step's nodes as single-column rows in start order, each
// node at most once (a node has exactly one root path) — the multiplicity a
// structural join would produce for multiple witnesses collapses, which is
// value-equivalent for the deduplicated result sets compiled plans produce.
//
// A materializing leaf: the (summary-bounded) result is resolved and sorted
// at Open, then emitted in bulk batches.
type PathScan struct {
	Color core.Color
	Steps []storage.PathStep

	nodes []storage.SNode
	pos   int
	held  int
}

// Open implements Op.
func (o *PathScan) Open(ctx *Ctx) error {
	ps, err := ctx.S.PathSummary(o.Color)
	if err != nil {
		return err
	}
	refs := ps.Match(o.Steps)
	o.nodes = make([]storage.SNode, 0, len(refs))
	for _, ref := range refs {
		sn, err := ctx.S.StructByRef(ref, o.Color)
		if err != nil {
			return err
		}
		o.nodes = append(o.nodes, sn)
	}
	// Refs arrive per-path; merge into global start (document) order.
	join.SortByStart(o.nodes)
	o.pos = 0
	o.held = len(o.nodes)
	ctx.hold(o, o.held)
	return nil
}

// NextBatch implements Op: a bulk emit of the resolved nodes (the per-batch
// cancellation check in pullBatch suffices — there is no per-row work here).
func (o *PathScan) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	o.pos += out.appendNodes(o.nodes[o.pos:])
	return nil
}

// Close implements Op.
func (o *PathScan) Close(ctx *Ctx) error {
	ctx.release(o.held)
	o.held = 0
	o.nodes = nil
	return nil
}

// Children implements Op.
func (o *PathScan) Children() []Op { return nil }

func (o *PathScan) String() string {
	return fmt.Sprintf("PathScan{%s}%s", o.Color, storage.PathString(o.Steps))
}
