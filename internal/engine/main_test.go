package engine_test

import (
	"os"
	"testing"

	"colorfulxml/internal/lint/linttest"
)

// TestMain verifies no test leaves a goroutine behind: Exchange workers
// and parallel operators must drain when their pipeline closes.
func TestMain(m *testing.M) {
	os.Exit(linttest.VerifyTestMain(m))
}
