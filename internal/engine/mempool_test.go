package engine

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

// TestMemPoolChunkReuse: the free list is deterministic — a released chunk
// is the next one handed out, and retention is bounded.
func TestMemPoolChunkReuse(t *testing.T) {
	p := &MemPool{}
	c := p.getChunk()
	if got := p.Stats(); got.Reused != 0 {
		t.Fatalf("fresh pool reported reuse: %+v", got)
	}
	p.putChunk(c)
	c2 := p.getChunk()
	if &c[0] != &c2[0] {
		t.Fatal("released chunk was not the next one handed out")
	}
	if got := p.Stats(); got.Reused != 1 || got.Recycled != 1 {
		t.Fatalf("stats = %+v, want 1 reused / 1 recycled", got)
	}
	// Retention is bounded: releases beyond the cap are dropped.
	for i := 0; i < memPoolMaxChunks+3; i++ {
		p.putChunk(make([]storage.SNode, arenaChunkNodes))
	}
	if got := p.Stats().Chunks; got != memPoolMaxChunks {
		t.Fatalf("retained %d chunks, want cap %d", got, memPoolMaxChunks)
	}
	// Wrong-sized slices are never pooled.
	p.putChunk(make([]storage.SNode, 10))
	for i := 0; i < memPoolMaxChunks; i++ {
		if got := len(p.getChunk()); got != arenaChunkNodes {
			t.Fatalf("pooled chunk has %d nodes, want %d", got, arenaChunkNodes)
		}
	}
}

// TestMemPoolBufSizing: buffers are recycled only when big enough, and
// always handed out empty.
func TestMemPoolBufSizing(t *testing.T) {
	p := &MemPool{}
	b := p.getBuf(100)
	b = append(b, storage.SNode{Start: 7})
	p.putBuf(b)
	got := p.getBuf(50)
	if cap(got) < 50 || len(got) != 0 {
		t.Fatalf("recycled buf: len=%d cap=%d, want empty with cap >= 50", len(got), cap(got))
	}
	if &b[:1][0] != &got[:1][0] {
		t.Fatal("smaller request did not reuse the released buffer")
	}
	// A request larger than anything pooled allocates fresh.
	p.putBuf(got)
	big := p.getBuf(10_000)
	if cap(big) < 10_000 {
		t.Fatalf("oversize request: cap=%d, want >= 10000", cap(big))
	}
	// nil pool is inert.
	var np *MemPool
	if b := np.getBuf(8); cap(b) < 8 {
		t.Fatal("nil pool getBuf under-allocated")
	}
	np.putBuf(b)
	np.putChunk(np.getChunk())
}

// mempoolTestPlan is a plan with build sides and dedup, so executions use
// the arena (build rows, pending outputs) as well as batch buffers.
func mempoolTestPlan() Op {
	return &Dedup{
		Col: 1,
		Input: &StructJoin{
			Anc:     &ScanTag{Color: "red", Tag: "movie"},
			Desc:    &ScanTag{Color: "red", Tag: "name"},
			AncCol:  0,
			DescCol: 0,
			Axis:    join.AncestorDescendant,
		},
	}
}

func mempoolTestStore(t *testing.T) *storage.Store {
	t.Helper()
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func streamKeys(t *testing.T, s *storage.Store, pool *MemPool, proto Op) []string {
	t.Helper()
	var keys []string
	_, err := ExecBatchesPooled(nil, s, pool, proto.Clone(), func(b *Batch) error {
		for i := 0; i < b.Len(); i++ {
			r := b.Row(i)
			keys = append(keys, fmt.Sprintf("%v", r))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	return keys
}

// TestExecBatchesPooledMatchesUnpooled: repeated pooled executions return
// exactly what the unpooled executor returns, and from the second run on
// the scratch actually comes from the pool.
func TestExecBatchesPooledMatchesUnpooled(t *testing.T) {
	s := mempoolTestStore(t)
	proto := mempoolTestPlan()
	want := streamKeys(t, s, nil, proto)
	if len(want) == 0 {
		t.Fatal("fixture plan returned no rows")
	}
	pool := &MemPool{}
	for i := 0; i < 5; i++ {
		got := streamKeys(t, s, pool, proto)
		if len(got) != len(want) {
			t.Fatalf("run %d: %d rows, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("run %d row %d: %q, want %q", i, j, got[j], want[j])
			}
		}
	}
	st := pool.Stats()
	if st.Recycled == 0 || st.Reused == 0 {
		t.Fatalf("pool never cycled scratch: %+v", st)
	}
}

// TestMemPoolConcurrentExecutions: many goroutines execute clones of one
// prototype against one shared pool — the cached-plan serving shape. All
// results agree with a solo run. Run under -race.
func TestMemPoolConcurrentExecutions(t *testing.T) {
	s := mempoolTestStore(t)
	proto := mempoolTestPlan()
	want := streamKeys(t, s, nil, proto)
	pool := &MemPool{}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var n int
				_, err := ExecBatchesPooled(nil, s, pool, proto.Clone(), func(b *Batch) error {
					n += b.Len()
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				if n != len(want) {
					errs <- fmt.Errorf("pooled run returned %d rows, want %d", n, len(want))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
