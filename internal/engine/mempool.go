package engine

import (
	"sync"

	"colorfulxml/internal/storage"
)

// MemPool recycles execution scratch memory — arena chunks and batch
// buffers — across executions that share one pool. The natural owner is a
// compiled plan: a cached (or prepared) plan is executed many times with the
// same operator shapes and therefore the same scratch demand, so the memory
// its first execution allocated is exactly what the next one needs. A
// one-shot compilation gets a cold pool and recycles nothing, which is the
// correct cost model: there is no later execution to save for.
//
// Per-query scratch is the dominant allocation of the vectorized executor
// (arena chunks for rows that outlive a batch boundary, row-major batch
// buffers), and it is all garbage the moment the execution's results are
// consumed — recycling it converts the executor's steady-state GC pressure
// into a handful of long-lived buffers.
//
// Safety rests on two invariants of the batch executor (see batch.go):
// rows handed to a consumer are always copies into the consumer-owned batch
// buffer (never views into the arena), and the streaming entry points'
// callers copy what they keep out of each visited batch. So once an
// execution finishes, nothing references its chunks or buffers, and
// ExecBatchesPooled returns them here. The materializing entry points
// (Exec, TraceExec) return arena-backed rows to the caller and therefore
// never recycle.
//
// The pool is a bounded LIFO free list, not a sync.Pool: releases beyond
// the bound are dropped for the GC, so a pool retains at most
// memPoolMaxChunks chunks + memPoolMaxBufs buffers no matter how many
// executions it served, and an idle plan's pool costs a few MB at worst.
type MemPool struct {
	mu     sync.Mutex
	chunks [][]storage.SNode
	bufs   [][]storage.SNode

	// reused/recycled count successful gets and puts, for tests and for the
	// curious: they are not mirrored into obs (the pool is per-plan and the
	// registry is process-global).
	reused   uint64
	recycled uint64
}

const (
	// memPoolMaxChunks bounds retained arena chunks (~1MB each): enough for
	// a plan with a couple of build sides, small enough that even a full
	// plan cache of hot entries stays tens of MB.
	memPoolMaxChunks = 4
	// memPoolMaxBufs bounds retained batch buffers (at most
	// BatchSize*row-width nodes each; typically far smaller than a chunk).
	memPoolMaxBufs = 8
)

// getChunk returns a recycled arena chunk or a fresh one. Recycled chunks
// are NOT zeroed; arena.alloc's callers fully overwrite every slice they
// carve (copyRow, concatRow), which is what makes reuse sound.
func (p *MemPool) getChunk() []storage.SNode {
	if p != nil {
		p.mu.Lock()
		if n := len(p.chunks); n > 0 {
			c := p.chunks[n-1]
			p.chunks[n-1] = nil
			p.chunks = p.chunks[:n-1]
			p.reused++
			p.mu.Unlock()
			return c
		}
		p.mu.Unlock()
	}
	return make([]storage.SNode, arenaChunkNodes)
}

// putChunk returns an arena chunk to the free list, dropping it if the pool
// is full.
func (p *MemPool) putChunk(c []storage.SNode) {
	if p == nil || len(c) != arenaChunkNodes {
		return
	}
	p.mu.Lock()
	if len(p.chunks) < memPoolMaxChunks {
		p.chunks = append(p.chunks, c)
		p.recycled++
	}
	p.mu.Unlock()
}

// getBuf returns a batch buffer with capacity for at least need nodes,
// recycled when the free list has one big enough.
func (p *MemPool) getBuf(need int) []storage.SNode {
	if p != nil {
		p.mu.Lock()
		for i := len(p.bufs) - 1; i >= 0; i-- {
			if cap(p.bufs[i]) >= need {
				b := p.bufs[i]
				last := len(p.bufs) - 1
				p.bufs[i] = p.bufs[last]
				p.bufs[last] = nil
				p.bufs = p.bufs[:last]
				p.reused++
				p.mu.Unlock()
				return b[:0]
			}
		}
		p.mu.Unlock()
	}
	return make([]storage.SNode, 0, need)
}

// putBuf returns a batch buffer to the free list, dropping it if the pool
// is full.
func (p *MemPool) putBuf(b []storage.SNode) {
	if p == nil || cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < memPoolMaxBufs {
		p.bufs = append(p.bufs, b[:0])
		p.recycled++
	}
	p.mu.Unlock()
}

// MemPoolStats is a point-in-time view of a pool's retention and traffic.
type MemPoolStats struct {
	Chunks   int    `json:"chunks"`
	Bufs     int    `json:"bufs"`
	Reused   uint64 `json:"reused"`
	Recycled uint64 `json:"recycled"`
}

// Stats returns the pool's counters.
func (p *MemPool) Stats() MemPoolStats {
	if p == nil {
		return MemPoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return MemPoolStats{
		Chunks:   len(p.chunks),
		Bufs:     len(p.bufs),
		Reused:   p.reused,
		Recycled: p.recycled,
	}
}
