package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"colorfulxml/internal/storage"
)

// endlessOp produces full batches forever; used to prove cancellation
// interrupts a runaway plan.
type endlessOp struct{}

func (endlessOp) Open(*Ctx) error { return nil }
func (endlessOp) NextBatch(_ *Ctx, out *Batch) error {
	out.Reset()
	for !out.Full() {
		out.AppendRow(Row{storage.SNode{}})
	}
	return nil
}
func (endlessOp) Close(*Ctx) error { return nil }
func (endlessOp) Children() []Op   { return nil }
func (endlessOp) Clone() Op        { return endlessOp{} }
func (endlessOp) String() string   { return "Endless" }

// panicOp emits one-row batches and panics on the nth NextBatch call.
type panicOp struct{ n, at int }

func (p *panicOp) Open(*Ctx) error { p.n = 0; return nil }
func (p *panicOp) NextBatch(_ *Ctx, out *Batch) error {
	out.Reset()
	p.n++
	if p.n >= p.at {
		panic("operator bug")
	}
	out.AppendRow(Row{storage.SNode{}})
	return nil
}
func (p *panicOp) Close(*Ctx) error { return nil }
func (p *panicOp) Children() []Op   { return nil }
func (p *panicOp) Clone() Op        { return &panicOp{at: p.at} }
func (p *panicOp) String() string   { return "Panicker" }

func TestExecContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ExecContext(ctx, nil, endlessOp{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExecWithoutContextStillWorks(t *testing.T) {
	_, _, err := ExecContext(context.Background(), nil, &panicOp{at: 3})
	if err == nil {
		t.Fatal("expected the contained panic as an error")
	}
}

func TestPanicContainedWithLabel(t *testing.T) {
	rows, _, err := Exec(nil, &panicOp{at: 5})
	if err == nil || rows != nil {
		t.Fatalf("rows=%v err=%v, want contained panic", rows, err)
	}
	if !strings.Contains(err.Error(), "Panicker") || !strings.Contains(err.Error(), "operator bug") {
		t.Fatalf("error does not carry the plan node label: %v", err)
	}
}

func TestPanicContainedInExchangeWorker(t *testing.T) {
	ex := &Exchange{Parts: []Op{&panicOp{at: 200}}}
	_, _, err := Exec(nil, ex)
	if err == nil {
		t.Fatal("expected worker panic surfaced as error")
	}
	if !strings.Contains(err.Error(), "Panicker") {
		t.Fatalf("error does not carry the partition label: %v", err)
	}
}

func TestExchangeCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &Exchange{Parts: []Op{endlessOp{}}}
	_, _, err := ExecContext(ctx, nil, ex)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
