package engine_test

import (
	"fmt"
	"sync"
	"testing"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
)

// wideplan builds one tree touching every operator kind, so the clone tests
// cover the full algebra (Exchange and PathScan are exercised separately —
// Exchange below, PathScan against a store with a summary).
func widePlan() engine.Op {
	scan := func(tag string) engine.Op { return &engine.ScanTag{Color: "red", Tag: tag} }
	return &engine.Project{
		Cols: []int{0},
		Input: &engine.SortStart{
			Col: 0,
			Input: &engine.Dedup{
				Col: 0,
				Input: &engine.DedupContent{
					Col: 0,
					Input: &engine.DedupAttr{
						Col:  0,
						Name: "id",
						Input: &engine.Filter{
							Col:  0,
							Pred: engine.Pred{Kind: "contains", Value: "x"},
							Input: &engine.AttrFilter{
								Col:  0,
								Name: "id",
								Pred: engine.Pred{Kind: "ne", Value: ""},
								Input: &engine.StructJoin{
									AncCol:  0,
									DescCol: 0,
									Axis:    join.AncestorDescendant,
									Anc: &engine.ExistsJoin{
										Col:      0,
										ProbeCol: 0,
										Axis:     join.AncestorDescendant,
										Input:    scan("a"),
										Probe:    scan("b"),
									},
									Desc: &engine.CrossColor{
										Col: 0,
										To:  "blue",
										Input: &engine.ValueJoin{
											LeftCol:  0,
											RightCol: 0,
											LeftKey:  engine.Key{Attr: "ref"},
											RightKey: engine.Key{Attr: "id"},
											Left: &engine.IDJoin{
												LeftCol:  0,
												RightCol: 0,
												Left:     scan("c"),
												Right:    scan("d"),
											},
											Right: &engine.NLJoin{
												LeftCol:  0,
												RightCol: 0,
												Kind:     "lt",
												Numeric:  true,
												Left:     &engine.EqContent{Color: "red", Tag: "e", Value: "v"},
												Right: &engine.ContainsScan{
													Color: "red", Tag: "f",
													Pred: engine.Pred{Kind: "eq", Value: "v"},
												},
											},
										},
									},
								},
							},
						},
					},
				},
			},
		},
	}
}

// collectOps flattens a tree preorder.
func collectOps(op engine.Op) []engine.Op {
	out := []engine.Op{op}
	for _, ch := range op.Children() {
		out = append(out, collectOps(ch)...)
	}
	return out
}

// TestCloneCoversAlgebra asserts a clone is a structurally identical but
// physically distinct tree: same Explain rendering, no shared operator
// instances, and every operator kind represented.
func TestCloneCoversAlgebra(t *testing.T) {
	orig := &engine.Exchange{Parts: []engine.Op{
		widePlan(),
		&engine.AttrEq{Color: "red", Name: "id", Value: "1"},
		&engine.PathScan{Color: "red", Steps: []storage.PathStep{{Tag: "a", Desc: true}}},
	}}
	clone := orig.Clone()
	if got, want := engine.Explain(clone), engine.Explain(orig); got != want {
		t.Fatalf("clone renders differently:\n--- clone ---\n%s--- orig ---\n%s", got, want)
	}
	seen := map[engine.Op]bool{}
	for _, op := range collectOps(orig) {
		seen[op] = true
	}
	for _, op := range collectOps(clone) {
		if seen[op] {
			t.Fatalf("clone shares operator instance %s with original", op)
		}
	}
}

// TestClonesRunConcurrently is the re-entrancy property the plan cache
// relies on: many executions of the same prototype run concurrently, each on
// its own clone, and all agree with a solo run. Run with -race.
func TestClonesRunConcurrently(t *testing.T) {
	_, s := loadStore(t)
	proto := &engine.SortStart{
		Col: 1,
		Input: &engine.StructJoin{
			Anc:     &engine.ScanTag{Color: "red", Tag: "movie"},
			Desc:    &engine.ScanTag{Color: "red", Tag: "name"},
			AncCol:  0,
			DescCol: 0,
			Axis:    join.AncestorDescendant,
		},
	}
	want, _ := run(t, s, proto.Clone())
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, _, err := engine.Exec(s, proto.Clone())
			if err != nil {
				errs <- err
				return
			}
			if len(rows) != len(want) {
				errs <- fmt.Errorf("rows = %d, want %d", len(rows), len(want))
				return
			}
			for i := range rows {
				if rows[i][1].Start != want[i][1].Start {
					errs <- fmt.Errorf("row %d start = %d, want %d", i, rows[i][1].Start, want[i][1].Start)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
