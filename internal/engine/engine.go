// Package engine is the physical query engine over the Timber-style MCT
// store: a small algebra of composable operators (index scans, content and
// attribute filters, structural joins, cross-tree color transitions, value
// joins, duplicate elimination), an executor with per-query operator
// metrics, and plan rendering.
//
// Operators follow a vectorized Volcano model: a plan is opened once, then
// transfers rows in ~BatchSize blocks through NextBatch until an empty batch
// signals exhaustion, and is closed when done. Virtual dispatch, cancellation
// polling and ExplainAnalyze accounting are paid once per batch instead of
// once per row. Only the explicit pipeline breakers — sorts, duplicate-aware
// probe structures, and join build sides — materialize an input; everything
// else streams, so a plan's peak intermediate footprint is the sum of its
// build sides plus the in-flight batches of its pipeline, not the sum of
// every edge in the tree (ExplainAnalyze reports both).
//
// Plans may be hand-specified per query and representation, exactly as in
// the paper's Section 6.2 ("we manually specified the query plan"), or
// produced automatically by the internal/plan compiler.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"colorfulxml/internal/core"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/storage"
)

// Row is one binding tuple: a fixed number of structural-node columns.
type Row []storage.SNode

// Metrics counts operator activity during one execution.
type Metrics struct {
	StructJoins  int // structural join node comparisons emitted
	ValueJoins   int // value join probes
	IDJoins      int // element-identity join probes
	CrossJoins   int // cross-tree (color transition) link traversals
	RowsOut      int
	ContentReads int
}

// OpStats is the per-operator slice of Metrics gathered by ExplainAnalyze,
// plus the batches and rows the operator produced and the rows it
// materialized (buffered in full) as a pipeline breaker.
type OpStats struct {
	Batches      int
	Rows         int
	Materialized int
	StructJoins  int
	ValueJoins   int
	IDJoins      int
	CrossJoins   int
	ContentReads int
	// Nanos is the cumulative wall time spent inside this operator's
	// NextBatch (including its children's), accumulated only under TraceExec.
	Nanos int64
}

// Ctx carries the store and metrics through an execution.
type Ctx struct {
	S *storage.Store
	M Metrics

	// Cancel, when non-nil, is checked by pullBatch on every batch transfer;
	// a canceled or expired context aborts the execution with its error.
	// Exchange workers inherit it, so parallel scans stop too.
	Cancel context.Context
	// steps counts inner-loop iterations since the last context poll (see
	// poll).
	steps int

	// arena owns every row that outlives a batch boundary (see batch.go).
	arena arena

	// stats is per-operator attribution, non-nil only under ExplainAnalyze
	// and TraceExec.
	stats map[Op]*OpStats
	// timed makes pullBatch attribute wall time to each operator's OpStats
	// (set only by TraceExec; the default execution path never reads the
	// clock per batch).
	timed bool
	// totalBatches/totalRows count every batch transfer (and the rows it
	// carried) of the execution, folded into the engine_operator_batches /
	// engine_operator_rows instruments when the execution finishes.
	totalBatches int
	totalRows    int
	// live/peak track the intermediate rows alive at any instant — rows
	// materialized by pipeline breakers plus rows inside in-flight batches —
	// so ExplainAnalyze can report the peak footprint.
	live int
	peak int
}

func (ctx *Ctx) statsFor(o Op) *OpStats {
	if ctx.stats == nil {
		return nil
	}
	st := ctx.stats[o]
	if st == nil {
		st = &OpStats{}
		ctx.stats[o] = st
	}
	return st
}

func (ctx *Ctx) addContentReads(o Op, n int) {
	ctx.M.ContentReads += n
	if st := ctx.statsFor(o); st != nil {
		st.ContentReads += n
	}
}

func (ctx *Ctx) addStructJoins(o Op, n int) {
	ctx.M.StructJoins += n
	if st := ctx.statsFor(o); st != nil {
		st.StructJoins += n
	}
}

func (ctx *Ctx) addValueJoins(o Op, n int) {
	ctx.M.ValueJoins += n
	if st := ctx.statsFor(o); st != nil {
		st.ValueJoins += n
	}
}

func (ctx *Ctx) addIDJoins(o Op, n int) {
	ctx.M.IDJoins += n
	if st := ctx.statsFor(o); st != nil {
		st.IDJoins += n
	}
}

func (ctx *Ctx) addCrossJoins(o Op, n int) {
	ctx.M.CrossJoins += n
	if st := ctx.statsFor(o); st != nil {
		st.CrossJoins += n
	}
}

// hold records n rows materialized by a pipeline breaker; release undoes it
// when the operator closes.
func (ctx *Ctx) hold(o Op, n int) {
	ctx.live += n
	if ctx.live > ctx.peak {
		ctx.peak = ctx.live
	}
	if st := ctx.statsFor(o); st != nil {
		st.Materialized += n
	}
}

func (ctx *Ctx) release(n int) { ctx.live -= n }

// Op is a physical operator: a vectorized Volcano iterator producing row
// batches.
//
// The contract: Open prepares (or re-prepares — operators are re-openable
// after Close) all iteration state and opens streamed children. NextBatch
// resets out and fills it with up to BatchSize rows; an empty batch after
// return means the operator is exhausted (and it stays exhausted until
// reopened). The rows in out are views into the batch's buffer, valid only
// until the caller's next NextBatch on the same batch — consumers copy what
// they keep (the query arena exists for exactly this). Close releases state
// and closes children, and is idempotent. Children returns the direct inputs
// for plan rendering, so Explain can never silently drop an operator's
// subtree. Clone returns a fresh, unopened operator tree with identical
// configuration, zeroed run state and every child cloned — a compiled plan
// is a prototype, and each execution runs a clone, so one cached plan can
// serve any number of concurrent executions (see clone.go).
type Op interface {
	Open(ctx *Ctx) error
	NextBatch(ctx *Ctx, out *Batch) error
	Close(ctx *Ctx) error
	Children() []Op
	Clone() Op
	String() string
}

// cancelCheckEvery is how many inner-loop iterations pass between polls of
// Ctx.Cancel: frequent enough that a runaway query notices a deadline in
// microseconds, rare enough that the check never shows up in a profile.
const cancelCheckEvery = 64

// poll advances the step counter and, every cancelCheckEvery steps, checks
// Ctx.Cancel, returning its error if the context is done. Batch transfers
// poll unconditionally in pullBatch (once per ~1K rows); operators that loop
// over their own iteration state without pulling batches (ContainsScan
// skipping non-matching candidates, Exchange draining worker channels) must
// call poll once per iteration themselves, or a canceled query would spin to
// the end of the scan unnoticed.
func (ctx *Ctx) poll() error {
	if ctx.Cancel != nil {
		if ctx.steps++; ctx.steps >= cancelCheckEvery {
			ctx.steps = 0
			if err := ctx.Cancel.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// pullBatch draws one batch from an operator, checking cancellation and
// attributing batches/rows under ExplainAnalyze. All parents (and the
// executor) pull through this helper, so cancellation is observed at every
// level of the plan, not just at the root. It also keeps the in-flight
// accounting: the rows of the previous filling of out are released and the
// new filling is held, so live/peak cover rows traveling inside batches, not
// only rows parked in pipeline breakers.
func pullBatch(ctx *Ctx, o Op, out *Batch) error {
	ctx.release(out.held)
	out.held = 0
	if ctx.Cancel != nil {
		if err := ctx.Cancel.Err(); err != nil {
			return err
		}
	}
	ctx.totalBatches++
	var t0 int64
	if ctx.timed {
		t0 = obs.Nanos()
	}
	err := o.NextBatch(ctx, out)
	var st *OpStats
	if st = ctx.statsFor(o); st != nil && ctx.timed {
		st.Nanos += obs.Nanos() - t0
	}
	if err != nil {
		return err
	}
	n := out.Len()
	ctx.totalRows += n
	if st != nil {
		st.Batches++
		st.Rows += n
	}
	// In-flight rows count toward live/peak (but are not any operator's
	// Materialized — they are not parked, just traveling).
	out.held = n
	ctx.live += n
	if ctx.live > ctx.peak {
		ctx.peak = ctx.live
	}
	return nil
}

// panicErr converts a panic escaping an operator into an error naming the
// plan node, so one poisoned query surfaces as a query error instead of
// taking down the whole process.
func panicErr(op Op, r any) error {
	obsPanics.Inc()
	return fmt.Errorf("engine: panic in plan node %s: %v", op.String(), r)
}

// runBatches opens an operator, pulls it to exhaustion batch by batch —
// handing each non-empty batch to visit — and closes it. A panic anywhere in
// the operator tree (or in visit) is contained here (and, for parallel
// parts, in the exchange workers): the executor runs against an immutable
// snapshot, so a failed execution cannot have corrupted shared state.
func runBatches(ctx *Ctx, op Op, visit func(b *Batch) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicErr(op, r)
		}
	}()
	if err := op.Open(ctx); err != nil {
		op.Close(ctx)
		return err
	}
	var b Batch
	b.pool = ctx.arena.pool
	for {
		if err := pullBatch(ctx, op, &b); err != nil {
			op.Close(ctx)
			return err
		}
		if b.Len() == 0 {
			break
		}
		if err := visit(&b); err != nil {
			op.Close(ctx)
			return err
		}
	}
	ctx.release(b.held)
	b.held = 0
	err = op.Close(ctx)
	b.free()
	return err
}

// drain runs an operator to exhaustion and returns its rows, copied into the
// query arena (batch rows are transient).
func drain(ctx *Ctx, op Op) (rows []Row, err error) {
	err = runBatches(ctx, op, func(b *Batch) error {
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, ctx.copyRow(b.Row(i)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// gather materializes a child operator in full on behalf of a pipeline
// breaker (a join build side or sort buffer), accounting the buffered rows
// to the parent until it closes.
func gather(ctx *Ctx, parent, child Op) ([]Row, error) {
	rows, err := drain(ctx, child)
	if err != nil {
		return nil, err
	}
	ctx.hold(parent, len(rows))
	return rows, nil
}

// Exec runs a plan and returns its rows plus metrics.
func Exec(s *storage.Store, plan Op) ([]Row, Metrics, error) {
	return ExecContext(nil, s, plan)
}

// ExecContext is Exec under a context: the execution aborts with the
// context's error shortly after it is canceled or its deadline passes. A
// nil (or never-canceled) context adds no overhead.
func ExecContext(cctx context.Context, s *storage.Store, plan Op) ([]Row, Metrics, error) {
	ctx := &Ctx{S: s}
	// Background-like contexts can never be canceled; skip the polling.
	if cctx != nil && cctx.Done() != nil {
		ctx.Cancel = cctx
	}
	sw := obs.Start()
	rows, err := drain(ctx, plan)
	foldObs(ctx, sw, len(rows), err)
	if err != nil {
		return nil, ctx.M, err
	}
	ctx.M.RowsOut = len(rows)
	return rows, ctx.M, nil
}

// ExecBatches runs a plan and streams its result batches to visit instead of
// materializing them: the zero-copy consumption path the colorful facade
// maps query results through. The batch passed to visit (always non-empty)
// is only valid for the duration of the call — visit copies what it keeps.
// A non-nil error from visit aborts the execution and is returned.
func ExecBatches(cctx context.Context, s *storage.Store, plan Op, visit func(b *Batch) error) (Metrics, error) {
	return ExecBatchesPooled(cctx, s, nil, plan, visit)
}

// ExecBatchesPooled is ExecBatches drawing execution scratch memory (arena
// chunks, batch buffers) from pool and returning it when the execution
// finishes. Because visit's contract already requires copying anything kept
// out of a batch, and streamed executions hand the caller no arena-backed
// rows, recycling is invisible to correct callers. A nil pool is ExecBatches
// exactly. The materializing entry points (Exec, TraceExec) return rows that
// live in the arena and must never be pooled.
func ExecBatchesPooled(cctx context.Context, s *storage.Store, pool *MemPool, plan Op, visit func(b *Batch) error) (Metrics, error) {
	ctx := &Ctx{S: s}
	ctx.arena.pool = pool
	if cctx != nil && cctx.Done() != nil {
		ctx.Cancel = cctx
	}
	sw := obs.Start()
	rows := 0
	err := runBatches(ctx, plan, func(b *Batch) error {
		rows += b.Len()
		return visit(b)
	})
	// Whether the execution succeeded, failed or panicked, the plan is
	// closed and every visited batch is past its validity window — the
	// scratch the arena handed out is dead and safe to recycle.
	ctx.arena.release()
	foldObs(ctx, sw, rows, err)
	if err != nil {
		return ctx.M, err
	}
	ctx.M.RowsOut = rows
	return ctx.M, nil
}

// Explain renders a plan tree, one operator per line.
func Explain(plan Op) string {
	var b strings.Builder
	var walk func(op Op, depth int)
	walk = func(op Op, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), op.String())
		for _, ch := range op.Children() {
			walk(ch, depth+1)
		}
	}
	walk(plan, 0)
	return b.String()
}

// Analyzed is the result of ExplainAnalyze: the rows and metrics of a real
// execution plus the annotated plan text and the peak number of intermediate
// rows live at any instant.
type Analyzed struct {
	Rows    []Row
	Metrics Metrics
	// Text is the plan tree with per-operator annotations.
	Text string
	// PeakMaterialized is the maximum number of intermediate rows alive at
	// any point of the execution: rows buffered by pipeline breakers plus
	// rows inside in-flight batches. A fully streaming pipeline therefore
	// reports up to a few BatchSize (its pipeline depth in batches), while
	// breakers add their whole build sides.
	PeakMaterialized int
}

// ExplainAnalyze executes a plan while attributing batches, rows,
// materialization and metric deltas to each operator, and renders the
// annotated tree.
func ExplainAnalyze(s *storage.Store, plan Op) (*Analyzed, error) {
	ctx := &Ctx{S: s, stats: map[Op]*OpStats{}}
	sw := obs.Start()
	rows, err := drain(ctx, plan)
	foldObs(ctx, sw, len(rows), err)
	if err != nil {
		return nil, err
	}
	ctx.M.RowsOut = len(rows)

	var b strings.Builder
	var walk func(op Op, depth int)
	walk = func(op Op, depth int) {
		st := ctx.stats[op]
		if st == nil {
			st = &OpStats{}
		}
		fmt.Fprintf(&b, "%s%s  (rows=%d, batches=%d%s)\n",
			strings.Repeat("  ", depth), op.String(), st.Rows, st.Batches, statExtras(st))
		for _, ch := range op.Children() {
			walk(ch, depth+1)
		}
	}
	walk(plan, 0)
	fmt.Fprintf(&b, "peak live intermediate rows: %d\n", ctx.peak)

	return &Analyzed{
		Rows:             rows,
		Metrics:          ctx.M,
		Text:             b.String(),
		PeakMaterialized: ctx.peak,
	}, nil
}

func statExtras(st *OpStats) string {
	var b strings.Builder
	add := func(name string, v int) {
		if v != 0 {
			fmt.Fprintf(&b, ", %s=%d", name, v)
		}
	}
	add("materialized", st.Materialized)
	add("structJoins", st.StructJoins)
	add("valueJoins", st.ValueJoins)
	add("idJoins", st.IDJoins)
	add("crossJoins", st.CrossJoins)
	add("contentReads", st.ContentReads)
	return b.String()
}

// ContentOf fetches the content of one row column, charging a content read.
func ContentOf(ctx *Ctx, row Row, col int) (string, error) {
	ctx.M.ContentReads++
	return ctx.S.ContentOf(row[col].Elem)
}

// FetchContents materializes the content of a column across rows (the
// "return" phase of a query).
func FetchContents(ctx *Ctx, rows []Row, col int) ([]string, error) {
	out := make([]string, len(rows))
	for i, r := range rows {
		c, err := ContentOf(ctx, r, col)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// Pred is a content predicate for Filter operators.
type Pred struct {
	// Kind: "eq", "ne", "contains", "prefix", "lt", "le", "gt", "ge".
	Kind string
	// Value to compare with; numeric kinds atomize both sides.
	Value string
	// Numeric forces numeric comparison for lt/le/gt/ge.
	Numeric bool
}

func (p Pred) String() string { return fmt.Sprintf("%s %q", p.Kind, p.Value) }

// Eval applies the predicate to a content string.
func (p Pred) Eval(content string) (bool, error) {
	switch p.Kind {
	case "eq":
		return content == p.Value, nil
	case "ne":
		return content != p.Value, nil
	case "contains":
		return strings.Contains(content, p.Value), nil
	case "prefix":
		return strings.HasPrefix(content, p.Value), nil
	case "lt", "le", "gt", "ge":
		if p.Numeric {
			a, aok := core.Atomize(content).(int64)
			b, bok := core.Atomize(p.Value).(int64)
			if !aok || !bok {
				af, aok2 := toFloat(core.Atomize(content))
				bf, bok2 := toFloat(core.Atomize(p.Value))
				if !aok2 || !bok2 {
					return false, nil
				}
				return cmpFloat(p.Kind, af, bf), nil
			}
			return cmpFloat(p.Kind, float64(a), float64(b)), nil
		}
		return cmpStr(p.Kind, content, p.Value), nil
	default:
		return false, fmt.Errorf("engine: unknown predicate kind %q", p.Kind)
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func cmpFloat(kind string, a, b float64) bool {
	switch kind {
	case "lt":
		return a < b
	case "le":
		return a <= b
	case "gt":
		return a > b
	default:
		return a >= b
	}
}

func cmpStr(kind, a, b string) bool {
	switch kind {
	case "lt":
		return a < b
	case "le":
		return a <= b
	case "gt":
		return a > b
	default:
		return a >= b
	}
}

// --- shared iterator helpers ---------------------------------------------

// ancIndex is a probe structure over a materialized ancestor-side column:
// the distinct nodes sorted by start, a start -> rows map for recombination,
// and the nearest-enclosing chain (laminar: same-color intervals nest or are
// disjoint, so every node containing a position lies on the chain from the
// rightmost node starting at or before it).
type ancIndex struct {
	nodes   []storage.SNode
	byStart map[int64][]Row
	encl    []int
}

func buildAncIndex(rows []Row, col int) *ancIndex {
	ix := &ancIndex{byStart: make(map[int64][]Row, len(rows))}
	for _, r := range rows {
		sn := r[col]
		if _, ok := ix.byStart[sn.Start]; !ok {
			ix.nodes = append(ix.nodes, sn)
		}
		ix.byStart[sn.Start] = append(ix.byStart[sn.Start], r)
	}
	sort.Slice(ix.nodes, func(i, j int) bool { return ix.nodes[i].Start < ix.nodes[j].Start })
	ix.encl = make([]int, len(ix.nodes))
	var stack []int
	for i, n := range ix.nodes {
		for len(stack) > 0 && ix.nodes[stack[len(stack)-1]].End < n.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			ix.encl[i] = stack[len(stack)-1]
		} else {
			ix.encl[i] = -1
		}
		stack = append(stack, i)
	}
	return ix
}

// containing returns the indices of nodes containing d (outermost first),
// filtered by the axis.
func (ix *ancIndex) containing(d storage.SNode, parentChild bool) []int {
	if parentChild {
		// The parent, if present, is the node starting at d.ParentStart.
		i := sort.Search(len(ix.nodes), func(i int) bool {
			return ix.nodes[i].Start >= d.ParentStart
		})
		if i < len(ix.nodes) && ix.nodes[i].Start == d.ParentStart && ix.nodes[i].IsParentOf(d) && ix.nodes[i].Contains(d) {
			return []int{i}
		}
		return nil
	}
	// Rightmost node starting strictly before d, then up the enclosing chain.
	i := sort.Search(len(ix.nodes), func(i int) bool {
		return ix.nodes[i].Start >= d.Start
	}) - 1
	var hits []int
	for ; i >= 0; i = ix.encl[i] {
		if ix.nodes[i].Contains(d) {
			hits = append(hits, i)
		}
	}
	// Reverse to outermost-first, matching the stack-tree join's emit order.
	for l, r := 0, len(hits)-1; l < r; l, r = l+1, r-1 {
		hits[l], hits[r] = hits[r], hits[l]
	}
	return hits
}
