// Package engine is the physical query engine over the Timber-style MCT
// store: a small algebra of composable operators (index scans, content and
// attribute filters, structural joins, cross-tree color transitions, value
// joins, duplicate elimination), an executor with per-query operator
// metrics, and plan rendering.
//
// Plans are hand-specified per query and representation, exactly as in the
// paper's Section 6.2: "For all the experimentation described next, we
// manually specified the query plan, always choosing the one expected to be
// the best."
package engine

import (
	"fmt"
	"strings"

	"colorfulxml/internal/core"
	"colorfulxml/internal/storage"
)

// Row is one binding tuple: a fixed number of structural-node columns.
type Row []storage.SNode

// Metrics counts operator activity during one execution.
type Metrics struct {
	StructJoins  int // structural join node comparisons emitted
	ValueJoins   int // value join probes
	CrossJoins   int // cross-tree (color transition) link traversals
	RowsOut      int
	ContentReads int
}

// Ctx carries the store and metrics through an execution.
type Ctx struct {
	S *storage.Store
	M Metrics
}

// Op is a physical operator producing rows.
type Op interface {
	Run(ctx *Ctx) ([]Row, error)
	String() string
}

// Exec runs a plan and returns its rows plus metrics.
func Exec(s *storage.Store, plan Op) ([]Row, Metrics, error) {
	ctx := &Ctx{S: s}
	rows, err := plan.Run(ctx)
	if err != nil {
		return nil, ctx.M, err
	}
	ctx.M.RowsOut = len(rows)
	return rows, ctx.M, nil
}

// Explain renders a plan tree, one operator per line.
func Explain(plan Op) string {
	var b strings.Builder
	var walk func(op Op, depth int)
	walk = func(op Op, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), op.String())
		for _, ch := range children(op) {
			walk(ch, depth+1)
		}
	}
	walk(plan, 0)
	return b.String()
}

func children(op Op) []Op {
	switch x := op.(type) {
	case *StructJoin:
		return []Op{x.Anc, x.Desc}
	case *ValueJoin:
		return []Op{x.Left, x.Right}
	case *NLJoin:
		return []Op{x.Left, x.Right}
	case *Filter:
		return []Op{x.Input}
	case *AttrFilter:
		return []Op{x.Input}
	case *CrossColor:
		return []Op{x.Input}
	case *Dedup:
		return []Op{x.Input}
	case *DedupContent:
		return []Op{x.Input}
	case *DedupAttr:
		return []Op{x.Input}
	case *Project:
		return []Op{x.Input}
	case *SortStart:
		return []Op{x.Input}
	case *ExistsJoin:
		return []Op{x.Input, x.Probe}
	default:
		return nil
	}
}

// ContentOf fetches the content of one row column, charging a content read.
func ContentOf(ctx *Ctx, row Row, col int) (string, error) {
	ctx.M.ContentReads++
	return ctx.S.ContentOf(row[col].Elem)
}

// FetchContents materializes the content of a column across rows (the
// "return" phase of a query).
func FetchContents(ctx *Ctx, rows []Row, col int) ([]string, error) {
	out := make([]string, len(rows))
	for i, r := range rows {
		c, err := ContentOf(ctx, r, col)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// Pred is a content predicate for Filter operators.
type Pred struct {
	// Kind: "eq", "ne", "contains", "prefix", "lt", "le", "gt", "ge".
	Kind string
	// Value to compare with; numeric kinds atomize both sides.
	Value string
	// Numeric forces numeric comparison for lt/le/gt/ge.
	Numeric bool
}

func (p Pred) String() string { return fmt.Sprintf("%s %q", p.Kind, p.Value) }

// Eval applies the predicate to a content string.
func (p Pred) Eval(content string) (bool, error) {
	switch p.Kind {
	case "eq":
		return content == p.Value, nil
	case "ne":
		return content != p.Value, nil
	case "contains":
		return strings.Contains(content, p.Value), nil
	case "prefix":
		return strings.HasPrefix(content, p.Value), nil
	case "lt", "le", "gt", "ge":
		if p.Numeric {
			a, aok := core.Atomize(content).(int64)
			b, bok := core.Atomize(p.Value).(int64)
			if !aok || !bok {
				af, aok2 := toFloat(core.Atomize(content))
				bf, bok2 := toFloat(core.Atomize(p.Value))
				if !aok2 || !bok2 {
					return false, nil
				}
				return cmpFloat(p.Kind, af, bf), nil
			}
			return cmpFloat(p.Kind, float64(a), float64(b)), nil
		}
		return cmpStr(p.Kind, content, p.Value), nil
	default:
		return false, fmt.Errorf("engine: unknown predicate kind %q", p.Kind)
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func cmpFloat(kind string, a, b float64) bool {
	switch kind {
	case "lt":
		return a < b
	case "le":
		return a <= b
	case "gt":
		return a > b
	default:
		return a >= b
	}
}

func cmpStr(kind, a, b string) bool {
	switch kind {
	case "lt":
		return a < b
	case "le":
		return a <= b
	case "gt":
		return a > b
	default:
		return a >= b
	}
}
