package experiment

import (
	"strings"
	"testing"
)

// TestNetworkShape runs a tiny in-process network benchmark end to end and
// checks the result's invariants: every query accounted for, sane latency
// quantiles, server-side counters fetched over the wire, and a BENCH line
// the benchdiff gate can parse.
func TestNetworkShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping network benchmark in -short mode")
	}
	cfg := NetworkConfig{Clients: 3, Ops: 10, Scale: 50}
	res, err := Network(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InProcess {
		t.Fatal("empty Addr must report an in-process run")
	}
	if want := int64(cfg.Clients * cfg.Ops); res.Queries != want {
		t.Fatalf("queries = %d, want %d", res.Queries, want)
	}
	if res.QPS <= 0 || res.Millis <= 0 {
		t.Fatalf("throughput not measured: qps=%.1f millis=%.1f", res.QPS, res.Millis)
	}
	if res.P50Micros <= 0 || res.P95Micros < res.P50Micros || res.P99Micros < res.P95Micros {
		t.Fatalf("latency quantiles inconsistent: p50=%.0f p95=%.0f p99=%.0f",
			res.P50Micros, res.P95Micros, res.P99Micros)
	}
	// Every client query is at least one server request, and the server
	// answered everything it read.
	if res.ServerRequests < uint64(res.Queries) {
		t.Fatalf("server saw %d requests for %d client queries", res.ServerRequests, res.Queries)
	}
	if res.ServerResponses < res.ServerRequests-1 {
		t.Fatalf("server answered %d of %d requests", res.ServerResponses, res.ServerRequests)
	}

	line := res.BenchJSON()
	if !strings.HasPrefix(line, `BENCH {"name":"network-serve"`) {
		t.Fatalf("bench line = %q, want name network-serve", line)
	}
	if strings.Contains(line, `"obs"`) {
		t.Fatal("bench line must not embed the obs snapshot")
	}
	if FormatNetwork(res) == "" {
		t.Fatal("empty human-readable report")
	}

	// The prepared variant changes the gated bench name.
	pres := &NetworkResult{Prepared: true}
	if got := pres.benchName(); got != "network-serve-prepared" {
		t.Fatalf("prepared bench name = %q", got)
	}
}
