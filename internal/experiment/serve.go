package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/workload"
)

// This file implements the Table 2 serving experiment: the paper's TPC-W
// query suite (the MCT texts inside the compilable subset) served by C
// client goroutines against one loaded store — the workload shape of a
// server answering a small vocabulary of query templates from many clients.
// In prepared mode the clients share a compiled-plan cache and each
// execution runs a clone of the cached plan, so parse, compilation and
// costing are paid once per template; the baseline compiles every query
// from text, which is what the query path did before the plan cache.

// ServeConfig parameterizes the Table 2 serving experiment.
type ServeConfig struct {
	// Clients is the number of concurrent client goroutines; Ops the number
	// of queries each issues (round-robin over the suite).
	Clients int
	Ops     int
	// Scale and Seed parameterize the generated TPC-W dataset.
	Scale int
	Seed  int64
	// Prepared shares one compiled-plan cache across the clients; off, every
	// query pays a fresh parse + compile + costing.
	Prepared bool
}

// DefaultServe mirrors the CLI defaults. The scale keeps individual
// executions small enough that compilation cost is a realistic fraction of
// per-query work, as it is for a template-serving workload.
var DefaultServe = ServeConfig{Clients: 8, Ops: 400, Scale: 1, Seed: 42}

// ServeResult is the measured outcome.
type ServeResult struct {
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops_per_client"`
	Scale     int     `json:"scale"`
	Prepared  bool    `json:"prepared,omitempty"`
	Templates int     `json:"templates"` // compilable MCT suite queries served
	Queries   int64   `json:"queries"`
	Millis    float64 `json:"millis"`
	QPS       float64 `json:"qps"`

	P50Micros float64 `json:"p50_micros"`
	P95Micros float64 `json:"p95_micros"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Table2Serve runs the experiment.
func Table2Serve(cfg ServeConfig) (*ServeResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = DefaultServe.Clients
	}
	if cfg.Ops <= 0 {
		cfg.Ops = DefaultServe.Ops
	}
	if cfg.Scale <= 0 {
		cfg.Scale = DefaultServe.Scale
	}
	tp, err := workload.LoadTPCW(cfg.Scale, cfg.Seed, 0)
	if err != nil {
		return nil, err
	}
	s := tp.MCT
	opt := plan.Options{Catalog: plan.StoreCatalog{Store: s}}

	// The served vocabulary: every TPC-W MCT text the compiler supports.
	var texts []string
	for _, q := range workload.TPCWQueries() {
		text := workload.FaithfulText(q, workload.MCT, tp.Params)
		if _, cerr := plan.CompileQuery(text, opt); cerr != nil {
			if errors.Is(cerr, plan.ErrUnsupported) {
				continue
			}
			return nil, fmt.Errorf("%s: %w", q.ID, cerr)
		}
		texts = append(texts, text)
	}
	if len(texts) == 0 {
		return nil, errors.New("experiment: no compilable Table 2 queries")
	}

	cache := plan.NewCache(0)
	epoch := s.StatsEpoch()
	var (
		wg      sync.WaitGroup
		queries atomic.Int64
		lat     obs.Histogram // per-query latency in microseconds
		errMu   sync.Mutex
		runErr  error
	)
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for n := 0; n < cfg.Ops; n++ {
				text := texts[(seed+n)%len(texts)]
				t0 := time.Now()
				var compiled *plan.Compiled
				var err error
				if cfg.Prepared {
					var ok bool
					if compiled, ok = cache.Get(text, opt, epoch); !ok {
						if compiled, err = plan.CompileQuery(text, opt); err == nil {
							cache.Put(text, opt, epoch, compiled)
						}
					}
				} else {
					compiled, err = plan.CompileQuery(text, opt)
				}
				if err != nil {
					fail(fmt.Errorf("client %d: %w", seed, err))
					return
				}
				// Cached plans are shared prototypes; every execution runs a
				// clone (uncached plans too, keeping the measured work equal).
				// Both modes stream through the pooled executor drawing from
				// the plan's own scratch pool — reuse emerges only when the
				// plan object is reused, i.e. exactly on the cached path.
				rows := 0
				_, err = engine.ExecBatchesPooled(nil, s, compiled.Mem, compiled.Root.Clone(),
					func(b *engine.Batch) error { rows += b.Len(); return nil })
				if err != nil {
					fail(fmt.Errorf("client %d: %w", seed, err))
					return
				}
				lat.Observe(time.Since(t0).Microseconds())
				queries.Add(1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}

	cs := cache.Stats()
	res := &ServeResult{
		Clients:     cfg.Clients,
		Ops:         cfg.Ops,
		Scale:       cfg.Scale,
		Prepared:    cfg.Prepared,
		Templates:   len(texts),
		Queries:     queries.Load(),
		Millis:      float64(elapsed.Microseconds()) / 1000,
		QPS:         float64(queries.Load()) / elapsed.Seconds(),
		P50Micros:   lat.Quantile(0.50),
		P95Micros:   lat.Quantile(0.95),
		CacheHits:   cs.Hits,
		CacheMisses: cs.Misses,
	}
	if total := cs.Hits + cs.Misses; total > 0 {
		res.CacheHitRate = float64(cs.Hits) / float64(total)
	}
	return res, nil
}

// BenchJSON renders the machine-readable result line.
func (r *ServeResult) BenchJSON() string {
	name := "table2-serve"
	if r.Prepared {
		name += "-prepared"
	}
	type named struct {
		Name string `json:"name"`
		*ServeResult
	}
	b, _ := json.Marshal(named{Name: name, ServeResult: r})
	return "BENCH " + string(b)
}

// FormatServe renders the human-readable report.
func FormatServe(r *ServeResult) string {
	var b strings.Builder
	mode := "compile per query"
	if r.Prepared {
		mode = "prepared (shared plan cache)"
	}
	fmt.Fprintf(&b, "clients=%d ops/client=%d tpcw-scale=%d templates=%d mode=%s\n",
		r.Clients, r.Ops, r.Scale, r.Templates, mode)
	fmt.Fprintf(&b, "total queries:  %d in %.1f ms (%.0f queries/s)\n", r.Queries, r.Millis, r.QPS)
	fmt.Fprintf(&b, "latency:        p50=%.0fµs p95=%.0fµs\n", r.P50Micros, r.P95Micros)
	fmt.Fprintf(&b, "plan cache:     %d hits / %d misses (%.1f%% hit rate)\n",
		r.CacheHits, r.CacheMisses, 100*r.CacheHitRate)
	return b.String()
}
