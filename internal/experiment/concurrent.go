package experiment

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colorfulxml/colorful"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/storage"
)

// This file implements the concurrent-serving throughput experiment: a
// synthetic two-hierarchy catalog served through the colorful facade, C
// client goroutines issuing compiled queries lock-free against published
// snapshots while a writer applies point updates that are folded in by
// incremental snapshot maintenance.

// ConcurrentConfig parameterizes the experiment.
type ConcurrentConfig struct {
	// Clients is the number of reader goroutines.
	Clients int
	// Ops is the number of queries each client issues.
	Ops int
	// Scale is the number of catalog items (every third is also "featured"
	// in the green hierarchy and carries a votes counter).
	Scale int
	// Parallel turns on intra-query parallelism; Workers fixes the exchange
	// fan-out (0: GOMAXPROCS).
	Parallel bool
	Workers  int
	// Dir, when non-empty, runs the experiment against a durable database in
	// that directory: every writer commit goes through the write-ahead log
	// before it is acknowledged, and after the timed region the database is
	// closed and recovered once to measure recovery.
	Dir string
	// NoSync disables the per-commit fsync in durable mode.
	NoSync bool
	// Validate runs the full core invariant audit (core.Database.Validate)
	// after the catalog is built and, in durable mode, after the post-run
	// recovery, reporting the audit's wall time. Durable runs also open with
	// ValidateInvariants, so every incremental snapshot apply re-audits.
	Validate bool
	// Prepared makes each client open a session and prepare its query mix
	// once, executing statements in the loop — the prepared-statement path
	// over the shared plan cache.
	Prepared bool
	// NoCache runs each client through a session opted out of the plan
	// cache: every query pays a fresh compile (the baseline Prepared is
	// measured against).
	NoCache bool
	// MaxInflight, when positive, enables admission control with that
	// weight limit at the session boundary.
	MaxInflight int
}

// DefaultConcurrent mirrors the CLI defaults.
var DefaultConcurrent = ConcurrentConfig{Clients: 8, Ops: 200, Scale: 2000}

// ConcurrentResult is the measured outcome.
type ConcurrentResult struct {
	Clients  int     `json:"clients"`
	Ops      int     `json:"ops_per_client"`
	Scale    int     `json:"scale"`
	Parallel bool    `json:"parallel"`
	Workers  int     `json:"workers"`
	Millis   float64 `json:"millis"`
	Queries  int64   `json:"queries"`
	Updates  int64   `json:"updates"`
	QPS      float64 `json:"qps"`

	// Per-query latency percentiles in microseconds, from a histogram the
	// clients record into as they go.
	P50Micros float64 `json:"p50_micros"`
	P95Micros float64 `json:"p95_micros"`
	P99Micros float64 `json:"p99_micros"`

	IncrementalApplies uint64 `json:"incremental_applies"`
	FullRebuilds       uint64 `json:"full_rebuilds"`
	Publishes          uint64 `json:"publishes"`

	// Durable-mode extras (zero/absent for in-memory runs).
	Durable          bool    `json:"durable,omitempty"`
	NoSync           bool    `json:"nosync,omitempty"`
	Checkpoints      uint64  `json:"checkpoints,omitempty"`
	WALBytes         int64   `json:"wal_bytes,omitempty"`
	RecoveryMillis   float64 `json:"recovery_millis,omitempty"`
	CheckpointLoaded bool    `json:"checkpoint_loaded,omitempty"`
	RecordsReplayed  int     `json:"records_replayed,omitempty"`
	ChangesReplayed  int     `json:"changes_replayed,omitempty"`

	// Invariant-audit extras (absent unless -validate was given).
	Validated      bool    `json:"validated,omitempty"`
	ValidateMillis float64 `json:"validate_millis,omitempty"`

	// Session-kernel extras: the plan-cache traffic of this run's DB (and
	// the derived hit rate), and — with admission control on — the gate's
	// rejection count and queue-wait p95.
	Prepared               bool    `json:"prepared,omitempty"`
	NoCache                bool    `json:"nocache,omitempty"`
	CacheHits              uint64  `json:"cache_hits"`
	CacheMisses            uint64  `json:"cache_misses"`
	CacheHitRate           float64 `json:"cache_hit_rate"`
	MaxInflight            int     `json:"max_inflight,omitempty"`
	AdmissionRejections    uint64  `json:"admission_rejections,omitempty"`
	AdmissionWaitP95Micros float64 `json:"admission_wait_p95_micros,omitempty"`

	// Obs is the process-wide instrument snapshot taken after the run,
	// folding engine/storage/WAL/DB counters into the BENCH line.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// benchName derives the BENCH line's name from the run's mode, so a harness
// comparing runs never conflates in-memory, durable and parallel numbers.
func (r *ConcurrentResult) benchName() string {
	name := "concurrent"
	if r.Durable {
		name += "-durable"
	}
	if r.Parallel {
		name += "-parallel"
	}
	if r.Prepared {
		name += "-prepared"
	}
	if r.NoCache {
		name += "-nocache"
	}
	if r.MaxInflight > 0 {
		name += "-maxinflight"
	}
	return name
}

// buildCatalog constructs the benchmark database through the public facade:
// a red catalog of items with names; every third item is adopted under the
// green featured root and given a green votes counter. In durable mode
// (cfg.Dir set) the same construction runs against an Open-ed database, so
// every statement commits through the WAL.
func buildCatalog(cfg ConcurrentConfig) (*colorful.DB, error) {
	var db *colorful.DB
	if cfg.Dir != "" {
		var err error
		db, err = colorful.OpenOptions(cfg.Dir, colorful.Options{NoSync: cfg.NoSync, ValidateInvariants: cfg.Validate}, "red", "green")
		if err != nil {
			return nil, err
		}
	} else {
		db = colorful.New("red", "green")
	}
	if err := populateCatalog(db, cfg.Scale); err != nil {
		if cfg.Dir != "" {
			db.Close()
		}
		return nil, err
	}
	return db, nil
}

func populateCatalog(db *colorful.DB, scale int) error {
	root, err := db.AddElement(db.Document(), "catalog", "red")
	if err != nil {
		return err
	}
	featured, err := db.AddElement(db.Document(), "featured", "green")
	if err != nil {
		return err
	}
	for i := 0; i < scale; i++ {
		item, err := db.AddElement(root, "item", "red")
		if err != nil {
			return err
		}
		if _, err := db.AddElementText(item, "name", "red", fmt.Sprintf("Item %d", i)); err != nil {
			return err
		}
		if i%3 == 0 {
			if err := db.Adopt(featured, item, "green"); err != nil {
				return err
			}
			if _, err := db.AddElementText(item, "votes", "green", fmt.Sprint(i%50)); err != nil {
				return err
			}
		}
	}
	return nil
}

// concurrentQueries is the read mix: a full descendant scan (the parallel
// candidate), an equality lookup, and a cross-hierarchy navigation.
var concurrentQueries = []string{
	`document("db")/{red}descendant::item/{red}child::name`,
	`document("db")/{red}descendant::item[{red}child::name = "Item 7"]/{red}child::name`,
	`for $i in document("db")/{green}descendant::item return $i/{green}child::votes`,
}

// Concurrent runs the experiment and returns throughput plus maintenance
// counters.
func Concurrent(cfg ConcurrentConfig) (*ConcurrentResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = DefaultConcurrent.Clients
	}
	if cfg.Ops <= 0 {
		cfg.Ops = DefaultConcurrent.Ops
	}
	if cfg.Scale <= 0 {
		cfg.Scale = DefaultConcurrent.Scale
	}
	db, err := buildCatalog(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Parallel {
		db.SetParallel(true)
		db.SetParallelWorkers(cfg.Workers)
	}
	if cfg.MaxInflight > 0 {
		db.SetMaxInflight(cfg.MaxInflight)
	}
	// Publish the initial snapshot outside the timed region.
	if err := db.Refresh(); err != nil {
		return nil, err
	}
	// Audit the freshly loaded catalog outside the timed region; the audit's
	// own cost is what -validate reports.
	var validateMillis float64
	if cfg.Validate {
		t0 := time.Now()
		if err := db.Validate(); err != nil {
			return nil, fmt.Errorf("invariant audit after load: %w", err)
		}
		validateMillis += float64(time.Since(t0).Microseconds()) / 1000
	}

	var (
		readers sync.WaitGroup
		writer  sync.WaitGroup
		queries atomic.Int64
		updates atomic.Int64
		lat     obs.Histogram // per-query latency in microseconds
		stop    = make(chan struct{})
		errMu   sync.Mutex
		runErr  error
	)
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}

	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			// Each client is one session. Prepared clients parse and compile
			// their query mix once and execute statements; NoCache clients
			// opt out of the plan cache so every query pays a fresh compile.
			sess := db.Session()
			defer sess.Close()
			if cfg.NoCache {
				sess.SetPlanCache(false)
			}
			var stmts []*colorful.Stmt
			if cfg.Prepared {
				for _, q := range concurrentQueries {
					st, err := sess.Prepare(q)
					if err != nil {
						fail(fmt.Errorf("client %d prepare: %w", seed, err))
						return
					}
					stmts = append(stmts, st)
				}
			}
			for n := 0; n < cfg.Ops; n++ {
				i := (seed + n) % len(concurrentQueries)
				t0 := time.Now()
				var err error
				if cfg.Prepared {
					_, err = stmts[i].Query()
				} else {
					_, err = sess.Query(concurrentQueries[i])
				}
				if err != nil {
					fail(fmt.Errorf("client %d: %w", seed, err))
					return
				}
				lat.Observe(time.Since(t0).Microseconds())
				queries.Add(1)
			}
		}(c)
	}
	// One writer flips vote counters with single-statement point updates
	// until the readers finish; each commit is folded into the next
	// published snapshot by incremental maintenance.
	writer.Add(1)
	go func() {
		defer writer.Done()
		for e := 0; ; e++ {
			select {
			case <-stop:
				return
			default:
			}
			u := fmt.Sprintf(`
for $i in document("db")/{green}descendant::item,
    $v in $i/{green}child::votes
update $i { replace $v with "%d" }`, e%100)
			if _, err := db.Update(u); err != nil {
				fail(fmt.Errorf("writer: %w", err))
				return
			}
			updates.Add(1)
		}
	}()

	readers.Wait()
	close(stop)
	writer.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}

	st := db.MaintStats()
	ds := db.DurabilityStats()
	cs := db.PlanCacheStats()
	as := db.AdmissionStats()
	var recoveryMillis float64
	var rs storage.RecoveryStats
	if cfg.Dir != "" {
		// Close the directory and recover it once: the reopen cost and the
		// recovery statistics are part of the durable result.
		if err := db.Close(); err != nil {
			return nil, fmt.Errorf("closing durable database: %w", err)
		}
		t0 := time.Now()
		rec, err := colorful.Open(cfg.Dir, "red", "green")
		if err != nil {
			return nil, fmt.Errorf("recovering durable database: %w", err)
		}
		recoveryMillis = float64(time.Since(t0).Microseconds()) / 1000
		rs = rec.Recovery()
		if cfg.Validate {
			v0 := time.Now()
			if verr := rec.Validate(); verr != nil {
				rec.Close()
				return nil, fmt.Errorf("invariant audit after recovery: %w", verr)
			}
			validateMillis += float64(time.Since(v0).Microseconds()) / 1000
		}
		if err := rec.Close(); err != nil {
			return nil, err
		}
	}
	res := &ConcurrentResult{
		Clients:            cfg.Clients,
		Ops:                cfg.Ops,
		Scale:              cfg.Scale,
		Parallel:           cfg.Parallel,
		Workers:            cfg.Workers,
		Millis:             float64(elapsed.Microseconds()) / 1000,
		Queries:            queries.Load(),
		Updates:            updates.Load(),
		QPS:                float64(queries.Load()) / elapsed.Seconds(),
		P50Micros:          lat.Quantile(0.50),
		P95Micros:          lat.Quantile(0.95),
		P99Micros:          lat.Quantile(0.99),
		IncrementalApplies: st.IncrementalApplies,
		FullRebuilds:       st.FullRebuilds,
		Publishes:          st.Publishes,
	}
	if cfg.Dir != "" {
		res.Durable = true
		res.NoSync = cfg.NoSync
		res.Checkpoints = ds.Checkpoints
		res.WALBytes = ds.WALBytes
		res.RecoveryMillis = recoveryMillis
		res.CheckpointLoaded = rs.CheckpointLoaded
		res.RecordsReplayed = rs.RecordsReplayed
		res.ChangesReplayed = rs.ChangesReplayed
	}
	if cfg.Validate {
		res.Validated = true
		res.ValidateMillis = validateMillis
	}
	res.Prepared = cfg.Prepared
	res.NoCache = cfg.NoCache
	res.CacheHits = cs.Hits
	res.CacheMisses = cs.Misses
	if total := cs.Hits + cs.Misses; total > 0 {
		res.CacheHitRate = float64(cs.Hits) / float64(total)
	}
	res.MaxInflight = cfg.MaxInflight
	res.AdmissionRejections = as.Rejections
	res.Obs = obs.Default.Snapshot()
	if h, ok := res.Obs.Histograms["db_admission_wait_nanos"]; ok && cfg.MaxInflight > 0 {
		res.AdmissionWaitP95Micros = h.P95 / 1e3
	}
	return res, nil
}

// BenchJSON renders the machine-readable result line, prefixed with "BENCH"
// so harnesses can grep it out of mixed output.
func (r *ConcurrentResult) BenchJSON() string {
	type named struct {
		Name string `json:"name"`
		*ConcurrentResult
	}
	b, _ := json.Marshal(named{Name: r.benchName(), ConcurrentResult: r})
	return "BENCH " + string(b)
}

// FormatConcurrent renders the human-readable report.
func FormatConcurrent(r *ConcurrentResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "clients=%d ops/client=%d scale=%d parallel=%v workers=%d\n",
		r.Clients, r.Ops, r.Scale, r.Parallel, r.Workers)
	fmt.Fprintf(&b, "total queries:  %d in %.1f ms (%.0f queries/s)\n", r.Queries, r.Millis, r.QPS)
	fmt.Fprintf(&b, "latency:        p50=%.0fµs p95=%.0fµs p99=%.0fµs\n", r.P50Micros, r.P95Micros, r.P99Micros)
	fmt.Fprintf(&b, "writer commits: %d\n", r.Updates)
	fmt.Fprintf(&b, "snapshots:      %d published, %d incremental, %d full rebuilds\n",
		r.Publishes, r.IncrementalApplies, r.FullRebuilds)
	if r.Durable {
		fmt.Fprintf(&b, "durability:     nosync=%v, %d checkpoints, %d WAL bytes open\n",
			r.NoSync, r.Checkpoints, r.WALBytes)
		fmt.Fprintf(&b, "recovery:       %.1f ms (checkpoint=%v, %d records / %d changes replayed)\n",
			r.RecoveryMillis, r.CheckpointLoaded, r.RecordsReplayed, r.ChangesReplayed)
	}
	if r.Validated {
		fmt.Fprintf(&b, "validate:       %.1f ms (full core invariant audit, passed)\n", r.ValidateMillis)
	}
	mode := "per-query sessions"
	if r.Prepared {
		mode = "prepared statements"
	} else if r.NoCache {
		mode = "plan cache off"
	}
	fmt.Fprintf(&b, "plan cache:     %s, %d hits / %d misses (%.1f%% hit rate)\n",
		mode, r.CacheHits, r.CacheMisses, 100*r.CacheHitRate)
	if r.MaxInflight > 0 {
		fmt.Fprintf(&b, "admission:      max inflight %d, %d rejections, queue-wait p95=%.0fµs\n",
			r.MaxInflight, r.AdmissionRejections, r.AdmissionWaitP95Micros)
	}
	return b.String()
}
