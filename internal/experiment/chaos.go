package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"colorfulxml/internal/chaostest"
)

// This file adapts the runtime chaos harness (internal/chaostest) to the
// mctbench reporting conventions: a seeded fault schedule runs against a
// live durable database under concurrent load, the fault-tolerance contract
// is differentially verified, and the resilience measurements — fault rate,
// mean time to recovery, commits retried and rejected — come out as a BENCH
// line a harness can trend. The run fails (an error, not a number) if any
// contract property is violated, so the bench doubles as a smoke gate.

// ChaosConfig parameterizes the chaos bench.
type ChaosConfig struct {
	// Dir is the database directory (required; the caller owns cleanup).
	Dir string
	// Seed drives the fault schedule; Events is the minimum number of
	// injected faults before wind-down (0: the acceptance default of 500).
	Seed   int64
	Events int
	// Writers and Readers size the workload (0: harness defaults).
	Writers int
	Readers int
}

// ChaosResult is the measured outcome of one chaos run.
type ChaosResult struct {
	Seed        int64   `json:"seed"`
	FaultEvents int64   `json:"fault_events"`
	FaultRate   float64 `json:"fault_rate"` // injected faults per second
	Writes      int     `json:"writes"`
	Acked       int     `json:"acked"`
	Rejected    int     `json:"rejected"`
	Retried     uint64  `json:"commits_retried"`
	Reads       int64   `json:"reads"`
	Degrades    uint64  `json:"degrades"`
	Heals       uint64  `json:"heals"`
	Outages     int     `json:"outages"`
	MTTRMillis  float64 `json:"mttr_ms"`
	Millis      float64 `json:"millis"`
}

// Chaos runs the harness and shapes its report. A non-nil error means the
// fault-tolerance contract was violated (or the environment failed), never a
// mere performance number.
func Chaos(cfg ChaosConfig) (*ChaosResult, error) {
	hc := chaostest.DefaultConfig(cfg.Dir, cfg.Seed)
	if cfg.Events > 0 {
		hc.Events = cfg.Events
	}
	if cfg.Writers > 0 {
		hc.Writers = cfg.Writers
	}
	if cfg.Readers > 0 {
		hc.Readers = cfg.Readers
	}
	rep, err := chaostest.Run(hc)
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{
		Seed:        cfg.Seed,
		FaultEvents: rep.Events,
		Writes:      rep.Writes,
		Acked:       rep.Acked,
		Rejected:    rep.Rejected,
		Retried:     rep.Retries,
		Reads:       rep.Reads,
		Degrades:    rep.Degrades,
		Heals:       rep.Heals,
		Outages:     rep.Outages,
		MTTRMillis:  rep.MTTRMillis,
		Millis:      float64(rep.Elapsed.Microseconds()) / 1e3,
	}
	if s := rep.Elapsed.Seconds(); s > 0 {
		res.FaultRate = float64(rep.Events) / s
	}
	return res, nil
}

// BenchJSON renders the machine-readable result line, prefixed with "BENCH".
func (r *ChaosResult) BenchJSON() string {
	type named struct {
		Name string `json:"name"`
		*ChaosResult
	}
	b, _ := json.Marshal(named{Name: "chaos", ChaosResult: r})
	return "BENCH " + string(b)
}

// FormatChaos renders the human-readable report.
func FormatChaos(r *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d faults=%d (%.0f/s) in %.1f ms\n",
		r.Seed, r.FaultEvents, r.FaultRate, r.Millis)
	fmt.Fprintf(&b, "commits:   %d attempted, %d acked, %d rejected read-only, %d retried transient\n",
		r.Writes, r.Acked, r.Rejected, r.Retried)
	fmt.Fprintf(&b, "reads:     %d verified (no rolled-back write observed)\n", r.Reads)
	fmt.Fprintf(&b, "health:    %d degrades, %d heals, %d outages, MTTR %.1f ms\n",
		r.Degrades, r.Heals, r.Outages, r.MTTRMillis)
	b.WriteString("contract:  verified (acked set recovered exactly after reopen)\n")
	return b.String()
}
