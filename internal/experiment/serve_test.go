package experiment

import "testing"

// TestTable2ServePreparedSpeedup pins the prepared-statement acceptance
// criterion: serving the compilable Table 2 suite with a shared plan cache
// must beat the uncached compiled path by >= 15% throughput with a > 90%
// cache hit rate. The gain has two honest sources, both tied to plan reuse:
// parse+compile+costing paid once per template, and the plan's memory pool
// recycling execution scratch across runs (a cold, one-shot compilation can
// do neither). Measured locally the gap is ~40-60%; the 15% floor plus
// best-of-three absorbs scheduler noise.
func TestTable2ServePreparedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping serving benchmark in -short mode")
	}
	cfg := ServeConfig{Clients: 4, Ops: 100, Scale: 1, Seed: 42}
	var lastBase, lastPrep float64
	for attempt := 0; attempt < 3; attempt++ {
		base, err := Table2Serve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pcfg := cfg
		pcfg.Prepared = true
		prep, err := Table2Serve(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if prep.CacheHitRate <= 0.90 {
			t.Fatalf("prepared cache hit rate = %.3f, want > 0.90 (%d hits / %d misses)",
				prep.CacheHitRate, prep.CacheHits, prep.CacheMisses)
		}
		lastBase, lastPrep = base.QPS, prep.QPS
		if prep.QPS >= 1.15*base.QPS {
			return
		}
	}
	t.Fatalf("prepared serving %.0f qps vs uncached %.0f qps: below the 15%% speedup floor in 3 attempts",
		lastPrep, lastBase)
}
