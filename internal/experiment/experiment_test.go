package experiment

import (
	"strings"
	"testing"

	"colorfulxml/internal/workload"
)

var testCfg = Config{TPCWScale: 1, SigmodScale: 1, Seed: 1}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+string(r.Variant)] = r
	}
	tp := func(v workload.Variant) Table1Row { return byKey["TPC-W/"+string(v)] }
	// The paper's Table 1 orderings.
	if tp(workload.Deep).Elements <= tp(workload.Shallow).Elements {
		t.Fatal("deep must have more elements than shallow")
	}
	if !(tp(workload.Shallow).DataMB < tp(workload.MCT).DataMB) {
		t.Fatal("MCT data must exceed shallow's (structural nodes per color)")
	}
	if tp(workload.MCT).StructNodes <= tp(workload.MCT).Elements {
		t.Fatal("MCT structural nodes must exceed its elements")
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "TPC-W") || !strings.Contains(out, "SIGMOD-Record") {
		t.Fatalf("format: %s", out)
	}
}

func TestTable2SmokeAndFormat(t *testing.T) {
	res, err := Table2(testCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 27 { // 16 TQ + 4 TU + 5 SQ + 2 SU
		t.Fatalf("rows = %d, want 27", len(res.Rows))
	}
	ids := map[string]bool{}
	for _, r := range res.Rows {
		ids[r.ID] = true
		if !r.IsUpdate && r.Results == 0 {
			t.Errorf("%s: zero results", r.ID)
		}
		if r.MCT < 0 || r.Shallow < 0 || r.Deep < 0 {
			t.Errorf("%s: negative time", r.ID)
		}
	}
	for _, want := range []string{"TQ1", "TQ16", "TU1", "SQ5", "SU2"} {
		if !ids[want] {
			t.Errorf("missing row %s", want)
		}
	}
	out := FormatTable2(res)
	if !strings.Contains(out, "TQ7") || !strings.Contains(out, "Colors") {
		t.Fatalf("format:\n%s", out)
	}
	// TQ7 and TQ12 carry *D variants.
	for _, r := range res.Rows {
		if r.ID == "TQ7" && r.DeepNoDedup < 0 {
			t.Error("TQ7 should have a Deep-D measurement")
		}
	}
}

func TestFiguresShapes(t *testing.T) {
	rows, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 15 {
		t.Fatalf("figure rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Shallow.Bindings < r.MCT.Bindings {
			t.Errorf("%s: shallow bindings %d < MCT %d", r.ID, r.Shallow.Bindings, r.MCT.Bindings)
		}
		if r.Deep.Bindings > r.MCT.Bindings {
			t.Errorf("%s: deep bindings %d > MCT %d (deep should be simplest)",
				r.ID, r.Deep.Bindings, r.MCT.Bindings)
		}
	}
	f11 := FormatFigure(rows, true)
	f12 := FormatFigure(rows, false)
	if !strings.Contains(f11, "path expressions") || !strings.Contains(f12, "variable bindings") {
		t.Fatal("figure headers wrong")
	}
}

func TestTrimmedMean(t *testing.T) {
	calls := 0
	v, err := trimmedMean(5, func() error { calls++; return nil })
	if err != nil || calls != 5 {
		t.Fatalf("calls = %d, err %v", calls, err)
	}
	if v < 0 {
		t.Fatal("negative mean")
	}
	calls = 0
	if _, err := trimmedMean(1, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("runs=1: calls = %d", calls)
	}
}
