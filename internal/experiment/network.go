package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colorfulxml/client"
	"colorfulxml/colorful"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/server"
)

// NetworkConfig drives the network serving benchmark: the catalog workload
// of the Concurrent experiment, but with every query crossing the wire
// protocol — client pool, frames, per-connection sessions — instead of
// calling into colorful.DB in-process.
type NetworkConfig struct {
	// Addr is an mctserved address to benchmark against. Empty boots an
	// in-process server on a loopback listener (still a real TCP socket and
	// the full wire path).
	Addr string
	// Clients is the number of concurrent client goroutines (default 8).
	Clients int
	// Ops is the number of queries per client (default 200).
	Ops int
	// Scale is the catalog size for the in-process server; ignored when
	// Addr is set (the remote server populated its own store). Default 1000.
	Scale int
	// PoolSize caps the client connection pool (default = Clients).
	PoolSize int
	// Prepared routes queries through client.Stmt instead of one-shot Query.
	Prepared bool
	// MaxInflight applies admission control on the in-process server.
	MaxInflight int
}

// DefaultNetwork mirrors the bench-gate invocation.
var DefaultNetwork = NetworkConfig{Clients: 8, Ops: 200, Scale: 1000}

// NetworkResult is the measured outcome.
type NetworkResult struct {
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops_per_client"`
	Scale     int     `json:"scale,omitempty"`
	PoolSize  int     `json:"pool_size"`
	Prepared  bool    `json:"prepared,omitempty"`
	InProcess bool    `json:"in_process"`
	Queries   int64   `json:"queries"`
	Millis    float64 `json:"millis"`
	QPS       float64 `json:"qps"`

	P50Micros float64 `json:"p50_micros"`
	P95Micros float64 `json:"p95_micros"`
	P99Micros float64 `json:"p99_micros"`

	// Server-side accounting fetched over the wire after the run.
	ServerRequests  uint64 `json:"server_requests"`
	ServerResponses uint64 `json:"server_responses"`

	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// NewCatalogDB builds the in-memory catalog store the Concurrent
// experiment serves (red catalog/items/names, green featured/votes) —
// exported so mctserved and the e2e harness boot the same datagen store
// the benchmarks use.
func NewCatalogDB(scale int) (*colorful.DB, error) {
	return buildCatalog(ConcurrentConfig{Scale: scale})
}

// CatalogQueries returns the catalog read mix (a full scan, an equality
// lookup, and a cross-hierarchy navigation), the vocabulary every network
// client drives.
func CatalogQueries() []string {
	return append([]string(nil), concurrentQueries...)
}

// Network runs the benchmark and returns throughput plus latency
// quantiles measured at the client.
func Network(cfg NetworkConfig) (*NetworkResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = DefaultNetwork.Clients
	}
	if cfg.Ops <= 0 {
		cfg.Ops = DefaultNetwork.Ops
	}
	if cfg.Scale <= 0 {
		cfg.Scale = DefaultNetwork.Scale
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = cfg.Clients
	}

	addr := cfg.Addr
	inProcess := addr == ""
	if inProcess {
		db, err := NewCatalogDB(cfg.Scale)
		if err != nil {
			return nil, err
		}
		if cfg.MaxInflight > 0 {
			db.SetMaxInflight(cfg.MaxInflight)
		}
		srv := server.New(db, server.Options{Name: "mctbench-serve"})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve(ln) //nolint:errcheck // exits on Shutdown below
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // benchmark teardown
		}()
		addr = ln.Addr().String()
	}

	cdb, err := client.OpenOptions(addr, client.Options{PoolSize: cfg.PoolSize, ClientName: "mctbench"})
	if err != nil {
		return nil, err
	}
	defer cdb.Close()

	queries := CatalogQueries()
	stmts := make([]*client.Stmt, 0, len(queries))
	if cfg.Prepared {
		for _, q := range queries {
			st, err := cdb.Prepare(q)
			if err != nil {
				return nil, fmt.Errorf("prepare %q: %w", q, err)
			}
			defer st.Close()
			stmts = append(stmts, st)
		}
	}

	var (
		wg      sync.WaitGroup
		done    atomic.Int64
		lat     obs.Histogram // per-query latency in microseconds
		failMu  sync.Mutex
		failErr error
	)
	start := time.Now()
	for cid := 0; cid < cfg.Clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			for i := 0; i < cfg.Ops; i++ {
				q := (cid + i) % len(queries)
				t0 := time.Now()
				var err error
				if cfg.Prepared {
					_, err = stmts[q].Query()
				} else {
					_, err = cdb.Query(queries[q])
				}
				if err != nil {
					failMu.Lock()
					if failErr == nil {
						failErr = fmt.Errorf("client %d op %d: %w", cid, i, err)
					}
					failMu.Unlock()
					return
				}
				lat.Observe(time.Since(t0).Microseconds())
				done.Add(1)
			}
		}(cid)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failErr != nil {
		return nil, failErr
	}

	res := &NetworkResult{
		Clients:   cfg.Clients,
		Ops:       cfg.Ops,
		PoolSize:  cfg.PoolSize,
		Prepared:  cfg.Prepared,
		InProcess: inProcess,
		Queries:   done.Load(),
		Millis:    float64(elapsed.Microseconds()) / 1000,
		QPS:       float64(done.Load()) / elapsed.Seconds(),
		P50Micros: lat.Quantile(0.50),
		P95Micros: lat.Quantile(0.95),
		P99Micros: lat.Quantile(0.99),
	}
	if inProcess {
		res.Scale = cfg.Scale
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if st, err := cdb.ServerStats(ctx); err == nil {
		res.ServerRequests = st.Requests
		res.ServerResponses = st.Responses
	}
	res.Obs = obs.Default.Snapshot()
	return res, nil
}

func (r *NetworkResult) benchName() string {
	name := "network-serve"
	if r.Prepared {
		name += "-prepared"
	}
	return name
}

// BenchJSON renders the machine-readable result line, prefixed with
// "BENCH" so harnesses can grep it out of mixed output.
func (r *NetworkResult) BenchJSON() string {
	type named struct {
		Name string `json:"name"`
		*NetworkResult
	}
	clean := *r
	clean.Obs = nil // keep the gated line compact
	b, _ := json.Marshal(named{Name: r.benchName(), NetworkResult: &clean})
	return "BENCH " + string(b)
}

// FormatNetwork renders the human-readable report.
func FormatNetwork(r *NetworkResult) string {
	var b strings.Builder
	mode := "one-shot queries"
	if r.Prepared {
		mode = "prepared statements"
	}
	where := "remote server"
	if r.InProcess {
		where = fmt.Sprintf("in-process loopback server (catalog scale %d)", r.Scale)
	}
	fmt.Fprintf(&b, "Network serving: %d clients x %d ops, %s, pool %d, %s\n",
		r.Clients, r.Ops, mode, r.PoolSize, where)
	fmt.Fprintf(&b, "  %d queries in %.1f ms -> %.0f qps (p50 %.0fus p95 %.0fus p99 %.0fus)\n",
		r.Queries, r.Millis, r.QPS, r.P50Micros, r.P95Micros, r.P99Micros)
	fmt.Fprintf(&b, "  server: %d requests, %d responses\n", r.ServerRequests, r.ServerResponses)
	return b.String()
}
