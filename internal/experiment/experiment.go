// Package experiment drives the paper's Section 7 evaluation: it loads the
// datasets, runs every Table 2 query and update on every representation,
// measures wall-clock time and engine metrics, assembles Table 1's storage
// accounting and Figures 11/12's query-complexity metrics, and renders the
// paper-style reports. Both cmd/mctbench and the root benchmark suite build
// on it.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"colorfulxml/internal/plan"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/workload"
)

// Config selects dataset scales. The paper's full TPC-W dataset corresponds
// to roughly Scale 100; the default keeps full-suite runs in seconds.
type Config struct {
	TPCWScale   int
	SigmodScale int
	Seed        int64
	PoolPages   int // 0 = the paper's 256 MB
	// Cold flushes the buffer pool before every timed run (the paper's
	// cold-cache configuration; it reports warm-cache numbers because "the
	// differences stand out more").
	Cold bool
}

// DefaultConfig is used by the CLI and benchmarks unless overridden.
var DefaultConfig = Config{TPCWScale: 2, SigmodScale: 2, Seed: 1}

// Table1Row is one dataset/representation row of Table 1.
type Table1Row struct {
	Dataset     string
	Variant     workload.Variant
	Elements    int
	Attrs       int
	ContentN    int
	StructNodes int
	DataMB      float64
	IndexMB     float64
}

// Table1 loads all six stores and reports the storage accounting.
func Table1(cfg Config) ([]Table1Row, error) {
	tp, err := workload.LoadTPCW(cfg.TPCWScale, cfg.Seed, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	sg, err := workload.LoadSigmod(cfg.SigmodScale, cfg.Seed, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, ds := range []struct {
		name string
		st   *workload.Stores
	}{{"TPC-W", tp}, {"SIGMOD-Record", sg}} {
		for _, v := range workload.Variants {
			s := ds.st.Of(v)
			counts := s.Counts()
			data, err := s.DataBytes()
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table1Row{
				Dataset:     ds.name,
				Variant:     v,
				Elements:    counts.Elements,
				Attrs:       counts.Attributes,
				ContentN:    counts.ContentNodes,
				StructNodes: counts.StructNodes,
				DataMB:      float64(data) / (1 << 20),
				IndexMB:     float64(s.IndexBytes()) / (1 << 20),
			})
		}
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-8s %10s %10s %10s %10s %9s %9s\n",
		"Dataset", "Variant", "Elements", "Attrs", "Content", "StructN", "Data MB", "Index MB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8s %10d %10d %10d %10d %9.2f %9.2f\n",
			r.Dataset, r.Variant, r.Elements, r.Attrs, r.ContentN, r.StructNodes, r.DataMB, r.IndexMB)
	}
	return b.String()
}

// Table2Row is one query row of Table 2 (times in milliseconds).
type Table2Row struct {
	ID      string
	Results int
	MCT     float64
	Shallow float64
	Deep    float64
	// DeepNoDedup is the "*D" time (<0 when not applicable), DResults its
	// row count.
	DeepNoDedup float64
	DResults    int
	Colors      int
	Trees       int
	IsUpdate    bool
}

// Table2Result bundles the rows with the stores used (so callers can reuse
// warm stores).
type Table2Result struct {
	Rows []Table2Row
}

// timeIt measures one run in milliseconds.
func timeIt(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return float64(time.Since(start).Microseconds()) / 1000.0, err
}

// median3of5 runs fn five times and returns the trimmed mean of the middle
// three, matching the paper's methodology ("each experiment was run five
// times; the lowest and highest readings were ignored and the other three
// were averaged"). Use runs=1 for quick CLI runs.
func trimmedMean(runs int, fn func() error) (float64, error) {
	// Collect garbage outside the timed region so allocation debt from
	// earlier queries (or dataset loading) does not distort a measurement.
	runtime.GC()
	if runs <= 1 {
		return timeIt(fn)
	}
	times := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		t, err := timeIt(fn)
		if err != nil {
			return 0, err
		}
		times = append(times, t)
	}
	sort.Float64s(times)
	times = times[1 : len(times)-1]
	sum := 0.0
	for _, t := range times {
		sum += t
	}
	return sum / float64(len(times)), nil
}

// RunQueries measures every query of the given set — warm cache by default
// (the paper's reported configuration: a first execution populates the
// buffer pool), or flushing all buffers before each run when cold is true.
func RunQueries(qs []*workload.Query, st *workload.Stores, runs int, cold bool) ([]Table2Row, error) {
	var rows []Table2Row
	for _, q := range qs {
		row := Table2Row{ID: q.ID, Colors: q.Colors, Trees: q.Trees, DeepNoDedup: -1}
		for _, v := range workload.Variants {
			// Warm the cache with one untimed run.
			res, _, err := workload.RunQuery(q, st, v)
			if err != nil {
				return nil, err
			}
			if v == workload.MCT {
				row.Results = len(res)
			}
			t, err := trimmedMean(runs, func() error {
				if cold {
					st.Of(v).Pages().FlushAll()
				}
				_, _, err := workload.RunQuery(q, st, v)
				return err
			})
			if err != nil {
				return nil, err
			}
			switch v {
			case workload.MCT:
				row.MCT = t
			case workload.Shallow:
				row.Shallow = t
			case workload.Deep:
				row.Deep = t
			}
		}
		if q.DeepNoDedup != nil {
			res, _, err := workload.RunDeepNoDedup(q, st)
			if err != nil {
				return nil, err
			}
			row.DResults = len(res)
			t, err := trimmedMean(runs, func() error {
				_, _, err := workload.RunDeepNoDedup(q, st)
				return err
			})
			if err != nil {
				return nil, err
			}
			row.DeepNoDedup = t
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunUpdates measures every update; each run gets fresh stores supplied by
// mkStores, since updates mutate.
func RunUpdates(us []*workload.UpdateSpec, mkStores func() (*workload.Stores, error)) ([]Table2Row, error) {
	var rows []Table2Row
	for _, u := range us {
		row := Table2Row{ID: u.ID, Colors: u.Colors, Trees: u.Trees, DeepNoDedup: -1, IsUpdate: true}
		st, err := mkStores()
		if err != nil {
			return nil, err
		}
		for _, v := range workload.Variants {
			run := u.Run[v]
			store := st.Of(v)
			var touched int
			t, err := timeIt(func() error {
				n, err := run(store, st.Params)
				touched = n
				return err
			})
			if err != nil {
				return nil, err
			}
			switch v {
			case workload.MCT:
				row.MCT = t
				row.Results = touched
			case workload.Shallow:
				row.Shallow = t
			case workload.Deep:
				row.Deep = t
				row.DResults = touched // deep's copy count is the *D row
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2 runs the whole workload.
func Table2(cfg Config, runs int) (*Table2Result, error) {
	tp, err := workload.LoadTPCW(cfg.TPCWScale, cfg.Seed, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	sg, err := workload.LoadSigmod(cfg.SigmodScale, cfg.Seed, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	qrows, err := RunQueries(workload.TPCWQueries(), tp, runs, cfg.Cold)
	if err != nil {
		return nil, err
	}
	rows = append(rows, qrows...)
	urows, err := RunUpdates(workload.TPCWUpdates(), func() (*workload.Stores, error) {
		return workload.LoadTPCW(cfg.TPCWScale, cfg.Seed, cfg.PoolPages)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, urows...)
	srows, err := RunQueries(workload.SigmodQueries(), sg, runs, cfg.Cold)
	if err != nil {
		return nil, err
	}
	rows = append(rows, srows...)
	surows, err := RunUpdates(workload.SigmodUpdates(), func() (*workload.Stores, error) {
		return workload.LoadSigmod(cfg.SigmodScale, cfg.Seed, cfg.PoolPages)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, surows...)
	return &Table2Result{Rows: rows}, nil
}

// FormatTable2 renders Table 2 in the paper's layout (times in ms).
func FormatTable2(res *Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s %10s %7s %6s\n",
		"Query", "Results", "MCT ms", "Shallow", "Deep", "Deep-D", "Colors", "Trees")
	for _, r := range res.Rows {
		dd := "-"
		if r.DeepNoDedup >= 0 {
			dd = fmt.Sprintf("%.2f", r.DeepNoDedup)
		}
		if r.IsUpdate && r.DResults > 0 && r.DResults != r.Results {
			dd = fmt.Sprintf("(%d)", r.DResults)
		}
		fmt.Fprintf(&b, "%-6s %8d %10.2f %10.2f %10.2f %10s %7d %6d\n",
			r.ID, r.Results, r.MCT, r.Shallow, r.Deep, dd, r.Colors, r.Trees)
	}
	return b.String()
}

// FigureRow is one query of Figures 11/12.
type FigureRow struct {
	ID      string
	MCT     workload.Complexity
	Shallow workload.Complexity
	Deep    workload.Complexity
}

// Figures computes the Figure 11/12 metrics for every workload query whose
// three formulations differ (the paper omits queries with identical
// numbers).
func Figures() ([]FigureRow, error) {
	var rows []FigureRow
	for _, q := range append(workload.TPCWQueries(), workload.SigmodQueries()...) {
		var row FigureRow
		row.ID = q.ID
		var err error
		if row.MCT, err = workload.QueryComplexity(q.Text[workload.MCT]); err != nil {
			return nil, fmt.Errorf("%s MCT: %w", q.ID, err)
		}
		if row.Shallow, err = workload.QueryComplexity(q.Text[workload.Shallow]); err != nil {
			return nil, fmt.Errorf("%s shallow: %w", q.ID, err)
		}
		if row.Deep, err = workload.QueryComplexity(q.Text[workload.Deep]); err != nil {
			return nil, fmt.Errorf("%s deep: %w", q.ID, err)
		}
		if row.MCT == row.Shallow && row.Shallow == row.Deep {
			continue // the paper skips queries identical across strategies
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure renders Figure 11 (paths=true) or Figure 12 (paths=false) as
// a text bar table.
func FormatFigure(rows []FigureRow, paths bool) string {
	var b strings.Builder
	metric := "variable bindings (Figure 12)"
	if paths {
		metric = "path expressions (Figure 11)"
	}
	fmt.Fprintf(&b, "Query specification complexity: number of %s\n", metric)
	fmt.Fprintf(&b, "%-6s %5s %8s %5s\n", "Query", "MCT", "Shallow", "Deep")
	pick := func(c workload.Complexity) int {
		if paths {
			return c.PathExprs
		}
		return c.Bindings
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %5d %8d %5d\n", r.ID, pick(r.MCT), pick(r.Shallow), pick(r.Deep))
	}
	return b.String()
}

// StoreFor exposes a loaded store for ablation benchmarks.
func StoreFor(st *workload.Stores, v workload.Variant) *storage.Store { return st.Of(v) }

// CompiledRow compares the automatic plan compiler (internal/plan) against
// the hand-specified plan for one query and representation.
type CompiledRow struct {
	ID      string
	Variant workload.Variant
	// Supported is false when the text is outside the compilable subset
	// (distinct-values deep formulations); the remaining fields are zero.
	Supported bool
	// Results is the distinct result count; Agree whether compiled and hand
	// result sets are identical.
	Results int
	Agree   bool
	// HandMs and CompiledMs are run times in milliseconds; CompiledMs
	// includes parsing, plan compilation and costing on every run.
	HandMs     float64
	CompiledMs float64
}

// CompiledAgreement compiles every Table 2 query text on every
// representation, checks result-set agreement with the hand plan, and times
// both. It is the experiment-layer view of the differential harness: the hand
// plans stay as the measured baseline, the compiler is the default path.
func CompiledAgreement(cfg Config, runs int) ([]CompiledRow, error) {
	tp, err := workload.LoadTPCW(cfg.TPCWScale, cfg.Seed, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	sg, err := workload.LoadSigmod(cfg.SigmodScale, cfg.Seed, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	var rows []CompiledRow
	for _, g := range []struct {
		qs []*workload.Query
		st *workload.Stores
	}{{workload.TPCWQueries(), tp}, {workload.SigmodQueries(), sg}} {
		for _, q := range g.qs {
			for _, v := range workload.Variants {
				row := CompiledRow{ID: q.ID, Variant: v}
				_, handVals, _, err := workload.RunCompiled(q, g.st, v)
				if err != nil {
					if errors.Is(err, plan.ErrUnsupported) {
						rows = append(rows, row)
						continue
					}
					return nil, fmt.Errorf("%s/%s compiled: %w", q.ID, v, err)
				}
				hand, _, err := workload.RunQuery(q, g.st, v)
				if err != nil {
					return nil, err
				}
				cs, hs := distinctSorted(handVals), distinctSorted(hand)
				row.Supported = true
				row.Results = len(cs)
				row.Agree = stringSetsEqual(cs, hs)
				if row.HandMs, err = trimmedMean(runs, func() error {
					_, _, err := workload.RunQuery(q, g.st, v)
					return err
				}); err != nil {
					return nil, err
				}
				if row.CompiledMs, err = trimmedMean(runs, func() error {
					_, _, _, err := workload.RunCompiled(q, g.st, v)
					return err
				}); err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FormatCompiled renders the compiler-vs-hand-plan comparison.
func FormatCompiled(rows []CompiledRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %8s %7s %10s %12s\n",
		"Query", "Variant", "Results", "Agree", "Hand ms", "Compiled ms")
	agreed, supported := 0, 0
	for _, r := range rows {
		if !r.Supported {
			fmt.Fprintf(&b, "%-6s %-8s %8s %7s %10s %12s\n", r.ID, r.Variant, "-", "-", "-", "unsupported")
			continue
		}
		supported++
		if r.Agree {
			agreed++
		}
		fmt.Fprintf(&b, "%-6s %-8s %8d %7v %10.2f %12.2f\n",
			r.ID, r.Variant, r.Results, r.Agree, r.HandMs, r.CompiledMs)
	}
	fmt.Fprintf(&b, "%d/%d supported plans agree with the hand-specified plans\n", agreed, supported)
	return b.String()
}

func distinctSorted(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func stringSetsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
