package serialize

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"colorfulxml/internal/core"
	"colorfulxml/internal/schema"
)

// randomSchema builds a small random MCT schema with two hierarchies sharing
// a multi-colored middle type, satisfying the Section 5.3 assumptions
// (acyclic multi-colored types, one production per color).
func randomSchema(seed int64) *schema.Schema {
	rng := rand.New(rand.NewSource(seed))
	s := schema.New()
	s.AddColor("a", "rootA")
	s.AddColor("b", "rootB")

	// Shared multi-colored types m1 (a+b child of both roots) and m2
	// (child of m1 in both colors).
	s.AddProduction("a", "rootA", "m1*")
	s.AddProduction("b", "rootB", "m1*")
	prodA := []string{"m2*"}
	prodB := []string{"m2*"}
	// Random single-colored leaves with random quantities.
	nLeaves := 1 + rng.Intn(4)
	for i := 0; i < nLeaves; i++ {
		leaf := fmt.Sprintf("leafA%d", i)
		prodA = append(prodA, leaf+"*")
		s.SetQuant(leaf, "a", float64(1+rng.Intn(6)))
	}
	nLeaves = 1 + rng.Intn(4)
	for i := 0; i < nLeaves; i++ {
		leaf := fmt.Sprintf("leafB%d", i)
		prodB = append(prodB, leaf+"*")
		s.SetQuant(leaf, "b", float64(1+rng.Intn(6)))
	}
	s.AddProduction("a", "m1", prodA...)
	s.AddProduction("b", "m1", prodB...)
	s.AddProduction("a", "m2", "x?")
	s.AddProduction("b", "m2", "y?")
	s.SetQuant("m1", "a", float64(1+rng.Intn(8)))
	s.SetQuant("m1", "b", float64(1+rng.Intn(8)))
	s.SetQuant("m2", "a", float64(1+rng.Intn(8)))
	s.SetQuant("m2", "b", float64(1+rng.Intn(8)))
	return s
}

// TestQuickOptSerializeMatchesExhaustive extends the Theorem 5.1 check to
// random schemas: for every seed, the DP's primary-color choices must match
// the exhaustive minimum over all assignments of the multi-colored types.
func TestQuickOptSerializeMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSchema(seed)
		plan, err := OptSerialize(s)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		multi := []string{"m1", "m2"}
		best := -1.0
		var rec func(i int, cur map[string]core.Color) bool
		rec = func(i int, cur map[string]core.Color) bool {
			if i == len(multi) {
				assign := map[string]core.Color{}
				for k, v := range cur {
					assign[k] = v
				}
				cost, err := CostUnder(s, assign)
				if err != nil {
					return false
				}
				if best < 0 || cost < best {
					best = cost
				}
				return true
			}
			for _, c := range s.RealColors(multi[i]) {
				cur[multi[i]] = c
				if !rec(i+1, cur) {
					return false
				}
			}
			delete(cur, multi[i])
			return true
		}
		if !rec(0, map[string]core.Color{}) {
			return false
		}
		planAssign := map[string]core.Color{}
		for _, e := range multi {
			planAssign[e] = plan.Primary(e)
		}
		planCost, err := CostUnder(s, planAssign)
		if err != nil {
			return false
		}
		if planCost != best {
			t.Logf("seed %d: plan cost %v != exhaustive best %v (plan %v)",
				seed, planCost, best, planAssign)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTripWithRandomPlans serializes random databases under
// adversarial plans (forcing odd primary colors) and checks reconstruction.
func TestQuickRoundTripWithRandomPlans(t *testing.T) {
	f := func(seed int64) bool {
		db := randomSerializableDB(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		colors := db.Colors()
		plan := &Plan{Ranked: map[string][]core.Color{}}
		for _, tag := range []string{"a", "b", "c", "d", "z"} {
			perm := rng.Perm(len(colors))
			ranked := make([]core.Color, len(colors))
			for i, pi := range perm {
				ranked[i] = colors[pi]
			}
			plan.Ranked[tag] = ranked
		}
		out, err := SerializeString(db, plan, false)
		if err != nil {
			t.Logf("serialize: %v", err)
			return false
		}
		back, err := DeserializeString(out)
		if err != nil {
			t.Logf("deserialize: %v\n%s", err, out)
			return false
		}
		ok, why := Isomorphic(db, back)
		if !ok {
			t.Logf("seed %d: %s", seed, why)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
