package serialize

import (
	"fmt"
	"strconv"
	"strings"

	"colorfulxml/internal/core"
	"colorfulxml/internal/xmlenc"
)

// Serialization format. An MCT database serializes to
//
//	<mct colors="blue green red">
//	  <tree color="blue"> ...full elements... </tree>
//	  ...
//	</mct>
//
// Every element instance is emitted exactly once, nested inside the tree of
// its primary color under its parent in that color (its nest edge). The
// remaining structure is encoded with reserved attributes:
//
//	mct:id         node identifier, emitted when the node is referenced
//	mct:colors     full color list, for multi-colored elements
//	mct:e          nest edge color, when it differs from the enclosing
//	               context (a child may nest under its parent along any of
//	               the parent's hierarchies)
//	mct:p-<color>  parent reference for each non-nest color ("doc" for the
//	               document node)
//
// and, on parents whose per-color element-child order is not implied by
// physical nesting, mct:o-<color> — the ordered list of element-child ids.
//
// Text content is emitted inline at its nest-edge position. Per-color
// element order is preserved exactly; the interleaving of text runs relative
// to elements in NON-nest colors is approximated (text first), which is
// exact for the data-centric documents this system targets.
const (
	attrID     = "mct:id"
	attrColors = "mct:colors"
	attrEdge   = "mct:e"
	prefixP    = "mct:p-"
	prefixO    = "mct:o-"
)

// Serialize renders the database as an XML document per the plan. A nil plan
// nests every instance in its first (sorted-lowest) color.
func Serialize(db *core.Database, plan *Plan) (*xmlenc.Node, error) {
	s := &serializer{db: db, plan: plan, needsID: map[core.NodeID]bool{}, mixed: map[edgeKey]bool{}}
	s.analyze()
	root := &xmlenc.Node{Kind: xmlenc.KindElement, Name: "mct"}
	colors := db.Colors()
	colorNames := make([]string, len(colors))
	for i, c := range colors {
		colorNames[i] = string(c)
	}
	root.SetAttr("colors", strings.Join(colorNames, " "))
	for _, c := range colors {
		tree := &xmlenc.Node{Kind: xmlenc.KindElement, Name: "tree"}
		tree.SetAttr("color", string(c))
		if err := s.emitChildren(tree, db.Document(), c, c); err != nil {
			return nil, err
		}
		s.emitOrderAttr(tree, db.Document(), c)
		root.Children = append(root.Children, tree)
	}
	return &xmlenc.Node{Kind: xmlenc.KindDocument, Children: []*xmlenc.Node{root}}, nil
}

type edgeKey struct {
	parent core.NodeID
	color  core.Color
}

type serializer struct {
	db      *core.Database
	plan    *Plan
	needsID map[core.NodeID]bool
	mixed   map[edgeKey]bool
	// primary is the per-instance nest color, after cycle breaking.
	primary map[core.NodeID]core.Color
}

// primaryFor resolves the nest edge color of an instance.
func (s *serializer) primaryFor(n *core.Node) core.Color {
	if c, ok := s.primary[n.ID()]; ok {
		return c
	}
	return s.planPrimary(n)
}

func (s *serializer) planPrimary(n *core.Node) core.Color {
	if s.plan != nil {
		return s.plan.PrimaryFor(n)
	}
	colors := n.Colors()
	if len(colors) == 0 {
		return ""
	}
	return colors[0]
}

// assignPrimaries chooses each instance's nest color, breaking emission
// cycles. An element is emitted inside its parent along its nest color; that
// parent must itself be emitted, so the nest-parent chains must all reach
// the document. A plan may induce cycles (A nests under B in one color while
// B nests under A in another); such nodes would never be emitted. For any
// node whose chain does not reach the document, the nest color is demoted to
// an alternative whose parent's chain does.
func (s *serializer) assignPrimaries() {
	s.primary = map[core.NodeID]core.Color{}
	var elems []*core.Node
	for _, c := range s.db.Colors() {
		for _, n := range s.db.TreeNodes(c) {
			if n.Kind() == core.KindElement {
				if _, ok := s.primary[n.ID()]; !ok {
					s.primary[n.ID()] = s.planPrimary(n)
					elems = append(elems, n)
				}
			}
		}
	}
	// okNodes[n]: n's nest-parent chain reaches the document.
	okNodes := map[core.NodeID]bool{}
	var reaches func(n *core.Node, visiting map[core.NodeID]bool) bool
	reaches = func(n *core.Node, visiting map[core.NodeID]bool) bool {
		if okNodes[n.ID()] {
			return true
		}
		if visiting[n.ID()] {
			return false // cycle
		}
		visiting[n.ID()] = true
		defer delete(visiting, n.ID())
		p := core.Parent(n, s.primary[n.ID()])
		if p == nil {
			return false
		}
		if p.Kind() == core.KindDocument || reaches(p, visiting) {
			okNodes[n.ID()] = true
			return true
		}
		return false
	}
	for {
		var unreached []*core.Node
		for _, n := range elems {
			reaches(n, map[core.NodeID]bool{})
		}
		for _, n := range elems {
			if !okNodes[n.ID()] {
				unreached = append(unreached, n)
			}
		}
		if len(unreached) == 0 {
			return
		}
		// Repair one node whose parent in SOME color already reaches the
		// document (one always exists: per-color parent chains are rooted
		// trees, so walking any color up from an unreached node hits a
		// reached node or the document).
		repaired := false
		for _, n := range unreached {
			for _, c := range n.Colors() {
				p := core.Parent(n, c)
				if p == nil {
					continue
				}
				if p.Kind() == core.KindDocument || okNodes[p.ID()] {
					s.primary[n.ID()] = c
					okNodes[n.ID()] = true
					repaired = true
					break
				}
			}
			if repaired {
				break
			}
		}
		if !repaired {
			// Defensive: unreachable for valid databases; avoid looping.
			n := unreached[0]
			s.primary[n.ID()] = n.Colors()[0]
			okNodes[n.ID()] = true
		}
	}
}

// analyze finds nodes that need ids and (parent, color) groups whose element
// order must be made explicit.
func (s *serializer) analyze() {
	s.assignPrimaries()
	for _, c := range s.db.Colors() {
		for _, n := range s.db.TreeNodes(c) {
			if n.Kind() != core.KindElement {
				continue
			}
			if s.primaryFor(n) == c {
				continue
			}
			// n is referenced in color c rather than nested.
			p := core.Parent(n, c)
			if p != nil && p.Kind() == core.KindElement {
				s.needsID[p.ID()] = true
			}
			if p != nil {
				s.mixed[edgeKey{p.ID(), c}] = true
			}
		}
	}
	// Every element child of a mixed group needs an id for the order list.
	for key := range s.mixed {
		p := s.db.NodeByID(key.parent)
		if p == nil {
			continue
		}
		for _, ch := range core.Children(p, key.color) {
			if ch.Kind() == core.KindElement {
				s.needsID[ch.ID()] = true
			}
		}
	}
}

// emitChildren emits, under out, the children of parent in color c that nest
// here (their primary color is c). ctx is the enclosing context color: nested
// children whose edge differs from it carry an mct:e attribute.
func (s *serializer) emitChildren(out *xmlenc.Node, parent *core.Node, c core.Color, ctx core.Color) error {
	for _, ch := range core.Children(parent, c) {
		switch ch.Kind() {
		case core.KindText:
			// Text nests with its owner: emit only at the owner's nest edge.
			if s.primaryFor(parent) == c || parent.Kind() == core.KindDocument {
				out.Children = append(out.Children, xmlenc.NewText(ch.Value()))
			}
		case core.KindElement:
			if s.primaryFor(ch) != c {
				continue // referenced, emitted elsewhere
			}
			el, err := s.emitFull(ch, c, ctx)
			if err != nil {
				return err
			}
			out.Children = append(out.Children, el)
		case core.KindComment:
			if s.primaryFor(ch) == c {
				out.Children = append(out.Children, &xmlenc.Node{Kind: xmlenc.KindComment, Value: ch.Value()})
			}
		case core.KindPI:
			if s.primaryFor(ch) == c {
				out.Children = append(out.Children, &xmlenc.Node{Kind: xmlenc.KindPI, Name: ch.Name(), Value: ch.Value()})
			}
		}
	}
	return nil
}

// emitFull emits one element completely, nested at its nest edge c inside
// context color ctx.
func (s *serializer) emitFull(n *core.Node, c core.Color, ctx core.Color) (*xmlenc.Node, error) {
	el := &xmlenc.Node{Kind: xmlenc.KindElement, Name: n.Name()}
	colors := n.Colors()
	if s.needsID[n.ID()] {
		el.SetAttr(attrID, strconv.FormatUint(uint64(n.ID()), 10))
	}
	if c != ctx {
		el.SetAttr(attrEdge, string(c))
	}
	if len(colors) > 1 {
		names := make([]string, len(colors))
		for i, cc := range colors {
			names[i] = string(cc)
		}
		el.SetAttr(attrColors, strings.Join(names, " "))
	}
	for _, cc := range colors {
		if cc == c {
			continue
		}
		p := core.Parent(n, cc)
		switch {
		case p == nil:
			return nil, fmt.Errorf("serialize: %v has color %q but no parent in it", n, cc)
		case p.Kind() == core.KindDocument:
			el.SetAttr(prefixP+string(cc), "doc")
		default:
			el.SetAttr(prefixP+string(cc), strconv.FormatUint(uint64(p.ID()), 10))
		}
	}
	for _, a := range n.Attributes() {
		el.SetAttr(a.Name(), a.Value())
	}
	// Children from every color of n; only those nesting here are inlined.
	// The context for them is n's own nest edge c.
	for _, cc := range colors {
		// Text children are shared across colors: emit them for the nest
		// edge pass only (emitChildren handles the filtering).
		if err := s.emitChildren(el, n, cc, c); err != nil {
			return nil, err
		}
		s.emitOrderAttr(el, n, cc)
	}
	return el, nil
}

// emitOrderAttr records explicit element order for a mixed (parent, color)
// group.
func (s *serializer) emitOrderAttr(el *xmlenc.Node, parent *core.Node, c core.Color) {
	if !s.mixed[edgeKey{parent.ID(), c}] {
		return
	}
	var ids []string
	for _, ch := range core.Children(parent, c) {
		if ch.Kind() == core.KindElement {
			ids = append(ids, strconv.FormatUint(uint64(ch.ID()), 10))
		}
	}
	el.SetAttr(prefixO+string(c), strings.Join(ids, " "))
}

// SerializeString is Serialize rendered to a string.
func SerializeString(db *core.Database, plan *Plan, indent bool) (string, error) {
	doc, err := Serialize(db, plan)
	if err != nil {
		return "", err
	}
	opt := xmlenc.WriteOptions{Declaration: true}
	if indent {
		opt.Indent = "  "
	}
	return xmlenc.String(doc, opt), nil
}

// Deserialize reconstructs an MCT database from a serialized document.
func Deserialize(doc *xmlenc.Node) (*core.Database, error) {
	root := doc.Root()
	if root == nil || root.Name != "mct" {
		return nil, fmt.Errorf("serialize: document root is not <mct>")
	}
	colorsAttr, ok := root.Attr("colors")
	if !ok {
		return nil, fmt.Errorf("serialize: <mct> missing colors attribute")
	}
	var colors []core.Color
	for _, c := range strings.Fields(colorsAttr) {
		colors = append(colors, core.Color(c))
	}
	db := core.NewDatabase(colors...)
	d := &deserializer{
		db:    db,
		byID:  map[string]*core.Node{},
		refs:  nil,
		order: nil,
	}
	for _, tree := range root.Elements("tree") {
		tc, ok := tree.Attr("color")
		if !ok {
			return nil, fmt.Errorf("serialize: <tree> missing color attribute")
		}
		c := core.Color(tc)
		if !db.HasColor(c) {
			return nil, fmt.Errorf("serialize: undeclared tree color %q", c)
		}
		if err := d.buildChildren(tree, db.Document(), c); err != nil {
			return nil, err
		}
		d.collectOrder(tree, db.Document())
	}
	if err := d.resolveRefs(); err != nil {
		return nil, err
	}
	if err := d.applyOrders(); err != nil {
		return nil, err
	}
	return db, nil
}

// DeserializeString parses and reconstructs from XML text.
func DeserializeString(src string) (*core.Database, error) {
	doc, err := xmlenc.Parse(src)
	if err != nil {
		return nil, err
	}
	return Deserialize(doc)
}

type pendingRef struct {
	child     *core.Node
	color     core.Color
	parentRef string // "doc" or an mct:id value
}

type pendingOrder struct {
	parent *core.Node
	color  core.Color
	ids    []string
}

type deserializer struct {
	db    *core.Database
	byID  map[string]*core.Node
	refs  []pendingRef
	order []pendingOrder
}

// buildChildren creates (and nests) the serialized children of parent along
// edge color c.
func (d *deserializer) buildChildren(src *xmlenc.Node, parent *core.Node, c core.Color) error {
	for _, ch := range src.Children {
		switch ch.Kind {
		case xmlenc.KindText:
			if parent.Kind() == core.KindElement {
				if _, err := d.db.AppendText(parent, ch.Value); err != nil {
					return err
				}
			}
		case xmlenc.KindElement:
			if err := d.buildElement(ch, parent, c); err != nil {
				return err
			}
		case xmlenc.KindComment:
			n, err := d.db.NewComment(ch.Value, c)
			if err != nil {
				return err
			}
			if err := d.db.Append(parent, n, c); err != nil {
				return err
			}
		case xmlenc.KindPI:
			n, err := d.db.NewPI(ch.Name, ch.Value, c)
			if err != nil {
				return err
			}
			if err := d.db.Append(parent, n, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *deserializer) buildElement(src *xmlenc.Node, parent *core.Node, ctx core.Color) error {
	// The nest edge is the context color unless overridden by mct:e.
	nestColor := ctx
	if e, ok := src.Attr(attrEdge); ok {
		nestColor = core.Color(e)
	}
	// Colors: explicit list or just the nest edge.
	var colors []core.Color
	if cl, ok := src.Attr(attrColors); ok {
		for _, c := range strings.Fields(cl) {
			colors = append(colors, core.Color(c))
		}
	} else {
		colors = []core.Color{nestColor}
	}
	if !containsColor(colors, nestColor) {
		return fmt.Errorf("serialize: element <%s> nested in %q but colored %v", src.Name, nestColor, colors)
	}
	n, err := d.db.NewElement(src.Name, colors[0])
	if err != nil {
		return err
	}
	for _, c := range colors[1:] {
		if err := d.db.AddColor(n, c); err != nil {
			return err
		}
	}
	if err := d.db.Append(parent, n, nestColor); err != nil {
		return err
	}
	for _, a := range src.Attrs {
		switch {
		case a.Name == attrID:
			d.byID[a.Value] = n
		case a.Name == attrColors, a.Name == attrEdge:
			// handled above
		case strings.HasPrefix(a.Name, prefixP):
			c := core.Color(strings.TrimPrefix(a.Name, prefixP))
			if !containsColor(colors, c) {
				return fmt.Errorf("serialize: <%s> has parent ref in non-color %q", src.Name, c)
			}
			d.refs = append(d.refs, pendingRef{child: n, color: c, parentRef: a.Value})
		case strings.HasPrefix(a.Name, prefixO):
			// collected by collectOrder after children exist
		default:
			if _, err := d.db.SetAttribute(n, a.Name, a.Value); err != nil {
				return err
			}
		}
	}
	if err := d.buildChildren(src, n, nestColor); err != nil {
		return err
	}
	d.collectOrder(src, n)
	return nil
}

func (d *deserializer) collectOrder(src *xmlenc.Node, n *core.Node) {
	for _, a := range src.Attrs {
		if strings.HasPrefix(a.Name, prefixO) {
			d.order = append(d.order, pendingOrder{
				parent: n,
				color:  core.Color(strings.TrimPrefix(a.Name, prefixO)),
				ids:    strings.Fields(a.Value),
			})
		}
	}
}

func (d *deserializer) resolveRefs() error {
	for _, r := range d.refs {
		var parent *core.Node
		if r.parentRef == "doc" {
			parent = d.db.Document()
		} else {
			parent = d.byID[r.parentRef]
			if parent == nil {
				return fmt.Errorf("serialize: dangling parent reference %q", r.parentRef)
			}
		}
		if err := d.db.Append(parent, r.child, r.color); err != nil {
			return err
		}
	}
	return nil
}

// applyOrders re-orders element children per the recorded mct:o-<color>
// lists (references were appended at the end; this restores true positions).
func (d *deserializer) applyOrders() error {
	for _, o := range d.order {
		want := make([]*core.Node, 0, len(o.ids))
		for _, id := range o.ids {
			n := d.byID[id]
			if n == nil {
				return fmt.Errorf("serialize: dangling order reference %q", id)
			}
			want = append(want, n)
		}
		// Detach all listed children, then re-append in order.
		for _, n := range want {
			if core.Parent(n, o.color) != o.parent {
				return fmt.Errorf("serialize: order list names %v, not a child of %v in %q", n, o.parent, o.color)
			}
			if err := d.db.Detach(n, o.color); err != nil {
				return err
			}
		}
		for _, n := range want {
			if err := d.db.Append(o.parent, n, o.color); err != nil {
				return err
			}
		}
	}
	return nil
}

func containsColor(cs []core.Color, c core.Color) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// Isomorphic reports whether two databases are structurally identical per
// color: same color sets, and for each color, identical trees (element
// names, attributes, per-color element-child order, and per-element
// concatenated text), ignoring node identities. It is the equivalence the
// serializer guarantees to preserve, used by round-trip tests.
func Isomorphic(a, b *core.Database) (bool, string) {
	ac, bc := a.Colors(), b.Colors()
	if len(ac) != len(bc) {
		return false, fmt.Sprintf("color counts differ: %v vs %v", ac, bc)
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return false, fmt.Sprintf("colors differ: %v vs %v", ac, bc)
		}
	}
	for _, c := range ac {
		if ok, why := isoNode(a.Document(), b.Document(), c); !ok {
			return false, fmt.Sprintf("color %q: %s", c, why)
		}
	}
	return true, ""
}

func isoNode(x, y *core.Node, c core.Color) (bool, string) {
	if x.Kind() != y.Kind() || x.Name() != y.Name() {
		return false, fmt.Sprintf("%v vs %v", x, y)
	}
	if x.Kind() == core.KindElement {
		if len(x.Colors()) != len(y.Colors()) {
			return false, fmt.Sprintf("%v colors %v vs %v", x, x.Colors(), y.Colors())
		}
		for i, cc := range x.Colors() {
			if y.Colors()[i] != cc {
				return false, fmt.Sprintf("%v colors %v vs %v", x, x.Colors(), y.Colors())
			}
		}
		if len(x.Attributes()) != len(y.Attributes()) {
			return false, fmt.Sprintf("%v attr count %d vs %d", x, len(x.Attributes()), len(y.Attributes()))
		}
		for _, a := range x.Attributes() {
			if y.AttributeValue(a.Name()) != a.Value() {
				return false, fmt.Sprintf("%v attr %s %q vs %q", x, a.Name(), a.Value(), y.AttributeValue(a.Name()))
			}
		}
	}
	xe := elementChildren(x, c)
	ye := elementChildren(y, c)
	if len(xe) != len(ye) {
		return false, fmt.Sprintf("%v child count %d vs %d in %q", x, len(xe), len(ye), c)
	}
	xt := textOf(x, c)
	yt := textOf(y, c)
	if xt != yt {
		return false, fmt.Sprintf("%v text %q vs %q", x, xt, yt)
	}
	for i := range xe {
		if ok, why := isoNode(xe[i], ye[i], c); !ok {
			return false, why
		}
	}
	return true, ""
}

func elementChildren(n *core.Node, c core.Color) []*core.Node {
	var out []*core.Node
	for _, ch := range core.Children(n, c) {
		if ch.Kind() != core.KindText {
			out = append(out, ch)
		}
	}
	return out
}

func textOf(n *core.Node, c core.Color) string {
	var b strings.Builder
	for _, ch := range core.Children(n, c) {
		if ch.Kind() == core.KindText {
			b.WriteString(ch.Value())
		}
	}
	return b.String()
}
