package serialize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"colorfulxml/internal/core"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/schema"
	"colorfulxml/internal/xmlenc"
)

func TestOptSerializeFigure8(t *testing.T) {
	s := schema.Figure8()
	plan, err := OptSerialize(s)
	if err != nil {
		t.Fatal(err)
	}
	// Every multi-colored type has all its real colors ranked.
	for _, elem := range []string{"movie", "movie-role", "name"} {
		ranked := plan.Ranked[elem]
		if len(ranked) != len(s.RealColors(elem)) {
			t.Fatalf("Ranked[%s] = %v, real colors %v", elem, ranked, s.RealColors(elem))
		}
	}
	// Ranked lists are sorted by cost.
	for elem, ranked := range plan.Ranked {
		for i := 1; i < len(ranked); i++ {
			a := plan.Cost[TypeColor{elem, ranked[i-1]}]
			b := plan.Cost[TypeColor{elem, ranked[i]}]
			if a > b {
				t.Fatalf("Ranked[%s] not sorted by cost: %v", elem, ranked)
			}
		}
	}
	// movie-role has 10 red instances per movie but only 4 blue per actor:
	// nesting it in red avoids 10 parent pointers per movie; check red wins.
	if plan.Primary("movie-role") != "red" {
		t.Fatalf("movie-role primary = %q, want red (quant 10 vs 4)", plan.Primary("movie-role"))
	}
	if got := plan.String(); !strings.Contains(got, "movie-role") {
		t.Fatalf("plan rendering: %s", got)
	}
}

// TestOptSerializeMatchesExhaustive is the Theorem 5.1 sanity check: the
// DP's free minimum equals the best cost over all forced primary-color
// assignments of the multi-colored element types.
func TestOptSerializeMatchesExhaustive(t *testing.T) {
	s := schema.Figure8()
	plan, err := OptSerialize(s)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-colored types and their choices.
	var multi []string
	for _, e := range s.ElementTypes() {
		if s.MultiColored(e) && !s.IsLeaf(e) {
			multi = append(multi, e)
		}
	}
	best := -1.0
	var bestAssign map[string]core.Color
	var rec func(i int, cur map[string]core.Color)
	rec = func(i int, cur map[string]core.Color) {
		if i == len(multi) {
			assign := map[string]core.Color{}
			for k, v := range cur {
				assign[k] = v
			}
			cost, err := CostUnder(s, assign)
			if err != nil {
				t.Fatal(err)
			}
			if best < 0 || cost < best {
				best = cost
				bestAssign = assign
			}
			return
		}
		for _, c := range s.RealColors(multi[i]) {
			cur[multi[i]] = c
			rec(i+1, cur)
		}
		delete(cur, multi[i])
	}
	rec(0, map[string]core.Color{})

	// The plan's assignment must achieve the exhaustive minimum.
	planAssign := map[string]core.Color{}
	for _, e := range multi {
		planAssign[e] = plan.Primary(e)
	}
	planCost, err := CostUnder(s, planAssign)
	if err != nil {
		t.Fatal(err)
	}
	if planCost != best {
		t.Fatalf("plan cost %v != exhaustive best %v (best assignment %v, plan %v)",
			planCost, best, bestAssign, planAssign)
	}
}

func TestPrimaryForFallsBackWhenInstanceLacksColor(t *testing.T) {
	m := fixtures.NewMovieDB()
	plan := &Plan{Ranked: map[string][]core.Color{
		"movie": {"green", "red"},
	}}
	// duck has no green: falls back to red.
	if got := plan.PrimaryFor(m.Node("duck")); got != "red" {
		t.Fatalf("PrimaryFor(duck) = %q", got)
	}
	if got := plan.PrimaryFor(m.Node("eve")); got != "green" {
		t.Fatalf("PrimaryFor(eve) = %q", got)
	}
	// Unknown type: first color of the instance.
	if got := plan.PrimaryFor(m.Node("bette")); got != "blue" {
		t.Fatalf("PrimaryFor(bette) = %q", got)
	}
}

func TestRoundTripMovieDB(t *testing.T) {
	m := fixtures.NewMovieDB()
	doc, err := Serialize(m.DB, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := xmlenc.String(doc, xmlenc.WriteOptions{Indent: "  "})
	back, err := DeserializeString(out)
	if err != nil {
		t.Fatalf("deserialize: %v\nxml:\n%s", err, out)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("reconstructed database invalid: %v", err)
	}
	if ok, why := Isomorphic(m.DB, back); !ok {
		t.Fatalf("round trip not isomorphic: %s\nxml:\n%s", why, out)
	}
}

func TestRoundTripWithPlan(t *testing.T) {
	m := fixtures.NewMovieDB()
	plan := &Plan{Ranked: map[string][]core.Color{
		"movie":      {"green", "red"}, // nest movies under awards
		"movie-role": {"blue", "red"},  // nest roles under actors
	}}
	doc, err := Serialize(m.DB, plan)
	if err != nil {
		t.Fatal(err)
	}
	out := xmlenc.Compact(doc)
	// A movie element must now appear under a year in the green tree.
	if !strings.Contains(out, "<year>") {
		t.Fatalf("unexpected serialization: %s", out)
	}
	back, err := DeserializeString(out)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := Isomorphic(m.DB, back); !ok {
		t.Fatalf("round trip (plan) not isomorphic: %s\nxml:\n%s", why, out)
	}
}

func TestSerializeStringDeclaration(t *testing.T) {
	m := fixtures.NewMovieDB()
	out, err := SerializeString(m.DB, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "<?xml") {
		t.Fatalf("missing declaration: %.60s", out)
	}
	if !strings.Contains(out, `<mct colors="blue green red">`) {
		t.Fatalf("missing mct root: %.120s", out)
	}
}

func TestDeserializeErrors(t *testing.T) {
	bad := []string{
		`<notmct/>`,
		`<mct/>`,
		`<mct colors="red"><tree/></mct>`,
		`<mct colors="red"><tree color="blue"/></mct>`,
		`<mct colors="red green"><tree color="red"><a mct:colors="green"/></tree></mct>`,
		`<mct colors="red green"><tree color="red"><a mct:colors="red green" mct:p-green="999"/></tree></mct>`,
		`<mct colors="red"><tree color="red"><a mct:o-red="77"/></tree></mct>`,
		`<mct colors="red green"><tree color="red"><a mct:colors="red green" mct:p-blue="doc"/></tree></mct>`,
	}
	for _, src := range bad {
		if _, err := DeserializeString(src); err == nil {
			t.Errorf("DeserializeString(%q) should fail", src)
		}
	}
}

func TestDeserializeDocParentRef(t *testing.T) {
	src := `<mct colors="green red">
<tree color="green"><g mct:colors="green red" mct:p-red="doc">x</g></tree>
<tree color="red"/>
</mct>`
	db, err := DeserializeString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	kids := core.Children(db.Document(), "red")
	if len(kids) != 1 || kids[0].Name() != "g" {
		t.Fatalf("red children = %v", kids)
	}
}

// randomSerializableDB builds a random multi-colored database.
func randomSerializableDB(seed int64) *core.Database {
	rng := rand.New(rand.NewSource(seed))
	colors := []core.Color{"red", "green", "blue"}
	db := core.NewDatabase(colors...)
	attached := map[core.Color][]*core.Node{}
	for _, c := range colors {
		attached[c] = []*core.Node{db.Document()}
	}
	names := []string{"a", "b", "c", "d"}
	for i := 0; i < 60; i++ {
		c := colors[rng.Intn(len(colors))]
		parent := attached[c][rng.Intn(len(attached[c]))]
		switch rng.Intn(6) {
		case 0, 1, 2:
			n, err := db.AddElement(parent, names[rng.Intn(len(names))], c)
			if err != nil {
				panic(err)
			}
			attached[c] = append(attached[c], n)
			if rng.Intn(2) == 0 {
				if _, err := db.AppendText(n, "t"+names[rng.Intn(len(names))]); err != nil {
					panic(err)
				}
			}
			if rng.Intn(3) == 0 {
				if _, err := db.SetAttribute(n, "k"+names[rng.Intn(2)], "v"); err != nil {
					panic(err)
				}
			}
		case 3, 4:
			// Adopt a node from another color.
			c2 := colors[rng.Intn(len(colors))]
			if c2 == c {
				continue
			}
			cand := attached[c2]
			n := cand[rng.Intn(len(cand))]
			if n == db.Document() || n.HasColor(c) {
				continue
			}
			if err := db.Adopt(parent, n, c); err != nil {
				panic(err)
			}
			attached[c] = append(attached[c], n)
		case 5:
			// Extra sibling to exercise ordering.
			n, err := db.AddElement(parent, "z", c)
			if err != nil {
				panic(err)
			}
			attached[c] = append(attached[c], n)
		}
	}
	if err := db.Validate(); err != nil {
		panic(err)
	}
	return db
}

func TestQuickRoundTripRandomDatabases(t *testing.T) {
	f := func(seed int64) bool {
		db := randomSerializableDB(seed)
		out, err := SerializeString(db, nil, false)
		if err != nil {
			t.Logf("serialize: %v", err)
			return false
		}
		back, err := DeserializeString(out)
		if err != nil {
			t.Logf("deserialize: %v\n%s", err, out)
			return false
		}
		if err := back.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		ok, why := Isomorphic(db, back)
		if !ok {
			t.Logf("not isomorphic: %s\n%s", why, out)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsomorphicDetectsDifferences(t *testing.T) {
	a := fixtures.NewMovieDB()
	b := fixtures.NewMovieDB()
	if ok, _ := Isomorphic(a.DB, b.DB); !ok {
		t.Fatal("fresh fixtures should be isomorphic")
	}
	if err := b.DB.SetText(b.Node("eve-name"), "Changed"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := Isomorphic(a.DB, b.DB); ok {
		t.Fatal("text change should break isomorphism")
	}
	c := fixtures.NewMovieDB()
	if err := c.DB.Detach(c.Node("eve"), "green"); err != nil {
		t.Fatal(err)
	}
	if err := c.DB.Append(c.Node("y1957"), c.Node("eve"), "green"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := Isomorphic(a.DB, c.DB); ok {
		t.Fatal("structural change should break isomorphism")
	}
}

func TestCostUnderForcedWorseThanOptimal(t *testing.T) {
	s := schema.Figure8()
	plan, err := OptSerialize(s)
	if err != nil {
		t.Fatal(err)
	}
	opt := map[string]core.Color{
		"movie":      plan.Primary("movie"),
		"movie-role": plan.Primary("movie-role"),
	}
	optCost, err := CostUnder(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Forcing movie-role into blue (quant 4 side) must not beat the optimum.
	worse := map[string]core.Color{
		"movie":      plan.Primary("movie"),
		"movie-role": "blue",
	}
	worseCost, err := CostUnder(s, worse)
	if err != nil {
		t.Fatal(err)
	}
	if worseCost < optCost {
		t.Fatalf("forced plan cheaper than optimal: %v < %v", worseCost, optCost)
	}
}
