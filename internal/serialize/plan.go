// Package serialize implements the MCT exchange data model (paper Section
// 5): serializing a multi-colored tree database as plain XML so it can be
// exchanged between applications and reconstructed at the receiver.
//
// It has two halves:
//
//   - the optSerialize algorithm (Figure 9): a dynamic program over the MCT
//     schema that picks, for every element type, the primary color — the
//     hierarchy in which its instances are physically nested — minimizing the
//     expected encoding cost of parent pointers and color annotations
//     (Theorem 5.1);
//
//   - a concrete serializer/deserializer pair: elements are emitted exactly
//     once, nested along their primary color's hierarchy; every other colored
//     edge is encoded with an mct:p-<color> parent reference, explicit
//     per-color child order is recorded in mct:o-<color> lists where nesting
//     does not imply it, and multi-colored elements carry an mct:colors
//     attribute (see serialize.go for the full format).
//
// Per the paper's Section 5.3 simplifying assumptions, primary colors are
// chosen among an element type's real colors, multi-colored element types
// are acyclic, and each type has one production per color.
package serialize

import (
	"fmt"
	"math"
	"sort"

	"colorfulxml/internal/core"
	"colorfulxml/internal/schema"
)

// Plan is the result of optSerialize: for every element type, its color
// choices ranked from best to worst (paper Section 5.3: the ranked list is
// used when an instance lacks the primary color), and the expected cost of
// each (type, color) choice.
type Plan struct {
	// Ranked maps element type to its real colors ordered by increasing
	// cost; Ranked[t][0] is the primary color.
	Ranked map[string][]core.Color
	// Cost maps (type, color) to the expected serialization cost of picking
	// that color as the type's primary color.
	Cost map[TypeColor]float64
}

// TypeColor keys per-(element type, color) tables.
type TypeColor struct {
	Elem  string
	Color core.Color
}

// Primary returns the plan's primary color for an element type, or "" when
// the type is unknown to the plan.
func (p *Plan) Primary(elem string) core.Color {
	if r := p.Ranked[elem]; len(r) > 0 {
		return r[0]
	}
	return ""
}

// PrimaryFor returns the best ranked color that the given instance actually
// has, falling back to the instance's first color.
func (p *Plan) PrimaryFor(n *core.Node) core.Color {
	for _, c := range p.Ranked[n.Name()] {
		if n.HasColor(c) {
			return c
		}
	}
	colors := n.Colors()
	if len(colors) > 0 {
		return colors[0]
	}
	return ""
}

// OptSerialize runs the paper's Algorithm optSerialize over an MCT schema
// with statistics, returning the optimal serialization plan.
func OptSerialize(s *schema.Schema) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pl := &planner{s: s, memo: map[TypeColor]float64{}, inProgress: map[TypeColor]bool{}}
	plan := &Plan{Ranked: map[string][]core.Color{}, Cost: map[TypeColor]float64{}}
	for _, elem := range s.ElementTypes() {
		real := s.RealColors(elem)
		type choice struct {
			c    core.Color
			cost float64
		}
		choices := make([]choice, 0, len(real))
		for _, c := range real {
			cost := pl.cost(elem, c)
			choices = append(choices, choice{c: c, cost: cost})
			plan.Cost[TypeColor{elem, c}] = cost
		}
		sort.SliceStable(choices, func(i, j int) bool {
			if choices[i].cost != choices[j].cost {
				return choices[i].cost < choices[j].cost
			}
			return choices[i].c < choices[j].c
		})
		ranked := make([]core.Color, len(choices))
		for i, ch := range choices {
			ranked[i] = ch.c
		}
		plan.Ranked[elem] = ranked
	}
	return plan, nil
}

// CostUnder evaluates the total expected cost of a forced primary-color
// assignment (used by tests to cross-check optimality against exhaustive
// search). Types absent from the assignment choose freely (minimum).
func CostUnder(s *schema.Schema, assignment map[string]core.Color) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	pl := &planner{s: s, memo: map[TypeColor]float64{}, inProgress: map[TypeColor]bool{},
		forced: assignment}
	total := 0.0
	// The database cost is the cost of serializing each hierarchy root.
	for _, c := range s.Colors() {
		root := s.Root(c)
		shade, ok := assignment[root]
		if !ok {
			shade = c
		}
		if shade == c { // each root serialized once, in its own hierarchy
			total += pl.cost(root, c)
		}
	}
	return total, nil
}

// planner memoizes the paper's cost(m, shade) function.
type planner struct {
	s          *schema.Schema
	memo       map[TypeColor]float64
	inProgress map[TypeColor]bool
	forced     map[string]core.Color
}

// cost implements the paper's Figure 9 cost function. Its parameter shade is
// the nest/context color of an m instance: the hierarchy whose serialized
// bytes physically contain the instance.
//
//	cost(m, shade) =
//	  leaf, single color c (per instance; the parent site multiplies by
//	  quant):
//	    0    if c == shade (nested naturally, color implied by context)
//	    3    if m's parent in c's hierarchy also has color shade (color
//	         annotation plus override bookkeeping, the paper's 3x branch)
//	    2    otherwise (color annotation and subtree marker)
//	  otherwise:
//	    2 * (|m.colors| - 1)                — parent pointers (ID/IDREF) for
//	                                          the non-nest colors
//	    + [1 if |m.colors| > 1 or shade not in m.colors]  — color annotation
//	    + sum over colors c of m, over children e of m's production in c:
//	        quant(e, c) * bestChildCost(e, c, shade)
//
// bestChildCost constrains the child's choice by where its parents live
// (the paper's "subject to the constraint that m's choice is shade"): a
// child whose only color is this edge must serialize inside m, in m's
// context; a child with other colors may instead nest under another parent.
// Recursive single-colored types (e.g. nested genres) contribute their
// first-level cost only; the recursion is cut at repeated (type, shade)
// pairs.
func (pl *planner) cost(m string, shade core.Color) float64 {
	key := TypeColor{m, shade}
	if v, ok := pl.memo[key]; ok {
		return v
	}
	if pl.inProgress[key] {
		return 0 // recursion cut for recursive (single-colored) types
	}
	pl.inProgress[key] = true
	defer delete(pl.inProgress, key)

	s := pl.s
	real := s.RealColors(m)
	if len(real) == 1 && s.IsLeaf(m) {
		c := real[0]
		var v float64
		switch {
		case c == shade:
			v = 0
		case pl.parentHasColor(m, c, shade):
			v = 3
		default:
			v = 2
		}
		pl.memo[key] = v
		return v
	}

	v := 2 * float64(max(len(real)-1, 0))
	if len(real) > 1 || !contains(real, shade) {
		v++ // color annotation
	}
	for _, c := range real {
		prod := s.Production(c, m)
		if prod == nil {
			continue
		}
		for _, e := range prod.Children {
			q := s.Quant(e.Elem, c)
			v += q * pl.bestChildCost(e.Elem, c, shade)
		}
	}
	pl.memo[key] = v
	return v
}

// bestChildCost is the paper's findColor with its constraint: child e hangs
// off m along edge color c while m's nest color is shade.
//
//   - A child whose only real color is c has no other parent: it must nest
//     inside m, in m's context -> cost(e, shade).
//   - Otherwise the child may nest here (cost(e, shade) when c is its
//     choice) or under one of its other parents (cost(e, c') for c' != c).
func (pl *planner) bestChildCost(e string, c, parentShade core.Color) float64 {
	real := pl.s.RealColors(e)
	if len(real) == 0 {
		return 0
	}
	if len(real) == 1 && real[0] == c {
		return pl.cost(e, parentShade)
	}
	if pl.forced != nil {
		if fc, ok := pl.forced[e]; ok {
			if fc == c {
				return pl.cost(e, parentShade)
			}
			return pl.cost(e, fc)
		}
	}
	best := math.Inf(1)
	for _, cc := range real {
		v := pl.cost(e, cc)
		if cc == c {
			v = pl.cost(e, parentShade)
		}
		if v < best {
			best = v
		}
	}
	return best
}

// parentHasColor reports whether m's parent type in the hierarchy of its own
// color c also has color shade among its real colors — the paper's "m is a
// child of a node whose color includes shade" branch.
func (pl *planner) parentHasColor(m string, c, shade core.Color) bool {
	parent := pl.s.ParentIn(m, c)
	if parent == "" {
		return false
	}
	return contains(pl.s.RealColors(parent), shade)
}

func contains(cs []core.Color, c core.Color) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders the plan compactly for CLI output.
func (p *Plan) String() string {
	elems := make([]string, 0, len(p.Ranked))
	for e := range p.Ranked {
		elems = append(elems, e)
	}
	sort.Strings(elems)
	out := ""
	for _, e := range elems {
		r := p.Ranked[e]
		if len(r) == 0 {
			continue
		}
		out += fmt.Sprintf("%-16s primary=%-8s", e, r[0])
		for _, c := range r {
			out += fmt.Sprintf(" %s:%.1f", c, p.Cost[TypeColor{e, c}])
		}
		out += "\n"
	}
	return out
}
