package benchdiff

import (
	"fmt"
	"strings"
	"testing"
)

func line(name string, qps, p95 float64) string {
	return fmt.Sprintf(`BENCH {"name":%q,"qps":%g,"p95_micros":%g,"queries":800}`, name, qps, p95)
}

func mustParse(t *testing.T, text string) []Result {
	t.Helper()
	rs, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestParseSkipsNoise(t *testing.T) {
	text := strings.Join([]string{
		"=== Concurrent serving throughput ===",
		"total queries:  800 in 1000.0 ms (800 queries/s)",
		line("concurrent", 800, 1200),
		"latency: p50=...",
		line("concurrent-durable", 500, 2400),
	}, "\n")
	rs := mustParse(t, text)
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(rs), rs)
	}
	if rs[0].Name != "concurrent" || rs[0].QPS != 800 || rs[0].P95Micros != 1200 {
		t.Fatalf("bad first result: %+v", rs[0])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("BENCH {not json")); err == nil {
		t.Fatal("malformed BENCH line parsed silently")
	}
	if _, err := Parse(strings.NewReader(`BENCH {"qps":1}`)); err == nil {
		t.Fatal("nameless BENCH line parsed silently")
	}
}

func TestBestOfRepetitions(t *testing.T) {
	rs := mustParse(t, strings.Join([]string{
		line("concurrent", 700, 1500), // slow rep, quiet tail
		line("concurrent", 820, 2100), // fast rep, noisy tail
		line("concurrent", 760, 1800),
	}, "\n"))
	best := Best(rs)
	b := best["concurrent"]
	if b.QPS != 820 || b.P95Micros != 1500 {
		t.Fatalf("best = %+v, want qps=820 p95=1500 (independent best)", b)
	}
}

func TestCompareWithinToleranceAndImprovements(t *testing.T) {
	base := Best(mustParse(t, line("concurrent", 800, 1000)))
	// 20% slower and 25% higher p95: inside the 30% gate.
	cur := Best(mustParse(t, line("concurrent", 640, 1250)))
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %+v", regs)
	}
	// Improvements never flag.
	cur = Best(mustParse(t, line("concurrent", 1600, 500)))
	if regs, _ = Compare(base, cur, 0.30); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}
}

// TestCompareFailsOnInjectedSlowdown is the gate's acceptance check: a 2x
// slowdown (half the throughput, double the p95) must trip both metrics.
func TestCompareFailsOnInjectedSlowdown(t *testing.T) {
	base := Best(mustParse(t, strings.Join([]string{
		line("concurrent", 800, 1000),
		line("concurrent-durable", 500, 2000),
	}, "\n")))
	cur := Best(mustParse(t, strings.Join([]string{
		line("concurrent", 400, 2000), // injected 2x slowdown
		line("concurrent-durable", 490, 2050),
	}, "\n")))
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want qps and p95 for concurrent: %+v", len(regs), regs)
	}
	for _, g := range regs {
		if g.Name != "concurrent" {
			t.Fatalf("healthy benchmark flagged: %+v", g)
		}
	}
	if regs[0].Metric != "qps" || regs[0].Change != 0.5 {
		t.Fatalf("qps regression misreported: %+v", regs[0])
	}
	if regs[1].Metric != "p95_micros" || regs[1].Change != 1.0 {
		t.Fatalf("p95 regression misreported: %+v", regs[1])
	}
}

func TestCompareMissingBenchmarkIsError(t *testing.T) {
	base := Best(mustParse(t, line("concurrent-durable", 500, 2000)))
	cur := Best(mustParse(t, line("concurrent", 800, 1000)))
	if _, err := Compare(base, cur, 0.30); err == nil {
		t.Fatal("missing benchmark passed the gate")
	}
}

func TestFormatMarksViolations(t *testing.T) {
	base := Best(mustParse(t, line("concurrent", 800, 1000)))
	cur := Best(mustParse(t, line("concurrent", 400, 2000)))
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	Format(&b, base, cur, regs)
	out := b.String()
	if !strings.Contains(out, "concurrent") || !strings.Contains(out, "!") {
		t.Fatalf("format lacks violation marks:\n%s", out)
	}
}
