// Package benchdiff compares machine-readable benchmark results ("BENCH
// {...}" JSON lines emitted by mctbench) against a checked-in baseline, the
// logic behind the CI benchmark-regression gate.
//
// Noise discipline: a benchmark is run several times and the best repetition
// per named benchmark is compared (highest throughput, lowest p95 latency —
// independently, since the fastest run need not have the quietest tail).
// Best-of-N filters scheduler and filesystem noise far better than the mean;
// a genuine regression depresses every repetition, so it survives the
// filter, while a single noisy run does not condemn the build.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// benchPrefix marks a machine-readable result line in mixed output.
const benchPrefix = "BENCH "

// Result is one parsed BENCH line; fields irrelevant to regression gating
// are ignored.
type Result struct {
	Name      string  `json:"name"`
	QPS       float64 `json:"qps"`
	P95Micros float64 `json:"p95_micros"`
}

// Parse extracts every BENCH line from mixed benchmark output. Lines that
// do not start with the BENCH prefix are ignored; a BENCH line that fails
// to decode or lacks a name is an error (a malformed gate input should fail
// loudly, not vanish).
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, benchPrefix) {
			continue
		}
		var res Result
		if err := json.Unmarshal([]byte(line[len(benchPrefix):]), &res); err != nil {
			return nil, fmt.Errorf("benchdiff: line %d: %w", lineNo, err)
		}
		if res.Name == "" {
			return nil, fmt.Errorf("benchdiff: line %d: BENCH record has no name", lineNo)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Best folds repetitions down to one Result per benchmark name: the highest
// throughput and the lowest nonzero p95 seen, taken independently.
func Best(rs []Result) map[string]Result {
	best := map[string]Result{}
	for _, r := range rs {
		b, ok := best[r.Name]
		if !ok {
			best[r.Name] = r
			continue
		}
		if r.QPS > b.QPS {
			b.QPS = r.QPS
		}
		if r.P95Micros > 0 && (b.P95Micros == 0 || r.P95Micros < b.P95Micros) {
			b.P95Micros = r.P95Micros
		}
		best[r.Name] = b
	}
	return best
}

// Regression is one gate violation: a metric moved the wrong way by more
// than the allowed fraction.
type Regression struct {
	Name     string
	Metric   string // "qps" or "p95_micros"
	Baseline float64
	Current  float64
	// Change is the relative movement in the harmful direction (0.5 = 50%
	// worse than baseline).
	Change float64
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.0f%% (baseline %.1f, current %.1f)",
		g.Name, g.Metric, g.Change*100, g.Baseline, g.Current)
}

// Compare gates current against baseline: for every benchmark in the
// baseline, throughput must not drop — nor p95 latency rise — by more than
// maxRegress (a fraction, e.g. 0.30). A baseline benchmark missing from
// current entirely is an error: a gate that silently skips a vanished
// benchmark is no gate.
func Compare(baseline, current map[string]Result, maxRegress float64) ([]Regression, error) {
	var out []Regression
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			return nil, fmt.Errorf("benchdiff: benchmark %q present in baseline but missing from current results", name)
		}
		if base.QPS > 0 {
			if drop := (base.QPS - cur.QPS) / base.QPS; drop > maxRegress {
				out = append(out, Regression{
					Name: name, Metric: "qps",
					Baseline: base.QPS, Current: cur.QPS, Change: drop,
				})
			}
		}
		if base.P95Micros > 0 && cur.P95Micros > 0 {
			if rise := (cur.P95Micros - base.P95Micros) / base.P95Micros; rise > maxRegress {
				out = append(out, Regression{
					Name: name, Metric: "p95_micros",
					Baseline: base.P95Micros, Current: cur.P95Micros, Change: rise,
				})
			}
		}
	}
	return out, nil
}

// Format renders a comparison table of every baseline benchmark, marking
// gate violations, for the CI log.
func Format(w io.Writer, baseline, current map[string]Result, regs []Regression) {
	violated := map[string]bool{}
	for _, g := range regs {
		violated[g.Name+"/"+g.Metric] = true
	}
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-24s %12s %12s %8s   %12s %12s %8s\n",
		"benchmark", "base qps", "cur qps", "Δ", "base p95µs", "cur p95µs", "Δ")
	for _, name := range names {
		base, cur := baseline[name], current[name]
		mark := func(metric string, delta float64) string {
			s := fmt.Sprintf("%+.0f%%", delta*100)
			if violated[name+"/"+metric] {
				s += " !"
			}
			return s
		}
		qpsDelta, p95Delta := 0.0, 0.0
		if base.QPS > 0 {
			qpsDelta = (cur.QPS - base.QPS) / base.QPS
		}
		if base.P95Micros > 0 {
			p95Delta = (cur.P95Micros - base.P95Micros) / base.P95Micros
		}
		fmt.Fprintf(w, "%-24s %12.1f %12.1f %8s   %12.1f %12.1f %8s\n",
			name, base.QPS, cur.QPS, mark("qps", qpsDelta),
			base.P95Micros, cur.P95Micros, mark("p95_micros", p95Delta))
	}
}
