package xmlenc

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenKind enumerates lexical token kinds.
type tokenKind uint8

const (
	tokStartTag tokenKind = iota // <name attr="v" ...> or <name ... />
	tokEndTag                    // </name>
	tokText                      // character data (entities resolved)
	tokComment                   // <!-- ... -->
	tokPI                        // <?target data?>
	tokEOF
)

// token is one lexical XML token.
type token struct {
	kind      tokenKind
	name      string
	value     string
	attrs     []Attr
	selfClose bool
	offset    int
}

// lexer tokenizes an XML byte stream.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errf(format string, args ...any) error {
	return &ParseError{Offset: lx.pos, Line: lx.line, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) eof() bool { return lx.pos >= len(lx.src) }

func (lx *lexer) peek() byte {
	if lx.eof() {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
	}
	return b
}

func (lx *lexer) skipSpace() {
	for !lx.eof() {
		switch lx.peek() {
		case ' ', '\t', '\r', '\n':
			lx.advance()
		default:
			return
		}
	}
}

func (lx *lexer) hasPrefix(p string) bool {
	return strings.HasPrefix(lx.src[lx.pos:], p)
}

func (lx *lexer) skip(n int) {
	for i := 0; i < n; i++ {
		lx.advance()
	}
}

func isNameStart(b byte) bool {
	return b == '_' || b == ':' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

func isNameChar(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

func (lx *lexer) name() (string, error) {
	if lx.eof() || !isNameStart(lx.peek()) {
		return "", lx.errf("expected name")
	}
	start := lx.pos
	for !lx.eof() && isNameChar(lx.peek()) {
		lx.advance()
	}
	return lx.src[start:lx.pos], nil
}

// next returns the next token, resolving entities in text and attribute
// values, skipping the XML declaration and DOCTYPE.
func (lx *lexer) next() (token, error) {
	for {
		if lx.eof() {
			return token{kind: tokEOF, offset: lx.pos}, nil
		}
		start := lx.pos
		if lx.peek() != '<' {
			return lx.text(start)
		}
		switch {
		case lx.hasPrefix("<!--"):
			return lx.comment(start)
		case lx.hasPrefix("<![CDATA["):
			return lx.cdata(start)
		case lx.hasPrefix("<!DOCTYPE"):
			if err := lx.skipDoctype(); err != nil {
				return token{}, err
			}
			continue
		case lx.hasPrefix("<?"):
			tok, err := lx.pi(start)
			if err != nil {
				return token{}, err
			}
			if strings.EqualFold(tok.name, "xml") {
				continue // XML declaration: skip
			}
			return tok, nil
		case lx.hasPrefix("</"):
			return lx.endTag(start)
		default:
			return lx.startTag(start)
		}
	}
}

func (lx *lexer) text(start int) (token, error) {
	raw := lx.pos
	for !lx.eof() && lx.peek() != '<' {
		lx.advance()
	}
	val, err := Unescape(lx.src[raw:lx.pos])
	if err != nil {
		return token{}, lx.errf("bad entity: %v", err)
	}
	return token{kind: tokText, value: val, offset: start}, nil
}

func (lx *lexer) comment(start int) (token, error) {
	lx.skip(4) // <!--
	idx := strings.Index(lx.src[lx.pos:], "-->")
	if idx < 0 {
		return token{}, lx.errf("unterminated comment")
	}
	val := lx.src[lx.pos : lx.pos+idx]
	lx.skip(idx + 3)
	return token{kind: tokComment, value: val, offset: start}, nil
}

func (lx *lexer) cdata(start int) (token, error) {
	lx.skip(9) // <![CDATA[
	idx := strings.Index(lx.src[lx.pos:], "]]>")
	if idx < 0 {
		return token{}, lx.errf("unterminated CDATA section")
	}
	val := lx.src[lx.pos : lx.pos+idx]
	lx.skip(idx + 3)
	return token{kind: tokText, value: val, offset: start}, nil
}

func (lx *lexer) skipDoctype() error {
	// Skip until the matching '>', tracking nested '[' ... ']' internal subset.
	depth := 0
	for !lx.eof() {
		switch lx.advance() {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
	return lx.errf("unterminated DOCTYPE")
}

func (lx *lexer) pi(start int) (token, error) {
	lx.skip(2) // <?
	target, err := lx.name()
	if err != nil {
		return token{}, err
	}
	idx := strings.Index(lx.src[lx.pos:], "?>")
	if idx < 0 {
		return token{}, lx.errf("unterminated processing instruction")
	}
	data := strings.TrimSpace(lx.src[lx.pos : lx.pos+idx])
	lx.skip(idx + 2)
	return token{kind: tokPI, name: target, value: data, offset: start}, nil
}

func (lx *lexer) endTag(start int) (token, error) {
	lx.skip(2) // </
	name, err := lx.name()
	if err != nil {
		return token{}, err
	}
	lx.skipSpace()
	if lx.eof() || lx.peek() != '>' {
		return token{}, lx.errf("malformed end tag </%s", name)
	}
	lx.advance()
	return token{kind: tokEndTag, name: name, offset: start}, nil
}

func (lx *lexer) startTag(start int) (token, error) {
	lx.advance() // <
	name, err := lx.name()
	if err != nil {
		return token{}, err
	}
	tok := token{kind: tokStartTag, name: name, offset: start}
	for {
		lx.skipSpace()
		if lx.eof() {
			return token{}, lx.errf("unterminated start tag <%s", name)
		}
		switch lx.peek() {
		case '>':
			lx.advance()
			return tok, nil
		case '/':
			lx.advance()
			if lx.eof() || lx.peek() != '>' {
				return token{}, lx.errf("malformed empty-element tag <%s", name)
			}
			lx.advance()
			tok.selfClose = true
			return tok, nil
		}
		aname, err := lx.name()
		if err != nil {
			return token{}, err
		}
		lx.skipSpace()
		if lx.eof() || lx.peek() != '=' {
			return token{}, lx.errf("attribute %s missing '='", aname)
		}
		lx.advance()
		lx.skipSpace()
		if lx.eof() || (lx.peek() != '"' && lx.peek() != '\'') {
			return token{}, lx.errf("attribute %s missing quoted value", aname)
		}
		quote := lx.advance()
		vstart := lx.pos
		for !lx.eof() && lx.peek() != quote {
			if lx.peek() == '<' {
				return token{}, lx.errf("'<' in attribute value of %s", aname)
			}
			lx.advance()
		}
		if lx.eof() {
			return token{}, lx.errf("unterminated attribute value for %s", aname)
		}
		raw := lx.src[vstart:lx.pos]
		lx.advance() // closing quote
		val, uerr := Unescape(raw)
		if uerr != nil {
			return token{}, lx.errf("bad entity in attribute %s: %v", aname, uerr)
		}
		for _, a := range tok.attrs {
			if a.Name == aname {
				return token{}, lx.errf("duplicate attribute %s", aname)
			}
		}
		tok.attrs = append(tok.attrs, Attr{Name: aname, Value: val})
	}
}

// Unescape resolves the five predefined XML entities and decimal/hex
// character references in s.
func Unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 {
			return "", fmt.Errorf("unterminated entity at offset %d", i)
		}
		ent := s[i+1 : i+end]
		switch {
		case ent == "amp":
			b.WriteByte('&')
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "quot":
			b.WriteByte('"')
		case ent == "apos":
			b.WriteByte('\'')
		case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
			n, err := strconv.ParseUint(ent[2:], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		case strings.HasPrefix(ent, "#"):
			n, err := strconv.ParseUint(ent[1:], 10, 32)
			if err != nil {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		default:
			return "", fmt.Errorf("unknown entity &%s;", ent)
		}
		i += end + 1
	}
	return b.String(), nil
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes an attribute value for double-quoted serialization.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<>\"\n\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#10;")
		case '\t':
			b.WriteString("&#9;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
