package xmlenc

import (
	"fmt"
	"io"
	"strings"
)

// WriteOptions controls serialization.
type WriteOptions struct {
	// Indent, when non-empty, pretty-prints with the given unit (e.g. "  ").
	Indent string
	// Declaration, when true, emits an <?xml version="1.0"?> header.
	Declaration bool
}

// Write serializes the node (a document or any subtree) to w.
func Write(w io.Writer, n *Node, opt WriteOptions) error {
	bw := &errWriter{w: w}
	if opt.Declaration {
		bw.writeString(`<?xml version="1.0" encoding="UTF-8"?>`)
		if opt.Indent != "" {
			bw.writeString("\n")
		}
	}
	writeNode(bw, n, opt, 0)
	if opt.Indent != "" {
		bw.writeString("\n")
	}
	return bw.err
}

// String serializes the node to a string with the given options.
func String(n *Node, opt WriteOptions) string {
	var b strings.Builder
	_ = Write(&b, n, opt)
	return b.String()
}

// Compact serializes without indentation or declaration.
func Compact(n *Node) string { return strings.TrimSuffix(String(n, WriteOptions{}), "\n") }

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func writeNode(w *errWriter, n *Node, opt WriteOptions, depth int) {
	switch n.Kind {
	case KindDocument:
		first := true
		for _, c := range n.Children {
			if !first && opt.Indent != "" {
				w.writeString("\n")
			}
			writeNode(w, c, opt, depth)
			first = false
		}
	case KindElement:
		indent(w, opt, depth)
		w.writeString("<")
		w.writeString(n.Name)
		for _, a := range n.Attrs {
			w.writeString(" ")
			w.writeString(a.Name)
			w.writeString(`="`)
			w.writeString(EscapeAttr(a.Value))
			w.writeString(`"`)
		}
		if len(n.Children) == 0 {
			w.writeString("/>")
			return
		}
		w.writeString(">")
		// Mixed-content heuristic: if the element has any text child, write
		// children inline without indentation so round-trips preserve text.
		inline := false
		for _, c := range n.Children {
			if c.Kind == KindText {
				inline = true
				break
			}
		}
		if inline || opt.Indent == "" {
			for _, c := range n.Children {
				writeNode(w, c, WriteOptions{}, 0)
			}
		} else {
			for _, c := range n.Children {
				w.writeString("\n")
				writeNode(w, c, opt, depth+1)
			}
			w.writeString("\n")
			indent(w, opt, depth)
		}
		w.writeString("</")
		w.writeString(n.Name)
		w.writeString(">")
	case KindText:
		w.writeString(EscapeText(n.Value))
	case KindComment:
		indent(w, opt, depth)
		w.writeString("<!--")
		w.writeString(n.Value)
		w.writeString("-->")
	case KindPI:
		indent(w, opt, depth)
		w.writeString("<?")
		w.writeString(n.Name)
		if n.Value != "" {
			w.writeString(" ")
			w.writeString(n.Value)
		}
		w.writeString("?>")
	default:
		w.err = fmt.Errorf("xmlenc: cannot serialize node kind %d", n.Kind)
	}
}

func indent(w *errWriter, opt WriteOptions, depth int) {
	if opt.Indent == "" {
		return
	}
	for i := 0; i < depth; i++ {
		w.writeString(opt.Indent)
	}
}
